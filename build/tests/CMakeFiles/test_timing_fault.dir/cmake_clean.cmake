file(REMOVE_RECURSE
  "CMakeFiles/test_timing_fault.dir/test_timing_fault.cpp.o"
  "CMakeFiles/test_timing_fault.dir/test_timing_fault.cpp.o.d"
  "test_timing_fault"
  "test_timing_fault.pdb"
  "test_timing_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
