# Empty compiler generated dependencies file for test_timing_fault.
# This may be replaced when dependencies are built.
