# Empty dependencies file for test_dect_structural.
# This may be replaced when dependencies are built.
