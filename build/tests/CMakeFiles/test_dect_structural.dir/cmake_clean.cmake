file(REMOVE_RECURSE
  "CMakeFiles/test_dect_structural.dir/test_dect_structural.cpp.o"
  "CMakeFiles/test_dect_structural.dir/test_dect_structural.cpp.o.d"
  "test_dect_structural"
  "test_dect_structural.pdb"
  "test_dect_structural[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dect_structural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
