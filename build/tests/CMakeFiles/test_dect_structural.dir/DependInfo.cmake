
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dect_structural.cpp" "tests/CMakeFiles/test_dect_structural.dir/test_dect_structural.cpp.o" "gcc" "tests/CMakeFiles/test_dect_structural.dir/test_dect_structural.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/asicpp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/asicpp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/dect/CMakeFiles/asicpp_dect.dir/DependInfo.cmake"
  "/root/repo/build/src/df/CMakeFiles/asicpp_df.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/asicpp_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/asicpp_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asicpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/asicpp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/asicpp_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sfg/CMakeFiles/asicpp_sfg.dir/DependInfo.cmake"
  "/root/repo/build/src/fixpt/CMakeFiles/asicpp_fixpt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
