file(REMOVE_RECURSE
  "CMakeFiles/test_sfg.dir/test_sfg.cpp.o"
  "CMakeFiles/test_sfg.dir/test_sfg.cpp.o.d"
  "test_sfg"
  "test_sfg.pdb"
  "test_sfg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
