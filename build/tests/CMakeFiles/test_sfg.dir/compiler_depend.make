# Empty compiler generated dependencies file for test_sfg.
# This may be replaced when dependencies are built.
