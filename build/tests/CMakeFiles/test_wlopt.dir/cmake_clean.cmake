file(REMOVE_RECURSE
  "CMakeFiles/test_wlopt.dir/test_wlopt.cpp.o"
  "CMakeFiles/test_wlopt.dir/test_wlopt.cpp.o.d"
  "test_wlopt"
  "test_wlopt.pdb"
  "test_wlopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wlopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
