# Empty dependencies file for test_wlopt.
# This may be replaced when dependencies are built.
