file(REMOVE_RECURSE
  "CMakeFiles/test_fixpt.dir/test_fixpt.cpp.o"
  "CMakeFiles/test_fixpt.dir/test_fixpt.cpp.o.d"
  "test_fixpt"
  "test_fixpt.pdb"
  "test_fixpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
