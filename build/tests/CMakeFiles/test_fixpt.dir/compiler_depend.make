# Empty compiler generated dependencies file for test_fixpt.
# This may be replaced when dependencies are built.
