file(REMOVE_RECURSE
  "CMakeFiles/test_syssynth.dir/test_syssynth.cpp.o"
  "CMakeFiles/test_syssynth.dir/test_syssynth.cpp.o.d"
  "test_syssynth"
  "test_syssynth.pdb"
  "test_syssynth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syssynth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
