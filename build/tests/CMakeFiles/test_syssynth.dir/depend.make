# Empty dependencies file for test_syssynth.
# This may be replaced when dependencies are built.
