file(REMOVE_RECURSE
  "CMakeFiles/test_dect.dir/test_dect.cpp.o"
  "CMakeFiles/test_dect.dir/test_dect.cpp.o.d"
  "test_dect"
  "test_dect.pdb"
  "test_dect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
