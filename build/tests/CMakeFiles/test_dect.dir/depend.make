# Empty dependencies file for test_dect.
# This may be replaced when dependencies are built.
