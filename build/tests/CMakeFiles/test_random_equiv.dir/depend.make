# Empty dependencies file for test_random_equiv.
# This may be replaced when dependencies are built.
