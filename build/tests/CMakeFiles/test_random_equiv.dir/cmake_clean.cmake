file(REMOVE_RECURSE
  "CMakeFiles/test_random_equiv.dir/test_random_equiv.cpp.o"
  "CMakeFiles/test_random_equiv.dir/test_random_equiv.cpp.o.d"
  "test_random_equiv"
  "test_random_equiv.pdb"
  "test_random_equiv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
