file(REMOVE_RECURSE
  "CMakeFiles/test_wordlen.dir/test_wordlen.cpp.o"
  "CMakeFiles/test_wordlen.dir/test_wordlen.cpp.o.d"
  "test_wordlen"
  "test_wordlen.pdb"
  "test_wordlen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wordlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
