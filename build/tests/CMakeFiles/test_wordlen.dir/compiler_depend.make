# Empty compiler generated dependencies file for test_wordlen.
# This may be replaced when dependencies are built.
