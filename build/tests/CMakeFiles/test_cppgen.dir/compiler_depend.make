# Empty compiler generated dependencies file for test_cppgen.
# This may be replaced when dependencies are built.
