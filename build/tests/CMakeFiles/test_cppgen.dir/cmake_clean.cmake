file(REMOVE_RECURSE
  "CMakeFiles/test_cppgen.dir/test_cppgen.cpp.o"
  "CMakeFiles/test_cppgen.dir/test_cppgen.cpp.o.d"
  "test_cppgen"
  "test_cppgen.pdb"
  "test_cppgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cppgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
