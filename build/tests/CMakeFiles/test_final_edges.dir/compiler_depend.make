# Empty compiler generated dependencies file for test_final_edges.
# This may be replaced when dependencies are built.
