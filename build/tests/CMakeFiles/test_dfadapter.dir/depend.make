# Empty dependencies file for test_dfadapter.
# This may be replaced when dependencies are built.
