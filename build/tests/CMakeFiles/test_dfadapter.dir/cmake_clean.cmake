file(REMOVE_RECURSE
  "CMakeFiles/test_dfadapter.dir/test_dfadapter.cpp.o"
  "CMakeFiles/test_dfadapter.dir/test_dfadapter.cpp.o.d"
  "test_dfadapter"
  "test_dfadapter.pdb"
  "test_dfadapter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfadapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
