file(REMOVE_RECURSE
  "CMakeFiles/test_assert.dir/test_assert.cpp.o"
  "CMakeFiles/test_assert.dir/test_assert.cpp.o.d"
  "test_assert"
  "test_assert.pdb"
  "test_assert[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
