# Empty dependencies file for test_assert.
# This may be replaced when dependencies are built.
