file(REMOVE_RECURSE
  "CMakeFiles/test_receiver_system.dir/test_receiver_system.cpp.o"
  "CMakeFiles/test_receiver_system.dir/test_receiver_system.cpp.o.d"
  "test_receiver_system"
  "test_receiver_system.pdb"
  "test_receiver_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_receiver_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
