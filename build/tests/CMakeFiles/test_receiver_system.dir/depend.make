# Empty dependencies file for test_receiver_system.
# This may be replaced when dependencies are built.
