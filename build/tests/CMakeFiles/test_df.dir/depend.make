# Empty dependencies file for test_df.
# This may be replaced when dependencies are built.
