file(REMOVE_RECURSE
  "CMakeFiles/test_df.dir/test_df.cpp.o"
  "CMakeFiles/test_df.dir/test_df.cpp.o.d"
  "test_df"
  "test_df.pdb"
  "test_df[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_df.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
