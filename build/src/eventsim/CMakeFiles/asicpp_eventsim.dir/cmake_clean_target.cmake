file(REMOVE_RECURSE
  "libasicpp_eventsim.a"
)
