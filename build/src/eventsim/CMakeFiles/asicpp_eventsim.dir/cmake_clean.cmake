file(REMOVE_RECURSE
  "CMakeFiles/asicpp_eventsim.dir/elaborate.cpp.o"
  "CMakeFiles/asicpp_eventsim.dir/elaborate.cpp.o.d"
  "CMakeFiles/asicpp_eventsim.dir/kernel.cpp.o"
  "CMakeFiles/asicpp_eventsim.dir/kernel.cpp.o.d"
  "libasicpp_eventsim.a"
  "libasicpp_eventsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_eventsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
