# Empty dependencies file for asicpp_eventsim.
# This may be replaced when dependencies are built.
