
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eventsim/elaborate.cpp" "src/eventsim/CMakeFiles/asicpp_eventsim.dir/elaborate.cpp.o" "gcc" "src/eventsim/CMakeFiles/asicpp_eventsim.dir/elaborate.cpp.o.d"
  "/root/repo/src/eventsim/kernel.cpp" "src/eventsim/CMakeFiles/asicpp_eventsim.dir/kernel.cpp.o" "gcc" "src/eventsim/CMakeFiles/asicpp_eventsim.dir/kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdl/CMakeFiles/asicpp_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/asicpp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asicpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/asicpp_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sfg/CMakeFiles/asicpp_sfg.dir/DependInfo.cmake"
  "/root/repo/build/src/fixpt/CMakeFiles/asicpp_fixpt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
