# Empty dependencies file for asicpp_sim.
# This may be replaced when dependencies are built.
