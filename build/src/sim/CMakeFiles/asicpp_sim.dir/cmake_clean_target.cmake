file(REMOVE_RECURSE
  "libasicpp_sim.a"
)
