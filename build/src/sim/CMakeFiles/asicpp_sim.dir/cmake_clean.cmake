file(REMOVE_RECURSE
  "CMakeFiles/asicpp_sim.dir/compiled.cpp.o"
  "CMakeFiles/asicpp_sim.dir/compiled.cpp.o.d"
  "CMakeFiles/asicpp_sim.dir/cppgen.cpp.o"
  "CMakeFiles/asicpp_sim.dir/cppgen.cpp.o.d"
  "CMakeFiles/asicpp_sim.dir/recorder.cpp.o"
  "CMakeFiles/asicpp_sim.dir/recorder.cpp.o.d"
  "CMakeFiles/asicpp_sim.dir/tape.cpp.o"
  "CMakeFiles/asicpp_sim.dir/tape.cpp.o.d"
  "CMakeFiles/asicpp_sim.dir/vcd.cpp.o"
  "CMakeFiles/asicpp_sim.dir/vcd.cpp.o.d"
  "libasicpp_sim.a"
  "libasicpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
