file(REMOVE_RECURSE
  "libasicpp_sched.a"
)
