
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/assert.cpp" "src/sched/CMakeFiles/asicpp_sched.dir/assert.cpp.o" "gcc" "src/sched/CMakeFiles/asicpp_sched.dir/assert.cpp.o.d"
  "/root/repo/src/sched/cyclesched.cpp" "src/sched/CMakeFiles/asicpp_sched.dir/cyclesched.cpp.o" "gcc" "src/sched/CMakeFiles/asicpp_sched.dir/cyclesched.cpp.o.d"
  "/root/repo/src/sched/dfadapter.cpp" "src/sched/CMakeFiles/asicpp_sched.dir/dfadapter.cpp.o" "gcc" "src/sched/CMakeFiles/asicpp_sched.dir/dfadapter.cpp.o.d"
  "/root/repo/src/sched/fsmcomp.cpp" "src/sched/CMakeFiles/asicpp_sched.dir/fsmcomp.cpp.o" "gcc" "src/sched/CMakeFiles/asicpp_sched.dir/fsmcomp.cpp.o.d"
  "/root/repo/src/sched/net.cpp" "src/sched/CMakeFiles/asicpp_sched.dir/net.cpp.o" "gcc" "src/sched/CMakeFiles/asicpp_sched.dir/net.cpp.o.d"
  "/root/repo/src/sched/untimed.cpp" "src/sched/CMakeFiles/asicpp_sched.dir/untimed.cpp.o" "gcc" "src/sched/CMakeFiles/asicpp_sched.dir/untimed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/asicpp_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sfg/CMakeFiles/asicpp_sfg.dir/DependInfo.cmake"
  "/root/repo/build/src/fixpt/CMakeFiles/asicpp_fixpt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
