file(REMOVE_RECURSE
  "CMakeFiles/asicpp_sched.dir/assert.cpp.o"
  "CMakeFiles/asicpp_sched.dir/assert.cpp.o.d"
  "CMakeFiles/asicpp_sched.dir/cyclesched.cpp.o"
  "CMakeFiles/asicpp_sched.dir/cyclesched.cpp.o.d"
  "CMakeFiles/asicpp_sched.dir/dfadapter.cpp.o"
  "CMakeFiles/asicpp_sched.dir/dfadapter.cpp.o.d"
  "CMakeFiles/asicpp_sched.dir/fsmcomp.cpp.o"
  "CMakeFiles/asicpp_sched.dir/fsmcomp.cpp.o.d"
  "CMakeFiles/asicpp_sched.dir/net.cpp.o"
  "CMakeFiles/asicpp_sched.dir/net.cpp.o.d"
  "CMakeFiles/asicpp_sched.dir/untimed.cpp.o"
  "CMakeFiles/asicpp_sched.dir/untimed.cpp.o.d"
  "libasicpp_sched.a"
  "libasicpp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
