# Empty compiler generated dependencies file for asicpp_sched.
# This may be replaced when dependencies are built.
