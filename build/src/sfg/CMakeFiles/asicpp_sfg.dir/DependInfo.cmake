
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfg/clk.cpp" "src/sfg/CMakeFiles/asicpp_sfg.dir/clk.cpp.o" "gcc" "src/sfg/CMakeFiles/asicpp_sfg.dir/clk.cpp.o.d"
  "/root/repo/src/sfg/dot.cpp" "src/sfg/CMakeFiles/asicpp_sfg.dir/dot.cpp.o" "gcc" "src/sfg/CMakeFiles/asicpp_sfg.dir/dot.cpp.o.d"
  "/root/repo/src/sfg/eval.cpp" "src/sfg/CMakeFiles/asicpp_sfg.dir/eval.cpp.o" "gcc" "src/sfg/CMakeFiles/asicpp_sfg.dir/eval.cpp.o.d"
  "/root/repo/src/sfg/sfg.cpp" "src/sfg/CMakeFiles/asicpp_sfg.dir/sfg.cpp.o" "gcc" "src/sfg/CMakeFiles/asicpp_sfg.dir/sfg.cpp.o.d"
  "/root/repo/src/sfg/sig.cpp" "src/sfg/CMakeFiles/asicpp_sfg.dir/sig.cpp.o" "gcc" "src/sfg/CMakeFiles/asicpp_sfg.dir/sig.cpp.o.d"
  "/root/repo/src/sfg/wlopt.cpp" "src/sfg/CMakeFiles/asicpp_sfg.dir/wlopt.cpp.o" "gcc" "src/sfg/CMakeFiles/asicpp_sfg.dir/wlopt.cpp.o.d"
  "/root/repo/src/sfg/wordlen.cpp" "src/sfg/CMakeFiles/asicpp_sfg.dir/wordlen.cpp.o" "gcc" "src/sfg/CMakeFiles/asicpp_sfg.dir/wordlen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fixpt/CMakeFiles/asicpp_fixpt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
