# Empty compiler generated dependencies file for asicpp_sfg.
# This may be replaced when dependencies are built.
