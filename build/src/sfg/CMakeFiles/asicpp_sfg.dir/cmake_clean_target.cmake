file(REMOVE_RECURSE
  "libasicpp_sfg.a"
)
