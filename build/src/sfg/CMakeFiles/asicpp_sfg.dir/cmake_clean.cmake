file(REMOVE_RECURSE
  "CMakeFiles/asicpp_sfg.dir/clk.cpp.o"
  "CMakeFiles/asicpp_sfg.dir/clk.cpp.o.d"
  "CMakeFiles/asicpp_sfg.dir/dot.cpp.o"
  "CMakeFiles/asicpp_sfg.dir/dot.cpp.o.d"
  "CMakeFiles/asicpp_sfg.dir/eval.cpp.o"
  "CMakeFiles/asicpp_sfg.dir/eval.cpp.o.d"
  "CMakeFiles/asicpp_sfg.dir/sfg.cpp.o"
  "CMakeFiles/asicpp_sfg.dir/sfg.cpp.o.d"
  "CMakeFiles/asicpp_sfg.dir/sig.cpp.o"
  "CMakeFiles/asicpp_sfg.dir/sig.cpp.o.d"
  "CMakeFiles/asicpp_sfg.dir/wlopt.cpp.o"
  "CMakeFiles/asicpp_sfg.dir/wlopt.cpp.o.d"
  "CMakeFiles/asicpp_sfg.dir/wordlen.cpp.o"
  "CMakeFiles/asicpp_sfg.dir/wordlen.cpp.o.d"
  "libasicpp_sfg.a"
  "libasicpp_sfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_sfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
