file(REMOVE_RECURSE
  "CMakeFiles/asicpp_dect.dir/hcor.cpp.o"
  "CMakeFiles/asicpp_dect.dir/hcor.cpp.o.d"
  "CMakeFiles/asicpp_dect.dir/link.cpp.o"
  "CMakeFiles/asicpp_dect.dir/link.cpp.o.d"
  "CMakeFiles/asicpp_dect.dir/vliw.cpp.o"
  "CMakeFiles/asicpp_dect.dir/vliw.cpp.o.d"
  "libasicpp_dect.a"
  "libasicpp_dect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_dect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
