file(REMOVE_RECURSE
  "libasicpp_dect.a"
)
