# Empty compiler generated dependencies file for asicpp_dect.
# This may be replaced when dependencies are built.
