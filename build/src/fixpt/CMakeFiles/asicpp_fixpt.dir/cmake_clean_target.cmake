file(REMOVE_RECURSE
  "libasicpp_fixpt.a"
)
