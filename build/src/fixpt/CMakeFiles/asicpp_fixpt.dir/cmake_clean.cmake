file(REMOVE_RECURSE
  "CMakeFiles/asicpp_fixpt.dir/bitvector.cpp.o"
  "CMakeFiles/asicpp_fixpt.dir/bitvector.cpp.o.d"
  "CMakeFiles/asicpp_fixpt.dir/fixbits.cpp.o"
  "CMakeFiles/asicpp_fixpt.dir/fixbits.cpp.o.d"
  "CMakeFiles/asicpp_fixpt.dir/fixed.cpp.o"
  "CMakeFiles/asicpp_fixpt.dir/fixed.cpp.o.d"
  "CMakeFiles/asicpp_fixpt.dir/format.cpp.o"
  "CMakeFiles/asicpp_fixpt.dir/format.cpp.o.d"
  "libasicpp_fixpt.a"
  "libasicpp_fixpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_fixpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
