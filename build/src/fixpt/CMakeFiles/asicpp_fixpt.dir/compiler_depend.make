# Empty compiler generated dependencies file for asicpp_fixpt.
# This may be replaced when dependencies are built.
