
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fixpt/bitvector.cpp" "src/fixpt/CMakeFiles/asicpp_fixpt.dir/bitvector.cpp.o" "gcc" "src/fixpt/CMakeFiles/asicpp_fixpt.dir/bitvector.cpp.o.d"
  "/root/repo/src/fixpt/fixbits.cpp" "src/fixpt/CMakeFiles/asicpp_fixpt.dir/fixbits.cpp.o" "gcc" "src/fixpt/CMakeFiles/asicpp_fixpt.dir/fixbits.cpp.o.d"
  "/root/repo/src/fixpt/fixed.cpp" "src/fixpt/CMakeFiles/asicpp_fixpt.dir/fixed.cpp.o" "gcc" "src/fixpt/CMakeFiles/asicpp_fixpt.dir/fixed.cpp.o.d"
  "/root/repo/src/fixpt/format.cpp" "src/fixpt/CMakeFiles/asicpp_fixpt.dir/format.cpp.o" "gcc" "src/fixpt/CMakeFiles/asicpp_fixpt.dir/format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
