# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("fixpt")
subdirs("sfg")
subdirs("fsm")
subdirs("df")
subdirs("sched")
subdirs("sim")
subdirs("eventsim")
subdirs("netlist")
subdirs("hdl")
subdirs("synth")
subdirs("dect")
