file(REMOVE_RECURSE
  "libasicpp_hdl.a"
)
