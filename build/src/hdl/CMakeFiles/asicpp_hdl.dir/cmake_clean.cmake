file(REMOVE_RECURSE
  "CMakeFiles/asicpp_hdl.dir/hdlgen.cpp.o"
  "CMakeFiles/asicpp_hdl.dir/hdlgen.cpp.o.d"
  "CMakeFiles/asicpp_hdl.dir/model.cpp.o"
  "CMakeFiles/asicpp_hdl.dir/model.cpp.o.d"
  "CMakeFiles/asicpp_hdl.dir/testbench.cpp.o"
  "CMakeFiles/asicpp_hdl.dir/testbench.cpp.o.d"
  "libasicpp_hdl.a"
  "libasicpp_hdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_hdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
