# Empty compiler generated dependencies file for asicpp_hdl.
# This may be replaced when dependencies are built.
