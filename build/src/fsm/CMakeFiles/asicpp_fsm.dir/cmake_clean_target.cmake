file(REMOVE_RECURSE
  "libasicpp_fsm.a"
)
