
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/fsm.cpp" "src/fsm/CMakeFiles/asicpp_fsm.dir/fsm.cpp.o" "gcc" "src/fsm/CMakeFiles/asicpp_fsm.dir/fsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfg/CMakeFiles/asicpp_sfg.dir/DependInfo.cmake"
  "/root/repo/build/src/fixpt/CMakeFiles/asicpp_fixpt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
