file(REMOVE_RECURSE
  "CMakeFiles/asicpp_fsm.dir/fsm.cpp.o"
  "CMakeFiles/asicpp_fsm.dir/fsm.cpp.o.d"
  "libasicpp_fsm.a"
  "libasicpp_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
