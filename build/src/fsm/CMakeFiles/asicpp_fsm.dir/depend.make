# Empty dependencies file for asicpp_fsm.
# This may be replaced when dependencies are built.
