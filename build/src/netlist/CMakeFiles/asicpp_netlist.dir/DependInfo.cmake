
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/activity.cpp" "src/netlist/CMakeFiles/asicpp_netlist.dir/activity.cpp.o" "gcc" "src/netlist/CMakeFiles/asicpp_netlist.dir/activity.cpp.o.d"
  "/root/repo/src/netlist/equiv.cpp" "src/netlist/CMakeFiles/asicpp_netlist.dir/equiv.cpp.o" "gcc" "src/netlist/CMakeFiles/asicpp_netlist.dir/equiv.cpp.o.d"
  "/root/repo/src/netlist/fault.cpp" "src/netlist/CMakeFiles/asicpp_netlist.dir/fault.cpp.o" "gcc" "src/netlist/CMakeFiles/asicpp_netlist.dir/fault.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/asicpp_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/asicpp_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/netsim.cpp" "src/netlist/CMakeFiles/asicpp_netlist.dir/netsim.cpp.o" "gcc" "src/netlist/CMakeFiles/asicpp_netlist.dir/netsim.cpp.o.d"
  "/root/repo/src/netlist/timing.cpp" "src/netlist/CMakeFiles/asicpp_netlist.dir/timing.cpp.o" "gcc" "src/netlist/CMakeFiles/asicpp_netlist.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
