# Empty compiler generated dependencies file for asicpp_netlist.
# This may be replaced when dependencies are built.
