file(REMOVE_RECURSE
  "CMakeFiles/asicpp_netlist.dir/activity.cpp.o"
  "CMakeFiles/asicpp_netlist.dir/activity.cpp.o.d"
  "CMakeFiles/asicpp_netlist.dir/equiv.cpp.o"
  "CMakeFiles/asicpp_netlist.dir/equiv.cpp.o.d"
  "CMakeFiles/asicpp_netlist.dir/fault.cpp.o"
  "CMakeFiles/asicpp_netlist.dir/fault.cpp.o.d"
  "CMakeFiles/asicpp_netlist.dir/netlist.cpp.o"
  "CMakeFiles/asicpp_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/asicpp_netlist.dir/netsim.cpp.o"
  "CMakeFiles/asicpp_netlist.dir/netsim.cpp.o.d"
  "CMakeFiles/asicpp_netlist.dir/timing.cpp.o"
  "CMakeFiles/asicpp_netlist.dir/timing.cpp.o.d"
  "libasicpp_netlist.a"
  "libasicpp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
