file(REMOVE_RECURSE
  "libasicpp_netlist.a"
)
