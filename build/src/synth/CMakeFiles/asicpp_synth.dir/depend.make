# Empty dependencies file for asicpp_synth.
# This may be replaced when dependencies are built.
