file(REMOVE_RECURSE
  "libasicpp_synth.a"
)
