
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/dpsynth.cpp" "src/synth/CMakeFiles/asicpp_synth.dir/dpsynth.cpp.o" "gcc" "src/synth/CMakeFiles/asicpp_synth.dir/dpsynth.cpp.o.d"
  "/root/repo/src/synth/optimize.cpp" "src/synth/CMakeFiles/asicpp_synth.dir/optimize.cpp.o" "gcc" "src/synth/CMakeFiles/asicpp_synth.dir/optimize.cpp.o.d"
  "/root/repo/src/synth/qm.cpp" "src/synth/CMakeFiles/asicpp_synth.dir/qm.cpp.o" "gcc" "src/synth/CMakeFiles/asicpp_synth.dir/qm.cpp.o.d"
  "/root/repo/src/synth/report.cpp" "src/synth/CMakeFiles/asicpp_synth.dir/report.cpp.o" "gcc" "src/synth/CMakeFiles/asicpp_synth.dir/report.cpp.o.d"
  "/root/repo/src/synth/system.cpp" "src/synth/CMakeFiles/asicpp_synth.dir/system.cpp.o" "gcc" "src/synth/CMakeFiles/asicpp_synth.dir/system.cpp.o.d"
  "/root/repo/src/synth/techmap.cpp" "src/synth/CMakeFiles/asicpp_synth.dir/techmap.cpp.o" "gcc" "src/synth/CMakeFiles/asicpp_synth.dir/techmap.cpp.o.d"
  "/root/repo/src/synth/wordnet.cpp" "src/synth/CMakeFiles/asicpp_synth.dir/wordnet.cpp.o" "gcc" "src/synth/CMakeFiles/asicpp_synth.dir/wordnet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdl/CMakeFiles/asicpp_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/asicpp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/asicpp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asicpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/asicpp_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sfg/CMakeFiles/asicpp_sfg.dir/DependInfo.cmake"
  "/root/repo/build/src/fixpt/CMakeFiles/asicpp_fixpt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
