file(REMOVE_RECURSE
  "CMakeFiles/asicpp_synth.dir/dpsynth.cpp.o"
  "CMakeFiles/asicpp_synth.dir/dpsynth.cpp.o.d"
  "CMakeFiles/asicpp_synth.dir/optimize.cpp.o"
  "CMakeFiles/asicpp_synth.dir/optimize.cpp.o.d"
  "CMakeFiles/asicpp_synth.dir/qm.cpp.o"
  "CMakeFiles/asicpp_synth.dir/qm.cpp.o.d"
  "CMakeFiles/asicpp_synth.dir/report.cpp.o"
  "CMakeFiles/asicpp_synth.dir/report.cpp.o.d"
  "CMakeFiles/asicpp_synth.dir/system.cpp.o"
  "CMakeFiles/asicpp_synth.dir/system.cpp.o.d"
  "CMakeFiles/asicpp_synth.dir/techmap.cpp.o"
  "CMakeFiles/asicpp_synth.dir/techmap.cpp.o.d"
  "CMakeFiles/asicpp_synth.dir/wordnet.cpp.o"
  "CMakeFiles/asicpp_synth.dir/wordnet.cpp.o.d"
  "libasicpp_synth.a"
  "libasicpp_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
