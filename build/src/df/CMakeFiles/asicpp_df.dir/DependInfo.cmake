
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/df/dynsched.cpp" "src/df/CMakeFiles/asicpp_df.dir/dynsched.cpp.o" "gcc" "src/df/CMakeFiles/asicpp_df.dir/dynsched.cpp.o.d"
  "/root/repo/src/df/process.cpp" "src/df/CMakeFiles/asicpp_df.dir/process.cpp.o" "gcc" "src/df/CMakeFiles/asicpp_df.dir/process.cpp.o.d"
  "/root/repo/src/df/sdf.cpp" "src/df/CMakeFiles/asicpp_df.dir/sdf.cpp.o" "gcc" "src/df/CMakeFiles/asicpp_df.dir/sdf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fixpt/CMakeFiles/asicpp_fixpt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
