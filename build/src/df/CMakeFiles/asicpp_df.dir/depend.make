# Empty dependencies file for asicpp_df.
# This may be replaced when dependencies are built.
