file(REMOVE_RECURSE
  "libasicpp_df.a"
)
