file(REMOVE_RECURSE
  "CMakeFiles/asicpp_df.dir/dynsched.cpp.o"
  "CMakeFiles/asicpp_df.dir/dynsched.cpp.o.d"
  "CMakeFiles/asicpp_df.dir/process.cpp.o"
  "CMakeFiles/asicpp_df.dir/process.cpp.o.d"
  "CMakeFiles/asicpp_df.dir/sdf.cpp.o"
  "CMakeFiles/asicpp_df.dir/sdf.cpp.o.d"
  "libasicpp_df.a"
  "libasicpp_df.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asicpp_df.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
