file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_hcor.dir/bench_table1_hcor.cpp.o"
  "CMakeFiles/bench_table1_hcor.dir/bench_table1_hcor.cpp.o.d"
  "bench_table1_hcor"
  "bench_table1_hcor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_hcor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
