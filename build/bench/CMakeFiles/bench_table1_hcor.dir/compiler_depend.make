# Empty compiler generated dependencies file for bench_table1_hcor.
# This may be replaced when dependencies are built.
