# Empty dependencies file for bench_fig8_synth.
# This may be replaced when dependencies are built.
