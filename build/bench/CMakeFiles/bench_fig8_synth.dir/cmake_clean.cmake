file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_synth.dir/bench_fig8_synth.cpp.o"
  "CMakeFiles/bench_fig8_synth.dir/bench_fig8_synth.cpp.o.d"
  "bench_fig8_synth"
  "bench_fig8_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
