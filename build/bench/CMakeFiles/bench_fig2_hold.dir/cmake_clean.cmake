file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hold.dir/bench_fig2_hold.cpp.o"
  "CMakeFiles/bench_fig2_hold.dir/bench_fig2_hold.cpp.o.d"
  "bench_fig2_hold"
  "bench_fig2_hold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
