# Empty dependencies file for bench_fig2_hold.
# This may be replaced when dependencies are built.
