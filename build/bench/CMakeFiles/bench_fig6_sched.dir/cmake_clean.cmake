file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sched.dir/bench_fig6_sched.cpp.o"
  "CMakeFiles/bench_fig6_sched.dir/bench_fig6_sched.cpp.o.d"
  "bench_fig6_sched"
  "bench_fig6_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
