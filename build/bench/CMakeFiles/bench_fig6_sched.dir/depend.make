# Empty dependencies file for bench_fig6_sched.
# This may be replaced when dependencies are built.
