# Empty dependencies file for bench_fig7_codegen.
# This may be replaced when dependencies are built.
