# Empty compiler generated dependencies file for bench_fig4_fsm.
# This may be replaced when dependencies are built.
