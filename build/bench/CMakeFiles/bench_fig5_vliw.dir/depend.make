# Empty dependencies file for bench_fig5_vliw.
# This may be replaced when dependencies are built.
