file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dect.dir/bench_table1_dect.cpp.o"
  "CMakeFiles/bench_table1_dect.dir/bench_table1_dect.cpp.o.d"
  "bench_table1_dect"
  "bench_table1_dect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
