# Empty dependencies file for bench_table1_dect.
# This may be replaced when dependencies are built.
