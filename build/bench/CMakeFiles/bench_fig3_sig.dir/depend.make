# Empty dependencies file for bench_fig3_sig.
# This may be replaced when dependencies are built.
