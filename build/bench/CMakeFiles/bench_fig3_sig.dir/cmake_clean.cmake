file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sig.dir/bench_fig3_sig.cpp.o"
  "CMakeFiles/bench_fig3_sig.dir/bench_fig3_sig.cpp.o.d"
  "bench_fig3_sig"
  "bench_fig3_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
