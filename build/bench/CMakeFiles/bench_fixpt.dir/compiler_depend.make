# Empty compiler generated dependencies file for bench_fixpt.
# This may be replaced when dependencies are built.
