file(REMOVE_RECURSE
  "CMakeFiles/bench_fixpt.dir/bench_fixpt.cpp.o"
  "CMakeFiles/bench_fixpt.dir/bench_fixpt.cpp.o.d"
  "bench_fixpt"
  "bench_fixpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fixpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
