file(REMOVE_RECURSE
  "CMakeFiles/dect_transceiver.dir/dect_transceiver.cpp.o"
  "CMakeFiles/dect_transceiver.dir/dect_transceiver.cpp.o.d"
  "dect_transceiver"
  "dect_transceiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dect_transceiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
