# Empty dependencies file for dect_transceiver.
# This may be replaced when dependencies are built.
