# Empty dependencies file for multirate_decimator.
# This may be replaced when dependencies are built.
