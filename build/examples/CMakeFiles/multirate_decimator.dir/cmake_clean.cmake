file(REMOVE_RECURSE
  "CMakeFiles/multirate_decimator.dir/multirate_decimator.cpp.o"
  "CMakeFiles/multirate_decimator.dir/multirate_decimator.cpp.o.d"
  "multirate_decimator"
  "multirate_decimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirate_decimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
