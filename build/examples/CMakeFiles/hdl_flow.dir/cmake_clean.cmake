file(REMOVE_RECURSE
  "CMakeFiles/hdl_flow.dir/hdl_flow.cpp.o"
  "CMakeFiles/hdl_flow.dir/hdl_flow.cpp.o.d"
  "hdl_flow"
  "hdl_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdl_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
