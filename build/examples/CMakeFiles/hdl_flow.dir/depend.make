# Empty dependencies file for hdl_flow.
# This may be replaced when dependencies are built.
