file(REMOVE_RECURSE
  "CMakeFiles/cable_modem.dir/cable_modem.cpp.o"
  "CMakeFiles/cable_modem.dir/cable_modem.cpp.o.d"
  "cable_modem"
  "cable_modem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_modem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
