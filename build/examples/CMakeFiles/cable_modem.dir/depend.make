# Empty dependencies file for cable_modem.
# This may be replaced when dependencies are built.
