file(REMOVE_RECURSE
  "CMakeFiles/image_compressor.dir/image_compressor.cpp.o"
  "CMakeFiles/image_compressor.dir/image_compressor.cpp.o.d"
  "image_compressor"
  "image_compressor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
