# Empty compiler generated dependencies file for image_compressor.
# This may be replaced when dependencies are built.
