// The single definition of per-operator value semantics.
//
// Every execution engine — interpreted eval, the compiled tape executor,
// the generated standalone C++ simulator — computes operator results
// through these helpers, so the five representations stay bit-identical by
// construction instead of by parallel-maintained switch statements.
// Word-level values are doubles: arithmetic is exact, bitwise operators
// act on the rounded integer interpretation, and quantization happens only
// at format boundaries (kCast, register commit, input load), mirroring the
// paper's section-3 quantization model.
#pragma once

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "fixpt/format.h"
#include "sfg/node.h"

namespace asicpp::opt {

inline long long value_as_int(double v) {
  return static_cast<long long>(std::llround(v));
}

/// Apply one operator to already-evaluated operand values. `fmt` is only
/// read for kCast. Throws for leaves (they carry values, not semantics).
inline double apply_op_value(sfg::Op op, double a, double b, double c,
                             const fixpt::Format& fmt) {
  using sfg::Op;
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kNeg: return -a;
    // Bitwise operators act on the integer interpretation of the value;
    // they are intended for flags, instruction words and address math.
    case Op::kAnd: return static_cast<double>(value_as_int(a) & value_as_int(b));
    case Op::kOr: return static_cast<double>(value_as_int(a) | value_as_int(b));
    case Op::kXor: return static_cast<double>(value_as_int(a) ^ value_as_int(b));
    case Op::kNot: return value_as_int(a) == 0 ? 1.0 : 0.0;
    case Op::kShl: return std::ldexp(a, static_cast<int>(b));
    case Op::kShr: return std::ldexp(a, -static_cast<int>(b));
    case Op::kMux: return a != 0.0 ? b : c;
    case Op::kEq: return a == b ? 1.0 : 0.0;
    case Op::kNe: return a != b ? 1.0 : 0.0;
    case Op::kLt: return a < b ? 1.0 : 0.0;
    case Op::kLe: return a <= b ? 1.0 : 0.0;
    case Op::kGt: return a > b ? 1.0 : 0.0;
    case Op::kGe: return a >= b ? 1.0 : 0.0;
    case Op::kCast: return fixpt::quantize(a, fmt);
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
    case Op::kCount:
      break;
  }
  throw std::logic_error("apply_op_value: leaf node has no operator");
}

/// Double literal emitted as hexfloat so it round-trips exactly through
/// the host compiler, matching the generated unit's stream mode.
inline std::string cpp_double_lit(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return std::string(buf);
}

/// C++ expression text quantizing `a` into `fmt` via the generated unit's
/// `q(...)` helper — the textual form of fixpt::quantize. Used for kCast,
/// net-to-input loads, and register commits.
inline std::string cpp_quantize_expr(const std::string& a,
                                     const fixpt::Format& fmt) {
  return "q(" + a + ", " + std::to_string(fmt.frac_bits()) + ", " +
         cpp_double_lit(fmt.max_value()) + ", " + cpp_double_lit(fmt.min_value()) +
         ", " + std::string(fmt.quant == fixpt::Quant::kRound ? "1" : "0") +
         ", " + std::string(fmt.ovf == fixpt::Overflow::kSaturate ? "1" : "0") +
         ", " + cpp_double_lit(std::ldexp(1.0, fmt.wl)) + ")";
}

/// C++ expression text computing `apply_op_value(op, a, b, c, fmt)` inside
/// the generated standalone simulator. The emitted translation unit defines
/// `ll(double)` (rounded integer interpretation) and `q(...)` (quantize);
/// this helper's output references exactly those names, so the generated
/// code and the in-process engines share one semantics definition.
inline std::string cpp_op_expr(sfg::Op op, const std::string& a,
                               const std::string& b, const std::string& c,
                               const fixpt::Format& fmt) {
  using sfg::Op;
  const auto quantize_call = [&]() { return cpp_quantize_expr(a, fmt); };
  switch (op) {
    case Op::kAdd: return a + " + " + b;
    case Op::kSub: return a + " - " + b;
    case Op::kMul: return a + " * " + b;
    case Op::kNeg: return "-" + a;
    case Op::kAnd: return "(double)(ll(" + a + ") & ll(" + b + "))";
    case Op::kOr: return "(double)(ll(" + a + ") | ll(" + b + "))";
    case Op::kXor: return "(double)(ll(" + a + ") ^ ll(" + b + "))";
    case Op::kNot: return "ll(" + a + ") == 0 ? 1.0 : 0.0";
    case Op::kShl: return "std::ldexp(" + a + ", (int)" + b + ")";
    case Op::kShr: return "std::ldexp(" + a + ", -(int)" + b + ")";
    case Op::kMux: return a + " != 0.0 ? " + b + " : " + c;
    case Op::kEq: return a + " == " + b + " ? 1.0 : 0.0";
    case Op::kNe: return a + " != " + b + " ? 1.0 : 0.0";
    case Op::kLt: return a + " < " + b + " ? 1.0 : 0.0";
    case Op::kLe: return a + " <= " + b + " ? 1.0 : 0.0";
    case Op::kGt: return a + " > " + b + " ? 1.0 : 0.0";
    case Op::kGe: return a + " >= " + b + " ? 1.0 : 0.0";
    case Op::kCast: return quantize_call();
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
    case Op::kCount:
      break;
  }
  throw std::logic_error("cpp_op_expr: leaf node has no operator");
}

}  // namespace asicpp::opt
