// Lowered SFG intermediate representation.
//
// An elaborated Sfg lowers into a linearized, slot-indexed instruction
// list: every reachable node becomes one `LIns` whose position in the list
// is its dense value slot, operands reference strictly smaller slots
// (topological order by construction), and the shared_ptr graph walk is
// gone from the execution path. All five engine backends (interpreted
// eval, compiled tape, generated C++, HDL emission, datapath synthesis)
// consume this form; the pass pipeline in passes.h transforms it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fixpt/format.h"
#include "opt/options.h"
#include "sfg/node.h"

namespace asicpp::sfg {
class Sfg;
}

namespace asicpp::opt {

/// One lowered instruction. Leaves (kInput / kConst / kReg) are
/// instructions too: they load the slot from their origin node (or `cval`
/// for constants), which keeps the executable form entirely linear.
struct LIns {
  sfg::Op op = sfg::Op::kConst;
  std::int32_t a = -1;  ///< operand slots; always < this instruction's slot
  std::int32_t b = -1;
  std::int32_t c = -1;
  fixpt::Format fmt{};   ///< kCast target / declared leaf format
  bool has_fmt = false;
  double cval = 0.0;          ///< kConst value
  sfg::NodePtr origin;        ///< source node; null for pass-created consts

  bool is_leaf() const {
    return op == sfg::Op::kInput || op == sfg::Op::kConst ||
           op == sfg::Op::kReg;
  }
};

struct LoweredSfg {
  std::vector<LIns> ins;  ///< topologically ordered; index == value slot

  struct Out {
    std::string port;
    std::int32_t slot = -1;
    bool needs_inputs = false;  ///< copied from Sfg::Output (analyze())
    sfg::NodePtr node;          ///< original output expression node
  };
  std::vector<Out> outputs;

  struct RegWrite {
    sfg::NodePtr reg;
    std::int32_t slot = -1;
  };
  std::vector<RegWrite> assigns;

  /// Instruction indices (ascending) reachable from the input-independent
  /// outputs — the phase-1 token-production subset.
  std::vector<std::int32_t> pre;

  PassStats stats;

  /// Recompute `pre` from the current outputs/instructions (passes call
  /// this after renumbering slots).
  void recompute_pre();
};

/// Lower an elaborated Sfg (analyze() is called if needed). No passes run;
/// the result mirrors the graph one-to-one, each distinct node appearing
/// exactly once.
LoweredSfg lower(const sfg::Sfg& s);

/// Lower a free-standing expression (FSM guards). The root becomes the
/// single entry of `outputs`, port "".
LoweredSfg lower_expr(const sfg::NodePtr& n);

/// Execute the lowered form over `slots` (size >= ins.size()): leaves load
/// from their origin node / constant, operators apply the shared
/// semantics. `pre_only` restricts execution to the phase-1 subset.
void exec_lowered(const LoweredSfg& l, double* slots, bool pre_only = false);

/// Materialize the (optimized) lowered form back into an expression graph.
/// Leaves reuse their origin nodes; an interior instruction whose operator
/// and operands are unchanged reuses its origin too, so an identity
/// round-trip returns the original nodes and emitted names stay stable.
/// Fresh nodes (restructured instructions, pass-created constants) are
/// named "<prefix><slot>" for deterministic codegen. Returns the node per
/// requested slot.
std::vector<sfg::NodePtr> rebuild(const LoweredSfg& l,
                                  const std::string& prefix);

}  // namespace asicpp::opt
