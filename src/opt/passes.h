// The optimization pass pipeline over the lowered IR.
//
// Passes are value-preserving by construction: every rewrite either
// computes the replacement with the shared semantics helper (folding) or
// redirects a slot to an operand that provably carries the same double
// (identities, CSE). Bitwise identities (x | 0, x & ~0) are deliberately
// absent — bitwise operators reinterpret the rounded integer mantissa, so
// they are not value-identities on the double domain; likewise NOT is a
// logical complement, not an involution, so NOT(NOT x) does not fold.
//
// Each pass returns its rewrite count and is independently callable for
// unit testing; run_passes drives them to a fixpoint (canonicalize, fold,
// identities, CSE) and finishes with one DCE sweep.
#pragma once

#include "opt/ir.h"
#include "opt/options.h"

namespace asicpp::opt {

/// Order the operands of commutative operators (add, mul, and, or, xor,
/// eq, ne) by ascending slot so structurally equal expressions hash equal.
int canonicalize(LoweredSfg& l);

/// Replace instructions whose operands are all constants with the constant
/// result (computed by apply_op_value — exactly the engine semantics), and
/// muxes with a constant selector with the chosen arm.
int fold_constants(LoweredSfg& l);

/// Algebraic identities: x+0, 0+x, x-0, x*1, 1*x, x*0, 0*x, shift-by-0,
/// neg(neg(x)), mux with identical arms.
int simplify_identities(LoweredSfg& l);

/// Structural-hashing common-subexpression elimination.
int cse(LoweredSfg& l);

/// Remove instructions unreachable from the outputs and register
/// assignments, renumbering the surviving slots.
int dce(LoweredSfg& l);

/// Run the pipeline per `opts` (the `lower` flag is ignored here — the
/// caller decided to lower by calling this). Updates l.stats and l.pre.
PassStats run_passes(LoweredSfg& l, const PassOptions& opts);

}  // namespace asicpp::opt
