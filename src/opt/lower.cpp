#include "opt/ir.h"

#include <stdexcept>
#include <unordered_map>

#include "opt/semantics.h"
#include "sfg/sfg.h"

namespace asicpp::opt {

namespace {

/// Iterative post-order lowering; memoized per node so shared
/// subexpressions get exactly one slot.
class Lowerer {
 public:
  explicit Lowerer(LoweredSfg& l) : l_(l) {}

  std::int32_t slot(const sfg::NodePtr& n) {
    const auto it = memo_.find(n.get());
    if (it != memo_.end()) return it->second;

    struct Frame {
      sfg::NodePtr node;
      std::size_t next_arg = 0;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{n});
    std::int32_t result = -1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto mit = memo_.find(f.node.get());
      if (mit != memo_.end()) {
        result = mit->second;
        stack.pop_back();
        continue;
      }
      if (f.next_arg < f.node->args.size()) {
        const sfg::NodePtr& arg = f.node->args[f.next_arg++];
        if (!memo_.count(arg.get())) stack.push_back(Frame{arg});
        continue;
      }
      result = emit(f.node);
      stack.pop_back();
    }
    return result;
  }

 private:
  std::int32_t emit(const sfg::NodePtr& n) {
    LIns ins;
    ins.op = n->op;
    ins.origin = n;
    if (n->op == sfg::Op::kConst) {
      ins.cval = n->value.value();
    } else {
      std::int32_t* argv[3] = {&ins.a, &ins.b, &ins.c};
      if (n->args.size() > 3)
        throw std::logic_error("lower: node with more than 3 operands");
      for (std::size_t i = 0; i < n->args.size(); ++i)
        *argv[i] = memo_.at(n->args[i].get());
    }
    if (n->has_fmt) {
      ins.fmt = n->fmt;
      ins.has_fmt = true;
    }
    const auto s = static_cast<std::int32_t>(l_.ins.size());
    l_.ins.push_back(std::move(ins));
    memo_.emplace(n.get(), s);
    return s;
  }

  LoweredSfg& l_;
  std::unordered_map<const sfg::Node*, std::int32_t> memo_;
};

}  // namespace

void LoweredSfg::recompute_pre() {
  pre.clear();
  std::vector<char> mark(ins.size(), 0);
  std::vector<std::int32_t> work;
  for (const Out& o : outputs) {
    if (!o.needs_inputs && o.slot >= 0) work.push_back(o.slot);
  }
  while (!work.empty()) {
    const std::int32_t s = work.back();
    work.pop_back();
    if (mark[static_cast<std::size_t>(s)]) continue;
    mark[static_cast<std::size_t>(s)] = 1;
    const LIns& i = ins[static_cast<std::size_t>(s)];
    for (const std::int32_t a : {i.a, i.b, i.c})
      if (a >= 0) work.push_back(a);
  }
  for (std::size_t s = 0; s < ins.size(); ++s)
    if (mark[s]) pre.push_back(static_cast<std::int32_t>(s));
}

LoweredSfg lower(const sfg::Sfg& s) {
  s.analyze();
  LoweredSfg l;
  Lowerer lw(l);
  for (const auto& o : s.outputs())
    l.outputs.push_back(
        LoweredSfg::Out{o.port, lw.slot(o.expr), o.needs_inputs, o.expr});
  for (const auto& a : s.reg_assigns())
    l.assigns.push_back(LoweredSfg::RegWrite{a.reg, lw.slot(a.expr)});
  l.recompute_pre();
  l.stats.instrs_before = l.stats.instrs_after =
      static_cast<int>(l.ins.size());
  return l;
}

LoweredSfg lower_expr(const sfg::NodePtr& n) {
  LoweredSfg l;
  Lowerer lw(l);
  l.outputs.push_back(LoweredSfg::Out{"", lw.slot(n), false, n});
  l.recompute_pre();
  l.stats.instrs_before = l.stats.instrs_after =
      static_cast<int>(l.ins.size());
  return l;
}

void exec_lowered(const LoweredSfg& l, double* slots, bool pre_only) {
  const auto step = [&](std::size_t s) {
    const LIns& i = l.ins[s];
    switch (i.op) {
      case sfg::Op::kConst: slots[s] = i.cval; break;
      case sfg::Op::kInput:
      case sfg::Op::kReg: slots[s] = i.origin->value.value(); break;
      default:
        slots[s] = apply_op_value(i.op, slots[i.a],
                                  i.b >= 0 ? slots[i.b] : 0.0,
                                  i.c >= 0 ? slots[i.c] : 0.0, i.fmt);
    }
  };
  if (pre_only) {
    for (const std::int32_t s : l.pre) step(static_cast<std::size_t>(s));
  } else {
    for (std::size_t s = 0; s < l.ins.size(); ++s) step(s);
  }
}

std::vector<sfg::NodePtr> rebuild(const LoweredSfg& l,
                                  const std::string& prefix) {
  std::vector<sfg::NodePtr> nodes(l.ins.size());
  for (std::size_t s = 0; s < l.ins.size(); ++s) {
    const LIns& i = l.ins[s];
    if (i.is_leaf() && i.origin != nullptr) {
      nodes[s] = i.origin;
      continue;
    }
    if (i.op == sfg::Op::kConst) {
      // Pass-created constant with no source node.
      auto n = std::make_shared<sfg::Node>(sfg::Op::kConst);
      n->name = prefix + std::to_string(s);
      n->value = i.has_fmt ? fixpt::Fixed(i.cval, i.fmt)
                           : fixpt::Fixed(i.cval);
      n->fmt = i.fmt;
      n->has_fmt = i.has_fmt;
      nodes[s] = std::move(n);
      continue;
    }
    std::vector<sfg::NodePtr> args;
    for (const std::int32_t a : {i.a, i.b, i.c})
      if (a >= 0) args.push_back(nodes[static_cast<std::size_t>(a)]);
    // Unchanged instruction: keep the original node (stable codegen names,
    // and an identity round-trip returns the input graph).
    if (i.origin != nullptr && i.origin->op == i.op &&
        i.origin->args == args) {
      nodes[s] = i.origin;
      continue;
    }
    auto n = std::make_shared<sfg::Node>(i.op);
    n->name = prefix + std::to_string(s);
    n->args = std::move(args);
    n->fmt = i.fmt;
    n->has_fmt = i.has_fmt;
    nodes[s] = std::move(n);
  }
  return nodes;
}

}  // namespace asicpp::opt
