#include "opt/passes.h"

#include <cstring>
#include <map>
#include <tuple>

#include "opt/semantics.h"

namespace asicpp::opt {

namespace {

bool commutative(sfg::Op op) {
  using sfg::Op;
  // Exact on the double domain: + and * of doubles commute, the bitwise
  // ops commute on the integer interpretation, eq/ne are symmetric.
  // kSub / compares / shifts / mux are ordered; kLt vs kGt is a *different*
  // operator, not a commutation.
  return op == Op::kAdd || op == Op::kMul || op == Op::kAnd ||
         op == Op::kOr || op == Op::kXor || op == Op::kEq || op == Op::kNe;
}

bool is_const(const LoweredSfg& l, std::int32_t s, double v) {
  const LIns& i = l.ins[static_cast<std::size_t>(s)];
  return i.op == sfg::Op::kConst && i.cval == v;
}

bool is_any_const(const LoweredSfg& l, std::int32_t s) {
  return s >= 0 && l.ins[static_cast<std::size_t>(s)].op == sfg::Op::kConst;
}

double cval_of(const LoweredSfg& l, std::int32_t s) {
  return l.ins[static_cast<std::size_t>(s)].cval;
}

/// Rewrite every operand / output / assignment slot through `repl`
/// (chasing chains). repl[i] == i means "unchanged". Returns the number of
/// references actually rewritten: redirected instructions linger in l.ins
/// until DCE, so passes must report effective changes, not re-discoveries
/// of the same stale duplicate — otherwise the fixpoint loop never
/// converges and the per-pass counters inflate by the round count.
int apply_redirects(LoweredSfg& l, std::vector<std::int32_t>& repl) {
  const auto chase = [&](std::int32_t s) {
    while (s >= 0 && repl[static_cast<std::size_t>(s)] != s)
      s = repl[static_cast<std::size_t>(s)];
    return s;
  };
  int changed = 0;
  const auto rewrite = [&](std::int32_t& s) {
    const std::int32_t t = chase(s);
    if (t != s) {
      s = t;
      ++changed;
    }
  };
  for (LIns& i : l.ins) {
    if (i.is_leaf()) continue;
    rewrite(i.a);
    rewrite(i.b);
    rewrite(i.c);
  }
  for (auto& o : l.outputs) rewrite(o.slot);
  for (auto& a : l.assigns) rewrite(a.slot);
  return changed;
}

void make_const(LIns& i, double v, bool keep_fmt) {
  i.op = sfg::Op::kConst;
  i.a = i.b = i.c = -1;
  i.cval = v;
  i.origin = nullptr;  // no source node; rebuild materializes a fresh one
  if (!keep_fmt) {
    i.fmt = fixpt::Format{};
    i.has_fmt = false;
  }
}

}  // namespace

int canonicalize(LoweredSfg& l) {
  int swaps = 0;
  for (LIns& i : l.ins) {
    if (i.is_leaf() || !commutative(i.op)) continue;
    if (i.a > i.b) {
      std::swap(i.a, i.b);
      ++swaps;
    }
  }
  return swaps;
}

int fold_constants(LoweredSfg& l) {
  int folded = 0;
  std::vector<std::int32_t> repl(l.ins.size());
  for (std::size_t s = 0; s < repl.size(); ++s)
    repl[s] = static_cast<std::int32_t>(s);
  bool redirected = false;

  for (std::size_t s = 0; s < l.ins.size(); ++s) {
    LIns& i = l.ins[s];
    if (i.is_leaf()) continue;
    if (i.op == sfg::Op::kMux) {
      // Constant selector: the mux *is* the chosen arm.
      if (is_any_const(l, i.a)) {
        repl[s] = cval_of(l, i.a) != 0.0 ? i.b : i.c;
        redirected = true;
      }
      continue;
    }
    const int arity = sfg::op_arity(i.op);
    bool all_const = is_any_const(l, i.a);
    if (arity >= 2) all_const = all_const && is_any_const(l, i.b);
    if (!all_const) continue;
    const double v = apply_op_value(i.op, cval_of(l, i.a),
                                    arity >= 2 ? cval_of(l, i.b) : 0.0, 0.0,
                                    i.fmt);
    // A folded cast keeps its declared format so width inference still
    // sees the quantization boundary.
    make_const(i, v, /*keep_fmt=*/i.op == sfg::Op::kCast);
    ++folded;
  }
  if (redirected) folded += apply_redirects(l, repl);
  return folded;
}

int simplify_identities(LoweredSfg& l) {
  using sfg::Op;
  int hits = 0;
  std::vector<std::int32_t> repl(l.ins.size());
  for (std::size_t s = 0; s < repl.size(); ++s)
    repl[s] = static_cast<std::int32_t>(s);
  bool redirected = false;
  const auto redirect = [&](std::size_t from, std::int32_t to) {
    repl[from] = to;
    redirected = true;
  };

  for (std::size_t s = 0; s < l.ins.size(); ++s) {
    LIns& i = l.ins[s];
    switch (i.op) {
      case Op::kAdd:
        if (is_const(l, i.a, 0.0)) redirect(s, i.b);
        else if (is_const(l, i.b, 0.0)) redirect(s, i.a);
        break;
      case Op::kSub:
        if (is_const(l, i.b, 0.0)) redirect(s, i.a);
        break;
      case Op::kMul:
        if (is_const(l, i.a, 1.0)) redirect(s, i.b);
        else if (is_const(l, i.b, 1.0)) redirect(s, i.a);
        else if (is_const(l, i.a, 0.0) || is_const(l, i.b, 0.0)) {
          make_const(i, 0.0, false);
          ++hits;
        }
        break;
      case Op::kShl:
      case Op::kShr:
        if (is_const(l, i.b, 0.0)) redirect(s, i.a);
        break;
      case Op::kNeg: {
        const LIns& arg = l.ins[static_cast<std::size_t>(i.a)];
        if (arg.op == Op::kNeg) redirect(s, arg.a);
        break;
      }
      case Op::kMux:
        if (i.b == i.c) redirect(s, i.b);
        break;
      default:
        break;
    }
  }
  if (redirected) hits += apply_redirects(l, repl);
  return hits;
}

int cse(LoweredSfg& l) {
  // Structural key: operator, operand slots, identity for leaves, the bit
  // pattern for constants, and the format when declared (a cast to a
  // different format is a different computation).
  using Key = std::tuple<int, std::int32_t, std::int32_t, std::int32_t,
                         const void*, long long, int, int, int>;
  const auto key_of = [](const LIns& i) {
    long long bits = 0;
    if (i.op == sfg::Op::kConst)
      std::memcpy(&bits, &i.cval, sizeof bits);
    const void* origin =
        (i.op == sfg::Op::kInput || i.op == sfg::Op::kReg)
            ? static_cast<const void*>(i.origin.get())
            : nullptr;
    int wl = 0, iwl = 0, flags = 0;
    if (i.has_fmt) {
      wl = i.fmt.wl;
      iwl = i.fmt.iwl;
      flags = (i.fmt.is_signed ? 1 : 0) |
              (i.fmt.quant == fixpt::Quant::kRound ? 2 : 0) |
              (i.fmt.ovf == fixpt::Overflow::kWrap ? 4 : 0) | 8;
    }
    return Key{static_cast<int>(i.op), i.a, i.b, i.c, origin, bits, wl, iwl,
               flags};
  };

  int merged = 0;
  std::vector<std::int32_t> repl(l.ins.size());
  for (std::size_t s = 0; s < repl.size(); ++s)
    repl[s] = static_cast<std::int32_t>(s);
  std::map<Key, std::int32_t> seen;
  bool redirected = false;
  for (std::size_t s = 0; s < l.ins.size(); ++s) {
    const auto [it, fresh] =
        seen.emplace(key_of(l.ins[s]), static_cast<std::int32_t>(s));
    if (!fresh) {
      repl[s] = it->second;
      redirected = true;
    }
  }
  if (redirected) merged = apply_redirects(l, repl);
  return merged;
}

int dce(LoweredSfg& l) {
  std::vector<char> live(l.ins.size(), 0);
  std::vector<std::int32_t> work;
  for (const auto& o : l.outputs)
    if (o.slot >= 0) work.push_back(o.slot);
  for (const auto& a : l.assigns)
    if (a.slot >= 0) work.push_back(a.slot);
  while (!work.empty()) {
    const std::int32_t s = work.back();
    work.pop_back();
    if (live[static_cast<std::size_t>(s)]) continue;
    live[static_cast<std::size_t>(s)] = 1;
    const LIns& i = l.ins[static_cast<std::size_t>(s)];
    for (const std::int32_t a : {i.a, i.b, i.c})
      if (a >= 0) work.push_back(a);
  }

  std::vector<std::int32_t> renum(l.ins.size(), -1);
  std::vector<LIns> kept;
  kept.reserve(l.ins.size());
  for (std::size_t s = 0; s < l.ins.size(); ++s) {
    if (!live[s]) continue;
    renum[s] = static_cast<std::int32_t>(kept.size());
    kept.push_back(std::move(l.ins[s]));
  }
  const int removed = static_cast<int>(l.ins.size() - kept.size());
  if (removed == 0) {
    l.ins = std::move(kept);
    return 0;
  }
  for (LIns& i : kept) {
    if (i.a >= 0) i.a = renum[static_cast<std::size_t>(i.a)];
    if (i.b >= 0) i.b = renum[static_cast<std::size_t>(i.b)];
    if (i.c >= 0) i.c = renum[static_cast<std::size_t>(i.c)];
  }
  l.ins = std::move(kept);
  for (auto& o : l.outputs)
    if (o.slot >= 0) o.slot = renum[static_cast<std::size_t>(o.slot)];
  for (auto& a : l.assigns)
    if (a.slot >= 0) a.slot = renum[static_cast<std::size_t>(a.slot)];
  l.recompute_pre();
  return removed;
}

PassStats run_passes(LoweredSfg& l, const PassOptions& opts) {
  PassStats st;
  st.instrs_before = static_cast<int>(l.ins.size());
  for (int round = 0; round < 64; ++round) {
    int changes = 0;
    if (opts.canonicalize) {
      const int n = canonicalize(l);
      st.canonicalized += n;
      changes += n;
    }
    if (opts.fold) {
      const int n = fold_constants(l);
      st.folded += n;
      changes += n;
    }
    if (opts.identities) {
      const int n = simplify_identities(l);
      st.simplified += n;
      changes += n;
    }
    if (opts.cse) {
      const int n = cse(l);
      st.cse_hits += n;
      changes += n;
    }
    if (changes == 0) break;
  }
  if (opts.dce) st.dead = dce(l);
  l.recompute_pre();
  st.instrs_after = static_cast<int>(l.ins.size());
  l.stats = st;
  return st;
}

}  // namespace asicpp::opt
