// Pass-pipeline configuration carried by RunOptions and the engines.
//
// Every field is an independent toggle so each pass can be exercised (or
// excluded) on its own, both in unit tests and through the differential
// fuzzer's passes-on/off axis. `lower` is the master switch: with it off
// the interpreted engines fall back to the original recursive graph walk
// and the tape/codegen/HDL consumers lower without optimizing, which keeps
// the pre-IR behaviour reachable as a differential reference.
#pragma once

namespace asicpp::opt {

struct PassOptions {
  bool lower = true;         ///< consume the lowered IR (off: legacy walks)
  bool canonicalize = true;  ///< commutative operand ordering
  bool fold = true;          ///< constant folding
  bool identities = true;    ///< algebraic identity simplification
  bool cse = true;           ///< structural-hashing common-subexpression elim
  bool dce = true;           ///< dead-instruction elimination

  /// Everything off: raw lowering, legacy interpreted evaluation.
  static PassOptions none() {
    PassOptions p;
    p.lower = p.canonicalize = p.fold = p.identities = p.cse = p.dce = false;
    return p;
  }
  /// Lowered IR consumed, but no transformation applied.
  static PassOptions raw() {
    PassOptions p = none();
    p.lower = true;
    return p;
  }

  bool any_pass() const {
    return canonicalize || fold || identities || cse || dce;
  }

  bool operator==(const PassOptions&) const = default;
};

/// What the pipeline did to one lowered SFG.
struct PassStats {
  int instrs_before = 0;
  int instrs_after = 0;
  int canonicalized = 0;  ///< operand pairs reordered
  int folded = 0;         ///< instructions replaced by constants
  int simplified = 0;     ///< algebraic identities applied
  int cse_hits = 0;       ///< duplicate instructions merged
  int dead = 0;           ///< unreferenced instructions removed

  PassStats& operator+=(const PassStats& o) {
    instrs_before += o.instrs_before;
    instrs_after += o.instrs_after;
    canonicalized += o.canonicalized;
    folded += o.folded;
    simplified += o.simplified;
    cse_hits += o.cse_hits;
    dead += o.dead;
    return *this;
  }
};

}  // namespace asicpp::opt
