#include "fsm/fsm.h"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "sfg/eval.h"

namespace asicpp::fsm {

bool Cnd::eval(std::uint64_t stamp) const {
  return sfg::eval(expr_.node(), stamp).value() != 0.0;
}

// --- State ---

TransitionBuilder State::operator<<(const Cnd& c) const {
  TransitionBuilder b(*this);
  b << c;
  return b;
}

TransitionBuilder State::operator<<(AlwaysTag) const {
  TransitionBuilder b(*this);
  b << always;
  return b;
}

TransitionBuilder State::operator<<(sfg::Sfg& action) const {
  TransitionBuilder b(*this);
  b << action;
  return b;
}

const std::string& State::name() const { return fsm_->state_name(index_); }

// --- TransitionBuilder ---

TransitionBuilder::TransitionBuilder(TransitionBuilder&& o) noexcept
    : from_(o.from_),
      guards_(std::move(o.guards_)),
      always_(o.always_),
      actions_(std::move(o.actions_)),
      done_(o.done_) {
  o.done_ = true;  // the moved-from builder no longer owns the transition
}

TransitionBuilder::~TransitionBuilder() {
  if (!done_ && from_.valid()) {
    from_.fsm_->build_errors_.push_back(
        "incomplete transition from state '" + from_.name() +
        "': no destination state streamed");
  }
}

TransitionBuilder& TransitionBuilder::operator<<(const Cnd& c) {
  if (!guards_.empty() || always_)
    throw std::logic_error("transition already has a guard");
  guards_.push_back(c);
  return *this;
}

TransitionBuilder& TransitionBuilder::operator<<(AlwaysTag) {
  if (!guards_.empty() || always_)
    throw std::logic_error("transition already has a guard");
  always_ = true;
  return *this;
}

TransitionBuilder& TransitionBuilder::operator<<(sfg::Sfg& action) {
  actions_.push_back(&action);
  return *this;
}

void TransitionBuilder::operator<<(const State& to) {
  if (done_) throw std::logic_error("transition already completed");
  if (to.fsm_ != from_.fsm_)
    throw std::logic_error("transition destination belongs to another fsm");
  Fsm::Transition t;
  t.from = from_.index_;
  t.to = to.index_;
  t.guards = guards_;
  t.actions = actions_;
  from_.fsm_->add_transition(std::move(t));
  done_ = true;
}

// --- Fsm ---

State Fsm::initial(const std::string& name) {
  if (initial_ >= 0) throw std::logic_error("fsm '" + name_ + "': second initial state");
  State s = state(name);
  initial_ = s.index();
  current_ = initial_;
  return s;
}

State Fsm::state(const std::string& name) {
  states_.push_back(name);
  return State(this, static_cast<int>(states_.size()) - 1);
}

const std::string& Fsm::state_name(int i) const {
  return states_.at(static_cast<std::size_t>(i));
}

int Fsm::state_index(const std::string& name) const {
  for (int i = 0; i < num_states(); ++i)
    if (states_[static_cast<std::size_t>(i)] == name) return i;
  return -1;
}

void Fsm::add_transition(Transition t) { transitions_.push_back(std::move(t)); }

void Fsm::reset() {
  if (initial_ < 0) throw std::logic_error("fsm '" + name_ + "': no initial state");
  current_ = initial_;
}

void Fsm::set_current(int s) {
  if (s < -1 || s >= num_states())
    throw std::out_of_range("fsm '" + name_ + "': state index " +
                            std::to_string(s) + " out of range");
  current_ = s;
}

const Fsm::Transition* Fsm::select(std::uint64_t stamp) const {
  for (const auto& t : transitions_) {
    if (t.from != current_) continue;
    if (t.guards.empty() || t.guards.front().eval(stamp)) return &t;
  }
  return nullptr;
}

void Fsm::commit(const Transition& t) { current_ = t.to; }

const Fsm::Transition* Fsm::step() {
  const std::uint64_t stamp = sfg::new_eval_stamp();
  const Transition* t = select(stamp);
  if (t == nullptr) return nullptr;
  for (auto* a : t->actions) a->eval(stamp);
  for (auto* a : t->actions) a->update_registers();
  commit(*t);
  return t;
}

namespace {

/// Compact rendering of a guard expression for edge labels.
std::string guard_text(const sfg::NodePtr& n) {
  using sfg::Op;
  switch (n->op) {
    case Op::kReg:
    case Op::kInput:
      return n->name;
    case Op::kConst: {
      std::ostringstream os;
      os << n->value.value();
      return os.str();
    }
    case Op::kNot:
      return "!" + guard_text(n->args[0]);
    case Op::kAnd:
      return "(" + guard_text(n->args[0]) + " & " + guard_text(n->args[1]) + ")";
    case Op::kOr:
      return "(" + guard_text(n->args[0]) + " | " + guard_text(n->args[1]) + ")";
    case Op::kEq:
      return guard_text(n->args[0]) + "==" + guard_text(n->args[1]);
    case Op::kNe:
      return guard_text(n->args[0]) + "!=" + guard_text(n->args[1]);
    case Op::kLt:
      return guard_text(n->args[0]) + "<" + guard_text(n->args[1]);
    case Op::kLe:
      return guard_text(n->args[0]) + "<=" + guard_text(n->args[1]);
    case Op::kGt:
      return guard_text(n->args[0]) + ">" + guard_text(n->args[1]);
    case Op::kGe:
      return guard_text(n->args[0]) + ">=" + guard_text(n->args[1]);
    default:
      return sfg::op_name(n->op);
  }
}

}  // namespace

std::string Fsm::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n  rankdir=LR;\n";
  for (int i = 0; i < num_states(); ++i) {
    os << "  s" << i << " [label=\"" << state_name(i) << "\", shape=circle"
       << (i == initial_ ? ", style=bold" : "") << "];\n";
  }
  for (const auto& t : transitions_) {
    std::string label = t.guards.empty() ? "_" : guard_text(t.guards.front().expr().node());
    label += " / ";
    for (std::size_t a = 0; a < t.actions.size(); ++a)
      label += (a ? "," : "") + t.actions[a]->name();
    os << "  s" << t.from << " -> s" << t.to << " [label=\"" << label << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

void Fsm::check(diag::DiagEngine& de) const {
  const std::string where = "fsm '" + name_ + "'";
  for (const auto& e : build_errors_) de.error("FSM-006", where, e);
  if (initial_ < 0) de.error("FSM-001", where, "no initial state");

  // Reachability from the initial state.
  if (initial_ >= 0) {
    std::unordered_set<int> reach{initial_};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const auto& t : transitions_) {
        if (reach.count(t.from) && !reach.count(t.to)) {
          reach.insert(t.to);
          grew = true;
        }
      }
    }
    for (int i = 0; i < num_states(); ++i) {
      if (!reach.count(i))
        de.warning("FSM-002", where, "state '" + state_name(i) + "' is unreachable");
    }
  }

  for (int i = 0; i < num_states(); ++i) {
    bool has_out = false;
    bool after_always = false;
    for (const auto& t : transitions_) {
      if (t.from != i) continue;
      has_out = true;
      if (after_always)
        de.warning("FSM-003", where,
                   "transition out of '" + state_name(i) +
                       "' follows an unconditional transition and can never fire");
      if (t.guards.empty()) after_always = true;
    }
    if (!has_out)
      de.warning("FSM-004", where,
                 "state '" + state_name(i) + "' has no outgoing transition");
  }

  // Guards must depend on registered/constant signals only (Mealy selection
  // happens before input tokens exist in the cycle).
  for (const auto& t : transitions_) {
    for (const auto& g : t.guards) {
      // walk for kInput leaves
      std::vector<const sfg::Node*> stack{g.expr().node().get()};
      std::unordered_set<const sfg::Node*> seen;
      while (!stack.empty()) {
        const sfg::Node* n = stack.back();
        stack.pop_back();
        if (!seen.insert(n).second) continue;
        if (n->op == sfg::Op::kInput) {
          de.error("FSM-005", where,
                   "guard on '" + state_name(t.from) + "'->'" + state_name(t.to) +
                       "' reads unregistered input '" + n->name + "'");
        }
        for (const auto& a : n->args) stack.push_back(a.get());
      }
    }
  }
}

}  // namespace asicpp::fsm
