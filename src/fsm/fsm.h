// Mealy finite state machines over SFG actions.
//
// Reproduces the compact C++ FSM description of Fig 4:
//
//     Fsm f("ctl");
//     State s0 = f.initial("s0");
//     State s1 = f.state("s1");
//     s0 << always << sfg1 << s1;
//     s1 << cnd(eof) << sfg2 << s1;
//     s1 << !cnd(eof) << sfg3 << s0;
//
// Conditions are expressions over *registered* signals (section 3: "the
// conditions are stored in registers inside the signal flow graphs"), so a
// transition can be selected at the start of a clock cycle before any input
// token has arrived. Each transition carries one or more SFGs that are
// marked for execution in that cycle; the state change commits together
// with the register-update phase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diag/diag.h"
#include "sfg/eval.h"
#include "sfg/sfg.h"
#include "sfg/sig.h"

namespace asicpp::fsm {

/// A transition guard: a signal expression evaluating to zero / nonzero.
class Cnd {
 public:
  explicit Cnd(sfg::Sig expr) : expr_(std::move(expr)) {}

  Cnd operator!() const { return Cnd(~expr_); }
  Cnd operator&&(const Cnd& o) const { return Cnd(expr_ & o.expr_); }
  Cnd operator||(const Cnd& o) const { return Cnd(expr_ | o.expr_); }

  const sfg::Sig& expr() const { return expr_; }
  bool eval(std::uint64_t stamp) const;

 private:
  sfg::Sig expr_;
};

/// Build a guard from a signal, as in the paper's `cnd(eof)`.
inline Cnd cnd(const sfg::Sig& s) { return Cnd(s); }

/// The unconditional guard token of `s0 << always << sfg << s1;`.
struct AlwaysTag {};
inline constexpr AlwaysTag always{};

class Fsm;
class TransitionBuilder;

/// Lightweight handle onto a state owned by an Fsm.
class State {
 public:
  State() = default;

  TransitionBuilder operator<<(const Cnd& c) const;
  TransitionBuilder operator<<(AlwaysTag) const;
  TransitionBuilder operator<<(sfg::Sfg& action) const;

  const std::string& name() const;
  int index() const { return index_; }
  bool valid() const { return fsm_ != nullptr; }

 private:
  friend class Fsm;
  friend class TransitionBuilder;
  State(Fsm* fsm, int index) : fsm_(fsm), index_(index) {}

  Fsm* fsm_ = nullptr;
  int index_ = -1;
};

/// Accumulates one transition: guard, action SFGs, destination state.
/// Streaming the destination State completes the transition.
class TransitionBuilder {
 public:
  TransitionBuilder(TransitionBuilder&&) noexcept;
  TransitionBuilder(const TransitionBuilder&) = delete;
  TransitionBuilder& operator=(const TransitionBuilder&) = delete;
  TransitionBuilder& operator=(TransitionBuilder&&) = delete;
  ~TransitionBuilder();

  TransitionBuilder& operator<<(const Cnd& c);
  TransitionBuilder& operator<<(AlwaysTag);
  TransitionBuilder& operator<<(sfg::Sfg& action);
  /// Completes the transition with destination `to`.
  void operator<<(const State& to);

 private:
  friend class State;
  explicit TransitionBuilder(State from) : from_(from) {}

  State from_;
  std::vector<Cnd> guards_;  // 0 or 1 entries; vector avoids optional<Cnd>
  bool always_ = false;
  std::vector<sfg::Sfg*> actions_;
  bool done_ = false;
};

class Fsm {
 public:
  explicit Fsm(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Create the initial state (at most one per machine).
  State initial(const std::string& name);
  /// Create a further state.
  State state(const std::string& name);

  struct Transition {
    int from = -1;
    int to = -1;
    std::vector<Cnd> guards;  ///< empty means `always`
    std::vector<sfg::Sfg*> actions;
  };

  int num_states() const { return static_cast<int>(states_.size()); }
  const std::string& state_name(int i) const;
  int state_index(const std::string& name) const;  ///< -1 when absent
  const std::vector<Transition>& transitions() const { return transitions_; }
  int initial_state() const { return initial_; }

  /// Return to the initial state.
  void reset();

  int current() const { return current_; }
  const std::string& current_name() const { return state_name(current_); }

  /// Checkpoint restore: force the current state. `s` must be a valid state
  /// index or -1 (no initial state); anything else throws std::out_of_range.
  void set_current(int s);

  /// Phase-0 transition selection: the first transition out of the current
  /// state whose guard holds (guards read registered signals only). Returns
  /// nullptr when no transition fires this cycle.
  const Transition* select(std::uint64_t stamp) const;

  /// Commit a previously selected transition (phase 3, with register update).
  void commit(const Transition& t);

  /// Standalone convenience: select, run the actions' full evaluation,
  /// update their registers, and commit. Returns the fired transition or
  /// nullptr.
  const Transition* step();

  /// Accumulating structural lint pass. Reports *all* violations into `de`
  /// in one run, each with a stable code:
  ///   FSM-001 no initial state
  ///   FSM-002 unreachable state
  ///   FSM-003 shadowed transition (follows an `always`, can never fire)
  ///   FSM-004 sink state (no outgoing transition)
  ///   FSM-005 guard reads an unregistered input (conditions must be over
  ///           registered signals; section 3)
  ///   FSM-006 incomplete transition (builder died without a destination)
  void check(diag::DiagEngine& de) const;

  /// Graphviz rendering of the machine (states, guarded edges, action SFG
  /// names) — the diagram style of Figs 2 and 4.
  std::string to_dot() const;

 private:
  friend class TransitionBuilder;
  void add_transition(Transition t);

  std::string name_;
  std::vector<std::string> states_;
  std::vector<Transition> transitions_;
  int initial_ = -1;
  int current_ = -1;
  std::vector<std::string> build_errors_;
};

}  // namespace asicpp::fsm
