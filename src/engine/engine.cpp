#include "engine/engine.h"

#include <sstream>
#include <stdexcept>

namespace asicpp::engine {

void Instance::poke(const std::string& net, double v) {
  (void)v;
  throw std::runtime_error("engine instance has no poke surface for net '" +
                           net + "'");
}

bool Instance::save_state(std::ostream& os) {
  (void)os;
  return false;
}

bool Instance::restore_state(std::istream& is) {
  (void)is;
  return false;
}

std::string Engine::domain_limit(const verify::Spec& spec) const {
  (void)spec;
  return {};
}

std::unique_ptr<Instance> Engine::instantiate(const verify::Spec& spec,
                                              const TraceOptions& opts) const {
  (void)spec;
  (void)opts;
  return nullptr;
}

std::unique_ptr<Instance> Engine::bind(sched::CycleScheduler& sched,
                                       const TraceOptions& opts) const {
  (void)sched;
  (void)opts;
  return nullptr;
}

Trace Engine::trace(const verify::Spec& spec, const TraceOptions& opts) const {
  Trace t;
  t.engine = name();
  t.skip_reason = domain_limit(spec);
  if (!t.skip_reason.empty()) return t;
  const auto probes = spec.probes();
  try {
    std::unique_ptr<Instance> inst = instantiate(spec, opts);
    if (inst == nullptr) {
      t.skip_reason = "engine '" + name() + "' has no spec instantiation";
      return t;
    }
    for (std::uint64_t c = 0; c < spec.cycles; ++c) {
      inst->cycle();
      std::vector<double> row;
      row.reserve(probes.size());
      for (const std::string& n : probes) row.push_back(inst->probe(n));
      t.values.push_back(std::move(row));
    }
    t.ran = true;
  } catch (const std::exception& ex) {
    t.fail_reason = ex.what();
  }
  return t;
}

Trace Engine::trace_ckpt(const verify::Spec& spec, const TraceOptions& opts,
                         std::uint64_t k) const {
  Trace t;
  t.engine = name();
  t.skip_reason = domain_limit(spec);
  if (!t.skip_reason.empty()) return t;
  const auto probes = spec.probes();
  const auto capture = [&](Instance& inst) {
    std::vector<double> row;
    row.reserve(probes.size());
    for (const std::string& n : probes) row.push_back(inst.probe(n));
    t.values.push_back(std::move(row));
  };
  try {
    std::unique_ptr<Instance> a = instantiate(spec, opts);
    if (a == nullptr) {
      t.skip_reason = "engine '" + name() + "' has no spec instantiation";
      return t;
    }
    for (std::uint64_t c = 0; c < k; ++c) {
      a->cycle();
      capture(*a);
    }
    std::stringstream snap;
    if (!a->save_state(snap)) {
      t.values.clear();
      t.skip_reason =
          "engine '" + name() + "' has no in-process snapshot surface";
      return t;
    }
    // The second instance is the same design, so engines with stored
    // compile artifacts (jit) serve it from cache — the axis costs one
    // host-compiler run.
    std::unique_ptr<Instance> b = instantiate(spec, opts);
    b->restore_state(snap);
    for (std::uint64_t c = k; c < spec.cycles; ++c) {
      b->cycle();
      capture(*b);
    }
    t.ran = true;
  } catch (const std::exception& ex) {
    t.fail_reason = ex.what();
  }
  return t;
}

opt::PassOptions Engine::noopt_passes() const { return opt::PassOptions::none(); }

Registry& Registry::global() {
  // Thread-safe first use: the magic static guarantees exactly one
  // initialization even when concurrent threads race the first call, and
  // register_builtin_engines completes before any caller observes the
  // reference.
  static Registry* reg = [] {
    auto* r = new Registry;
    register_builtin_engines(*r);
    return r;
  }();
  return *reg;
}

void Registry::add(std::unique_ptr<Engine> e) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& existing : engines_) {
    if (existing->name() == e->name()) {
      existing = std::move(e);
      return;
    }
  }
  engines_.push_back(std::move(e));
}

const Engine* Registry::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : engines_)
    if (e->name() == name) return e.get();
  return nullptr;
}

const Engine& Registry::at(const std::string& name) const {
  const Engine* e = find(name);
  if (e == nullptr)
    throw std::invalid_argument("unknown engine '" + name +
                                "' (registered: " + names_csv() + ")");
  return *e;
}

std::vector<const Engine*> Registry::all() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Engine*> v;
  v.reserve(engines_.size());
  for (const auto& e : engines_) v.push_back(e.get());
  return v;
}

std::vector<std::string> Registry::names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> v;
  v.reserve(engines_.size());
  for (const auto& e : engines_) v.push_back(e->name());
  return v;
}

std::string Registry::names_csv() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string s;
  for (const auto& e : engines_) s += (s.empty() ? "" : ", ") + e->name();
  return s;
}

}  // namespace asicpp::engine
