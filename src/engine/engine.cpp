#include "engine/engine.h"

#include <stdexcept>

namespace asicpp::engine {

Trace Engine::trace_ckpt(const verify::Spec& spec, const TraceOptions& opts,
                         std::uint64_t k) const {
  (void)spec;
  (void)opts;
  (void)k;
  Trace t;
  t.engine = name();
  t.skip_reason = "engine '" + name() + "' has no in-process snapshot surface";
  return t;
}

opt::PassOptions Engine::noopt_passes() const { return opt::PassOptions::none(); }

std::unique_ptr<Runner> Engine::bind(sched::CycleScheduler& sched,
                                     const opt::PassOptions& passes) const {
  (void)sched;
  (void)passes;
  return nullptr;
}

Registry& Registry::global() {
  static Registry* reg = [] {
    auto* r = new Registry;
    register_builtin_engines(*r);
    return r;
  }();
  return *reg;
}

void Registry::add(std::unique_ptr<Engine> e) {
  for (auto& existing : engines_) {
    if (existing->name() == e->name()) {
      existing = std::move(e);
      return;
    }
  }
  engines_.push_back(std::move(e));
}

const Engine* Registry::find(const std::string& name) const {
  for (const auto& e : engines_)
    if (e->name() == name) return e.get();
  return nullptr;
}

const Engine& Registry::at(const std::string& name) const {
  const Engine* e = find(name);
  if (e == nullptr)
    throw std::invalid_argument("unknown engine '" + name +
                                "' (registered: " + names_csv() + ")");
  return *e;
}

std::vector<const Engine*> Registry::all() const {
  std::vector<const Engine*> v;
  v.reserve(engines_.size());
  for (const auto& e : engines_) v.push_back(e.get());
  return v;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> v;
  v.reserve(engines_.size());
  for (const auto& e : engines_) v.push_back(e->name());
  return v;
}

std::string Registry::names_csv() const {
  std::string s;
  for (const auto& e : engines_) s += (s.empty() ? "" : ", ") + e->name();
  return s;
}

}  // namespace asicpp::engine
