// Unified execution-engine registry.
//
// Every way the environment can execute one design description — the
// interpreted cycle scheduler (iterative or levelized), the compiled-tape
// simulator, the in-process JIT, the regenerated standalone C++ simulator,
// synthesized gates, the lane-batched SoA evaluator — is an `Engine`: a named, capability-tagged object
// that can replay a verify::Spec into a cycle-by-cycle trace. The
// `Registry` resolves engines by name, so every surface that selects
// engines (diff_run, asicpp-fuzz --engines, bench variant selection, the
// pipeline and the simulation service) shares one name set and one error
// message for unknown names, and a new engine becomes available everywhere
// with a single registration call.
//
// The execution surface of every engine is one abstraction, `Instance`: a
// live simulation that can cycle, be probed and poked, and (for engines
// with a snapshot surface) save/restore its state. Engines produce
// instances two ways — `instantiate()` materializes a verify::Spec into a
// private System, `bind()` attaches to a caller-owned live scheduler (the
// bench and service path, in_process engines only). The shared
// `Engine::trace()` / `trace_ckpt()` loops drive instances, so the
// per-engine code is exactly the instance construction and the probe/poke
// plumbing — the capture loops formerly duplicated per engine live here
// once.
//
// Capability flags replace the per-engine switch statements the
// differential driver used to carry:
//
//   checkpointable — has an in-process save_state/restore_state surface,
//                    so the VERIFY-006 checkpoint axis applies;
//   threadable     — honors RunOptions::nthreads;
//   pass_aware     — consumes opt::PassOptions (TraceOptions::passes);
//   pass_axis      — contributes a passes-off replay to the VERIFY-005
//                    axis (noopt_passes() names the pipeline to use);
//   in_process     — can be bound to a live scheduler as an Instance for
//                    benchmarking and service sessions (bind()).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "opt/options.h"
#include "verify/gen.h"

namespace asicpp::engine {

struct Capabilities {
  bool checkpointable = false;
  bool threadable = false;
  bool pass_aware = false;
  bool pass_axis = false;
  bool in_process = false;
};

/// Per-trace knobs shared by every engine; engines ignore what they cannot
/// consume (pass_aware / external-toolchain engines).
struct TraceOptions {
  /// Optimizer pipeline applied to the lowered graphs (pass-aware engines).
  opt::PassOptions passes{};
  /// Scratch directory for engines that shell out (cppgen). Empty = $TMPDIR
  /// or /tmp.
  std::string workdir;
  /// Host compiler for engines that compile generated code (cppgen, jit).
  std::string cxx = "c++";
  /// Artifact-store directory override for engines with cacheable compile
  /// products (jit). Empty = the $ASICPP_STORE_DIR / $ASICPP_JIT_CACHE /
  /// $XDG_CACHE_HOME resolution chain (see pipeline/artifact.h).
  std::string store_dir;
  /// Lane count for the batched engine: the spec replays in every lane of
  /// an N-wide SoA batch, the reported trace comes from lane seed % N, and
  /// every cycle the engine asserts lane invariance (any lane diverging
  /// from lane 0 is a determinism-contract violation reported via
  /// Trace::fail_reason). Other engines ignore it. 0 is treated as 1.
  unsigned lanes = 4;
};

/// One engine's replay of a spec. `values[cycle][probe]` follows
/// Spec::probes() order.
struct Trace {
  std::string engine;
  bool ran = false;
  std::string skip_reason;  ///< non-empty: spec outside the engine's domain
  std::string fail_reason;  ///< non-empty: the engine blew up mid-run
  std::vector<std::vector<double>> values;
};

/// One live simulation, engine-agnostic: the unit the shared trace loops,
/// the bench harness and the service's sessions all drive. Obtained from
/// Engine::instantiate (spec-materializing) or Engine::bind (live
/// scheduler).
class Instance {
 public:
  virtual ~Instance() = default;

  /// Simulate one clock cycle. Engine-specific failures (deadlocks,
  /// lane-invariance violations, an exhausted precomputed trace) throw;
  /// the shared trace loops convert them into Trace::fail_reason.
  virtual void cycle() = 0;

  /// Value of a net after the last cycle.
  virtual double probe(const std::string& net) const = 0;

  /// Drive an external input net before the next cycle. Engines without a
  /// poke surface (cppgen, gates) throw std::runtime_error.
  virtual void poke(const std::string& net, double v);

  /// Worker lanes for the level-parallel phase-2 walk (threadable engines;
  /// others ignore it). Rides the shared par::Pool.
  virtual void set_threads(unsigned n) { (void)n; }

  /// Snapshot surface; false = this engine has none (cppgen, gates).
  virtual bool save_state(std::ostream& os);
  virtual bool restore_state(std::istream& is);

  /// True when construction reused a stored compile artifact (jit engine
  /// served from the shared artifact store).
  virtual bool from_cache() const { return false; }
  /// Wall-clock seconds spent in an external compiler (0 on a store hit).
  virtual double compile_seconds() const { return 0.0; }
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual const std::string& name() const = 0;
  virtual const Capabilities& caps() const = 0;

  /// Non-empty: why `spec` is outside this engine's domain (reported as
  /// Trace::skip_reason by the shared loops).
  virtual std::string domain_limit(const verify::Spec& spec) const;

  /// Materialize `spec` into a live instance (the instance owns its
  /// System). Hard failures throw; nullptr means the engine has no spec
  /// instantiation at all.
  virtual std::unique_ptr<Instance> instantiate(
      const verify::Spec& spec, const TraceOptions& opts) const;

  /// Bind to a caller-owned live scheduler (in_process engines only;
  /// others return nullptr). The caller keeps the scheduler alive.
  virtual std::unique_ptr<Instance> bind(sched::CycleScheduler& sched,
                                         const TraceOptions& opts) const;

  /// Replay `spec` and capture all probe nets per cycle. Domain limits are
  /// reported via Trace::skip_reason, crashes via fail_reason; trace()
  /// itself does not throw for engine failures.
  virtual Trace trace(const verify::Spec& spec,
                      const TraceOptions& opts) const;

  /// Checkpoint-replay variant (VERIFY-006): run the first k cycles on a
  /// fresh instance, snapshot, restore into a second fresh instance, run
  /// the rest there, return the stitched trace. Only meaningful when
  /// caps().checkpointable.
  virtual Trace trace_ckpt(const verify::Spec& spec, const TraceOptions& opts,
                           std::uint64_t k) const;

  /// Pass pipeline for this engine's passes-off replay on the VERIFY-005
  /// axis (only consulted when caps().pass_axis).
  virtual opt::PassOptions noopt_passes() const;
};

/// Name-indexed engine collection. `global()` returns the process-wide
/// registry, pre-populated with the built-in engines in their canonical
/// order: iterative, levelized, compiled, cppgen, gates, jit, batched.
/// All member functions are thread-safe: concurrent service sessions may
/// resolve engines while another thread registers one.
class Registry {
 public:
  static Registry& global();

  /// Register an engine; a later registration of an existing name replaces
  /// the earlier one (latest wins).
  void add(std::unique_ptr<Engine> e);

  /// nullptr when unknown.
  const Engine* find(const std::string& name) const;
  /// Throws std::invalid_argument listing the registered names.
  const Engine& at(const std::string& name) const;

  std::vector<const Engine*> all() const;
  std::vector<std::string> names() const;
  /// "iterative, levelized, compiled, cppgen, gates, jit, batched" — the
  /// unknown-name error text shared by every selection surface.
  std::string names_csv() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

/// Defined in engines.cpp; invoked once by Registry::global().
void register_builtin_engines(Registry& r);

}  // namespace asicpp::engine
