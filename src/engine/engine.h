// Unified execution-engine registry.
//
// Every way the environment can execute one design description — the
// interpreted cycle scheduler (iterative or levelized), the compiled-tape
// simulator, the in-process JIT, the regenerated standalone C++ simulator,
// synthesized gates, the lane-batched SoA evaluator — is an `Engine`: a named, capability-tagged object
// that can replay a verify::Spec into a cycle-by-cycle trace. The
// `Registry` resolves engines by name, so every surface that selects
// engines (diff_run, asicpp-fuzz --engines, bench variant selection) shares
// one name set and one error message for unknown names, and a new engine
// becomes available everywhere with a single registration call.
//
// Capability flags replace the per-engine switch statements the
// differential driver used to carry:
//
//   checkpointable — has an in-process save_state/restore_state surface,
//                    so the VERIFY-006 checkpoint axis applies;
//   threadable     — honors RunOptions::nthreads;
//   pass_aware     — consumes opt::PassOptions (TraceOptions::passes);
//   pass_axis      — contributes a passes-off replay to the VERIFY-005
//                    axis (noopt_passes() names the pipeline to use);
//   in_process     — can be bound to a live scheduler as a Runner for
//                    benchmarking (bind()).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "opt/options.h"
#include "verify/gen.h"

namespace asicpp::engine {

struct Capabilities {
  bool checkpointable = false;
  bool threadable = false;
  bool pass_aware = false;
  bool pass_axis = false;
  bool in_process = false;
};

/// Per-trace knobs shared by every engine; engines ignore what they cannot
/// consume (pass_aware / external-toolchain engines).
struct TraceOptions {
  /// Optimizer pipeline applied to the lowered graphs (pass-aware engines).
  opt::PassOptions passes{};
  /// Scratch directory for engines that shell out (cppgen). Empty = $TMPDIR
  /// or /tmp.
  std::string workdir;
  /// Host compiler for engines that compile generated code (cppgen, jit).
  std::string cxx = "c++";
  /// Artifact-cache directory override for the jit engine. Empty = the
  /// $ASICPP_JIT_CACHE / $XDG_CACHE_HOME resolution chain (see jit/jit.h).
  std::string jit_cache;
  /// Lane count for the batched engine: the spec replays in every lane of
  /// an N-wide SoA batch, the reported trace comes from lane seed % N, and
  /// every cycle the engine asserts lane invariance (any lane diverging
  /// from lane 0 is a determinism-contract violation reported via
  /// Trace::fail_reason). Other engines ignore it. 0 is treated as 1.
  unsigned lanes = 4;
};

/// One engine's replay of a spec. `values[cycle][probe]` follows
/// Spec::probes() order.
struct Trace {
  std::string engine;
  bool ran = false;
  std::string skip_reason;  ///< non-empty: spec outside the engine's domain
  std::string fail_reason;  ///< non-empty: the engine blew up mid-run
  std::vector<std::vector<double>> values;
};

/// A live engine instance bound to one scheduler, for benchmarking: the
/// registry's normalized engine names double as bench variant names.
class Runner {
 public:
  virtual ~Runner() = default;
  virtual void cycle() = 0;
  virtual double net_value(const std::string& name) const = 0;
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual const std::string& name() const = 0;
  virtual const Capabilities& caps() const = 0;

  /// Replay `spec` and capture all probe nets per cycle. Domain limits are
  /// reported via Trace::skip_reason, crashes via fail_reason (callers may
  /// also catch exceptions escaping misbehaving engines).
  virtual Trace trace(const verify::Spec& spec,
                      const TraceOptions& opts) const = 0;

  /// Checkpoint-replay variant (VERIFY-006): run the first k cycles on a
  /// fresh instance, snapshot, restore into a second fresh instance, run
  /// the rest there, return the stitched trace. Only meaningful when
  /// caps().checkpointable.
  virtual Trace trace_ckpt(const verify::Spec& spec, const TraceOptions& opts,
                           std::uint64_t k) const;

  /// Pass pipeline for this engine's passes-off replay on the VERIFY-005
  /// axis (only consulted when caps().pass_axis).
  virtual opt::PassOptions noopt_passes() const;

  /// Bind to a live scheduler for benchmarking (in_process engines only;
  /// others return nullptr).
  virtual std::unique_ptr<Runner> bind(sched::CycleScheduler& sched,
                                       const opt::PassOptions& passes) const;
};

/// Name-indexed engine collection. `global()` returns the process-wide
/// registry, pre-populated with the built-in engines in their canonical
/// order: iterative, levelized, compiled, cppgen, gates, jit, batched.
class Registry {
 public:
  static Registry& global();

  /// Register an engine; a later registration of an existing name replaces
  /// the earlier one (latest wins).
  void add(std::unique_ptr<Engine> e);

  /// nullptr when unknown.
  const Engine* find(const std::string& name) const;
  /// Throws std::invalid_argument listing the registered names.
  const Engine& at(const std::string& name) const;

  std::vector<const Engine*> all() const;
  std::vector<std::string> names() const;
  /// "iterative, levelized, compiled, cppgen, gates, jit, batched" — the
  /// unknown-name error text shared by every selection surface.
  std::string names_csv() const;

 private:
  std::vector<std::unique_ptr<Engine>> engines_;
};

/// Defined in engines.cpp; invoked once by Registry::global().
void register_builtin_engines(Registry& r);

}  // namespace asicpp::engine
