// Built-in engines. Each engine here is just an Instance factory plus its
// capability flags and domain limits — the per-cycle capture loops live
// once in Engine::trace / Engine::trace_ckpt (engine.cpp), and the same
// instances serve diff_run, the fuzzer's --engines selection, the bench
// harness, the compile pipeline and the simulation service's sessions.
#include "engine/engine.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "batch/batch.h"
#include "fixpt/fixed.h"
#include "jit/jit.h"
#include "netlist/equiv.h"
#include "netlist/netsim.h"
#include "sched/cyclesched.h"
#include "sim/compiled.h"
#include "synth/system.h"

namespace asicpp::engine {

namespace {

using verify::CompKind;
using verify::Spec;
using verify::System;

std::string scratch_dir(const TraceOptions& opts) {
  if (!opts.workdir.empty()) return opts.workdir;
  if (const char* t = std::getenv("TMPDIR")) return t;
  return "/tmp";
}

/// Run `cmd` through the shell, capturing stdout+stderr.
int run_command(const std::string& cmd, std::string* out) {
  FILE* p = popen((cmd + " 2>&1").c_str(), "r");
  if (p == nullptr) {
    *out = "popen failed";
    return -1;
  }
  char buf[512];
  while (std::fgets(buf, sizeof buf, p) != nullptr) *out += buf;
  return pclose(p);
}

jit::JitOptions jit_options(const TraceOptions& opts) {
  jit::JitOptions jo;
  jo.cxx = opts.cxx;
  jo.cache_dir = opts.store_dir;
  return jo;
}

// --- interpreted CycleScheduler (iterative / levelized) --------------------

/// Drives a CycleScheduler — either one owned via a materialized System
/// (instantiate) or a caller-owned live one (bind).
class SchedInstance : public Instance {
 public:
  SchedInstance(const Spec& spec, ScheduleMode mode, const TraceOptions& opts)
      : sys_(std::make_unique<System>(spec)), s_(&sys_->scheduler()) {
    s_->set_schedule_mode(mode);
    s_->set_pass_options(opts.passes);
  }
  SchedInstance(sched::CycleScheduler& s, ScheduleMode mode,
                const TraceOptions& opts)
      : s_(&s) {
    s_->set_schedule_mode(mode);
    s_->set_pass_options(opts.passes);
  }

  void cycle() override { s_->cycle(); }
  double probe(const std::string& n) const override {
    return s_->net(n).last().value();
  }
  void poke(const std::string& n, double v) override {
    s_->net(n).drive(fixpt::Fixed(v));
  }
  void set_threads(unsigned n) override { s_->set_threads(n); }
  bool save_state(std::ostream& os) override {
    s_->save_state(os);
    return true;
  }
  bool restore_state(std::istream& is) override {
    s_->restore_state(is);
    return true;
  }

 private:
  std::unique_ptr<System> sys_;  ///< null when bound to a live scheduler
  sched::CycleScheduler* s_;
};

class InterpretedEngine : public Engine {
 public:
  InterpretedEngine(std::string name, ScheduleMode mode)
      : name_(std::move(name)), mode_(mode) {
    caps_.checkpointable = true;
    caps_.threadable = true;
    caps_.pass_aware = true;
    // Only the iterative engine contributes a passes-off replay: with the
    // pipeline disabled the scheduler falls back to the recursive graph
    // walk, and one such replay covers both interpreted modes.
    caps_.pass_axis = mode == ScheduleMode::kIterative;
    caps_.in_process = true;
  }

  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  std::unique_ptr<Instance> instantiate(
      const Spec& spec, const TraceOptions& opts) const override {
    return std::make_unique<SchedInstance>(spec, mode_, opts);
  }

  std::unique_ptr<Instance> bind(sched::CycleScheduler& sched,
                                 const TraceOptions& opts) const override {
    return std::make_unique<SchedInstance>(sched, mode_, opts);
  }

 private:
  std::string name_;
  ScheduleMode mode_;
  Capabilities caps_;
};

// --- compiled flat-tape simulator ------------------------------------------

class TapeInstance : public Instance {
 public:
  TapeInstance(const Spec& spec, const TraceOptions& opts)
      : sys_(std::make_unique<System>(spec)),
        cs_(sim::CompiledSystem::compile(sys_->scheduler(), opts.passes)) {}
  TapeInstance(sched::CycleScheduler& s, const TraceOptions& opts)
      : sched_(&s), cs_(sim::CompiledSystem::compile(s, opts.passes)) {}

  void cycle() override { cs_.cycle(); }
  double probe(const std::string& n) const override { return cs_.net_value(n); }
  void poke(const std::string& n, double v) override {
    // Validates the name first; for a live-scheduler binding the per-cycle
    // external refresh reads the sched::Net, so the pin must be driven there
    // or the poke would be overwritten on the next cycle.
    cs_.poke(n, v);
    if (sched_ != nullptr) sched_->net(n).drive(fixpt::Fixed(v));
  }
  void set_threads(unsigned n) override { cs_.set_threads(n); }
  bool save_state(std::ostream& os) override {
    cs_.save_state(os);
    return true;
  }
  bool restore_state(std::istream& is) override {
    cs_.restore_state(is);
    return true;
  }

 private:
  std::unique_ptr<System> sys_;  ///< null when bound to a live scheduler
  sched::CycleScheduler* sched_ = nullptr;  ///< set only for live bindings
  sim::CompiledSystem cs_;
};

class CompiledEngine : public Engine {
 public:
  CompiledEngine() {
    caps_.checkpointable = true;
    caps_.threadable = true;
    caps_.pass_aware = true;
    caps_.pass_axis = true;  // passes-off replay uses the raw tape
    caps_.in_process = true;
  }

  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  std::string domain_limit(const Spec& spec) const override {
    if (spec.has(CompKind::kAdapter))
      return "dataflow adapters have no compiled-simulation image";
    return {};
  }

  std::unique_ptr<Instance> instantiate(
      const Spec& spec, const TraceOptions& opts) const override {
    return std::make_unique<TapeInstance>(spec, opts);
  }

  std::unique_ptr<Instance> bind(sched::CycleScheduler& sched,
                                 const TraceOptions& opts) const override {
    return std::make_unique<TapeInstance>(sched, opts);
  }

  opt::PassOptions noopt_passes() const override {
    return opt::PassOptions::raw();
  }

 private:
  std::string name_ = "compiled";
  Capabilities caps_;
};

// --- in-process JIT --------------------------------------------------------

class JitInstance : public Instance {
 public:
  JitInstance(const Spec& spec, const TraceOptions& opts)
      : sys_(std::make_unique<System>(spec)),
        js_(jit::JitSystem::compile(sys_->scheduler(), opts.passes,
                                    jit_options(opts))) {}
  JitInstance(sched::CycleScheduler& s, const TraceOptions& opts)
      : sched_(&s), js_(jit::JitSystem::compile(s, opts.passes, jit_options(opts))) {}

  void cycle() override { js_.cycle(); }
  double probe(const std::string& n) const override { return js_.net_value(n); }
  void poke(const std::string& n, double v) override {
    // Same live-binding rule as TapeInstance: the generated image refreshes
    // external pins from the sched::Net each cycle.
    js_.poke(n, v);
    if (sched_ != nullptr) sched_->net(n).drive(fixpt::Fixed(v));
  }
  void set_threads(unsigned n) override { js_.set_threads(n); }
  bool save_state(std::ostream& os) override {
    js_.save_state(os);
    return true;
  }
  bool restore_state(std::istream& is) override {
    js_.restore_state(is);
    return true;
  }
  bool from_cache() const override { return js_.from_cache(); }
  double compile_seconds() const override { return js_.compile_seconds(); }

 private:
  std::unique_ptr<System> sys_;  ///< null when bound to a live scheduler
  sched::CycleScheduler* sched_ = nullptr;  ///< set only for live bindings
  jit::JitSystem js_;
};

class JitEngine : public Engine {
 public:
  JitEngine() {
    caps_.checkpointable = true;  // shares the compiled tape's ckpt format
    caps_.threadable = true;
    caps_.pass_aware = true;
    // No passes-off replay of its own: the raw tape is already covered by
    // the compiled engine, and a second host-compiler run per spec would
    // double the axis' cost for no new coverage.
    caps_.pass_axis = false;
    caps_.in_process = true;
  }

  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  std::string domain_limit(const Spec& spec) const override {
    if (spec.has(CompKind::kAdapter))
      return "dataflow adapters have no compiled-simulation image";
    return {};
  }

  std::unique_ptr<Instance> instantiate(
      const Spec& spec, const TraceOptions& opts) const override {
    return std::make_unique<JitInstance>(spec, opts);
  }

  std::unique_ptr<Instance> bind(sched::CycleScheduler& sched,
                                 const TraceOptions& opts) const override {
    return std::make_unique<JitInstance>(sched, opts);
  }

 private:
  std::string name_ = "jit";
  Capabilities caps_;
};

// --- lane-batched SoA evaluator --------------------------------------------

class BatchedInstance : public Instance {
 public:
  BatchedInstance(const Spec& spec, const TraceOptions& opts)
      : sys_(spec),
        lanes_(opts.lanes == 0 ? 1 : opts.lanes),
        // The reported trace comes from a seed-dependent lane, so the fuzz
        // campaign sweeps lane positions: any lane-position dependence
        // shows up as an engine-axis divergence against the scalar engines.
        report_(static_cast<unsigned>(spec.seed % lanes_)),
        probes_(spec.probes()),
        bs_(batch::BatchedSystem::compile(sys_.scheduler(), lanes_,
                                          opts.passes)) {}

  void cycle() override {
    const std::uint64_t c = cycle_++;
    bs_.cycle();
    if (!pristine_) return;
    // Lane-invariance contract: every lane replays the same spec with the
    // same stimulus, so any divergence is a batching bug — checked on
    // every fuzz seed, every cycle. After a per-lane restore the lanes
    // deliberately diverge (only the report lane resumes; the others
    // replay from reset, exercising the masked per-lane paths), so the
    // check is retired.
    for (const std::string& n : probes_) {
      const double v0 = bs_.net_value(0, n);
      for (unsigned l = 1; l < lanes_; ++l) {
        if (bs_.net_value(l, n) != v0)
          throw std::runtime_error(
              "lane-invariance violation: net '" + n + "' lane " +
              std::to_string(l) + " = " + std::to_string(bs_.net_value(l, n)) +
              ", lane 0 = " + std::to_string(v0) + " at cycle " +
              std::to_string(c));
      }
    }
  }

  double probe(const std::string& n) const override {
    return bs_.net_value(report_, n);
  }
  void poke(const std::string& n, double v) override {
    // All lanes get the same stimulus, preserving the invariance contract.
    bs_.poke_all(n, v);
  }
  bool save_state(std::ostream& os) override {
    bs_.save_lane(report_, os);
    return true;
  }
  bool restore_state(std::istream& is) override {
    bs_.restore_lane(report_, is);
    pristine_ = false;
    return true;
  }

 private:
  System sys_;
  unsigned lanes_;
  unsigned report_;
  std::vector<std::string> probes_;
  batch::BatchedSystem bs_;
  bool pristine_ = true;
  std::uint64_t cycle_ = 0;
};

class BatchedEngine : public Engine {
 public:
  BatchedEngine() {
    caps_.checkpointable = true;  // per-lane snapshots (ckpt kBatched)
    caps_.pass_aware = true;
    // No passes-off replay of its own: the raw tape is covered by the
    // compiled engine, and the batched evaluator replays the same image.
    caps_.pass_axis = false;
    // Not bindable: bind() attaches one engine to one live scheduler, and
    // a one-lane batch adds nothing over `compiled`.
    caps_.in_process = false;
  }

  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  std::string domain_limit(const Spec& spec) const override {
    if (spec.has(CompKind::kAdapter))
      return "dataflow adapters have no compiled-simulation image";
    return {};
  }

  std::unique_ptr<Instance> instantiate(
      const Spec& spec, const TraceOptions& opts) const override {
    return std::make_unique<BatchedInstance>(spec, opts);
  }

 private:
  std::string name_ = "batched";
  Capabilities caps_;
};

// --- generated standalone C++ simulator ------------------------------------

/// The generated simulator is an external batch process printing its whole
/// trace at once, so the instance runs it to completion at construction
/// and replays the parsed rows cycle by cycle.
class CppgenInstance : public Instance {
 public:
  CppgenInstance(const Spec& spec, const TraceOptions& opts)
      : probes_(spec.probes()) {
    System sys(spec);
    sim::CompiledSystem cs =
        sim::CompiledSystem::compile(sys.scheduler(), opts.passes);

    // Atomic: concurrent diff_run_batch lanes each need a unique scratch stem.
    static std::atomic<int> counter{0};
    const std::string stem = scratch_dir(opts) + "/asicpp_fuzz_" +
                             std::to_string(getpid()) + "_" +
                             std::to_string(counter.fetch_add(1)) + "_s" +
                             std::to_string(spec.seed);
    const std::string src = stem + ".cpp", bin = stem + ".bin";
    {
      std::ofstream os(src);
      if (!os) throw std::runtime_error("cannot write " + src);
      cs.emit_cpp(os, probes_, spec.cycles);
    }
    std::string text;
    if (run_command(opts.cxx + " -O2 -std=c++17 -o " + bin + " " + src,
                    &text) != 0) {
      std::remove(src.c_str());
      throw std::runtime_error("generated simulator failed to compile: " +
                               text);
    }
    text.clear();
    const int rc = run_command(bin, &text);
    std::remove(src.c_str());
    std::remove(bin.c_str());
    if (rc != 0)
      throw std::runtime_error("generated simulator exited with status " +
                               std::to_string(rc) + ": " + text);
    std::istringstream is(text);
    std::vector<double> flat;
    std::string line;
    while (std::getline(is, line))
      if (!line.empty()) flat.push_back(std::atof(line.c_str()));
    if (flat.size() != spec.cycles * probes_.size())
      throw std::runtime_error(
          "generated simulator printed " + std::to_string(flat.size()) +
          " values, expected " +
          std::to_string(spec.cycles * probes_.size()));
    for (std::uint64_t c = 0; c < spec.cycles; ++c)
      rows_.emplace_back(
          flat.begin() + static_cast<long>(c * probes_.size()),
          flat.begin() + static_cast<long>((c + 1) * probes_.size()));
  }

  void cycle() override {
    if (cursor_ >= rows_.size())
      throw std::runtime_error("generated simulator trace exhausted after " +
                               std::to_string(rows_.size()) + " cycles");
    ++cursor_;
  }

  double probe(const std::string& n) const override {
    if (cursor_ == 0)
      throw std::runtime_error("probe before the first cycle");
    for (std::size_t i = 0; i < probes_.size(); ++i)
      if (probes_[i] == n) return rows_[cursor_ - 1][i];
    throw std::runtime_error("net '" + n +
                             "' is not observed by the generated simulator");
  }

 private:
  std::vector<std::string> probes_;
  std::vector<std::vector<double>> rows_;
  std::size_t cursor_ = 0;
};

class CppgenEngine : public Engine {
 public:
  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  std::string domain_limit(const Spec& spec) const override {
    if (spec.has(CompKind::kAdapter) || spec.has(CompKind::kUntimed))
      return "untimed/adapter behaviour has no generated-code image";
    return {};
  }

  std::unique_ptr<Instance> instantiate(
      const Spec& spec, const TraceOptions& opts) const override {
    return std::make_unique<CppgenInstance>(spec, opts);
  }

 private:
  std::string name_ = "cppgen";
  Capabilities caps_;  // all false: external process, no snapshots, no passes
};

// --- gate-level netlist -----------------------------------------------------

class GatesInstance : public Instance {
 public:
  explicit GatesInstance(const Spec& spec)
      : sys_(spec), probes_(spec.probes()), fmt_(spec.fmt()) {
    synth::SystemSynthSpec sspec;
    sspec.observe = probes_;
    synth::synthesize_system(sys_.scheduler(), nl_, sspec);

    // Bus widths of the observed outputs, recovered from the port names.
    widths_.assign(probes_.size(), 0);
    for (const auto& [name, gate] : nl_.outputs()) {
      (void)gate;
      for (std::size_t i = 0; i < probes_.size(); ++i) {
        const std::string prefix = "net_" + probes_[i] + "[";
        if (name.rfind(prefix, 0) == 0)
          widths_[i] =
              std::max(widths_[i], std::stoi(name.substr(prefix.size())) + 1);
      }
    }
    for (std::size_t i = 0; i < probes_.size(); ++i)
      if (widths_[i] <= 0)
        throw std::runtime_error("gates: observed net '" + probes_[i] +
                                 "' has no output bus");
    sim_ = std::make_unique<netlist::LevelizedSim>(nl_);
  }

  // The gate simulator settles combinational logic before each capture and
  // clocks the registers *between* captures, so a cycle here is
  // "clock (except before the first capture), then settle".
  void cycle() override {
    if (!first_) sim_->cycle();
    first_ = false;
    sim_->settle();
  }

  double probe(const std::string& n) const override {
    for (std::size_t i = 0; i < probes_.size(); ++i) {
      if (probes_[i] != n) continue;
      const long long mant =
          netlist::read_bus(*sim_, "net_" + n, widths_[i], fmt_.is_signed);
      return std::ldexp(static_cast<double>(mant), -fmt_.frac_bits());
    }
    throw std::runtime_error("gates: net '" + n + "' is not observed");
  }

 private:
  System sys_;
  std::vector<std::string> probes_;
  fixpt::Format fmt_;
  netlist::Netlist nl_;
  std::vector<int> widths_;
  std::unique_ptr<netlist::LevelizedSim> sim_;
  bool first_ = true;
};

class GatesEngine : public Engine {
 public:
  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  std::string domain_limit(const Spec& spec) const override {
    if (spec.has(CompKind::kAdapter) || spec.has(CompKind::kUntimed))
      return "untimed/adapter behaviour has no gate-level image";
    return {};
  }

  std::unique_ptr<Instance> instantiate(
      const Spec& spec, const TraceOptions& opts) const override {
    (void)opts;
    return std::make_unique<GatesInstance>(spec);
  }

 private:
  std::string name_ = "gates";
  Capabilities caps_;  // all false
};

}  // namespace

void register_builtin_engines(Registry& r) {
  r.add(std::make_unique<InterpretedEngine>("iterative",
                                            ScheduleMode::kIterative));
  r.add(std::make_unique<InterpretedEngine>("levelized",
                                            ScheduleMode::kLevelized));
  r.add(std::make_unique<CompiledEngine>());
  r.add(std::make_unique<CppgenEngine>());
  r.add(std::make_unique<GatesEngine>());
  r.add(std::make_unique<JitEngine>());
  r.add(std::make_unique<BatchedEngine>());
}

}  // namespace asicpp::engine
