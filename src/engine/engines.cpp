// Built-in engines. The trace runners formerly private to the
// differential driver (verify/diffrun.cpp) live here behind the Engine
// interface, so diff_run, the fuzzer's --engines selection and the bench
// harness all resolve the same objects by the same names.
#include "engine/engine.h"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "batch/batch.h"
#include "jit/jit.h"
#include "netlist/equiv.h"
#include "netlist/netsim.h"
#include "sim/compiled.h"
#include "synth/system.h"

namespace asicpp::engine {

namespace {

using verify::CompKind;
using verify::Spec;
using verify::System;

std::string scratch_dir(const TraceOptions& opts) {
  if (!opts.workdir.empty()) return opts.workdir;
  if (const char* t = std::getenv("TMPDIR")) return t;
  return "/tmp";
}

/// Run `cmd` through the shell, capturing stdout+stderr.
int run_command(const std::string& cmd, std::string* out) {
  FILE* p = popen((cmd + " 2>&1").c_str(), "r");
  if (p == nullptr) {
    *out = "popen failed";
    return -1;
  }
  char buf[512];
  while (std::fgets(buf, sizeof buf, p) != nullptr) *out += buf;
  return pclose(p);
}

jit::JitOptions jit_options(const TraceOptions& opts) {
  jit::JitOptions jo;
  jo.cxx = opts.cxx;
  jo.cache_dir = opts.jit_cache;
  return jo;
}

// --- interpreted CycleScheduler (iterative / levelized) --------------------

class InterpretedEngine : public Engine {
 public:
  InterpretedEngine(std::string name, ScheduleMode mode)
      : name_(std::move(name)), mode_(mode) {
    caps_.checkpointable = true;
    caps_.threadable = true;
    caps_.pass_aware = true;
    // Only the iterative engine contributes a passes-off replay: with the
    // pipeline disabled the scheduler falls back to the recursive graph
    // walk, and one such replay covers both interpreted modes.
    caps_.pass_axis = mode == ScheduleMode::kIterative;
    caps_.in_process = true;
  }

  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  Trace trace(const Spec& spec, const TraceOptions& opts) const override {
    Trace t;
    t.engine = name_;
    System sys(spec);
    sys.scheduler().set_schedule_mode(mode_);
    sys.scheduler().set_pass_options(opts.passes);
    const auto probes = spec.probes();
    for (std::uint64_t c = 0; c < spec.cycles; ++c) {
      sys.scheduler().cycle();
      std::vector<double> row;
      row.reserve(probes.size());
      for (const std::string& n : probes)
        row.push_back(sys.scheduler().net(n).last().value());
      t.values.push_back(std::move(row));
    }
    t.ran = true;
    return t;
  }

  Trace trace_ckpt(const Spec& spec, const TraceOptions& opts,
                   std::uint64_t k) const override {
    Trace t;
    t.engine = name_;
    const auto probes = spec.probes();
    const auto capture = [&](System& sys) {
      std::vector<double> row;
      row.reserve(probes.size());
      for (const std::string& n : probes)
        row.push_back(sys.scheduler().net(n).last().value());
      t.values.push_back(std::move(row));
    };
    System a(spec);
    a.scheduler().set_schedule_mode(mode_);
    a.scheduler().set_pass_options(opts.passes);
    for (std::uint64_t c = 0; c < k; ++c) {
      a.scheduler().cycle();
      capture(a);
    }
    std::stringstream snap;
    a.scheduler().save_state(snap);
    System b(spec);
    b.scheduler().set_schedule_mode(mode_);
    b.scheduler().set_pass_options(opts.passes);
    b.scheduler().restore_state(snap);
    for (std::uint64_t c = k; c < spec.cycles; ++c) {
      b.scheduler().cycle();
      capture(b);
    }
    t.ran = true;
    return t;
  }

  std::unique_ptr<Runner> bind(sched::CycleScheduler& sched,
                               const opt::PassOptions& passes) const override {
    class R : public Runner {
     public:
      R(sched::CycleScheduler& s, ScheduleMode m, const opt::PassOptions& p)
          : s_(s) {
        s_.set_schedule_mode(m);
        s_.set_pass_options(p);
      }
      void cycle() override { s_.cycle(); }
      double net_value(const std::string& n) const override {
        return s_.net(n).last().value();
      }

     private:
      sched::CycleScheduler& s_;
    };
    return std::make_unique<R>(sched, mode_, passes);
  }

 private:
  std::string name_;
  ScheduleMode mode_;
  Capabilities caps_;
};

// --- compiled flat-tape simulator ------------------------------------------

class CompiledEngine : public Engine {
 public:
  CompiledEngine() {
    caps_.checkpointable = true;
    caps_.threadable = true;
    caps_.pass_aware = true;
    caps_.pass_axis = true;  // passes-off replay uses the raw tape
    caps_.in_process = true;
  }

  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  Trace trace(const Spec& spec, const TraceOptions& opts) const override {
    Trace t;
    t.engine = name_;
    if (spec.has(CompKind::kAdapter)) {
      t.skip_reason = "dataflow adapters have no compiled-simulation image";
      return t;
    }
    System sys(spec);
    sim::CompiledSystem cs =
        sim::CompiledSystem::compile(sys.scheduler(), opts.passes);
    const auto probes = spec.probes();
    for (std::uint64_t c = 0; c < spec.cycles; ++c) {
      cs.cycle();
      std::vector<double> row;
      row.reserve(probes.size());
      for (const std::string& n : probes) row.push_back(cs.net_value(n));
      t.values.push_back(std::move(row));
    }
    t.ran = true;
    return t;
  }

  Trace trace_ckpt(const Spec& spec, const TraceOptions& opts,
                   std::uint64_t k) const override {
    Trace t;
    t.engine = name_;
    if (spec.has(CompKind::kAdapter)) {
      t.skip_reason = "dataflow adapters have no compiled-simulation image";
      return t;
    }
    const auto probes = spec.probes();
    const auto capture = [&](sim::CompiledSystem& cs) {
      std::vector<double> row;
      row.reserve(probes.size());
      for (const std::string& n : probes) row.push_back(cs.net_value(n));
      t.values.push_back(std::move(row));
    };
    System sa(spec);
    sim::CompiledSystem a =
        sim::CompiledSystem::compile(sa.scheduler(), opts.passes);
    for (std::uint64_t c = 0; c < k; ++c) {
      a.cycle();
      capture(a);
    }
    std::stringstream snap;
    a.save_state(snap);
    System sb(spec);
    sim::CompiledSystem b =
        sim::CompiledSystem::compile(sb.scheduler(), opts.passes);
    b.restore_state(snap);
    for (std::uint64_t c = k; c < spec.cycles; ++c) {
      b.cycle();
      capture(b);
    }
    t.ran = true;
    return t;
  }

  opt::PassOptions noopt_passes() const override {
    return opt::PassOptions::raw();
  }

  std::unique_ptr<Runner> bind(sched::CycleScheduler& sched,
                               const opt::PassOptions& passes) const override {
    class R : public Runner {
     public:
      R(sched::CycleScheduler& s, const opt::PassOptions& p)
          : cs_(sim::CompiledSystem::compile(s, p)) {}
      void cycle() override { cs_.cycle(); }
      double net_value(const std::string& n) const override {
        return cs_.net_value(n);
      }

     private:
      sim::CompiledSystem cs_;
    };
    return std::make_unique<R>(sched, passes);
  }

 private:
  std::string name_ = "compiled";
  Capabilities caps_;
};

// --- in-process JIT --------------------------------------------------------

class JitEngine : public Engine {
 public:
  JitEngine() {
    caps_.checkpointable = true;  // shares the compiled tape's ckpt format
    caps_.threadable = true;
    caps_.pass_aware = true;
    // No passes-off replay of its own: the raw tape is already covered by
    // the compiled engine, and a second host-compiler run per spec would
    // double the axis' cost for no new coverage.
    caps_.pass_axis = false;
    caps_.in_process = true;
  }

  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  Trace trace(const Spec& spec, const TraceOptions& opts) const override {
    Trace t;
    t.engine = name_;
    if (spec.has(CompKind::kAdapter)) {
      t.skip_reason = "dataflow adapters have no compiled-simulation image";
      return t;
    }
    System sys(spec);
    jit::JitSystem js =
        jit::JitSystem::compile(sys.scheduler(), opts.passes, jit_options(opts));
    const auto probes = spec.probes();
    for (std::uint64_t c = 0; c < spec.cycles; ++c) {
      js.cycle();
      std::vector<double> row;
      row.reserve(probes.size());
      for (const std::string& n : probes) row.push_back(js.net_value(n));
      t.values.push_back(std::move(row));
    }
    t.ran = true;
    return t;
  }

  Trace trace_ckpt(const Spec& spec, const TraceOptions& opts,
                   std::uint64_t k) const override {
    Trace t;
    t.engine = name_;
    if (spec.has(CompKind::kAdapter)) {
      t.skip_reason = "dataflow adapters have no compiled-simulation image";
      return t;
    }
    const auto probes = spec.probes();
    const auto capture = [&](jit::JitSystem& js) {
      std::vector<double> row;
      row.reserve(probes.size());
      for (const std::string& n : probes) row.push_back(js.net_value(n));
      t.values.push_back(std::move(row));
    };
    System sa(spec);
    jit::JitSystem a =
        jit::JitSystem::compile(sa.scheduler(), opts.passes, jit_options(opts));
    for (std::uint64_t c = 0; c < k; ++c) {
      a.cycle();
      capture(a);
    }
    std::stringstream snap;
    a.save_state(snap);
    // The second instance is the same design, so its compile() is the
    // first one's cache hit — the axis costs one host-compiler run.
    System sb(spec);
    jit::JitSystem b =
        jit::JitSystem::compile(sb.scheduler(), opts.passes, jit_options(opts));
    b.restore_state(snap);
    for (std::uint64_t c = k; c < spec.cycles; ++c) {
      b.cycle();
      capture(b);
    }
    t.ran = true;
    return t;
  }

  std::unique_ptr<Runner> bind(sched::CycleScheduler& sched,
                               const opt::PassOptions& passes) const override {
    class R : public Runner {
     public:
      R(sched::CycleScheduler& s, const opt::PassOptions& p)
          : js_(jit::JitSystem::compile(s, p)) {}
      void cycle() override { js_.cycle(); }
      double net_value(const std::string& n) const override {
        return js_.net_value(n);
      }

     private:
      jit::JitSystem js_;
    };
    return std::make_unique<R>(sched, passes);
  }

 private:
  std::string name_ = "jit";
  Capabilities caps_;
};

// --- lane-batched SoA evaluator --------------------------------------------

class BatchedEngine : public Engine {
 public:
  BatchedEngine() {
    caps_.checkpointable = true;  // per-lane snapshots (ckpt kBatched)
    caps_.pass_aware = true;
    // No passes-off replay of its own: the raw tape is covered by the
    // compiled engine, and the batched evaluator replays the same image.
    caps_.pass_axis = false;
    // Not bindable as a Runner: bind() attaches one engine to one live
    // scheduler, and a one-lane batch adds nothing over `compiled`.
    caps_.in_process = false;
  }

  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  Trace trace(const Spec& spec, const TraceOptions& opts) const override {
    Trace t;
    t.engine = name_;
    if (spec.has(CompKind::kAdapter)) {
      t.skip_reason = "dataflow adapters have no compiled-simulation image";
      return t;
    }
    const unsigned lanes = opts.lanes == 0 ? 1 : opts.lanes;
    // The reported trace comes from a seed-dependent lane, so the fuzz
    // campaign sweeps lane positions: any lane-position dependence shows up
    // as an engine-axis divergence against the scalar engines.
    const unsigned report = static_cast<unsigned>(spec.seed % lanes);
    System sys(spec);
    batch::BatchedSystem bs =
        batch::BatchedSystem::compile(sys.scheduler(), lanes, opts.passes);
    const auto probes = spec.probes();
    for (std::uint64_t c = 0; c < spec.cycles; ++c) {
      bs.cycle();
      std::vector<double> row;
      row.reserve(probes.size());
      for (const std::string& n : probes) {
        const double v0 = bs.net_value(0, n);
        // Lane-invariance contract: every lane replays the same spec with
        // the same stimulus, so any divergence is a batching bug — checked
        // on every fuzz seed, every cycle.
        for (unsigned l = 1; l < lanes; ++l) {
          if (bs.net_value(l, n) != v0) {
            t.fail_reason = "lane-invariance violation: net '" + n +
                            "' lane " + std::to_string(l) + " = " +
                            std::to_string(bs.net_value(l, n)) +
                            ", lane 0 = " + std::to_string(v0) +
                            " at cycle " + std::to_string(c);
            return t;
          }
        }
        row.push_back(bs.net_value(report, n));
      }
      t.values.push_back(std::move(row));
    }
    t.ran = true;
    return t;
  }

  Trace trace_ckpt(const Spec& spec, const TraceOptions& opts,
                   std::uint64_t k) const override {
    Trace t;
    t.engine = name_;
    if (spec.has(CompKind::kAdapter)) {
      t.skip_reason = "dataflow adapters have no compiled-simulation image";
      return t;
    }
    const unsigned lanes = opts.lanes == 0 ? 1 : opts.lanes;
    const unsigned report = static_cast<unsigned>(spec.seed % lanes);
    const auto probes = spec.probes();
    const auto capture = [&](batch::BatchedSystem& bs) {
      std::vector<double> row;
      row.reserve(probes.size());
      for (const std::string& n : probes)
        row.push_back(bs.net_value(report, n));
      t.values.push_back(std::move(row));
    };
    System sa(spec);
    batch::BatchedSystem a =
        batch::BatchedSystem::compile(sa.scheduler(), lanes, opts.passes);
    for (std::uint64_t c = 0; c < k; ++c) {
      a.cycle();
      capture(a);
    }
    std::stringstream snap;
    a.save_lane(report, snap);
    // Only the report lane restores; the other lanes of B replay from
    // reset, so the continued batch deliberately runs with divergent lanes
    // — exercising the masked per-lane paths on every checkpoint axis.
    System sb(spec);
    batch::BatchedSystem b =
        batch::BatchedSystem::compile(sb.scheduler(), lanes, opts.passes);
    b.restore_lane(report, snap);
    for (std::uint64_t c = k; c < spec.cycles; ++c) {
      b.cycle();
      capture(b);
    }
    t.ran = true;
    return t;
  }

 private:
  std::string name_ = "batched";
  Capabilities caps_;
};

// --- generated standalone C++ simulator ------------------------------------

class CppgenEngine : public Engine {
 public:
  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  Trace trace(const Spec& spec, const TraceOptions& opts) const override {
    Trace t;
    t.engine = name_;
    if (spec.has(CompKind::kAdapter) || spec.has(CompKind::kUntimed)) {
      t.skip_reason = "untimed/adapter behaviour has no generated-code image";
      return t;
    }
    System sys(spec);
    sim::CompiledSystem cs =
        sim::CompiledSystem::compile(sys.scheduler(), opts.passes);
    const auto probes = spec.probes();

    // Atomic: concurrent diff_run_batch lanes each need a unique scratch stem.
    static std::atomic<int> counter{0};
    const std::string stem = scratch_dir(opts) + "/asicpp_fuzz_" +
                             std::to_string(getpid()) + "_" +
                             std::to_string(counter.fetch_add(1)) + "_s" +
                             std::to_string(spec.seed);
    const std::string src = stem + ".cpp", bin = stem + ".bin";
    {
      std::ofstream os(src);
      if (!os) {
        t.fail_reason = "cannot write " + src;
        return t;
      }
      cs.emit_cpp(os, probes, spec.cycles);
    }
    std::string text;
    if (run_command(opts.cxx + " -O2 -std=c++17 -o " + bin + " " + src,
                    &text) != 0) {
      t.fail_reason = "generated simulator failed to compile: " + text;
      std::remove(src.c_str());
      return t;
    }
    text.clear();
    const int rc = run_command(bin, &text);
    std::remove(src.c_str());
    std::remove(bin.c_str());
    if (rc != 0) {
      t.fail_reason = "generated simulator exited with status " +
                      std::to_string(rc) + ": " + text;
      return t;
    }
    std::istringstream is(text);
    std::vector<double> flat;
    std::string line;
    while (std::getline(is, line))
      if (!line.empty()) flat.push_back(std::atof(line.c_str()));
    if (flat.size() != spec.cycles * probes.size()) {
      t.fail_reason = "generated simulator printed " +
                      std::to_string(flat.size()) + " values, expected " +
                      std::to_string(spec.cycles * probes.size());
      return t;
    }
    for (std::uint64_t c = 0; c < spec.cycles; ++c)
      t.values.emplace_back(
          flat.begin() + static_cast<long>(c * probes.size()),
          flat.begin() + static_cast<long>((c + 1) * probes.size()));
    t.ran = true;
    return t;
  }

 private:
  std::string name_ = "cppgen";
  Capabilities caps_;  // all false: external process, no snapshots, no passes
};

// --- gate-level netlist -----------------------------------------------------

class GatesEngine : public Engine {
 public:
  const std::string& name() const override { return name_; }
  const Capabilities& caps() const override { return caps_; }

  Trace trace(const Spec& spec, const TraceOptions& opts) const override {
    (void)opts;
    Trace t;
    t.engine = name_;
    if (spec.has(CompKind::kAdapter) || spec.has(CompKind::kUntimed)) {
      t.skip_reason = "untimed/adapter behaviour has no gate-level image";
      return t;
    }
    System sys(spec);
    const auto probes = spec.probes();
    synth::SystemSynthSpec sspec;
    sspec.observe = probes;
    netlist::Netlist nl;
    synth::synthesize_system(sys.scheduler(), nl, sspec);

    // Bus widths of the observed outputs, recovered from the port names.
    std::vector<int> widths(probes.size(), 0);
    for (const auto& [name, gate] : nl.outputs()) {
      (void)gate;
      for (std::size_t i = 0; i < probes.size(); ++i) {
        const std::string prefix = "net_" + probes[i] + "[";
        if (name.rfind(prefix, 0) == 0)
          widths[i] =
              std::max(widths[i], std::stoi(name.substr(prefix.size())) + 1);
      }
    }
    for (std::size_t i = 0; i < probes.size(); ++i)
      if (widths[i] <= 0)
        throw std::runtime_error("gates: observed net '" + probes[i] +
                                 "' has no output bus");

    const fixpt::Format f = spec.fmt();
    netlist::LevelizedSim sim(nl);
    for (std::uint64_t c = 0; c < spec.cycles; ++c) {
      sim.settle();
      std::vector<double> row;
      row.reserve(probes.size());
      for (std::size_t i = 0; i < probes.size(); ++i) {
        const long long mant = netlist::read_bus(sim, "net_" + probes[i],
                                                 widths[i], f.is_signed);
        row.push_back(std::ldexp(static_cast<double>(mant), -f.frac_bits()));
      }
      t.values.push_back(std::move(row));
      sim.cycle();
    }
    t.ran = true;
    return t;
  }

 private:
  std::string name_ = "gates";
  Capabilities caps_;  // all false
};

}  // namespace

void register_builtin_engines(Registry& r) {
  r.add(std::make_unique<InterpretedEngine>("iterative",
                                            ScheduleMode::kIterative));
  r.add(std::make_unique<InterpretedEngine>("levelized",
                                            ScheduleMode::kLevelized));
  r.add(std::make_unique<CompiledEngine>());
  r.add(std::make_unique<CppgenEngine>());
  r.add(std::make_unique<GatesEngine>());
  r.add(std::make_unique<JitEngine>());
  r.add(std::make_unique<BatchedEngine>());
}

}  // namespace asicpp::engine
