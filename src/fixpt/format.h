// Fixed-point number formats.
//
// The paper (section 3) simulates finite-wordlength effects with a C++
// fixed-point library that models *quantization* of values rather than their
// bit-vector representation; this is where most of the simulation speedup at
// the word level comes from. A Format captures everything needed to quantize
// a real value: total wordlength, integer wordlength, signedness, and the
// rounding / overflow disciplines.
#pragma once

#include <cstdint>
#include <string>

namespace asicpp::fixpt {

/// Rounding discipline applied when a value has more fractional precision
/// than the target format can hold.
enum class Quant {
  kTruncate,  ///< drop extra bits (round toward -infinity on the mantissa)
  kRound,     ///< round to nearest, ties away from zero
};

/// Overflow discipline applied when a value exceeds the representable range.
enum class Overflow {
  kSaturate,  ///< clamp to the closest representable extreme
  kWrap,      ///< two's-complement wraparound of the mantissa
};

/// Describes a fixed-point representation <wl, iwl> as in the paper's fixed
/// point library: `wl` total bits including the sign bit when signed, `iwl`
/// integer bits (excluding sign). Fractional bits = wl - iwl - (sign ? 1 : 0).
/// A negative fractional-bit count is allowed (coarser-than-integer grids).
struct Format {
  int wl = 32;
  int iwl = 15;
  bool is_signed = true;
  Quant quant = Quant::kTruncate;
  Overflow ovf = Overflow::kSaturate;

  constexpr int frac_bits() const { return wl - iwl - (is_signed ? 1 : 0); }

  /// Smallest representable increment.
  double lsb() const;
  /// Largest representable value.
  double max_value() const;
  /// Smallest (most negative) representable value.
  double min_value() const;

  bool operator==(const Format&) const = default;

  std::string to_string() const;
};

/// Quantize `v` into format `f` (rounding, then overflow handling).
double quantize(double v, const Format& f);

/// True when `v` is exactly representable in `f`.
bool representable(double v, const Format& f);

/// Format able to hold the exact sum of values in formats a and b.
Format add_format(const Format& a, const Format& b);
/// Format able to hold the exact product of values in formats a and b.
Format mul_format(const Format& a, const Format& b);

}  // namespace asicpp::fixpt
