// Bridge between the quantization world (Fixed) and the bit-true world
// (BitVector). Used wherever a word-level value crosses into synthesized
// hardware: netlist simulation, testbench generation, equivalence checking.
#pragma once

#include "fixpt/bitvector.h"
#include "fixpt/fixed.h"

namespace asicpp::fixpt {

/// Encode `v` (quantized into `f`) as the f.wl-bit two's-complement mantissa.
BitVector to_bits(const Fixed& v, const Format& f);

/// Decode an f.wl-bit mantissa back into a Fixed bound to `f`.
Fixed from_bits(const BitVector& bits, const Format& f);

}  // namespace asicpp::fixpt
