// Arbitrary-width two's-complement bit vectors.
//
// This is the bit-true representation the paper deliberately *avoids* for
// word-level simulation (section 3: "the simulation of the quantization
// rather than the bit-vector representation allows significant simulation
// speedups"). We implement it anyway: it is the baseline for the fixpt
// ablation benchmark, the value type at synthesized word-operator
// boundaries, and the bridge between word-level values and gate-level nets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asicpp::fixpt {

class BitVector {
 public:
  /// An all-zero vector of `width` bits. Width 0 is an empty vector.
  explicit BitVector(int width = 0);

  /// `width`-bit two's-complement encoding of `value` (wrapped to width).
  BitVector(int width, std::int64_t value);

  static BitVector from_binary_string(const std::string& bits);

  int width() const { return width_; }

  bool bit(int i) const;
  void set_bit(int i, bool v);

  /// Sign bit (two's complement msb); false for width 0.
  bool msb() const { return width_ > 0 && bit(width_ - 1); }

  /// Signed interpretation (two's complement). Requires width <= 64.
  std::int64_t to_int64() const;
  /// Unsigned interpretation. Requires width <= 64.
  std::uint64_t to_uint64() const;

  /// Bits [lo, lo+len) as a new vector.
  BitVector slice(int lo, int len) const;
  /// {hi, lo} concatenation: *this occupies the high bits of the result.
  BitVector concat(const BitVector& lo) const;
  /// Resize, sign-extending when `sign_extend`, zero-extending otherwise.
  BitVector extend(int new_width, bool sign_extend) const;

  // Modular (wrap-to-width) arithmetic, the hardware semantics.
  friend BitVector operator+(const BitVector& a, const BitVector& b);
  friend BitVector operator-(const BitVector& a, const BitVector& b);
  friend BitVector operator*(const BitVector& a, const BitVector& b);
  friend BitVector operator&(const BitVector& a, const BitVector& b);
  friend BitVector operator|(const BitVector& a, const BitVector& b);
  friend BitVector operator^(const BitVector& a, const BitVector& b);
  BitVector operator~() const;
  BitVector operator<<(int n) const;
  /// Logical right shift.
  BitVector lshr(int n) const;
  /// Arithmetic right shift.
  BitVector ashr(int n) const;

  bool operator==(const BitVector& o) const;
  bool operator!=(const BitVector& o) const { return !(*this == o); }
  /// Signed comparison.
  bool slt(const BitVector& o) const;
  /// Unsigned comparison.
  bool ult(const BitVector& o) const;

  bool is_zero() const;

  /// "0b..." msb-first rendering.
  std::string to_string() const;

 private:
  void mask_top();
  int limbs() const { return static_cast<int>(v_.size()); }

  int width_ = 0;
  std::vector<std::uint64_t> v_;
};

}  // namespace asicpp::fixpt
