#include "fixpt/bitvector.h"

#include <cassert>
#include <stdexcept>

namespace asicpp::fixpt {

namespace {
constexpr int kLimbBits = 64;
int limbs_for(int width) { return (width + kLimbBits - 1) / kLimbBits; }
}  // namespace

BitVector::BitVector(int width) : width_(width), v_(limbs_for(width), 0) {
  if (width < 0) throw std::invalid_argument("BitVector: negative width");
}

BitVector::BitVector(int width, std::int64_t value) : BitVector(width) {
  const auto u = static_cast<std::uint64_t>(value);
  if (!v_.empty()) v_[0] = u;
  // Sign-extend into the higher limbs.
  if (value < 0) {
    for (int i = 1; i < limbs(); ++i) v_[i] = ~0ULL;
  }
  mask_top();
}

BitVector BitVector::from_binary_string(const std::string& bits) {
  BitVector r(static_cast<int>(bits.size()));
  for (int i = 0; i < r.width_; ++i) {
    const char c = bits[bits.size() - 1 - static_cast<std::size_t>(i)];
    if (c != '0' && c != '1') throw std::invalid_argument("BitVector: bad bit char");
    r.set_bit(i, c == '1');
  }
  return r;
}

void BitVector::mask_top() {
  const int rem = width_ % kLimbBits;
  if (rem != 0 && !v_.empty()) v_.back() &= (~0ULL >> (kLimbBits - rem));
}

bool BitVector::bit(int i) const {
  assert(i >= 0 && i < width_);
  return (v_[static_cast<std::size_t>(i / kLimbBits)] >> (i % kLimbBits)) & 1ULL;
}

void BitVector::set_bit(int i, bool b) {
  assert(i >= 0 && i < width_);
  const auto limb = static_cast<std::size_t>(i / kLimbBits);
  const std::uint64_t m = 1ULL << (i % kLimbBits);
  if (b)
    v_[limb] |= m;
  else
    v_[limb] &= ~m;
}

std::int64_t BitVector::to_int64() const {
  if (width_ > 64) throw std::out_of_range("BitVector::to_int64: width > 64");
  if (width_ == 0) return 0;
  std::uint64_t u = v_[0];
  if (width_ < 64 && msb()) u |= ~0ULL << width_;  // sign extend
  return static_cast<std::int64_t>(u);
}

std::uint64_t BitVector::to_uint64() const {
  if (width_ > 64) throw std::out_of_range("BitVector::to_uint64: width > 64");
  return width_ == 0 ? 0 : v_[0];
}

BitVector BitVector::slice(int lo, int len) const {
  assert(lo >= 0 && len >= 0 && lo + len <= width_);
  BitVector r(len);
  for (int i = 0; i < len; ++i) r.set_bit(i, bit(lo + i));
  return r;
}

BitVector BitVector::concat(const BitVector& lo) const {
  BitVector r(width_ + lo.width_);
  for (int i = 0; i < lo.width_; ++i) r.set_bit(i, lo.bit(i));
  for (int i = 0; i < width_; ++i) r.set_bit(lo.width_ + i, bit(i));
  return r;
}

BitVector BitVector::extend(int new_width, bool sign_extend) const {
  BitVector r(new_width);
  const bool fill = sign_extend && msb();
  for (int i = 0; i < new_width; ++i) r.set_bit(i, i < width_ ? bit(i) : fill);
  return r;
}

BitVector operator+(const BitVector& a, const BitVector& b) {
  assert(a.width_ == b.width_);
  BitVector r(a.width_);
  unsigned __int128 carry = 0;
  for (int i = 0; i < r.limbs(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    unsigned __int128 s = carry;
    s += a.v_[idx];
    s += b.v_[idx];
    r.v_[idx] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  r.mask_top();
  return r;
}

BitVector operator-(const BitVector& a, const BitVector& b) {
  return a + (~b + BitVector(b.width(), 1));
}

BitVector operator*(const BitVector& a, const BitVector& b) {
  assert(a.width_ == b.width_);
  // Schoolbook limb multiplication, wrapped to the operand width.
  BitVector r(a.width_);
  for (int i = 0; i < a.limbs(); ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; i + j < r.limbs(); ++j) {
      const auto ri = static_cast<std::size_t>(i + j);
      unsigned __int128 cur = r.v_[ri];
      cur += static_cast<unsigned __int128>(a.v_[static_cast<std::size_t>(i)]) *
             b.v_[static_cast<std::size_t>(j)];
      cur += carry;
      r.v_[ri] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
  }
  r.mask_top();
  return r;
}

BitVector operator&(const BitVector& a, const BitVector& b) {
  assert(a.width_ == b.width_);
  BitVector r(a.width_);
  for (int i = 0; i < r.limbs(); ++i)
    r.v_[static_cast<std::size_t>(i)] =
        a.v_[static_cast<std::size_t>(i)] & b.v_[static_cast<std::size_t>(i)];
  return r;
}

BitVector operator|(const BitVector& a, const BitVector& b) {
  assert(a.width_ == b.width_);
  BitVector r(a.width_);
  for (int i = 0; i < r.limbs(); ++i)
    r.v_[static_cast<std::size_t>(i)] =
        a.v_[static_cast<std::size_t>(i)] | b.v_[static_cast<std::size_t>(i)];
  return r;
}

BitVector operator^(const BitVector& a, const BitVector& b) {
  assert(a.width_ == b.width_);
  BitVector r(a.width_);
  for (int i = 0; i < r.limbs(); ++i)
    r.v_[static_cast<std::size_t>(i)] =
        a.v_[static_cast<std::size_t>(i)] ^ b.v_[static_cast<std::size_t>(i)];
  return r;
}

BitVector BitVector::operator~() const {
  BitVector r(width_);
  for (int i = 0; i < limbs(); ++i)
    r.v_[static_cast<std::size_t>(i)] = ~v_[static_cast<std::size_t>(i)];
  r.mask_top();
  return r;
}

BitVector BitVector::operator<<(int n) const {
  BitVector r(width_);
  for (int i = width_ - 1; i >= n; --i) r.set_bit(i, bit(i - n));
  return r;
}

BitVector BitVector::lshr(int n) const {
  BitVector r(width_);
  for (int i = 0; i + n < width_; ++i) r.set_bit(i, bit(i + n));
  return r;
}

BitVector BitVector::ashr(int n) const {
  BitVector r(width_);
  const bool s = msb();
  for (int i = 0; i < width_; ++i) r.set_bit(i, (i + n < width_) ? bit(i + n) : s);
  return r;
}

bool BitVector::operator==(const BitVector& o) const {
  return width_ == o.width_ && v_ == o.v_;
}

bool BitVector::slt(const BitVector& o) const {
  assert(width_ == o.width_);
  if (msb() != o.msb()) return msb();
  return ult(o);
}

bool BitVector::ult(const BitVector& o) const {
  assert(width_ == o.width_);
  for (int i = limbs() - 1; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (v_[idx] != o.v_[idx]) return v_[idx] < o.v_[idx];
  }
  return false;
}

bool BitVector::is_zero() const {
  for (auto limb : v_)
    if (limb != 0) return false;
  return true;
}

std::string BitVector::to_string() const {
  std::string s = "0b";
  for (int i = width_ - 1; i >= 0; --i) s += bit(i) ? '1' : '0';
  return s;
}

}  // namespace asicpp::fixpt
