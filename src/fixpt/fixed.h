// Quantization-based fixed-point value type.
//
// `Fixed` is the word-level value carried by signals in the cycle-true
// descriptions of the paper. Arithmetic between Fixed values is performed in
// double precision and the *result* is exact; quantization happens when a
// value is bound to a Format — on construction, on `cast`, or on assignment
// into a formatted target. This mirrors the paper's observation (section 3)
// that simulating quantization instead of bit vectors gives significant
// simulation speedups while remaining bit-true at format boundaries.
#pragma once

#include <iosfwd>

#include "fixpt/format.h"

namespace asicpp::fixpt {

class Fixed {
 public:
  /// Zero in the default (unconstrained) representation.
  Fixed() = default;

  /// An unconstrained value: exact, not yet bound to a format.
  /*implicit*/ Fixed(double v) : v_(v) {}

  /// A value quantized into format `f`.
  Fixed(double v, const Format& f) : v_(quantize(v, f)), fmt_(f), bound_(true) {}

  double value() const { return v_; }
  const Format& format() const { return fmt_; }
  bool bound() const { return bound_; }

  /// Integer mantissa (value / lsb). Only meaningful for bound values.
  long long raw() const;

  /// Re-quantize this value into format `f`.
  Fixed cast(const Format& f) const { return Fixed(v_, f); }

  /// Assign preserving *this*'s format (the registered-signal assignment
  /// semantics: the target keeps its wordlength).
  Fixed& assign(const Fixed& rhs);

  Fixed operator-() const { return Fixed(-v_); }

  Fixed& operator+=(const Fixed& r);
  Fixed& operator-=(const Fixed& r);
  Fixed& operator*=(const Fixed& r);

  friend Fixed operator+(const Fixed& a, const Fixed& b) { return Fixed(a.v_ + b.v_); }
  friend Fixed operator-(const Fixed& a, const Fixed& b) { return Fixed(a.v_ - b.v_); }
  friend Fixed operator*(const Fixed& a, const Fixed& b) { return Fixed(a.v_ * b.v_); }
  /// Division is exact in double precision; quantize by casting the result.
  friend Fixed operator/(const Fixed& a, const Fixed& b) { return Fixed(a.v_ / b.v_); }

  friend bool operator==(const Fixed& a, const Fixed& b) { return a.v_ == b.v_; }
  friend bool operator!=(const Fixed& a, const Fixed& b) { return a.v_ != b.v_; }
  friend bool operator<(const Fixed& a, const Fixed& b) { return a.v_ < b.v_; }
  friend bool operator<=(const Fixed& a, const Fixed& b) { return a.v_ <= b.v_; }
  friend bool operator>(const Fixed& a, const Fixed& b) { return a.v_ > b.v_; }
  friend bool operator>=(const Fixed& a, const Fixed& b) { return a.v_ >= b.v_; }

  friend std::ostream& operator<<(std::ostream& os, const Fixed& f);

 private:
  double v_ = 0.0;
  Format fmt_{};
  bool bound_ = false;
};

}  // namespace asicpp::fixpt
