#include "fixpt/format.h"

#include <cmath>
#include <sstream>

namespace asicpp::fixpt {

double Format::lsb() const { return std::ldexp(1.0, -frac_bits()); }

double Format::max_value() const {
  const int magnitude_bits = wl - (is_signed ? 1 : 0);
  return (std::ldexp(1.0, magnitude_bits) - 1.0) * lsb();
}

double Format::min_value() const {
  if (!is_signed) return 0.0;
  return -std::ldexp(1.0, wl - 1) * lsb();
}

std::string Format::to_string() const {
  std::ostringstream os;
  os << (is_signed ? "fix<" : "ufix<") << wl << ',' << iwl << ','
     << (quant == Quant::kRound ? "rnd" : "trn") << ','
     << (ovf == Overflow::kSaturate ? "sat" : "wrap") << '>';
  return os.str();
}

double quantize(double v, const Format& f) {
  const double scaled = std::ldexp(v, f.frac_bits());
  double mant = (f.quant == Quant::kRound) ? std::round(scaled)
                                           : std::floor(scaled);
  const double hi = std::ldexp(f.max_value(), f.frac_bits());
  const double lo = std::ldexp(f.min_value(), f.frac_bits());
  if (mant > hi || mant < lo) {
    if (f.ovf == Overflow::kSaturate) {
      mant = (mant > hi) ? hi : lo;
    } else {
      // Two's-complement wraparound: fold the mantissa into [lo, hi].
      const double span = std::ldexp(1.0, f.wl);
      mant = std::fmod(mant - lo, span);
      if (mant < 0) mant += span;
      mant += lo;
    }
  }
  return std::ldexp(mant, -f.frac_bits());
}

bool representable(double v, const Format& f) { return quantize(v, f) == v; }

Format add_format(const Format& a, const Format& b) {
  Format r;
  r.is_signed = a.is_signed || b.is_signed;
  const int frac = std::max(a.frac_bits(), b.frac_bits());
  const int iwl = std::max(a.iwl, b.iwl) + 1;  // one carry bit
  r.iwl = iwl;
  r.wl = iwl + frac + (r.is_signed ? 1 : 0);
  r.quant = a.quant;
  r.ovf = a.ovf;
  return r;
}

Format mul_format(const Format& a, const Format& b) {
  Format r;
  r.is_signed = a.is_signed || b.is_signed;
  const int frac = a.frac_bits() + b.frac_bits();
  const int iwl = a.iwl + b.iwl + 1;
  r.iwl = iwl;
  r.wl = iwl + frac + (r.is_signed ? 1 : 0);
  r.quant = a.quant;
  r.ovf = a.ovf;
  return r;
}

}  // namespace asicpp::fixpt
