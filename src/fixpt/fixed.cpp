#include "fixpt/fixed.h"

#include <cmath>
#include <ostream>

namespace asicpp::fixpt {

long long Fixed::raw() const {
  return static_cast<long long>(std::llround(std::ldexp(v_, fmt_.frac_bits())));
}

Fixed& Fixed::assign(const Fixed& rhs) {
  if (bound_) {
    v_ = quantize(rhs.v_, fmt_);
  } else {
    v_ = rhs.v_;
  }
  return *this;
}

Fixed& Fixed::operator+=(const Fixed& r) { return assign(Fixed(v_ + r.v_)); }
Fixed& Fixed::operator-=(const Fixed& r) { return assign(Fixed(v_ - r.v_)); }
Fixed& Fixed::operator*=(const Fixed& r) { return assign(Fixed(v_ * r.v_)); }

std::ostream& operator<<(std::ostream& os, const Fixed& f) {
  os << f.v_;
  if (f.bound_) os << ':' << f.fmt_.to_string();
  return os;
}

}  // namespace asicpp::fixpt
