#include "fixpt/fixbits.h"

#include <cmath>
#include <stdexcept>

namespace asicpp::fixpt {

BitVector to_bits(const Fixed& v, const Format& f) {
  if (f.wl > 63) throw std::out_of_range("to_bits: wordlength > 63");
  const Fixed q = v.cast(f);
  const auto mant =
      static_cast<std::int64_t>(std::llround(std::ldexp(q.value(), f.frac_bits())));
  return BitVector(f.wl, mant);
}

Fixed from_bits(const BitVector& bits, const Format& f) {
  if (bits.width() != f.wl)
    throw std::invalid_argument("from_bits: width does not match format");
  const std::int64_t mant =
      f.is_signed ? bits.to_int64() : static_cast<std::int64_t>(bits.to_uint64());
  return Fixed(std::ldexp(static_cast<double>(mant), -f.frac_bits()), f);
}

}  // namespace asicpp::fixpt
