// Expression-DAG nodes underlying `Sig` handles.
//
// Following Fig 3 of the paper, overloaded C++ operators reuse the C++
// parser to build a signal-flow-graph data structure. Every operator
// application allocates a Node; `Sig` is a cheap shared handle onto this
// graph. The same graph is simulated (interpreted mode), flattened into a
// compiled tape, and walked by the HDL / C++ code generators.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fixpt/fixed.h"

namespace asicpp::sfg {

class Clk;

/// Node kinds. Leaves first, then operators.
enum class Op {
  kInput,  ///< external input; value injected per cycle
  kConst,  ///< compile-time constant
  kReg,    ///< registered signal: current/next value pair
  kAdd,
  kSub,
  kMul,
  kNeg,
  kAnd,  ///< bitwise and on integer interpretations
  kOr,
  kXor,
  kNot,  ///< logical complement (0 -> 1, nonzero -> 0), for FSM flags
  kShl,  ///< shift left by constant (arg 1 must be kConst)
  kShr,  ///< arithmetic shift right by constant
  kMux,  ///< args: sel, if_true, if_false
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kCast,  ///< re-quantize into the node's format

  kCount,  ///< sentinel — keep last; op_arity/op_is_compare static_assert
           ///< against it so a new enumerator fails to compile everywhere
           ///< instead of silently misreporting
};

/// Human-readable mnemonic, e.g. "add".
const char* op_name(Op op);
/// Number of operands (0 for leaves).
int op_arity(Op op);
/// True for kEq..kGe (1-bit results).
bool op_is_compare(Op op);

struct Node {
  explicit Node(Op o) : op(o), id(next_id()) {}

  Op op;
  std::uint64_t id;  ///< globally unique, used for stable codegen names
  std::string name;  ///< non-empty for inputs, registers, named constants

  std::vector<std::shared_ptr<Node>> args;

  /// Declared word-level format. Meaningful for inputs, registers, constants
  /// and casts; derived for operators by format inference (synth).
  fixpt::Format fmt{};
  bool has_fmt = false;

  // --- simulation state ---
  fixpt::Fixed value;      ///< leaf value / memoized operator result
  std::uint64_t stamp = 0; ///< evaluation round of the memoized result

  // --- register state (op == kReg) ---
  fixpt::Fixed next;       ///< next-value, written by SFG assignment
  bool next_set = false;
  double init = 0.0;       ///< reset value
  Clk* clk = nullptr;

  // --- traversal scratch ---
  bool visiting = false;   ///< cycle detection during evaluation

  static std::uint64_t next_id();
};

using NodePtr = std::shared_ptr<Node>;

}  // namespace asicpp::sfg
