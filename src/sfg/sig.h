// `Sig`: the signal handle of the paper's programming environment.
//
// Signals are the information carriers of timed descriptions (section 3.1).
// A Sig is a value-semantic handle onto a shared expression DAG; applying
// C++ operators to Sigs builds the signal flow graph rather than computing
// immediately — exactly the overloading trick of Fig 3. Registered signals
// (`Reg`) carry a current and a next value: reading a Reg in an expression
// reads the current value, assigning it (through Sfg::assign) writes the
// next value, which becomes current at the register-update phase.
#pragma once

#include "fixpt/fixed.h"
#include "fixpt/format.h"
#include "sfg/node.h"

namespace asicpp::sfg {

class Reg;

class Sig {
 public:
  /// Unconnected handle; using it in an expression throws.
  Sig() = default;

  /// Wrap an existing node (library-internal, also used by codegen tests).
  explicit Sig(NodePtr n) : node_(std::move(n)) {}

  /// Constants participate implicitly: `a + 1.0` works.
  /*implicit*/ Sig(double v);

  /// A named external input with a declared format.
  static Sig input(const std::string& name, const fixpt::Format& f);
  /// A named external input carrying exact (unquantized) values.
  static Sig input(const std::string& name);
  /// An explicit constant.
  static Sig constant(double v);

  bool valid() const { return node_ != nullptr; }
  const NodePtr& node() const { return node_; }

  /// Re-quantize into format `f` (inserts a cast node).
  Sig cast(const fixpt::Format& f) const;

  Sig operator-() const;
  Sig operator~() const;
  /// Shift by a constant amount (hardware shifters are constant-shift here).
  Sig operator<<(int n) const;
  Sig operator>>(int n) const;

 private:
  NodePtr node_;
};

// Free (not hidden-friend) operators so that mixed operands convert:
// Reg + double, double + Sig, ... all funnel through Sig's conversions.
Sig operator+(const Sig& a, const Sig& b);
Sig operator-(const Sig& a, const Sig& b);
Sig operator*(const Sig& a, const Sig& b);
Sig operator&(const Sig& a, const Sig& b);
Sig operator|(const Sig& a, const Sig& b);
Sig operator^(const Sig& a, const Sig& b);
Sig operator==(const Sig& a, const Sig& b);
Sig operator!=(const Sig& a, const Sig& b);
Sig operator<(const Sig& a, const Sig& b);
Sig operator<=(const Sig& a, const Sig& b);
Sig operator>(const Sig& a, const Sig& b);
Sig operator>=(const Sig& a, const Sig& b);

/// sel != 0 ? if_true : if_false, as a hardware multiplexer.
Sig mux(const Sig& sel, const Sig& if_true, const Sig& if_false);

/// A registered signal bound to a clock. Reading a Reg (it converts to Sig)
/// yields the *current* value; Sfg::assign(reg, expr) schedules the *next*
/// value. On Clk reset the register takes `init`.
class Reg {
 public:
  Reg(const std::string& name, Clk& clk, const fixpt::Format& f, double init = 0.0);
  /// Exact-valued register (no quantization), for high-level models.
  Reg(const std::string& name, Clk& clk, double init = 0.0);

  /*implicit*/ operator Sig() const { return Sig(node_); }
  Sig sig() const { return Sig(node_); }
  const NodePtr& node() const { return node_; }

  /// Current value (simulation read).
  fixpt::Fixed read() const { return node_->value; }

 private:
  NodePtr node_;
};

}  // namespace asicpp::sfg
