#include "sfg/sig.h"

#include <atomic>
#include <stdexcept>

#include "sfg/clk.h"

namespace asicpp::sfg {

std::uint64_t Node::next_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kInput: return "input";
    case Op::kConst: return "const";
    case Op::kReg: return "reg";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kNeg: return "neg";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNot: return "not";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kMux: return "mux";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kCast: return "cast";
    case Op::kCount: break;
  }
  return "?";
}

// The switches below are exhaustive on purpose (no default): adding an Op
// enumerator turns into a -Wswitch compile error here rather than a silent
// arity-2/non-compare misclassification. The static_assert pins the
// expected enumerator count so even a build without -Wswitch trips.
static_assert(static_cast<int>(Op::kCount) == 21,
              "Op changed: update op_name/op_arity/op_is_compare, the "
              "opt/semantics.h helpers, and every lowering consumer");

int op_arity(Op op) {
  switch (op) {
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
      return 0;
    case Op::kNeg:
    case Op::kNot:
    case Op::kCast:
      return 1;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
      return 2;
    case Op::kMux:
      return 3;
    case Op::kCount:
      break;
  }
  throw std::logic_error("op_arity: invalid Op");
}

bool op_is_compare(Op op) {
  switch (op) {
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
      return true;
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kNeg:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNot:
    case Op::kShl:
    case Op::kShr:
    case Op::kMux:
    case Op::kCast:
      return false;
    case Op::kCount:
      break;
  }
  throw std::logic_error("op_is_compare: invalid Op");
}

namespace {

const NodePtr& require(const Sig& s) {
  if (!s.valid()) throw std::logic_error("Sig: use of unconnected signal");
  return s.node();
}

Sig make_binary(Op op, const Sig& a, const Sig& b) {
  auto n = std::make_shared<Node>(op);
  n->args = {require(a), require(b)};
  return Sig(std::move(n));
}

Sig make_unary(Op op, const Sig& a) {
  auto n = std::make_shared<Node>(op);
  n->args = {require(a)};
  return Sig(std::move(n));
}

}  // namespace

Sig::Sig(double v) : node_(std::make_shared<Node>(Op::kConst)) {
  node_->value = fixpt::Fixed(v);
}

Sig Sig::input(const std::string& name, const fixpt::Format& f) {
  Sig s = input(name);
  s.node_->fmt = f;
  s.node_->has_fmt = true;
  s.node_->value = fixpt::Fixed(0.0, f);
  return s;
}

Sig Sig::input(const std::string& name) {
  Sig s;
  s.node_ = std::make_shared<Node>(Op::kInput);
  s.node_->name = name;
  return s;
}

Sig Sig::constant(double v) { return Sig(v); }

Sig Sig::cast(const fixpt::Format& f) const {
  Sig s = make_unary(Op::kCast, *this);
  s.node()->fmt = f;
  s.node()->has_fmt = true;
  return s;
}

Sig Sig::operator-() const { return make_unary(Op::kNeg, *this); }
Sig Sig::operator~() const { return make_unary(Op::kNot, *this); }

Sig Sig::operator<<(int n) const { return make_binary(Op::kShl, *this, Sig(static_cast<double>(n))); }
Sig Sig::operator>>(int n) const { return make_binary(Op::kShr, *this, Sig(static_cast<double>(n))); }

Sig operator+(const Sig& a, const Sig& b) { return make_binary(Op::kAdd, a, b); }
Sig operator-(const Sig& a, const Sig& b) { return make_binary(Op::kSub, a, b); }
Sig operator*(const Sig& a, const Sig& b) { return make_binary(Op::kMul, a, b); }
Sig operator&(const Sig& a, const Sig& b) { return make_binary(Op::kAnd, a, b); }
Sig operator|(const Sig& a, const Sig& b) { return make_binary(Op::kOr, a, b); }
Sig operator^(const Sig& a, const Sig& b) { return make_binary(Op::kXor, a, b); }
Sig operator==(const Sig& a, const Sig& b) { return make_binary(Op::kEq, a, b); }
Sig operator!=(const Sig& a, const Sig& b) { return make_binary(Op::kNe, a, b); }
Sig operator<(const Sig& a, const Sig& b) { return make_binary(Op::kLt, a, b); }
Sig operator<=(const Sig& a, const Sig& b) { return make_binary(Op::kLe, a, b); }
Sig operator>(const Sig& a, const Sig& b) { return make_binary(Op::kGt, a, b); }
Sig operator>=(const Sig& a, const Sig& b) { return make_binary(Op::kGe, a, b); }

Sig mux(const Sig& sel, const Sig& if_true, const Sig& if_false) {
  auto n = std::make_shared<Node>(Op::kMux);
  n->args = {require(sel), require(if_true), require(if_false)};
  return Sig(std::move(n));
}

Reg::Reg(const std::string& name, Clk& clk, const fixpt::Format& f, double init)
    : node_(std::make_shared<Node>(Op::kReg)) {
  node_->name = name;
  node_->fmt = f;
  node_->has_fmt = true;
  node_->init = init;
  node_->clk = &clk;
  node_->value = fixpt::Fixed(init, f);
  clk.enroll(node_);
}

Reg::Reg(const std::string& name, Clk& clk, double init)
    : node_(std::make_shared<Node>(Op::kReg)) {
  node_->name = name;
  node_->init = init;
  node_->clk = &clk;
  node_->value = fixpt::Fixed(init);
  clk.enroll(node_);
}

}  // namespace asicpp::sfg
