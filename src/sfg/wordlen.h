// Wordlength (format) inference over signal expression DAGs.
//
// Leaves carry declared formats (inputs, registers, casts) or formats
// derived from their value (constants); operator formats follow standard
// bit-growth rules (add: +1 integer bit, mul: widths add, ...). The HDL
// code generator sizes every intermediate signal from this map, and the
// datapath synthesizer bit-blasts operators to exactly these widths.
#pragma once

#include <stdexcept>
#include <unordered_map>

#include "fixpt/format.h"
#include "sfg/node.h"
#include "sfg/sfg.h"

namespace asicpp::sfg {

/// Keyed by raw node pointers: every expression whose format is recorded
/// must stay alive (keep the Sig handles) for as long as the map is used.
using FormatMap = std::unordered_map<const Node*, fixpt::Format>;

/// Smallest format exactly representing constant `v` (frac bits capped at
/// 30; beyond that the constant is not synthesizable as fixed point).
fixpt::Format format_for_constant(double v);

/// Thrown when a leaf lacks a declared format and none can be derived.
struct FormatError : std::runtime_error {
  explicit FormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Infer the format of `n` and everything below it into `map`.
const fixpt::Format& infer_format(const NodePtr& n, FormatMap& map);

/// Infer formats for all outputs and register assignments of `s`.
void infer_formats(Sfg& s, FormatMap& map);

}  // namespace asicpp::sfg
