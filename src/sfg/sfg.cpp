#include "sfg/sfg.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "opt/ir.h"
#include "opt/passes.h"
#include "opt/semantics.h"
#include "sfg/eval.h"

namespace asicpp::sfg {

Sfg::Sfg(std::string name) : name_(std::move(name)) {}
Sfg::~Sfg() = default;
Sfg::Sfg(Sfg&&) noexcept = default;
Sfg& Sfg::operator=(Sfg&&) noexcept = default;

namespace {

/// Collect every kInput leaf reachable from `n`.
void collect_inputs(const NodePtr& n, std::unordered_set<const Node*>& seen,
                    std::unordered_set<const Node*>& found) {
  if (!seen.insert(n.get()).second) return;
  if (n->op == Op::kInput) {
    found.insert(n.get());
    return;
  }
  for (const auto& a : n->args) collect_inputs(a, seen, found);
}

std::unordered_set<const Node*> reachable_inputs(const NodePtr& n) {
  std::unordered_set<const Node*> seen, found;
  collect_inputs(n, seen, found);
  return found;
}

/// Every node reachable from `n`, deduplicated across calls via `seen`.
void collect_nodes(const NodePtr& n, std::unordered_set<const Node*>& seen,
                   std::vector<const Node*>& order) {
  if (!seen.insert(n.get()).second) return;
  order.push_back(n.get());
  for (const auto& a : n->args) collect_nodes(a, seen, order);
}

bool is_bitwise(Op op) { return op == Op::kAnd || op == Op::kOr || op == Op::kXor; }

}  // namespace

Sfg& Sfg::in(const Sig& s) {
  if (!s.valid() || s.node()->op != Op::kInput)
    throw std::invalid_argument("Sfg::in: not an input signal");
  inputs_.push_back(s.node());
  analyzed_ = false;
  lowered_.reset();
  return *this;
}

Sfg& Sfg::out(const std::string& port, const Sig& expr) {
  if (!expr.valid()) throw std::invalid_argument("Sfg::out: unconnected expression");
  outputs_.push_back(Output{port, expr.node(), false});
  analyzed_ = false;
  lowered_.reset();
  return *this;
}

Sfg& Sfg::assign(const Reg& r, const Sig& expr) {
  if (!expr.valid()) throw std::invalid_argument("Sfg::assign: unconnected expression");
  assigns_.push_back(RegAssign{r.node(), expr.node()});
  analyzed_ = false;
  lowered_.reset();
  return *this;
}

Sfg& Sfg::assign_node(NodePtr reg, NodePtr expr) {
  if (reg == nullptr || reg->op != Op::kReg)
    throw std::invalid_argument("Sfg::assign_node: not a registered signal");
  if (expr == nullptr)
    throw std::invalid_argument("Sfg::assign_node: unconnected expression");
  assigns_.push_back(RegAssign{std::move(reg), std::move(expr)});
  analyzed_ = false;
  lowered_.reset();
  return *this;
}

void Sfg::set_pass_options(const opt::PassOptions& p) {
  if (popts_ == p) return;
  popts_ = p;
  lowered_.reset();
}

void Sfg::invalidate_lowered() { lowered_.reset(); }

const opt::LoweredSfg& Sfg::lowered() const {
  if (!lowered_) {
    auto l = std::make_unique<opt::LoweredSfg>(opt::lower(*this));
    opt::run_passes(*l, popts_);
    lowered_ = std::move(l);
  }
  return *lowered_;
}

void Sfg::analyze() const {
  if (analyzed_) return;
  for (auto& o : outputs_) o.needs_inputs = depends_on_declared_input(o.expr);
  analyzed_ = true;
}

bool Sfg::depends_on_declared_input(const NodePtr& n) const {
  const auto found = reachable_inputs(n);
  return !found.empty();
}

void Sfg::check(diag::DiagEngine& de) {
  analyze();
  const std::string where = "sfg '" + name_ + "'";

  std::unordered_set<const Node*> declared;
  for (const auto& i : inputs_) declared.insert(i.get());

  // Reachable inputs across all outputs and register assignments.
  std::unordered_set<const Node*> used;
  for (const auto& o : outputs_) {
    for (const Node* i : reachable_inputs(o.expr)) used.insert(i);
  }
  for (const auto& a : assigns_) {
    for (const Node* i : reachable_inputs(a.expr)) used.insert(i);
  }

  for (const Node* i : used) {
    if (!declared.count(i))
      de.error("SFG-001", where,
               "dangling input: expression reads undeclared input '" + i->name + "'");
  }
  for (const auto& i : inputs_) {
    if (!used.count(i.get()))
      de.warning("SFG-002", where,
                 "dead code: input '" + i->name + "' is never used");
  }

  std::unordered_set<std::string> ports;
  for (const auto& o : outputs_) {
    if (!ports.insert(o.port).second)
      de.error("SFG-003", where, "duplicate output port '" + o.port + "'");
  }

  std::unordered_set<const Node*> targets;
  for (const auto& a : assigns_) {
    if (!targets.insert(a.reg.get()).second)
      de.error("SFG-004", where,
               "register '" + a.reg->name + "' assigned twice");
  }

  // Width lint over the whole expression DAG: bitwise operators silently
  // reinterpret the mantissa, so mixing declared widths is suspect;
  // assignments whose source carries a declared format wider than the
  // register's quantize away bits every cycle.
  std::unordered_set<const Node*> seen;
  std::vector<const Node*> nodes;
  for (const auto& o : outputs_) collect_nodes(o.expr, seen, nodes);
  for (const auto& a : assigns_) collect_nodes(a.expr, seen, nodes);
  for (const Node* n : nodes) {
    if (!is_bitwise(n->op) || n->args.size() < 2) continue;
    const Node* a = n->args[0].get();
    const Node* b = n->args[1].get();
    if (a->has_fmt && b->has_fmt && a->fmt.wl != b->fmt.wl) {
      auto leaf = [](const Node* x) {
        return x->name.empty() ? std::string(op_name(x->op)) : "'" + x->name + "'";
      };
      de.warning("SFG-005", where,
                 "width mismatch: bitwise " + std::string(op_name(n->op)) +
                     " mixes " + leaf(a) + " <" + std::to_string(a->fmt.wl) +
                     " bits> with " + leaf(b) + " <" + std::to_string(b->fmt.wl) +
                     " bits>");
    }
  }
  for (const auto& a : assigns_) {
    const Node* src = a.expr.get();
    if (src->has_fmt && a.reg->has_fmt && src->fmt.wl > a.reg->fmt.wl) {
      de.warning("SFG-005", where,
                 "width mismatch: expression <" + std::to_string(src->fmt.wl) +
                     " bits> assigned to register '" + a.reg->name + "' <" +
                     std::to_string(a.reg->fmt.wl) +
                     " bits> narrows on every cycle");
    }
  }

  // Clock-domain lint: every register read or written by one SFG must be
  // bound to the same clock, or the three-phase scheduler's register-update
  // phase commits them at inconsistent times.
  std::unordered_set<const Node*> reg_seen;
  std::vector<const Node*> clocked;
  auto collect_reg = [&](const Node* r) {
    if (r->op == Op::kReg && r->clk != nullptr && reg_seen.insert(r).second)
      clocked.push_back(r);
  };
  for (const Node* n : nodes) collect_reg(n);
  for (const auto& a : assigns_) collect_reg(a.reg.get());
  for (const Node* r : clocked) {
    if (r->clk != clocked.front()->clk)
      de.error("SFG-006", where,
               "multiple clocks: registers '" + clocked.front()->name + "' and '" +
                   r->name + "' are bound to different clock objects");
  }
}

void Sfg::set_input(const std::string& port, const fixpt::Fixed& v) {
  for (auto& i : inputs_) {
    if (i->name == port) {
      i->value = i->has_fmt ? v.cast(i->fmt) : v;
      return;
    }
  }
  throw std::out_of_range("Sfg::set_input: no input named '" + port + "'");
}

void Sfg::eval_lowered(bool pre_only) {
  const opt::LoweredSfg& l = lowered();
  slots_.resize(l.ins.size());
  opt::exec_lowered(l, slots_.data(), pre_only);
  for (const auto& o : l.outputs) {
    if (pre_only && o.needs_inputs) continue;
    // Leaf expressions keep their own value (inputs/registers are
    // authoritative); interior expressions get the result written back —
    // possibly from a redirected slot after simplification — so
    // output_value()/push_outputs observe the recursive walk's protocol.
    if (op_arity(o.node->op) != 0)
      o.node->value = fixpt::Fixed(slots_[static_cast<std::size_t>(o.slot)]);
  }
  if (pre_only) return;
  for (const auto& a : l.assigns) {
    a.reg->next = fixpt::Fixed(slots_[static_cast<std::size_t>(a.slot)]);
    a.reg->next_set = true;
  }
}

void Sfg::eval_register_outputs(std::uint64_t stamp) {
  analyze();
  if (popts_.lower) {
    eval_lowered(/*pre_only=*/true);
    return;
  }
  for (auto& o : outputs_) {
    if (!o.needs_inputs) asicpp::sfg::eval(o.expr, stamp);
  }
}

void Sfg::eval(std::uint64_t stamp) {
  analyze();
  if (popts_.lower) {
    eval_lowered(/*pre_only=*/false);
    return;
  }
  for (auto& o : outputs_) asicpp::sfg::eval(o.expr, stamp);
  for (auto& a : assigns_) {
    a.reg->next = asicpp::sfg::eval(a.expr, stamp);
    a.reg->next_set = true;
  }
}

void Sfg::eval() { eval(new_eval_stamp()); }

fixpt::Fixed Sfg::output_value(const std::string& port) const {
  const auto it = std::find_if(outputs_.begin(), outputs_.end(),
                               [&](const Output& o) { return o.port == port; });
  if (it == outputs_.end())
    throw std::out_of_range("Sfg::output_value: no output named '" + port + "'");
  return it->expr->value;
}

void Sfg::update_registers() {
  for (auto& a : assigns_) {
    if (a.reg->next_set) {
      a.reg->value = a.reg->has_fmt ? a.reg->next.cast(a.reg->fmt) : a.reg->next;
      a.reg->next_set = false;
    }
  }
}

}  // namespace asicpp::sfg
