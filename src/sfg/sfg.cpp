#include "sfg/sfg.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "sfg/eval.h"

namespace asicpp::sfg {

namespace {

/// Collect every kInput leaf reachable from `n`.
void collect_inputs(const NodePtr& n, std::unordered_set<const Node*>& seen,
                    std::unordered_set<const Node*>& found) {
  if (!seen.insert(n.get()).second) return;
  if (n->op == Op::kInput) {
    found.insert(n.get());
    return;
  }
  for (const auto& a : n->args) collect_inputs(a, seen, found);
}

std::unordered_set<const Node*> reachable_inputs(const NodePtr& n) {
  std::unordered_set<const Node*> seen, found;
  collect_inputs(n, seen, found);
  return found;
}

}  // namespace

Sfg& Sfg::in(const Sig& s) {
  if (!s.valid() || s.node()->op != Op::kInput)
    throw std::invalid_argument("Sfg::in: not an input signal");
  inputs_.push_back(s.node());
  analyzed_ = false;
  return *this;
}

Sfg& Sfg::out(const std::string& port, const Sig& expr) {
  if (!expr.valid()) throw std::invalid_argument("Sfg::out: unconnected expression");
  outputs_.push_back(Output{port, expr.node(), false});
  analyzed_ = false;
  return *this;
}

Sfg& Sfg::assign(const Reg& r, const Sig& expr) {
  if (!expr.valid()) throw std::invalid_argument("Sfg::assign: unconnected expression");
  assigns_.push_back(RegAssign{r.node(), expr.node()});
  analyzed_ = false;
  return *this;
}

void Sfg::analyze() {
  if (analyzed_) return;
  for (auto& o : outputs_) o.needs_inputs = depends_on_declared_input(o.expr);
  analyzed_ = true;
}

bool Sfg::depends_on_declared_input(const NodePtr& n) const {
  const auto found = reachable_inputs(n);
  return !found.empty();
}

std::vector<std::string> Sfg::check() {
  analyze();
  std::vector<std::string> diags;

  std::unordered_set<const Node*> declared;
  for (const auto& i : inputs_) declared.insert(i.get());

  // Reachable inputs across all outputs and register assignments.
  std::unordered_set<const Node*> used;
  for (const auto& o : outputs_) {
    for (const Node* i : reachable_inputs(o.expr)) used.insert(i);
  }
  for (const auto& a : assigns_) {
    for (const Node* i : reachable_inputs(a.expr)) used.insert(i);
  }

  for (const Node* i : used) {
    if (!declared.count(i))
      diags.push_back("dangling input: expression in sfg '" + name_ +
                      "' reads undeclared input '" + i->name + "'");
  }
  for (const auto& i : inputs_) {
    if (!used.count(i.get()))
      diags.push_back("dead code: input '" + i->name + "' of sfg '" + name_ +
                      "' is never used");
  }

  std::unordered_set<std::string> ports;
  for (const auto& o : outputs_) {
    if (!ports.insert(o.port).second)
      diags.push_back("duplicate output port '" + o.port + "' in sfg '" + name_ + "'");
  }

  std::unordered_set<const Node*> targets;
  for (const auto& a : assigns_) {
    if (!targets.insert(a.reg.get()).second)
      diags.push_back("register '" + a.reg->name + "' assigned twice in sfg '" +
                      name_ + "'");
  }
  return diags;
}

void Sfg::set_input(const std::string& port, const fixpt::Fixed& v) {
  for (auto& i : inputs_) {
    if (i->name == port) {
      i->value = i->has_fmt ? v.cast(i->fmt) : v;
      return;
    }
  }
  throw std::out_of_range("Sfg::set_input: no input named '" + port + "'");
}

void Sfg::eval_register_outputs(std::uint64_t stamp) {
  analyze();
  for (auto& o : outputs_) {
    if (!o.needs_inputs) asicpp::sfg::eval(o.expr, stamp);
  }
}

void Sfg::eval(std::uint64_t stamp) {
  analyze();
  for (auto& o : outputs_) asicpp::sfg::eval(o.expr, stamp);
  for (auto& a : assigns_) {
    a.reg->next = asicpp::sfg::eval(a.expr, stamp);
    a.reg->next_set = true;
  }
}

void Sfg::eval() { eval(new_eval_stamp()); }

fixpt::Fixed Sfg::output_value(const std::string& port) const {
  const auto it = std::find_if(outputs_.begin(), outputs_.end(),
                               [&](const Output& o) { return o.port == port; });
  if (it == outputs_.end())
    throw std::out_of_range("Sfg::output_value: no output named '" + port + "'");
  return it->expr->value;
}

void Sfg::update_registers() {
  for (auto& a : assigns_) {
    if (a.reg->next_set) {
      a.reg->value = a.reg->has_fmt ? a.reg->next.cast(a.reg->fmt) : a.reg->next;
      a.reg->next_set = false;
    }
  }
}

}  // namespace asicpp::sfg
