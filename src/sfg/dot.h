// Graphviz export of signal flow graphs.
//
// The SFG data structure is the design's central artifact (it feeds the
// simulators, the code generators and the synthesizer); `to_dot` renders
// it for inspection — leaves as boxes (inputs/registers/constants),
// operators as ellipses, declared outputs and register next-value edges
// annotated.
#pragma once

#include <string>

#include "sfg/sfg.h"

namespace asicpp::sfg {

/// Graphviz digraph of `s`. Include formats per node when a FormatMap-
/// style annotation is wanted by running wordlen inference first and
/// passing `with_formats`.
std::string to_dot(Sfg& s, bool with_formats = false);

}  // namespace asicpp::sfg
