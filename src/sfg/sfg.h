// Signal flow graphs.
//
// An Sfg assembles signal expressions into one clock cycle of data
// processing (section 3.1): declared inputs, named outputs, and next-value
// assignments to registered signals. Declaring the desired inputs and
// outputs enables the semantic checks the paper mentions — dangling-input
// and dead-code detection — and the input-dependency analysis the cycle
// scheduler's token-production phase relies on (which outputs depend only
// on registered or constant signals).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "diag/diag.h"
#include "fixpt/fixed.h"
#include "opt/options.h"
#include "sfg/sig.h"

namespace asicpp::opt {
struct LoweredSfg;
}

namespace asicpp::sfg {

class Sfg {
 public:
  explicit Sfg(std::string name);
  ~Sfg();
  Sfg(Sfg&&) noexcept;
  Sfg& operator=(Sfg&&) noexcept;

  const std::string& name() const { return name_; }

  /// Declare an input port of this SFG. The Sig must be an input signal.
  Sfg& in(const Sig& s);
  /// Declare a named output computed by `expr`.
  Sfg& out(const std::string& port, const Sig& expr);
  /// Schedule `expr` as the next value of registered signal `r`.
  Sfg& assign(const Reg& r, const Sig& expr);
  /// Node-level assign, used when materializing a pass-optimized clone
  /// (hdl/synth consumption); `reg` must be a registered-signal node.
  Sfg& assign_node(NodePtr reg, NodePtr expr);

  struct Output {
    std::string port;
    NodePtr expr;
    bool needs_inputs = false;  ///< depends on at least one declared input
  };
  struct RegAssign {
    NodePtr reg;
    NodePtr expr;
  };

  const std::vector<NodePtr>& inputs() const { return inputs_; }
  const std::vector<Output>& outputs() const { return outputs_; }
  const std::vector<RegAssign>& reg_assigns() const { return assigns_; }

  /// Dependency analysis; runs lazily before simulation / checks /
  /// static scheduling. Const: it only fills the memoized needs_inputs
  /// classification of the declared outputs.
  void analyze() const;

  /// Accumulating lint pass. Reports *all* violations of this SFG into
  /// `de` in one run, each with a stable code:
  ///   SFG-001 dangling input (expression reaches an undeclared input)
  ///   SFG-002 dead code (declared input never used)
  ///   SFG-003 duplicate output port
  ///   SFG-004 double assignment to one register
  ///   SFG-005 width mismatch (bitwise op on different widths; assignment
  ///           that silently narrows into the register format)
  ///   SFG-006 registers of one SFG bound to different clocks
  void check(diag::DiagEngine& de);

  // --- simulation (interpreted mode) ---

  /// Pass pipeline applied when this SFG is lowered for evaluation. The
  /// default runs every pass; PassOptions::none() restores the original
  /// recursive graph walk (the differential reference).
  void set_pass_options(const opt::PassOptions& p);
  const opt::PassOptions& pass_options() const { return popts_; }

  /// Drop the cached lowered form (formats or values were mutated behind
  /// the Sfg's back, e.g. by wordlength optimization knobs).
  void invalidate_lowered();

  /// Lowered, pass-optimized form of this SFG (built lazily). Also the
  /// source of the optimizer's instruction-count statistics.
  const opt::LoweredSfg& lowered() const;

  /// Set the current value of a declared input by port name.
  void set_input(const std::string& port, const fixpt::Fixed& v);

  /// Phase-1 evaluation: compute only outputs that do not depend on inputs
  /// (they are functions of registers and constants alone).
  void eval_register_outputs(std::uint64_t stamp);

  /// Full evaluation: all outputs plus register next-values. Requires all
  /// inputs to carry this cycle's values.
  void eval(std::uint64_t stamp);

  /// Convenience: eval with a fresh stamp.
  void eval();

  /// Value of output `port` after eval.
  fixpt::Fixed output_value(const std::string& port) const;

  /// Commit next-values of the registers assigned by this SFG (phase 3).
  void update_registers();

 private:
  bool depends_on_declared_input(const NodePtr& n) const;
  void eval_lowered(bool pre_only);

  std::string name_;
  std::vector<NodePtr> inputs_;
  mutable std::vector<Output> outputs_;  ///< mutable: analyze() memoizes needs_inputs
  std::vector<RegAssign> assigns_;
  mutable bool analyzed_ = false;
  opt::PassOptions popts_{};
  mutable std::unique_ptr<opt::LoweredSfg> lowered_;
  mutable std::vector<double> slots_;  ///< IR value slots, reused per eval
};

}  // namespace asicpp::sfg
