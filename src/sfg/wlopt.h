// Fixed-point wordlength optimization.
//
// Section 3 leans on C++ fixed-point simulation for finite-wordlength
// design, citing the fixed-point optimization utilities of Kim/Kum/Sung
// [5] and the interpolative approach of Willems et al. [11]. This module
// provides that utility for SFG descriptions: simulate the graph against
// a high-precision reference over random stimuli, then greedily shave
// fractional bits off registers and casts while the output RMS error
// stays inside the budget — the classic simulation-based search.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sfg/clk.h"
#include "sfg/sfg.h"

namespace asicpp::sfg {

struct WlOptSpec {
  double error_budget = 1e-3;  ///< max output RMS error vs the reference
  int max_frac = 16;           ///< starting fractional bits on every knob
  int min_frac = 0;            ///< floor of the search
  int vectors = 256;           ///< stimulus cycles per trial
  unsigned seed = 1;
};

struct WlOptResult {
  /// Chosen fractional bits per knob (register / cast), by node name or
  /// "cast@<id>" for anonymous cast nodes.
  std::map<std::string, int> frac_bits;
  double rms_error = 0.0;   ///< achieved error at the final assignment
  int bits_saved = 0;       ///< sum of (max_frac - chosen) over knobs
  int knobs = 0;
};

/// Optimize the fractional wordlengths of every register and cast node in
/// `s`. Inputs are stimulated uniformly over their declared format ranges
/// (every input must carry a format). On return the node formats in the
/// graph hold the optimized assignment (wl adjusted, iwl kept).
WlOptResult optimize_wordlengths(Sfg& s, Clk& clk, const WlOptSpec& spec = {});

}  // namespace asicpp::sfg
