#include "sfg/dot.h"

#include <sstream>
#include <unordered_set>

#include "sfg/wordlen.h"

namespace asicpp::sfg {

namespace {

void emit_node(const NodePtr& n, std::ostream& os,
               std::unordered_set<const Node*>& seen, const FormatMap* fmts) {
  if (!seen.insert(n.get()).second) return;
  std::ostringstream label;
  switch (n->op) {
    case Op::kInput: label << "in " << n->name; break;
    case Op::kReg: label << "reg " << n->name; break;
    case Op::kConst: label << n->value.value(); break;
    default: label << op_name(n->op); break;
  }
  if (fmts != nullptr) {
    const auto it = fmts->find(n.get());
    if (it != fmts->end()) label << "\\n" << it->second.to_string();
  }
  const bool leaf = op_arity(n->op) == 0;
  os << "  n" << n->id << " [label=\"" << label.str() << "\", shape="
     << (leaf ? "box" : "ellipse") << "];\n";
  for (const auto& a : n->args) {
    emit_node(a, os, seen, fmts);
    os << "  n" << a->id << " -> n" << n->id << ";\n";
  }
}

}  // namespace

std::string to_dot(Sfg& s, bool with_formats) {
  s.analyze();
  FormatMap fmts;
  const FormatMap* fptr = nullptr;
  if (with_formats) {
    infer_formats(s, fmts);
    fptr = &fmts;
  }
  std::ostringstream os;
  os << "digraph \"" << s.name() << "\" {\n  rankdir=LR;\n";
  std::unordered_set<const Node*> seen;
  for (const auto& o : s.outputs()) {
    emit_node(o.expr, os, seen, fptr);
    os << "  out_" << o.port << " [label=\"out " << o.port
       << "\", shape=box, style=bold];\n";
    os << "  n" << o.expr->id << " -> out_" << o.port << ";\n";
  }
  for (const auto& a : s.reg_assigns()) {
    emit_node(a.expr, os, seen, fptr);
    emit_node(a.reg, os, seen, fptr);
    os << "  n" << a.expr->id << " -> n" << a.reg->id
       << " [style=dashed, label=\"next\"];\n";
  }
  for (const auto& i : s.inputs()) emit_node(i, os, seen, fptr);
  os << "}\n";
  return os.str();
}

}  // namespace asicpp::sfg
