#include "sfg/eval.h"

#include <atomic>
#include <stdexcept>

#include "opt/semantics.h"

namespace asicpp::sfg {

std::uint64_t new_eval_stamp() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

fixpt::Fixed apply_op(const Node& n, const fixpt::Fixed* argv, int argc) {
  // Ops whose Fixed result carries format metadata forward are handled
  // here; the *value* semantics of every operator live in one place,
  // opt::apply_op_value, shared with the tape executor and the code
  // generator.
  if (n.op == Op::kMux)
    return argv[0].value() != 0.0 ? argv[1] : argv[2];
  if (n.op == Op::kCast) return argv[0].cast(n.fmt);
  (void)argc;
  return fixpt::Fixed(opt::apply_op_value(
      n.op, argv[0].value(), n.args.size() > 1 ? argv[1].value() : 0.0,
      n.args.size() > 2 ? argv[2].value() : 0.0, n.fmt));
}

fixpt::Fixed eval(const NodePtr& n, std::uint64_t stamp) {
  switch (n->op) {
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
      return n->value;
    default:
      break;
  }
  if (n->stamp == stamp) return n->value;
  fixpt::Fixed argv[3];
  const int argc = static_cast<int>(n->args.size());
  for (int i = 0; i < argc; ++i) argv[i] = eval(n->args[static_cast<std::size_t>(i)], stamp);
  n->value = apply_op(*n, argv, argc);
  n->stamp = stamp;
  return n->value;
}

}  // namespace asicpp::sfg
