#include "sfg/eval.h"

#include <atomic>
#include <cmath>
#include <stdexcept>

namespace asicpp::sfg {

std::uint64_t new_eval_stamp() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

namespace {

long long as_int(const fixpt::Fixed& v) {
  return static_cast<long long>(std::llround(v.value()));
}

}  // namespace

fixpt::Fixed apply_op(const Node& n, const fixpt::Fixed* argv, int argc) {
  using fixpt::Fixed;
  switch (n.op) {
    case Op::kAdd: return argv[0] + argv[1];
    case Op::kSub: return argv[0] - argv[1];
    case Op::kMul: return argv[0] * argv[1];
    case Op::kNeg: return -argv[0];
    // Bitwise operators act on the integer interpretation of the value;
    // they are intended for flags, instruction words and address math.
    case Op::kAnd: return Fixed(static_cast<double>(as_int(argv[0]) & as_int(argv[1])));
    case Op::kOr: return Fixed(static_cast<double>(as_int(argv[0]) | as_int(argv[1])));
    case Op::kXor: return Fixed(static_cast<double>(as_int(argv[0]) ^ as_int(argv[1])));
    case Op::kNot: return Fixed(as_int(argv[0]) == 0 ? 1.0 : 0.0);
    case Op::kShl: return Fixed(std::ldexp(argv[0].value(), static_cast<int>(argv[1].value())));
    case Op::kShr: return Fixed(std::ldexp(argv[0].value(), -static_cast<int>(argv[1].value())));
    case Op::kMux: return argv[0].value() != 0.0 ? argv[1] : argv[2];
    case Op::kEq: return Fixed(argv[0] == argv[1] ? 1.0 : 0.0);
    case Op::kNe: return Fixed(argv[0] != argv[1] ? 1.0 : 0.0);
    case Op::kLt: return Fixed(argv[0] < argv[1] ? 1.0 : 0.0);
    case Op::kLe: return Fixed(argv[0] <= argv[1] ? 1.0 : 0.0);
    case Op::kGt: return Fixed(argv[0] > argv[1] ? 1.0 : 0.0);
    case Op::kGe: return Fixed(argv[0] >= argv[1] ? 1.0 : 0.0);
    case Op::kCast: return argv[0].cast(n.fmt);
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
      break;
  }
  (void)argc;
  throw std::logic_error("apply_op: leaf node has no operator");
}

fixpt::Fixed eval(const NodePtr& n, std::uint64_t stamp) {
  switch (n->op) {
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
      return n->value;
    default:
      break;
  }
  if (n->stamp == stamp) return n->value;
  fixpt::Fixed argv[3];
  const int argc = static_cast<int>(n->args.size());
  for (int i = 0; i < argc; ++i) argv[i] = eval(n->args[static_cast<std::size_t>(i)], stamp);
  n->value = apply_op(*n, argv, argc);
  n->stamp = stamp;
  return n->value;
}

}  // namespace asicpp::sfg
