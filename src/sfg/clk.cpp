#include "sfg/clk.h"

#include "fixpt/fixed.h"

namespace asicpp::sfg {

void Clk::enroll(const NodePtr& reg) { regs_.push_back(reg); }

void Clk::reset() {
  for (auto& r : regs_) {
    r->value = r->has_fmt ? fixpt::Fixed(r->init, r->fmt) : fixpt::Fixed(r->init);
    r->next_set = false;
  }
  cycle_ = 0;
}

void Clk::tick() {
  for (auto& r : regs_) {
    if (r->next_set) {
      r->value = r->has_fmt ? r->next.cast(r->fmt) : r->next;
      r->next_set = false;
    }
  }
  ++cycle_;
}

}  // namespace asicpp::sfg
