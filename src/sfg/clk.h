// Clock objects.
//
// Registered signals are related to a clock object that controls signal
// update (section 3.1). The clock owns the set of registers bound to it and
// can reset them; fine-grained per-SFG register update (the third phase of
// the cycle scheduler) lives in Sfg::update_registers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfg/node.h"

namespace asicpp::sfg {

class Clk {
 public:
  explicit Clk(std::string name = "clk") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::uint64_t cycle() const { return cycle_; }

  /// Library-internal: registers enroll themselves on construction.
  void enroll(const NodePtr& reg);

  /// Set every bound register to its init value and clear pending next-values.
  void reset();

  /// Commit next-values of *all* bound registers and advance the cycle count.
  /// Standalone-SFG simulation convenience; the cycle scheduler instead
  /// updates only the registers of marked SFGs, then calls `advance`.
  void tick();

  /// Advance the cycle counter only.
  void advance() { ++cycle_; }

  /// Checkpoint restore: force the cycle counter.
  void set_cycle(std::uint64_t c) { cycle_ = c; }

  const std::vector<NodePtr>& registers() const { return regs_; }

 private:
  std::string name_;
  std::uint64_t cycle_ = 0;
  std::vector<NodePtr> regs_;
};

}  // namespace asicpp::sfg
