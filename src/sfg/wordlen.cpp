#include "sfg/wordlen.h"

#include <algorithm>
#include <cmath>

namespace asicpp::sfg {

using fixpt::Format;

Format format_for_constant(double v) {
  // Find the smallest fractional precision representing v exactly.
  int frac = 0;
  double scaled = v;
  while (frac < 30 && scaled != std::floor(scaled)) scaled = std::ldexp(v, ++frac);
  if (scaled != std::floor(scaled))
    throw FormatError("constant " + std::to_string(v) + " is not fixed-point");
  const auto mant = static_cast<long long>(scaled);
  const bool neg = mant < 0;
  const long long mag = neg ? -mant : mant;
  int bits = 0;
  while ((1LL << bits) <= mag) ++bits;
  if (bits == 0) bits = 1;  // the constant 0 still occupies one bit
  Format f;
  f.is_signed = neg;
  f.wl = bits + (neg ? 1 : 0);
  f.iwl = bits - frac;
  return f;
}

namespace {

Format merge(const Format& a, const Format& b) {
  Format r;
  r.is_signed = a.is_signed || b.is_signed;
  const int frac = std::max(a.frac_bits(), b.frac_bits());
  const int iwl = std::max(a.iwl, b.iwl);
  r.iwl = iwl;
  r.wl = iwl + frac + (r.is_signed ? 1 : 0);
  return r;
}

Format int_logic(const Format& a, const Format& b) {
  Format r;
  r.is_signed = a.is_signed || b.is_signed;
  r.iwl = std::max(a.iwl + std::max(a.frac_bits(), 0), b.iwl + std::max(b.frac_bits(), 0));
  r.wl = r.iwl + (r.is_signed ? 1 : 0);
  return r;
}

const Format kBit{1, 1, false, fixpt::Quant::kTruncate, fixpt::Overflow::kWrap};

}  // namespace

const Format& infer_format(const NodePtr& n, FormatMap& map) {
  const auto it = map.find(n.get());
  if (it != map.end()) return it->second;

  Format f;
  switch (n->op) {
    case Op::kInput:
    case Op::kReg:
      if (!n->has_fmt)
        throw FormatError(std::string(op_name(n->op)) + " '" + n->name +
                          "' has no declared format");
      f = n->fmt;
      break;
    case Op::kConst:
      f = n->has_fmt ? n->fmt : format_for_constant(n->value.value());
      break;
    case Op::kCast:
      infer_format(n->args[0], map);
      f = n->fmt;
      break;
    case Op::kAdd:
    case Op::kSub: {
      const Format& a = infer_format(n->args[0], map);
      const Format& b = infer_format(n->args[1], map);
      f = fixpt::add_format(a, b);
      if (n->op == Op::kSub && !f.is_signed) {
        f.is_signed = true;
        f.wl += 1;
      }
      break;
    }
    case Op::kMul: {
      const Format& a = infer_format(n->args[0], map);
      const Format& b = infer_format(n->args[1], map);
      f = fixpt::mul_format(a, b);
      break;
    }
    case Op::kNeg: {
      const Format& a = infer_format(n->args[0], map);
      f = a;
      if (!f.is_signed) {
        f.is_signed = true;
        f.wl += 1;
      }
      f.iwl += 1;  // -min overflows otherwise
      f.wl += 1;
      break;
    }
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor: {
      const Format& a = infer_format(n->args[0], map);
      const Format& b = infer_format(n->args[1], map);
      f = int_logic(a, b);
      break;
    }
    case Op::kNot:
      infer_format(n->args[0], map);
      f = kBit;
      break;
    case Op::kShl:
    case Op::kShr: {
      const Format& a = infer_format(n->args[0], map);
      infer_format(n->args[1], map);
      if (n->args[1]->op != Op::kConst)
        throw FormatError("shift amount must be a constant");
      const int sh = static_cast<int>(n->args[1]->value.value());
      f = a;
      if (n->op == Op::kShl) {
        f.iwl += sh;
        f.wl += sh;
      } else {
        f.iwl -= sh;  // same wl, binary point moves
      }
      break;
    }
    case Op::kMux: {
      infer_format(n->args[0], map);
      const Format& a = infer_format(n->args[1], map);
      const Format& b = infer_format(n->args[2], map);
      f = merge(a, b);
      break;
    }
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
      infer_format(n->args[0], map);
      infer_format(n->args[1], map);
      f = kBit;
      break;
  }
  return map.emplace(n.get(), f).first->second;
}

void infer_formats(Sfg& s, FormatMap& map) {
  for (const auto& o : s.outputs()) infer_format(o.expr, map);
  for (const auto& a : s.reg_assigns()) {
    infer_format(a.expr, map);
    infer_format(a.reg, map);
  }
  for (const auto& i : s.inputs()) infer_format(i, map);
}

}  // namespace asicpp::sfg
