#include "sfg/wordlen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "opt/ir.h"

namespace asicpp::sfg {

using fixpt::Format;

Format format_for_constant(double v) {
  // Find the smallest fractional precision representing v exactly.
  int frac = 0;
  double scaled = v;
  while (frac < 30 && scaled != std::floor(scaled)) scaled = std::ldexp(v, ++frac);
  if (scaled != std::floor(scaled))
    throw FormatError("constant " + std::to_string(v) + " is not fixed-point");
  const auto mant = static_cast<long long>(scaled);
  const bool neg = mant < 0;
  const long long mag = neg ? -mant : mant;
  int bits = 0;
  while ((1LL << bits) <= mag) ++bits;
  if (bits == 0) bits = 1;  // the constant 0 still occupies one bit
  Format f;
  f.is_signed = neg;
  f.wl = bits + (neg ? 1 : 0);
  f.iwl = bits - frac;
  return f;
}

namespace {

Format merge(const Format& a, const Format& b) {
  Format r;
  r.is_signed = a.is_signed || b.is_signed;
  const int frac = std::max(a.frac_bits(), b.frac_bits());
  const int iwl = std::max(a.iwl, b.iwl);
  r.iwl = iwl;
  r.wl = iwl + frac + (r.is_signed ? 1 : 0);
  return r;
}

Format int_logic(const Format& a, const Format& b) {
  Format r;
  r.is_signed = a.is_signed || b.is_signed;
  r.iwl = std::max(a.iwl + std::max(a.frac_bits(), 0), b.iwl + std::max(b.frac_bits(), 0));
  r.wl = r.iwl + (r.is_signed ? 1 : 0);
  return r;
}

const Format kBit{1, 1, false, fixpt::Quant::kTruncate, fixpt::Overflow::kWrap};

/// Leaf format: declared, or derived from the constant's value.
Format leaf_format(const opt::LIns& i) {
  const Node* n = i.origin.get();
  if (i.op == Op::kConst)
    return (n != nullptr && n->has_fmt) ? n->fmt
                                        : format_for_constant(i.cval);
  if (n == nullptr || !n->has_fmt)
    throw FormatError(std::string(op_name(i.op)) + " '" +
                      (n != nullptr ? n->name : std::string()) +
                      "' has no declared format");
  return n->fmt;
}

/// Bit-growth rule for one interior instruction of the lowered IR, given
/// its already-inferred operand formats. The one place the growth rules
/// live; every consumer (HDL signal sizing, datapath bit-blasting) sees
/// formats computed by this function.
Format op_format(const opt::LoweredSfg& l, const opt::LIns& i,
                 const std::vector<Format>& fmts) {
  const auto fa = [&]() -> const Format& { return fmts[static_cast<std::size_t>(i.a)]; };
  const auto fb = [&]() -> const Format& { return fmts[static_cast<std::size_t>(i.b)]; };
  const auto fc = [&]() -> const Format& { return fmts[static_cast<std::size_t>(i.c)]; };
  Format f;
  switch (i.op) {
    case Op::kCast:
      f = i.fmt;
      break;
    case Op::kAdd:
    case Op::kSub:
      f = fixpt::add_format(fa(), fb());
      if (i.op == Op::kSub && !f.is_signed) {
        f.is_signed = true;
        f.wl += 1;
      }
      break;
    case Op::kMul:
      f = fixpt::mul_format(fa(), fb());
      break;
    case Op::kNeg:
      f = fa();
      if (!f.is_signed) {
        f.is_signed = true;
        f.wl += 1;
      }
      f.iwl += 1;  // -min overflows otherwise
      f.wl += 1;
      break;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      f = int_logic(fa(), fb());
      break;
    case Op::kNot:
      f = kBit;
      break;
    case Op::kShl:
    case Op::kShr: {
      const opt::LIns& amt = l.ins[static_cast<std::size_t>(i.b)];
      if (amt.op != Op::kConst)
        throw FormatError("shift amount must be a constant");
      const int sh = static_cast<int>(amt.cval);
      f = fa();
      if (i.op == Op::kShl) {
        f.iwl += sh;
        f.wl += sh;
      } else {
        f.iwl -= sh;  // same wl, binary point moves
      }
      break;
    }
    case Op::kMux:
      f = merge(fb(), fc());
      break;
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
      f = kBit;
      break;
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
    case Op::kCount:
      throw FormatError("op_format: not an interior operator");
  }
  return f;
}

/// Linear sweep over a raw (unoptimized) lowering: every slot's format is
/// computed from the slots below it, memoizing per origin node into `map`
/// so repeated inference over shared subgraphs stays O(1).
void infer_lowered(const opt::LoweredSfg& l, FormatMap& map) {
  std::vector<Format> fmts(l.ins.size());
  for (std::size_t s = 0; s < l.ins.size(); ++s) {
    const opt::LIns& i = l.ins[s];
    const Node* n = i.origin.get();
    if (n != nullptr) {
      const auto it = map.find(n);
      if (it != map.end()) {
        fmts[s] = it->second;
        continue;
      }
    }
    fmts[s] = i.is_leaf() ? leaf_format(i) : op_format(l, i, fmts);
    if (n != nullptr) map.emplace(n, fmts[s]);
  }
}

}  // namespace

const Format& infer_format(const NodePtr& n, FormatMap& map) {
  const auto it = map.find(n.get());
  if (it != map.end()) return it->second;
  infer_lowered(opt::lower_expr(n), map);
  return map.at(n.get());
}

void infer_formats(Sfg& s, FormatMap& map) {
  for (const auto& o : s.outputs()) infer_format(o.expr, map);
  for (const auto& a : s.reg_assigns()) {
    infer_format(a.expr, map);
    infer_format(a.reg, map);
  }
  for (const auto& i : s.inputs()) infer_format(i, map);
}

}  // namespace asicpp::sfg
