// Interpreted evaluation of signal expression DAGs.
//
// This is the "interpreted objects" simulation mode of the paper (Table 1):
// the data structure built by operator overloading is walked directly, with
// per-round memoization so shared subexpressions evaluate once per cycle.
#pragma once

#include <cstdint>

#include "fixpt/fixed.h"
#include "sfg/node.h"

namespace asicpp::sfg {

/// A fresh evaluation round identifier; memoized results from earlier
/// rounds are invalidated by comparing stamps.
std::uint64_t new_eval_stamp();

/// Evaluate `n` in round `stamp`. Leaves (inputs, constants, registers)
/// return their current value; operator nodes are computed and memoized.
fixpt::Fixed eval(const NodePtr& n, std::uint64_t stamp);

/// Apply one operator to already-evaluated operand values. Shared by the
/// interpreted evaluator and the compiled-tape executor.
fixpt::Fixed apply_op(const Node& n, const fixpt::Fixed* argv, int argc);

}  // namespace asicpp::sfg
