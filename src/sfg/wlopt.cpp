#include "sfg/wlopt.h"

#include <cmath>
#include <random>
#include <stdexcept>
#include <unordered_set>

#include "sfg/eval.h"
#include "sfg/wordlen.h"

namespace asicpp::sfg {

namespace {

/// Set a knob's fractional precision, keeping its integer range.
void set_frac(Node* n, int frac) {
  n->fmt.wl = n->fmt.iwl + frac + (n->fmt.is_signed ? 1 : 0);
  n->has_fmt = true;
}

int frac_of(const Node* n) { return n->fmt.frac_bits(); }

struct Knob {
  Node* node;
  std::string name;
};

void collect_knobs(const NodePtr& n, std::vector<Knob>& knobs,
                   std::unordered_set<const Node*>& seen) {
  if (!seen.insert(n.get()).second) return;
  if (n->op == Op::kReg)
    knobs.push_back(Knob{n.get(), n->name});
  else if (n->op == Op::kCast)
    knobs.push_back(Knob{n.get(), "cast@" + std::to_string(n->id)});
  for (const auto& a : n->args) collect_knobs(a, knobs, seen);
}

}  // namespace

WlOptResult optimize_wordlengths(Sfg& s, Clk& clk, const WlOptSpec& spec) {
  s.analyze();
  if (s.outputs().empty())
    throw std::invalid_argument("optimize_wordlengths: sfg has no outputs");
  for (const auto& in : s.inputs()) {
    if (!in->has_fmt)
      throw std::invalid_argument("optimize_wordlengths: input '" + in->name +
                                  "' has no format to stimulate from");
  }

  std::vector<Knob> knobs;
  std::unordered_set<const Node*> seen;
  for (const auto& o : s.outputs()) collect_knobs(o.expr, knobs, seen);
  for (const auto& a : s.reg_assigns()) {
    collect_knobs(a.expr, knobs, seen);
    if (seen.insert(a.reg.get()).second)
      knobs.push_back(Knob{a.reg.get(), a.reg->name});
  }

  // Pre-generate the stimulus so every trial sees identical inputs.
  std::mt19937 rng(spec.seed);
  std::vector<std::vector<double>> stim(static_cast<std::size_t>(spec.vectors));
  for (auto& v : stim) {
    for (const auto& in : s.inputs()) {
      std::uniform_real_distribution<double> d(in->fmt.min_value(), in->fmt.max_value());
      v.push_back(fixpt::quantize(d(rng), in->fmt));
    }
  }

  // One simulation run; returns per-cycle output samples. The knob formats
  // changed behind the Sfg's cache, so the lowered form is rebuilt first.
  const auto run = [&](std::vector<double>& out_samples) {
    s.invalidate_lowered();
    clk.reset();
    for (const auto& v : stim) {
      std::size_t k = 0;
      for (const auto& in : s.inputs()) in->value = fixpt::Fixed(v[k++]);
      s.eval();
      for (const auto& o : s.outputs()) out_samples.push_back(o.expr->value.value());
      s.update_registers();
    }
  };

  // Reference: generous precision on every knob.
  std::vector<int> saved_frac;
  for (const auto& kb : knobs) saved_frac.push_back(frac_of(kb.node));
  for (const auto& kb : knobs) set_frac(kb.node, 24);
  std::vector<double> reference;
  run(reference);

  const auto rms_vs_reference = [&]() {
    std::vector<double> trial;
    run(trial);
    double acc = 0.0;
    for (std::size_t i = 0; i < trial.size(); ++i) {
      const double d = trial[i] - reference[i];
      acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(trial.size()));
  };

  // Start at max_frac everywhere (must satisfy the budget; if not, the
  // budget is infeasible for this search space).
  for (const auto& kb : knobs) set_frac(kb.node, spec.max_frac);
  double err = rms_vs_reference();
  if (err > spec.error_budget) {
    // Restore and report the infeasibility through the result.
    for (std::size_t i = 0; i < knobs.size(); ++i) set_frac(knobs[i].node, saved_frac[i]);
    WlOptResult r;
    r.rms_error = err;
    r.knobs = static_cast<int>(knobs.size());
    return r;
  }

  // Greedy descent: repeatedly drop one fractional bit from the knob that
  // keeps the error smallest, while the budget holds.
  bool progress = true;
  while (progress) {
    progress = false;
    std::size_t best = knobs.size();
    double best_err = spec.error_budget;
    for (std::size_t i = 0; i < knobs.size(); ++i) {
      const int cur = frac_of(knobs[i].node);
      if (cur <= spec.min_frac) continue;
      set_frac(knobs[i].node, cur - 1);
      const double e = rms_vs_reference();
      set_frac(knobs[i].node, cur);
      if (e <= best_err) {
        best_err = e;
        best = i;
      }
    }
    if (best < knobs.size()) {
      set_frac(knobs[best].node, frac_of(knobs[best].node) - 1);
      err = best_err;
      progress = true;
    }
  }

  WlOptResult r;
  r.rms_error = err;
  r.knobs = static_cast<int>(knobs.size());
  for (const auto& kb : knobs) {
    const int f = frac_of(kb.node);
    r.frac_bits[kb.name] = f;
    r.bits_saved += spec.max_frac - f;
  }
  clk.reset();
  return r;
}

}  // namespace asicpp::sfg
