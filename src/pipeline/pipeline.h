// Unified compile pipeline.
//
// One entry point turns *any* design description into a live engine
// instance: a `CompileRequest` carries either corpus/service spec text
// (parsed by verify::from_text), an already-elaborated verify::Spec, or a
// caller-owned live scheduler, plus the engine name and the per-engine
// knobs (pass pipeline, host compiler, artifact-store directory, batch
// lanes). `compile()` runs the staged flow
//
//   parse      spec text -> verify::Spec          (spec_text requests)
//   elaborate  Spec -> validated design + probes
//   bind       design -> engine::Instance          (Registry + instantiate
//                                                   / bind for live designs)
//
// and returns a `CompileResult` owning the instance, with per-stage wall
// times, the content-addressed spec key, and whether the engine served its
// compile artifact from the shared ArtifactStore (the jit engine's warm
// path). diff_run, the benches, asicpp-fuzz's corpus replays and every
// simulation-service session go through this one path, so "how a design
// becomes something that cycles" exists exactly once.
//
// Failures are values, not exceptions: `ok == false` with a one-line
// `error`, and (when a DiagEngine is attached) a structured finding:
//
//   PIPE-001  spec text failed to parse / validate
//   PIPE-002  unknown engine name (lists the registered set)
//   PIPE-003  engine failed to instantiate the design
//   PIPE-004  spec outside the engine's domain (skip, not a crash)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "diag/diag.h"
#include "engine/engine.h"
#include "opt/options.h"
#include "verify/gen.h"

namespace asicpp::pipeline {

struct CompileRequest {
  /// Canonical spec text (verify::to_text form). Used when `has_spec` and
  /// `design` are not set.
  std::string spec_text;
  /// Already-elaborated spec; takes precedence over spec_text.
  verify::Spec spec;
  bool has_spec = false;
  /// Caller-owned live scheduler (takes precedence over both spec forms;
  /// in_process engines only). The caller keeps it alive for the
  /// instance's lifetime.
  sched::CycleScheduler* design = nullptr;
  /// Probe list for design-based requests (spec requests derive theirs).
  std::vector<std::string> probes;

  /// Registry name of the engine to bind.
  std::string engine = "compiled";
  opt::PassOptions passes{};
  /// Scratch directory for engines that shell out (cppgen).
  std::string workdir;
  /// Host compiler for engines that compile generated code (cppgen, jit).
  std::string cxx = "c++";
  /// Artifact-store directory override (empty = the shared env chain).
  std::string store_dir;
  /// Lane count for the batched engine.
  unsigned lanes = 4;
  /// Optional sink for PIPE diagnostics.
  diag::DiagEngine* diagnostics = nullptr;
};

struct StageTiming {
  std::string stage;  ///< "parse", "elaborate" or "bind"
  double seconds = 0.0;
};

struct CompileResult {
  bool ok = false;
  std::string error;  ///< one line; the PIPE code is mirrored in `code`
  std::string code;   ///< "" when ok, else "PIPE-001".."PIPE-004"

  std::string engine;
  /// The elaborated spec (spec-based requests; default-constructed for
  /// design-based ones — check spec_based).
  verify::Spec spec;
  bool spec_based = false;
  /// Content key of the request: FNV-1a over the canonical spec text, the
  /// engine name and the engine-relevant options, prefixed with the store
  /// revision. Two sessions with equal keys share compile artifacts.
  std::uint64_t spec_key = 0;
  /// The engine served its compile artifact from the shared ArtifactStore.
  bool store_hit = false;
  /// Seconds the engine spent in an external compiler (0 on a store hit).
  double compile_seconds = 0.0;
  std::vector<StageTiming> stages;
  /// Nets to observe: the spec's probe list, or the request's for
  /// design-based requests.
  std::vector<std::string> probes;
  /// The live simulation; null when !ok.
  std::unique_ptr<engine::Instance> instance;
};

/// Run the pipeline. Never throws for request-level failures (bad text,
/// unknown engine, domain limits, engine crashes) — those come back as
/// ok == false.
CompileResult compile(const CompileRequest& req);

/// The content key `compile` assigns to a spec-based request (exposed so
/// tests and the fuzzer's journal fingerprint can reason about identity).
std::uint64_t request_key(const verify::Spec& spec, const CompileRequest& req);

}  // namespace asicpp::pipeline
