// Content-addressed, stage-keyed artifact store.
//
// Every compile stage that produces something expensive to rebuild — today
// the JIT engine's emitted source and compiled shared object, tomorrow any
// pipeline stage with a cacheable product (the STA backend's timing
// database, synthesized netlists) — shares one on-disk store. An artifact
// is addressed by
//
//   <dir>/<stage>-<hex16(key)>.<ext>
//
// where `stage` names the producing pipeline stage ("jit", ...), `key` is
// an FNV-1a 64-bit content hash of everything that determines the bytes
// (computed by the producer with ckpt::Hasher), and `ext` distinguishes
// multiple products of one stage ("cpp" and "so" share a key). Content
// addressing makes the store safe to share between concurrent processes
// and daemon sessions: two producers racing on the same key write
// identical bytes, and every write is a temp file + atomic rename, so a
// reader never sees a torn artifact and the last rename wins benignly.
//
// The directory resolves through an env chain so one knob relocates every
// consumer (tests, CI, the service daemon):
//
//   explicit dir > $ASICPP_STORE_DIR > $ASICPP_JIT_CACHE (legacy name)
//   > $XDG_CACHE_HOME/asicpp-store > $HOME/.cache/asicpp-store
//   > /tmp/asicpp-store
//
// `kStoreRevision` is the store's layout/keying revision. Producers fold
// it into their keys (a revision bump invalidates old entries instead of
// misloading them) and asicpp-fuzz folds it into its journal fingerprint
// (a campaign journal written against a different store revision refuses
// to resume).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace asicpp::pipeline {

/// Artifact-store layout/keying revision. Participates in every producer's
/// content key and in the fuzz journal fingerprint.
inline constexpr std::uint32_t kStoreRevision = 1;

class ArtifactStore {
 public:
  /// Resolve the directory (empty = env chain) and create it.
  explicit ArtifactStore(const std::string& dir = "");

  const std::string& dir() const { return dir_; }

  /// The env-chain resolution above, without touching the filesystem.
  static std::string resolve_dir(const std::string& explicit_dir);
  /// 16-digit lowercase hex of an FNV-1a key (the filename form).
  static std::string hex16(std::uint64_t key);

  /// <dir>/<stage>-<hex16(key)>.<ext>
  std::string path(const std::string& stage, std::uint64_t key,
                   const std::string& ext) const;
  bool contains(const std::string& stage, std::uint64_t key,
                const std::string& ext) const;
  /// Read the whole artifact; false when absent or unreadable.
  bool fetch(const std::string& stage, std::uint64_t key,
             const std::string& ext, std::string* content) const;
  /// Atomic write: temp file + rename. Concurrent writers of one key race
  /// benignly (identical content, last rename wins).
  bool put(const std::string& stage, std::uint64_t key, const std::string& ext,
           const std::string& content) const;
  /// Atomic write through an external producer (e.g. a compiler): `produce`
  /// receives a temp path to fill; on success the temp is renamed into
  /// place, on failure it is removed. Returns produce's verdict.
  bool put_via(const std::string& stage, std::uint64_t key,
               const std::string& ext,
               const std::function<bool(const std::string& tmp_path)>&
                   produce) const;
  /// Drop a (stale, corrupt) entry; true when a file was removed.
  bool discard(const std::string& stage, std::uint64_t key,
               const std::string& ext) const;

 private:
  std::string dir_;
};

}  // namespace asicpp::pipeline
