#include "pipeline/artifact.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace asicpp::pipeline {

namespace {

void make_dirs(const std::string& path) {
  std::string cur;
  std::size_t i = 0;
  while (i < path.size()) {
    const std::size_t next = path.find('/', i + 1);
    cur = path.substr(0, next == std::string::npos ? path.size() : next);
    if (!cur.empty() && cur != "/") ::mkdir(cur.c_str(), 0755);
    if (next == std::string::npos) break;
    i = next;
  }
}

const char* nonempty_env(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? v : nullptr;
}

}  // namespace

std::string ArtifactStore::resolve_dir(const std::string& explicit_dir) {
  if (!explicit_dir.empty()) return explicit_dir;
  if (const char* e = nonempty_env("ASICPP_STORE_DIR")) return e;
  if (const char* e = nonempty_env("ASICPP_JIT_CACHE")) return e;
  if (const char* x = nonempty_env("XDG_CACHE_HOME"))
    return std::string(x) + "/asicpp-store";
  if (const char* h = nonempty_env("HOME"))
    return std::string(h) + "/.cache/asicpp-store";
  return "/tmp/asicpp-store";
}

std::string ArtifactStore::hex16(std::uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

ArtifactStore::ArtifactStore(const std::string& dir)
    : dir_(resolve_dir(dir)) {
  make_dirs(dir_);
}

std::string ArtifactStore::path(const std::string& stage, std::uint64_t key,
                                const std::string& ext) const {
  return dir_ + "/" + stage + "-" + hex16(key) + "." + ext;
}

bool ArtifactStore::contains(const std::string& stage, std::uint64_t key,
                             const std::string& ext) const {
  struct stat st;
  return ::stat(path(stage, key, ext).c_str(), &st) == 0;
}

bool ArtifactStore::fetch(const std::string& stage, std::uint64_t key,
                          const std::string& ext, std::string* content) const {
  std::ifstream is(path(stage, key, ext), std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  if (!is.good() && !is.eof()) return false;
  *content = ss.str();
  return true;
}

bool ArtifactStore::put(const std::string& stage, std::uint64_t key,
                        const std::string& ext,
                        const std::string& content) const {
  return put_via(stage, key, ext, [&](const std::string& tmp) {
    std::ofstream os(tmp, std::ios::binary);
    if (!os) return false;
    os << content;
    os.flush();
    return os.good();
  });
}

bool ArtifactStore::put_via(
    const std::string& stage, std::uint64_t key, const std::string& ext,
    const std::function<bool(const std::string& tmp_path)>& produce) const {
  const std::string dst = path(stage, key, ext);
  const std::string tmp = dst + ".tmp." + std::to_string(getpid());
  if (!produce(tmp)) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), dst.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool ArtifactStore::discard(const std::string& stage, std::uint64_t key,
                            const std::string& ext) const {
  return std::remove(path(stage, key, ext).c_str()) == 0;
}

}  // namespace asicpp::pipeline
