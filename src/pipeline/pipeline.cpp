#include "pipeline/pipeline.h"

#include <chrono>
#include <stdexcept>

#include "ckpt/snapshot.h"
#include "pipeline/artifact.h"

namespace asicpp::pipeline {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

engine::TraceOptions trace_options(const CompileRequest& req) {
  engine::TraceOptions t;
  t.passes = req.passes;
  t.workdir = req.workdir;
  t.cxx = req.cxx;
  t.store_dir = req.store_dir;
  t.lanes = req.lanes;
  return t;
}

CompileResult failure(const CompileRequest& req, const std::string& code,
                      const std::string& error) {
  CompileResult r;
  r.engine = req.engine;
  r.code = code;
  r.error = error;
  if (req.diagnostics != nullptr) {
    if (code == "PIPE-004")
      req.diagnostics->note(code, "engine '" + req.engine + "'", error);
    else
      req.diagnostics->error(code, "pipeline", error);
  }
  return r;
}

}  // namespace

std::uint64_t request_key(const verify::Spec& spec,
                          const CompileRequest& req) {
  ckpt::Hasher h;
  h.str("asicpp-pipeline").u32(kStoreRevision);
  h.str(verify::to_text(spec));
  h.str(req.engine);
  h.str(req.cxx);
  h.u32(req.lanes);
  const opt::PassOptions& p = req.passes;
  h.u8(p.lower).u8(p.canonicalize).u8(p.fold).u8(p.identities).u8(p.cse).u8(
      p.dce);
  return h.digest();
}

CompileResult compile(const CompileRequest& req) {
  const engine::Registry& reg = engine::Registry::global();
  const engine::Engine* eng = reg.find(req.engine);
  if (eng == nullptr)
    return failure(req, "PIPE-002",
                   "unknown engine '" + req.engine +
                       "' (registered: " + reg.names_csv() + ")");

  CompileResult r;
  r.engine = req.engine;
  const engine::TraceOptions topts = trace_options(req);

  // --- design-based request: bind to the caller's live scheduler ----------
  if (req.design != nullptr) {
    if (!eng->caps().in_process)
      return failure(req, "PIPE-004",
                     "engine '" + req.engine +
                         "' cannot bind to a live design (not in_process)");
    const auto t0 = std::chrono::steady_clock::now();
    try {
      r.instance = eng->bind(*req.design, topts);
    } catch (const std::exception& ex) {
      return failure(req, "PIPE-003",
                     "engine '" + req.engine + "' failed to bind: " +
                         std::string(ex.what()));
    }
    if (r.instance == nullptr)
      return failure(req, "PIPE-004",
                     "engine '" + req.engine +
                         "' cannot bind to a live design (not in_process)");
    r.stages.push_back({"bind", seconds_since(t0)});
    r.probes = req.probes;
    r.store_hit = r.instance->from_cache();
    r.compile_seconds = r.instance->compile_seconds();
    r.ok = true;
    return r;
  }

  // --- spec-based request: parse -> elaborate -> bind ----------------------
  r.spec_based = true;
  if (req.has_spec) {
    r.spec = req.spec;
    const std::string err = verify::validate(r.spec);
    if (!err.empty())
      return failure(req, "PIPE-001", "invalid spec: " + err);
  } else {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      r.spec = verify::from_text(req.spec_text);
    } catch (const std::exception& ex) {
      return failure(req, "PIPE-001", ex.what());
    }
    r.stages.push_back({"parse", seconds_since(t0)});
  }

  {
    const auto t0 = std::chrono::steady_clock::now();
    r.probes = r.spec.probes();
    r.spec_key = request_key(r.spec, req);
    const std::string limit = eng->domain_limit(r.spec);
    if (!limit.empty()) return failure(req, "PIPE-004", limit);
    r.stages.push_back({"elaborate", seconds_since(t0)});
  }

  {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      r.instance = eng->instantiate(r.spec, topts);
    } catch (const std::exception& ex) {
      return failure(req, "PIPE-003",
                     "engine '" + req.engine + "' failed to instantiate: " +
                         std::string(ex.what()));
    }
    if (r.instance == nullptr)
      return failure(req, "PIPE-003",
                     "engine '" + req.engine + "' has no spec instantiation");
    r.stages.push_back({"bind", seconds_since(t0)});
  }

  r.store_hit = r.instance->from_cache();
  r.compile_seconds = r.instance->compile_seconds();
  r.ok = true;
  return r;
}

}  // namespace asicpp::pipeline
