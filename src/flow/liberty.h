// Liberty-subset cell-library reader for the open ASIC flow backend.
//
// The netlist backend hands designs to real open-source tooling (Yosys,
// OpenSTA, LibreLane); those tools speak Liberty, so the timing/area
// characterization lives in a Liberty file rather than in C++ tables.
// This module reads the subset the generic_cmos linear delay model
// needs — cells with area, pin direction/capacitance/function, ff()
// groups, and per-arc `intrinsic_{rise,fall}` + `{rise,fall}_resistance`
// attributes — and lowers it onto `netlist::DelayModel` for the STA.
//
// The reader never throws: findings accumulate on a diag::DiagEngine
// under the stable codes
//
//   LIB-001  truncated source (EOF inside a group or attribute)
//   LIB-002  duplicate cell definition (first definition wins)
//   LIB-003  malformed attribute (missing value, non-numeric number)
//   LIB-004  GateType with no usable library cell (missing cell or pin)
//
// and the partial library parsed so far is still returned, so one bad
// cell does not take down a whole characterization run.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "diag/diag.h"
#include "netlist/netlist.h"
#include "netlist/timing.h"

namespace asicpp::flow {

/// One timing arc of an output pin: `related_pin` -> this pin, linear
/// delay = intrinsic + resistance * load. Rise/fall are kept separate in
/// the file; the lowered model uses the worst of the two.
struct LibertyArc {
  std::string related_pin;
  double intrinsic_rise = 0.0;
  double intrinsic_fall = 0.0;
  double rise_resistance = 0.0;
  double fall_resistance = 0.0;

  double worst_intrinsic() const {
    return intrinsic_rise > intrinsic_fall ? intrinsic_rise : intrinsic_fall;
  }
  double worst_resistance() const {
    return rise_resistance > fall_resistance ? rise_resistance
                                             : fall_resistance;
  }
};

struct LibertyPin {
  std::string name;
  bool is_output = false;
  bool is_clock = false;
  double capacitance = 0.0;
  std::string function;           ///< boolean function text, output pins
  std::vector<LibertyArc> arcs;   ///< timing() groups, output pins

  /// Worst-case linear delay over all arcs (0 when the pin has none,
  /// e.g. the constant driver).
  double worst_intrinsic() const;
  double worst_resistance() const;
};

struct LibertyCell {
  std::string name;
  double area = 0.0;
  bool is_ff = false;
  std::string clocked_on;   ///< ff() clocked_on pin name
  std::string next_state;   ///< ff() next_state pin name
  std::vector<LibertyPin> pins;  ///< file order

  const LibertyPin* find_pin(std::string_view pin_name) const;
  /// First output pin, or nullptr.
  const LibertyPin* output_pin() const;
};

struct LibertyLibrary {
  std::string name;
  std::string time_unit;          ///< e.g. "1ns"
  std::string capacitive_load_unit;  ///< e.g. "1 pf"
  double default_output_load = 0.0;
  std::vector<LibertyCell> cells;  ///< file order, duplicates dropped

  const LibertyCell* find_cell(std::string_view cell_name) const;
};

/// Parse `text`. Never throws; reports LIB-001..003 on `de` and returns
/// whatever parsed cleanly.
LibertyLibrary parse_liberty(std::string_view text, diag::DiagEngine& de);

/// The committed asicpp_sc_hd library source, embedded at build time from
/// src/flow/asicpp_sc_hd.lib.
const std::string& default_library_text();

/// The parsed default library (parsed once; the committed file is
/// guaranteed clean by tests).
const LibertyLibrary& default_library();

/// How one GateType maps onto a library cell: the cell name, the library
/// pin carrying each netlist fanin (fanin order), and the output pin.
/// `cell == nullptr` for kInput, which is a port, not a cell.
struct CellBinding {
  const char* cell;
  const char* pins[3];
  const char* out;
};
const CellBinding& cell_binding(netlist::GateType t);

/// Cell for a DFF with the given power-up value (dfxtp_1 / dfstp_1).
const char* dff_cell(bool init);

/// Lower `lib` onto the STA's per-GateType model. A GateType whose bound
/// cell (or pin) is missing gets LIB-004 on `de` and falls back to the
/// unit model's characterization for that type, so timing stays sane.
netlist::DelayModel delay_model(const LibertyLibrary& lib,
                                diag::DiagEngine& de);

/// Liberty area sum over `nl`, init-aware for DFFs (dfstp_1 vs dfxtp_1 —
/// the one per-gate distinction the per-GateType DelayModel cannot see).
/// Missing cells report LIB-004 on `de` (when given) and count 0 area.
double liberty_area(const netlist::Netlist& nl, const LibertyLibrary& lib,
                    diag::DiagEngine* de = nullptr);

}  // namespace asicpp::flow
