#include "flow/liberty.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace asicpp::flow {
namespace {

// ---------------------------------------------------------------------------
// Lexer. Liberty is a token soup of words, numbers, strings, and the
// punctuation ( ) { } : ; , — comments are /* */ and line //.

struct Token {
  enum Kind { kWord, kString, kPunct, kEof };
  Kind kind = kEof;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Token next() {
    skip_space();
    Token t;
    t.line = line_;
    if (pos_ >= src_.size()) return t;  // kEof
    const char c = src_[pos_];
    if (c == '"') {
      t.kind = Token::kString;
      ++pos_;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\n') ++line_;
        t.text.push_back(src_[pos_++]);
      }
      if (pos_ < src_.size()) ++pos_;  // closing quote
      else truncated_string_ = true;
      return t;
    }
    if (c == '(' || c == ')' || c == '{' || c == '}' || c == ':' ||
        c == ';' || c == ',') {
      t.kind = Token::kPunct;
      t.text.push_back(c);
      ++pos_;
      return t;
    }
    t.kind = Token::kWord;
    while (pos_ < src_.size()) {
      const char w = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(w)) || w == '(' ||
          w == ')' || w == '{' || w == '}' || w == ':' || w == ';' ||
          w == ',' || w == '"')
        break;
      t.text.push_back(w);
      ++pos_;
    }
    return t;
  }

  bool truncated_string() const { return truncated_string_; }

 private:
  void skip_space() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = pos_ + 2 <= src_.size() ? pos_ + 2 : src_.size();
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '\\' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '\n') {
        pos_ += 2;  // line continuation
        ++line_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool truncated_string_ = false;
};

// ---------------------------------------------------------------------------
// Generic group tree:  name ( params ) { attributes and child groups }

struct AstGroup {
  std::string name;
  std::vector<std::string> params;
  std::vector<std::pair<std::string, std::string>> attrs;  // name -> value
  std::vector<AstGroup> children;
  int line = 0;
};

class Parser {
 public:
  Parser(std::string_view src, diag::DiagEngine& de) : lex_(src), de_(&de) {
    advance();
  }

  /// Top level: a sequence of groups; Liberty has exactly one `library`.
  std::vector<AstGroup> parse_top() {
    std::vector<AstGroup> groups;
    while (tok_.kind != Token::kEof) {
      if (tok_.kind != Token::kWord) {
        malformed("expected a group name, got '" + tok_.text + "'");
        advance();
        continue;
      }
      AstGroup g;
      g.name = tok_.text;
      g.line = tok_.line;
      advance();
      if (parse_group_after_name(g)) groups.push_back(std::move(g));
    }
    if (lex_.truncated_string())
      de_->error("LIB-001", "liberty", "unterminated string at end of file");
    return groups;
  }

 private:
  void advance() { tok_ = lex_.next(); }

  bool at_punct(char c) const {
    return tok_.kind == Token::kPunct && tok_.text[0] == c;
  }

  void malformed(const std::string& msg) {
    de_->error("LIB-003", "liberty",
               "line " + std::to_string(tok_.line) + ": " + msg);
  }

  bool truncated(const std::string& what) {
    if (tok_.kind != Token::kEof) return false;
    de_->error("LIB-001", "liberty", "file ends inside " + what);
    return true;
  }

  /// Parses "( params ) { body }" or "( params ) ;" with g.name/g.line
  /// already set and tok_ at the '('. Returns false when the construct is
  /// garbage (or truncated) and the caller should skip it.
  bool parse_group_after_name(AstGroup& g) {
    if (!at_punct('(')) {
      malformed("expected '(' after '" + g.name + "'");
      return false;
    }
    advance();
    while (!at_punct(')')) {
      if (truncated("the parameter list of '" + g.name + "'")) return false;
      if (tok_.kind == Token::kWord || tok_.kind == Token::kString)
        g.params.push_back(tok_.text);
      advance();  // words, strings, and commas
    }
    advance();  // ')'
    if (at_punct(';')) {  // parameterized attribute: cap_load_unit (1, pf);
      advance();
      return true;
    }
    if (!at_punct('{')) {
      malformed("expected '{' or ';' after '" + g.name + "(...)'");
      return false;
    }
    advance();
    return parse_body(g);
  }

  /// Body of a group whose '{' was already consumed: attributes
  /// ("name : value ;") and child groups, until the matching '}'.
  bool parse_body(AstGroup& g) {
    while (!at_punct('}')) {
      if (truncated("group '" + g.name + "'")) return false;
      if (tok_.kind != Token::kWord) {
        malformed("expected an attribute or group inside '" + g.name +
                  "', got '" + tok_.text + "'");
        advance();
        continue;
      }
      const std::string word = tok_.text;
      const int line = tok_.line;
      advance();
      if (at_punct(':')) {
        advance();
        std::string value;
        while (!at_punct(';') && !at_punct('}')) {
          if (truncated("attribute '" + word + "'")) return false;
          if (!value.empty()) value += ' ';
          value += tok_.text;
          advance();
        }
        if (value.empty())
          malformed("attribute '" + word + "' has no value");
        else
          g.attrs.emplace_back(word, value);
        if (at_punct(';')) advance();
      } else if (at_punct('(')) {
        AstGroup child;
        child.name = word;
        child.line = line;
        if (!parse_group_after_name(child)) return false;
        g.children.push_back(std::move(child));
      } else {
        malformed("expected ':' or '(' after '" + word + "'");
      }
    }
    advance();  // '}'
    return true;
  }

  Lexer lex_;
  diag::DiagEngine* de_;
  Token tok_;
};

// ---------------------------------------------------------------------------
// Interpretation: AST -> LibertyLibrary.

double parse_number(const AstGroup& g, const std::string& attr,
                    const std::string& value, diag::DiagEngine& de,
                    bool* ok = nullptr) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || (end != nullptr && *end != '\0')) {
    de.error("LIB-003", "liberty",
             "line " + std::to_string(g.line) + ": attribute '" + attr +
                 "' in '" + g.name + "' is not a number: '" + value + "'");
    if (ok != nullptr) *ok = false;
    return 0.0;
  }
  if (ok != nullptr) *ok = true;
  return v;
}

bool parse_bool(const std::string& value) {
  return value == "true" || value == "TRUE" || value == "1";
}

LibertyArc interpret_arc(const AstGroup& g, diag::DiagEngine& de) {
  LibertyArc arc;
  for (const auto& [name, value] : g.attrs) {
    if (name == "related_pin") arc.related_pin = value;
    else if (name == "intrinsic_rise") arc.intrinsic_rise = parse_number(g, name, value, de);
    else if (name == "intrinsic_fall") arc.intrinsic_fall = parse_number(g, name, value, de);
    else if (name == "rise_resistance") arc.rise_resistance = parse_number(g, name, value, de);
    else if (name == "fall_resistance") arc.fall_resistance = parse_number(g, name, value, de);
    // timing_type etc.: accepted, unused by the linear model.
  }
  return arc;
}

LibertyPin interpret_pin(const AstGroup& g, diag::DiagEngine& de) {
  LibertyPin pin;
  if (!g.params.empty()) pin.name = g.params[0];
  for (const auto& [name, value] : g.attrs) {
    if (name == "direction") pin.is_output = (value == "output");
    else if (name == "clock") pin.is_clock = parse_bool(value);
    else if (name == "capacitance") pin.capacitance = parse_number(g, name, value, de);
    else if (name == "function") pin.function = value;
  }
  for (const AstGroup& child : g.children)
    if (child.name == "timing") pin.arcs.push_back(interpret_arc(child, de));
  return pin;
}

LibertyCell interpret_cell(const AstGroup& g, diag::DiagEngine& de) {
  LibertyCell cell;
  if (g.params.empty())
    de.error("LIB-003", "liberty",
             "line " + std::to_string(g.line) + ": cell without a name");
  else
    cell.name = g.params[0];
  for (const auto& [name, value] : g.attrs)
    if (name == "area") cell.area = parse_number(g, name, value, de);
  for (const AstGroup& child : g.children) {
    if (child.name == "pin") {
      cell.pins.push_back(interpret_pin(child, de));
    } else if (child.name == "ff") {
      cell.is_ff = true;
      for (const auto& [name, value] : child.attrs) {
        if (name == "clocked_on") cell.clocked_on = value;
        else if (name == "next_state") cell.next_state = value;
      }
    }
  }
  return cell;
}

}  // namespace

double LibertyPin::worst_intrinsic() const {
  double w = 0.0;
  for (const LibertyArc& a : arcs)
    if (a.worst_intrinsic() > w) w = a.worst_intrinsic();
  return w;
}

double LibertyPin::worst_resistance() const {
  double w = 0.0;
  for (const LibertyArc& a : arcs)
    if (a.worst_resistance() > w) w = a.worst_resistance();
  return w;
}

const LibertyPin* LibertyCell::find_pin(std::string_view pin_name) const {
  for (const LibertyPin& p : pins)
    if (p.name == pin_name) return &p;
  return nullptr;
}

const LibertyPin* LibertyCell::output_pin() const {
  for (const LibertyPin& p : pins)
    if (p.is_output) return &p;
  return nullptr;
}

const LibertyCell* LibertyLibrary::find_cell(std::string_view cell_name) const {
  for (const LibertyCell& c : cells)
    if (c.name == cell_name) return &c;
  return nullptr;
}

LibertyLibrary parse_liberty(std::string_view text, diag::DiagEngine& de) {
  Parser parser(text, de);
  const std::vector<AstGroup> top = parser.parse_top();

  LibertyLibrary lib;
  const AstGroup* library = nullptr;
  for (const AstGroup& g : top)
    if (g.name == "library") {
      library = &g;
      break;
    }
  if (library == nullptr) {
    if (de.empty())
      de.error("LIB-001", "liberty", "no library group in the source");
    return lib;
  }
  if (!library->params.empty()) lib.name = library->params[0];
  for (const auto& [name, value] : library->attrs) {
    if (name == "time_unit") lib.time_unit = value;
    else if (name == "default_output_load")
      lib.default_output_load = parse_number(*library, name, value, de);
  }
  for (const AstGroup& child : library->children) {
    if (child.name == "capacitive_load_unit") {
      std::string u;
      for (const std::string& p : child.params) {
        if (!u.empty()) u += ' ';
        u += p;
      }
      lib.capacitive_load_unit = u;
    } else if (child.name == "cell") {
      LibertyCell cell = interpret_cell(child, de);
      if (lib.find_cell(cell.name) != nullptr) {
        de.error("LIB-002", "liberty",
                 "line " + std::to_string(child.line) + ": duplicate cell '" +
                     cell.name + "' (first definition wins)");
        continue;
      }
      lib.cells.push_back(std::move(cell));
    }
  }
  return lib;
}

const LibertyLibrary& default_library() {
  static const LibertyLibrary lib = [] {
    diag::DiagEngine de;
    LibertyLibrary l = parse_liberty(default_library_text(), de);
    // The committed library is kept clean by tests; a parse error here
    // means the build embedded a broken file.
    de.throw_if_errors();
    return l;
  }();
  return lib;
}

const CellBinding& cell_binding(netlist::GateType t) {
  using netlist::GateType;
  static const CellBinding kBindings[netlist::kNumGateTypes] = {
      /* kInput  */ {nullptr, {nullptr, nullptr, nullptr}, nullptr},
      /* kConst0 */ {"asicpp_sc_hd__conb_1", {nullptr, nullptr, nullptr}, "LO"},
      /* kConst1 */ {"asicpp_sc_hd__conb_1", {nullptr, nullptr, nullptr}, "HI"},
      /* kBuf    */ {"asicpp_sc_hd__buf_1", {"A", nullptr, nullptr}, "X"},
      /* kNot    */ {"asicpp_sc_hd__inv_1", {"A", nullptr, nullptr}, "Y"},
      /* kAnd    */ {"asicpp_sc_hd__and2_1", {"A", "B", nullptr}, "X"},
      /* kOr     */ {"asicpp_sc_hd__or2_1", {"A", "B", nullptr}, "X"},
      /* kNand   */ {"asicpp_sc_hd__nand2_1", {"A", "B", nullptr}, "Y"},
      /* kNor    */ {"asicpp_sc_hd__nor2_1", {"A", "B", nullptr}, "Y"},
      /* kXor    */ {"asicpp_sc_hd__xor2_1", {"A", "B", nullptr}, "X"},
      /* kXnor   */ {"asicpp_sc_hd__xnor2_1", {"A", "B", nullptr}, "Y"},
      /* kMux: in0 = select, in1 = then, in2 = else */
      {"asicpp_sc_hd__mux2_1", {"S", "A1", "A0"}, "X"},
      /* kDff    */ {"asicpp_sc_hd__dfxtp_1", {"D", nullptr, nullptr}, "Q"},
  };
  return kBindings[static_cast<int>(t)];
}

const char* dff_cell(bool init) {
  return init ? "asicpp_sc_hd__dfstp_1" : "asicpp_sc_hd__dfxtp_1";
}

netlist::DelayModel delay_model(const LibertyLibrary& lib,
                                diag::DiagEngine& de) {
  // Start from the unit model so a GateType with no library cell keeps a
  // sane (if approximate) characterization instead of a zero-delay hole.
  netlist::DelayModel m = netlist::DelayModel::unit();
  m.output_load = lib.default_output_load;
  for (int i = 0; i < netlist::kNumGateTypes; ++i) {
    const auto t = static_cast<netlist::GateType>(i);
    const CellBinding& b = cell_binding(t);
    if (b.cell == nullptr) continue;  // kInput: a port, not a cell
    const LibertyCell* cell = lib.find_cell(b.cell);
    if (cell == nullptr) {
      de.error("LIB-004", "liberty",
               std::string("netlist gate type '") + netlist::gate_name(t) +
                   "' needs cell '" + b.cell + "', which library '" +
                   lib.name + "' does not define");
      continue;
    }
    netlist::CellTiming& ct = m.of(t);
    ct.cell = cell->name;
    ct.area = cell->area;
    bool pins_ok = true;
    for (int p = 0; p < 3; ++p) {
      if (b.pins[p] == nullptr) {
        ct.input_cap[p] = 0.0;
        continue;
      }
      const LibertyPin* pin = cell->find_pin(b.pins[p]);
      if (pin == nullptr) {
        de.error("LIB-004", "liberty",
                 "cell '" + cell->name + "' has no pin '" +
                     std::string(b.pins[p]) + "' (needed by gate type '" +
                     netlist::gate_name(t) + "')");
        pins_ok = false;
        continue;
      }
      ct.input_cap[p] = pin->capacitance;
    }
    const LibertyPin* out =
        b.out != nullptr ? cell->find_pin(b.out) : cell->output_pin();
    if (out == nullptr) {
      de.error("LIB-004", "liberty",
               "cell '" + cell->name + "' has no output pin '" +
                   std::string(b.out != nullptr ? b.out : "?") + "'");
      pins_ok = false;
    }
    if (pins_ok && out != nullptr) {
      ct.intrinsic = out->worst_intrinsic();
      ct.load_slope = out->worst_resistance();
    }
  }
  return m;
}

double liberty_area(const netlist::Netlist& nl, const LibertyLibrary& lib,
                    diag::DiagEngine* de) {
  double area = 0.0;
  bool reported[netlist::kNumGateTypes + 1] = {};
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
    const netlist::Gate& g = nl.gate(id);
    const char* cell_name = g.type == netlist::GateType::kDff
                                ? dff_cell(g.init)
                                : cell_binding(g.type).cell;
    if (cell_name == nullptr) continue;  // primary input
    const LibertyCell* cell = lib.find_cell(cell_name);
    if (cell == nullptr) {
      // Report once per gate type, not once per gate.
      const int slot = g.type == netlist::GateType::kDff && g.init
                           ? netlist::kNumGateTypes
                           : static_cast<int>(g.type);
      if (de != nullptr && !reported[slot]) {
        reported[slot] = true;
        de->error("LIB-004", "liberty",
                  std::string("netlist references cell '") + cell_name +
                      "', which library '" + lib.name + "' does not define");
      }
      continue;
    }
    area += cell->area;
  }
  return area;
}

}  // namespace asicpp::flow
