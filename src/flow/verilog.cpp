#include "flow/verilog.h"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <utility>

#include "flow/liberty.h"

namespace asicpp::flow {
namespace {

using netlist::Gate;
using netlist::GateType;
using netlist::Netlist;

/// Verilog identifier, escaped when it is not a plain word. The escaped
/// form includes the trailing space the LRM requires, so callers can
/// concatenate it directly with the following token.
std::string vname(const std::string& name) {
  bool plain = !name.empty() &&
               (std::isalpha(static_cast<unsigned char>(name[0])) != 0 ||
                name[0] == '_');
  if (plain) {
    for (const char c : name) {
      if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
          c != '$') {
        plain = false;
        break;
      }
    }
  }
  return plain ? name : "\\" + name + " ";
}

/// Reverse map gate id -> primary-input port name.
std::vector<std::string> input_names_by_id(const Netlist& nl) {
  std::vector<std::string> names(static_cast<std::size_t>(nl.num_gates()));
  for (const auto& [name, id] : nl.inputs())
    names[static_cast<std::size_t>(id)] = name;
  return names;
}

}  // namespace

std::vector<std::int32_t> canonical_order(const Netlist& nl) {
  const auto n = static_cast<std::size_t>(nl.num_gates());
  std::vector<signed char> state(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::int32_t> order;
  order.reserve(n);

  // Iterative post-order DFS; gray marking cuts the cycles that run
  // through DFF D-inputs.
  std::vector<std::pair<std::int32_t, int>> stack;
  const auto visit = [&](std::int32_t root) {
    if (root < 0 || state[static_cast<std::size_t>(root)] != 0) return;
    state[static_cast<std::size_t>(root)] = 1;
    stack.clear();
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      const std::int32_t id = stack.back().first;
      const int i = stack.back().second;
      const Gate& g = nl.gate(id);
      if (i < netlist::gate_arity(g.type)) {
        ++stack.back().second;
        const std::int32_t f = g.in[i];
        if (f >= 0 && state[static_cast<std::size_t>(f)] == 0) {
          state[static_cast<std::size_t>(f)] = 1;
          stack.emplace_back(f, 0);
        }
      } else {
        state[static_cast<std::size_t>(id)] = 2;
        order.push_back(id);
        stack.pop_back();
      }
    }
  };

  // Anchor on names: outputs first (std::map iterates name-sorted), then
  // inputs, then whatever is left (dead logic) in insertion order — the
  // only place ids leak into the order, and only for unreachable gates.
  for (const auto& [name, id] : nl.outputs()) {
    (void)name;
    visit(id);
  }
  for (const auto& [name, id] : nl.inputs()) {
    (void)name;
    visit(id);
  }
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) visit(id);
  return order;
}

std::vector<std::string> input_ports(const Netlist& nl) {
  std::vector<std::string> names;
  names.reserve(nl.inputs().size());
  for (const auto& [name, id] : nl.inputs()) {
    (void)id;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> output_ports(const Netlist& nl) {
  std::vector<std::string> names;
  names.reserve(nl.outputs().size());
  for (const auto& [name, id] : nl.outputs()) {
    (void)id;
    names.push_back(name);
  }
  return names;
}

std::string emit_verilog(const Netlist& nl, const VerilogOptions& opt) {
  const std::vector<std::int32_t> order = canonical_order(nl);
  const std::vector<std::string> in_name = input_names_by_id(nl);
  const bool has_dffs = nl.num_dff() > 0;

  // Canonical position -> the wire/instance index of every gate.
  std::vector<std::int32_t> pos(static_cast<std::size_t>(nl.num_gates()), -1);
  for (std::size_t k = 0; k < order.size(); ++k)
    pos[static_cast<std::size_t>(order[k])] = static_cast<std::int32_t>(k);

  const auto net_ref = [&](std::int32_t id) -> std::string {
    if (id < 0) return "1'b0";  // unconnected placeholder fanin
    if (nl.gate(id).type == GateType::kInput)
      return vname(in_name[static_cast<std::size_t>(id)]);
    return "_n" + std::to_string(pos[static_cast<std::size_t>(id)]);
  };

  std::ostringstream os;
  os << "// " << opt.module_name
     << " — structural netlist over asicpp_sc_hd cells.\n"
     << "// Emitted by asicpp-flow; canonical order, byte-stable across "
        "gate insertion orders.\n";
  os << "module " << opt.module_name << " (";
  bool first = true;
  const auto port = [&](const std::string& name) {
    os << (first ? "\n    " : ",\n    ") << vname(name);
    first = false;
  };
  if (has_dffs) port(opt.clock);
  for (const auto& name : input_ports(nl)) port(name);
  for (const auto& name : output_ports(nl)) port(name);
  os << "\n  );\n";

  if (has_dffs) os << "  input " << vname(opt.clock) << ";\n";
  for (const auto& name : input_ports(nl))
    os << "  input " << vname(name) << ";\n";
  for (const auto& name : output_ports(nl))
    os << "  output " << vname(name) << ";\n";

  // One wire and one instance per non-input gate, canonical order.
  for (const std::int32_t id : order)
    if (nl.gate(id).type != GateType::kInput)
      os << "  wire _n" << pos[static_cast<std::size_t>(id)] << ";\n";

  for (const std::int32_t id : order) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kInput) continue;
    const CellBinding& b = cell_binding(g.type);
    const char* cell =
        g.type == GateType::kDff ? dff_cell(g.init) : b.cell;
    os << "  " << cell << " _g" << pos[static_cast<std::size_t>(id)] << " (";
    bool first_pin = true;
    const auto conn = [&](const char* pin, const std::string& sig) {
      os << (first_pin ? "" : ", ") << "." << pin << "(" << sig << ")";
      first_pin = false;
    };
    if (g.type == GateType::kDff) conn("CLK", vname(opt.clock));
    for (int i = 0; i < netlist::gate_arity(g.type); ++i)
      conn(b.pins[i], net_ref(g.in[i]));
    conn(b.out, "_n" + std::to_string(pos[static_cast<std::size_t>(id)]));
    os << ");\n";
  }

  for (const auto& [name, id] : nl.outputs())
    os << "  assign " << vname(name) << " = " << net_ref(id) << ";\n";

  os << "endmodule\n";
  return os.str();
}

std::string cells_sim_verilog() {
  return R"(// asicpp_sc_hd — behavioral simulation models.
// For iverilog differential runs and Yosys read_verilog of emitted
// designs; timing-free (the Liberty file carries the delays).
module asicpp_sc_hd__buf_1 (A, X);
  input A;
  output X;
  assign X = A;
endmodule

module asicpp_sc_hd__inv_1 (A, Y);
  input A;
  output Y;
  assign Y = ~A;
endmodule

module asicpp_sc_hd__and2_1 (A, B, X);
  input A, B;
  output X;
  assign X = A & B;
endmodule

module asicpp_sc_hd__or2_1 (A, B, X);
  input A, B;
  output X;
  assign X = A | B;
endmodule

module asicpp_sc_hd__nand2_1 (A, B, Y);
  input A, B;
  output Y;
  assign Y = ~(A & B);
endmodule

module asicpp_sc_hd__nor2_1 (A, B, Y);
  input A, B;
  output Y;
  assign Y = ~(A | B);
endmodule

module asicpp_sc_hd__xor2_1 (A, B, X);
  input A, B;
  output X;
  assign X = A ^ B;
endmodule

module asicpp_sc_hd__xnor2_1 (A, B, Y);
  input A, B;
  output Y;
  assign Y = ~(A ^ B);
endmodule

module asicpp_sc_hd__mux2_1 (S, A0, A1, X);
  input S, A0, A1;
  output X;
  assign X = S ? A1 : A0;
endmodule

module asicpp_sc_hd__dfxtp_1 (CLK, D, Q);
  input CLK, D;
  output reg Q;
  initial Q = 1'b0;
  always @(posedge CLK) Q <= D;
endmodule

module asicpp_sc_hd__dfstp_1 (CLK, D, Q);
  input CLK, D;
  output reg Q;
  initial Q = 1'b1;
  always @(posedge CLK) Q <= D;
endmodule

module asicpp_sc_hd__conb_1 (HI, LO);
  output HI, LO;
  assign HI = 1'b1;
  assign LO = 1'b0;
endmodule
)";
}

std::string yosys_script(const VerilogOptions& opt,
                         const std::string& lib_file) {
  std::ostringstream os;
  os << "# Resynthesize " << opt.module_name
     << " through Yosys onto asicpp_sc_hd.\n"
     << "# Usage: yosys " << opt.module_name << ".ys\n"
     << "read_liberty -lib " << lib_file << "\n"
     << "read_verilog " << opt.module_name << ".v\n"
     << "hierarchy -check -top " << opt.module_name << "\n"
     << "flatten\n"
     << "synth -top " << opt.module_name << "\n"
     << "dfflibmap -liberty " << lib_file << "\n"
     << "abc -liberty " << lib_file << "\n"
     << "clean\n"
     << "stat -liberty " << lib_file << "\n"
     << "write_verilog -noattr " << opt.module_name << "_synth.v\n";
  return os.str();
}

std::string flow_config_json(const VerilogOptions& opt,
                             double clock_period_ns) {
  char period[32];
  std::snprintf(period, sizeof period, "%g", clock_period_ns);
  std::ostringstream os;
  os << "{\n"
     << "    \"DESIGN_NAME\": \"" << opt.module_name << "\",\n"
     << "    \"VERILOG_FILES\": \"dir::" << opt.module_name << ".v\",\n"
     << "    \"CLOCK_PORT\": \"" << opt.clock << "\",\n"
     << "    \"CLOCK_PERIOD\": " << period << "\n"
     << "}\n";
  return os.str();
}

std::string emit_testbench(const Netlist& nl, const VerilogOptions& opt,
                           const std::vector<std::vector<int>>& stimuli) {
  const std::vector<std::string> ins = input_ports(nl);
  const std::vector<std::string> outs = output_ports(nl);
  const bool has_dffs = nl.num_dff() > 0;

  std::ostringstream os;
  os << "`timescale 1ns/1ps\n"
     << "// Replay testbench for " << opt.module_name
     << ": one \"cycle <n>: <bits>\" line per cycle.\n"
     << "module tb;\n";
  if (has_dffs) os << "  reg " << vname(opt.clock) << "= 1'b0;\n";
  for (const auto& name : ins) os << "  reg " << vname(name) << "= 1'b0;\n";
  for (const auto& name : outs) os << "  wire " << vname(name) << ";\n";

  os << "  " << opt.module_name << " dut (";
  bool first = true;
  const auto conn = [&](const std::string& formal, const std::string& actual) {
    os << (first ? "" : ", ") << ".";
    // A named connection to an escaped formal needs the escaped form.
    os << vname(formal) << "(" << actual << ")";
    first = false;
  };
  if (has_dffs) conn(opt.clock, vname(opt.clock));
  for (const auto& name : ins) conn(name, vname(name));
  for (const auto& name : outs) conn(name, vname(name));
  os << ");\n";

  os << "  initial begin\n";
  for (std::size_t c = 0; c < stimuli.size(); ++c) {
    os << "    // cycle " << c << "\n";
    for (std::size_t k = 0; k < ins.size() && k < stimuli[c].size(); ++k)
      os << "    " << vname(ins[k]) << "= "
         << (stimuli[c][k] != 0 ? "1'b1" : "1'b0") << ";\n";
    os << "    #4;\n";
    os << "    $display(\"cycle %0d: ";
    for (std::size_t k = 0; k < outs.size(); ++k) os << "%b";
    os << "\", " << c;
    for (const auto& name : outs) os << ", " << vname(name);
    os << ");\n";
    if (has_dffs) {
      os << "    #1;\n    " << vname(opt.clock) << "= 1'b1;\n"
         << "    #5;\n    " << vname(opt.clock) << "= 1'b0;\n";
    } else {
      os << "    #6;\n";
    }
  }
  os << "    $finish;\n  end\nendmodule\n";
  return os.str();
}

}  // namespace asicpp::flow
