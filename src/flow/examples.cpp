#include "flow/examples.h"

#include <stdexcept>

#include "dect/hcor.h"
#include "dect/vliw.h"
#include "fixpt/fixed.h"
#include "sched/cyclesched.h"
#include "sched/untimed.h"
#include "sfg/clk.h"
#include "sfg/sig.h"
#include "synth/dpsynth.h"
#include "synth/system.h"

namespace asicpp::flow {
namespace {

using fixpt::Fixed;

/// The paper's Fig 6 three-component circular system (same recipe as the
/// JIT smoke tool): two timed SFG components plus an untimed increment,
/// closed into a feedback ring.
Example build_fig6() {
  const fixpt::Format kF{16, 7, true, fixpt::Quant::kRound,
                         fixpt::Overflow::kSaturate};
  sfg::Clk clk;
  sched::CycleScheduler sched(clk);
  sfg::Reg state("state", clk, kF, 1.0);
  sfg::Sig in1 = sfg::Sig::input("in1", kF);
  sfg::Sfg s1("s1");
  sched::SfgComponent c1("comp1", s1);
  sfg::Sig in2 = sfg::Sig::input("in2", kF);
  sfg::Sfg s2("s2");
  sched::SfgComponent c2("comp2", s2);
  sched::UntimedComponent c3("comp3", [](const std::vector<Fixed>& in) {
    return std::vector<Fixed>{in[0] + Fixed(1.0)};
  });
  s1.in(in1).out("out1", state.sig()).assign(state, (in1 * 0.5).cast(kF));
  s2.in(in2).out("out2", in2 * 2.0);
  c1.bind_output("out1", sched.net("n12"));
  c2.bind_input(in2, sched.net("n12"));
  c2.bind_output("out2", sched.net("n23"));
  c3.bind_input(sched.net("n23"));
  c3.bind_output(sched.net("n31"));
  c1.bind_input(in1, sched.net("n31"));
  sched.add(c1);
  sched.add(c2);
  sched.add(c3);

  synth::SystemSynthSpec spec;
  spec.net_fmt["n31"] = kF;
  spec.untimed["comp3"] = [kF](synth::WordBuilder& wb,
                               const std::vector<synth::Bus>& in) {
    return std::vector<synth::Bus>{
        wb.quantize(wb.add(in[0], wb.constant(1.0, kF), kF), kF)};
  };
  spec.observe = {"n12", "n23", "n31"};

  Example ex;
  ex.name = "fig6";
  ex.description = "Fig 6 circular system: two SFG components + an untimed "
                   "increment, closed into a ring";
  ex.clock_period_ns = 20.0;
  synth::synthesize_system(sched, ex.nl, spec);
  return ex;
}

/// The simulation service's quickstart design: a 1-tap moving average.
Example build_quickstart() {
  const fixpt::Format kFx{12, 3, true, fixpt::Quant::kRound,
                          fixpt::Overflow::kSaturate};
  sfg::Clk clk;
  sched::CycleScheduler sched(clk);
  sfg::Reg z1("z1", clk, kFx, 0.0);
  sfg::Sig x = sfg::Sig::input("x", kFx);
  sfg::Sfg avg("avg");
  sched::SfgComponent comp("mavg", avg);
  avg.in(x).out("y", (x + z1) >> 1).assign(z1, x);
  comp.bind_input(x, sched.net("x"));
  comp.bind_output("y", sched.net("y"));
  sched.add(comp);
  sched.net("x").drive(Fixed(0.0));  // pin net: becomes a primary input

  synth::SystemSynthSpec spec;
  spec.net_fmt["x"] = kFx;
  spec.observe = {"y"};

  Example ex;
  ex.name = "quickstart";
  ex.description = "service quickstart: 1-tap moving average";
  ex.clock_period_ns = 10.0;
  synth::synthesize_system(sched, ex.nl, spec);
  return ex;
}

/// The HCOR header correlator, component-synthesized exactly like the
/// hdl_flow example's HDL path.
Example build_hcor() {
  dect::Hcor hcor;
  Example ex;
  ex.name = "hcor";
  ex.description = "DECT header correlator (Table 1's 6 Kgate design)";
  ex.clock_period_ns = 15.0;
  synth::synthesize_component(hcor.component(), ex.nl);
  return ex;
}

/// The DECT transceiver in structural-tables mode (fully timed: ROM and
/// RAM as gates), scaled down so the golden file stays reviewable.
Example build_dect() {
  dect::VliwParams p;
  p.num_datapaths = 2;
  p.num_rams = 1;
  p.rom_length = 6;
  p.structural_tables = true;
  dect::DectTransceiver t(p);
  t.drive_sample(0.0);

  synth::SystemSynthSpec spec;
  spec.net_fmt["sample"] = dect::kVliwData;
  spec.net_fmt["hold_request"] = dect::kVliwBit;
  for (int d = 0; d < p.num_datapaths; ++d)
    spec.observe.push_back("data_" + std::to_string(d));

  Example ex;
  ex.name = "dect";
  ex.description = "DECT transceiver, structural tables (2 datapaths, "
                   "1 RAM, 6-word ROM)";
  ex.clock_period_ns = 40.0;
  synth::synthesize_system(t.scheduler(), ex.nl, spec);
  return ex;
}

}  // namespace

std::vector<std::string> example_names() {
  return {"fig6", "quickstart", "hcor", "dect"};
}

Example build_example(const std::string& name) {
  if (name == "fig6") return build_fig6();
  if (name == "quickstart") return build_quickstart();
  if (name == "hcor") return build_hcor();
  if (name == "dect") return build_dect();
  throw std::invalid_argument("unknown flow example: " + name);
}

std::vector<Example> build_all_examples() {
  std::vector<Example> all;
  for (const std::string& name : example_names())
    all.push_back(build_example(name));
  return all;
}

}  // namespace asicpp::flow
