// The flow backend's example designs: every demo the repo ships, as
// synthesized gate netlists ready for emission and STA.
//
// One registry shared by the asicpp-flow CLI, the golden-file tests, the
// differential iverilog harness, and the STA benchmarks — so "the fig6
// netlist" means the same gates everywhere. Builders re-create the
// systems from their original recipes (tools/asicpp_jit_smoke.cpp,
// examples/hdl_flow.cpp, service quickstart, the structural DECT tests)
// and run full system synthesis each call.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace asicpp::flow {

struct Example {
  std::string name;         ///< registry key and Verilog module name
  std::string description;
  netlist::Netlist nl;
  double clock_period_ns;   ///< flow-config / slack-report target
};

/// Registered example names, build order: fig6, quickstart, hcor, dect.
std::vector<std::string> example_names();

/// Build one example by name. Throws std::invalid_argument on an unknown
/// name (the CLI turns that into a usage error).
Example build_example(const std::string& name);

/// Build every registered example.
std::vector<Example> build_all_examples();

}  // namespace asicpp::flow
