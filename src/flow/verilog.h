// Structural Verilog emission for the open ASIC flow backend.
//
// `netlist::Netlist` designs leave the environment here: every gate
// becomes an instance of an asicpp_sc_hd cell (see flow/liberty.h for the
// binding), every primary input/output becomes a scalar port (bit-blasted
// bus names like "x[3]" are emitted as escaped identifiers), and the
// result parses in Yosys and Icarus Verilog unmodified.
//
// Emission is canonical: instance and wire names come from a
// deterministic depth-first traversal anchored at the (name-sorted)
// primary outputs and inputs, never from raw gate ids. Two structurally
// identical netlists built with different gate insertion orders emit
// byte-identical Verilog — which is what lets the golden-file tests
// compare bytes instead of parsing.
//
// Alongside the design itself the emitter produces the rest of a
// flow-ready file set: behavioral simulation models for the cell library
// (iverilog/yosys), a Yosys resynthesis script, a LibreLane-style
// config.json, and a self-checking testbench replaying recorded stimuli
// (the differential harness drives `netsim` and the emitted Verilog with
// the same vectors and compares traces).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace asicpp::flow {

struct VerilogOptions {
  std::string module_name = "top";
  std::string clock = "clk";  ///< clock port name (emitted when DFFs exist)
};

/// Canonical gate order for emission: a DFS from the name-sorted outputs
/// (then inputs, then any dead gates in id order) that depends only on
/// port names and fanin pin positions — not on insertion order.
std::vector<std::int32_t> canonical_order(const netlist::Netlist& nl);

/// The design as structural Verilog over asicpp_sc_hd cells.
std::string emit_verilog(const netlist::Netlist& nl,
                         const VerilogOptions& opt = {});

/// Behavioral models for every library cell ("cells_sim.v"): enough for
/// iverilog simulation and Yosys `read_verilog` of emitted designs.
std::string cells_sim_verilog();

/// Yosys resynthesis script: read the library + design, flatten,
/// resynthesize, map onto asicpp_sc_hd, and report stat/area.
std::string yosys_script(const VerilogOptions& opt,
                         const std::string& lib_file = "asicpp_sc_hd.lib");

/// LibreLane-style flow config (DESIGN_NAME / VERILOG_FILES / CLOCK_*).
std::string flow_config_json(const VerilogOptions& opt,
                             double clock_period_ns);

/// Self-checking testbench: applies `stimuli[cycle][k]` to the k-th input
/// port (ports in sorted-name order, as in the emitted module) each
/// cycle, `$display`s the output bits (sorted-name order, concatenated
/// MSB-free: one '0'/'1' per port in order) after combinational settling,
/// then clocks. One output line per cycle, "cycle <n>: <bits>", matching
/// what the differential harness derives from netsim.
std::string emit_testbench(const netlist::Netlist& nl,
                           const VerilogOptions& opt,
                           const std::vector<std::vector<int>>& stimuli);

/// Names of the input/output ports in emitted-port order (sorted by
/// name; excludes the clock). The testbench stimulus/trace columns use
/// exactly this order.
std::vector<std::string> input_ports(const netlist::Netlist& nl);
std::vector<std::string> output_ports(const netlist::Netlist& nl);

}  // namespace asicpp::flow
