#include "sim/compiled.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "ckpt/snapshot.h"
#include "opt/ir.h"
#include "opt/passes.h"
#include "sched/schedule.h"

namespace asicpp::sim {

using sfg::Node;
using sfg::NodePtr;
using sfg::Op;

class CompiledSystem::Builder {
 public:
  Builder(CompiledSystem& sys, const opt::PassOptions& passes)
      : sys_(sys), popts_(passes) {}

  void build(const sched::CycleScheduler& sched);

 private:
  std::int32_t slot_of(const NodePtr& n);
  /// Global slot for each lowered-IR slot: leaves map onto their origin
  /// node's persistent slot (pass-created constants get a fresh slot
  /// pre-initialized to their value), interiors get fresh scratch slots.
  std::vector<std::int32_t> map_slots(const opt::LoweredSfg& l);
  static Instr emit_ins(const opt::LoweredSfg& l, std::size_t idx,
                        const std::vector<std::int32_t>& g);
  std::int32_t compile_expr(const NodePtr& n, Tape& tape);
  std::int32_t net_id(const sched::Net* n) const;
  std::int32_t compile_sfg(sfg::Sfg& s, const sched::TimedBase& comp,
                           std::unordered_map<sfg::Sfg*, std::int32_t>& local);

  CompiledSystem& sys_;
  opt::PassOptions popts_;
  std::unordered_map<const Node*, std::int32_t> slots_;
  std::unordered_map<const sched::Net*, std::int32_t> net_map_;
};

std::int32_t CompiledSystem::Builder::slot_of(const NodePtr& n) {
  const auto it = slots_.find(n.get());
  if (it != slots_.end()) return it->second;
  const auto slot = static_cast<std::int32_t>(sys_.slots_.size());
  sys_.slots_.push_back(n->value.value());
  slots_.emplace(n.get(), slot);
  if (n->op == Op::kReg) {
    sys_.reg_slots_.emplace(n->name, slot);
    sys_.reg_inits_.push_back(RegInit{slot, n->init});
  } else if (n->op == Op::kInput) {
    sys_.input_slots_.emplace(n->name, slot);
  }
  return slot;
}

std::vector<std::int32_t> CompiledSystem::Builder::map_slots(
    const opt::LoweredSfg& l) {
  std::vector<std::int32_t> g(l.ins.size(), -1);
  for (std::size_t i = 0; i < l.ins.size(); ++i) {
    const opt::LIns& ins = l.ins[i];
    if (ins.is_leaf() && ins.origin != nullptr) {
      g[i] = slot_of(ins.origin);
    } else if (ins.is_leaf()) {
      // Pass-created constant: its slot is never written, so the initial
      // value is the value.
      g[i] = static_cast<std::int32_t>(sys_.slots_.size());
      sys_.slots_.push_back(ins.cval);
    } else {
      g[i] = static_cast<std::int32_t>(sys_.slots_.size());
      sys_.slots_.push_back(0.0);
    }
  }
  return g;
}

Instr CompiledSystem::Builder::emit_ins(const opt::LoweredSfg& l,
                                        std::size_t idx,
                                        const std::vector<std::int32_t>& g) {
  const opt::LIns& i = l.ins[idx];
  const auto arg = [&](std::int32_t s) {
    return s >= 0 ? g[static_cast<std::size_t>(s)] : -1;
  };
  return Instr::apply(i.op, g[idx], arg(i.a), arg(i.b), arg(i.c), i.fmt);
}

std::int32_t CompiledSystem::Builder::compile_expr(const NodePtr& n, Tape& tape) {
  opt::LoweredSfg l = opt::lower_expr(n);
  opt::run_passes(l, popts_);
  sys_.pass_stats_ += l.stats;
  const auto g = map_slots(l);
  for (std::size_t i = 0; i < l.ins.size(); ++i) {
    if (!l.ins[i].is_leaf()) tape.push_back(emit_ins(l, i, g));
  }
  return g[static_cast<std::size_t>(l.outputs.front().slot)];
}

std::int32_t CompiledSystem::Builder::net_id(const sched::Net* n) const {
  const auto it = net_map_.find(n);
  if (it == net_map_.end())
    throw std::logic_error("CompiledSystem: component bound to unknown net");
  return it->second;
}

std::int32_t CompiledSystem::Builder::compile_sfg(
    sfg::Sfg& s, const sched::TimedBase& comp,
    std::unordered_map<sfg::Sfg*, std::int32_t>& local) {
  const auto lit = local.find(&s);
  if (lit != local.end()) return lit->second;

  s.analyze();
  SfgCode code;

  // Lower the whole SFG once and run the pass pipeline over it; the tapes
  // below are straight re-emissions of the optimized IR.
  opt::LoweredSfg l = opt::lower(s);
  opt::run_passes(l, popts_);
  sys_.pass_stats_ += l.stats;
  const auto g = map_slots(l);

  // Input plumbing: bound inputs load from net slots (quantized per the
  // declared format); unbound inputs refresh from the live node each cycle
  // so interpreted-style pokes keep working.
  const auto& binds = comp.input_bindings();
  for (const auto& in : s.inputs()) {
    const std::int32_t in_slot = slot_of(in);
    bool bound = false;
    for (const auto& b : binds) {
      if (b.node != in) continue;
      bound = true;
      const auto net_slot =
          sys_.net_slots_[static_cast<std::size_t>(net_id(b.net))];
      code.load_inputs.push_back(in->has_fmt
                                     ? Instr::copy_q(in_slot, net_slot, in->fmt)
                                     : Instr::copy(in_slot, net_slot));
      code.required_nets.push_back(net_id(b.net));
    }
    if (!bound) sys_.refresh_.push_back(InputRefresh{in, in_slot});
  }

  // Pre tape: the input-independent reachable subset, self-contained so it
  // can run in the token-production phase; main tape: everything else.
  // The pre phase always precedes main within one cycle and registers only
  // commit in phase 3, so pre-computed slots stay valid for main.
  std::vector<char> in_pre(l.ins.size(), 0);
  for (const auto idx : l.pre) in_pre[static_cast<std::size_t>(idx)] = 1;
  for (std::size_t i = 0; i < l.ins.size(); ++i) {
    if (l.ins[i].is_leaf()) continue;
    (in_pre[i] ? code.pre : code.main).push_back(emit_ins(l, i, g));
  }

  const auto& outs = comp.output_bindings();
  for (const auto& o : l.outputs) {
    const auto bit = outs.find(o.port);
    if (bit == outs.end()) continue;
    auto& pushes = o.needs_inputs ? code.main_pushes : code.pre_pushes;
    pushes.push_back(
        SfgCode::Push{net_id(bit->second), g[static_cast<std::size_t>(o.slot)]});
  }

  for (const auto& a : l.assigns) {
    code.commits.push_back(SfgCode::Commit{slot_of(a.reg),
                                           g[static_cast<std::size_t>(a.slot)],
                                           a.reg->fmt, a.reg->has_fmt});
  }

  const auto id = static_cast<std::int32_t>(sys_.sfgs_.size());
  sys_.sfgs_.push_back(std::move(code));
  local.emplace(&s, id);
  return id;
}

void CompiledSystem::Builder::build(const sched::CycleScheduler& sched) {
  sys_.max_iters_ = sched.max_iterations();

  for (sched::Net* n : sched.all_nets()) {
    const auto id = static_cast<std::int32_t>(sys_.net_slots_.size());
    net_map_.emplace(n, id);
    sys_.net_ids_.emplace(n->name(), id);
    sys_.net_names_.push_back(n->name());
    sys_.net_slots_.push_back(static_cast<std::int32_t>(sys_.slots_.size()));
    sys_.slots_.push_back(n->last().value());
    sys_.ext_nets_.push_back(n);
    sys_.ext_net_slots_.push_back(sys_.net_slots_.back());
  }
  sys_.net_token_.assign(sys_.net_slots_.size(), 0);

  for (sched::Component* c : sched.components()) {
    Comp comp;
    comp.name = c->name();
    if (auto* f = dynamic_cast<sched::FsmComponent*>(c)) {
      comp.kind = Kind::kFsm;
      std::unordered_map<sfg::Sfg*, std::int32_t> local;
      const fsm::Fsm& m = f->machine();
      comp.by_state.resize(static_cast<std::size_t>(m.num_states()));
      for (const auto& t : m.transitions()) {
        GuardedTransition gt;
        gt.always = t.guards.empty();
        if (!gt.always)
          gt.guard_slot = compile_expr(t.guards.front().expr().node(), gt.guard);
        for (auto* s : t.actions) gt.sfgs.push_back(compile_sfg(*s, *f, local));
        gt.to = t.to;
        comp.by_state[static_cast<std::size_t>(t.from)].push_back(std::move(gt));
      }
      comp.state = m.current();
      comp.initial = m.initial_state();
    } else if (auto* s = dynamic_cast<sched::SfgComponent*>(c)) {
      comp.kind = Kind::kSfg;
      std::unordered_map<sfg::Sfg*, std::int32_t> local;
      comp.solo_sfg = compile_sfg(s->graph(), *s, local);
    } else if (auto* d = dynamic_cast<sched::DispatchComponent*>(c)) {
      comp.kind = Kind::kDispatch;
      std::unordered_map<sfg::Sfg*, std::int32_t> local;
      comp.instr_net = net_id(&d->instruction_net());
      for (const auto& [opcode, g] : d->instruction_table())
        comp.table.emplace(opcode, compile_sfg(*g, *d, local));
      if (d->default_instruction() != nullptr)
        comp.default_sfg = compile_sfg(*d->default_instruction(), *d, local);
    } else if (auto* u = dynamic_cast<sched::UntimedComponent*>(c)) {
      comp.kind = Kind::kUntimed;
      comp.untimed = u;
      for (const sched::Net* n : u->input_nets()) comp.in_nets.push_back(net_id(n));
      for (const sched::Net* n : u->output_nets()) comp.out_nets.push_back(net_id(n));
    } else {
      throw ElabError(diag::Diagnostic{
          diag::Severity::kError, "SIM-001", "compiled simulator", diag::kNoCycle,
          "unsupported component '" + c->name() + "'", {}});
    }
    sys_.comps_.push_back(std::move(comp));
  }
}

CompiledSystem CompiledSystem::compile(const sched::CycleScheduler& sched,
                                       const opt::PassOptions& passes) {
  CompiledSystem sys;
  Builder(sys, passes).build(sched);
  sys.build_schedule();
  sys.compute_ir_hash();
  return sys;
}

void CompiledSystem::build_schedule() {
  // Mirror of sched::Schedule::build over the compiled structures: one
  // action per component, two for dispatch (decode performs the deferred
  // pre-pushes, the firing orders after it). FSM pre-pushes run in phase 1
  // and impose no ordering, so only main_pushes count as products there.
  std::vector<std::pair<std::int32_t, bool>> act;  // comp index, is_decode
  std::vector<std::vector<std::int32_t>> needs;
  std::vector<std::vector<std::int32_t>> produces;
  std::vector<int> after;

  const auto dedup = [](std::vector<std::int32_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  const auto sfg_needs = [&](std::int32_t id, std::vector<std::int32_t>& v) {
    for (const auto n : sfgs_[static_cast<std::size_t>(id)].required_nets) v.push_back(n);
  };
  const auto sfg_main_products = [&](std::int32_t id, std::vector<std::int32_t>& v) {
    for (const auto& p : sfgs_[static_cast<std::size_t>(id)].main_pushes) v.push_back(p.net);
  };
  const auto sfg_pre_products = [&](std::int32_t id, std::vector<std::int32_t>& v) {
    for (const auto& p : sfgs_[static_cast<std::size_t>(id)].pre_pushes) v.push_back(p.net);
  };

  for (std::size_t i = 0; i < comps_.size(); ++i) {
    const Comp& c = comps_[i];
    std::vector<std::int32_t> req;
    std::vector<std::int32_t> prod;
    int decode_idx = -1;
    switch (c.kind) {
      case Kind::kFsm:
        for (const auto& st : c.by_state) {
          for (const auto& gt : st) {
            for (const auto id : gt.sfgs) {
              sfg_needs(id, req);
              sfg_main_products(id, prod);
            }
          }
        }
        break;
      case Kind::kSfg:
        sfg_needs(c.solo_sfg, req);
        sfg_main_products(c.solo_sfg, prod);
        break;
      case Kind::kDispatch: {
        std::vector<std::int32_t> dprod;
        const auto each = [&](std::int32_t id) {
          sfg_needs(id, req);
          sfg_main_products(id, prod);
          sfg_pre_products(id, dprod);
        };
        for (const auto& [opcode, id] : c.table) {
          (void)opcode;
          each(id);
        }
        if (c.default_sfg >= 0) each(c.default_sfg);
        dedup(dprod);
        decode_idx = static_cast<int>(act.size());
        act.emplace_back(static_cast<std::int32_t>(i), true);
        needs.push_back({c.instr_net});
        produces.push_back(std::move(dprod));
        after.push_back(-1);
        break;
      }
      case Kind::kUntimed:
        req = c.in_nets;
        prod = c.out_nets;
        break;
    }
    dedup(req);
    dedup(prod);
    act.emplace_back(static_cast<std::int32_t>(i), false);
    needs.push_back(std::move(req));
    produces.push_back(std::move(prod));
    after.push_back(decode_idx);
  }

  std::vector<int> cyc;
  const std::vector<int> levels = sched::levelize_actions(needs, produces, after, &cyc);
  if (levels.size() != act.size()) {
    std::string msg = "dependency cycle:";
    for (const int a : cyc) {
      const std::string& name = comps_[static_cast<std::size_t>(act[static_cast<std::size_t>(a)].first)].name;
      if (msg.rfind(name) == std::string::npos) msg += " " + name;
    }
    sched_reason_ = msg;
    return;
  }
  std::vector<int> idx(act.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](int a, int b) { return levels[a] < levels[b]; });
  level_order_.reserve(idx.size());
  for (const int i : idx) {
    level_order_.push_back(SchedSlot{act[static_cast<std::size_t>(i)].first,
                                     act[static_cast<std::size_t>(i)].second, levels[i]});
    sched_levels_ = std::max(sched_levels_, levels[i] + 1);
  }
  level_offsets_.assign(static_cast<std::size_t>(sched_levels_) + 1,
                        level_order_.size());
  for (std::size_t i = level_order_.size(); i-- > 0;)
    level_offsets_[static_cast<std::size_t>(level_order_[i].level)] = i;
  if (!level_offsets_.empty()) level_offsets_[0] = 0;
  levelizable_ = true;
}

bool CompiledSystem::comp_blocked(const Comp& c) const {
  switch (c.kind) {
    case Kind::kFsm: return c.pending != nullptr && !c.fired;
    case Kind::kUntimed: return false;  // opportunistic
    default: return !c.fired;
  }
}

std::vector<std::int32_t> CompiledSystem::comp_waiting_nets(const Comp& c) const {
  std::vector<std::int32_t> nets;
  const auto missing_of = [&](std::int32_t sfg_id) {
    for (const auto n : sfgs_[static_cast<std::size_t>(sfg_id)].required_nets) {
      if (!net_token_[static_cast<std::size_t>(n)]) nets.push_back(n);
    }
  };
  switch (c.kind) {
    case Kind::kFsm:
      if (c.pending != nullptr)
        for (const auto id : c.pending->sfgs) missing_of(id);
      break;
    case Kind::kSfg: missing_of(c.solo_sfg); break;
    case Kind::kDispatch:
      if (c.selected < 0) {
        if (!net_token_[static_cast<std::size_t>(c.instr_net)]) nets.push_back(c.instr_net);
      } else {
        missing_of(c.selected);
      }
      break;
    case Kind::kUntimed:
      for (const auto n : c.in_nets) {
        if (!net_token_[static_cast<std::size_t>(n)]) nets.push_back(n);
      }
      break;
  }
  return nets;
}

std::vector<std::int32_t> CompiledSystem::comp_pending_outputs(const Comp& c) const {
  std::vector<std::int32_t> nets;
  const auto pushes_of = [&](std::int32_t sfg_id) {
    const SfgCode& s = sfgs_[static_cast<std::size_t>(sfg_id)];
    for (const auto& p : s.pre_pushes) nets.push_back(p.net);
    for (const auto& p : s.main_pushes) nets.push_back(p.net);
  };
  switch (c.kind) {
    case Kind::kFsm:
      if (c.pending != nullptr)
        for (const auto id : c.pending->sfgs) pushes_of(id);
      break;
    case Kind::kSfg: pushes_of(c.solo_sfg); break;
    case Kind::kDispatch:
      if (c.selected >= 0) {
        pushes_of(c.selected);
      } else {
        for (const auto& [_, id] : c.table) pushes_of(id);
        if (c.default_sfg >= 0) pushes_of(c.default_sfg);
      }
      break;
    case Kind::kUntimed:
      nets = c.out_nets;
      break;
  }
  return nets;
}

diag::Diagnostic CompiledSystem::deadlock_postmortem() const {
  diag::Diagnostic d;
  d.severity = diag::Severity::kFatal;
  d.code = "SCHED-001";
  d.component = "compiled simulator";
  d.cycle = cycles_;

  std::vector<const Comp*> blocked;
  for (const auto& c : comps_) {
    if (comp_blocked(c)) blocked.push_back(&c);
  }

  std::string names;
  for (const auto* c : blocked) names += (names.empty() ? "" : ", ") + c->name;
  d.message = "combinational deadlock, unfired components: " + names;

  std::set<std::int32_t> involved;
  for (const auto* c : blocked) {
    std::string waits;
    for (const auto n : comp_waiting_nets(*c)) {
      involved.insert(n);
      waits += (waits.empty() ? "" : ", ") +
               ("'" + net_names_[static_cast<std::size_t>(n)] + "'");
    }
    d.note("component '" + c->name + "' waits on net" +
           (waits.empty() ? "s: (none — iteration bound too low?)" : "(s): " + waits));
  }

  std::vector<std::vector<int>> adj(blocked.size());
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    for (const auto n : comp_waiting_nets(*blocked[i])) {
      for (std::size_t j = 0; j < blocked.size(); ++j) {
        if (i == j) continue;
        for (const auto p : comp_pending_outputs(*blocked[j])) {
          if (p == n) adj[i].push_back(static_cast<int>(j));
        }
      }
    }
  }
  const auto cyc = diag::find_cycle(adj);
  if (!cyc.empty()) {
    std::string chain = blocked[static_cast<std::size_t>(cyc[0])]->name;
    for (std::size_t k = 1; k < cyc.size(); ++k) {
      const auto* from = blocked[static_cast<std::size_t>(cyc[k - 1])];
      const auto* to = blocked[static_cast<std::size_t>(cyc[k])];
      std::string via;
      for (const auto n : comp_waiting_nets(*from)) {
        for (const auto p : comp_pending_outputs(*to)) {
          if (p == n) via = net_names_[static_cast<std::size_t>(n)];
        }
      }
      chain += " -[" + via + "]-> " + to->name;
    }
    d.note("dependency cycle: " + chain);
  }

  for (const auto n : involved) {
    std::ostringstream os;
    os << "net '" << net_names_[static_cast<std::size_t>(n)] << "' last value = "
       << slots_[static_cast<std::size_t>(net_slots_[static_cast<std::size_t>(n)])]
       << (net_token_[static_cast<std::size_t>(n)] ? " (token present)"
                                                   : " (no token this cycle)");
    d.note(os.str());
  }
  return d;
}

void CompiledSystem::run_sfg_pre(std::int32_t id) {
  SfgCode& s = sfgs_[static_cast<std::size_t>(id)];
  exec(s.pre, slots_.data());
  ops_.add(s.pre.size());
  for (const auto& p : s.pre_pushes) {
    slots_[static_cast<std::size_t>(net_slots_[static_cast<std::size_t>(p.net)])] =
        slots_[static_cast<std::size_t>(p.src)];
    net_token_[static_cast<std::size_t>(p.net)] = 1;
  }
}

bool CompiledSystem::run_sfg_main(std::int32_t id) {
  SfgCode& s = sfgs_[static_cast<std::size_t>(id)];
  for (const auto n : s.required_nets) {
    if (!net_token_[static_cast<std::size_t>(n)]) return false;
  }
  exec(s.load_inputs, slots_.data());
  exec(s.main, slots_.data());
  ops_.add(s.load_inputs.size() + s.main.size());
  for (const auto& p : s.main_pushes) {
    slots_[static_cast<std::size_t>(net_slots_[static_cast<std::size_t>(p.net)])] =
        slots_[static_cast<std::size_t>(p.src)];
    net_token_[static_cast<std::size_t>(p.net)] = 1;
  }
  return true;
}

bool CompiledSystem::comp_try_fire(Comp& c) {
  switch (c.kind) {
    case Kind::kFsm: {
      if (c.fired || c.pending == nullptr) return false;
      for (const auto id : c.pending->sfgs) {
        const SfgCode& s = sfgs_[static_cast<std::size_t>(id)];
        for (const auto n : s.required_nets)
          if (!net_token_[static_cast<std::size_t>(n)]) return false;
      }
      for (const auto id : c.pending->sfgs) run_sfg_main(id);
      c.fired = true;
      return true;
    }
    case Kind::kSfg: {
      if (c.fired) return false;
      if (!run_sfg_main(c.solo_sfg)) return false;
      c.fired = true;
      return true;
    }
    case Kind::kDispatch: {
      if (c.fired) return false;
      bool progress = false;
      if (c.selected < 0) {
        if (!net_token_[static_cast<std::size_t>(c.instr_net)]) return false;
        const double v =
            slots_[static_cast<std::size_t>(net_slots_[static_cast<std::size_t>(c.instr_net)])];
        const long opcode = std::lround(v);
        const auto it = c.table.find(opcode);
        c.selected = (it != c.table.end()) ? it->second : c.default_sfg;
        if (c.selected < 0)
          throw std::logic_error("CompiledSystem '" + c.name + "': unknown opcode " +
                                 std::to_string(opcode) + " and no default");
        run_sfg_pre(c.selected);
        progress = true;
      }
      if (run_sfg_main(c.selected)) {
        c.fired = true;
        progress = true;
      }
      return progress;
    }
    case Kind::kUntimed: {
      if (c.fired) return false;
      for (const auto n : c.in_nets)
        if (!net_token_[static_cast<std::size_t>(n)]) return false;
      std::vector<fixpt::Fixed> in;
      in.reserve(c.in_nets.size());
      for (const auto n : c.in_nets)
        in.emplace_back(
            slots_[static_cast<std::size_t>(net_slots_[static_cast<std::size_t>(n)])]);
      const auto out = c.untimed->invoke(in);
      if (out.size() != c.out_nets.size())
        throw std::logic_error("CompiledSystem '" + c.name + "': untimed arity mismatch");
      for (std::size_t i = 0; i < out.size(); ++i) {
        const auto n = static_cast<std::size_t>(c.out_nets[i]);
        slots_[static_cast<std::size_t>(net_slots_[n])] = out[i].value();
        net_token_[n] = 1;
      }
      c.fired = true;
      return true;
    }
  }
  return false;
}

void CompiledSystem::cycle() {
  // Net reset + external drives (pins keep living on the sched::Net objects
  // so tests and benches can flip them between cycles).
  std::fill(net_token_.begin(), net_token_.end(), 0);
  for (std::size_t i = 0; i < ext_nets_.size(); ++i) {
    auto* n = const_cast<sched::Net*>(ext_nets_[i]);
    n->begin_cycle();
    if (n->has_token()) {
      slots_[static_cast<std::size_t>(ext_net_slots_[i])] = n->token().value();
      net_token_[i] = 1;
    }
  }
  for (const auto& r : refresh_) slots_[static_cast<std::size_t>(r.slot)] = r.node->value.value();

  // Phase 0: transition selection.
  for (auto& c : comps_) {
    c.fired = false;
    c.pending = nullptr;
    c.selected = -1;
    if (c.kind == Kind::kFsm) {
      for (const auto& gt : c.by_state[static_cast<std::size_t>(c.state)]) {
        if (gt.always) {
          c.pending = &gt;
          break;
        }
        exec(gt.guard, slots_.data());
        ops_.add(gt.guard.size());
        if (slots_[static_cast<std::size_t>(gt.guard_slot)] != 0.0) {
          c.pending = &gt;
          break;
        }
      }
    }
  }

  // Phase 1: token production.
  for (auto& c : comps_) {
    if (c.kind == Kind::kFsm && c.pending != nullptr) {
      for (const auto id : c.pending->sfgs) run_sfg_pre(id);
    } else if (c.kind == Kind::kSfg) {
      run_sfg_pre(c.solo_sfg);
    }
  }

  auto done = [](const Comp& c) {
    return c.kind == Kind::kFsm ? (c.fired || c.pending == nullptr) : c.fired;
  };
  const auto fire = [&](Comp& c) {
    if (!profile_) return comp_try_fire(c);
    const auto t0 = std::chrono::steady_clock::now();
    const bool f = comp_try_fire(c);
    auto& e = prof_[static_cast<std::size_t>(&c - comps_.data())];
    e.second +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (f) ++e.first;
    return f;
  };

  // Phase 2, levelized: one pass over the precomputed level order.
  bool need_iterative = true;
  bool walk_missed = false;
  if (mode_ != ScheduleMode::kIterative && levelizable_ && sched_failures_ < 2) {
    // Level-parallel walk: partition each level across the pool with a
    // barrier per level. Tapes within one level read slots written by
    // earlier levels and push disjoint nets, so the result is bit-identical
    // to the serial walk. Profiled runs stay serial (the timing table is
    // single-owner), as does a system already running on a pool lane.
    const bool par_walk =
        threads_ > 1 && !profile_ && !par::Pool::in_parallel_region();
    if (par_walk) {
      for (std::size_t l = 0; l + 1 < level_offsets_.size(); ++l) {
        const std::size_t b = level_offsets_[l], e = level_offsets_[l + 1];
        if (e - b < kMinParallelWidth) {
          for (std::size_t i = b; i < e; ++i) {
            Comp& c = comps_[static_cast<std::size_t>(level_order_[i].comp)];
            if (!done(c) && comp_try_fire(c)) fired_total_.add();
          }
        } else {
          par::Pool::shared().parallel_for(
              e - b,
              [&](std::size_t k) {
                Comp& c =
                    comps_[static_cast<std::size_t>(level_order_[b + k].comp)];
                if (!done(c) && comp_try_fire(c)) fired_total_.add();
              },
              threads_);
        }
      }
    } else {
      for (const auto& s : level_order_) {
        Comp& c = comps_[static_cast<std::size_t>(s.comp)];
        if (!done(c) && fire(c)) fired_total_.add();
      }
    }
    need_iterative = false;
    for (const auto& c : comps_) {
      if (comp_blocked(c)) {
        need_iterative = true;
        walk_missed = true;
        break;
      }
    }
    if (!need_iterative) {
      ++levelized_cycles_total_;
      sched_failures_ = 0;
    }
  } else if (mode_ == ScheduleMode::kLevelized && !levelizable_ && !sched002_reported_) {
    auto& d = diagnostics().warning(
        "SCHED-002", "compiled simulator",
        "levelized schedule requested but the system cannot be statically "
        "ordered (" + sched_reason_ + "); running iteratively");
    d.cycle = cycles_;
    sched002_reported_ = true;
  }

  // Phase 2, iterative evaluation (also the fallback after a missed walk).
  if (need_iterative) {
    int iters = walk_missed ? 1 : 0;
    for (;;) {
      bool progress = false;
      bool all_done = true;
      for (auto& c : comps_) {
        if (done(c)) continue;
        if (fire(c)) {
          progress = true;
          fired_total_.add();
        }
        if (!done(c)) all_done = false;
      }
      ++iters;
      if (iters > 1) ++retry_passes_total_;
      if (all_done) break;
      if (!progress || iters >= max_iters_) {
        bool any_blocked = false;
        for (const auto& c : comps_) {
          if (comp_blocked(c)) any_blocked = true;
        }
        if (any_blocked) {
          diag::Diagnostic d = deadlock_postmortem();
          diagnostics().report(d);
          throw sched::DeadlockError(std::move(d));
        }
        break;
      }
    }
    if (walk_missed) {
      ++sched_failures_;
      auto& d = diagnostics().warning(
          "SCHED-002", "compiled simulator",
          "schedule invalidated: the static level walk left components "
          "unfired; cycle recovered iteratively" +
              std::string(sched_failures_ >= 2 ? " (repeat miss — reverting to iterative mode)"
                                               : ""));
      d.cycle = cycles_;
    }
  }

  // Phase 3: register update + state commit.
  for (auto& c : comps_) {
    if (!c.fired) continue;
    std::vector<std::int32_t> ran;
    switch (c.kind) {
      case Kind::kFsm:
        ran.assign(c.pending->sfgs.begin(), c.pending->sfgs.end());
        c.state = c.pending->to;
        break;
      case Kind::kSfg: ran.push_back(c.solo_sfg); break;
      case Kind::kDispatch: ran.push_back(c.selected); break;
      case Kind::kUntimed: break;
    }
    for (const auto id : ran) {
      for (const auto& cm : sfgs_[static_cast<std::size_t>(id)].commits) {
        const double v = slots_[static_cast<std::size_t>(cm.src)];
        slots_[static_cast<std::size_t>(cm.dst)] =
            cm.has_fmt ? fixpt::quantize(v, cm.fmt) : v;
      }
    }
  }
  ++cycles_;
}

RunResult CompiledSystem::run(const RunOptions& opts) {
  struct Restore {
    CompiledSystem* s;
    diag::DiagEngine* diag;
    ScheduleMode mode;
    unsigned threads;
    ~Restore() {
      s->diag_ = diag;
      s->mode_ = mode;
      s->threads_ = threads;
      s->profile_ = false;
    }
  } restore{this, diag_, mode_, threads_};
  if (opts.diagnostics != nullptr) diag_ = opts.diagnostics;
  mode_ = opts.schedule;
  set_threads(opts.nthreads);
  profile_ = opts.profile;
  if (profile_) prof_.assign(comps_.size(), {0, 0.0});

  const std::uint64_t budget = opts.cycle_budget;
  const double wall = opts.wall_clock_s;

  RunResult r;
  const std::uint64_t retry0 = retry_passes_total_;
  const std::uint64_t level0 = levelized_cycles_total_;
  const std::uint64_t fired0 = fired_total_.get();
  watchdog_tripped_ = false;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < opts.cycles; ++i) {
    if (budget != 0 && cycles_ >= budget) {
      auto& d = diagnostics().fatal(
          "WATCHDOG-001", "compiled simulator",
          "cycle budget (" + std::to_string(budget) + ") exhausted after " +
              std::to_string(i) + " of " + std::to_string(opts.cycles) +
              " requested cycles; stopping run");
      d.cycle = cycles_;
      watchdog_tripped_ = true;
      r.stop = StopReason::kCycleBudget;
      break;
    }
    // The wall clock is sampled every cycle; a compiled cycle is orders of
    // magnitude heavier than one steady_clock read.
    if (wall > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= wall) {
        auto& d = diagnostics().fatal(
            "WATCHDOG-002", "compiled simulator",
            "wall-clock limit (" + std::to_string(wall) + " s) exceeded after " +
                std::to_string(i) + " of " + std::to_string(opts.cycles) +
                " requested cycles; stopping run");
        d.cycle = cycles_;
        watchdog_tripped_ = true;
        r.stop = StopReason::kWallClock;
        break;
      }
    }
    cycle();
    ++r.cycles;
    if (opts.on_cycle_end) opts.on_cycle_end(cycles_);
    if (opts.checkpoint_every != 0 && opts.on_checkpoint &&
        (i + 1) % opts.checkpoint_every == 0) {
      opts.on_checkpoint(cycles_);
      ++r.checkpoints;
    }
  }
  r.retry_passes = retry_passes_total_ - retry0;
  r.levelized_cycles = levelized_cycles_total_ - level0;
  r.firings = fired_total_.get() - fired0;
  r.schedule = (r.levelized_cycles > 0 && r.levelized_cycles * 2 >= r.cycles)
                   ? ScheduleMode::kLevelized
                   : ScheduleMode::kIterative;
  if (opts.profile) {
    r.timing.reserve(comps_.size());
    for (std::size_t i = 0; i < comps_.size(); ++i) {
      if (prof_[i].first == 0 && prof_[i].second == 0.0) continue;
      r.timing.push_back(ComponentTiming{comps_[i].name, prof_[i].first, prof_[i].second});
    }
  }
  return r;
}

CompiledSystem::Checkpoint CompiledSystem::save() const {
  Checkpoint cp;
  cp.slots = slots_;
  for (const auto& c : comps_) cp.states.push_back(c.kind == Kind::kFsm ? c.state : 0);
  cp.cycles = cycles_;
  return cp;
}

void CompiledSystem::restore(const Checkpoint& cp) {
  if (cp.slots.size() != slots_.size() || cp.states.size() != comps_.size())
    throw std::invalid_argument("CompiledSystem::restore: checkpoint from another system");
  slots_ = cp.slots;
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    if (comps_[i].kind == Kind::kFsm) comps_[i].state = cp.states[i];
  }
  cycles_ = cp.cycles;
}

void CompiledSystem::reset() {
  for (const auto& r : reg_inits_) slots_[static_cast<std::size_t>(r.slot)] = r.init;
  for (auto& c : comps_) {
    if (c.kind == Kind::kFsm) c.state = c.initial;
  }
  cycles_ = 0;
}

void CompiledSystem::compute_ir_hash() {
  ckpt::Hasher h;
  h.str("compiled-system");
  h.u32(static_cast<std::uint32_t>(slots_.size()));
  h.u32(static_cast<std::uint32_t>(net_names_.size()));
  for (const auto& n : net_names_) h.str(n);
  const auto hash_tape = [&h](const Tape& t) {
    h.u32(static_cast<std::uint32_t>(t.size()));
    for (const Instr& i : t) {
      h.u8(static_cast<std::uint8_t>(i.op));
      h.u8(i.quant ? 1 : 0);
      h.i32(i.dst).i32(i.a).i32(i.b).i32(i.c);
      h.fmt(i.fmt);
    }
  };
  h.u32(static_cast<std::uint32_t>(sfgs_.size()));
  for (const SfgCode& s : sfgs_) {
    hash_tape(s.pre);
    hash_tape(s.main);
    h.u32(static_cast<std::uint32_t>(s.commits.size()));
    for (const auto& c : s.commits) h.i32(c.dst).i32(c.src);
  }
  h.u32(static_cast<std::uint32_t>(comps_.size()));
  for (const Comp& c : comps_) {
    h.u8(static_cast<std::uint8_t>(c.kind));
    h.str(c.name);
    h.i32(c.initial);
    h.u32(static_cast<std::uint32_t>(c.by_state.size()));
    for (const auto& ts : c.by_state) {
      h.u32(static_cast<std::uint32_t>(ts.size()));
      for (const auto& gt : ts) {
        hash_tape(gt.guard);
        h.i32(gt.to);
        for (const auto id : gt.sfgs) h.i32(id);
      }
    }
  }
  ir_hash_ = h.digest();
}

void CompiledSystem::save_state(std::ostream& os) const {
  ckpt::Writer w(os);
  w.header(ckpt::EngineKind::kCompiledSystem, ir_hash_, cycles_);
  w.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const double v : slots_) w.f64(v);
  w.u32(static_cast<std::uint32_t>(net_token_.size()));
  for (const std::uint8_t t : net_token_) w.u8(t);
  w.u32(static_cast<std::uint32_t>(comps_.size()));
  for (const Comp& c : comps_) {
    w.i32(c.kind == Kind::kFsm ? c.state : 0);
    w.u64(c.kind == Kind::kUntimed ? c.untimed->firings() : 0);
  }
  // Levelized-schedule cursor, mirroring the interpreted scheduler.
  w.i32(sched_failures_);
  w.u8(sched002_reported_ ? 1 : 0);
  w.end();
}

void CompiledSystem::restore_state_impl(std::istream& is) {
  ckpt::Reader r(is, "compiled simulator");
  const std::uint64_t cyc =
      r.header(ckpt::EngineKind::kCompiledSystem, ir_hash_);
  const std::size_t nslots = r.count(1u << 26);
  if (nslots != slots_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(nslots) +
            " slot(s), this image has " + std::to_string(slots_.size())});
  }
  for (double& v : slots_) v = r.f64();
  const std::size_t ntok = r.count(1u << 26);
  if (ntok != net_token_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(ntok) +
            " net token flag(s), this image has " +
            std::to_string(net_token_.size())});
  }
  for (std::uint8_t& t : net_token_) t = r.u8();
  const std::size_t ncomps = r.count(1u << 24);
  if (ncomps != comps_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(ncomps) +
            " component(s), this image has " + std::to_string(comps_.size())});
  }
  for (Comp& c : comps_) {
    const std::int32_t state = r.i32();
    const std::uint64_t firings = r.u64();
    if (c.kind == Kind::kFsm) {
      if (state < 0 ||
          static_cast<std::size_t>(state) >= c.by_state.size()) {
        r.fail("CKPT-004", "truncated or corrupt snapshot stream",
               {"component '" + c.name + "': FSM state index " +
                std::to_string(state) + " out of range"});
      }
      c.state = state;
    } else if (c.kind == Kind::kUntimed) {
      // The firing counter lives on the shared UntimedComponent; the
      // closure's captured state is out of scope (see sched/untimed.h).
      c.untimed->set_firings(static_cast<std::size_t>(firings));
    }
  }
  sched_failures_ = r.i32();
  sched002_reported_ = r.u8() != 0;
  r.end();
  cycles_ = cyc;
}

void CompiledSystem::restore_state(std::istream& is) {
  // Transactional: roll back to a pre-restore snapshot on any failure so a
  // bad stream leaves the simulator untouched.
  std::ostringstream backup;
  save_state(backup);
  try {
    restore_state_impl(is);
  } catch (...) {
    std::istringstream b(backup.str());
    restore_state_impl(b);
    throw;
  }
}

double CompiledSystem::net_value(const std::string& name) const {
  const auto it = net_ids_.find(name);
  if (it == net_ids_.end())
    throw std::out_of_range("CompiledSystem::net_value: no net '" + name + "'");
  return slots_[static_cast<std::size_t>(
      net_slots_[static_cast<std::size_t>(it->second)])];
}

double CompiledSystem::reg_value(const std::string& name) const {
  const auto it = reg_slots_.find(name);
  if (it == reg_slots_.end())
    throw std::out_of_range("CompiledSystem::reg_value: no register '" + name + "'");
  return slots_[static_cast<std::size_t>(it->second)];
}

void CompiledSystem::poke(const std::string& input_name, double v) {
  const auto it = input_slots_.find(input_name);
  if (it == input_slots_.end())
    throw std::out_of_range("CompiledSystem::poke: no input '" + input_name + "'");
  slots_[static_cast<std::size_t>(it->second)] = v;
  // Also update the refresh source so the poke persists across cycles.
  for (auto& r : refresh_) {
    if (r.slot == it->second) r.node->value = fixpt::Fixed(v);
  }
}

std::size_t CompiledSystem::footprint_bytes() const {
  std::size_t bytes = slots_.capacity() * sizeof(double) +
                      net_token_.capacity() + net_slots_.capacity() * sizeof(std::int32_t);
  for (const auto& s : sfgs_) {
    bytes += (s.pre.capacity() + s.main.capacity() + s.load_inputs.capacity()) * sizeof(Instr);
    bytes += s.required_nets.capacity() * sizeof(std::int32_t);
    bytes += (s.pre_pushes.capacity() + s.main_pushes.capacity()) * sizeof(SfgCode::Push);
    bytes += s.commits.capacity() * sizeof(SfgCode::Commit);
  }
  for (const auto& c : comps_) {
    for (const auto& st : c.by_state)
      for (const auto& gt : st) bytes += gt.guard.capacity() * sizeof(Instr) + gt.sfgs.capacity() * 4;
    bytes += (c.in_nets.capacity() + c.out_nets.capacity()) * sizeof(std::int32_t);
    bytes += c.table.size() * 24;
  }
  return bytes;
}

}  // namespace asicpp::sim
