// Linear operation tapes: the compiled-code simulation format.
//
// The paper's code generator regenerates an "application-specific and
// optimized compiled code simulator" from the SFG/FSM data structure
// (section 5, Fig 7). The tape is that simulator's executable form: each
// SFG's lowered IR (see opt/ir.h) maps onto straight-line, topologically
// ordered operations over a flat slot array — no graph traversal, no
// virtual dispatch, no memoization stamps. Operator semantics are not
// re-implemented here: execution delegates to opt::apply_op_value, the one
// definition shared with interpreted eval and the C++ code generator.
#pragma once

#include <cstdint>
#include <vector>

#include "fixpt/format.h"
#include "sfg/node.h"

namespace asicpp::sim {

struct Instr {
  /// Operator applied via opt::apply_op_value. The sentinel sfg::Op::kCount
  /// marks a plain copy (dst = a), quantized through `fmt` when `quant` is
  /// set — the form used for net-to-input loads.
  sfg::Op op = sfg::Op::kCount;
  bool quant = false;
  std::int32_t dst = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
  fixpt::Format fmt{};

  static Instr apply(sfg::Op op, std::int32_t dst, std::int32_t a,
                     std::int32_t b = -1, std::int32_t c = -1,
                     const fixpt::Format& fmt = {}) {
    Instr i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.c = c;
    i.fmt = fmt;
    return i;
  }
  static Instr copy(std::int32_t dst, std::int32_t a) {
    Instr i;
    i.dst = dst;
    i.a = a;
    return i;
  }
  static Instr copy_q(std::int32_t dst, std::int32_t a, const fixpt::Format& fmt) {
    Instr i;
    i.quant = true;
    i.dst = dst;
    i.a = a;
    i.fmt = fmt;
    return i;
  }
};

using Tape = std::vector<Instr>;

/// Execute `tape` over the slot array. Slot values are the quantized
/// word-level values (doubles), identical to what interpreted evaluation
/// computes.
void exec(const Tape& tape, double* slots);

}  // namespace asicpp::sim
