// Linear operation tapes: the compiled-code simulation format.
//
// The paper's code generator regenerates an "application-specific and
// optimized compiled code simulator" from the SFG/FSM data structure
// (section 5, Fig 7). The tape is that simulator's executable form: each
// SFG flattens into straight-line, topologically-ordered operations over a
// flat slot array — no graph traversal, no virtual dispatch, no
// memoization stamps. The same tapes are pretty-printed by the C++ code
// generator in hdl/ to produce real compilable source.
#pragma once

#include <cstdint>
#include <vector>

#include "fixpt/format.h"

namespace asicpp::sim {

enum class OpC : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kNeg,
  kAnd,
  kOr,
  kXor,
  kNot,
  kShl,
  kShr,
  kMux,    // dst = a != 0 ? b : c
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kCast,   // dst = quantize(a, fmt)
  kCopy,   // dst = a
  kCopyQ,  // dst = quantize(a, fmt)
};

struct Instr {
  OpC op;
  std::int32_t dst = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
  fixpt::Format fmt{};
};

using Tape = std::vector<Instr>;

/// Execute `tape` over the slot array. Slot values are the quantized
/// word-level values (doubles), identical to what interpreted evaluation
/// computes.
void exec(const Tape& tape, double* slots);

}  // namespace asicpp::sim
