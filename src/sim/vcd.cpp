#include "sim/vcd.h"

#include <ostream>

namespace asicpp::sim {

namespace {

/// Short printable identifier for variable n (VCD id chars ! to ~).
std::string vcd_id(std::size_t n) {
  std::string id;
  do {
    id += static_cast<char>('!' + n % 94);
    n /= 94;
  } while (n != 0);
  return id;
}

}  // namespace

void write_vcd(std::ostream& os, const Recorder& rec, const VcdOptions& opt) {
  const auto& traces = rec.traces();
  os << "$date asicpp $end\n";
  os << "$version asicpp recorder $end\n";
  os << "$timescale " << opt.timescale << " $end\n";
  os << "$scope module " << opt.top_scope << " $end\n";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    os << "$var real 64 " << vcd_id(2 * i) << " " << traces[i].net << " $end\n";
    os << "$var wire 1 " << vcd_id(2 * i + 1) << " " << traces[i].net
       << "_valid $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<double> last_val(traces.size(), 0.0);
  std::vector<int> last_valid(traces.size(), -1);
  for (std::uint64_t c = 0; c < rec.cycles_recorded(); ++c) {
    bool stamped = false;
    const auto stamp = [&] {
      if (!stamped) {
        os << "#" << c * static_cast<std::uint64_t>(opt.cycle_ns) << "\n";
        stamped = true;
      }
    };
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const double v = traces[i].values[c];
      const int valid = traces[i].valid[c] ? 1 : 0;
      if (c == 0 || v != last_val[i]) {
        stamp();
        os << "r" << v << " " << vcd_id(2 * i) << "\n";
        last_val[i] = v;
      }
      if (valid != last_valid[i]) {
        stamp();
        os << valid << vcd_id(2 * i + 1) << "\n";
        last_valid[i] = valid;
      }
    }
  }
  os << "#" << rec.cycles_recorded() * static_cast<std::uint64_t>(opt.cycle_ns) << "\n";
}

}  // namespace asicpp::sim
