// Compiled-code system simulator.
//
// `CompiledSystem::compile` takes a system assembled for the (interpreted)
// cycle scheduler and regenerates it as flat tapes over a slot array — the
// paper's compiled-code simulation path (section 5): same clock-cycle
// semantics, drastically lower per-operation cost. Compilation snapshots
// the current register/FSM state, so a system can be compiled mid-run and
// continues bit-identically.
//
// Supported component kinds: FsmComponent, SfgComponent, DispatchComponent
// (fully compiled) and UntimedComponent (invoked as native C++, which is
// what "high-level description" means in the paper).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fixpt/format.h"
#include "opt/options.h"
#include "par/pool.h"
#include "sched/cyclesched.h"
#include "sched/fsmcomp.h"
#include "sched/run.h"
#include "sched/untimed.h"
#include "sim/tape.h"

namespace asicpp::jit {
class JitSystem;
struct Emitter;
}  // namespace asicpp::jit

namespace asicpp::batch {
class BatchedSystem;
}  // namespace asicpp::batch

namespace asicpp::sim {

class CompiledSystem {
 public:
  /// Translate every component and net of `sched` into tape form, running
  /// the optimization pass pipeline (`passes`) over each SFG's lowered IR
  /// before tape emission. PassOptions::raw() compiles the unoptimized
  /// graphs — the differential reference for the pass pipeline.
  /// Throws std::invalid_argument for unknown Component subclasses.
  static CompiledSystem compile(const sched::CycleScheduler& sched,
                                const opt::PassOptions& passes = {});

  /// Simulate one clock cycle. Throws sched::DeadlockError on
  /// combinational loops, like the interpreted scheduler; the SCHED-001
  /// post-mortem names the unfired components, the blocking dependency
  /// cycle, and last-known net values.
  void cycle();

  /// Simulate per `opts`: cycle count, watchdogs, schedule mode, hooks.
  /// The unified entry point shared with CycleScheduler / DynamicScheduler.
  RunResult run(const RunOptions& opts);

  std::uint64_t cycles() const { return cycles_; }

  /// Aggregated optimizer statistics across every compiled SFG (instruction
  /// counts before/after the pass pipeline, per-pass hit counters).
  const opt::PassStats& pass_stats() const { return pass_stats_; }

  // --- static schedule ---

  /// Phase-2 evaluation order policy for cycle() calls outside run().
  void set_schedule_mode(ScheduleMode m) { mode_ = m; }
  ScheduleMode schedule_mode() const { return mode_; }

  /// Worker lanes for the level-parallel phase-2 walk, for cycle() calls
  /// outside run() (see RunOptions::nthreads; 1 = serial, 0 = hardware).
  /// Bit-identical to serial: within one level every tape writes disjoint
  /// slots. Untimed components' native closures must be thread-safe to
  /// run under threads > 1 (the system tapes themselves always are).
  void set_threads(unsigned n) {
    threads_ = n == 0 ? par::Pool::hardware_lanes() : n;
  }
  unsigned threads() const { return threads_; }

  /// Levels at least this wide are partitioned across the pool.
  static constexpr std::size_t kMinParallelWidth = 4;
  /// True when compile() found a valid level order for the system.
  bool levelizable() const { return levelizable_; }
  /// Why levelization failed (empty when levelizable()).
  const std::string& schedule_reason() const { return sched_reason_; }
  /// Number of levels in the static order (0 when not levelizable).
  int schedule_levels() const { return sched_levels_; }

  // --- diagnostics & run watchdogs ---

  void attach_diagnostics(diag::DiagEngine& de) { diag_ = &de; }
  diag::DiagEngine& diagnostics() { return diag_ != nullptr ? *diag_ : own_diag_; }
  bool watchdog_tripped() const { return watchdog_tripped_; }

  /// Restore registers and FSM states to their reset values.
  void reset();

  /// Full architectural state (slots + FSM states + cycle count), opaque.
  struct Checkpoint {
    std::vector<double> slots;
    std::vector<std::int32_t> states;
    std::uint64_t cycles = 0;
  };
  /// Snapshot / restore the simulation state — long runs can be branched
  /// (e.g. explore a hold scenario, then rewind).
  Checkpoint save() const;
  void restore(const Checkpoint& cp);

  // --- serialized checkpoint/restore (see ckpt/snapshot.h) ---

  /// IR content hash computed at compile() time over the slot layout, net
  /// names, every emitted tape instruction, and the component/transition
  /// structure. Binds snapshots to one compiled image: a system compiled
  /// from a different spec — or with a different pass pipeline — hashes
  /// differently and rejects the snapshot with CKPT-003.
  std::uint64_t state_hash() const { return ir_hash_; }

  /// Serialize the full runtime state (slot array, net tokens, FSM states,
  /// untimed firing counters, cycle count) in the versioned ckpt format.
  void save_state(std::ostream& os) const;

  /// Restore a save_state() snapshot. Throws ckpt::SnapshotError with a
  /// CKPT-001..004 diagnostic on mismatch or corruption; on failure the
  /// simulator state is left exactly as it was.
  void restore_state(std::istream& is);

  /// Last token value seen on net `name`.
  double net_value(const std::string& name) const;
  /// Current value of register `name` (first registered with that name).
  double reg_value(const std::string& name) const;
  /// Override the value of an unbound input signal by name.
  void poke(const std::string& input_name, double v);

  /// Bytes of live simulation data structures (slots, tapes, tables) —
  /// the "process size" figure of Table 1.
  std::size_t footprint_bytes() const;

  /// Total tape instructions retired (throughput accounting).
  std::uint64_t ops_retired() const { return ops_.get(); }

  /// Emit a standalone C++ translation unit that reproduces this system's
  /// simulation (Fig 7's "C++ RT description"): the slot array, one
  /// straight-line function per tape, and a main() running `run_cycles`
  /// cycles, printing the value of each net in `watch_nets` per cycle.
  /// External pin drives are frozen at their current values. Systems with
  /// untimed components are rejected (native C++ closures have no image).
  void emit_cpp(std::ostream& os, const std::vector<std::string>& watch_nets,
                std::uint64_t run_cycles) const;

 private:
  // The JIT engine (src/jit) emits this system's tapes as native C++ and
  // drives the resulting shared object against the same slot arrays.
  friend class asicpp::jit::JitSystem;
  friend struct asicpp::jit::Emitter;
  // The batched evaluator (src/batch) replays this system's tapes over a
  // lanes-wide structure-of-arrays slot store, one instance per lane.
  friend class asicpp::batch::BatchedSystem;

  CompiledSystem() = default;

  struct SfgCode {
    Tape pre;   ///< input-independent ops (token production)
    Tape main;  ///< input-dependent ops + register next-values
    std::vector<Instr> load_inputs;  ///< net slot -> input slot copies
    std::vector<std::int32_t> required_nets;
    struct Push {
      std::int32_t net;
      std::int32_t src;
    };
    std::vector<Push> pre_pushes;
    std::vector<Push> main_pushes;
    struct Commit {
      std::int32_t dst;  ///< register current-value slot
      std::int32_t src;  ///< computed next-value slot
      fixpt::Format fmt;
      bool has_fmt;
    };
    std::vector<Commit> commits;
  };

  struct GuardedTransition {
    bool always = false;
    Tape guard;
    std::int32_t guard_slot = -1;
    std::vector<std::int32_t> sfgs;
    std::int32_t to = -1;
  };

  enum class Kind { kFsm, kSfg, kDispatch, kUntimed };

  struct Comp {
    Kind kind;
    std::string name;
    // kFsm
    std::vector<std::vector<GuardedTransition>> by_state;
    std::int32_t state = -1;
    std::int32_t initial = -1;
    const GuardedTransition* pending = nullptr;
    // kSfg / kDispatch
    std::int32_t solo_sfg = -1;
    std::int32_t instr_net = -1;
    std::map<long, std::int32_t> table;
    std::int32_t default_sfg = -1;
    std::int32_t selected = -1;
    // kUntimed
    sched::UntimedComponent* untimed = nullptr;
    std::vector<std::int32_t> in_nets;
    std::vector<std::int32_t> out_nets;
    // runtime
    bool fired = false;
  };

  struct RegInit {
    std::int32_t slot;
    double init;
  };

  struct InputRefresh {
    sfg::NodePtr node;
    std::int32_t slot;
  };

  /// One step of the static level order: a component firing, or — for
  /// dispatch components — the decode/token-production step preceding it.
  struct SchedSlot {
    std::int32_t comp;
    bool decode;
    int level;
  };

  class Builder;

  void build_schedule();
  void compute_ir_hash();
  void restore_state_impl(std::istream& is);
  bool comp_try_fire(Comp& c);
  void run_sfg_pre(std::int32_t sfg);
  bool run_sfg_main(std::int32_t sfg);  ///< false when inputs missing

  bool comp_blocked(const Comp& c) const;
  std::vector<std::int32_t> comp_waiting_nets(const Comp& c) const;
  std::vector<std::int32_t> comp_pending_outputs(const Comp& c) const;
  diag::Diagnostic deadlock_postmortem() const;

  // static structures
  std::vector<SfgCode> sfgs_;
  std::vector<Comp> comps_;
  std::vector<const sched::Net*> ext_nets_;      ///< external-drive sources
  std::vector<std::int32_t> ext_net_slots_;
  std::vector<std::int32_t> net_slots_;          ///< net id -> slot
  std::vector<std::string> net_names_;           ///< net id -> name
  std::map<std::string, std::int32_t> net_ids_;
  std::map<std::string, std::int32_t> reg_slots_;
  std::map<std::string, std::int32_t> input_slots_;
  std::vector<RegInit> reg_inits_;
  std::vector<InputRefresh> refresh_;
  int max_iters_ = 64;

  // static schedule (built once by compile())
  std::vector<SchedSlot> level_order_;
  std::vector<std::size_t> level_offsets_;  ///< level l = order [l, l+1)
  bool levelizable_ = false;
  int sched_levels_ = 0;
  std::string sched_reason_;
  std::uint64_t ir_hash_ = 0;  ///< computed once by compile()

  // runtime state
  std::vector<double> slots_;
  std::vector<std::uint8_t> net_token_;
  std::uint64_t cycles_ = 0;
  // Bumped from inside the level-parallel walk; RelaxedCounter keeps the
  // system copyable (compile() returns by value).
  par::RelaxedCounter ops_;
  par::RelaxedCounter fired_total_;
  std::uint64_t retry_passes_total_ = 0;
  std::uint64_t levelized_cycles_total_ = 0;
  ScheduleMode mode_ = ScheduleMode::kAuto;
  unsigned threads_ = 1;
  int sched_failures_ = 0;  // walk misses; >= 2 disables the level walk
  bool sched002_reported_ = false;
  bool profile_ = false;
  std::vector<std::pair<std::uint64_t, double>> prof_;  // per comps_ index
  diag::DiagEngine* diag_ = nullptr;
  diag::DiagEngine own_diag_;
  bool watchdog_tripped_ = false;
  opt::PassStats pass_stats_{};
};

}  // namespace asicpp::sim
