// Stimuli / response recording.
//
// "During system simulation, the system stimuli are also translated into
// test-benches that allow to verify the synthesis result of each
// component" (section 6). The Recorder hooks the cycle scheduler and logs
// the per-cycle value of selected nets; the HDL testbench generator and the
// netlist equivalence checker replay these traces.
//
// A Recorder is single-owner: the cycle-end hook appends to plain vectors,
// so one recorder belongs to one simulation thread. The hook asserts this
// (PAR-002) — parallel fuzz lanes each build their own scheduler and
// recorder, which is the supported pattern. Note the level-parallel walk
// (RunOptions::threads) is fine: cycle-end hooks always run on the thread
// driving the scheduler, never on pool lanes.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <thread>
#include <vector>

#include "sched/cyclesched.h"

namespace asicpp::sim {

class Recorder {
 public:
  /// Installs a cycle-end hook on `sched`. The Recorder must outlive the
  /// scheduler's remaining use.
  explicit Recorder(sched::CycleScheduler& sched);

  /// Start logging net `net_name` (its `last()` value each cycle).
  void watch(const std::string& net_name);

  struct Trace {
    std::string net;
    std::vector<double> values;  ///< one sample per recorded cycle
    std::vector<bool> valid;     ///< token present that cycle
  };

  const std::vector<Trace>& traces() const { return traces_; }
  const Trace& trace(const std::string& net_name) const;
  std::uint64_t cycles_recorded() const { return cycles_; }
  void clear();

  // --- checkpoint/restore (see ckpt/snapshot.h) ---

  /// Content hash over the watched-net list (order-sensitive).
  std::uint64_t state_hash() const;
  /// Serialize the recording position: every watched net's sample history
  /// and the recorded-cycle count.
  void save_state(std::ostream& os) const;
  /// Restore a save_state() snapshot. Throws ckpt::SnapshotError with a
  /// CKPT-001..004 diagnostic on mismatch or corruption; the traces are
  /// replaced only after the whole stream parsed.
  void restore_state(std::istream& is);

 private:
  sched::CycleScheduler* sched_;
  std::vector<const sched::Net*> nets_;
  std::vector<Trace> traces_;
  std::uint64_t cycles_ = 0;
  std::atomic<std::thread::id> owner_{};  ///< first recording thread
};

}  // namespace asicpp::sim
