#include "sim/recorder.h"

#include <stdexcept>

#include "diag/diag.h"

namespace asicpp::sim {

Recorder::Recorder(sched::CycleScheduler& sched) : sched_(&sched) {
  sched.on_cycle_end([this](std::uint64_t) {
    // Single-owner assertion: the first driving thread claims the
    // recorder; any other thread is misuse (it would race the trace
    // vectors) and gets a structured PAR-002 before touching them.
    const auto self = std::this_thread::get_id();
    std::thread::id expect{};
    if (!owner_.compare_exchange_strong(expect, self,
                                        std::memory_order_acq_rel) &&
        expect != self) {
      throw Error(diag::Diagnostic{
          diag::Severity::kFatal, "PAR-002", "recorder", diag::kNoCycle,
          "Recorder driven from a second thread; give each simulation "
          "thread its own scheduler and recorder",
          {}});
    }
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      traces_[i].values.push_back(nets_[i]->last().value());
      traces_[i].valid.push_back(nets_[i]->has_token());
    }
    ++cycles_;
  });
}

void Recorder::watch(const std::string& net_name) {
  nets_.push_back(&sched_->net(net_name));
  traces_.push_back(Trace{net_name, {}, {}});
}

const Recorder::Trace& Recorder::trace(const std::string& net_name) const {
  for (const auto& t : traces_) {
    if (t.net == net_name) return t;
  }
  throw std::out_of_range("Recorder::trace: net '" + net_name + "' not watched");
}

void Recorder::clear() {
  for (auto& t : traces_) {
    t.values.clear();
    t.valid.clear();
  }
  cycles_ = 0;
  owner_.store(std::thread::id{}, std::memory_order_relaxed);
}

}  // namespace asicpp::sim
