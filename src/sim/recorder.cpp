#include "sim/recorder.h"

#include <stdexcept>

#include "ckpt/snapshot.h"
#include "diag/diag.h"

namespace asicpp::sim {

Recorder::Recorder(sched::CycleScheduler& sched) : sched_(&sched) {
  sched.on_cycle_end([this](std::uint64_t) {
    // Single-owner assertion: the first driving thread claims the
    // recorder; any other thread is misuse (it would race the trace
    // vectors) and gets a structured PAR-002 before touching them.
    const auto self = std::this_thread::get_id();
    std::thread::id expect{};
    if (!owner_.compare_exchange_strong(expect, self,
                                        std::memory_order_acq_rel) &&
        expect != self) {
      throw Error(diag::Diagnostic{
          diag::Severity::kFatal, "PAR-002", "recorder", diag::kNoCycle,
          "Recorder driven from a second thread; give each simulation "
          "thread its own scheduler and recorder",
          {}});
    }
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      traces_[i].values.push_back(nets_[i]->last().value());
      traces_[i].valid.push_back(nets_[i]->has_token());
    }
    ++cycles_;
  });
}

void Recorder::watch(const std::string& net_name) {
  nets_.push_back(&sched_->net(net_name));
  traces_.push_back(Trace{net_name, {}, {}});
}

const Recorder::Trace& Recorder::trace(const std::string& net_name) const {
  for (const auto& t : traces_) {
    if (t.net == net_name) return t;
  }
  throw std::out_of_range("Recorder::trace: net '" + net_name + "' not watched");
}

void Recorder::clear() {
  for (auto& t : traces_) {
    t.values.clear();
    t.valid.clear();
  }
  cycles_ = 0;
  owner_.store(std::thread::id{}, std::memory_order_relaxed);
}

std::uint64_t Recorder::state_hash() const {
  ckpt::Hasher h;
  h.str("recorder");
  h.u32(static_cast<std::uint32_t>(traces_.size()));
  for (const Trace& t : traces_) h.str(t.net);
  return h.digest();
}

void Recorder::save_state(std::ostream& os) const {
  ckpt::Writer w(os);
  w.header(ckpt::EngineKind::kRecorder, state_hash(), cycles_);
  w.u32(static_cast<std::uint32_t>(traces_.size()));
  for (const Trace& t : traces_) {
    w.str(t.net);
    w.u32(static_cast<std::uint32_t>(t.values.size()));
    for (std::size_t i = 0; i < t.values.size(); ++i) {
      w.f64(t.values[i]);
      w.u8(t.valid[i] ? 1 : 0);
    }
  }
  w.end();
}

void Recorder::restore_state(std::istream& is) {
  ckpt::Reader r(is, "recorder");
  const std::uint64_t cyc = r.header(ckpt::EngineKind::kRecorder, state_hash());
  const std::size_t ntraces = r.count(1u << 20);
  if (ntraces != traces_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(ntraces) +
            " trace(s), this recorder watches " +
            std::to_string(traces_.size())});
  }
  std::vector<Trace> staged;
  staged.reserve(ntraces);
  for (const Trace& t : traces_) {
    const std::string name = r.str();
    if (name != t.net) {
      r.fail("CKPT-004", "truncated or corrupt snapshot stream",
             {"trace record names '" + name + "' where '" + t.net +
              "' was expected"});
    }
    Trace nt{t.net, {}, {}};
    const std::size_t n = r.count(1u << 26);
    nt.values.reserve(n);
    nt.valid.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      nt.values.push_back(r.f64());
      nt.valid.push_back(r.u8() != 0);
    }
    staged.push_back(std::move(nt));
  }
  r.end();
  traces_ = std::move(staged);
  cycles_ = cyc;
}

}  // namespace asicpp::sim
