#include "sim/tape.h"

#include "opt/semantics.h"

namespace asicpp::sim {

void exec(const Tape& tape, double* s) {
  for (const Instr& i : tape) {
    if (i.op == sfg::Op::kCount) {
      s[i.dst] = i.quant ? fixpt::quantize(s[i.a], i.fmt) : s[i.a];
      continue;
    }
    s[i.dst] = opt::apply_op_value(i.op, s[i.a], i.b >= 0 ? s[i.b] : 0.0,
                                   i.c >= 0 ? s[i.c] : 0.0, i.fmt);
  }
}

}  // namespace asicpp::sim
