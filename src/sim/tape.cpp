#include "sim/tape.h"

#include <cmath>

namespace asicpp::sim {

namespace {
long long as_int(double v) { return static_cast<long long>(std::llround(v)); }
}  // namespace

void exec(const Tape& tape, double* s) {
  for (const Instr& i : tape) {
    switch (i.op) {
      case OpC::kAdd: s[i.dst] = s[i.a] + s[i.b]; break;
      case OpC::kSub: s[i.dst] = s[i.a] - s[i.b]; break;
      case OpC::kMul: s[i.dst] = s[i.a] * s[i.b]; break;
      case OpC::kNeg: s[i.dst] = -s[i.a]; break;
      case OpC::kAnd: s[i.dst] = static_cast<double>(as_int(s[i.a]) & as_int(s[i.b])); break;
      case OpC::kOr: s[i.dst] = static_cast<double>(as_int(s[i.a]) | as_int(s[i.b])); break;
      case OpC::kXor: s[i.dst] = static_cast<double>(as_int(s[i.a]) ^ as_int(s[i.b])); break;
      case OpC::kNot: s[i.dst] = (as_int(s[i.a]) == 0) ? 1.0 : 0.0; break;
      case OpC::kShl: s[i.dst] = std::ldexp(s[i.a], static_cast<int>(s[i.b])); break;
      case OpC::kShr: s[i.dst] = std::ldexp(s[i.a], -static_cast<int>(s[i.b])); break;
      case OpC::kMux: s[i.dst] = (s[i.a] != 0.0) ? s[i.b] : s[i.c]; break;
      case OpC::kEq: s[i.dst] = (s[i.a] == s[i.b]) ? 1.0 : 0.0; break;
      case OpC::kNe: s[i.dst] = (s[i.a] != s[i.b]) ? 1.0 : 0.0; break;
      case OpC::kLt: s[i.dst] = (s[i.a] < s[i.b]) ? 1.0 : 0.0; break;
      case OpC::kLe: s[i.dst] = (s[i.a] <= s[i.b]) ? 1.0 : 0.0; break;
      case OpC::kGt: s[i.dst] = (s[i.a] > s[i.b]) ? 1.0 : 0.0; break;
      case OpC::kGe: s[i.dst] = (s[i.a] >= s[i.b]) ? 1.0 : 0.0; break;
      case OpC::kCast:
      case OpC::kCopyQ:
        s[i.dst] = fixpt::quantize(s[i.a], i.fmt);
        break;
      case OpC::kCopy: s[i.dst] = s[i.a]; break;
    }
  }
}

}  // namespace asicpp::sim
