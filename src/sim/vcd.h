// VCD waveform export from recorded traces.
//
// The design environment's answer to waveform debugging: any Recorder
// capture can be written as an IEEE-1364 value-change-dump and opened in
// a standard viewer next to the generated HDL. Word-level values are
// emitted as `real` variables (the simulator carries quantized values,
// not bit vectors).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/recorder.h"

namespace asicpp::sim {

struct VcdOptions {
  std::string timescale = "1ns";
  std::string top_scope = "asicpp";
  /// Nanoseconds per clock cycle in the dump.
  int cycle_ns = 10;
};

/// Write every watched trace of `rec` as a VCD. Invalid samples (no token
/// that cycle) are emitted as `x`... real variables cannot carry x, so
/// they repeat the previous value; a companion 1-bit `<net>_valid` wire
/// carries the token-present flag.
void write_vcd(std::ostream& os, const Recorder& rec, const VcdOptions& opt = {});

}  // namespace asicpp::sim
