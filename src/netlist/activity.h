// Switching-activity and dynamic-power estimation.
//
// The remaining column of a 1990s synthesis report: replay stimulus
// vectors, count output toggles per gate, and weight them by cell area as
// a (technology-free) dynamic power proxy. High-activity nets are the
// power hot spots a designer would gate.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/fault.h"  // Vector
#include "netlist/netlist.h"

namespace asicpp::netlist {

struct ActivityReport {
  std::uint64_t cycles = 0;
  std::uint64_t total_toggles = 0;
  /// Mean toggles per gate per cycle (0..1 for well-behaved logic).
  double average_activity = 0.0;
  /// Sum over gates of toggles * gate_area — the dynamic power proxy.
  double weighted_power = 0.0;
  /// Per-gate toggle counts (index = gate id).
  std::vector<std::uint64_t> per_gate;
};

/// Replay `vectors` (one per cycle) and measure toggling.
ActivityReport measure_activity(const Netlist& nl, const std::vector<Vector>& vectors);

}  // namespace asicpp::netlist
