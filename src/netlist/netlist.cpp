#include "netlist/netlist.h"

#include <sstream>
#include <stdexcept>

namespace asicpp::netlist {

int gate_arity(GateType t) {
  switch (t) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff:
      return 1;
    case GateType::kMux:
      return 3;
    default:
      return 2;
  }
}

const char* gate_name(GateType t) {
  switch (t) {
    case GateType::kInput: return "input";
    case GateType::kConst0: return "const0";
    case GateType::kConst1: return "const1";
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kOr: return "or";
    case GateType::kNand: return "nand";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    case GateType::kMux: return "mux";
    case GateType::kDff: return "dff";
  }
  return "?";
}

double gate_area(GateType t) {
  switch (t) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0.0;
    case GateType::kBuf:
    case GateType::kNot:
      return 0.7;
    case GateType::kNand:
    case GateType::kNor:
      return 1.0;
    case GateType::kAnd:
    case GateType::kOr:
      return 1.3;
    case GateType::kXor:
    case GateType::kXnor:
      return 2.3;
    case GateType::kMux:
      return 2.3;
    case GateType::kDff:
      return 5.3;
  }
  return 1.0;
}

std::int32_t Netlist::add_input(const std::string& name) {
  Gate g;
  g.type = GateType::kInput;
  gates_.push_back(g);
  const auto id = static_cast<std::int32_t>(gates_.size()) - 1;
  if (!inputs_.emplace(name, id).second)
    throw std::logic_error("Netlist: duplicate input '" + name + "'");
  return id;
}

std::int32_t Netlist::add_gate(GateType t, std::int32_t a, std::int32_t b,
                               std::int32_t c) {
  if (t == GateType::kInput || t == GateType::kDff)
    throw std::invalid_argument("Netlist::add_gate: use add_input/add_dff");
  const std::int32_t n = num_gates();
  const std::int32_t fan[3] = {a, b, c};
  for (int i = 0; i < gate_arity(t); ++i) {
    if (fan[i] < 0 || fan[i] >= n)
      throw std::out_of_range("Netlist::add_gate: bad fanin");
  }
  Gate g;
  g.type = t;
  g.in[0] = a;
  g.in[1] = b;
  g.in[2] = c;
  gates_.push_back(g);
  return n;
}

std::int32_t Netlist::add_dff(bool init) {
  Gate g;
  g.type = GateType::kDff;
  g.init = init;
  gates_.push_back(g);
  return static_cast<std::int32_t>(gates_.size()) - 1;
}

std::int32_t Netlist::add_placeholder() {
  Gate g;
  g.type = GateType::kBuf;
  gates_.push_back(g);
  return static_cast<std::int32_t>(gates_.size()) - 1;
}

void Netlist::connect_placeholder(std::int32_t buf, std::int32_t src) {
  Gate& g = gates_.at(static_cast<std::size_t>(buf));
  if (g.type != GateType::kBuf || g.in[0] >= 0)
    throw std::invalid_argument("Netlist::connect_placeholder: not an open buffer");
  if (src < 0 || src >= num_gates())
    throw std::out_of_range("Netlist::connect_placeholder: bad fanin");
  g.in[0] = src;
}

void Netlist::set_dff_input(std::int32_t dff, std::int32_t d) {
  Gate& g = gates_.at(static_cast<std::size_t>(dff));
  if (g.type != GateType::kDff)
    throw std::invalid_argument("Netlist::set_dff_input: not a dff");
  if (d < 0 || d >= num_gates())
    throw std::out_of_range("Netlist::set_dff_input: bad fanin");
  g.in[0] = d;
}

void Netlist::mark_output(const std::string& name, std::int32_t gate) {
  if (gate < 0 || gate >= num_gates())
    throw std::out_of_range("Netlist::mark_output: bad gate");
  if (!outputs_.emplace(name, gate).second)
    throw std::logic_error("Netlist: duplicate output '" + name + "'");
}

std::int32_t Netlist::num_comb() const {
  std::int32_t n = 0;
  for (const auto& g : gates_) {
    switch (g.type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
      case GateType::kDff:
        break;
      default:
        ++n;
    }
  }
  return n;
}

std::int32_t Netlist::num_dff() const {
  std::int32_t n = 0;
  for (const auto& g : gates_)
    if (g.type == GateType::kDff) ++n;
  return n;
}

double Netlist::area() const {
  double a = 0.0;
  for (const auto& g : gates_) a += gate_area(g.type);
  return a;
}

std::vector<std::int32_t> Netlist::levelize() const {
  // Kahn's algorithm over combinational edges; DFFs, inputs, constants are
  // sources (their outputs are available at cycle start).
  const auto n = static_cast<std::size_t>(num_gates());
  std::vector<int> pending(n, 0);
  std::vector<std::vector<std::int32_t>> fanout(n);
  auto is_source = [&](std::int32_t id) {
    const GateType t = gates_[static_cast<std::size_t>(id)].type;
    return t == GateType::kInput || t == GateType::kConst0 ||
           t == GateType::kConst1 || t == GateType::kDff;
  };
  for (std::int32_t id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[static_cast<std::size_t>(id)];
    if (is_source(id)) continue;
    for (int i = 0; i < gate_arity(g.type); ++i) {
      const std::int32_t f = g.in[i];
      if (f < 0)
        throw std::runtime_error("Netlist::levelize: unconnected fanin (open placeholder?)");
      if (!is_source(f)) {
        ++pending[static_cast<std::size_t>(id)];
        fanout[static_cast<std::size_t>(f)].push_back(id);
      }
    }
  }
  std::vector<std::int32_t> order;
  std::vector<std::int32_t> ready;
  for (std::int32_t id = 0; id < num_gates(); ++id) {
    if (!is_source(id) && pending[static_cast<std::size_t>(id)] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const std::int32_t id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const std::int32_t f : fanout[static_cast<std::size_t>(id)]) {
      if (--pending[static_cast<std::size_t>(f)] == 0) ready.push_back(f);
    }
  }
  std::size_t comb = 0;
  for (std::int32_t id = 0; id < num_gates(); ++id)
    if (!is_source(id)) ++comb;
  if (order.size() != comb)
    throw std::runtime_error("Netlist::levelize: combinational loop");
  return order;
}

std::string Netlist::to_verilog(const std::string& module_name) const {
  std::ostringstream os;
  auto wire = [](std::int32_t id) { return "w" + std::to_string(id); };
  os << "module " << module_name << " (clk";
  for (const auto& [name, _] : inputs_) os << ", \\" << name << " ";
  for (const auto& [name, _] : outputs_) os << ", \\" << name << " ";
  os << ");\n  input clk;\n";
  for (const auto& [name, _] : inputs_) os << "  input \\" << name << " ;\n";
  for (const auto& [name, _] : outputs_) os << "  output \\" << name << " ;\n";
  for (std::int32_t id = 0; id < num_gates(); ++id) {
    const GateType t = gates_[static_cast<std::size_t>(id)].type;
    os << (t == GateType::kDff ? "  reg " : "  wire ") << wire(id) << ";\n";
  }
  for (const auto& [name, id] : inputs_) os << "  assign " << wire(id) << " = \\" << name << " ;\n";
  for (std::int32_t id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[static_cast<std::size_t>(id)];
    switch (g.type) {
      case GateType::kInput: break;
      case GateType::kConst0: os << "  assign " << wire(id) << " = 1'b0;\n"; break;
      case GateType::kConst1: os << "  assign " << wire(id) << " = 1'b1;\n"; break;
      case GateType::kBuf: os << "  buf g" << id << " (" << wire(id) << ", " << wire(g.in[0]) << ");\n"; break;
      case GateType::kNot: os << "  not g" << id << " (" << wire(id) << ", " << wire(g.in[0]) << ");\n"; break;
      case GateType::kAnd:
      case GateType::kOr:
      case GateType::kNand:
      case GateType::kNor:
      case GateType::kXor:
      case GateType::kXnor:
        os << "  " << gate_name(g.type) << " g" << id << " (" << wire(id) << ", "
           << wire(g.in[0]) << ", " << wire(g.in[1]) << ");\n";
        break;
      case GateType::kMux:
        os << "  assign " << wire(id) << " = " << wire(g.in[0]) << " ? " << wire(g.in[1])
           << " : " << wire(g.in[2]) << ";\n";
        break;
      case GateType::kDff:
        os << "  initial " << wire(id) << " = 1'b" << (g.init ? 1 : 0) << ";\n";
        os << "  always @(posedge clk) " << wire(id) << " <= " << wire(g.in[0]) << ";\n";
        break;
    }
  }
  for (const auto& [name, id] : outputs_) os << "  assign \\" << name << "  = " << wire(id) << ";\n";
  os << "endmodule\n";
  return os.str();
}

int Netlist::depth() const {
  const auto order = levelize();
  std::vector<int> level(static_cast<std::size_t>(num_gates()), 0);
  int max_level = 0;
  for (const std::int32_t id : order) {
    const Gate& g = gates_[static_cast<std::size_t>(id)];
    int lv = 0;
    for (int i = 0; i < gate_arity(g.type); ++i)
      lv = std::max(lv, level[static_cast<std::size_t>(g.in[i])]);
    level[static_cast<std::size_t>(id)] = lv + 1;
    max_level = std::max(max_level, lv + 1);
  }
  return max_level;
}

}  // namespace asicpp::netlist
