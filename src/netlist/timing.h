// Static timing analysis over gate-level netlists.
//
// The synthesis strategy of Fig 8 hands netlists to gate-level
// optimization; this analyzer reports what the optimized result is worth
// in time. Two delay models share one engine:
//
//  * the historical unit-delay-per-gate-type model (`gate_delay`,
//    `DelayModel::unit()`) — dimensionless, normalized to NAND2 = 1.0 —
//    kept for the Table-1-style depth comparisons and as the default of
//    `analyze_timing(nl)`;
//  * a library-driven linear model (`DelayModel` populated from a Liberty
//    cell library by src/flow): per-cell intrinsic delay plus
//    load·slope, where a gate's load is the sum of the input-pin
//    capacitances of its fanouts (plus a default load on primary
//    outputs). Arrival times, per-endpoint slack, critical path with
//    cell names, area in library units, and an fmax estimate fall out.
//
// The report's endpoints are register data pins and primary outputs; the
// launch points are register outputs (clk-to-q) and primary inputs.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace asicpp::netlist {

/// Unit-delay-per-gate-type model (normalized to a NAND2 = 1.0).
double gate_delay(GateType t);

/// Timing/area characterization of the cell implementing one GateType.
struct CellTiming {
  std::string cell;           ///< library cell name (reports, path dumps)
  double area = 0.0;          ///< area in library units (µm² for real libs)
  double input_cap[3] = {0.0, 0.0, 0.0};  ///< per-pin input capacitance
  double intrinsic = 0.0;     ///< fixed delay component (clk-to-q for DFFs)
  double load_slope = 0.0;    ///< delay per unit of output load
};

/// Per-GateType delay/area model. `src/flow/liberty` builds one from a
/// parsed Liberty library; `unit()` reproduces the historical
/// `gate_delay`/`gate_area` numbers exactly (zero slope, zero caps), so
/// `analyze_timing(nl)` keeps its pre-library semantics bit for bit.
struct DelayModel {
  CellTiming cells[kNumGateTypes];
  /// Load added to every gate that drives a primary output.
  double output_load = 0.0;

  const CellTiming& of(GateType t) const {
    return cells[static_cast<int>(t)];
  }
  CellTiming& of(GateType t) { return cells[static_cast<int>(t)]; }

  static DelayModel unit();
};

/// One timing endpoint: a DFF data pin ("dff <id>") or a primary output
/// ("output <name>") with the data arrival time at it.
struct Endpoint {
  std::string name;
  double arrival = 0.0;
  double slack(double clock_period) const { return clock_period - arrival; }
};

struct TimingReport {
  double critical_delay = 0.0;          ///< longest comb path (delay units)
  std::vector<std::int32_t> critical_path;  ///< gate ids, source to sink
  std::string start_point;              ///< "input <name>" / "dff <id>"
  std::string end_point;                ///< "output <name>" / "dff <id>"
  /// Every endpoint, worst arrival first (ties by name). Empty for
  /// netlists with no registers or outputs.
  std::vector<Endpoint> endpoints;
  /// Sum of cell areas under the analysis model (library units; equals
  /// Netlist::area() under the unit model).
  double cell_area = 0.0;
  /// Slack per clock period; negative = violated.
  double slack(double clock_period) const { return clock_period - critical_delay; }
  /// Maximum clock frequency estimate in 1/delay-units (for the default
  /// ns-based library: GHz; multiply by 1e3 for MHz). 0 for an empty path.
  double fmax() const { return critical_delay > 0.0 ? 1.0 / critical_delay : 0.0; }
};

/// Analyze `nl` under the unit-delay model (historical behaviour).
/// Throws std::runtime_error on combinational loops.
TimingReport analyze_timing(const Netlist& nl);

/// Analyze `nl` under an explicit delay/area model (library-driven STA).
TimingReport analyze_timing(const Netlist& nl, const DelayModel& model);

/// Per-gate loads under `model`: fanout input caps plus the default
/// output load on primary-output drivers. Indexed by gate id.
std::vector<double> compute_loads(const Netlist& nl, const DelayModel& model);

/// Human-readable critical-path listing: one row per path gate with the
/// cell name, incremental delay, cumulative arrival, and driven load.
std::string format_critical_path(const Netlist& nl, const DelayModel& model,
                                 const TimingReport& rep);

}  // namespace asicpp::netlist
