// Static timing analysis over gate-level netlists.
//
// The synthesis strategy of Fig 8 hands netlists to gate-level
// optimization; this analyzer reports what the optimized result is worth
// in time: per-gate typed delays, arrival times, the critical path
// (register/input to register/output), and slack against a target clock.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace asicpp::netlist {

/// Unit-delay-per-gate-type model (normalized to a NAND2 = 1.0).
double gate_delay(GateType t);

struct TimingReport {
  double critical_delay = 0.0;          ///< longest comb path (delay units)
  std::vector<std::int32_t> critical_path;  ///< gate ids, source to sink
  std::string start_point;              ///< "input <name>" / "dff <id>"
  std::string end_point;                ///< "output <name>" / "dff <id>"
  /// Slack per clock period; negative = violated.
  double slack(double clock_period) const { return clock_period - critical_delay; }
};

/// Analyze `nl`. Throws std::runtime_error on combinational loops.
TimingReport analyze_timing(const Netlist& nl);

}  // namespace asicpp::netlist
