// Verification generation: equivalence checking of synthesized netlists.
//
// Fig 8's "verification generation" boxes: after synthesis, each component
// netlist is checked against the behavioural description by replaying
// stimuli. We provide random-vector sequential equivalence between two
// netlists with matching ports, and netlist-vs-reference-model checking
// where the model is any callable (typically the interpreted C++
// simulation of the same component).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "netlist/netlist.h"

namespace asicpp::netlist {

struct EquivResult {
  bool equal = true;
  std::uint64_t cycles_checked = 0;
  std::string mismatch;  ///< human-readable first divergence
};

/// Sequential random-simulation equivalence: both netlists get identical
/// random input streams for `cycles` cycles; all same-named outputs must
/// match every cycle. Ports must agree by name.
EquivResult check_equiv(const Netlist& a, const Netlist& b, int cycles,
                        std::uint32_t seed);

/// Reference model: called once per cycle with this cycle's input values,
/// returns the expected outputs for the same cycle (Mealy semantics,
/// evaluated before the clock edge).
using RefModel = std::function<std::map<std::string, bool>(
    const std::map<std::string, bool>& inputs)>;

/// Drive the netlist with random vectors and compare each cycle's outputs
/// against the model.
EquivResult check_against_model(const Netlist& nl, const RefModel& model,
                                int cycles, std::uint32_t seed);

/// Word-level helpers for bit-blasted buses named "name[i]".

/// Set bus `name` (LSB = name[0]) to the two's-complement of `value`.
template <typename Sim>
void set_bus(Sim& sim, const std::string& name, int width, long long value) {
  for (int i = 0; i < width; ++i)
    sim.set_input(name + "[" + std::to_string(i) + "]", ((value >> i) & 1) != 0);
}

/// Read bus `name` as (optionally sign-extended) integer.
template <typename Sim>
long long read_bus(const Sim& sim, const std::string& name, int width,
                   bool sign_extend) {
  unsigned long long v = 0;
  for (int i = 0; i < width; ++i) {
    if (sim.output(name + "[" + std::to_string(i) + "]"))
      v |= 1ULL << i;
  }
  if (sign_extend && width < 64 && ((v >> (width - 1)) & 1) != 0)
    v |= ~0ULL << width;
  return static_cast<long long>(v);
}

}  // namespace asicpp::netlist
