// Gate-level simulators.
//
// Two engines over the same netlist:
//  * LevelizedSim — compiled-style: gates evaluated once per cycle in
//    topological order. Fast reference engine for equivalence checks.
//  * EventSim — event-driven gate simulation with fanout propagation, the
//    stand-in for the "VHDL (netlist)" / "Verilog (netlist)" rows of
//    Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace asicpp::netlist {

class LevelizedSim {
 public:
  explicit LevelizedSim(const Netlist& nl);

  void set_input(const std::string& name, bool v);
  /// Evaluate combinational logic with current inputs (no clock edge).
  void settle();
  /// settle(), then latch every DFF — one clock cycle.
  void cycle();
  /// Fault-injection variants: gate `forced` is stuck at `fv` throughout
  /// (its computed value is overridden everywhere it is observed).
  void settle_with_force(std::int32_t forced, bool fv);
  void cycle_with_force(std::int32_t forced, bool fv);
  bool value(std::int32_t gate) const { return val_[static_cast<std::size_t>(gate)] != 0; }
  bool output(const std::string& name) const;
  void reset();

  std::uint64_t cycles() const { return cycles_; }
  std::size_t footprint_bytes() const;

 private:
  void eval_gate(std::int32_t id);
  void latch();

  const Netlist* nl_;
  std::vector<std::int32_t> order_;
  std::vector<std::uint8_t> val_;
  std::uint64_t cycles_ = 0;
};

class EventSim {
 public:
  explicit EventSim(const Netlist& nl);

  void set_input(const std::string& name, bool v);
  /// Propagate events until quiescent. Throws on oscillation.
  void settle(int max_waves = 10000);
  /// settle(), then latch DFFs and propagate their changes — one cycle.
  void cycle();
  bool value(std::int32_t gate) const { return val_[static_cast<std::size_t>(gate)] != 0; }
  bool output(const std::string& name) const;
  void reset();

  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t events() const { return events_; }
  std::size_t footprint_bytes() const;

 private:
  bool eval(std::int32_t id) const;
  void touch(std::int32_t id);

  const Netlist* nl_;
  std::vector<std::vector<std::int32_t>> fanout_;
  std::vector<std::uint8_t> val_;
  std::vector<std::uint8_t> queued_;
  std::vector<std::int32_t> wave_;
  std::uint64_t cycles_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace asicpp::netlist
