#include "netlist/timing.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace asicpp::netlist {

double gate_delay(GateType t) {
  switch (t) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0.0;
    case GateType::kBuf:
      return 0.6;
    case GateType::kNot:
      return 0.5;
    case GateType::kNand:
    case GateType::kNor:
      return 1.0;
    case GateType::kAnd:
    case GateType::kOr:
      return 1.4;
    case GateType::kXor:
    case GateType::kXnor:
      return 1.9;
    case GateType::kMux:
      return 1.8;
    case GateType::kDff:
      return 1.2;  // clk-to-q
  }
  return 1.0;
}

DelayModel DelayModel::unit() {
  DelayModel m;
  for (int i = 0; i < kNumGateTypes; ++i) {
    const auto t = static_cast<GateType>(i);
    CellTiming& c = m.cells[i];
    c.cell = gate_name(t);
    c.area = gate_area(t);
    c.intrinsic = gate_delay(t);
    // Zero caps and slope: loads never contribute, so the unit model
    // reproduces the historical fixed-delay arithmetic exactly.
  }
  return m;
}

std::vector<double> compute_loads(const Netlist& nl, const DelayModel& model) {
  std::vector<double> load(static_cast<std::size_t>(nl.num_gates()), 0.0);
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    for (int i = 0; i < gate_arity(g.type); ++i) {
      if (g.in[i] >= 0)
        load[static_cast<std::size_t>(g.in[i])] += model.of(g.type).input_cap[i];
    }
  }
  for (const auto& [name, id] : nl.outputs()) {
    (void)name;
    load[static_cast<std::size_t>(id)] += model.output_load;
  }
  return load;
}

TimingReport analyze_timing(const Netlist& nl) {
  return analyze_timing(nl, DelayModel::unit());
}

TimingReport analyze_timing(const Netlist& nl, const DelayModel& model) {
  const auto order = nl.levelize();
  const auto n = static_cast<std::size_t>(nl.num_gates());
  const std::vector<double> load = compute_loads(nl, model);

  // Per-gate delay is static once loads are known: intrinsic + slope·load.
  std::vector<double> delay(n, 0.0);
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
    const CellTiming& c = model.of(nl.gate(id).type);
    delay[static_cast<std::size_t>(id)] =
        c.intrinsic + c.load_slope * load[static_cast<std::size_t>(id)];
  }

  std::vector<double> arrival(n, 0.0);
  std::vector<std::int32_t> from(n, -1);

  // Sources launch at their own delay (clk-to-q for DFFs); inputs and
  // constants launch at 0.
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
    if (nl.gate(id).type == GateType::kDff)
      arrival[static_cast<std::size_t>(id)] = delay[static_cast<std::size_t>(id)];
  }

  for (const std::int32_t id : order) {
    const Gate& g = nl.gate(id);
    double worst = 0.0;
    std::int32_t worst_in = -1;
    for (int i = 0; i < gate_arity(g.type); ++i) {
      const double a = arrival[static_cast<std::size_t>(g.in[i])];
      if (a >= worst) {
        worst = a;
        worst_in = g.in[i];
      }
    }
    arrival[static_cast<std::size_t>(id)] = worst + delay[static_cast<std::size_t>(id)];
    from[static_cast<std::size_t>(id)] = worst_in;
  }

  // Endpoints: DFF data inputs and primary outputs.
  TimingReport rep;
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
    const CellTiming& c = model.of(nl.gate(id).type);
    rep.cell_area += c.area;
  }
  std::int32_t worst_end = -1;
  const auto consider = [&](std::int32_t src, const std::string& end_name) {
    if (src < 0) return;
    const double a = arrival[static_cast<std::size_t>(src)];
    rep.endpoints.push_back(Endpoint{end_name, a});
    if (a > rep.critical_delay) {
      rep.critical_delay = a;
      worst_end = src;
      rep.end_point = end_name;
    }
  };
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kDff && g.in[0] >= 0)
      consider(g.in[0], "dff " + std::to_string(id));
  }
  for (const auto& [name, id] : nl.outputs()) consider(id, "output " + name);
  std::stable_sort(rep.endpoints.begin(), rep.endpoints.end(),
                   [](const Endpoint& a, const Endpoint& b) {
                     if (a.arrival != b.arrival) return a.arrival > b.arrival;
                     return a.name < b.name;
                   });

  // Walk the path back to its source.
  for (std::int32_t p = worst_end; p >= 0; p = from[static_cast<std::size_t>(p)])
    rep.critical_path.push_back(p);
  std::reverse(rep.critical_path.begin(), rep.critical_path.end());
  if (!rep.critical_path.empty()) {
    const std::int32_t src = rep.critical_path.front();
    const GateType t = nl.gate(src).type;
    if (t == GateType::kDff) {
      rep.start_point = "dff " + std::to_string(src);
    } else {
      rep.start_point = "gate " + std::to_string(src);
      for (const auto& [name, id] : nl.inputs())
        if (id == src) rep.start_point = "input " + name;
    }
  }
  return rep;
}

std::string format_critical_path(const Netlist& nl, const DelayModel& model,
                                 const TimingReport& rep) {
  const std::vector<double> load = compute_loads(nl, model);
  std::ostringstream os;
  os << "critical path (" << rep.start_point << " -> " << rep.end_point
     << ", " << rep.critical_delay << " delay units):\n";
  os << "  gate        cell                         delay   arrival      load\n";
  double arrival = 0.0;
  for (const std::int32_t id : rep.critical_path) {
    const GateType t = nl.gate(id).type;
    const CellTiming& c = model.of(t);
    const double l = load[static_cast<std::size_t>(id)];
    double d = c.intrinsic + c.load_slope * l;
    if (t == GateType::kInput || t == GateType::kConst0 || t == GateType::kConst1)
      d = 0.0;  // sources launch at time 0
    arrival += d;
    char buf[160];
    std::snprintf(buf, sizeof buf, "  g%-9d %-28s %7.4f %9.4f %9.4f\n",
                  id, c.cell.c_str(), d, arrival, l);
    os << buf;
  }
  return os.str();
}

}  // namespace asicpp::netlist
