#include "netlist/timing.h"

#include <algorithm>

namespace asicpp::netlist {

double gate_delay(GateType t) {
  switch (t) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0.0;
    case GateType::kBuf:
      return 0.6;
    case GateType::kNot:
      return 0.5;
    case GateType::kNand:
    case GateType::kNor:
      return 1.0;
    case GateType::kAnd:
    case GateType::kOr:
      return 1.4;
    case GateType::kXor:
    case GateType::kXnor:
      return 1.9;
    case GateType::kMux:
      return 1.8;
    case GateType::kDff:
      return 1.2;  // clk-to-q
  }
  return 1.0;
}

TimingReport analyze_timing(const Netlist& nl) {
  const auto order = nl.levelize();
  const auto n = static_cast<std::size_t>(nl.num_gates());
  std::vector<double> arrival(n, 0.0);
  std::vector<std::int32_t> from(n, -1);

  // Sources launch at their own delay (clk-to-q for DFFs).
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
    const GateType t = nl.gate(id).type;
    if (t == GateType::kDff) arrival[static_cast<std::size_t>(id)] = gate_delay(t);
  }

  for (const std::int32_t id : order) {
    const Gate& g = nl.gate(id);
    double worst = 0.0;
    std::int32_t worst_in = -1;
    for (int i = 0; i < gate_arity(g.type); ++i) {
      const double a = arrival[static_cast<std::size_t>(g.in[i])];
      if (a >= worst) {
        worst = a;
        worst_in = g.in[i];
      }
    }
    arrival[static_cast<std::size_t>(id)] = worst + gate_delay(g.type);
    from[static_cast<std::size_t>(id)] = worst_in;
  }

  // Endpoints: DFF data inputs and primary outputs.
  TimingReport rep;
  std::int32_t worst_end = -1;
  const auto consider = [&](std::int32_t src, const std::string& end_name) {
    if (src < 0) return;
    const double a = arrival[static_cast<std::size_t>(src)];
    if (a > rep.critical_delay) {
      rep.critical_delay = a;
      worst_end = src;
      rep.end_point = end_name;
    }
  };
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kDff && g.in[0] >= 0)
      consider(g.in[0], "dff " + std::to_string(id));
  }
  for (const auto& [name, id] : nl.outputs()) consider(id, "output " + name);

  // Walk the path back to its source.
  for (std::int32_t p = worst_end; p >= 0; p = from[static_cast<std::size_t>(p)])
    rep.critical_path.push_back(p);
  std::reverse(rep.critical_path.begin(), rep.critical_path.end());
  if (!rep.critical_path.empty()) {
    const std::int32_t src = rep.critical_path.front();
    const GateType t = nl.gate(src).type;
    if (t == GateType::kDff) {
      rep.start_point = "dff " + std::to_string(src);
    } else {
      rep.start_point = "gate " + std::to_string(src);
      for (const auto& [name, id] : nl.inputs())
        if (id == src) rep.start_point = "input " + name;
    }
  }
  return rep;
}

}  // namespace asicpp::netlist
