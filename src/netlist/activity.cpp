#include "netlist/activity.h"

#include "netlist/netsim.h"

namespace asicpp::netlist {

ActivityReport measure_activity(const Netlist& nl, const std::vector<Vector>& vectors) {
  ActivityReport rep;
  rep.per_gate.assign(static_cast<std::size_t>(nl.num_gates()), 0);
  LevelizedSim sim(nl);

  std::vector<bool> prev(static_cast<std::size_t>(nl.num_gates()), false);
  bool first = true;
  for (const auto& v : vectors) {
    for (const auto& [name, bit] : v) sim.set_input(name, bit);
    sim.settle();
    if (!first) {
      for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
        const bool cur = sim.value(id);
        if (cur != prev[static_cast<std::size_t>(id)]) {
          ++rep.per_gate[static_cast<std::size_t>(id)];
          ++rep.total_toggles;
          rep.weighted_power += gate_area(nl.gate(id).type);
        }
      }
    }
    for (std::int32_t id = 0; id < nl.num_gates(); ++id)
      prev[static_cast<std::size_t>(id)] = sim.value(id);
    first = false;
    sim.cycle();
    ++rep.cycles;
  }
  if (rep.cycles > 1 && nl.num_gates() > 0) {
    rep.average_activity =
        static_cast<double>(rep.total_toggles) /
        (static_cast<double>(rep.cycles - 1) * static_cast<double>(nl.num_gates()));
  }
  return rep;
}

}  // namespace asicpp::netlist
