#include "netlist/equiv.h"

#include <random>

#include "netlist/netsim.h"

namespace asicpp::netlist {

EquivResult check_equiv(const Netlist& a, const Netlist& b, int cycles,
                        std::uint32_t seed) {
  EquivResult r;
  for (const auto& [name, _] : a.inputs()) {
    if (!b.inputs().count(name)) {
      r.equal = false;
      r.mismatch = "input '" + name + "' missing in second netlist";
      return r;
    }
  }
  for (const auto& [name, _] : a.outputs()) {
    if (!b.outputs().count(name)) {
      r.equal = false;
      r.mismatch = "output '" + name + "' missing in second netlist";
      return r;
    }
  }

  LevelizedSim sa(a), sb(b);
  std::mt19937 rng(seed);
  for (int c = 0; c < cycles; ++c) {
    for (const auto& [name, _] : a.inputs()) {
      const bool v = (rng() & 1) != 0;
      sa.set_input(name, v);
      sb.set_input(name, v);
    }
    sa.settle();
    sb.settle();
    for (const auto& [name, _] : a.outputs()) {
      if (sa.output(name) != sb.output(name)) {
        r.equal = false;
        r.mismatch = "cycle " + std::to_string(c) + ": output '" + name +
                     "' differs (" + (sa.output(name) ? "1" : "0") + " vs " +
                     (sb.output(name) ? "1" : "0") + ")";
        r.cycles_checked = static_cast<std::uint64_t>(c);
        return r;
      }
    }
    sa.cycle();
    sb.cycle();
  }
  r.cycles_checked = static_cast<std::uint64_t>(cycles);
  return r;
}

EquivResult check_against_model(const Netlist& nl, const RefModel& model,
                                int cycles, std::uint32_t seed) {
  EquivResult r;
  LevelizedSim sim(nl);
  std::mt19937 rng(seed);
  for (int c = 0; c < cycles; ++c) {
    std::map<std::string, bool> in;
    for (const auto& [name, _] : nl.inputs()) {
      const bool v = (rng() & 1) != 0;
      in[name] = v;
      sim.set_input(name, v);
    }
    sim.settle();
    const auto expect = model(in);
    for (const auto& [name, v] : expect) {
      if (sim.output(name) != v) {
        r.equal = false;
        r.mismatch = "cycle " + std::to_string(c) + ": output '" + name +
                     "' = " + (sim.output(name) ? "1" : "0") + ", model says " +
                     (v ? "1" : "0");
        r.cycles_checked = static_cast<std::uint64_t>(c);
        return r;
      }
    }
    sim.cycle();
  }
  r.cycles_checked = static_cast<std::uint64_t>(cycles);
  return r;
}

}  // namespace asicpp::netlist
