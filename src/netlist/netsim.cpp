#include "netlist/netsim.h"

#include <stdexcept>

namespace asicpp::netlist {

namespace {

bool compute(GateType t, bool a, bool b, bool c, bool cur) {
  switch (t) {
    case GateType::kConst0: return false;
    case GateType::kConst1: return true;
    case GateType::kBuf: return a;
    case GateType::kNot: return !a;
    case GateType::kAnd: return a && b;
    case GateType::kOr: return a || b;
    case GateType::kNand: return !(a && b);
    case GateType::kNor: return !(a || b);
    case GateType::kXor: return a != b;
    case GateType::kXnor: return a == b;
    case GateType::kMux: return a ? b : c;
    case GateType::kInput:
    case GateType::kDff:
      return cur;  // held externally / latched
  }
  return false;
}

}  // namespace

// --- LevelizedSim ---

LevelizedSim::LevelizedSim(const Netlist& nl)
    : nl_(&nl), order_(nl.levelize()), val_(static_cast<std::size_t>(nl.num_gates()), 0) {
  reset();
}

void LevelizedSim::reset() {
  for (std::int32_t id = 0; id < nl_->num_gates(); ++id) {
    const Gate& g = nl_->gate(id);
    val_[static_cast<std::size_t>(id)] =
        (g.type == GateType::kDff && g.init) || g.type == GateType::kConst1 ? 1 : 0;
  }
  cycles_ = 0;
}

void LevelizedSim::set_input(const std::string& name, bool v) {
  const auto it = nl_->inputs().find(name);
  if (it == nl_->inputs().end())
    throw std::out_of_range("LevelizedSim: no input '" + name + "'");
  val_[static_cast<std::size_t>(it->second)] = v ? 1 : 0;
}

void LevelizedSim::eval_gate(std::int32_t id) {
  const Gate& g = nl_->gate(id);
  const auto get = [&](int i) {
    return g.in[i] >= 0 && val_[static_cast<std::size_t>(g.in[i])] != 0;
  };
  val_[static_cast<std::size_t>(id)] =
      compute(g.type, get(0), get(1), get(2), value(id)) ? 1 : 0;
}

void LevelizedSim::settle() {
  for (const std::int32_t id : order_) eval_gate(id);
}

void LevelizedSim::latch() {
  // Sample D values simultaneously, then commit.
  std::vector<std::pair<std::int32_t, std::uint8_t>> next;
  for (std::int32_t id = 0; id < nl_->num_gates(); ++id) {
    const Gate& g = nl_->gate(id);
    if (g.type == GateType::kDff) {
      if (g.in[0] < 0) throw std::runtime_error("LevelizedSim: unconnected dff");
      next.emplace_back(id, val_[static_cast<std::size_t>(g.in[0])]);
    }
  }
  for (const auto& [id, v] : next) val_[static_cast<std::size_t>(id)] = v;
  ++cycles_;
}

void LevelizedSim::cycle() {
  settle();
  latch();
}

void LevelizedSim::settle_with_force(std::int32_t forced, bool fv) {
  // Sources (inputs, constants, DFF outputs) are not in the order; pin the
  // site first so downstream logic sees the stuck value either way.
  val_[static_cast<std::size_t>(forced)] = fv ? 1 : 0;
  for (const std::int32_t id : order_) {
    if (id == forced) {
      val_[static_cast<std::size_t>(id)] = fv ? 1 : 0;
      continue;
    }
    eval_gate(id);
  }
}

void LevelizedSim::cycle_with_force(std::int32_t forced, bool fv) {
  settle_with_force(forced, fv);
  latch();
  val_[static_cast<std::size_t>(forced)] = fv ? 1 : 0;  // a stuck DFF stays stuck
}

bool LevelizedSim::output(const std::string& name) const {
  const auto it = nl_->outputs().find(name);
  if (it == nl_->outputs().end())
    throw std::out_of_range("LevelizedSim: no output '" + name + "'");
  return value(it->second);
}

std::size_t LevelizedSim::footprint_bytes() const {
  return order_.capacity() * sizeof(std::int32_t) + val_.capacity() +
         static_cast<std::size_t>(nl_->num_gates()) * sizeof(Gate);
}

// --- EventSim ---

EventSim::EventSim(const Netlist& nl)
    : nl_(&nl),
      fanout_(static_cast<std::size_t>(nl.num_gates())),
      val_(static_cast<std::size_t>(nl.num_gates()), 0),
      queued_(static_cast<std::size_t>(nl.num_gates()), 0) {
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kDff) continue;  // latched, not driven by waves
    for (int i = 0; i < gate_arity(g.type); ++i)
      fanout_[static_cast<std::size_t>(g.in[i])].push_back(id);
  }
  reset();
}

void EventSim::reset() {
  for (std::int32_t id = 0; id < nl_->num_gates(); ++id) {
    const Gate& g = nl_->gate(id);
    val_[static_cast<std::size_t>(id)] =
        (g.type == GateType::kDff && g.init) || g.type == GateType::kConst1 ? 1 : 0;
  }
  // Kick every combinational gate once so initial values propagate.
  wave_.clear();
  std::fill(queued_.begin(), queued_.end(), 0);
  for (std::int32_t id = 0; id < nl_->num_gates(); ++id) {
    const GateType t = nl_->gate(id).type;
    if (t != GateType::kInput && t != GateType::kDff) touch(id);
  }
  cycles_ = 0;
}

bool EventSim::eval(std::int32_t id) const {
  const Gate& g = nl_->gate(id);
  const auto get = [&](int i) {
    return g.in[i] >= 0 && val_[static_cast<std::size_t>(g.in[i])] != 0;
  };
  return compute(g.type, get(0), get(1), get(2), value(id));
}

void EventSim::touch(std::int32_t id) {
  if (!queued_[static_cast<std::size_t>(id)]) {
    queued_[static_cast<std::size_t>(id)] = 1;
    wave_.push_back(id);
  }
}

void EventSim::set_input(const std::string& name, bool v) {
  const auto it = nl_->inputs().find(name);
  if (it == nl_->inputs().end())
    throw std::out_of_range("EventSim: no input '" + name + "'");
  const auto id = static_cast<std::size_t>(it->second);
  if ((val_[id] != 0) != v) {
    val_[id] = v ? 1 : 0;
    for (const std::int32_t f : fanout_[id]) touch(f);
  }
}

void EventSim::settle(int max_waves) {
  for (int w = 0; w < max_waves; ++w) {
    if (wave_.empty()) return;
    std::vector<std::int32_t> cur;
    cur.swap(wave_);
    for (const std::int32_t id : cur) queued_[static_cast<std::size_t>(id)] = 0;
    for (const std::int32_t id : cur) {
      const bool v = eval(id);
      ++events_;
      if (v != value(id)) {
        val_[static_cast<std::size_t>(id)] = v ? 1 : 0;
        for (const std::int32_t f : fanout_[static_cast<std::size_t>(id)]) touch(f);
      }
    }
  }
  throw std::runtime_error("EventSim: oscillation (no settle)");
}

void EventSim::cycle() {
  settle();
  std::vector<std::pair<std::int32_t, bool>> next;
  for (std::int32_t id = 0; id < nl_->num_gates(); ++id) {
    const Gate& g = nl_->gate(id);
    if (g.type == GateType::kDff) {
      if (g.in[0] < 0) throw std::runtime_error("EventSim: unconnected dff");
      next.emplace_back(id, val_[static_cast<std::size_t>(g.in[0])] != 0);
    }
  }
  for (const auto& [id, v] : next) {
    if (v != value(id)) {
      val_[static_cast<std::size_t>(id)] = v ? 1 : 0;
      for (const std::int32_t f : fanout_[static_cast<std::size_t>(id)]) touch(f);
    }
  }
  settle();
  ++cycles_;
}

bool EventSim::output(const std::string& name) const {
  const auto it = nl_->outputs().find(name);
  if (it == nl_->outputs().end())
    throw std::out_of_range("EventSim: no output '" + name + "'");
  return value(it->second);
}

std::size_t EventSim::footprint_bytes() const {
  std::size_t bytes = val_.capacity() + queued_.capacity() +
                      wave_.capacity() * sizeof(std::int32_t) +
                      static_cast<std::size_t>(nl_->num_gates()) * sizeof(Gate);
  for (const auto& f : fanout_) bytes += f.capacity() * sizeof(std::int32_t);
  return bytes;
}

}  // namespace asicpp::netlist
