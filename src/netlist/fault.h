// Single stuck-at fault simulation.
//
// Grades the vectors the testbench generator replays (Fig 8's
// "verification generation"): for each single stuck-at-0/1 fault on a
// gate output, does the vector set produce an observable difference at a
// primary output? Reports fault coverage the way test engineers read it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace asicpp::netlist {

struct FaultReport {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  double coverage() const {
    return total_faults == 0 ? 1.0
                             : static_cast<double>(detected) / static_cast<double>(total_faults);
  }
  /// Undetected faults as (gate id, stuck value).
  std::vector<std::pair<std::int32_t, bool>> undetected;
};

/// One stimulus cycle: values for every primary input.
using Vector = std::map<std::string, bool>;

/// Serial fault simulation: replay `vectors` (applied per cycle, clocking
/// between them) against the fault-free design and each faulty machine;
/// a fault is detected when any primary output differs in any cycle.
FaultReport fault_simulate(const Netlist& nl, const std::vector<Vector>& vectors);

/// Convenience: `count` pseudo-random vectors.
std::vector<Vector> random_vectors(const Netlist& nl, int count, std::uint32_t seed);

}  // namespace asicpp::netlist
