#include "netlist/fault.h"

#include <random>

#include "netlist/netsim.h"

namespace asicpp::netlist {

std::vector<Vector> random_vectors(const Netlist& nl, int count, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<Vector> out;
  for (int i = 0; i < count; ++i) {
    Vector v;
    for (const auto& [name, _] : nl.inputs()) v[name] = (rng() & 1) != 0;
    out.push_back(std::move(v));
  }
  return out;
}

FaultReport fault_simulate(const Netlist& nl, const std::vector<Vector>& vectors) {
  FaultReport rep;

  // Golden responses.
  std::vector<std::vector<bool>> golden;
  {
    LevelizedSim sim(nl);
    for (const auto& v : vectors) {
      for (const auto& [name, bit] : v) sim.set_input(name, bit);
      sim.settle();
      std::vector<bool> outs;
      for (const auto& [name, _] : nl.outputs()) outs.push_back(sim.output(name));
      golden.push_back(std::move(outs));
      sim.cycle();
    }
  }

  // Fault sites: outputs of combinational gates and DFFs.
  for (std::int32_t id = 0; id < nl.num_gates(); ++id) {
    const GateType t = nl.gate(id).type;
    if (t == GateType::kInput || t == GateType::kConst0 || t == GateType::kConst1)
      continue;
    for (const bool sv : {false, true}) {
      ++rep.total_faults;
      LevelizedSim sim(nl);
      bool detected = false;
      for (std::size_t c = 0; c < vectors.size() && !detected; ++c) {
        for (const auto& [name, bit] : vectors[c]) sim.set_input(name, bit);
        sim.settle_with_force(id, sv);
        std::size_t oi = 0;
        for (const auto& [name, _] : nl.outputs()) {
          if (sim.output(name) != golden[c][oi]) {
            detected = true;
            break;
          }
          ++oi;
        }
        sim.cycle_with_force(id, sv);
      }
      if (detected)
        ++rep.detected;
      else
        rep.undetected.emplace_back(id, sv);
    }
  }
  return rep;
}

}  // namespace asicpp::netlist
