// Gate-level netlists.
//
// The synthesis back-end (our Cathedral-3 / Synopsys DC stand-in) produces
// these netlists, the Table 1 "netlist" simulation rows run on them, and
// the verification generator checks them against the behavioural C++
// description. Gates are 1-bit; word-level ports are bit-blasted buses
// named "port[i]".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asicpp::netlist {

enum class GateType : std::uint8_t {
  kInput,   ///< primary input
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kMux,   ///< in0 ? in1 : in2
  kDff,   ///< D flip-flop: in0 = D; output is Q
};

/// Number of GateType enumerators (for per-type lookup tables).
inline constexpr int kNumGateTypes = 13;

/// Number of fanins for a gate type.
int gate_arity(GateType t);
const char* gate_name(GateType t);
/// Area in equivalent 2-input NAND gates (rough standard-cell weights).
double gate_area(GateType t);

struct Gate {
  GateType type = GateType::kConst0;
  std::int32_t in[3] = {-1, -1, -1};
  bool init = false;  ///< DFF reset value
};

class Netlist {
 public:
  /// Create a primary input named `name`; returns its gate id.
  std::int32_t add_input(const std::string& name);
  /// Create a gate; fanins must already exist.
  std::int32_t add_gate(GateType t, std::int32_t a = -1, std::int32_t b = -1,
                        std::int32_t c = -1);
  /// Create a D flip-flop with reset value `init`. The D fanin may be set
  /// later via `set_dff_input` to allow feedback.
  std::int32_t add_dff(bool init);
  void set_dff_input(std::int32_t dff, std::int32_t d);

  /// A buffer whose fanin is connected later — the forward-reference hook
  /// the system linker uses to wire component-level feedback. Every
  /// placeholder must be connected before simulation/levelization.
  std::int32_t add_placeholder();
  void connect_placeholder(std::int32_t buf, std::int32_t src);

  void mark_output(const std::string& name, std::int32_t gate);

  std::int32_t num_gates() const { return static_cast<std::int32_t>(gates_.size()); }
  const Gate& gate(std::int32_t id) const { return gates_.at(static_cast<std::size_t>(id)); }
  const std::map<std::string, std::int32_t>& inputs() const { return inputs_; }
  const std::map<std::string, std::int32_t>& outputs() const { return outputs_; }

  /// Count of combinational gates / flip-flops (excludes inputs/constants).
  std::int32_t num_comb() const;
  std::int32_t num_dff() const;
  /// Total area in equivalent gates.
  double area() const;

  /// Topological order of combinational gates (inputs/DFF outputs are
  /// sources). Throws std::runtime_error on combinational loops.
  std::vector<std::int32_t> levelize() const;

  /// Longest combinational path length in gates (logic depth).
  int depth() const;

  const std::vector<Gate>& gates() const { return gates_; }

  /// Structural gate-level Verilog (one primitive instance per gate) —
  /// the "netlist source" format whose bulk Table 1 reports.
  std::string to_verilog(const std::string& module_name) const;

 private:
  std::vector<Gate> gates_;
  std::map<std::string, std::int32_t> inputs_;
  std::map<std::string, std::int32_t> outputs_;
};

}  // namespace asicpp::netlist
