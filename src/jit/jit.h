// In-process JIT compiled engine.
//
// Closes the gap EXPERIMENTS.md measures between the in-memory tape
// simulator and the same generated C++ rebuilt with `c++ -O2` as a
// standalone process: `JitSystem` emits the optimized lowered IR as a C++
// translation unit (the cppgen emitter's function-per-tape shape, but
// state-struct-parameterized instead of file-global), compiles it to a
// shared object with the host toolchain, `dlopen`s it, and drives it
// in-process over the *live* CompiledSystem slot arrays. External pin
// drives, pokes, probes, snapshots and the deadlock post-mortem all keep
// working because the native code shares the tape engine's state — only
// the per-cycle evaluation is swapped for compiled code.
//
// Compiled artifacts live in the shared content-addressed artifact store
// (pipeline/artifact.h) under stage "jit", keyed by an FNV-1a content hash
// of the emitted source (which embeds the lowered IR), the compiler
// command, the ABI revision, the cache format version and the store
// revision — repeated runs of the same design (the fuzzer's common case,
// and every concurrent daemon session of one design) pay compilation once.
//
// Every failure degrades gracefully to the interpreted tape (native()
// returns false, traces stay bit-identical), with a structured diagnostic:
//
//   JIT-001 host toolchain missing (compiler not found)
//   JIT-002 generated source failed to compile
//   JIT-003 compiled artifact failed to load (dlopen/dlsym/ABI/IR-hash)
//   JIT-004 stale or corrupt cache entry discarded (recompiled)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "diag/diag.h"
#include "opt/options.h"
#include "sched/run.h"
#include "sim/compiled.h"

namespace asicpp::jit {

/// Cache format revision: participates in the artifact cache key, so a
/// layout change invalidates old entries instead of misloading them.
inline constexpr std::uint32_t kJitFormatVersion = 1;
/// ABI revision of the state struct / exported symbols; the loaded object
/// must report the same value.
inline constexpr std::uint32_t kJitAbi = 1;

/// The state block handed to every generated function. Mirrored textually
/// in the emitted source; any change here bumps kJitAbi.
struct JitState {
  double* S = nullptr;         ///< CompiledSystem slot array
  unsigned char* T = nullptr;  ///< net token flags
  int* state = nullptr;        ///< per-component FSM state
  int* fired = nullptr;        ///< per-component fired flag
  int* sel = nullptr;          ///< per-component selected dispatch SFG
  int* pending = nullptr;      ///< per-component pending FSM transition
  int deadlock = 0;   ///< 0 none, 1 combinational, 2 unknown opcode, 3 host ex
  int dl_comp = 0;    ///< component index for deadlock == 2
  long long dl_op = 0;  ///< offending opcode for deadlock == 2
  void* host = nullptr;
  /// Host callback firing untimed component `comp` (native C++ closures
  /// stay on the host side). Returns 1 fired, 0 inputs missing, -1 the
  /// closure threw (the host rethrows after the cycle call unwinds).
  int (*fire_untimed)(void* host, int comp) = nullptr;
};

struct JitOptions {
  /// Host compiler driver.
  std::string cxx = "c++";
  /// Extra flags between the driver and `-shared -fPIC`.
  std::string flags = "-O2 -std=c++17 -w";
  /// Artifact-store directory. Empty = the shared store's env chain:
  /// $ASICPP_STORE_DIR, else $ASICPP_JIT_CACHE (legacy name), else
  /// $XDG_CACHE_HOME/asicpp-store, else $HOME/.cache/asicpp-store, else
  /// /tmp/asicpp-store (see pipeline/artifact.h).
  std::string cache_dir;
  /// Recompile even when a cached artifact exists.
  bool force_recompile = false;
  /// JIT-00x diagnostics sink (falls back to the compiled system's engine).
  diag::DiagEngine* diagnostics = nullptr;
};

class JitSystem {
 public:
  /// Compile `sched` to tape form (exactly CompiledSystem::compile), emit
  /// the optimized IR as C++, and build/load the native cycle kernel.
  /// Never throws for toolchain problems — on any JIT failure the instance
  /// falls back to interpreting the tape and native() reports false.
  static JitSystem compile(const sched::CycleScheduler& sched,
                           const opt::PassOptions& passes = {},
                           const JitOptions& jopts = {});

  /// Simulate one clock cycle (native kernel, or the tape fallback).
  /// Semantics identical to CompiledSystem::cycle(), including
  /// sched::DeadlockError with the SCHED-001 post-mortem.
  void cycle();

  /// Unified engine entry point: cycles, watchdogs, schedule mode,
  /// threads, checkpoint cadence — same contract as CompiledSystem::run.
  RunResult run(const RunOptions& opts);

  std::uint64_t cycles() const { return cs_.cycles(); }

  // --- JIT status ---

  /// True when the native kernel is loaded and driving cycle().
  bool native() const { return native_; }
  /// True when compile() reused a cached artifact (no compiler run).
  bool from_cache() const { return from_cache_; }
  /// Wall-clock seconds spent in the external compiler (0 on cache hit).
  double compile_seconds() const { return compile_seconds_; }
  /// Path of the loaded shared object (empty when !native()).
  const std::string& artifact_path() const { return artifact_path_; }

  // --- pass-through surface (same behaviour as CompiledSystem) ---

  void set_schedule_mode(ScheduleMode m) {
    mode_ = m;
    cs_.set_schedule_mode(m);
  }
  ScheduleMode schedule_mode() const { return mode_; }
  void set_threads(unsigned n);
  unsigned threads() const { return threads_; }
  void attach_diagnostics(diag::DiagEngine& de) { cs_.attach_diagnostics(de); }
  diag::DiagEngine& diagnostics() { return cs_.diagnostics(); }
  const opt::PassStats& pass_stats() const { return cs_.pass_stats(); }
  bool levelizable() const { return cs_.levelizable(); }

  double net_value(const std::string& name) const { return cs_.net_value(name); }
  double reg_value(const std::string& name) const { return cs_.reg_value(name); }
  void poke(const std::string& input_name, double v) { cs_.poke(input_name, v); }
  std::size_t footprint_bytes() const { return cs_.footprint_bytes(); }
  void reset();

  /// Snapshots share the compiled tape's format, engine kind and IR
  /// content hash: a JIT snapshot restores into a CompiledSystem of the
  /// same design (and vice versa), and a snapshot of a different design or
  /// pass pipeline is rejected with CKPT-003.
  std::uint64_t state_hash() const { return cs_.state_hash(); }
  void save_state(std::ostream& os);
  void restore_state(std::istream& is);

 private:
  JitSystem() = default;

  JitState make_state();
  void sync_states_to_cs();
  void sync_states_from_cs();
  void sync_runtime_to_cs();
  void native_cycle();
  bool load(const std::string& path, std::string* why);
  static int fire_untimed_cb(void* host, int comp);

  sim::CompiledSystem cs_;
  // Per-component driver arrays handed to the generated code (mirrors of
  // Comp::state/fired/selected/pending, int-typed for a stable ABI).
  std::vector<int> states_;
  std::vector<int> fired_;
  std::vector<int> sel_;
  std::vector<int> pending_;

  bool native_ = false;
  bool from_cache_ = false;
  double compile_seconds_ = 0.0;
  std::string artifact_path_;
  std::shared_ptr<void> so_;  ///< dlopen handle (dlclose on last owner)
  // Exported entry points of the loaded object.
  int (*fn_cycle_)(JitState*, int) = nullptr;
  void (*fn_begin_)(JitState*) = nullptr;
  int (*fn_try_slot_)(JitState*, int) = nullptr;
  int (*fn_finish_)(JitState*) = nullptr;

  ScheduleMode mode_ = ScheduleMode::kAuto;
  unsigned threads_ = 1;
  std::exception_ptr untimed_ex_;
  std::shared_ptr<std::mutex> ex_mu_;  ///< guards untimed_ex_ under threads
};

/// Resolve the artifact-store directory per JitOptions::cache_dir rules —
/// a thin wrapper over pipeline::ArtifactStore::resolve_dir (exposed for
/// tests and the CI smoke tool).
std::string cache_dir(const JitOptions& jopts = {});

}  // namespace asicpp::jit
