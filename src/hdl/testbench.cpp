#include "hdl/testbench.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace asicpp::hdl {

namespace {

int tb_width(const fixpt::Format& f) { return f.wl + (f.is_signed ? 0 : 1); }

long long tb_mant(double v, const fixpt::Format& f) {
  return static_cast<long long>(std::llround(std::ldexp(v, f.frac_bits())));
}

}  // namespace

std::string generate_testbench(Dialect d, const TestbenchSpec& spec,
                               const sim::Recorder& rec) {
  const auto cycles = rec.cycles_recorded();
  if (cycles == 0) throw std::invalid_argument("generate_testbench: no recorded cycles");
  std::ostringstream os;
  const std::string tb = spec.dut_name + "_tb";

  if (d == Dialect::kVhdl) {
    os << "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
    os << "entity " << tb << " is\nend " << tb << ";\n\n";
    os << "architecture bench of " << tb << " is\n";
    os << "  signal clk : std_logic := '0';\n  signal rst : std_logic := '1';\n";
    for (const auto& n : spec.drive_nets)
      os << "  signal " << n << " : signed(" << tb_width(spec.net_fmt.at(n)) - 1
         << " downto 0);\n";
    for (const auto& n : spec.check_nets)
      os << "  signal " << n << " : signed(" << tb_width(spec.net_fmt.at(n)) - 1
         << " downto 0);\n";
    os << "  type ivec is array (0 to " << cycles - 1 << ") of integer;\n";
    for (const auto& n : spec.drive_nets) {
      const auto& t = rec.trace(n);
      os << "  constant stim_" << n << " : ivec := (";
      for (std::size_t i = 0; i < cycles; ++i)
        os << (i ? ", " : "") << tb_mant(t.values[i], spec.net_fmt.at(n));
      os << ");\n";
    }
    for (const auto& n : spec.check_nets) {
      const auto& t = rec.trace(n);
      os << "  constant gold_" << n << " : ivec := (";
      for (std::size_t i = 0; i < cycles; ++i)
        os << (i ? ", " : "") << tb_mant(t.values[i], spec.net_fmt.at(n));
      os << ");\n";
    }
    os << "begin\n";
    os << "  clk <= not clk after 5 ns;\n";
    os << "  dut : entity work." << spec.dut_name << " port map (clk => clk, rst => rst";
    for (const auto& n : spec.drive_nets) os << ", " << n << " => " << n;
    for (const auto& n : spec.check_nets) os << ", " << n << " => " << n;
    os << ");\n";
    os << "  stimuli : process\n  begin\n";
    os << "    rst <= '1';\n    wait until rising_edge(clk);\n    rst <= '0';\n";
    os << "    for i in 0 to " << cycles - 1 << " loop\n";
    for (const auto& n : spec.drive_nets)
      os << "      " << n << " <= to_signed(stim_" << n << "(i), " << n << "'length);\n";
    os << "      wait until rising_edge(clk);\n";
    for (const auto& n : spec.check_nets)
      os << "      assert to_integer(" << n << ") = gold_" << n
         << "(i) report \"mismatch on " << n << "\" severity error;\n";
    os << "    end loop;\n    report \"testbench done\" severity note;\n    wait;\n";
    os << "  end process;\nend bench;\n";
  } else {
    os << "`timescale 1ns/1ps\nmodule " << tb << ";\n";
    os << "  reg clk = 0;\n  reg rst = 1;\n  always #5 clk = ~clk;\n";
    for (const auto& n : spec.drive_nets)
      os << "  reg signed [" << tb_width(spec.net_fmt.at(n)) - 1 << ":0] " << n << ";\n";
    for (const auto& n : spec.check_nets)
      os << "  wire signed [" << tb_width(spec.net_fmt.at(n)) - 1 << ":0] " << n << ";\n";
    for (const auto& n : spec.drive_nets) {
      const auto& t = rec.trace(n);
      os << "  reg signed [63:0] stim_" << n << " [0:" << cycles - 1 << "];\n";
      os << "  initial begin\n";
      for (std::size_t i = 0; i < cycles; ++i)
        os << "    stim_" << n << "[" << i << "] = " << tb_mant(t.values[i], spec.net_fmt.at(n))
           << ";\n";
      os << "  end\n";
    }
    for (const auto& n : spec.check_nets) {
      const auto& t = rec.trace(n);
      os << "  reg signed [63:0] gold_" << n << " [0:" << cycles - 1 << "];\n";
      os << "  initial begin\n";
      for (std::size_t i = 0; i < cycles; ++i)
        os << "    gold_" << n << "[" << i << "] = " << tb_mant(t.values[i], spec.net_fmt.at(n))
           << ";\n";
      os << "  end\n";
    }
    os << "  " << spec.dut_name << " dut (.clk(clk), .rst(rst)";
    for (const auto& n : spec.drive_nets) os << ", ." << n << "(" << n << ")";
    for (const auto& n : spec.check_nets) os << ", ." << n << "(" << n << ")";
    os << ");\n";
    os << "  integer i;\n  initial begin\n    rst = 1;\n    @(posedge clk);\n    rst = 0;\n";
    os << "    for (i = 0; i < " << cycles << "; i = i + 1) begin\n";
    for (const auto& n : spec.drive_nets) os << "      " << n << " = stim_" << n << "[i];\n";
    os << "      @(posedge clk);\n";
    for (const auto& n : spec.check_nets)
      os << "      if (" << n << " !== gold_" << n << "[i][" << tb_width(spec.net_fmt.at(n)) - 1
         << ":0]) $display(\"mismatch on " << n << " at %0d\", i);\n";
    os << "    end\n    $display(\"testbench done\");\n    $finish;\n  end\nendmodule\n";
  }
  return os.str();
}

}  // namespace asicpp::hdl
