#include "hdl/model.h"

#include <cctype>
#include <stdexcept>

#include "opt/ir.h"
#include "opt/passes.h"
#include "sfg/sig.h"

namespace asicpp::hdl {

std::string sanitize(const std::string& s) {
  std::string r;
  for (const char c : s)
    r += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  if (r.empty() || std::isdigit(static_cast<unsigned char>(r[0])) != 0) r = "s_" + r;
  return r;
}

namespace {

void merge_out_fmt(CompModel& m, const std::string& port, const fixpt::Format& f) {
  const auto it = m.out_fmt.find(port);
  if (it == m.out_fmt.end()) {
    m.out_fmt.emplace(port, f);
    m.out_ports.push_back(port);
    return;
  }
  fixpt::Format& g = it->second;
  const int frac = std::max(g.frac_bits(), f.frac_bits());
  g.is_signed = g.is_signed || f.is_signed;
  g.iwl = std::max(g.iwl, f.iwl);
  g.wl = g.iwl + frac + (g.is_signed ? 1 : 0);
}

/// Run the optimizer pipeline over `s` and, when it changed the graph,
/// materialize a rebuilt clone owned by the model. Returns the view the
/// generators should consume (the clone, or `s` when untouched).
sfg::Sfg* optimize_clone(CompModel& m, sfg::Sfg& s, const opt::PassOptions& passes) {
  if (!passes.lower) return &s;
  opt::LoweredSfg l = opt::lower(s);
  opt::run_passes(l, passes);
  // Deterministic per-graph prefix for pass-created nodes: the sanitized
  // SFG name plus the collection index (two same-named graphs must not
  // collide in the emitted HDL).
  const auto nodes =
      opt::rebuild(l, sanitize(s.name()) + "_" + std::to_string(m.opt_map.size()) + "_t");
  bool changed = false;
  for (const auto& o : l.outputs)
    changed = changed || nodes[static_cast<std::size_t>(o.slot)] != o.node;
  for (std::size_t i = 0; i < l.assigns.size(); ++i) {
    changed = changed || nodes[static_cast<std::size_t>(l.assigns[i].slot)] !=
                             s.reg_assigns()[i].expr;
  }
  if (!changed) return &s;
  auto clone = std::make_unique<sfg::Sfg>(s.name());
  for (const auto& i : s.inputs()) clone->in(sfg::Sig(i));
  for (const auto& o : l.outputs)
    clone->out(o.port, sfg::Sig(nodes[static_cast<std::size_t>(o.slot)]));
  for (const auto& a : l.assigns)
    clone->assign_node(a.reg, nodes[static_cast<std::size_t>(a.slot)]);
  sfg::Sfg* view = clone.get();
  m.owned.push_back(std::move(clone));
  return view;
}

sfg::Sfg* collect_sfg(CompModel& m, sfg::Sfg& s, const opt::PassOptions& passes) {
  const auto it = m.opt_map.find(&s);
  if (it != m.opt_map.end()) return it->second;
  sfg::Sfg* view = optimize_clone(m, s, passes);
  m.opt_map.emplace(&s, view);
  m.sfgs.push_back(view);
  view->analyze();
  sfg::infer_formats(*view, m.fmts);
  for (const auto& i : view->inputs()) {
    bool seen = false;
    for (const auto& k : m.inputs) seen = seen || (k == i);
    if (!seen) m.inputs.push_back(i);
  }
  for (const auto& o : view->outputs())
    merge_out_fmt(m, o.port, m.fmts.at(o.expr.get()));
  for (const auto& a : view->reg_assigns()) {
    bool seen = false;
    for (const auto& k : m.regs) seen = seen || (k == a.reg);
    if (!seen) m.regs.push_back(a.reg);
  }
  return view;
}

}  // namespace

CompModel build_component_model(sched::Component& comp,
                                const opt::PassOptions& passes) {
  CompModel m;
  m.name = sanitize(comp.name());
  if (auto* f = dynamic_cast<sched::FsmComponent*>(&comp)) {
    m.kind = CompModel::Kind::kFsm;
    m.fsm = &f->machine();
    for (const auto& t : m.fsm->transitions()) {
      for (auto* s : t.actions) collect_sfg(m, *s, passes);
      if (!t.guards.empty())
        sfg::infer_format(t.guards.front().expr().node(), m.fmts);
    }
    for (const auto& [p, n] : f->output_bindings()) m.out_binds.emplace(p, n);
    for (const auto& b : f->input_bindings()) m.in_binds.emplace_back(b.node, b.net);
  } else if (auto* s = dynamic_cast<sched::SfgComponent*>(&comp)) {
    m.kind = CompModel::Kind::kSfg;
    collect_sfg(m, s->graph(), passes);
    for (const auto& [p, n] : s->output_bindings()) m.out_binds.emplace(p, n);
    for (const auto& b : s->input_bindings()) m.in_binds.emplace_back(b.node, b.net);
  } else if (auto* d = dynamic_cast<sched::DispatchComponent*>(&comp)) {
    m.kind = CompModel::Kind::kDispatch;
    m.instr_port = sanitize("instr_" + d->instruction_net().name());
    for (const auto& [op, g] : d->instruction_table())
      m.table.emplace(op, collect_sfg(m, *g, passes));
    if (d->default_instruction() != nullptr)
      m.dflt = collect_sfg(m, *d->default_instruction(), passes);
    for (const auto& [p, n] : d->output_bindings()) m.out_binds.emplace(p, n);
    for (const auto& b : d->input_bindings()) m.in_binds.emplace_back(b.node, b.net);
  } else {
    throw std::invalid_argument("build_component_model: untimed component '" +
                                comp.name() + "' has no structural image");
  }
  return m;
}

}  // namespace asicpp::hdl
