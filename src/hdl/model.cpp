#include "hdl/model.h"

#include <cctype>
#include <stdexcept>

namespace asicpp::hdl {

std::string sanitize(const std::string& s) {
  std::string r;
  for (const char c : s)
    r += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  if (r.empty() || std::isdigit(static_cast<unsigned char>(r[0])) != 0) r = "s_" + r;
  return r;
}

namespace {

void merge_out_fmt(CompModel& m, const std::string& port, const fixpt::Format& f) {
  const auto it = m.out_fmt.find(port);
  if (it == m.out_fmt.end()) {
    m.out_fmt.emplace(port, f);
    m.out_ports.push_back(port);
    return;
  }
  fixpt::Format& g = it->second;
  const int frac = std::max(g.frac_bits(), f.frac_bits());
  g.is_signed = g.is_signed || f.is_signed;
  g.iwl = std::max(g.iwl, f.iwl);
  g.wl = g.iwl + frac + (g.is_signed ? 1 : 0);
}

void collect_sfg(CompModel& m, sfg::Sfg& s) {
  for (auto* known : m.sfgs)
    if (known == &s) return;
  m.sfgs.push_back(&s);
  s.analyze();
  sfg::infer_formats(s, m.fmts);
  for (const auto& i : s.inputs()) {
    bool seen = false;
    for (const auto& k : m.inputs) seen = seen || (k == i);
    if (!seen) m.inputs.push_back(i);
  }
  for (const auto& o : s.outputs()) merge_out_fmt(m, o.port, m.fmts.at(o.expr.get()));
  for (const auto& a : s.reg_assigns()) {
    bool seen = false;
    for (const auto& k : m.regs) seen = seen || (k == a.reg);
    if (!seen) m.regs.push_back(a.reg);
  }
}

}  // namespace

CompModel build_component_model(sched::Component& comp) {
  CompModel m;
  m.name = sanitize(comp.name());
  if (auto* f = dynamic_cast<sched::FsmComponent*>(&comp)) {
    m.kind = CompModel::Kind::kFsm;
    m.fsm = &f->machine();
    for (const auto& t : m.fsm->transitions()) {
      for (auto* s : t.actions) collect_sfg(m, *s);
      if (!t.guards.empty())
        sfg::infer_format(t.guards.front().expr().node(), m.fmts);
    }
    for (const auto& [p, n] : f->output_bindings()) m.out_binds.emplace(p, n);
    for (const auto& b : f->input_bindings()) m.in_binds.emplace_back(b.node, b.net);
  } else if (auto* s = dynamic_cast<sched::SfgComponent*>(&comp)) {
    m.kind = CompModel::Kind::kSfg;
    collect_sfg(m, s->graph());
    for (const auto& [p, n] : s->output_bindings()) m.out_binds.emplace(p, n);
    for (const auto& b : s->input_bindings()) m.in_binds.emplace_back(b.node, b.net);
  } else if (auto* d = dynamic_cast<sched::DispatchComponent*>(&comp)) {
    m.kind = CompModel::Kind::kDispatch;
    m.instr_port = sanitize("instr_" + d->instruction_net().name());
    for (const auto& [op, g] : d->instruction_table()) {
      collect_sfg(m, *g);
      m.table.emplace(op, g);
    }
    if (d->default_instruction() != nullptr) {
      collect_sfg(m, *d->default_instruction());
      m.dflt = d->default_instruction();
    }
    for (const auto& [p, n] : d->output_bindings()) m.out_binds.emplace(p, n);
    for (const auto& b : d->input_bindings()) m.in_binds.emplace_back(b.node, b.net);
  } else {
    throw std::invalid_argument("build_component_model: untimed component '" +
                                comp.name() + "' has no structural image");
  }
  return m;
}

}  // namespace asicpp::hdl
