// HDL testbench generation from recorded simulation stimuli.
//
// "Verification test-benches can be generated automatically in
// correspondence with the C++ simulation" (section 1, section 6). The
// recorded per-cycle net traces become constant stimulus/expectation
// tables; the bench drives the DUT's inputs and asserts its outputs every
// clock cycle.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hdl/hdlgen.h"
#include "sim/recorder.h"

namespace asicpp::hdl {

struct TestbenchSpec {
  std::string dut_name;
  std::vector<std::string> drive_nets;  ///< recorded nets driven as inputs
  std::vector<std::string> check_nets;  ///< recorded nets asserted as outputs
  /// Width and fractional bits of each net's HDL vector.
  std::map<std::string, fixpt::Format> net_fmt;
};

/// Generate a self-checking testbench replaying `rec`'s traces.
std::string generate_testbench(Dialect d, const TestbenchSpec& spec,
                               const sim::Recorder& rec);

}  // namespace asicpp::hdl
