#include "hdl/hdlgen.h"

#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "hdl/model.h"
#include "sched/untimed.h"
#include "sfg/wordlen.h"

namespace asicpp::hdl {

using fixpt::Format;
using sfg::FormatMap;
using sfg::Node;
using sfg::NodePtr;
using sfg::Op;

namespace {

/// Bit width of the HDL vector for a format: everything is carried as
/// `signed`; unsigned formats get one headroom bit.
int hdl_width(const Format& f) { return f.wl + (f.is_signed ? 0 : 1); }

long long mantissa_of(const Node* n, const Format& f) {
  const double scaled = std::ldexp(n->value.value(), f.frac_bits());
  return static_cast<long long>(std::llround(scaled));
}

/// Dialect-aware text emission for one component.
class Writer {
 public:
  Writer(Dialect d, CompModel m) : d_(d), m_(std::move(m)) {}

  HdlComponent emit();

 private:
  const Format& fmt(const NodePtr& n) const { return m_.fmts.at(n.get()); }
  int width(const NodePtr& n) const { return hdl_width(fmt(n)); }

  std::string ref(const NodePtr& n) const;
  std::string literal(long long mant, int w) const;
  /// Operand aligned to `frac` fractional bits in a `w`-bit context.
  std::string aligned(const NodePtr& n, int frac, int w) const;
  std::string quantized(const NodePtr& src, const Format& to) const;
  void emit_node(const NodePtr& n, std::ostream& os,
                 std::unordered_set<const Node*>& done);
  void emit_decl(std::ostream& os, const std::string& name, int w) const;
  void emit_assignments(std::ostream& os, sfg::Sfg& s, const std::string& ind);

  Dialect d_;
  CompModel m_;
};

std::string Writer::literal(long long mant, int w) const {
  std::ostringstream os;
  if (d_ == Dialect::kVhdl) {
    if (mant > 2147483647LL || mant < -2147483648LL)
      throw sfg::FormatError("VHDL integer literal out of range");
    os << "to_signed(" << mant << ", " << w << ")";
  } else {
    if (mant < 0)
      os << "-" << w << "'sd" << -mant;
    else
      os << w << "'sd" << mant;
  }
  return os.str();
}

std::string Writer::ref(const NodePtr& n) const {
  switch (n->op) {
    case Op::kInput:
      return sanitize(n->name);
    case Op::kReg:
      return "r_" + sanitize(n->name);
    case Op::kConst:
      return literal(mantissa_of(n.get(), fmt(n)), width(n));
    default:
      // Optimizer-created nodes carry a deterministic name; everything else
      // falls back to the node id (stable within one generation).
      return n->name.empty() ? "n" + std::to_string(n->id) : sanitize(n->name);
  }
}

std::string Writer::aligned(const NodePtr& n, int frac, int w) const {
  const int d = frac - fmt(n).frac_bits();
  std::ostringstream os;
  if (d_ == Dialect::kVhdl) {
    if (d == 0)
      os << "resize(" << ref(n) << ", " << w << ")";
    else
      os << "shift_left(resize(" << ref(n) << ", " << w << "), " << d << ")";
  } else {
    // Verilog: context extension covers the resize; shifts stay explicit.
    if (d == 0)
      os << ref(n);
    else
      os << "(" << ref(n) << " <<< " << d << ")";
  }
  return os.str();
}

std::string Writer::quantized(const NodePtr& src, const Format& to) const {
  const Format& from = fmt(src);
  const int drop = from.frac_bits() - to.frac_bits();
  const int w = hdl_width(to);
  std::ostringstream os;
  if (d_ == Dialect::kVhdl) {
    os << "quantize(" << ref(src) << ", " << drop << ", "
       << (to.quant == fixpt::Quant::kRound ? "true" : "false") << ", "
       << (to.ovf == fixpt::Overflow::kSaturate ? "true" : "false") << ", " << w << ")";
  } else {
    // Verilog: inline truncate/saturate with literal bounds.
    const long long maxm = static_cast<long long>(
        std::llround(std::ldexp(to.max_value(), to.frac_bits())));
    const long long minm = static_cast<long long>(
        std::llround(std::ldexp(to.min_value(), to.frac_bits())));
    const std::string x = ref(src);
    std::string shifted;
    if (drop > 0) {
      if (to.quant == fixpt::Quant::kRound) {
        // round half away from zero
        shifted = "((" + x + " >= 0) ? ((" + x + " + (1 <<< " + std::to_string(drop - 1) +
                  ")) >>> " + std::to_string(drop) + ") : (-((-" + x + " + (1 <<< " +
                  std::to_string(drop - 1) + ")) >>> " + std::to_string(drop) + ")))";
      } else {
        shifted = "(" + x + " >>> " + std::to_string(drop) + ")";
      }
    } else if (drop < 0) {
      shifted = "(" + x + " <<< " + std::to_string(-drop) + ")";
    } else {
      shifted = x;
    }
    if (to.ovf == fixpt::Overflow::kSaturate) {
      os << "((" << shifted << ") > " << maxm << " ? " << literal(maxm, w) << " : ("
         << shifted << ") < " << minm << " ? " << literal(minm, w) << " : (" << shifted
         << "))";
    } else {
      os << shifted;
    }
  }
  return os.str();
}

void Writer::emit_decl(std::ostream& os, const std::string& name, int w) const {
  if (d_ == Dialect::kVhdl)
    os << "  signal " << name << " : signed(" << w - 1 << " downto 0);\n";
  else
    os << "  wire signed [" << w - 1 << ":0] " << name << ";\n";
}

void Writer::emit_node(const NodePtr& n, std::ostream& os,
                       std::unordered_set<const Node*>& done) {
  switch (n->op) {
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
      return;
    default:
      break;
  }
  if (!done.insert(n.get()).second) return;
  for (const auto& a : n->args) emit_node(a, os, done);

  const Format& f = fmt(n);
  const int w = hdl_width(f);
  const std::string name = ref(n);
  const bool vhdl = d_ == Dialect::kVhdl;
  const std::string lhs = vhdl ? ("  " + name + " <= ") : ("  assign " + name + " = ");
  const std::string eol = ";\n";

  const auto frac = f.frac_bits();
  switch (n->op) {
    case Op::kAdd:
      os << lhs << aligned(n->args[0], frac, w) << " + " << aligned(n->args[1], frac, w) << eol;
      break;
    case Op::kSub:
      os << lhs << aligned(n->args[0], frac, w) << " - " << aligned(n->args[1], frac, w) << eol;
      break;
    case Op::kMul:
      if (vhdl)
        os << lhs << "resize(" << ref(n->args[0]) << " * " << ref(n->args[1]) << ", " << w
           << ")" << eol;
      else
        os << lhs << ref(n->args[0]) << " * " << ref(n->args[1]) << eol;
      break;
    case Op::kNeg:
      os << lhs << "-" << aligned(n->args[0], frac, w) << eol;
      break;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor: {
      const char* sym = n->op == Op::kAnd ? (vhdl ? "and" : "&")
                        : n->op == Op::kOr ? (vhdl ? "or" : "|")
                                           : (vhdl ? "xor" : "^");
      os << lhs << aligned(n->args[0], frac, w) << " " << sym << " "
         << aligned(n->args[1], frac, w) << eol;
      break;
    }
    case Op::kNot:
      if (vhdl)
        os << lhs << literal(1, w) << " when " << ref(n->args[0]) << " = 0 else "
           << literal(0, w) << eol;
      else
        os << lhs << "(" << ref(n->args[0]) << " == 0) ? " << literal(1, w) << " : "
           << literal(0, w) << eol;
      break;
    case Op::kShl: {
      const int sh = static_cast<int>(n->args[1]->value.value());
      if (vhdl)
        os << lhs << "shift_left(resize(" << ref(n->args[0]) << ", " << w << "), " << sh
           << ")" << eol;
      else
        os << lhs << ref(n->args[0]) << " <<< " << sh << eol;
      break;
    }
    case Op::kShr:
      // Pure binary-point move: the mantissa is unchanged.
      if (vhdl)
        os << lhs << "resize(" << ref(n->args[0]) << ", " << w << ")" << eol;
      else
        os << lhs << ref(n->args[0]) << eol;
      break;
    case Op::kMux:
      if (vhdl)
        os << lhs << aligned(n->args[1], frac, w) << " when " << ref(n->args[0])
           << " /= 0 else " << aligned(n->args[2], frac, w) << eol;
      else
        os << lhs << "(" << ref(n->args[0]) << " != 0) ? " << aligned(n->args[1], frac, w)
           << " : " << aligned(n->args[2], frac, w) << eol;
      break;
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      const Format& fa = fmt(n->args[0]);
      const Format& fb = fmt(n->args[1]);
      const int cf = std::max(fa.frac_bits(), fb.frac_bits());
      const int cw = std::max(hdl_width(fa) + cf - fa.frac_bits(),
                              hdl_width(fb) + cf - fb.frac_bits()) +
                     1;
      const char* sym = n->op == Op::kEq   ? (vhdl ? "=" : "==")
                        : n->op == Op::kNe ? "/="
                        : n->op == Op::kLt ? "<"
                        : n->op == Op::kLe ? "<="
                        : n->op == Op::kGt ? ">"
                                           : ">=";
      if (!vhdl && n->op == Op::kNe) sym = "!=";
      if (vhdl) {
        os << lhs << literal(1, w) << " when " << aligned(n->args[0], cf, cw) << " " << sym
           << " " << aligned(n->args[1], cf, cw) << " else " << literal(0, w) << eol;
      } else {
        // Pre-extend operands so the shift cannot overflow.
        os << "  wire signed [" << cw - 1 << ":0] " << ref(n) << "_a = "
           << ref(n->args[0]) << ";\n";
        os << "  wire signed [" << cw - 1 << ":0] " << ref(n) << "_b = "
           << ref(n->args[1]) << ";\n";
        const int da = cf - fa.frac_bits();
        const int db = cf - fb.frac_bits();
        os << lhs << "((" << ref(n) << "_a <<< " << da << ") " << sym << " (" << ref(n)
           << "_b <<< " << db << ")) ? " << literal(1, w) << " : " << literal(0, w) << eol;
      }
      break;
    }
    case Op::kCast:
      os << lhs << quantized(n->args[0], f) << eol;
      break;
    default:
      break;
  }
}

void Writer::emit_assignments(std::ostream& os, sfg::Sfg& s, const std::string& ind) {
  const bool vhdl = d_ == Dialect::kVhdl;
  const char* asn = vhdl ? " <= " : " = ";
  for (const auto& o : s.outputs()) {
    const Format& to = m_.out_fmt.at(o.port);
    os << ind << sanitize(o.port) << asn
       << aligned(o.expr, to.frac_bits(), hdl_width(to)) << ";\n";
  }
  for (const auto& a : s.reg_assigns()) {
    const Format to = a.reg->has_fmt ? a.reg->fmt : fmt(a.reg);
    os << ind << "r_" << sanitize(a.reg->name) << "_next" << asn
       << quantized(a.expr, to) << ";\n";
  }
}

HdlComponent Writer::emit() {
  HdlComponent out;
  out.name = m_.name;
  const bool vhdl = d_ == Dialect::kVhdl;

  // ---- entity / module header ----
  std::ostringstream ent;
  if (vhdl) {
    ent << "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n"
        << "use work.asicpp_pkg.all;\n\n";
    ent << "entity " << m_.name << " is\n  port (\n"
        << "    clk : in std_logic;\n    rst : in std_logic";
    if (m_.kind == CompModel::Kind::kDispatch)
      ent << ";\n    " << m_.instr_port << " : in signed(15 downto 0)";
    for (const auto& i : m_.inputs)
      ent << ";\n    " << sanitize(i->name) << " : in signed(" << width(i) - 1
          << " downto 0)";
    for (const auto& p : m_.out_ports)
      ent << ";\n    " << sanitize(p) << " : out signed("
          << hdl_width(m_.out_fmt.at(p)) - 1 << " downto 0)";
    ent << ");\nend " << m_.name << ";\n";
  } else {
    ent << "module " << m_.name << " (\n  input wire clk,\n  input wire rst";
    if (m_.kind == CompModel::Kind::kDispatch)
      ent << ",\n  input wire signed [15:0] " << m_.instr_port;
    for (const auto& i : m_.inputs)
      ent << ",\n  input wire signed [" << width(i) - 1 << ":0] " << sanitize(i->name);
    for (const auto& p : m_.out_ports)
      ent << ",\n  output reg signed [" << hdl_width(m_.out_fmt.at(p)) - 1 << ":0] "
          << sanitize(p);
    ent << "\n);\n";
  }
  out.entity = ent.str();

  // ---- declarations + datapath ----
  std::ostringstream dp, decl;
  std::unordered_set<const Node*> done;
  for (auto* s : m_.sfgs) {
    for (const auto& o : s->outputs()) emit_node(o.expr, dp, done);
    for (const auto& a : s->reg_assigns()) emit_node(a.expr, dp, done);
  }
  if (m_.kind == CompModel::Kind::kFsm) {
    for (const auto& t : m_.fsm->transitions())
      if (!t.guards.empty()) emit_node(t.guards.front().expr().node(), dp, done);
  }
  // Declarations: walk again for deterministic order.
  std::unordered_set<const Node*> decl_done;
  struct DeclWalk {
    Writer* w;
    std::ostringstream& os;
    std::unordered_set<const Node*>& seen;
    void walk(const NodePtr& n) {
      switch (n->op) {
        case Op::kInput:
        case Op::kConst:
        case Op::kReg:
          return;
        default:
          break;
      }
      if (!seen.insert(n.get()).second) return;
      for (const auto& a : n->args) walk(a);
      w->emit_decl(os, w->ref(n), w->width(n));
    }
  } dw{this, decl, decl_done};
  for (auto* s : m_.sfgs) {
    for (const auto& o : s->outputs()) dw.walk(o.expr);
    for (const auto& a : s->reg_assigns()) dw.walk(a.expr);
  }
  if (m_.kind == CompModel::Kind::kFsm) {
    for (const auto& t : m_.fsm->transitions())
      if (!t.guards.empty()) dw.walk(t.guards.front().expr().node());
  }
  // Register signals.
  for (const auto& r : m_.regs) {
    const int w = hdl_width(r->has_fmt ? r->fmt : fmt(r));
    if (vhdl) {
      decl << "  signal r_" << sanitize(r->name) << ", r_" << sanitize(r->name)
           << "_next : signed(" << w - 1 << " downto 0);\n";
    } else {
      decl << "  reg signed [" << w - 1 << ":0] r_" << sanitize(r->name) << ";\n";
      decl << "  reg signed [" << w - 1 << ":0] r_" << sanitize(r->name) << "_next;\n";
    }
  }
  // State register.
  if (m_.kind == CompModel::Kind::kFsm) {
    if (vhdl) {
      decl << "  type state_t is (";
      for (int i = 0; i < m_.fsm->num_states(); ++i)
        decl << (i ? ", " : "") << "st_" << sanitize(m_.fsm->state_name(i));
      decl << ");\n  signal state, state_next : state_t;\n";
    } else {
      int bits = 1;
      while ((1 << bits) < m_.fsm->num_states()) ++bits;
      for (int i = 0; i < m_.fsm->num_states(); ++i)
        decl << "  localparam ST_" << sanitize(m_.fsm->state_name(i)) << " = " << i << ";\n";
      decl << "  reg [" << bits - 1 << ":0] state, state_next;\n";
    }
  }
  out.datapath = decl.str() + dp.str();

  // ---- controller ----
  std::ostringstream ctl;
  const std::string ind = "    ";
  if (vhdl) {
    ctl << "  comb : process(all)\n  begin\n";
    for (const auto& p : m_.out_ports)
      ctl << ind << sanitize(p) << " <= (others => '0');\n";
    for (const auto& r : m_.regs)
      ctl << ind << "r_" << sanitize(r->name) << "_next <= r_" << sanitize(r->name)
          << ";\n";
  } else {
    ctl << "  always @* begin\n";
    for (const auto& p : m_.out_ports) ctl << ind << sanitize(p) << " = 0;\n";
    for (const auto& r : m_.regs)
      ctl << ind << "r_" << sanitize(r->name) << "_next = r_" << sanitize(r->name)
          << ";\n";
  }

  switch (m_.kind) {
    case CompModel::Kind::kSfg:
      emit_assignments(ctl, *m_.sfgs.front(), ind);
      break;
    case CompModel::Kind::kFsm: {
      if (vhdl)
        ctl << ind << "state_next <= state;\n" << ind << "case state is\n";
      else
        ctl << ind << "state_next = state;\n" << ind << "case (state)\n";
      for (int st = 0; st < m_.fsm->num_states(); ++st) {
        const std::string stname = sanitize(m_.fsm->state_name(st));
        ctl << ind << (vhdl ? "when st_" + stname + " =>\n" : "ST_" + stname + ": begin\n");
        bool first = true;
        bool closed = false;
        for (const auto& t : m_.fsm->transitions()) {
          if (t.from != st) continue;
          std::string guard;
          if (!t.guards.empty()) {
            const auto g = t.guards.front().expr().node();
            guard = ref(g) + (vhdl ? " /= 0" : " != 0");
          }
          if (guard.empty()) {
            if (!first) ctl << ind << (vhdl ? "  else\n" : "  else begin\n");
            // unconditional body
          } else {
            ctl << ind << (first ? (vhdl ? "  if " : "  if (") : (vhdl ? "  elsif " : "  else if ("))
                << guard << (vhdl ? " then\n" : ") begin\n");
          }
          for (auto* s : t.actions) emit_assignments(ctl, m_.optimized(*s), ind + "    ");
          ctl << ind << "    state_next " << (vhdl ? "<= st_" : "= ST_")
              << sanitize(m_.fsm->state_name(t.to)) << ";\n";
          if (!vhdl) ctl << ind << "  end\n";
          if (guard.empty()) {
            closed = true;
            break;
          }
          first = false;
        }
        if (vhdl && (!first || closed)) ctl << ind << "  end if;\n";
        if (vhdl && first && !closed) ctl << ind << "  null;\n";
        if (!vhdl) ctl << ind << "end\n";
      }
      if (vhdl)
        ctl << ind << "end case;\n";
      else
        ctl << ind << "default: ;\n" << ind << "endcase\n";
      break;
    }
    case CompModel::Kind::kDispatch: {
      if (vhdl)
        ctl << ind << "case to_integer(" << m_.instr_port << ") is\n";
      else
        ctl << ind << "case (" << m_.instr_port << ")\n";
      for (const auto& [op, s] : m_.table) {
        ctl << ind << (vhdl ? "when " + std::to_string(op) + " =>\n"
                            : std::to_string(op) + ": begin\n");
        emit_assignments(ctl, *s, ind + "  ");
        if (!vhdl) ctl << ind << "end\n";
      }
      ctl << ind << (vhdl ? "when others =>\n" : "default: begin\n");
      if (m_.dflt != nullptr) emit_assignments(ctl, *m_.dflt, ind + "  ");
      if (vhdl && m_.dflt == nullptr) ctl << ind << "  null;\n";
      if (!vhdl) ctl << ind << "end\n";
      ctl << ind << (vhdl ? "end case;\n" : "endcase\n");
      break;
    }
  }
  if (vhdl)
    ctl << "  end process;\n\n";
  else
    ctl << "  end\n\n";

  // Clocked process.
  if (vhdl) {
    ctl << "  seq : process(clk)\n  begin\n    if rising_edge(clk) then\n"
        << "      if rst = '1' then\n";
    for (const auto& r : m_.regs) {
      const Format rf = r->has_fmt ? r->fmt : fmt(r);
      ctl << "        r_" << sanitize(r->name) << " <= "
          << literal(static_cast<long long>(std::llround(std::ldexp(r->init, rf.frac_bits()))),
                     hdl_width(rf))
          << ";\n";
    }
    if (m_.kind == CompModel::Kind::kFsm)
      ctl << "        state <= st_" << sanitize(m_.fsm->state_name(m_.fsm->initial_state()))
          << ";\n";
    ctl << "      else\n";
    for (const auto& r : m_.regs)
      ctl << "        r_" << sanitize(r->name) << " <= r_" << sanitize(r->name)
          << "_next;\n";
    if (m_.kind == CompModel::Kind::kFsm) ctl << "        state <= state_next;\n";
    ctl << "      end if;\n    end if;\n  end process;\n";
  } else {
    ctl << "  always @(posedge clk) begin\n    if (rst) begin\n";
    for (const auto& r : m_.regs) {
      const Format rf = r->has_fmt ? r->fmt : fmt(r);
      ctl << "      r_" << sanitize(r->name) << " <= "
          << literal(static_cast<long long>(std::llround(std::ldexp(r->init, rf.frac_bits()))),
                     hdl_width(rf))
          << ";\n";
    }
    if (m_.kind == CompModel::Kind::kFsm)
      ctl << "      state <= ST_" << sanitize(m_.fsm->state_name(m_.fsm->initial_state()))
          << ";\n";
    ctl << "    end else begin\n";
    for (const auto& r : m_.regs)
      ctl << "      r_" << sanitize(r->name) << " <= r_" << sanitize(r->name) << "_next;\n";
    if (m_.kind == CompModel::Kind::kFsm) ctl << "      state <= state_next;\n";
    ctl << "    end\n  end\n";
  }
  out.controller = ctl.str();

  std::ostringstream full;
  if (vhdl) {
    full << out.entity << "\narchitecture rtl of " << m_.name << " is\n"
         << decl.str() << "begin\n"
         << dp.str() << "\n"
         << out.controller << "end rtl;\n";
  } else {
    full << out.entity << decl.str() << dp.str() << "\n" << out.controller
         << "endmodule\n";
  }
  out.full = full.str();
  return out;
}

}  // namespace

std::string generate_package(Dialect d) {
  if (d == Dialect::kVerilog) return "// saturation emitted inline; no package needed\n";
  return R"(library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

package asicpp_pkg is
  -- Re-quantize x: remove `drop` fractional bits (negative drop adds
  -- zeros), rounding half away from zero when do_round, clamping to the
  -- out_w-bit signed range when do_sat (wrapping otherwise).
  function quantize(x : signed; drop : integer; do_round : boolean;
                    do_sat : boolean; out_w : natural) return signed;
end package;

package body asicpp_pkg is
  function quantize(x : signed; drop : integer; do_round : boolean;
                    do_sat : boolean; out_w : natural) return signed is
    constant ww : natural := x'length + out_w + 2;
    variable wide : signed(ww - 1 downto 0);
    variable half : signed(ww - 1 downto 0);
    variable r : signed(out_w - 1 downto 0);
  begin
    wide := resize(x, ww);
    if drop > 0 then
      if do_round then
        half := shift_left(to_signed(1, ww), drop - 1);
        if wide >= 0 then
          wide := shift_right(wide + half, drop);
        else
          wide := -shift_right(-wide + half, drop);
        end if;
      else
        wide := shift_right(wide, drop);
      end if;
    elsif drop < 0 then
      wide := shift_left(wide, -drop);
    end if;
    if do_sat and wide /= resize(resize(wide, out_w), ww) then
      if wide < 0 then
        r := (others => '0');
        r(out_w - 1) := '1';
      else
        r := (others => '1');
        r(out_w - 1) := '0';
      end if;
    else
      r := resize(wide, out_w);
    end if;
    return r;
  end function;
end package body;
)";
}

HdlComponent generate_component(Dialect d, sched::Component& comp) {
  return Writer(d, build_component_model(comp)).emit();
}

std::string generate_system(Dialect d, const sched::CycleScheduler& sys,
                            const std::string& top_name) {
  const bool vhdl = d == Dialect::kVhdl;
  std::ostringstream os;

  // Net widths from producing ports.
  std::map<const sched::Net*, int> net_width;
  std::vector<CompModel> models;
  for (sched::Component* c : sys.components()) {
    if (dynamic_cast<sched::UntimedComponent*>(c) != nullptr) continue;
    models.push_back(build_component_model(*c));
    CompModel& m = models.back();
    for (const auto& [port, net] : m.out_binds)
      net_width[net] = hdl_width(m.out_fmt.at(port));
  }

  if (vhdl) {
    os << "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
    os << "entity " << sanitize(top_name) << " is\n  port (clk : in std_logic; rst : in std_logic);\n"
       << "end " << sanitize(top_name) << ";\n\narchitecture structure of "
       << sanitize(top_name) << " is\n";
    for (const auto& [net, w] : net_width)
      os << "  signal net_" << sanitize(net->name()) << " : signed(" << w - 1
         << " downto 0);\n";
    os << "begin\n";
  } else {
    os << "module " << sanitize(top_name) << " (input wire clk, input wire rst);\n";
    for (const auto& [net, w] : net_width)
      os << "  wire signed [" << w - 1 << ":0] net_" << sanitize(net->name()) << ";\n";
  }

  int idx = 0;
  for (const auto& m : models) {
    if (vhdl) {
      os << "  u" << idx << " : entity work." << m.name << " port map (clk => clk, rst => rst";
      if (m.kind == CompModel::Kind::kDispatch) {
        // the instruction net feeds the instr port
        os << ", " << m.instr_port << " => net_" << m.instr_port.substr(6);
      }
      for (const auto& [node, net] : m.in_binds)
        os << ", " << sanitize(node->name) << " => net_" << sanitize(net->name());
      for (const auto& [port, net] : m.out_binds)
        os << ", " << sanitize(port) << " => net_" << sanitize(net->name());
      os << ");\n";
    } else {
      os << "  " << m.name << " u" << idx << " (.clk(clk), .rst(rst)";
      if (m.kind == CompModel::Kind::kDispatch)
        os << ", ." << m.instr_port << "(net_" << m.instr_port.substr(6) << ")";
      for (const auto& [node, net] : m.in_binds)
        os << ", ." << sanitize(node->name) << "(net_" << sanitize(net->name()) << ")";
      for (const auto& [port, net] : m.out_binds)
        os << ", ." << sanitize(port) << "(net_" << sanitize(net->name()) << ")";
      os << ");\n";
    }
    ++idx;
  }
  os << (vhdl ? "end structure;\n" : "endmodule\n");
  return os.str();
}

}  // namespace asicpp::hdl
