// Component model: everything the generators need to know about one timed
// component, collected from the sched:: component classes. Shared by the
// HDL emitters (hdl/) and the synthesis back-end (synth/).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fixpt/format.h"
#include "fsm/fsm.h"
#include "opt/options.h"
#include "sched/component.h"
#include "sched/fsmcomp.h"
#include "sched/net.h"
#include "sfg/wordlen.h"

namespace asicpp::hdl {

struct CompModel {
  enum class Kind { kFsm, kSfg, kDispatch } kind = Kind::kSfg;
  std::string name;
  std::vector<sfg::Sfg*> sfgs;
  fsm::Fsm* fsm = nullptr;                       ///< Kind::kFsm
  std::map<long, sfg::Sfg*> table;               ///< Kind::kDispatch
  sfg::Sfg* dflt = nullptr;                      ///< Kind::kDispatch
  std::string instr_port;                        ///< Kind::kDispatch
  std::vector<sfg::NodePtr> inputs;              ///< declared input signals
  std::vector<std::string> out_ports;            ///< declaration order
  std::map<std::string, fixpt::Format> out_fmt;  ///< merged across producers
  std::vector<sfg::NodePtr> regs;
  sfg::FormatMap fmts;
  std::map<std::string, sched::Net*> out_binds;  ///< for system linkage
  std::vector<std::pair<sfg::NodePtr, sched::Net*>> in_binds;

  /// Pass-optimized clones: when the optimizer pipeline changes a graph it
  /// is rebuilt into a fresh Sfg owned here, and `sfgs` / `table` / `dflt`
  /// point at the clone. Leaves and untouched interior nodes are shared
  /// with the original, so unchanged graphs stay byte-identical in the
  /// emitted HDL.
  std::vector<std::unique_ptr<sfg::Sfg>> owned;
  std::map<const sfg::Sfg*, sfg::Sfg*> opt_map;  ///< original → view

  /// The graph generators should consume for `s`: its pass-optimized clone
  /// when the pipeline changed it, otherwise `s` itself. Needed where a
  /// generator follows the FSM's transition actions directly.
  sfg::Sfg& optimized(sfg::Sfg& s) const {
    const auto it = opt_map.find(&s);
    return it != opt_map.end() ? *it->second : s;
  }
};

/// Sanitize to a legal HDL/netlist identifier.
std::string sanitize(const std::string& s);

/// Collect the model, running the optimizer pass pipeline over every graph
/// (PassOptions::raw() or none() disables it). Throws std::invalid_argument
/// for untimed components.
CompModel build_component_model(sched::Component& comp,
                                const opt::PassOptions& passes = {});

}  // namespace asicpp::hdl
