// Component model: everything the generators need to know about one timed
// component, collected from the sched:: component classes. Shared by the
// HDL emitters (hdl/) and the synthesis back-end (synth/).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fixpt/format.h"
#include "fsm/fsm.h"
#include "sched/component.h"
#include "sched/fsmcomp.h"
#include "sched/net.h"
#include "sfg/wordlen.h"

namespace asicpp::hdl {

struct CompModel {
  enum class Kind { kFsm, kSfg, kDispatch } kind = Kind::kSfg;
  std::string name;
  std::vector<sfg::Sfg*> sfgs;
  fsm::Fsm* fsm = nullptr;                       ///< Kind::kFsm
  std::map<long, sfg::Sfg*> table;               ///< Kind::kDispatch
  sfg::Sfg* dflt = nullptr;                      ///< Kind::kDispatch
  std::string instr_port;                        ///< Kind::kDispatch
  std::vector<sfg::NodePtr> inputs;              ///< declared input signals
  std::vector<std::string> out_ports;            ///< declaration order
  std::map<std::string, fixpt::Format> out_fmt;  ///< merged across producers
  std::vector<sfg::NodePtr> regs;
  sfg::FormatMap fmts;
  std::map<std::string, sched::Net*> out_binds;  ///< for system linkage
  std::vector<std::pair<sfg::NodePtr, sched::Net*>> in_binds;
};

/// Sanitize to a legal HDL/netlist identifier.
std::string sanitize(const std::string& s);

/// Collect the model. Throws std::invalid_argument for untimed components.
CompModel build_component_model(sched::Component& comp);

}  // namespace asicpp::hdl
