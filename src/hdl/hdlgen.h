// HDL code generation from the C++ system description.
//
// Section 5/6 of the paper: the clock-cycle true, bit-true C++ description
// translates itself into a control/data flow data structure, which a code
// generator turns into synthesizable HDL. For each component we emit a
// *datapath* section (concurrent three-address assignments, one per SFG
// operator node, sized by wordlength inference) and a *controller* section
// (transition-selection combinational process + clocked state/register
// process) — the split that feeds the separate datapath and controller
// synthesis tools of Fig 8. A system linkage file instantiates all
// components and wires them along the interconnect nets.
#pragma once

#include <string>

#include "sched/cyclesched.h"
#include "sched/fsmcomp.h"

namespace asicpp::hdl {

enum class Dialect { kVhdl, kVerilog };

/// Generated text for one component, with the controller/datapath split
/// exposed for the divide-and-conquer synthesis strategy.
struct HdlComponent {
  std::string name;
  std::string entity;      ///< entity/module header with ports
  std::string datapath;    ///< concurrent SFG operator assignments
  std::string controller;  ///< FSM selection + clocked process
  std::string full;        ///< complete compilable unit
};

/// Shared support code: the quantize/saturate helpers (VHDL package;
/// empty for Verilog, where saturation is emitted inline).
std::string generate_package(Dialect d);

/// Generate HDL for a timed component (FsmComponent, SfgComponent or
/// DispatchComponent). Throws std::invalid_argument for untimed blocks —
/// high-level C++ behaviour has no HDL image; it is a verification-only
/// model in the paper's flow.
HdlComponent generate_component(Dialect d, sched::Component& comp);

/// Structural top level: instantiate every timed component of `sys` and
/// connect the interconnect nets.
std::string generate_system(Dialect d, const sched::CycleScheduler& sys,
                            const std::string& top_name);

}  // namespace asicpp::hdl
