// System interconnect nets.
//
// Components exchange data signals over the system interconnect (Fig 6).
// A Net carries at most one token per clock cycle; reading is broadcast
// (any number of components may read the token), and the token is cleared
// at the start of the next cycle. An external drive models a chip pin such
// as `hold_request`: it re-arms the net with a value every cycle until
// changed or released.
#pragma once

#include <optional>
#include <string>

#include "fixpt/fixed.h"

namespace asicpp::ckpt {
class Writer;
class Reader;
}  // namespace asicpp::ckpt

namespace asicpp::sched {

class Net {
 public:
  explicit Net(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  bool has_token() const { return has_token_; }

  const fixpt::Fixed& token() const { return value_; }

  /// Place this cycle's token. A second put in the same cycle is a bus
  /// conflict and throws.
  void put(const fixpt::Fixed& v);

  /// Most recent token value, surviving across cycles (for probing).
  const fixpt::Fixed& last() const { return value_; }

  /// Persistently drive the net each cycle (external pin).
  void drive(const fixpt::Fixed& v) { external_ = v; }
  void release() { external_.reset(); }
  bool driven() const { return external_.has_value(); }
  /// Value of the external drive; only meaningful when driven().
  const fixpt::Fixed& drive_value() const { return *external_; }

  /// Scheduler-internal: start a new cycle — drop the old token, re-arm
  /// from the external drive when present.
  void begin_cycle();

  /// Checkpoint: serialize / restore the per-net state (last value, token
  /// flag, external drive). The name is written too, as a restore-time
  /// cross-check against the snapshot's net ordering.
  void save_state(ckpt::Writer& w) const;
  void restore_state(ckpt::Reader& r);

 private:
  std::string name_;
  fixpt::Fixed value_;
  bool has_token_ = false;
  std::optional<fixpt::Fixed> external_;
};

}  // namespace asicpp::sched
