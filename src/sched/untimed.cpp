#include "sched/untimed.h"

#include <stdexcept>

#include "ckpt/snapshot.h"

namespace asicpp::sched {

bool UntimedComponent::try_fire(std::uint64_t) {
  if (fired_) return false;
  for (const auto* n : ins_) {
    if (!n->has_token()) return false;
  }
  std::vector<fixpt::Fixed> inputs;
  inputs.reserve(ins_.size());
  for (const auto* n : ins_) inputs.push_back(n->token());

  const auto outputs = fn_(inputs);
  if (outputs.size() != outs_.size())
    throw std::logic_error("UntimedComponent '" + name() + "': produced " +
                           std::to_string(outputs.size()) + " tokens for " +
                           std::to_string(outs_.size()) + " output nets");
  for (std::size_t i = 0; i < outs_.size(); ++i) outs_[i]->put(outputs[i]);
  fired_ = true;
  ++firings_;
  return true;
}

void UntimedComponent::save_state(ckpt::Writer& w) const {
  w.u64(firings_);
}

void UntimedComponent::restore_state(ckpt::Reader& r) {
  firings_ = static_cast<std::size_t>(r.u64());
}

}  // namespace asicpp::sched
