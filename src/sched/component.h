// Component interface for the three-phase cycle scheduler.
//
// A component is one concurrently executing block of the system model
// (section 2: each process translates to one component of the final
// implementation). The scheduler drives every component through the phases
// of Fig 6: transition selection, token production, iterative evaluation,
// and register update.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asicpp::sfg {
class Sfg;
}

namespace asicpp::ckpt {
class Writer;
class Reader;
}  // namespace asicpp::ckpt

namespace asicpp::sched {

class Net;

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }

  /// Phase 0: select the SFGs to execute this cycle (FSM transition
  /// selection over registered conditions).
  virtual void begin_cycle(std::uint64_t stamp) = 0;

  /// Phase 1: evaluate outputs that depend only on registered or constant
  /// signals and put the tokens onto the interconnect.
  virtual void produce_tokens(std::uint64_t stamp) = 0;

  /// Phase 2: attempt to fire — when every required input token is present,
  /// evaluate fully and produce the remaining outputs. Returns true when
  /// progress was made (the component fired during this call).
  virtual bool try_fire(std::uint64_t stamp) = 0;

  /// True when the component needs no further evaluation this cycle
  /// (it fired, or it has nothing marked).
  virtual bool done() const = 0;

  /// True when failing to fire this cycle indicates a combinational loop
  /// (timed components with marked SFGs). Opportunistic untimed blocks
  /// return false.
  virtual bool must_fire() const = 0;

  /// Phase 3: commit register next-values and the FSM state change.
  virtual void end_cycle(std::uint64_t stamp) = 0;

  // --- deadlock post-mortem introspection ---

  /// Nets this component is currently blocked on (token not yet present).
  /// Meaningful mid-phase-2, after try_fire returned without firing.
  virtual std::vector<const Net*> waiting_nets() const { return {}; }

  /// Nets this component would drive if it fired this cycle. Used to walk
  /// the blocking dependency chain between unfired components.
  virtual std::vector<const Net*> pending_output_nets() const { return {}; }

  // --- static scheduling (levelized kernel) ---

  /// Conservative cycle-independent firing dependencies, unioned over all
  /// FSM transitions / dispatch instructions. `schedulable == false` (the
  /// default) means the component's firing order is data-dependent and the
  /// whole system must keep the iterative scheduler.
  struct StaticDeps {
    bool schedulable = false;
    /// Input nets whose tokens must be present before the component fires.
    std::vector<const Net*> fire_requires;
    /// Output nets the firing puts tokens on during phase 2 (outputs that
    /// are produced in phase 1 — register/constant-only — are omitted;
    /// they impose no ordering).
    std::vector<const Net*> fire_produces;
    /// Instruction-dispatched components split into a decode step (which
    /// performs the deferred register-only token pushes) and the firing
    /// proper; the firing implicitly orders after the decode.
    bool has_decode = false;
    std::vector<const Net*> decode_requires;
    std::vector<const Net*> decode_produces;
  };

  /// Describe this component to the static levelizer. The default marks the
  /// component unschedulable, forcing iterative fallback.
  virtual StaticDeps static_deps() const { return {}; }

  /// Append every SFG this component can execute. The scheduler uses this
  /// to apply run-wide optimizer pass options; untimed components own no
  /// SFGs and keep the default no-op.
  virtual void collect_sfgs(std::vector<sfg::Sfg*>& out) const { (void)out; }

  // --- checkpoint/restore (see ckpt/snapshot.h) ---

  /// Serialize cross-cycle component state (FSM current state, adapter
  /// queues, firing counters). Per-cycle scratch (pending transitions,
  /// fired flags) is never snapshotted: snapshots are taken at cycle
  /// boundaries only. The default is stateless.
  virtual void save_state(ckpt::Writer& w) const { (void)w; }

  /// Restore what save_state wrote. Reads temporaries first and applies
  /// only after the whole chunk parsed, so a corrupt stream leaves the
  /// component untouched.
  virtual void restore_state(ckpt::Reader& r) { (void)r; }

 private:
  std::string name_;
};

}  // namespace asicpp::sched
