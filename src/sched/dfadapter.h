// Dataflow-process adapter for the cycle scheduler.
//
// Section 2's mixed system model: untimed processes with *rate-based
// firing rules* living next to clock-cycle-true components. The plain
// UntimedComponent consumes and produces exactly one token per net per
// cycle; this adapter wraps a df::Process with its own queues, so
// multirate actors (decimators, interpolators, block processors) keep
// their dataflow semantics inside the cycle simulation:
//
//  * each cycle, arriving net tokens are enqueued on the process inputs;
//  * the process fires as often as its firing rule allows;
//  * produced tokens drain onto the output nets at one per net per cycle
//    (the interconnect carries one value per cycle), buffering the rest.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "df/process.h"
#include "df/queue.h"
#include "sched/component.h"
#include "sched/net.h"

namespace asicpp::sched {

class DataflowAdapter : public Component {
 public:
  /// Wraps `p`. The adapter owns the queues binding the process to nets;
  /// the process must have no prior queue connections.
  DataflowAdapter(std::string name, df::Process& p);

  /// Bind the next process input to `net`, consuming `rate` tokens per
  /// firing (the SDF rate of that port).
  void bind_input(Net& net, std::size_t rate = 1);
  /// Bind the next process output to `net`, producing `rate` tokens per
  /// firing. The net still carries one token per cycle; surplus buffers.
  void bind_output(Net& net, std::size_t rate = 1);

  void begin_cycle(std::uint64_t) override;
  void produce_tokens(std::uint64_t) override;
  bool try_fire(std::uint64_t) override;
  bool done() const override { return consumed_; }
  bool must_fire() const override { return false; }
  void end_cycle(std::uint64_t) override;
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

  std::size_t firings() const { return proc_->firings(); }
  /// Tokens waiting on the i-th output buffer (backlog).
  std::size_t output_backlog(std::size_t i) const { return out_qs_.at(i)->size(); }

 private:
  df::Process* proc_;
  std::vector<std::unique_ptr<df::Queue>> in_qs_;
  std::vector<std::unique_ptr<df::Queue>> out_qs_;
  std::vector<Net*> in_nets_;
  std::vector<Net*> out_nets_;
  bool consumed_ = false;
};

}  // namespace asicpp::sched
