#include "sched/fsmcomp.h"

#include <cmath>
#include <stdexcept>

#include "ckpt/snapshot.h"

namespace asicpp::sched {

// --- TimedBase ---

void TimedBase::bind_input(const sfg::Sig& in, Net& net) {
  if (!in.valid() || in.node()->op != sfg::Op::kInput)
    throw std::invalid_argument("bind_input: not an input signal");
  in_binds_.push_back(InBind{in.node(), &net});
}

void TimedBase::bind_output(const std::string& port, Net& net) {
  if (!out_binds_.emplace(port, &net).second)
    throw std::logic_error("bind_output: port '" + port + "' already bound");
}

void TimedBase::static_requires(const sfg::Sfg& s, std::vector<const Net*>& req) const {
  for (const auto& in : s.inputs()) {
    for (const auto& b : in_binds_) {
      if (b.node == in) req.push_back(b.net);
    }
  }
}

void TimedBase::static_produces(const sfg::Sfg& s, bool needs_inputs,
                                std::vector<const Net*>& out) const {
  s.analyze();  // the needs_inputs classification is filled lazily
  for (const auto& o : s.outputs()) {
    if (o.needs_inputs != needs_inputs) continue;
    const auto it = out_binds_.find(o.port);
    if (it != out_binds_.end()) out.push_back(it->second);
  }
}

std::vector<const Net*> TimedBase::missing_inputs(const sfg::Sfg& s) const {
  std::vector<const Net*> missing;
  for (const auto& in : s.inputs()) {
    for (const auto& b : in_binds_) {
      if (b.node == in && !b.net->has_token()) missing.push_back(b.net);
    }
  }
  return missing;
}

void TimedBase::bound_outputs(const sfg::Sfg& s, std::vector<const Net*>& out) const {
  for (const auto& o : s.outputs()) {
    const auto it = out_binds_.find(o.port);
    if (it != out_binds_.end()) out.push_back(it->second);
  }
}

bool TimedBase::inputs_ready(sfg::Sfg& s) const {
  for (const auto& in : s.inputs()) {
    for (const auto& b : in_binds_) {
      if (b.node == in && !b.net->has_token()) return false;
    }
    // Inputs without a net binding are externally set; always available.
  }
  return true;
}

void TimedBase::load_inputs(sfg::Sfg& s) {
  for (const auto& in : s.inputs()) {
    for (const auto& b : in_binds_) {
      if (b.node == in)
        in->value = in->has_fmt ? b.net->token().cast(in->fmt) : b.net->token();
    }
  }
}

void TimedBase::push_outputs(sfg::Sfg& s, bool reg_only_phase) {
  for (const auto& o : s.outputs()) {
    if (o.needs_inputs == reg_only_phase) continue;
    const auto it = out_binds_.find(o.port);
    if (it != out_binds_.end()) it->second->put(o.expr->value);
  }
}

// --- FsmComponent ---

void FsmComponent::begin_cycle(std::uint64_t stamp) {
  pending_ = fsm_->select(stamp);
  fired_ = false;
}

void FsmComponent::produce_tokens(std::uint64_t stamp) {
  if (pending_ == nullptr) return;
  for (auto* s : pending_->actions) {
    s->eval_register_outputs(stamp);
    push_outputs(*s, /*reg_only_phase=*/true);
  }
}

bool FsmComponent::try_fire(std::uint64_t stamp) {
  if (done()) return false;
  for (auto* s : pending_->actions) {
    if (!inputs_ready(*s)) return false;
  }
  for (auto* s : pending_->actions) {
    load_inputs(*s);
    s->eval(stamp);
    push_outputs(*s, /*reg_only_phase=*/false);
  }
  fired_ = true;
  return true;
}

void FsmComponent::end_cycle(std::uint64_t) {
  if (pending_ != nullptr && fired_) {
    for (auto* s : pending_->actions) s->update_registers();
    fsm_->commit(*pending_);
  }
  pending_ = nullptr;
}

std::vector<const Net*> FsmComponent::waiting_nets() const {
  std::vector<const Net*> nets;
  if (pending_ == nullptr || fired_) return nets;
  for (const auto* s : pending_->actions) {
    for (const Net* n : missing_inputs(*s)) nets.push_back(n);
  }
  return nets;
}

std::vector<const Net*> FsmComponent::pending_output_nets() const {
  std::vector<const Net*> nets;
  if (pending_ == nullptr || fired_) return nets;
  for (const auto* s : pending_->actions) bound_outputs(*s, nets);
  return nets;
}

Component::StaticDeps FsmComponent::static_deps() const {
  StaticDeps d;
  d.schedulable = true;
  // Union over every transition: the order is valid whichever one phase 0
  // selects. Register-only (pre) outputs go out in phase 1 and impose no
  // ordering, so only needs_inputs products enter the graph.
  for (const auto& t : fsm_->transitions()) {
    for (const auto* s : t.actions) {
      static_requires(*s, d.fire_requires);
      static_produces(*s, /*needs_inputs=*/true, d.fire_produces);
    }
  }
  return d;
}

void FsmComponent::collect_sfgs(std::vector<sfg::Sfg*>& out) const {
  for (const auto& t : fsm_->transitions()) {
    for (auto* s : t.actions) out.push_back(s);
  }
}

void FsmComponent::save_state(ckpt::Writer& w) const {
  w.i32(fsm_->current());
}

void FsmComponent::restore_state(ckpt::Reader& r) {
  const std::int32_t s = r.i32();
  if (s < -1 || s >= fsm_->num_states()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"component '" + name() + "': FSM state index " + std::to_string(s) +
            " is out of range (machine has " +
            std::to_string(fsm_->num_states()) + " state(s))"});
  }
  fsm_->set_current(s);
}

// --- SfgComponent ---

void SfgComponent::begin_cycle(std::uint64_t) { fired_ = false; }

void SfgComponent::produce_tokens(std::uint64_t stamp) {
  sfg_->eval_register_outputs(stamp);
  push_outputs(*sfg_, /*reg_only_phase=*/true);
}

bool SfgComponent::try_fire(std::uint64_t stamp) {
  if (fired_ || !inputs_ready(*sfg_)) return false;
  load_inputs(*sfg_);
  sfg_->eval(stamp);
  push_outputs(*sfg_, /*reg_only_phase=*/false);
  fired_ = true;
  return true;
}

void SfgComponent::end_cycle(std::uint64_t) {
  if (fired_) sfg_->update_registers();
}

std::vector<const Net*> SfgComponent::waiting_nets() const {
  if (fired_) return {};
  return missing_inputs(*sfg_);
}

std::vector<const Net*> SfgComponent::pending_output_nets() const {
  std::vector<const Net*> nets;
  if (!fired_) bound_outputs(*sfg_, nets);
  return nets;
}

Component::StaticDeps SfgComponent::static_deps() const {
  StaticDeps d;
  d.schedulable = true;
  static_requires(*sfg_, d.fire_requires);
  static_produces(*sfg_, /*needs_inputs=*/true, d.fire_produces);
  return d;
}

// --- DispatchComponent ---

void DispatchComponent::add_instruction(long opcode, sfg::Sfg& s) {
  if (!table_.emplace(opcode, &s).second)
    throw std::logic_error("add_instruction: duplicate opcode " + std::to_string(opcode));
}

void DispatchComponent::begin_cycle(std::uint64_t) {
  selected_ = nullptr;
  fired_ = false;
}

void DispatchComponent::produce_tokens(std::uint64_t) {
  // Nothing: every output is gated behind the instruction token.
}

bool DispatchComponent::try_fire(std::uint64_t stamp) {
  if (fired_) return false;
  bool progress = false;
  if (selected_ == nullptr) {
    if (!instr_net_->has_token()) return false;
    const long opcode = std::lround(instr_net_->token().value());
    const auto it = table_.find(opcode);
    selected_ = (it != table_.end()) ? it->second : default_;
    if (selected_ == nullptr)
      throw std::logic_error("DispatchComponent '" + name() + "': unknown opcode " +
                             std::to_string(opcode) + " and no default");
    // Deferred token production: the register/constant-only outputs of the
    // decoded instruction go out immediately, so downstream blocks (e.g.
    // the RAM cells) are not starved while this SFG waits on data inputs.
    selected_->eval_register_outputs(stamp);
    push_outputs(*selected_, /*reg_only_phase=*/true);
    progress = true;
  }
  if (inputs_ready(*selected_)) {
    load_inputs(*selected_);
    selected_->eval(stamp);
    push_outputs(*selected_, /*reg_only_phase=*/false);
    fired_ = true;
    progress = true;
  }
  return progress;
}

void DispatchComponent::end_cycle(std::uint64_t) {
  if (fired_ && selected_ != nullptr) selected_->update_registers();
  selected_ = nullptr;
}

std::vector<const Net*> DispatchComponent::waiting_nets() const {
  if (fired_) return {};
  if (selected_ == nullptr) return {instr_net_};  // waiting on the instruction token
  return missing_inputs(*selected_);
}

std::vector<const Net*> DispatchComponent::pending_output_nets() const {
  std::vector<const Net*> nets;
  if (fired_) return nets;
  if (selected_ != nullptr) {
    bound_outputs(*selected_, nets);
  } else {
    for (const auto& [_, net] : out_binds_) nets.push_back(net);
  }
  return nets;
}

Component::StaticDeps DispatchComponent::static_deps() const {
  StaticDeps d;
  d.schedulable = true;
  // Two schedule actions: the decode step consumes the instruction token
  // and performs the deferred register-only pushes; the firing proper runs
  // after it. Unioned over the whole instruction table plus the default.
  d.has_decode = true;
  d.decode_requires.push_back(instr_net_);
  const auto add = [&](const sfg::Sfg& s) {
    static_requires(s, d.fire_requires);
    static_produces(s, /*needs_inputs=*/true, d.fire_produces);
    static_produces(s, /*needs_inputs=*/false, d.decode_produces);
  };
  for (const auto& [opcode, s] : table_) {
    (void)opcode;
    add(*s);
  }
  if (default_ != nullptr) add(*default_);
  return d;
}

void DispatchComponent::collect_sfgs(std::vector<sfg::Sfg*>& out) const {
  for (const auto& [opcode, s] : table_) {
    (void)opcode;
    out.push_back(s);
  }
  if (default_ != nullptr) out.push_back(default_);
}

}  // namespace asicpp::sched
