// The three-phase cycle scheduler (section 4, Fig 6).
//
// Whenever a timed description is simulated, the cycle scheduler creates
// the illusion of concurrency between components on a clock-cycle basis.
// Each cycle runs:
//
//   0. transition selection    — every FSM picks its transition and marks
//                                the transition's SFGs for execution;
//   1. token production        — outputs depending only on registered or
//                                constant signals are evaluated and put on
//                                the interconnect (this creates the initial
//                                tokens that break apparent deadlocks in
//                                component loops, replacing data-flow
//                                initial tokens and buffer insertion);
//   2. iterative evaluation    — marked SFGs and untimed blocks fire as
//                                their inputs become available, repeated
//                                until every marked SFG has fired; if a
//                                preset iteration bound is exceeded with
//                                unfired components, the system is declared
//                                deadlocked, which identifies true
//                                combinational loops;
//   3. register update         — next-values commit, FSM states advance.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "diag/diag.h"
#include "par/pool.h"
#include "sched/component.h"
#include "sched/net.h"
#include "sched/run.h"
#include "sched/schedule.h"
#include "sfg/clk.h"

namespace asicpp::sched {

/// Raised when the evaluation phase cannot complete: a genuine
/// combinational loop between components. Carries a structured SCHED-001
/// post-mortem: the unfired component set, the blocking net dependency
/// cycle, and last-known values of the involved nets.
struct DeadlockError : asicpp::Error {
  explicit DeadlockError(diag::Diagnostic d) : asicpp::Error(std::move(d)) {}
};

class CycleScheduler {
 public:
  explicit CycleScheduler(sfg::Clk& clk) : clk_(&clk) {}

  /// Register a component. Components are evaluated in registration order
  /// within each sweep, but results are order-independent by construction.
  void add(Component& c) {
    comps_.push_back(&c);
    invalidate_schedule();
  }

  /// Create or fetch the interconnect net `name`.
  Net& net(const std::string& name);

  /// Cap on evaluation sweeps per cycle before declaring deadlock.
  void set_max_iterations(int n) { max_iters_ = n; }

  struct CycleStats {
    int eval_iterations = 0;
    int fired_components = 0;
    bool levelized = false;  ///< phase 2 completed via the static level walk
  };

  /// Simulate one clock cycle. Throws DeadlockError on combinational loops
  /// (the post-mortem is also reported into the attached engine, if any).
  CycleStats cycle();

  /// Simulate per `opts`: cycle count, watchdogs, schedule mode, hooks,
  /// optimizer passes. The primary entry point shared with the other
  /// engines. Applies `opts.passes` to every SFG of every component before
  /// the first cycle.
  RunResult run(const RunOptions& opts);

  /// Apply optimizer pass options to every SFG of every registered
  /// component (for cycle() calls outside run()).
  void set_pass_options(const opt::PassOptions& p);

  // --- static schedule ---

  /// Phase-2 evaluation order policy for cycle() calls outside run().
  void set_schedule_mode(ScheduleMode m) { mode_ = m; }
  ScheduleMode schedule_mode() const { return mode_; }

  /// Worker lanes for the level-parallel phase-2 walk, for cycle() calls
  /// outside run() (see RunOptions::nthreads; 1 = serial, 0 = hardware).
  /// Results are bit-identical to serial execution: only levelized cycles
  /// parallelize and actions within one level touch disjoint nets.
  void set_threads(unsigned n) {
    threads_ = n == 0 ? par::Pool::hardware_lanes() : n;
  }
  unsigned threads() const { return threads_; }

  /// Levels at least this wide are partitioned across the pool; narrower
  /// ones run serially (the barrier would cost more than it buys).
  static constexpr std::size_t kMinParallelWidth = 4;

  /// The levelized schedule, rebuilt lazily after structural changes.
  /// invalid() when the system cannot be statically ordered.
  const Schedule& schedule() {
    refresh_schedule();
    return schedule_;
  }

  /// Drop the cached level order (bindings changed behind the scheduler's
  /// back); it is re-levelized before the next cycle.
  void invalidate_schedule() {
    schedule_stale_ = true;
    schedule_failures_ = 0;
    sched002_reported_ = false;
  }

  // --- diagnostics & run watchdogs ---

  /// Route diagnostics (deadlock post-mortems, watchdog reports) into an
  /// external engine; without this the scheduler uses an internal one,
  /// reachable via diagnostics().
  void attach_diagnostics(diag::DiagEngine& de) { diag_ = &de; }
  diag::DiagEngine& diagnostics() { return diag_ != nullptr ? *diag_ : own_diag_; }

  /// True when the last run() was stopped by a watchdog.
  bool watchdog_tripped() const { return watchdog_tripped_; }

  /// Invoked after each completed cycle (monitors, stimulus recorders).
  void on_cycle_end(std::function<void(std::uint64_t cycle)> cb) {
    monitors_.push_back(std::move(cb));
  }

  sfg::Clk& clk() const { return *clk_; }
  std::uint64_t cycles() const { return clk_->cycle(); }

  // --- checkpoint/restore (see ckpt/snapshot.h) ---

  /// Extra entropy mixed into state_hash(), typically a hash of the
  /// canonical source description (verify::System salts with the spec
  /// text) so structurally similar but distinct designs reject each
  /// other's snapshots.
  void set_state_salt(std::uint64_t salt) { state_salt_ = salt; }
  std::uint64_t state_salt() const { return state_salt_; }

  /// Structural content hash binding snapshots to this system: the salt,
  /// component names, net names in creation order, and every enrolled
  /// register's name, format and reset value.
  std::uint64_t state_hash() const;

  /// Serialize the complete cross-cycle simulation state — register
  /// values, net tokens and external drives, component state (FSM current
  /// states, adapter queues, firing counters), the clock's cycle count and
  /// the levelized-schedule cursor — at a cycle boundary.
  void save_state(std::ostream& os) const;

  /// Restore a save_state() snapshot. Throws ckpt::SnapshotError with a
  /// structured CKPT-001..004 diagnostic on mismatch or corruption; on
  /// failure the scheduler state is left exactly as it was (restore is
  /// transactional via an internal rollback snapshot).
  void restore_state(std::istream& is);

  /// Introspection for the compiled-code and HDL generators.
  const std::vector<Component*>& components() const { return comps_; }
  std::vector<Net*> all_nets() const;
  int max_iterations() const { return max_iters_; }

 private:
  diag::Diagnostic deadlock_postmortem() const;
  void restore_state_impl(std::istream& is);
  void refresh_schedule() {
    if (!schedule_stale_) return;
    schedule_ = Schedule::build(comps_);
    schedule_stale_ = false;
  }

  sfg::Clk* clk_;
  std::vector<Component*> comps_;
  std::map<std::string, std::unique_ptr<Net>> nets_;
  std::vector<Net*> net_list_;  ///< flat creation-order view of nets_, for the hot per-cycle sweep
  std::vector<std::function<void(std::uint64_t)>> monitors_;
  int max_iters_ = 64;
  diag::DiagEngine* diag_ = nullptr;
  diag::DiagEngine own_diag_;
  bool watchdog_tripped_ = false;
  ScheduleMode mode_ = ScheduleMode::kAuto;
  unsigned threads_ = 1;
  Schedule schedule_;
  bool schedule_stale_ = true;
  int schedule_failures_ = 0;   // consecutive walk misses; >= 2 disables the walk
  bool sched002_reported_ = false;
  std::uint64_t state_salt_ = 0;
  bool profile_ = false;
  std::map<Component*, std::pair<std::uint64_t, double>> prof_;
};

}  // namespace asicpp::sched
