// Untimed blocks inside the cycle scheduler.
//
// The cycle scheduler "can incorporate untimed blocks as well" (section 2);
// in the DECT transceiver the RAM cells attached to the datapaths are
// described at high level while the datapaths are clock-cycle true
// (section 4). An UntimedComponent fires at most once per clock cycle, as
// soon as every bound input net carries a token; it is opportunistic — not
// firing is not an error (the datapath may simply not address the RAM this
// cycle).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fixpt/fixed.h"
#include "sched/component.h"
#include "sched/net.h"

namespace asicpp::sched {

class UntimedComponent : public Component {
 public:
  /// `fn(inputs)` receives one token per bound input net (binding order)
  /// and returns one token per bound output net. State lives in the
  /// closure (e.g. a RAM's storage).
  using Behavior =
      std::function<std::vector<fixpt::Fixed>(const std::vector<fixpt::Fixed>&)>;

  UntimedComponent(std::string name, Behavior fn)
      : Component(std::move(name)), fn_(std::move(fn)) {}

  void bind_input(Net& net) { ins_.push_back(&net); }
  void bind_output(Net& net) { outs_.push_back(&net); }

  void begin_cycle(std::uint64_t) override { fired_ = false; }
  void produce_tokens(std::uint64_t) override {}
  bool try_fire(std::uint64_t stamp) override;
  bool done() const override { return fired_; }
  bool must_fire() const override { return false; }
  void end_cycle(std::uint64_t) override {}
  std::vector<const Net*> waiting_nets() const override {
    std::vector<const Net*> nets;
    if (fired_) return nets;
    for (const Net* n : ins_)
      if (!n->has_token()) nets.push_back(n);
    return nets;
  }
  std::vector<const Net*> pending_output_nets() const override {
    if (fired_) return {};
    return {outs_.begin(), outs_.end()};
  }
  StaticDeps static_deps() const override {
    StaticDeps d;
    d.schedulable = true;
    d.fire_requires.assign(ins_.begin(), ins_.end());
    d.fire_produces.assign(outs_.begin(), outs_.end());
    return d;
  }

  std::size_t firings() const { return firings_; }
  /// Checkpoint restore: force the lifetime firing count.
  void set_firings(std::size_t n) { firings_ = n; }

  /// Checkpoint: the firing counter round-trips; closure state (`fn_`'s
  /// captures, e.g. a RAM's storage) is opaque to the snapshot format and
  /// out of scope — stateful closures need external re-seeding on restore.
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

  /// Introspection / direct invocation for the compiled simulator.
  const std::vector<Net*>& input_nets() const { return ins_; }
  const std::vector<Net*>& output_nets() const { return outs_; }
  std::vector<fixpt::Fixed> invoke(const std::vector<fixpt::Fixed>& inputs) {
    ++firings_;
    return fn_(inputs);
  }

 private:
  Behavior fn_;
  std::vector<Net*> ins_;
  std::vector<Net*> outs_;
  bool fired_ = false;
  std::size_t firings_ = 0;
};

}  // namespace asicpp::sched
