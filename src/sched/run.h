// Unified engine run API.
//
// All three simulation engines — the interpreted `sched::CycleScheduler`,
// the compiled-tape `sim::CompiledSystem`, and the dataflow
// `df::DynamicScheduler` — accept one `RunOptions` (budgets, watchdogs,
// trace hooks, schedule mode, optimizer passes) and return one `RunResult`
// (work done, retry accounting, per-component timing, stop reason).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "diag/diag.h"
#include "opt/options.h"

namespace asicpp {

/// How the cycle engines order the phase-2 evaluation sweep.
enum class ScheduleMode {
  /// Use the levelized static schedule when the system admits one, fall
  /// back to iterative relaxation otherwise (the default).
  kAuto,
  /// Require the levelized schedule; when the system cannot be levelized a
  /// SCHED-002 diagnostic is recorded and the run proceeds iteratively.
  kLevelized,
  /// Always use the original iterative three-phase relaxation.
  kIterative,
};

const char* schedule_mode_name(ScheduleMode m);

/// Why a run() returned.
enum class StopReason {
  kCompleted,     ///< the requested cycle count was simulated
  kQuiescent,     ///< dataflow: no process can fire, no tokens stranded
  kDeadlock,      ///< dataflow: no process can fire, tokens stranded
  kCycleBudget,   ///< WATCHDOG-001: total cycle budget exhausted
  kFiringBudget,  ///< WATCHDOG-001: dataflow firing budget exhausted
  kWallClock,     ///< WATCHDOG-002: wall-clock limit exceeded
};

const char* stop_reason_name(StopReason r);

/// One engine run request. Plain aggregate — use designated initializers or
/// the fluent setters: `run(RunOptions{}.for_cycles(100).within(0.5))`.
struct RunOptions {
  /// Cycle engines: cycles to simulate in this call (0 = none).
  std::uint64_t cycles = 0;
  /// Dataflow engine: firing budget for this call (0 = engine default).
  std::uint64_t firings = 0;
  /// Watchdog: stop once the engine's *total* cycle count reaches this
  /// value (0 = unlimited).
  std::uint64_t cycle_budget = 0;
  /// Watchdog: stop after this much wall-clock time in seconds
  /// (0 = unlimited).
  double wall_clock_s = 0.0;
  /// Phase-2 evaluation order policy (cycle engines).
  ScheduleMode schedule = ScheduleMode::kAuto;
  /// Worker lanes for the level-parallel phase-2 walk (cycle engines):
  /// each level of the static schedule is partitioned across this many
  /// threads with a barrier per level. 1 = serial (the default), 0 = one
  /// lane per hardware thread. Only levelized cycles parallelize — the
  /// iterative fallback, profiled runs, and levels narrower than the width
  /// threshold stay serial — and results are bit-identical to serial runs
  /// (actions within a level touch disjoint nets by construction).
  unsigned nthreads = 1;
  /// Collect per-component firing counts and wall time into
  /// RunResult::timing (adds two clock reads per firing).
  bool profile = false;
  /// Route diagnostics (watchdog reports, SCHED-002, post-mortems) into
  /// this engine for the duration of the run instead of the attached one.
  diag::DiagEngine* diagnostics = nullptr;
  /// Trace / recorder hook, invoked after every completed cycle (cycle
  /// engines) or after every firing sweep (dataflow engine).
  std::function<void(std::uint64_t)> on_cycle_end;
  /// Checkpoint cadence: invoke `on_checkpoint` every N completed cycles
  /// (cycle engines) or firing sweeps (dataflow engine). 0 = never.
  std::uint64_t checkpoint_every = 0;
  /// Checkpoint hook, called with the engine's total cycle (or sweep)
  /// count; the callback typically calls the engine's save_state. Runs at
  /// a cycle boundary, so the saved state resumes bit-identically.
  std::function<void(std::uint64_t)> on_checkpoint;
  /// Optimization pass pipeline applied to every SFG the run evaluates
  /// (interpreted cycle engine). Defaults to all passes on; PassOptions::
  /// none() restores the pre-IR recursive evaluation, the differential
  /// reference. The compiled engine fixes its passes at compile() time.
  opt::PassOptions passes{};

  RunOptions& for_cycles(std::uint64_t n) { cycles = n; return *this; }
  RunOptions& for_firings(std::uint64_t n) { firings = n; return *this; }
  RunOptions& budget(std::uint64_t total_cycles) { cycle_budget = total_cycles; return *this; }
  RunOptions& within(double seconds) { wall_clock_s = seconds; return *this; }
  RunOptions& mode(ScheduleMode m) { schedule = m; return *this; }
  RunOptions& threads(unsigned n) { nthreads = n; return *this; }
  RunOptions& profiled(bool on = true) { profile = on; return *this; }
  RunOptions& into(diag::DiagEngine& de) { diagnostics = &de; return *this; }
  RunOptions& on_cycle(std::function<void(std::uint64_t)> cb) {
    on_cycle_end = std::move(cb);
    return *this;
  }
  RunOptions& checkpoint(std::uint64_t every,
                         std::function<void(std::uint64_t)> cb) {
    checkpoint_every = every;
    on_checkpoint = std::move(cb);
    return *this;
  }
  RunOptions& with_passes(const opt::PassOptions& p) { passes = p; return *this; }
};

/// Wall time and firing count of one component (or dataflow process)
/// across a profiled run.
struct ComponentTiming {
  std::string component;
  std::uint64_t firings = 0;
  double seconds = 0.0;
};

/// What a run did. Common to all three engines; fields an engine cannot
/// populate stay at their defaults (e.g. retry_passes for the dataflow
/// scheduler, firings deltas for a watchdog-stopped run).
struct RunResult {
  /// Cycles simulated by this call (cycle engines).
  std::uint64_t cycles = 0;
  /// Component / process firings during this call.
  std::uint64_t firings = 0;
  /// Phase-2 evaluation sweeps beyond the first, summed over the run. Zero
  /// in steady-state levelized execution; the iterative scheduler pays one
  /// or more retry passes per cycle on deep combinational chains.
  std::uint64_t retry_passes = 0;
  /// Cycles that executed via the levelized static schedule.
  std::uint64_t levelized_cycles = 0;
  /// Schedule mode actually used for the majority of the run.
  ScheduleMode schedule = ScheduleMode::kIterative;
  StopReason stop = StopReason::kCompleted;
  /// Checkpoints emitted via RunOptions::on_checkpoint during this call.
  std::uint64_t checkpoints = 0;
  /// Per-component timing, populated when RunOptions::profile is set.
  std::vector<ComponentTiming> timing;

  bool watchdog_tripped() const {
    return stop == StopReason::kCycleBudget || stop == StopReason::kFiringBudget ||
           stop == StopReason::kWallClock;
  }
};

inline const char* schedule_mode_name(ScheduleMode m) {
  switch (m) {
    case ScheduleMode::kAuto: return "auto";
    case ScheduleMode::kLevelized: return "levelized";
    case ScheduleMode::kIterative: return "iterative";
  }
  return "?";
}

inline const char* stop_reason_name(StopReason r) {
  switch (r) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kQuiescent: return "quiescent";
    case StopReason::kDeadlock: return "deadlock";
    case StopReason::kCycleBudget: return "cycle budget";
    case StopReason::kFiringBudget: return "firing budget";
    case StopReason::kWallClock: return "wall clock";
  }
  return "?";
}

}  // namespace asicpp
