#include "sched/schedule.h"

#include <algorithm>
#include <deque>
#include <map>

#include "sched/net.h"

namespace asicpp::sched {

std::vector<int> levelize_actions(const std::vector<std::vector<std::int32_t>>& needs,
                                  const std::vector<std::vector<std::int32_t>>& produces,
                                  const std::vector<int>& after,
                                  std::vector<int>* cycle_out) {
  const int n = static_cast<int>(needs.size());

  // Producer map: edges run producer → consumer for every net some action
  // produces in phase 2. Nets with no producer are available before the
  // walk starts (phase-1 tokens, external drives) and add no edges.
  std::map<std::int32_t, std::vector<int>> producers;
  for (int i = 0; i < n; ++i) {
    for (const std::int32_t net : produces[i]) producers[net].push_back(i);
  }

  std::vector<std::vector<int>> adj(n);
  std::vector<int> indeg(n, 0);
  const auto add_edge = [&](int from, int to) {
    adj[from].push_back(to);
    ++indeg[to];
  };
  for (int i = 0; i < n; ++i) {
    for (const std::int32_t net : needs[i]) {
      const auto it = producers.find(net);
      if (it == producers.end()) continue;
      for (const int p : it->second) add_edge(p, i);
    }
    if (after[i] >= 0) add_edge(after[i], i);
  }

  // Kahn's algorithm with longest-path level assignment.
  std::vector<int> level(n, 0);
  std::deque<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  int done = 0;
  while (!ready.empty()) {
    const int u = ready.front();
    ready.pop_front();
    ++done;
    for (const int v : adj[u]) {
      level[v] = std::max(level[v], level[u] + 1);
      if (--indeg[v] == 0) ready.push_back(v);
    }
  }
  if (done == n) return level;

  // Cyclic: every unprocessed action sits on or behind a cycle. Walk
  // forward through unprocessed successors until an action repeats.
  if (cycle_out != nullptr) {
    cycle_out->clear();
    int start = -1;
    for (int i = 0; i < n && start < 0; ++i) {
      if (indeg[i] > 0) start = i;
    }
    std::vector<int> pos(n, -1);
    std::vector<int> path;
    int u = start;
    while (u >= 0 && pos[u] < 0) {
      pos[u] = static_cast<int>(path.size());
      path.push_back(u);
      int next = -1;
      for (const int v : adj[u]) {
        if (indeg[v] > 0) {
          next = v;
          break;
        }
      }
      u = next;
    }
    if (u >= 0) cycle_out->assign(path.begin() + pos[u], path.end());
  }
  return {};
}

Schedule Schedule::build(const std::vector<Component*>& comps) {
  Schedule s;
  s.ncomps_ = comps.size();

  std::vector<Component*> act_comp;
  std::vector<std::vector<std::int32_t>> needs;
  std::vector<std::vector<std::int32_t>> produces;
  std::vector<int> after;

  std::map<const Net*, std::int32_t> net_ids;
  const auto ids_of = [&](const std::vector<const Net*>& nets) {
    std::vector<std::int32_t> ids;
    ids.reserve(nets.size());
    for (const Net* n : nets) {
      const auto [it, inserted] =
          net_ids.emplace(n, static_cast<std::int32_t>(net_ids.size()));
      (void)inserted;
      ids.push_back(it->second);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  };

  for (Component* c : comps) {
    const Component::StaticDeps d = c->static_deps();
    if (!d.schedulable) {
      s.reason_ = "component '" + c->name() + "' has no static firing order";
      return s;
    }
    int decode_idx = -1;
    if (d.has_decode) {
      decode_idx = static_cast<int>(act_comp.size());
      act_comp.push_back(c);
      needs.push_back(ids_of(d.decode_requires));
      produces.push_back(ids_of(d.decode_produces));
      after.push_back(-1);
    }
    act_comp.push_back(c);
    needs.push_back(ids_of(d.fire_requires));
    produces.push_back(ids_of(d.fire_produces));
    after.push_back(decode_idx);
  }

  std::vector<int> cyc;
  const std::vector<int> levels = levelize_actions(needs, produces, after, &cyc);
  if (levels.size() != act_comp.size()) {
    std::string msg = "dependency cycle:";
    for (const int a : cyc) {
      // The decode and firing actions of one dispatch component may both
      // appear; naming the component once is enough.
      if (msg.empty() || msg.rfind(act_comp[a]->name()) == std::string::npos)
        msg += " " + act_comp[a]->name();
    }
    s.reason_ = msg;
    return s;
  }

  std::vector<int> idx(act_comp.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](int a, int b) { return levels[a] < levels[b]; });
  s.order_.reserve(idx.size());
  for (const int i : idx) {
    s.order_.push_back(Slot{act_comp[i], levels[i]});
    s.levels_ = std::max(s.levels_, levels[i] + 1);
  }
  s.offsets_.assign(static_cast<std::size_t>(s.levels_) + 1, s.order_.size());
  for (std::size_t i = s.order_.size(); i-- > 0;)
    s.offsets_[static_cast<std::size_t>(s.order_[i].level)] = i;
  s.offsets_[0] = 0;
  s.valid_ = true;
  return s;
}

}  // namespace asicpp::sched
