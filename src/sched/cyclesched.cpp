#include "sched/cyclesched.h"

#include <chrono>
#include <set>
#include <sstream>

#include "sfg/eval.h"

namespace asicpp::sched {

Net& CycleScheduler::net(const std::string& name) {
  auto it = nets_.find(name);
  if (it == nets_.end())
    it = nets_.emplace(name, std::make_unique<Net>(name)).first;
  return *it->second;
}

diag::Diagnostic CycleScheduler::deadlock_postmortem() const {
  diag::Diagnostic d;
  d.severity = diag::Severity::kFatal;
  d.code = "SCHED-001";
  d.component = "cycle scheduler";
  d.cycle = clk_->cycle();

  std::vector<Component*> blocked;
  for (auto* c : comps_) {
    if (c->must_fire()) blocked.push_back(c);
  }

  std::string names;
  for (const auto* c : blocked) names += (names.empty() ? "" : ", ") + c->name();
  d.message = "combinational deadlock, unfired components: " + names;

  // What each blocked component is waiting for.
  std::set<const Net*> involved;
  for (const auto* c : blocked) {
    std::string waits;
    for (const Net* n : c->waiting_nets()) {
      involved.insert(n);
      waits += (waits.empty() ? "" : ", ") + ("'" + n->name() + "'");
    }
    d.note("component '" + c->name() + "' waits on net" +
           (waits.empty() ? "s: (none — iteration bound too low?)" : "(s): " + waits));
  }

  // The blocking dependency cycle: edge A -> B when A waits on a net B
  // would produce.
  std::vector<std::vector<int>> adj(blocked.size());
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    for (const Net* n : blocked[i]->waiting_nets()) {
      for (std::size_t j = 0; j < blocked.size(); ++j) {
        if (i == j) continue;
        for (const Net* p : blocked[j]->pending_output_nets()) {
          if (p == n) adj[i].push_back(static_cast<int>(j));
        }
      }
    }
  }
  const auto cyc = diag::find_cycle(adj);
  if (!cyc.empty()) {
    std::string chain = blocked[static_cast<std::size_t>(cyc[0])]->name();
    for (std::size_t k = 1; k < cyc.size(); ++k) {
      const auto* from = blocked[static_cast<std::size_t>(cyc[k - 1])];
      const auto* to = blocked[static_cast<std::size_t>(cyc[k])];
      // Label the edge with a net `from` waits on that `to` produces.
      std::string via;
      for (const Net* n : from->waiting_nets()) {
        for (const Net* p : to->pending_output_nets()) {
          if (p == n) via = n->name();
        }
      }
      chain += " -[" + via + "]-> " + to->name();
    }
    d.note("dependency cycle: " + chain);
  }

  // Last-known values of every net in the blocking set.
  for (const Net* n : involved) {
    std::ostringstream os;
    os << "net '" << n->name() << "' last value = " << n->last().value()
       << (n->has_token() ? " (token present)" : " (no token this cycle)");
    d.note(os.str());
  }
  return d;
}

CycleScheduler::CycleStats CycleScheduler::cycle() {
  const std::uint64_t stamp = sfg::new_eval_stamp();
  CycleStats stats;

  for (auto& [_, n] : nets_) n->begin_cycle();

  // Phase 0: transition selection.
  for (auto* c : comps_) c->begin_cycle(stamp);

  // Phase 1: token production.
  for (auto* c : comps_) c->produce_tokens(stamp);

  // Phase 2: iterative evaluation.
  bool all_done = false;
  while (!all_done) {
    bool progress = false;
    all_done = true;
    for (auto* c : comps_) {
      if (c->done()) continue;
      if (c->try_fire(stamp)) {
        progress = true;
        ++stats.fired_components;
      }
      if (!c->done()) all_done = false;
    }
    ++stats.eval_iterations;
    if (all_done) break;
    if (!progress || stats.eval_iterations >= max_iters_) {
      // Anything still obliged to fire marks a combinational loop.
      bool any_blocked = false;
      for (auto* c : comps_) {
        if (c->must_fire()) any_blocked = true;
      }
      if (any_blocked) {
        diag::Diagnostic d = deadlock_postmortem();
        diagnostics().report(d);
        throw DeadlockError(std::move(d));
      }
      break;  // only opportunistic untimed blocks remain unfired
    }
  }

  // Phase 3: register update.
  for (auto* c : comps_) c->end_cycle(stamp);
  clk_->advance();

  for (auto& m : monitors_) m(clk_->cycle());
  return stats;
}

std::vector<Net*> CycleScheduler::all_nets() const {
  std::vector<Net*> out;
  out.reserve(nets_.size());
  for (const auto& [_, n] : nets_) out.push_back(n.get());
  return out;
}

std::uint64_t CycleScheduler::run(std::uint64_t n) {
  watchdog_tripped_ = false;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    if (cycle_budget_ != 0 && clk_->cycle() >= cycle_budget_) {
      auto& d = diagnostics().fatal(
          "WATCHDOG-001", "cycle scheduler",
          "cycle budget (" + std::to_string(cycle_budget_) +
              ") exhausted after " + std::to_string(i) + " of " +
              std::to_string(n) + " requested cycles; stopping run");
      d.cycle = clk_->cycle();
      watchdog_tripped_ = true;
      return i;
    }
    if (wall_limit_s_ > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= wall_limit_s_) {
        auto& d = diagnostics().fatal(
            "WATCHDOG-002", "cycle scheduler",
            "wall-clock limit (" + std::to_string(wall_limit_s_) +
                " s) exceeded after " + std::to_string(i) + " of " +
                std::to_string(n) + " requested cycles; stopping run");
        d.cycle = clk_->cycle();
        watchdog_tripped_ = true;
        return i;
      }
    }
    cycle();
  }
  return n;
}

}  // namespace asicpp::sched
