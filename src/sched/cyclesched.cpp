#include "sched/cyclesched.h"

#include <chrono>
#include <set>
#include <sstream>

#include "ckpt/snapshot.h"
#include "sfg/eval.h"
#include "sfg/sfg.h"

namespace asicpp::sched {

Net& CycleScheduler::net(const std::string& name) {
  auto it = nets_.find(name);
  if (it == nets_.end()) {
    it = nets_.emplace(name, std::make_unique<Net>(name)).first;
    net_list_.push_back(it->second.get());
  }
  return *it->second;
}

diag::Diagnostic CycleScheduler::deadlock_postmortem() const {
  diag::Diagnostic d;
  d.severity = diag::Severity::kFatal;
  d.code = "SCHED-001";
  d.component = "cycle scheduler";
  d.cycle = clk_->cycle();

  std::vector<Component*> blocked;
  for (auto* c : comps_) {
    if (c->must_fire()) blocked.push_back(c);
  }

  std::string names;
  for (const auto* c : blocked) names += (names.empty() ? "" : ", ") + c->name();
  d.message = "combinational deadlock, unfired components: " + names;

  // What each blocked component is waiting for.
  std::set<const Net*> involved;
  for (const auto* c : blocked) {
    std::string waits;
    for (const Net* n : c->waiting_nets()) {
      involved.insert(n);
      waits += (waits.empty() ? "" : ", ") + ("'" + n->name() + "'");
    }
    d.note("component '" + c->name() + "' waits on net" +
           (waits.empty() ? "s: (none — iteration bound too low?)" : "(s): " + waits));
  }

  // The blocking dependency cycle: edge A -> B when A waits on a net B
  // would produce.
  std::vector<std::vector<int>> adj(blocked.size());
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    for (const Net* n : blocked[i]->waiting_nets()) {
      for (std::size_t j = 0; j < blocked.size(); ++j) {
        if (i == j) continue;
        for (const Net* p : blocked[j]->pending_output_nets()) {
          if (p == n) adj[i].push_back(static_cast<int>(j));
        }
      }
    }
  }
  const auto cyc = diag::find_cycle(adj);
  if (!cyc.empty()) {
    std::string chain = blocked[static_cast<std::size_t>(cyc[0])]->name();
    for (std::size_t k = 1; k < cyc.size(); ++k) {
      const auto* from = blocked[static_cast<std::size_t>(cyc[k - 1])];
      const auto* to = blocked[static_cast<std::size_t>(cyc[k])];
      // Label the edge with a net `from` waits on that `to` produces.
      std::string via;
      for (const Net* n : from->waiting_nets()) {
        for (const Net* p : to->pending_output_nets()) {
          if (p == n) via = n->name();
        }
      }
      chain += " -[" + via + "]-> " + to->name();
    }
    d.note("dependency cycle: " + chain);
  }

  // Last-known values of every net in the blocking set.
  for (const Net* n : involved) {
    std::ostringstream os;
    os << "net '" << n->name() << "' last value = " << n->last().value()
       << (n->has_token() ? " (token present)" : " (no token this cycle)");
    d.note(os.str());
  }
  return d;
}

CycleScheduler::CycleStats CycleScheduler::cycle() {
  const std::uint64_t stamp = sfg::new_eval_stamp();
  CycleStats stats;

  for (Net* n : net_list_) n->begin_cycle();

  // Phase 0: transition selection.
  for (auto* c : comps_) c->begin_cycle(stamp);

  // Phase 1: token production.
  for (auto* c : comps_) c->produce_tokens(stamp);

  const auto fire = [&](Component* c) {
    if (!profile_) return c->try_fire(stamp);
    const auto t0 = std::chrono::steady_clock::now();
    const bool f = c->try_fire(stamp);
    auto& [firings, seconds] = prof_[c];
    seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (f) ++firings;
    return f;
  };

  // Phase 2, levelized: walk the cached static order once — every producer
  // precedes its consumers, so one pass fires everything with zero retries.
  bool need_iterative = true;
  bool walk_missed = false;
  if (mode_ != ScheduleMode::kIterative) {
    refresh_schedule();
    if (mode_ == ScheduleMode::kLevelized && !schedule_.valid() && !sched002_reported_) {
      auto& d = diagnostics().warning(
          "SCHED-002", "cycle scheduler",
          "levelized schedule requested but the system cannot be statically "
          "ordered (" + schedule_.reason() + "); running iteratively");
      d.cycle = clk_->cycle();
      sched002_reported_ = true;
    }
    if (schedule_.valid() && schedule_failures_ < 2) {
      // Level-parallel walk: partition each level across the pool with a
      // barrier per level. Actions within one level read nets of earlier
      // levels and write disjoint nets, so the result is bit-identical to
      // the serial walk. Profiled runs keep the serial walk (the timing
      // map is single-owner), as does a scheduler already running on a
      // pool lane (no nested regions).
      const bool par_walk = threads_ > 1 && !profile_ &&
                            !par::Pool::in_parallel_region();
      if (par_walk) {
        const auto& order = schedule_.order();
        const auto& offs = schedule_.level_offsets();
        std::atomic<int> fired{0};
        for (std::size_t l = 0; l + 1 < offs.size(); ++l) {
          const std::size_t b = offs[l], e = offs[l + 1];
          if (e - b < kMinParallelWidth) {
            for (std::size_t i = b; i < e; ++i) {
              if (!order[i].comp->done() && order[i].comp->try_fire(stamp))
                fired.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            par::Pool::shared().parallel_for(
                e - b,
                [&](std::size_t k) {
                  Component* c = order[b + k].comp;
                  if (!c->done() && c->try_fire(stamp))
                    fired.fetch_add(1, std::memory_order_relaxed);
                },
                threads_);
          }
        }
        stats.fired_components += fired.load(std::memory_order_relaxed);
      } else {
        for (const auto& slot : schedule_.order()) {
          if (!slot.comp->done() && fire(slot.comp)) ++stats.fired_components;
        }
      }
      ++stats.eval_iterations;
      need_iterative = false;
      for (auto* c : comps_) {
        if (c->must_fire()) {
          need_iterative = true;
          break;
        }
      }
      if (need_iterative) {
        // The static order no longer matches the system (e.g. bindings
        // changed after levelization). Finish the cycle iteratively; the
        // SCHED-002 report waits until recovery succeeds — when the sweep
        // deadlocks too, SCHED-001 is the real story.
        walk_missed = true;
      } else {
        stats.levelized = true;
        schedule_failures_ = 0;
      }
    }
  }

  // Phase 2, iterative evaluation (also the fallback path after a missed
  // level walk: fired components are skipped, the sweep finishes the rest).
  if (need_iterative) {
    bool all_done = false;
    while (!all_done) {
      bool progress = false;
      all_done = true;
      for (auto* c : comps_) {
        if (c->done()) continue;
        if (fire(c)) {
          progress = true;
          ++stats.fired_components;
        }
        if (!c->done()) all_done = false;
      }
      ++stats.eval_iterations;
      if (all_done) break;
      if (!progress || stats.eval_iterations >= max_iters_) {
        // Anything still obliged to fire marks a combinational loop.
        bool any_blocked = false;
        for (auto* c : comps_) {
          if (c->must_fire()) any_blocked = true;
        }
        if (any_blocked) {
          diag::Diagnostic d = deadlock_postmortem();
          diagnostics().report(d);
          throw DeadlockError(std::move(d));
        }
        break;  // only opportunistic untimed blocks remain unfired
      }
    }
    if (walk_missed) {
      ++schedule_failures_;
      auto& d = diagnostics().warning(
          "SCHED-002", "cycle scheduler",
          "schedule invalidated: the static level walk left components "
          "unfired; cycle recovered iteratively and the order will be "
          "re-levelized" +
              std::string(schedule_failures_ >= 2
                              ? " (repeat miss — reverting to iterative mode)"
                              : ""));
      d.cycle = clk_->cycle();
      schedule_stale_ = true;
    }
  }

  // Phase 3: register update.
  for (auto* c : comps_) c->end_cycle(stamp);
  clk_->advance();

  for (auto& m : monitors_) m(clk_->cycle());
  return stats;
}

std::vector<Net*> CycleScheduler::all_nets() const {
  std::vector<Net*> out;
  out.reserve(nets_.size());
  for (const auto& [_, n] : nets_) out.push_back(n.get());
  return out;
}

RunResult CycleScheduler::run(const RunOptions& opts) {
  // Scoped overrides: options replace the sticky engine state for this run
  // only, restored even when a cycle throws DeadlockError.
  struct Restore {
    CycleScheduler* s;
    diag::DiagEngine* diag;
    ScheduleMode mode;
    unsigned threads;
    ~Restore() {
      s->diag_ = diag;
      s->mode_ = mode;
      s->threads_ = threads;
      s->profile_ = false;
    }
  } restore{this, diag_, mode_, threads_};
  if (opts.diagnostics != nullptr) diag_ = opts.diagnostics;
  mode_ = opts.schedule;
  set_threads(opts.nthreads);
  profile_ = opts.profile;
  prof_.clear();
  set_pass_options(opts.passes);

  const std::uint64_t budget = opts.cycle_budget;
  const double wall = opts.wall_clock_s;

  RunResult r;
  watchdog_tripped_ = false;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < opts.cycles; ++i) {
    if (budget != 0 && clk_->cycle() >= budget) {
      auto& d = diagnostics().fatal(
          "WATCHDOG-001", "cycle scheduler",
          "cycle budget (" + std::to_string(budget) + ") exhausted after " +
              std::to_string(i) + " of " + std::to_string(opts.cycles) +
              " requested cycles; stopping run");
      d.cycle = clk_->cycle();
      watchdog_tripped_ = true;
      r.stop = StopReason::kCycleBudget;
      break;
    }
    if (wall > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= wall) {
        auto& d = diagnostics().fatal(
            "WATCHDOG-002", "cycle scheduler",
            "wall-clock limit (" + std::to_string(wall) + " s) exceeded after " +
                std::to_string(i) + " of " + std::to_string(opts.cycles) +
                " requested cycles; stopping run");
        d.cycle = clk_->cycle();
        watchdog_tripped_ = true;
        r.stop = StopReason::kWallClock;
        break;
      }
    }
    const CycleStats st = cycle();
    ++r.cycles;
    r.firings += static_cast<std::uint64_t>(st.fired_components);
    if (st.eval_iterations > 1)
      r.retry_passes += static_cast<std::uint64_t>(st.eval_iterations - 1);
    if (st.levelized) ++r.levelized_cycles;
    if (opts.on_cycle_end) opts.on_cycle_end(clk_->cycle());
    if (opts.checkpoint_every != 0 && opts.on_checkpoint &&
        (i + 1) % opts.checkpoint_every == 0) {
      opts.on_checkpoint(clk_->cycle());
      ++r.checkpoints;
    }
  }
  r.schedule = (r.levelized_cycles > 0 && r.levelized_cycles * 2 >= r.cycles)
                   ? ScheduleMode::kLevelized
                   : ScheduleMode::kIterative;
  if (opts.profile) {
    r.timing.reserve(comps_.size());
    for (auto* c : comps_) {
      const auto it = prof_.find(c);
      if (it == prof_.end()) continue;
      r.timing.push_back(ComponentTiming{c->name(), it->second.first, it->second.second});
    }
  }
  return r;
}

std::uint64_t CycleScheduler::state_hash() const {
  ckpt::Hasher h;
  h.u64(state_salt_);
  h.str("cycle-scheduler");
  h.u32(static_cast<std::uint32_t>(comps_.size()));
  for (const Component* c : comps_) h.str(c->name());
  h.u32(static_cast<std::uint32_t>(net_list_.size()));
  for (const Net* n : net_list_) h.str(n->name());
  const auto& regs = clk_->registers();
  h.u32(static_cast<std::uint32_t>(regs.size()));
  for (const auto& n : regs) {
    h.str(n->name);
    h.f64(n->init);
    h.u8(n->has_fmt ? 1 : 0);
    if (n->has_fmt) h.fmt(n->fmt);
  }
  return h.digest();
}

void CycleScheduler::save_state(std::ostream& os) const {
  ckpt::Writer w(os);
  w.header(ckpt::EngineKind::kCycleScheduler, state_hash(), clk_->cycle());
  // Registers in clock-enrollment order. Snapshots are taken at cycle
  // boundaries, where every pending next-value has been committed, so the
  // current value is the whole register state.
  const auto& regs = clk_->registers();
  w.u32(static_cast<std::uint32_t>(regs.size()));
  for (const auto& n : regs) {
    w.str(n->name);
    w.fixed(n->value);
  }
  w.u32(static_cast<std::uint32_t>(net_list_.size()));
  for (const Net* n : net_list_) n->save_state(w);
  w.u32(static_cast<std::uint32_t>(comps_.size()));
  for (const Component* c : comps_) {
    w.str(c->name());
    c->save_state(w);
  }
  // Levelized-schedule cursor: the walk-miss counter and its one-shot
  // report flag (the level order itself rebuilds lazily from structure).
  w.i32(schedule_failures_);
  w.u8(sched002_reported_ ? 1 : 0);
  w.end();
}

void CycleScheduler::restore_state_impl(std::istream& is) {
  ckpt::Reader r(is, "cycle scheduler");
  const std::uint64_t cyc =
      r.header(ckpt::EngineKind::kCycleScheduler, state_hash());

  const auto& regs = clk_->registers();
  const std::size_t nregs = r.count(1u << 24);
  if (nregs != regs.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(nregs) +
            " register(s), this system has " + std::to_string(regs.size())});
  }
  for (const auto& n : regs) {
    const std::string name = r.str();
    if (name != n->name) {
      r.fail("CKPT-004", "truncated or corrupt snapshot stream",
             {"register record names '" + name + "' where '" + n->name +
              "' was expected"});
    }
    n->value = r.fixed();
    n->next = fixpt::Fixed{};
    n->next_set = false;
  }

  const std::size_t nnets = r.count(1u << 24);
  if (nnets != net_list_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(nnets) +
            " net(s), this system has " + std::to_string(net_list_.size())});
  }
  for (Net* n : net_list_) n->restore_state(r);

  const std::size_t ncomps = r.count(1u << 24);
  if (ncomps != comps_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(ncomps) +
            " component(s), this system has " + std::to_string(comps_.size())});
  }
  for (Component* c : comps_) {
    const std::string name = r.str();
    if (name != c->name()) {
      r.fail("CKPT-004", "truncated or corrupt snapshot stream",
             {"component record names '" + name + "' where '" + c->name() +
              "' was expected"});
    }
    c->restore_state(r);
  }

  schedule_failures_ = r.i32();
  sched002_reported_ = r.u8() != 0;
  r.end();
  clk_->set_cycle(cyc);
}

void CycleScheduler::restore_state(std::istream& is) {
  // Transactional restore: snapshot the current state first, and roll back
  // on any failure — a bad snapshot must leave the engine untouched. The
  // rollback snapshot is self-produced against the same structure, so
  // re-applying it cannot fail.
  std::ostringstream backup;
  save_state(backup);
  try {
    restore_state_impl(is);
  } catch (...) {
    std::istringstream b(backup.str());
    restore_state_impl(b);
    throw;
  }
}

void CycleScheduler::set_pass_options(const opt::PassOptions& p) {
  std::vector<sfg::Sfg*> sfgs;
  for (auto* c : comps_) c->collect_sfgs(sfgs);
  for (auto* s : sfgs) s->set_pass_options(p);
}

}  // namespace asicpp::sched
