#include "sched/cyclesched.h"

#include "sfg/eval.h"

namespace asicpp::sched {

Net& CycleScheduler::net(const std::string& name) {
  auto it = nets_.find(name);
  if (it == nets_.end())
    it = nets_.emplace(name, std::make_unique<Net>(name)).first;
  return *it->second;
}

CycleScheduler::CycleStats CycleScheduler::cycle() {
  const std::uint64_t stamp = sfg::new_eval_stamp();
  CycleStats stats;

  for (auto& [_, n] : nets_) n->begin_cycle();

  // Phase 0: transition selection.
  for (auto* c : comps_) c->begin_cycle(stamp);

  // Phase 1: token production.
  for (auto* c : comps_) c->produce_tokens(stamp);

  // Phase 2: iterative evaluation.
  bool all_done = false;
  while (!all_done) {
    bool progress = false;
    all_done = true;
    for (auto* c : comps_) {
      if (c->done()) continue;
      if (c->try_fire(stamp)) {
        progress = true;
        ++stats.fired_components;
      }
      if (!c->done()) all_done = false;
    }
    ++stats.eval_iterations;
    if (all_done) break;
    if (!progress || stats.eval_iterations >= max_iters_) {
      // Anything still obliged to fire marks a combinational loop.
      std::string blocked;
      for (auto* c : comps_) {
        if (c->must_fire()) blocked += (blocked.empty() ? "" : ", ") + c->name();
      }
      if (!blocked.empty())
        throw DeadlockError("cycle " + std::to_string(clk_->cycle()) +
                            ": combinational deadlock, unfired components: " + blocked);
      break;  // only opportunistic untimed blocks remain unfired
    }
  }

  // Phase 3: register update.
  for (auto* c : comps_) c->end_cycle(stamp);
  clk_->advance();

  for (auto& m : monitors_) m(clk_->cycle());
  return stats;
}

std::vector<Net*> CycleScheduler::all_nets() const {
  std::vector<Net*> out;
  out.reserve(nets_.size());
  for (const auto& [_, n] : nets_) out.push_back(n.get());
  return out;
}

void CycleScheduler::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) cycle();
}

}  // namespace asicpp::sched
