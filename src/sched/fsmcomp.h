// Timed components: FSM-controlled and instruction-dispatched blocks.
//
// `FsmComponent` is the paper's mixed control/data description — a Mealy
// FSM coupled to a datapath (section 3). Its transition is selected in
// phase 0 from registered conditions; the transition's SFGs are the marked
// SFGs of the cycle.
//
// `DispatchComponent` models the VLIW datapaths of Fig 5: a block whose
// behaviour for the cycle is selected by an *instruction token* arriving on
// the interconnect. It cannot select in phase 0 (the instruction is data),
// so it resolves during the evaluation phase — this is exactly why the
// evaluation phase is iterative.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fsm/fsm.h"
#include "sched/component.h"
#include "sched/net.h"
#include "sfg/sfg.h"
#include "sfg/sig.h"

namespace asicpp::sched {

/// Shared port-binding plumbing for timed components.
class TimedBase : public Component {
 public:
  using Component::Component;

  struct InBind {
    sfg::NodePtr node;
    Net* net;
  };

  /// Feed input signal `in` from `net` each cycle.
  void bind_input(const sfg::Sig& in, Net& net);
  /// Put SFG output `port` onto `net` whenever a marked SFG computes it.
  void bind_output(const std::string& port, Net& net);

  /// Introspection for the compiled-code generator (sim/ and hdl/).
  const std::vector<InBind>& input_bindings() const { return in_binds_; }
  const std::map<std::string, Net*>& output_bindings() const { return out_binds_; }

 protected:

  /// Static-scheduling helpers: accumulate the bound input nets `s`
  /// declares, and the bound output nets of `s` on the phase selected by
  /// `needs_inputs` (true: phase-2 products; false: register-only outputs).
  void static_requires(const sfg::Sfg& s, std::vector<const Net*>& req) const;
  void static_produces(const sfg::Sfg& s, bool needs_inputs,
                       std::vector<const Net*>& out) const;

  /// Bound input nets declared by `s` that do not yet carry a token.
  std::vector<const Net*> missing_inputs(const sfg::Sfg& s) const;
  /// Bound output nets of `s`'s ports.
  void bound_outputs(const sfg::Sfg& s, std::vector<const Net*>& out) const;

  /// All bound inputs that `s` declares have tokens waiting.
  bool inputs_ready(sfg::Sfg& s) const;
  /// Copy net tokens into the input signals declared by `s`.
  void load_inputs(sfg::Sfg& s);
  /// Push computed outputs of `s` onto their nets; `reg_only_phase` selects
  /// which outputs (phase 1: input-independent; phase 2: the rest).
  void push_outputs(sfg::Sfg& s, bool reg_only_phase);

  std::vector<InBind> in_binds_;
  std::map<std::string, Net*> out_binds_;
};

/// Mealy FSM + datapath component (phase-0 transition selection).
class FsmComponent : public TimedBase {
 public:
  FsmComponent(std::string name, fsm::Fsm& f) : TimedBase(std::move(name)), fsm_(&f) {}

  void begin_cycle(std::uint64_t stamp) override;
  void produce_tokens(std::uint64_t stamp) override;
  bool try_fire(std::uint64_t stamp) override;
  bool done() const override { return fired_ || pending_ == nullptr; }
  bool must_fire() const override { return pending_ != nullptr && !fired_; }
  void end_cycle(std::uint64_t stamp) override;
  std::vector<const Net*> waiting_nets() const override;
  std::vector<const Net*> pending_output_nets() const override;
  StaticDeps static_deps() const override;
  void collect_sfgs(std::vector<sfg::Sfg*>& out) const override;
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

  fsm::Fsm& machine() const { return *fsm_; }
  bool fired() const { return fired_; }

 private:
  fsm::Fsm* fsm_;
  const fsm::Fsm::Transition* pending_ = nullptr;
  bool fired_ = false;
};

/// Always-on datapath: the same SFG executes every cycle.
class SfgComponent : public TimedBase {
 public:
  SfgComponent(std::string name, sfg::Sfg& s) : TimedBase(std::move(name)), sfg_(&s) {}

  void begin_cycle(std::uint64_t stamp) override;
  void produce_tokens(std::uint64_t stamp) override;
  bool try_fire(std::uint64_t stamp) override;
  bool done() const override { return fired_; }
  bool must_fire() const override { return !fired_; }
  void end_cycle(std::uint64_t stamp) override;
  std::vector<const Net*> waiting_nets() const override;
  std::vector<const Net*> pending_output_nets() const override;
  StaticDeps static_deps() const override;
  void collect_sfgs(std::vector<sfg::Sfg*>& out) const override {
    out.push_back(sfg_);
  }

  sfg::Sfg& graph() const { return *sfg_; }

 private:
  sfg::Sfg* sfg_;
  bool fired_ = false;
};

/// Instruction-dispatched datapath: the token on the instruction net picks
/// which SFG runs this cycle. Unlisted opcodes fall back to `set_default`
/// (typically a "nop" that freezes the datapath state, as during hold).
class DispatchComponent : public TimedBase {
 public:
  DispatchComponent(std::string name, Net& instr_net)
      : TimedBase(std::move(name)), instr_net_(&instr_net) {}

  /// Execute `s` when the instruction token equals `opcode`.
  void add_instruction(long opcode, sfg::Sfg& s);
  void set_default(sfg::Sfg& s) { default_ = &s; }

  std::size_t num_instructions() const { return table_.size(); }

  void begin_cycle(std::uint64_t stamp) override;
  void produce_tokens(std::uint64_t stamp) override;
  bool try_fire(std::uint64_t stamp) override;
  bool done() const override { return fired_; }
  bool must_fire() const override { return !fired_; }
  void end_cycle(std::uint64_t stamp) override;
  std::vector<const Net*> waiting_nets() const override;
  std::vector<const Net*> pending_output_nets() const override;
  StaticDeps static_deps() const override;
  void collect_sfgs(std::vector<sfg::Sfg*>& out) const override;

  Net& instruction_net() const { return *instr_net_; }
  const std::map<long, sfg::Sfg*>& instruction_table() const { return table_; }
  sfg::Sfg* default_instruction() const { return default_; }

 private:
  Net* instr_net_;
  std::map<long, sfg::Sfg*> table_;
  sfg::Sfg* default_ = nullptr;
  sfg::Sfg* selected_ = nullptr;
  bool fired_ = false;
};

}  // namespace asicpp::sched
