#include "sched/net.h"

#include <stdexcept>

namespace asicpp::sched {

void Net::put(const fixpt::Fixed& v) {
  if (has_token_)
    throw std::logic_error("Net '" + name_ + "': two tokens in one cycle (bus conflict)");
  value_ = v;
  has_token_ = true;
}

void Net::begin_cycle() {
  has_token_ = false;
  if (external_) {
    value_ = *external_;
    has_token_ = true;
  }
}

}  // namespace asicpp::sched
