#include "sched/net.h"

#include <stdexcept>

#include "ckpt/snapshot.h"

namespace asicpp::sched {

void Net::put(const fixpt::Fixed& v) {
  if (has_token_)
    throw std::logic_error("Net '" + name_ + "': two tokens in one cycle (bus conflict)");
  value_ = v;
  has_token_ = true;
}

void Net::begin_cycle() {
  has_token_ = false;
  if (external_) {
    value_ = *external_;
    has_token_ = true;
  }
}

void Net::save_state(ckpt::Writer& w) const {
  w.str(name_);
  w.fixed(value_);
  w.u8(has_token_ ? 1 : 0);
  w.u8(external_.has_value() ? 1 : 0);
  if (external_.has_value()) w.fixed(*external_);
}

void Net::restore_state(ckpt::Reader& r) {
  const std::string name = r.str();
  if (name != name_) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"net record names '" + name + "' where '" + name_ +
            "' was expected — net ordering does not match the snapshot"});
  }
  fixpt::Fixed value = r.fixed();
  bool has_token = r.u8() != 0;
  bool driven = r.u8() != 0;
  std::optional<fixpt::Fixed> external;
  if (driven) external = r.fixed();
  value_ = value;
  has_token_ = has_token;
  external_ = external;
}

}  // namespace asicpp::sched
