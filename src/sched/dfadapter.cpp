#include "sched/dfadapter.h"

namespace asicpp::sched {

DataflowAdapter::DataflowAdapter(std::string name, df::Process& p)
    : Component(std::move(name)), proc_(&p) {}

void DataflowAdapter::bind_input(Net& net, std::size_t rate) {
  in_qs_.push_back(std::make_unique<df::Queue>(Component::name() + "_in" +
                                               std::to_string(in_qs_.size())));
  proc_->connect_in(*in_qs_.back(), rate);
  in_nets_.push_back(&net);
}

void DataflowAdapter::bind_output(Net& net, std::size_t rate) {
  out_qs_.push_back(std::make_unique<df::Queue>(Component::name() + "_out" +
                                                std::to_string(out_qs_.size())));
  proc_->connect_out(*out_qs_.back(), rate);
  out_nets_.push_back(&net);
}

void DataflowAdapter::begin_cycle(std::uint64_t) { consumed_ = false; }

void DataflowAdapter::produce_tokens(std::uint64_t) {
  // Drain one buffered token per output net: these depend only on past
  // cycles' firings, so they are register-like and go out in phase 1.
  for (std::size_t i = 0; i < out_qs_.size(); ++i) {
    if (!out_qs_[i]->empty()) out_nets_[i]->put(out_qs_[i]->pop());
  }
}

bool DataflowAdapter::try_fire(std::uint64_t) {
  if (consumed_) return false;
  // Wait until every bound input net carries this cycle's token.
  for (const auto* n : in_nets_) {
    if (!n->has_token()) return false;
  }
  for (std::size_t i = 0; i < in_nets_.size(); ++i)
    in_qs_[i]->push(in_nets_[i]->token());
  consumed_ = true;
  // Fire by the dataflow rule as often as the queues allow. Freshly
  // produced tokens stay buffered until the next cycle's phase 1 — the
  // process is untimed, so its results are "ready next cycle" like a
  // registered output.
  while (proc_->can_fire()) proc_->run_once();
  return true;
}

void DataflowAdapter::end_cycle(std::uint64_t) {}

}  // namespace asicpp::sched
