#include "sched/dfadapter.h"

#include "ckpt/snapshot.h"

namespace asicpp::sched {

DataflowAdapter::DataflowAdapter(std::string name, df::Process& p)
    : Component(std::move(name)), proc_(&p) {}

void DataflowAdapter::bind_input(Net& net, std::size_t rate) {
  in_qs_.push_back(std::make_unique<df::Queue>(Component::name() + "_in" +
                                               std::to_string(in_qs_.size())));
  proc_->connect_in(*in_qs_.back(), rate);
  in_nets_.push_back(&net);
}

void DataflowAdapter::bind_output(Net& net, std::size_t rate) {
  out_qs_.push_back(std::make_unique<df::Queue>(Component::name() + "_out" +
                                                std::to_string(out_qs_.size())));
  proc_->connect_out(*out_qs_.back(), rate);
  out_nets_.push_back(&net);
}

void DataflowAdapter::begin_cycle(std::uint64_t) { consumed_ = false; }

void DataflowAdapter::produce_tokens(std::uint64_t) {
  // Drain one buffered token per output net: these depend only on past
  // cycles' firings, so they are register-like and go out in phase 1.
  for (std::size_t i = 0; i < out_qs_.size(); ++i) {
    if (!out_qs_[i]->empty()) out_nets_[i]->put(out_qs_[i]->pop());
  }
}

bool DataflowAdapter::try_fire(std::uint64_t) {
  if (consumed_) return false;
  // Wait until every bound input net carries this cycle's token.
  for (const auto* n : in_nets_) {
    if (!n->has_token()) return false;
  }
  for (std::size_t i = 0; i < in_nets_.size(); ++i)
    in_qs_[i]->push(in_nets_[i]->token());
  consumed_ = true;
  // Fire by the dataflow rule as often as the queues allow. Freshly
  // produced tokens stay buffered until the next cycle's phase 1 — the
  // process is untimed, so its results are "ready next cycle" like a
  // registered output.
  while (proc_->can_fire()) proc_->run_once();
  return true;
}

void DataflowAdapter::end_cycle(std::uint64_t) {}

namespace {

void save_queue(ckpt::Writer& w, const df::Queue& q) {
  w.u32(static_cast<std::uint32_t>(q.size()));
  for (const df::Token& t : q.contents()) w.fixed(t);
  w.u64(q.total_pushed());
}

std::pair<std::deque<df::Token>, std::size_t> read_queue(ckpt::Reader& r) {
  const std::size_t n = r.count(1u << 24);
  std::deque<df::Token> tokens;
  for (std::size_t i = 0; i < n; ++i) tokens.push_back(r.fixed());
  const auto pushed = static_cast<std::size_t>(r.u64());
  return {std::move(tokens), pushed};
}

}  // namespace

void DataflowAdapter::save_state(ckpt::Writer& w) const {
  w.u64(proc_->firings());
  w.u32(static_cast<std::uint32_t>(in_qs_.size()));
  for (const auto& q : in_qs_) save_queue(w, *q);
  w.u32(static_cast<std::uint32_t>(out_qs_.size()));
  for (const auto& q : out_qs_) save_queue(w, *q);
}

void DataflowAdapter::restore_state(ckpt::Reader& r) {
  const auto firings = static_cast<std::size_t>(r.u64());
  const std::size_t nin = r.count(1u << 16);
  if (nin != in_qs_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"component '" + name() + "': snapshot has " + std::to_string(nin) +
            " input queue(s), adapter owns " + std::to_string(in_qs_.size())});
  }
  std::vector<std::pair<std::deque<df::Token>, std::size_t>> ins;
  ins.reserve(nin);
  for (std::size_t i = 0; i < nin; ++i) ins.push_back(read_queue(r));
  const std::size_t nout = r.count(1u << 16);
  if (nout != out_qs_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"component '" + name() + "': snapshot has " + std::to_string(nout) +
            " output queue(s), adapter owns " + std::to_string(out_qs_.size())});
  }
  std::vector<std::pair<std::deque<df::Token>, std::size_t>> outs;
  outs.reserve(nout);
  for (std::size_t i = 0; i < nout; ++i) outs.push_back(read_queue(r));

  // Everything parsed — apply.
  proc_->set_firings(firings);
  for (std::size_t i = 0; i < nin; ++i)
    in_qs_[i]->restore(std::move(ins[i].first), ins[i].second);
  for (std::size_t i = 0; i < nout; ++i)
    out_qs_[i]->restore(std::move(outs[i].first), outs[i].second);
}

}  // namespace asicpp::sched
