// Levelized static schedule for the phase-2 evaluation sweep.
//
// The three-phase cycle scheduler (Fig 6) resolves the firing order of the
// components every cycle by iterative relaxation: sweep all components,
// fire the ones whose input tokens arrived, repeat. The order it discovers
// is a property of the interconnect graph, not of the data — so it can be
// computed once, after elaboration, and replayed with zero retry passes
// (the compiled-simulator insight of section 5, applied to the scheduler
// itself; cf. Strauch's statically ordered AOC C-models).
//
// The dependency graph is built conservatively from per-component *static*
// dependency declarations (Component::static_deps): an edge runs from every
// possible phase-2 producer of a net to each of its consumers, unioned over
// all FSM transitions / dispatch instructions. Tokens produced in phase 1
// (register- or constant-only outputs, external pin drives) impose no
// ordering. Instruction-dispatched components contribute two slots: a
// decode step gated on the instruction token (which performs the deferred
// token production) and the firing step proper — this is what collapses
// the datapath→RAM→datapath chains of the VLIW transceiver into a
// three-level walk instead of an apparent cycle.
//
// When the union graph is cyclic, or a component has no static description
// (dataflow adapters, custom Component subclasses), the system keeps the
// iterative scheduler: `Schedule::build` returns an invalid schedule whose
// reason() names the obstacle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/component.h"

namespace asicpp::sched {

/// Generic levelization over integer-keyed actions: action `i` needs the
/// nets in `needs[i]`, produces the nets in `produces[i]`, and (when
/// `after[i] >= 0`) must run after action `after[i]` (intra-component
/// decode→fire edges). Nets no action produces are treated as available
/// up front (phase-1 tokens, external drives). Returns the level of each
/// action, or an empty vector when the dependency graph is cyclic; in that
/// case `cycle_out`, when non-null, receives one offending action cycle.
std::vector<int> levelize_actions(const std::vector<std::vector<std::int32_t>>& needs,
                                  const std::vector<std::vector<std::int32_t>>& produces,
                                  const std::vector<int>& after,
                                  std::vector<int>* cycle_out = nullptr);

/// A static phase-2 schedule for the interpreted cycle scheduler: an
/// ordered list of try_fire attempts (dispatch components appear twice,
/// once for decode/token-production and once for firing).
class Schedule {
 public:
  struct Slot {
    Component* comp = nullptr;
    int level = 0;
  };

  /// Levelize `comps`. The returned schedule is invalid (and reason() says
  /// why) when any component lacks a static description or the conservative
  /// dependency graph has a cycle.
  static Schedule build(const std::vector<Component*>& comps);

  bool valid() const { return valid_; }
  const std::string& reason() const { return reason_; }

  /// Phase-2 walk order, ascending by level.
  const std::vector<Slot>& order() const { return order_; }
  int levels() const { return levels_; }

  /// Group boundaries of order() by level: level l spans order() indices
  /// [offsets[l], offsets[l+1]). Size levels()+1; the level-parallel walk
  /// partitions each span across worker lanes with a barrier per level.
  const std::vector<std::size_t>& level_offsets() const { return offsets_; }

  /// Number of components the schedule was built for (staleness check).
  std::size_t component_count() const { return ncomps_; }

 private:
  bool valid_ = false;
  std::string reason_;
  std::vector<Slot> order_;
  std::vector<std::size_t> offsets_;
  int levels_ = 0;
  std::size_t ncomps_ = 0;
};

}  // namespace asicpp::sched
