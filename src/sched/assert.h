// Temporal assertion monitors over interconnect nets.
//
// Lightweight verification layer for system simulations: predicates
// checked at every cycle end, with always / never / eventually semantics
// and a freeze check used to verify protocols like Fig 2's hold (a net
// must not change while a condition holds). Monitors hook the scheduler's
// cycle-end callback and collect violations instead of throwing, so a run
// can be graded afterwards like a testbench.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/cyclesched.h"

namespace asicpp::sched {

class AssertionMonitor {
 public:
  /// Attaches to `sched`; the monitor must outlive the scheduler's use.
  explicit AssertionMonitor(CycleScheduler& sched);

  using Predicate = std::function<bool()>;

  /// `pred` must hold at every cycle end.
  void always(const std::string& label, Predicate pred);
  /// `pred` must never hold.
  void never(const std::string& label, Predicate pred);
  /// `pred` must hold at least once before the run is graded.
  void eventually(const std::string& label, Predicate pred);
  /// While `when` holds, `net` must not change between consecutive cycles.
  void stable_while(const std::string& label, const std::string& net, Predicate when);

  struct Violation {
    std::string label;
    std::uint64_t cycle;  ///< 0 for end-of-run (eventually) failures
  };

  /// Grade the run: folds pending `eventually` obligations into failures.
  std::vector<Violation> grade() const;

  /// True when grade() would be empty. Short-circuits on the first recorded
  /// violation or unsatisfied `eventually` rule instead of materializing the
  /// full grade() vector (monitors are often polled every cycle).
  bool ok() const;
  std::uint64_t cycles_checked() const { return cycles_; }

 private:
  struct Rule {
    enum class Kind { kAlways, kNever, kEventually, kStable } kind;
    std::string label;
    Predicate pred;
    // stable_while state
    const Net* net = nullptr;
    double last = 0.0;
    bool armed = false;
    bool satisfied = false;  // for eventually
  };

  void on_cycle(std::uint64_t cycle);

  CycleScheduler* sched_;
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<Violation> violations_;
  std::uint64_t cycles_ = 0;
};

}  // namespace asicpp::sched
