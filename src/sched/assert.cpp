#include "sched/assert.h"

namespace asicpp::sched {

AssertionMonitor::AssertionMonitor(CycleScheduler& sched) : sched_(&sched) {
  sched.on_cycle_end([this](std::uint64_t cycle) { on_cycle(cycle); });
}

void AssertionMonitor::always(const std::string& label, Predicate pred) {
  auto r = std::make_unique<Rule>();
  r->kind = Rule::Kind::kAlways;
  r->label = label;
  r->pred = std::move(pred);
  rules_.push_back(std::move(r));
}

void AssertionMonitor::never(const std::string& label, Predicate pred) {
  auto r = std::make_unique<Rule>();
  r->kind = Rule::Kind::kNever;
  r->label = label;
  r->pred = std::move(pred);
  rules_.push_back(std::move(r));
}

void AssertionMonitor::eventually(const std::string& label, Predicate pred) {
  auto r = std::make_unique<Rule>();
  r->kind = Rule::Kind::kEventually;
  r->label = label;
  r->pred = std::move(pred);
  rules_.push_back(std::move(r));
}

void AssertionMonitor::stable_while(const std::string& label, const std::string& net,
                                    Predicate when) {
  auto r = std::make_unique<Rule>();
  r->kind = Rule::Kind::kStable;
  r->label = label;
  r->pred = std::move(when);
  r->net = &sched_->net(net);
  rules_.push_back(std::move(r));
}

void AssertionMonitor::on_cycle(std::uint64_t cycle) {
  ++cycles_;
  for (auto& r : rules_) {
    switch (r->kind) {
      case Rule::Kind::kAlways:
        if (!r->pred()) violations_.push_back(Violation{r->label, cycle});
        break;
      case Rule::Kind::kNever:
        if (r->pred()) violations_.push_back(Violation{r->label, cycle});
        break;
      case Rule::Kind::kEventually:
        if (r->pred()) r->satisfied = true;
        break;
      case Rule::Kind::kStable: {
        const double v = r->net->last().value();
        if (r->pred()) {
          if (r->armed && v != r->last) violations_.push_back(Violation{r->label, cycle});
          r->armed = true;
        } else {
          r->armed = false;
        }
        r->last = v;
        break;
      }
    }
  }
}

std::vector<AssertionMonitor::Violation> AssertionMonitor::grade() const {
  auto v = violations_;
  for (const auto& r : rules_) {
    if (r->kind == Rule::Kind::kEventually && !r->satisfied)
      v.push_back(Violation{r->label, 0});
  }
  return v;
}

bool AssertionMonitor::ok() const {
  if (!violations_.empty()) return false;
  for (const auto& r : rules_) {
    if (r->kind == Rule::Kind::kEventually && !r->satisfied) return false;
  }
  return true;
}

}  // namespace asicpp::sched
