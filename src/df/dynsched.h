// Dynamic data-flow scheduler.
//
// "A data-flow scheduler is used to simulate a system that contains only
// untimed blocks. This scheduler repeatedly checks process firing rules,
// selecting processes for execution as their inputs are available."
// (section 2). Terminates when nothing can fire; distinguishes quiescence
// (no pending tokens) from deadlock (tokens stranded on some queue).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "df/process.h"

namespace asicpp::df {

class DynamicScheduler {
 public:
  void add(Process& p) { procs_.push_back(&p); }

  /// Queues whose occupancy counts as "pending work" for deadlock
  /// classification (typically all internal queues, not external sinks).
  void watch(Queue& q) { watched_.push_back(&q); }

  struct Result {
    std::size_t firings = 0;
    bool deadlocked = false;          ///< stopped with tokens stranded
    std::vector<std::string> stranded;  ///< names of non-empty watched queues
  };

  /// Fire ready processes until quiescent or `max_firings` reached.
  Result run(std::size_t max_firings = 1'000'000);

  /// Fire each ready process at most once (one "sweep"); returns #firings.
  std::size_t sweep();

 private:
  std::vector<Process*> procs_;
  std::vector<Queue*> watched_;
};

}  // namespace asicpp::df
