// Dynamic data-flow scheduler.
//
// "A data-flow scheduler is used to simulate a system that contains only
// untimed blocks. This scheduler repeatedly checks process firing rules,
// selecting processes for execution as their inputs are available."
// (section 2). Terminates when nothing can fire; distinguishes quiescence
// (no pending tokens) from deadlock (tokens stranded on some queue). On
// deadlock the result carries a post-mortem: per-queue token-count
// snapshots and the firing rule each blocked process is waiting on. A
// firing budget and an optional wall-clock limit act as run watchdogs for
// non-terminating graphs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "df/process.h"
#include "diag/diag.h"
#include "sched/run.h"

namespace asicpp::df {

class DynamicScheduler {
 public:
  void add(Process& p) { procs_.push_back(&p); }

  /// Queues whose occupancy counts as "pending work" for deadlock
  /// classification (typically all internal queues, not external sinks).
  void watch(Queue& q) { watched_.push_back(&q); }

  /// Token-count snapshot of one watched queue at the end of a run.
  struct QueueSnapshot {
    std::string queue;
    std::size_t tokens = 0;
    std::size_t capacity = 0;
    std::size_t total_pushed = 0;  ///< lifetime pushes, for throughput context
  };

  /// A process that cannot fire, and the firing rule it is waiting on.
  struct BlockedProcess {
    std::string process;
    std::string waiting_on;  ///< e.g. "needs 2 token(s) on 'a2b' (has 0)"
  };

  struct Result {
    std::size_t firings = 0;
    bool deadlocked = false;            ///< stopped with tokens stranded
    std::vector<std::string> stranded;  ///< names of non-empty watched queues
    bool watchdog_tripped = false;      ///< stopped by the firing budget / wall clock
    bool wall_clock_tripped = false;    ///< ... and it was the wall clock
    std::vector<QueueSnapshot> queues;      ///< watched-queue state at stop
    std::vector<BlockedProcess> blocked;    ///< post-mortem of unfireable processes
  };

  /// Fire ready processes per `opts` (firing budget, wall clock, hooks,
  /// profiling) — the unified entry point shared with the cycle engines.
  /// Stop reasons: kQuiescent, kDeadlock, kFiringBudget, kWallClock. The
  /// detailed dataflow post-mortem remains available via last_result().
  RunResult run(const RunOptions& opts);

  /// Queue / blocked-process post-mortem of the most recent run().
  const Result& last_result() const { return last_; }

  /// Fire each ready process at most once (one "sweep"); returns #firings.
  std::size_t sweep();

  // --- diagnostics & run watchdogs ---

  void attach_diagnostics(diag::DiagEngine& de) { diag_ = &de; }
  diag::DiagEngine& diagnostics() { return diag_ != nullptr ? *diag_ : own_diag_; }

  // --- checkpoint/restore (see ckpt/snapshot.h) ---

  /// Extra entropy mixed into state_hash() (see
  /// sched::CycleScheduler::set_state_salt).
  void set_state_salt(std::uint64_t salt) { state_salt_ = salt; }

  /// Structural content hash: the salt, each process's name and port
  /// rates, and the name/capacity of every reachable queue.
  std::uint64_t state_hash() const;

  /// Serialize the complete dataflow state — every reachable queue's
  /// tokens and lifetime push count, every process's firing count — at a
  /// sweep boundary. Position is the total firing count.
  void save_state(std::ostream& os) const;

  /// Restore a save_state() snapshot. Throws ckpt::SnapshotError with a
  /// CKPT-001..004 diagnostic on mismatch or corruption; on failure the
  /// scheduler state is left exactly as it was.
  void restore_state(std::istream& is);

 private:
  /// Queues referenced by any process port or watch(), deduplicated in
  /// first-reference order — the serialization order of save_state.
  std::vector<Queue*> reachable_queues() const;
  void restore_state_impl(std::istream& is);
  Result run_impl(std::size_t max_firings, double wall_limit);
  void fill_postmortem(Result& r) const;

  std::vector<Process*> procs_;
  std::vector<Queue*> watched_;
  Result last_;
  diag::DiagEngine* diag_ = nullptr;
  diag::DiagEngine own_diag_;
  bool profile_ = false;
  std::vector<std::pair<std::uint64_t, double>> prof_;  // per procs_ index
  std::function<void(std::uint64_t)> on_sweep_;
  std::uint64_t state_salt_ = 0;
  // Checkpoint cadence of the current run() (see RunOptions).
  std::uint64_t ckpt_every_ = 0;
  std::function<void(std::uint64_t)> on_ckpt_;
  std::uint64_t ckpt_emitted_ = 0;
};

}  // namespace asicpp::df
