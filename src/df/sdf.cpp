#include "df/sdf.h"

#include <numeric>
#include <stdexcept>

namespace asicpp::df {

int SdfGraph::add_actor(const std::string& name) {
  names_.push_back(name);
  return static_cast<int>(names_.size()) - 1;
}

void SdfGraph::add_edge(int src, std::size_t out_rate, int dst, std::size_t in_rate,
                        std::size_t initial_tokens) {
  if (src < 0 || src >= num_actors() || dst < 0 || dst >= num_actors())
    throw std::out_of_range("SdfGraph::add_edge: bad actor index");
  if (out_rate == 0 || in_rate == 0)
    throw std::invalid_argument("SdfGraph::add_edge: zero rate");
  edges_.push_back(Edge{src, dst, out_rate, in_rate, initial_tokens});
}

namespace {

struct Frac {
  long long num = 0;
  long long den = 1;

  void normalize() {
    const long long g = std::gcd(num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
  }
};

}  // namespace

std::vector<long long> SdfGraph::repetition_vector() const {
  const int n = num_actors();
  std::vector<Frac> q(static_cast<std::size_t>(n));
  std::vector<bool> assigned(static_cast<std::size_t>(n), false);

  // Propagate rate ratios over each connected component.
  for (int seed = 0; seed < n; ++seed) {
    const auto s = static_cast<std::size_t>(seed);
    if (assigned[s]) continue;
    q[s] = Frac{1, 1};
    assigned[s] = true;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const auto& e : edges_) {
        const auto u = static_cast<std::size_t>(e.src);
        const auto v = static_cast<std::size_t>(e.dst);
        // q[src] * out = q[dst] * in
        if (assigned[u] && !assigned[v]) {
          q[v] = Frac{q[u].num * static_cast<long long>(e.out_rate),
                      q[u].den * static_cast<long long>(e.in_rate)};
          q[v].normalize();
          assigned[v] = true;
          grew = true;
        } else if (assigned[v] && !assigned[u]) {
          q[u] = Frac{q[v].num * static_cast<long long>(e.in_rate),
                      q[v].den * static_cast<long long>(e.out_rate)};
          q[u].normalize();
          assigned[u] = true;
          grew = true;
        }
      }
    }
  }

  // Consistency check on every edge.
  for (const auto& e : edges_) {
    const auto& a = q[static_cast<std::size_t>(e.src)];
    const auto& b = q[static_cast<std::size_t>(e.dst)];
    if (a.num * static_cast<long long>(e.out_rate) * b.den !=
        b.num * static_cast<long long>(e.in_rate) * a.den)
      return {};
  }

  // Scale to the minimal integer vector.
  long long lcm_den = 1;
  for (const auto& f : q) lcm_den = std::lcm(lcm_den, f.den);
  std::vector<long long> r(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    r[idx] = q[idx].num * (lcm_den / q[idx].den);
  }
  long long g = 0;
  for (const auto v : r) g = std::gcd(g, v);
  if (g > 1)
    for (auto& v : r) v /= g;
  return r;
}

SdfGraph::Schedule SdfGraph::static_schedule() const {
  Schedule s;
  const auto reps = repetition_vector();
  if (reps.empty()) return s;
  s.consistent = true;

  std::vector<std::size_t> tokens(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) tokens[i] = edges_[i].initial_tokens;

  std::vector<long long> remaining = reps;
  long long total = 0;
  for (const auto v : reps) total += v;

  auto runnable = [&](int actor) {
    if (remaining[static_cast<std::size_t>(actor)] == 0) return false;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (edges_[i].dst == actor && tokens[i] < edges_[i].in_rate) return false;
    }
    return true;
  };

  while (static_cast<long long>(s.firings.size()) < total) {
    bool fired = false;
    for (int a = 0; a < num_actors(); ++a) {
      if (!runnable(a)) continue;
      for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (edges_[i].dst == a) tokens[i] -= edges_[i].in_rate;
        if (edges_[i].src == a) tokens[i] += edges_[i].out_rate;
      }
      --remaining[static_cast<std::size_t>(a)];
      s.firings.push_back(a);
      fired = true;
    }
    if (!fired) {
      s.deadlocked = true;
      s.firings.clear();
      return s;
    }
  }
  return s;
}

std::vector<std::size_t> SdfGraph::buffer_sizes(const Schedule& s) const {
  std::vector<std::size_t> tokens(edges_.size());
  std::vector<std::size_t> peak(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i)
    tokens[i] = peak[i] = edges_[i].initial_tokens;
  for (const int a : s.firings) {
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (edges_[i].dst == a) {
        if (tokens[i] < edges_[i].in_rate)
          throw std::logic_error("buffer_sizes: schedule not admissible");
        tokens[i] -= edges_[i].in_rate;
      }
      if (edges_[i].src == a) {
        tokens[i] += edges_[i].out_rate;
        peak[i] = std::max(peak[i], tokens[i]);
      }
    }
  }
  return peak;
}

}  // namespace asicpp::df
