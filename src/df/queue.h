// Token queues of the untimed dataflow layer.
//
// At the system level, processes execute with data-flow semantics
// (section 2): inputs are read at the start of an iteration, outputs are
// produced at the end, and execution can start as soon as the required
// input values are available. Queues carry the tokens between processes.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <stdexcept>
#include <string>

#include "fixpt/fixed.h"

namespace asicpp::df {

/// A dataflow token: a word-level value.
using Token = fixpt::Fixed;

class Queue {
 public:
  explicit Queue(std::string name = "q",
                 std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : name_(std::move(name)), capacity_(capacity) {}

  const std::string& name() const { return name_; }
  std::size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return q_.size() >= capacity_; }

  void push(const Token& t) {
    if (full()) throw std::overflow_error("Queue '" + name_ + "': overflow");
    q_.push_back(t);
    ++total_pushed_;
  }

  Token pop() {
    if (q_.empty()) throw std::underflow_error("Queue '" + name_ + "': underflow");
    Token t = q_.front();
    q_.pop_front();
    return t;
  }

  /// i-th waiting token without consuming it (0 = oldest).
  const Token& peek(std::size_t i = 0) const { return q_.at(i); }

  /// Lifetime token count, for throughput accounting.
  std::size_t total_pushed() const { return total_pushed_; }

  void clear() { q_.clear(); }

  // --- checkpoint support ---

  /// Waiting tokens, oldest first (serialization order).
  const std::deque<Token>& contents() const { return q_; }

  /// Checkpoint restore: replace contents and the lifetime push count
  /// wholesale, bypassing capacity checks (the snapshot was taken from a
  /// legal state of this same queue).
  void restore(std::deque<Token> contents, std::size_t total_pushed) {
    q_ = std::move(contents);
    total_pushed_ = total_pushed;
  }

 private:
  std::string name_;
  std::size_t capacity_;
  std::deque<Token> q_;
  std::size_t total_pushed_ = 0;
};

}  // namespace asicpp::df
