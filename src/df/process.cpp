#include "df/process.h"

#include <stdexcept>

namespace asicpp::df {

void FnProcess::fire() {
  std::vector<Token> inputs;
  for (std::size_t i = 0; i < num_inputs(); ++i)
    for (std::size_t k = 0; k < in_rate(i); ++k) inputs.push_back(in(i).pop());

  std::vector<Token> outputs;
  fn_(inputs, outputs);

  std::size_t expected = 0;
  for (std::size_t i = 0; i < num_outputs(); ++i) expected += out_rate(i);
  if (outputs.size() != expected)
    throw std::logic_error("FnProcess '" + name() + "': produced " +
                           std::to_string(outputs.size()) + " tokens, expected " +
                           std::to_string(expected));

  std::size_t k = 0;
  for (std::size_t i = 0; i < num_outputs(); ++i)
    for (std::size_t r = 0; r < out_rate(i); ++r) out(i).push(outputs[k++]);
}

}  // namespace asicpp::df
