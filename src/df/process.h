// Untimed dataflow processes.
//
// A process is an iterative behaviour with a firing rule (sections 2 and 4:
// "int c::run() { // firing rule ... // behavior ... }"). The default firing
// rule is rate-based — port i needs `in_rate(i)` tokens — which covers SDF
// actors; subclasses may override `can_fire` for data-dependent rules.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "df/queue.h"

namespace asicpp::df {

class Process {
 public:
  explicit Process(std::string name) : name_(std::move(name)) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }

  /// Bind an input port consuming `rate` tokens per firing.
  void connect_in(Queue& q, std::size_t rate = 1) {
    ins_.push_back(&q);
    in_rates_.push_back(rate);
  }
  /// Bind an output port producing `rate` tokens per firing.
  void connect_out(Queue& q, std::size_t rate = 1) {
    outs_.push_back(&q);
    out_rates_.push_back(rate);
  }

  std::size_t num_inputs() const { return ins_.size(); }
  std::size_t num_outputs() const { return outs_.size(); }
  Queue& in(std::size_t i) const { return *ins_.at(i); }
  Queue& out(std::size_t i) const { return *outs_.at(i); }
  std::size_t in_rate(std::size_t i) const { return in_rates_.at(i); }
  std::size_t out_rate(std::size_t i) const { return out_rates_.at(i); }

  /// The firing rule. Default: every input port holds its rate worth of
  /// tokens and no output queue would overflow.
  virtual bool can_fire() const {
    for (std::size_t i = 0; i < ins_.size(); ++i)
      if (ins_[i]->size() < in_rates_[i]) return false;
    for (std::size_t i = 0; i < outs_.size(); ++i)
      if (outs_[i]->size() + out_rates_[i] > outs_[i]->capacity()) return false;
    return true;
  }

  /// Human-readable description of why can_fire() is false, for deadlock
  /// post-mortems: which ports are short of tokens and which output queues
  /// are full. Subclasses with data-dependent rules should override this
  /// alongside can_fire. Empty when the process can fire.
  virtual std::string blocked_reason() const {
    if (can_fire()) return {};
    std::string r;
    const auto sep = [&r]() -> std::string { return r.empty() ? "" : "; "; };
    for (std::size_t i = 0; i < ins_.size(); ++i) {
      if (ins_[i]->size() < in_rates_[i])
        r += sep() + "needs " + std::to_string(in_rates_[i]) + " token(s) on '" +
             ins_[i]->name() + "' (has " + std::to_string(ins_[i]->size()) + ")";
    }
    for (std::size_t i = 0; i < outs_.size(); ++i) {
      if (outs_[i]->size() + out_rates_[i] > outs_[i]->capacity())
        r += sep() + "output '" + outs_[i]->name() + "' full (" +
             std::to_string(outs_[i]->size()) + "/" +
             std::to_string(outs_[i]->capacity()) + ")";
    }
    if (r.empty()) r = "firing rule not satisfied";
    return r;
  }

  /// One iteration of the behaviour: consume inputs, produce outputs.
  virtual void fire() = 0;

  std::size_t firings() const { return firings_; }

  /// Scheduler-internal: fire with accounting.
  void run_once() {
    fire();
    ++firings_;
  }

  /// Checkpoint restore: force the lifetime firing count.
  void set_firings(std::size_t n) { firings_ = n; }

 private:
  std::string name_;
  std::vector<Queue*> ins_;
  std::vector<Queue*> outs_;
  std::vector<std::size_t> in_rates_;
  std::vector<std::size_t> out_rates_;
  std::size_t firings_ = 0;
};

/// A process whose behaviour is a callable: fn(inputs, outputs) where
/// `inputs` holds in_rate(i) tokens per port, flattened port-major, and the
/// callable must append exactly out_rate(i) tokens per port to `outputs`.
class FnProcess final : public Process {
 public:
  using Behavior = std::function<void(const std::vector<Token>&, std::vector<Token>&)>;

  FnProcess(std::string name, Behavior fn)
      : Process(std::move(name)), fn_(std::move(fn)) {}

  void fire() override;

 private:
  Behavior fn_;
};

}  // namespace asicpp::df
