// Synchronous dataflow analysis (Lee & Messerschmitt, cited as [7]).
//
// The paper's untimed blocks follow dataflow semantics with firing rules;
// for the SDF subset (constant rates) a static schedule can be computed
// once and replayed, which is what Grape-2 [6] did and what our dataflow
// benchmark compares against dynamic scheduling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace asicpp::df {

class SdfGraph {
 public:
  int add_actor(const std::string& name);

  /// Directed edge src -> dst: src produces `out_rate` tokens per firing,
  /// dst consumes `in_rate`; `initial_tokens` seed the edge (delays).
  void add_edge(int src, std::size_t out_rate, int dst, std::size_t in_rate,
                std::size_t initial_tokens = 0);

  int num_actors() const { return static_cast<int>(names_.size()); }
  const std::string& actor_name(int i) const { return names_.at(static_cast<std::size_t>(i)); }

  struct Edge {
    int src;
    int dst;
    std::size_t out_rate;
    std::size_t in_rate;
    std::size_t initial_tokens;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  /// Minimal positive repetition vector solving the balance equations
  /// q[src] * out_rate == q[dst] * in_rate on every edge. Empty when the
  /// graph is rate-inconsistent (only the trivial zero solution exists).
  std::vector<long long> repetition_vector() const;

  struct Schedule {
    bool consistent = false;
    bool deadlocked = false;     ///< consistent but blocked by missing delays
    std::vector<int> firings;    ///< actor index sequence for one iteration
  };

  /// One-iteration periodic admissible sequential schedule (class-S
  /// algorithm): repeatedly fire any runnable actor that has not yet met
  /// its repetition count. Token counts return to initial values afterward.
  Schedule static_schedule() const;

  /// Maximum token occupancy per edge while executing `s` — the buffer
  /// sizes an implementation of the dataflow network needs. Paper §4
  /// motivates the cycle scheduler precisely by *avoiding* having to
  /// "devise a buffer implementation for the system interconnect"; this
  /// is what that buffer implementation would cost.
  std::vector<std::size_t> buffer_sizes(const Schedule& s) const;

 private:
  std::vector<std::string> names_;
  std::vector<Edge> edges_;
};

}  // namespace asicpp::df
