#include "df/dynsched.h"

#include <chrono>

namespace asicpp::df {

std::size_t DynamicScheduler::sweep() {
  std::size_t fired = 0;
  for (auto* p : procs_) {
    if (p->can_fire()) {
      p->run_once();
      ++fired;
    }
  }
  return fired;
}

void DynamicScheduler::fill_postmortem(Result& r) const {
  for (const auto* q : watched_) {
    r.queues.push_back(QueueSnapshot{q->name(), q->size(), q->capacity(),
                                     q->total_pushed()});
  }
  for (const auto* p : procs_) {
    if (p->can_fire()) continue;  // fireable processes are not blocked
    r.blocked.push_back(BlockedProcess{p->name(), p->blocked_reason()});
  }
}

DynamicScheduler::Result DynamicScheduler::run(std::size_t max_firings) {
  Result r;
  const auto start = std::chrono::steady_clock::now();
  bool wall_tripped = false;
  while (r.firings < max_firings && !wall_tripped) {
    bool fired = false;
    for (auto* p : procs_) {
      if (r.firings >= max_firings) break;
      if (wall_limit_s_ > 0.0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (elapsed.count() >= wall_limit_s_) {
          wall_tripped = true;
          break;
        }
      }
      if (p->can_fire()) {
        p->run_once();
        ++r.firings;
        fired = true;
      }
    }
    if (!fired) break;
  }
  for (auto* q : watched_) {
    if (!q->empty()) r.stranded.push_back(q->name());
  }
  r.deadlocked = !r.stranded.empty();
  fill_postmortem(r);

  // Watchdog: still-fireable processes mean the stop was the budget or the
  // wall clock, not quiescence.
  bool fireable = false;
  for (const auto* p : procs_) {
    if (p->can_fire()) fireable = true;
  }
  if (fireable && (r.firings >= max_firings || wall_tripped)) {
    r.watchdog_tripped = true;
    auto& d = diagnostics().fatal(
        wall_tripped ? "WATCHDOG-002" : "WATCHDOG-001", "dataflow scheduler",
        wall_tripped
            ? "wall-clock limit (" + std::to_string(wall_limit_s_) +
                  " s) exceeded after " + std::to_string(r.firings) +
                  " firings with processes still ready; stopping run"
            : "firing budget (" + std::to_string(max_firings) +
                  ") exhausted with processes still ready; stopping run");
    for (const auto& q : r.queues) {
      d.note("queue '" + q.queue + "': " + std::to_string(q.tokens) +
             " token(s), " + std::to_string(q.total_pushed) + " pushed in total");
    }
  } else if (r.deadlocked) {
    auto& d = diagnostics().error(
        "DF-001", "dataflow scheduler",
        "deadlock: no process can fire but tokens are stranded on " +
            std::to_string(r.stranded.size()) + " watched queue(s)");
    for (const auto& q : r.queues) {
      d.note("queue '" + q.queue + "': " + std::to_string(q.tokens) +
             " token(s), " + std::to_string(q.total_pushed) + " pushed in total");
    }
    for (const auto& b : r.blocked) {
      d.note("process '" + b.process + "' blocked: " + b.waiting_on);
    }
  }
  return r;
}

}  // namespace asicpp::df
