#include "df/dynsched.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "ckpt/snapshot.h"

namespace asicpp::df {

std::size_t DynamicScheduler::sweep() {
  std::size_t fired = 0;
  for (auto* p : procs_) {
    if (p->can_fire()) {
      p->run_once();
      ++fired;
    }
  }
  return fired;
}

void DynamicScheduler::fill_postmortem(Result& r) const {
  for (const auto* q : watched_) {
    r.queues.push_back(QueueSnapshot{q->name(), q->size(), q->capacity(),
                                     q->total_pushed()});
  }
  for (const auto* p : procs_) {
    if (p->can_fire()) continue;  // fireable processes are not blocked
    r.blocked.push_back(BlockedProcess{p->name(), p->blocked_reason()});
  }
}

DynamicScheduler::Result DynamicScheduler::run_impl(std::size_t max_firings,
                                                    double wall_limit) {
  Result r;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sweeps = 0;
  bool wall_tripped = false;
  while (r.firings < max_firings && !wall_tripped) {
    bool fired = false;
    for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
      Process* p = procs_[pi];
      if (r.firings >= max_firings) break;
      if (wall_limit > 0.0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (elapsed.count() >= wall_limit) {
          wall_tripped = true;
          break;
        }
      }
      if (p->can_fire()) {
        if (profile_) {
          const auto t0 = std::chrono::steady_clock::now();
          p->run_once();
          prof_[pi].second += std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          ++prof_[pi].first;
        } else {
          p->run_once();
        }
        ++r.firings;
        fired = true;
      }
    }
    ++sweeps;
    if (on_sweep_) on_sweep_(sweeps);
    if (ckpt_every_ != 0 && on_ckpt_ && sweeps % ckpt_every_ == 0) {
      on_ckpt_(sweeps);
      ++ckpt_emitted_;
    }
    if (!fired) break;
  }
  r.wall_clock_tripped = wall_tripped;
  for (auto* q : watched_) {
    if (!q->empty()) r.stranded.push_back(q->name());
  }
  r.deadlocked = !r.stranded.empty();
  fill_postmortem(r);

  // Watchdog: still-fireable processes mean the stop was the budget or the
  // wall clock, not quiescence.
  bool fireable = false;
  for (const auto* p : procs_) {
    if (p->can_fire()) fireable = true;
  }
  if (fireable && (r.firings >= max_firings || wall_tripped)) {
    r.watchdog_tripped = true;
    auto& d = diagnostics().fatal(
        wall_tripped ? "WATCHDOG-002" : "WATCHDOG-001", "dataflow scheduler",
        wall_tripped
            ? "wall-clock limit (" + std::to_string(wall_limit) +
                  " s) exceeded after " + std::to_string(r.firings) +
                  " firings with processes still ready; stopping run"
            : "firing budget (" + std::to_string(max_firings) +
                  ") exhausted with processes still ready; stopping run");
    for (const auto& q : r.queues) {
      d.note("queue '" + q.queue + "': " + std::to_string(q.tokens) +
             " token(s), " + std::to_string(q.total_pushed) + " pushed in total");
    }
  } else if (r.deadlocked) {
    auto& d = diagnostics().error(
        "DF-001", "dataflow scheduler",
        "deadlock: no process can fire but tokens are stranded on " +
            std::to_string(r.stranded.size()) + " watched queue(s)");
    for (const auto& q : r.queues) {
      d.note("queue '" + q.queue + "': " + std::to_string(q.tokens) +
             " token(s), " + std::to_string(q.total_pushed) + " pushed in total");
    }
    for (const auto& b : r.blocked) {
      d.note("process '" + b.process + "' blocked: " + b.waiting_on);
    }
  }
  return r;
}

RunResult DynamicScheduler::run(const RunOptions& opts) {
  struct Restore {
    DynamicScheduler* s;
    diag::DiagEngine* diag;
    ~Restore() {
      s->diag_ = diag;
      s->profile_ = false;
      s->on_sweep_ = nullptr;
      s->ckpt_every_ = 0;
      s->on_ckpt_ = nullptr;
    }
  } restore{this, diag_};
  if (opts.diagnostics != nullptr) diag_ = opts.diagnostics;
  profile_ = opts.profile;
  if (profile_) prof_.assign(procs_.size(), {0, 0.0});
  on_sweep_ = opts.on_cycle_end;
  ckpt_every_ = opts.checkpoint_every;
  on_ckpt_ = opts.on_checkpoint;
  ckpt_emitted_ = 0;

  const std::size_t budget = opts.firings != 0 ? opts.firings : 1'000'000;
  last_ = run_impl(budget, opts.wall_clock_s);

  RunResult r;
  r.firings = last_.firings;
  r.checkpoints = ckpt_emitted_;
  r.schedule = ScheduleMode::kIterative;  // dataflow firing order is dynamic
  if (last_.watchdog_tripped) {
    r.stop = last_.wall_clock_tripped ? StopReason::kWallClock
                                      : StopReason::kFiringBudget;
  } else {
    r.stop = last_.deadlocked ? StopReason::kDeadlock : StopReason::kQuiescent;
  }
  if (opts.profile) {
    r.timing.reserve(procs_.size());
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      if (prof_[i].first == 0) continue;
      r.timing.push_back(
          ComponentTiming{procs_[i]->name(), prof_[i].first, prof_[i].second});
    }
  }
  return r;
}

std::vector<Queue*> DynamicScheduler::reachable_queues() const {
  std::vector<Queue*> qs;
  const auto add = [&qs](Queue* q) {
    if (std::find(qs.begin(), qs.end(), q) == qs.end()) qs.push_back(q);
  };
  for (const Process* p : procs_) {
    for (std::size_t i = 0; i < p->num_inputs(); ++i) add(&p->in(i));
    for (std::size_t i = 0; i < p->num_outputs(); ++i) add(&p->out(i));
  }
  for (Queue* q : watched_) add(q);
  return qs;
}

std::uint64_t DynamicScheduler::state_hash() const {
  ckpt::Hasher h;
  h.u64(state_salt_);
  h.str("dataflow-scheduler");
  h.u32(static_cast<std::uint32_t>(procs_.size()));
  for (const Process* p : procs_) {
    h.str(p->name());
    h.u32(static_cast<std::uint32_t>(p->num_inputs()));
    for (std::size_t i = 0; i < p->num_inputs(); ++i)
      h.u64(p->in_rate(i));
    h.u32(static_cast<std::uint32_t>(p->num_outputs()));
    for (std::size_t i = 0; i < p->num_outputs(); ++i)
      h.u64(p->out_rate(i));
  }
  const auto qs = reachable_queues();
  h.u32(static_cast<std::uint32_t>(qs.size()));
  for (const Queue* q : qs) {
    h.str(q->name());
    h.u64(q->capacity());
  }
  return h.digest();
}

void DynamicScheduler::save_state(std::ostream& os) const {
  std::uint64_t total_firings = 0;
  for (const Process* p : procs_) total_firings += p->firings();

  ckpt::Writer w(os);
  w.header(ckpt::EngineKind::kDataflow, state_hash(), total_firings);
  const auto qs = reachable_queues();
  w.u32(static_cast<std::uint32_t>(qs.size()));
  for (const Queue* q : qs) {
    w.str(q->name());
    w.u32(static_cast<std::uint32_t>(q->size()));
    for (const Token& t : q->contents()) w.fixed(t);
    w.u64(q->total_pushed());
  }
  w.u32(static_cast<std::uint32_t>(procs_.size()));
  for (const Process* p : procs_) w.u64(p->firings());
  w.end();
}

void DynamicScheduler::restore_state_impl(std::istream& is) {
  ckpt::Reader r(is, "dataflow scheduler");
  r.header(ckpt::EngineKind::kDataflow, state_hash());

  const auto qs = reachable_queues();
  const std::size_t nq = r.count(1u << 20);
  if (nq != qs.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(nq) +
            " queue(s), this system has " + std::to_string(qs.size())});
  }
  std::vector<std::pair<std::deque<Token>, std::size_t>> staged;
  staged.reserve(nq);
  for (const Queue* q : qs) {
    const std::string name = r.str();
    if (name != q->name()) {
      r.fail("CKPT-004", "truncated or corrupt snapshot stream",
             {"queue record names '" + name + "' where '" + q->name() +
              "' was expected"});
    }
    const std::size_t n = r.count(1u << 24);
    std::deque<Token> tokens;
    for (std::size_t i = 0; i < n; ++i) tokens.push_back(r.fixed());
    const auto pushed = static_cast<std::size_t>(r.u64());
    staged.emplace_back(std::move(tokens), pushed);
  }
  const std::size_t np = r.count(1u << 20);
  if (np != procs_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(np) +
            " process(es), this system has " + std::to_string(procs_.size())});
  }
  std::vector<std::uint64_t> firings(np);
  for (auto& f : firings) f = r.u64();
  r.end();

  // Everything parsed — apply.
  for (std::size_t i = 0; i < qs.size(); ++i)
    qs[i]->restore(std::move(staged[i].first), staged[i].second);
  for (std::size_t i = 0; i < procs_.size(); ++i)
    procs_[i]->set_firings(static_cast<std::size_t>(firings[i]));
}

void DynamicScheduler::restore_state(std::istream& is) {
  // Transactional: roll back to a pre-restore snapshot on any failure so a
  // bad stream leaves the scheduler untouched.
  std::ostringstream backup;
  save_state(backup);
  try {
    restore_state_impl(is);
  } catch (...) {
    std::istringstream b(backup.str());
    restore_state_impl(b);
    throw;
  }
}

}  // namespace asicpp::df
