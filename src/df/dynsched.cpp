#include "df/dynsched.h"

namespace asicpp::df {

std::size_t DynamicScheduler::sweep() {
  std::size_t fired = 0;
  for (auto* p : procs_) {
    if (p->can_fire()) {
      p->run_once();
      ++fired;
    }
  }
  return fired;
}

DynamicScheduler::Result DynamicScheduler::run(std::size_t max_firings) {
  Result r;
  while (r.firings < max_firings) {
    bool fired = false;
    for (auto* p : procs_) {
      if (r.firings >= max_firings) break;
      if (p->can_fire()) {
        p->run_once();
        ++r.firings;
        fired = true;
      }
    }
    if (!fired) break;
  }
  for (auto* q : watched_) {
    if (!q->empty()) r.stranded.push_back(q->name());
  }
  r.deadlocked = !r.stranded.empty();
  return r;
}

}  // namespace asicpp::df
