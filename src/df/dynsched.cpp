#include "df/dynsched.h"

#include <chrono>

namespace asicpp::df {

std::size_t DynamicScheduler::sweep() {
  std::size_t fired = 0;
  for (auto* p : procs_) {
    if (p->can_fire()) {
      p->run_once();
      ++fired;
    }
  }
  return fired;
}

void DynamicScheduler::fill_postmortem(Result& r) const {
  for (const auto* q : watched_) {
    r.queues.push_back(QueueSnapshot{q->name(), q->size(), q->capacity(),
                                     q->total_pushed()});
  }
  for (const auto* p : procs_) {
    if (p->can_fire()) continue;  // fireable processes are not blocked
    r.blocked.push_back(BlockedProcess{p->name(), p->blocked_reason()});
  }
}

DynamicScheduler::Result DynamicScheduler::run_impl(std::size_t max_firings,
                                                    double wall_limit) {
  Result r;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sweeps = 0;
  bool wall_tripped = false;
  while (r.firings < max_firings && !wall_tripped) {
    bool fired = false;
    for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
      Process* p = procs_[pi];
      if (r.firings >= max_firings) break;
      if (wall_limit > 0.0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (elapsed.count() >= wall_limit) {
          wall_tripped = true;
          break;
        }
      }
      if (p->can_fire()) {
        if (profile_) {
          const auto t0 = std::chrono::steady_clock::now();
          p->run_once();
          prof_[pi].second += std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          ++prof_[pi].first;
        } else {
          p->run_once();
        }
        ++r.firings;
        fired = true;
      }
    }
    ++sweeps;
    if (on_sweep_) on_sweep_(sweeps);
    if (!fired) break;
  }
  r.wall_clock_tripped = wall_tripped;
  for (auto* q : watched_) {
    if (!q->empty()) r.stranded.push_back(q->name());
  }
  r.deadlocked = !r.stranded.empty();
  fill_postmortem(r);

  // Watchdog: still-fireable processes mean the stop was the budget or the
  // wall clock, not quiescence.
  bool fireable = false;
  for (const auto* p : procs_) {
    if (p->can_fire()) fireable = true;
  }
  if (fireable && (r.firings >= max_firings || wall_tripped)) {
    r.watchdog_tripped = true;
    auto& d = diagnostics().fatal(
        wall_tripped ? "WATCHDOG-002" : "WATCHDOG-001", "dataflow scheduler",
        wall_tripped
            ? "wall-clock limit (" + std::to_string(wall_limit) +
                  " s) exceeded after " + std::to_string(r.firings) +
                  " firings with processes still ready; stopping run"
            : "firing budget (" + std::to_string(max_firings) +
                  ") exhausted with processes still ready; stopping run");
    for (const auto& q : r.queues) {
      d.note("queue '" + q.queue + "': " + std::to_string(q.tokens) +
             " token(s), " + std::to_string(q.total_pushed) + " pushed in total");
    }
  } else if (r.deadlocked) {
    auto& d = diagnostics().error(
        "DF-001", "dataflow scheduler",
        "deadlock: no process can fire but tokens are stranded on " +
            std::to_string(r.stranded.size()) + " watched queue(s)");
    for (const auto& q : r.queues) {
      d.note("queue '" + q.queue + "': " + std::to_string(q.tokens) +
             " token(s), " + std::to_string(q.total_pushed) + " pushed in total");
    }
    for (const auto& b : r.blocked) {
      d.note("process '" + b.process + "' blocked: " + b.waiting_on);
    }
  }
  return r;
}

RunResult DynamicScheduler::run(const RunOptions& opts) {
  struct Restore {
    DynamicScheduler* s;
    diag::DiagEngine* diag;
    ~Restore() {
      s->diag_ = diag;
      s->profile_ = false;
      s->on_sweep_ = nullptr;
    }
  } restore{this, diag_};
  if (opts.diagnostics != nullptr) diag_ = opts.diagnostics;
  profile_ = opts.profile;
  if (profile_) prof_.assign(procs_.size(), {0, 0.0});
  on_sweep_ = opts.on_cycle_end;

  const std::size_t budget = opts.firings != 0 ? opts.firings : 1'000'000;
  last_ = run_impl(budget, opts.wall_clock_s);

  RunResult r;
  r.firings = last_.firings;
  r.schedule = ScheduleMode::kIterative;  // dataflow firing order is dynamic
  if (last_.watchdog_tripped) {
    r.stop = last_.wall_clock_tripped ? StopReason::kWallClock
                                      : StopReason::kFiringBudget;
  } else {
    r.stop = last_.deadlocked ? StopReason::kDeadlock : StopReason::kQuiescent;
  }
  if (opts.profile) {
    r.timing.reserve(procs_.size());
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      if (prof_[i].first == 0) continue;
      r.timing.push_back(
          ComponentTiming{procs_[i]->name(), prof_[i].first, prof_[i].second});
    }
  }
  return r;
}

}  // namespace asicpp::df
