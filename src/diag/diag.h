// Structured diagnostics engine.
//
// The environment is pitched as a *programming* environment: designers are
// supposed to debug hardware with software tooling (sections 1 and 4). That
// only works when the tools degrade gracefully — a broken design should
// produce one report listing every violation, a deadlocked simulation
// should produce a post-mortem naming the blocked components and the
// dependency cycle, and a runaway run should be stopped by a watchdog
// instead of spinning forever. This module is the common substrate:
//
//   Diagnostic  — one finding: severity, a stable code ("SFG-001"), the
//                 component path it concerns, the clock cycle (when
//                 cycle-related), a message, and attached notes (dependency
//                 cycles, queue snapshots, last-known values).
//   DiagEngine  — accumulates Diagnostics across passes and pretty-prints
//                 a report; the recovery policy is accumulate-and-continue
//                 with an optional error limit.
//   Error       — exception carrying a structured Diagnostic, for failures
//                 that cannot be deferred (a deadlocked cycle cannot
//                 continue). ElabError is the elaboration-time variant and
//                 derives std::invalid_argument, matching the historical
//                 contract of the elaboration entry points.
//
// Stable code registry (documented in DESIGN.md):
//   SFG-001 dangling input          SFG-002 dead code (unused input)
//   SFG-003 duplicate output port   SFG-004 double register assignment
//   SFG-005 width mismatch          SFG-006 registers on multiple clocks
//   FSM-001 no initial state        FSM-002 unreachable state
//   FSM-003 shadowed transition     FSM-004 sink state
//   FSM-005 guard on raw input      FSM-006 incomplete transition
//   SCHED-001 combinational deadlock (cycle scheduler / compiled sim)
//   SCHED-002 schedule invalidated (level walk missed or unlevelizable
//             system under ScheduleMode::kLevelized; iterative fallback)
//   DF-001  dataflow deadlock       DF-002 stranded tokens at quiescence
//   WATCHDOG-001 cycle/firing budget exhausted
//   WATCHDOG-002 wall-clock limit exceeded
//   ELAB-001 impure untimed block in RT elaboration
//   SYN-001..SYN-009 system-synthesis elaboration errors
//   SIM-001 unsupported component in compiled simulation
//   VERIFY-001..VERIFY-006 differential verification (see verify/diffrun.h)
//   CKPT-001..CKPT-004 snapshot restore failures (see ckpt/snapshot.h)
//   PAR-001 nested parallel region (see par/pool.h)
//   PAR-002 single-owner object used from a second thread
//   LIB-001 truncated Liberty source   LIB-002 duplicate cell definition
//   LIB-003 malformed Liberty attribute
//   LIB-004 GateType with no library cell (see flow/liberty.h)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace asicpp::diag {

enum class Severity {
  kNote,     ///< informational
  kWarning,  ///< suspicious but simulable
  kError,    ///< design-rule violation; elaboration should not proceed
  kFatal,    ///< the run cannot continue (deadlock, watchdog)
};

const char* severity_name(Severity s);

/// Sentinel for "not related to a particular clock cycle".
inline constexpr std::uint64_t kNoCycle = ~std::uint64_t{0};

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;                ///< stable, greppable: "SFG-001"
  std::string component;           ///< object path: "sfg 'avg'", "component 'dp3'"
  std::uint64_t cycle = kNoCycle;  ///< clock cycle, when cycle-related
  std::string message;             ///< one-line human description
  std::vector<std::string> notes;  ///< attached context, one line each

  Diagnostic& note(std::string line) {
    notes.push_back(std::move(line));
    return *this;
  }

  /// Pretty one-record rendering:
  ///   "error [SFG-001] sfg 'avg': dangling input ...\n    note: ..."
  std::string str() const;
};

/// Accumulates diagnostics across lint passes and simulation runs. The
/// recovery policy is accumulate-and-continue: checks report *all* findings
/// in one run and the caller grades the engine afterwards (mirroring how
/// AssertionMonitor collects violations for post-run grading). A hard
/// error limit turns pathological cascades into a structured Error.
class DiagEngine {
 public:
  DiagEngine() = default;
  // Copyable so engines can live inside value-semantic owners (e.g. the
  // compiled simulator); a copy gets its own mutex (when thread-safe) and
  // a fresh owner-thread claim.
  DiagEngine(const DiagEngine& o)
      : diags_(o.diags_),
        error_limit_(o.error_limit_),
        mu_(o.mu_ != nullptr ? std::make_unique<std::mutex>() : nullptr) {}
  DiagEngine& operator=(const DiagEngine& o) {
    if (this == &o) return *this;
    diags_ = o.diags_;
    error_limit_ = o.error_limit_;
    mu_ = o.mu_ != nullptr ? std::make_unique<std::mutex>() : nullptr;
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
    return *this;
  }

  /// Record a fully formed diagnostic. Returns a reference to the stored
  /// record so callers can attach notes. Throws Error when the error limit
  /// is exceeded.
  ///
  /// An engine is single-owner by default: the first thread to report
  /// claims it, and a report from any other thread throws a PAR-002 Error
  /// (give each worker its own engine and merge afterwards, the pattern
  /// diff_run_batch uses). make_thread_safe() opts a shared sink into a
  /// per-engine mutex instead.
  Diagnostic& report(Diagnostic d);

  // Convenience constructors for the common severities.
  Diagnostic& note(std::string code, std::string component, std::string message);
  Diagnostic& warning(std::string code, std::string component, std::string message);
  Diagnostic& error(std::string code, std::string component, std::string message);
  Diagnostic& fatal(std::string code, std::string component, std::string message);

  const std::vector<Diagnostic>& all() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }

  std::size_t count(Severity s) const;
  std::size_t errors() const;  ///< kError + kFatal
  std::size_t warnings() const { return count(Severity::kWarning); }

  /// True when no error- or fatal-severity diagnostic was reported.
  bool ok() const { return errors() == 0; }

  /// First diagnostic with `code`, or nullptr.
  const Diagnostic* find(const std::string& code) const;
  bool has(const std::string& code) const { return find(code) != nullptr; }

  /// Full pretty-printed report: every record plus a summary line.
  std::string str() const;

  /// Throw Error carrying the first error-severity diagnostic (with the
  /// full report attached as a note) when any error was accumulated.
  void throw_if_errors() const;

  /// Abort accumulation with Error once more than `n` errors pile up
  /// (0 = unlimited, the default).
  void set_error_limit(std::size_t n) { error_limit_ = n; }

  /// Serialize report() calls with a per-engine mutex so several worker
  /// threads can share this engine as a sink. Caveats: references returned
  /// by report() are stable only until the next report — a concurrent
  /// reporter may grow the record vector, so under sharing callers must
  /// pass fully formed Diagnostics and drop the reference; the read
  /// accessors (all(), str(), ...) stay unsynchronized and belong after
  /// the workers join. Irreversible.
  void make_thread_safe() {
    if (mu_ == nullptr) mu_ = std::make_unique<std::mutex>();
  }
  bool thread_safe() const { return mu_ != nullptr; }

  void clear() {
    diags_.clear();
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

 private:
  Diagnostic& report_locked(Diagnostic d);

  std::vector<Diagnostic> diags_;
  std::size_t error_limit_ = 0;
  std::unique_ptr<std::mutex> mu_;  ///< set by make_thread_safe()
  std::atomic<std::thread::id> owner_{};  ///< first reporting thread
};

/// Find a directed cycle in the graph given by per-node successor lists.
/// Returns the node sequence of one cycle (closed: front() == back()), or
/// an empty vector when the graph is acyclic. Shared by the deadlock
/// post-mortems of the cycle scheduler and the compiled simulator.
std::vector<int> find_cycle(const std::vector<std::vector<int>>& adj);

}  // namespace asicpp::diag

namespace asicpp {

/// Exception carrying a structured diagnostic. what() is the pretty-printed
/// record, so uncaught errors still read well; structured consumers catch
/// asicpp::Error and inspect diagnostic().
class Error : public std::runtime_error {
 public:
  explicit Error(diag::Diagnostic d)
      : std::runtime_error(d.str()), diag_(std::move(d)) {}

  const diag::Diagnostic& diagnostic() const noexcept { return diag_; }
  const std::string& code() const noexcept { return diag_.code; }

 private:
  diag::Diagnostic diag_;
};

/// Elaboration-time variant for invalid input designs. Derives
/// std::invalid_argument so pre-existing catch sites keep working.
class ElabError : public std::invalid_argument {
 public:
  explicit ElabError(diag::Diagnostic d)
      : std::invalid_argument(d.str()), diag_(std::move(d)) {}

  const diag::Diagnostic& diagnostic() const noexcept { return diag_; }
  const std::string& code() const noexcept { return diag_.code; }

 private:
  diag::Diagnostic diag_;
};

}  // namespace asicpp
