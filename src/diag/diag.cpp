#include "diag/diag.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace asicpp::diag {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kFatal: return "fatal";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << severity_name(severity) << " [" << code << "]";
  if (!component.empty()) os << " " << component;
  if (cycle != kNoCycle) os << " @cycle " << cycle;
  os << ": " << message;
  for (const auto& n : notes) os << "\n    note: " << n;
  return os.str();
}

Diagnostic& DiagEngine::report(Diagnostic d) {
  if (mu_ != nullptr) {
    std::lock_guard<std::mutex> lock(*mu_);
    return report_locked(std::move(d));
  }
  // Single-owner mode: the first reporting thread claims the engine; any
  // other thread is misuse (it would race the record vector) and gets a
  // structured PAR-002 before touching shared state.
  const auto self = std::this_thread::get_id();
  std::thread::id expect{};
  if (!owner_.compare_exchange_strong(expect, self, std::memory_order_acq_rel) &&
      expect != self) {
    throw Error(Diagnostic{
        Severity::kFatal, "PAR-002", "diag engine", kNoCycle,
        "DiagEngine reported into from a second thread; give each worker "
        "its own engine and merge in order, or call make_thread_safe()",
        {}});
  }
  return report_locked(std::move(d));
}

Diagnostic& DiagEngine::report_locked(Diagnostic d) {
  diags_.push_back(std::move(d));
  if (error_limit_ != 0 && errors() > error_limit_) {
    Diagnostic limit;
    limit.severity = Severity::kFatal;
    limit.code = "DIAG-000";
    limit.component = "diag engine";
    limit.message = "error limit (" + std::to_string(error_limit_) +
                    ") exceeded, aborting accumulation";
    limit.note(str());
    throw Error(std::move(limit));
  }
  return diags_.back();
}

Diagnostic& DiagEngine::note(std::string code, std::string component,
                             std::string message) {
  return report(Diagnostic{Severity::kNote, std::move(code), std::move(component),
                           kNoCycle, std::move(message), {}});
}

Diagnostic& DiagEngine::warning(std::string code, std::string component,
                                std::string message) {
  return report(Diagnostic{Severity::kWarning, std::move(code), std::move(component),
                           kNoCycle, std::move(message), {}});
}

Diagnostic& DiagEngine::error(std::string code, std::string component,
                              std::string message) {
  return report(Diagnostic{Severity::kError, std::move(code), std::move(component),
                           kNoCycle, std::move(message), {}});
}

Diagnostic& DiagEngine::fatal(std::string code, std::string component,
                              std::string message) {
  return report(Diagnostic{Severity::kFatal, std::move(code), std::move(component),
                           kNoCycle, std::move(message), {}});
}

std::size_t DiagEngine::count(Severity s) const {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == s) ++n;
  return n;
}

std::size_t DiagEngine::errors() const {
  return count(Severity::kError) + count(Severity::kFatal);
}

const Diagnostic* DiagEngine::find(const std::string& code) const {
  for (const auto& d : diags_)
    if (d.code == code) return &d;
  return nullptr;
}

std::string DiagEngine::str() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.str() << "\n";
  os << "=== " << errors() << " error(s), " << warnings() << " warning(s), "
     << count(Severity::kNote) << " note(s) ===";
  return os.str();
}

void DiagEngine::throw_if_errors() const {
  for (const auto& d : diags_) {
    if (d.severity == Severity::kError || d.severity == Severity::kFatal) {
      Diagnostic carried = d;
      if (errors() > 1) carried.note("full report:\n" + str());
      throw Error(std::move(carried));
    }
  }
}

std::vector<int> find_cycle(const std::vector<std::vector<int>>& adj) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0 white, 1 grey, 2 black
  std::vector<int> path;

  // Recursive DFS with an explicit stack of (node, next-successor-index).
  for (int root = 0; root < n; ++root) {
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    color[static_cast<std::size_t>(root)] = 1;
    path.assign(1, root);
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[static_cast<std::size_t>(u)].size()) {
        const int v = adj[static_cast<std::size_t>(u)][next++];
        if (v < 0 || v >= n) continue;
        if (color[static_cast<std::size_t>(v)] == 1) {
          // Found a back edge: the cycle is the path suffix from v.
          std::vector<int> cycle;
          auto it = std::find(path.begin(), path.end(), v);
          cycle.assign(it, path.end());
          cycle.push_back(v);
          return cycle;
        }
        if (color[static_cast<std::size_t>(v)] == 0) {
          color[static_cast<std::size_t>(v)] = 1;
          stack.emplace_back(v, 0);
          path.push_back(v);
        }
      } else {
        color[static_cast<std::size_t>(u)] = 2;
        stack.pop_back();
        path.pop_back();
      }
    }
  }
  return {};
}

}  // namespace asicpp::diag
