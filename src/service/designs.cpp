// Built-in interactive designs for the simulation service: small, known
// systems a client can open by name instead of shipping spec text.
#include <memory>

#include "dect/vliw.h"
#include "fixpt/fixed.h"
#include "sched/fsmcomp.h"
#include "service/service.h"
#include "sfg/clk.h"
#include "sfg/sfg.h"
#include "sfg/sig.h"

namespace asicpp::service {

namespace {

/// The quickstart 2-tap moving average (examples/quickstart.cpp): input
/// net "x", output net "y" = (x + z^-1 x) / 2, 12-bit fixed point.
class QuickstartDesign : public Design {
 public:
  QuickstartDesign()
      : z1_("z1", clk_, kFx, 0.0),
        x_(sfg::Sig::input("x", kFx)),
        avg_("avg"),
        sched_(clk_),
        comp_("mavg", avg_) {
    avg_.in(x_).out("y", (x_ + z1_) >> 1).assign(z1_, x_);
    comp_.bind_input(x_, sched_.net("x"));
    comp_.bind_output("y", sched_.net("y"));
    sched_.add(comp_);
    // Register "x" as an externally driven pin before any engine binds, so
    // the compiled/jit images expose it as a pokeable input (the same
    // pattern the DECT transceiver uses for its pins).
    sched_.net("x").drive(fixpt::Fixed(0.0));
  }

  sched::CycleScheduler& scheduler() override { return sched_; }
  std::vector<std::string> default_probes() const override {
    return {"x", "y"};
  }

 private:
  static constexpr fixpt::Format kFx{12, 3, true, fixpt::Quant::kRound,
                                     fixpt::Overflow::kSaturate};
  sfg::Clk clk_;
  sfg::Reg z1_;
  sfg::Sig x_;
  sfg::Sfg avg_;
  sched::CycleScheduler sched_;
  sched::SfgComponent comp_;
};

/// The DECT burst-mode transceiver (src/dect): sample in, five datapaths,
/// hold-request handshake — the paper's flagship design.
class DectDesign : public Design {
 public:
  sched::CycleScheduler& scheduler() override { return t_.scheduler(); }
  std::vector<std::string> default_probes() const override {
    return {"sample", "hold_request", "data_0"};
  }

 private:
  dect::DectTransceiver t_;
};

}  // namespace

std::unique_ptr<Design> make_design(const std::string& name) {
  if (name == "quickstart") return std::make_unique<QuickstartDesign>();
  if (name == "dect") return std::make_unique<DectDesign>();
  return nullptr;
}

std::vector<std::string> design_names() { return {"quickstart", "dect"}; }

}  // namespace asicpp::service
