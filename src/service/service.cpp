#include "service/service.h"

#include <sstream>
#include <stdexcept>

#include "diag/diag.h"
#include "engine/engine.h"
#include "pipeline/artifact.h"
#include "pipeline/pipeline.h"

namespace asicpp::service {

namespace {

Json ok_json() {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  return j;
}

Json error_json(const std::string& why) {
  Json j = Json::object();
  j.set("ok", Json::boolean(false));
  j.set("error", Json::string(why));
  return j;
}

Json string_array(const std::vector<std::string>& v) {
  Json a = Json::array();
  for (const std::string& s : v) a.push(Json::string(s));
  return a;
}

Json rows_array(const std::vector<std::vector<double>>& rows,
                std::size_t from) {
  Json a = Json::array();
  for (std::size_t i = from; i < rows.size(); ++i) {
    Json row = Json::array();
    for (const double v : rows[i]) row.push(Json::number(v));
    a.push(std::move(row));
  }
  return a;
}

}  // namespace

struct Service::Session {
  std::mutex mu;  ///< serializes operations on this session

  /// How to rebuild this session (fork): the builtin design name, or the
  /// spec-based compile request. `request.design`/`request.diagnostics`
  /// are always null here — fork points them at the child's own objects.
  std::string design_name;
  pipeline::CompileRequest request;

  std::unique_ptr<Design> design;  ///< owned builtin design, when design-based
  pipeline::CompileResult compiled;
  std::vector<std::string> watch;
  diag::DiagEngine diags;

  std::uint64_t cycle = 0;
  /// One probe row (watch order) per simulated cycle — the trace stream.
  std::vector<std::vector<double>> rows;

  struct Ckpt {
    std::string blob;
    std::uint64_t cycle = 0;
    std::vector<std::vector<double>> rows;
  };
  std::map<std::string, Ckpt> ckpts;
};

Service::Service() = default;
Service::~Service() = default;

std::size_t Service::session_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::string Service::handle_line(const std::string& line) {
  Json req;
  std::string err;
  if (!Json::parse(line, &req, &err)) return error_json(err).dump();
  if (!req.is_object())
    return error_json("request must be a JSON object").dump();
  try {
    return handle(req).dump();
  } catch (const std::exception& ex) {
    return error_json(ex.what()).dump();
  }
}

Json Service::handle(const Json& req) {
  const std::string op = req.get_string("op");
  if (op == "open") return op_open(req);
  if (op == "run") return op_run(req);
  if (op == "poke") return op_poke(req);
  if (op == "probe") return op_probe(req);
  if (op == "trace") return op_trace(req);
  if (op == "checkpoint") return op_checkpoint(req);
  if (op == "fork") return op_fork(req);
  if (op == "close") return op_close(req);
  if (op == "diag") return op_diag(req);
  if (op == "ping") return op_ping();
  if (op == "shutdown") {
    shutdown_.store(true);
    Json j = ok_json();
    j.set("shutdown", Json::boolean(true));
    return j;
  }
  return error_json("unknown op '" + op +
                    "' (ops: open run poke probe trace checkpoint fork close "
                    "diag ping shutdown)");
}

std::shared_ptr<Service::Session> Service::find_session(const Json& req,
                                                        Json* err) {
  const std::string id = req.get_string("session");
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    *err = error_json("unknown session '" + id + "'");
    return nullptr;
  }
  return it->second;
}

Json Service::op_open(const Json& req) {
  auto sess = std::make_shared<Session>();
  sess->diags.make_thread_safe();  // requests may arrive on any connection

  pipeline::CompileRequest creq;
  creq.engine = req.get_string("engine", "compiled");
  creq.cxx = req.get_string("cxx", "c++");
  creq.workdir = req.get_string("workdir");
  creq.store_dir = req.get_string("store_dir");
  if (const Json* l = req.get("lanes"); l != nullptr && l->is_number())
    creq.lanes = static_cast<unsigned>(l->as_number());

  std::vector<std::string> watch;
  if (const Json* w = req.get("watch"); w != nullptr && w->is_array())
    for (const Json& it : w->items())
      if (it.is_string()) watch.push_back(it.as_string());

  sess->design_name = req.get_string("design");
  if (!sess->design_name.empty()) {
    sess->design = make_design(sess->design_name);
    if (sess->design == nullptr) {
      std::string names;
      for (const std::string& n : design_names())
        names += (names.empty() ? "" : ", ") + n;
      return error_json("unknown design '" + sess->design_name +
                        "' (available: " + names + ")");
    }
    creq.design = &sess->design->scheduler();
    creq.probes = watch.empty() ? sess->design->default_probes() : watch;
  } else {
    creq.spec_text = req.get_string("spec");
    if (creq.spec_text.empty())
      return error_json("open needs 'spec' text or a 'design' name");
  }

  creq.diagnostics = &sess->diags;
  sess->compiled = pipeline::compile(creq);
  creq.diagnostics = nullptr;
  creq.design = nullptr;
  sess->request = std::move(creq);
  if (!sess->compiled.ok)
    return error_json(sess->compiled.error);

  sess->watch = !watch.empty() ? watch : sess->compiled.probes;

  std::string id;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    id = "s" + std::to_string(next_id_++);
    sessions_[id] = sess;
  }

  Json j = ok_json();
  j.set("session", Json::string(id));
  j.set("engine", Json::string(sess->compiled.engine));
  j.set("probes", string_array(sess->watch));
  j.set("store_hit", Json::boolean(sess->compiled.store_hit));
  j.set("compile_seconds", Json::number(sess->compiled.compile_seconds));
  if (sess->compiled.spec_based)
    j.set("spec_key",
          Json::string(pipeline::ArtifactStore::hex16(sess->compiled.spec_key)));
  Json stages = Json::array();
  for (const pipeline::StageTiming& st : sess->compiled.stages) {
    Json s = Json::object();
    s.set("stage", Json::string(st.stage));
    s.set("seconds", Json::number(st.seconds));
    stages.push(std::move(s));
  }
  j.set("stages", std::move(stages));
  j.set("cycle", Json::number(0));
  return j;
}

Json Service::op_run(const Json& req) {
  Json err;
  const auto sess = find_session(req, &err);
  if (sess == nullptr) return err;
  const std::lock_guard<std::mutex> lock(sess->mu);

  const auto cycles = static_cast<std::uint64_t>(req.get_number("cycles", 1));
  const auto threads = static_cast<unsigned>(req.get_number("threads", 0));
  engine::Instance& inst = *sess->compiled.instance;
  try {
    if (threads > 0) inst.set_threads(threads);
    for (std::uint64_t c = 0; c < cycles; ++c) {
      inst.cycle();
      std::vector<double> row;
      row.reserve(sess->watch.size());
      for (const std::string& n : sess->watch) row.push_back(inst.probe(n));
      sess->rows.push_back(std::move(row));
      ++sess->cycle;
    }
  } catch (const std::exception& ex) {
    sess->diags.error("SERVICE-001", "session", ex.what());
    Json j = error_json(ex.what());
    j.set("cycle", Json::number(static_cast<double>(sess->cycle)));
    return j;
  }
  Json j = ok_json();
  j.set("cycle", Json::number(static_cast<double>(sess->cycle)));
  return j;
}

Json Service::op_poke(const Json& req) {
  Json err;
  const auto sess = find_session(req, &err);
  if (sess == nullptr) return err;
  const std::lock_guard<std::mutex> lock(sess->mu);
  const std::string net = req.get_string("net");
  try {
    sess->compiled.instance->poke(net, req.get_number("value"));
  } catch (const std::exception& ex) {
    return error_json(ex.what());
  }
  return ok_json();
}

Json Service::op_probe(const Json& req) {
  Json err;
  const auto sess = find_session(req, &err);
  if (sess == nullptr) return err;
  const std::lock_guard<std::mutex> lock(sess->mu);
  const std::string net = req.get_string("net");
  try {
    const double v = sess->compiled.instance->probe(net);
    Json j = ok_json();
    j.set("net", Json::string(net));
    j.set("value", Json::number(v));
    return j;
  } catch (const std::exception& ex) {
    return error_json(ex.what());
  }
}

Json Service::op_trace(const Json& req) {
  Json err;
  const auto sess = find_session(req, &err);
  if (sess == nullptr) return err;
  const std::lock_guard<std::mutex> lock(sess->mu);
  auto since = static_cast<std::size_t>(req.get_number("since", 0));
  if (since > sess->rows.size()) since = sess->rows.size();
  Json j = ok_json();
  j.set("from", Json::number(static_cast<double>(since)));
  j.set("probes", string_array(sess->watch));
  j.set("rows", rows_array(sess->rows, since));
  j.set("cycle", Json::number(static_cast<double>(sess->cycle)));
  return j;
}

Json Service::op_checkpoint(const Json& req) {
  Json err;
  const auto sess = find_session(req, &err);
  if (sess == nullptr) return err;
  const std::lock_guard<std::mutex> lock(sess->mu);
  const std::string name = req.get_string("name", "default");
  std::ostringstream os;
  try {
    if (!sess->compiled.instance->save_state(os))
      return error_json("engine '" + sess->compiled.engine +
                        "' has no in-process snapshot surface");
  } catch (const std::exception& ex) {
    return error_json(ex.what());
  }
  Session::Ckpt ck;
  ck.blob = os.str();
  ck.cycle = sess->cycle;
  ck.rows = sess->rows;
  sess->ckpts[name] = std::move(ck);
  Json j = ok_json();
  j.set("name", Json::string(name));
  j.set("cycle", Json::number(static_cast<double>(sess->cycle)));
  j.set("bytes",
        Json::number(static_cast<double>(sess->ckpts[name].blob.size())));
  return j;
}

Json Service::op_fork(const Json& req) {
  Json err;
  const auto parent = find_session(req, &err);
  if (parent == nullptr) return err;

  auto child = std::make_shared<Session>();
  child->diags.make_thread_safe();
  Session::Ckpt ck;
  {
    const std::lock_guard<std::mutex> lock(parent->mu);
    const std::string from = req.get_string("from", "default");
    const auto it = parent->ckpts.find(from);
    if (it == parent->ckpts.end())
      return error_json("unknown checkpoint '" + from + "'");
    ck = it->second;
    child->design_name = parent->design_name;
    child->request = parent->request;
    child->watch = parent->watch;
  }

  // Rebuild the same request: a spec session recompiles (a store hit for
  // engines with cached artifacts), a design session materializes a fresh
  // builtin design.
  if (!child->design_name.empty()) {
    child->design = make_design(child->design_name);
    child->request.design = &child->design->scheduler();
  }
  child->request.diagnostics = &child->diags;
  child->compiled = pipeline::compile(child->request);
  child->request.diagnostics = nullptr;
  child->request.design = nullptr;
  if (!child->compiled.ok) return error_json(child->compiled.error);

  try {
    std::istringstream is(ck.blob);
    if (!child->compiled.instance->restore_state(is))
      return error_json("engine '" + child->compiled.engine +
                        "' has no in-process snapshot surface");
  } catch (const std::exception& ex) {
    return error_json(ex.what());
  }
  child->cycle = ck.cycle;
  child->rows = std::move(ck.rows);

  std::string id;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    id = "s" + std::to_string(next_id_++);
    sessions_[id] = child;
  }
  Json j = ok_json();
  j.set("session", Json::string(id));
  j.set("cycle", Json::number(static_cast<double>(child->cycle)));
  j.set("store_hit", Json::boolean(child->compiled.store_hit));
  return j;
}

Json Service::op_close(const Json& req) {
  const std::string id = req.get_string("session");
  const std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(id) == 0)
    return error_json("unknown session '" + id + "'");
  return ok_json();
}

Json Service::op_diag(const Json& req) {
  Json err;
  const auto sess = find_session(req, &err);
  if (sess == nullptr) return err;
  const std::lock_guard<std::mutex> lock(sess->mu);
  Json findings = Json::array();
  for (const diag::Diagnostic& d : sess->diags.all()) {
    Json f = Json::object();
    f.set("severity", Json::string(diag::severity_name(d.severity)));
    f.set("code", Json::string(d.code));
    f.set("component", Json::string(d.component));
    f.set("message", Json::string(d.message));
    findings.push(std::move(f));
  }
  Json j = ok_json();
  j.set("findings", std::move(findings));
  return j;
}

Json Service::op_ping() const {
  Json j = ok_json();
  j.set("engines", string_array(engine::Registry::global().names()));
  j.set("designs", string_array(design_names()));
  j.set("sessions", Json::number(static_cast<double>(session_count())));
  return j;
}

}  // namespace asicpp::service
