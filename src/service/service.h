// Session-based simulation service.
//
// The paper's environment keeps a designer *interacting* with a live
// design — poking pins, probing nets, snapshotting state — rather than
// re-running batch simulations. This module is that surface as a service:
// a `Session` owns one live engine instance produced by the compile
// pipeline (pipeline/pipeline.h) and supports
//
//   run         advance N cycles (optionally on M worker threads — the
//               level-parallel phase-2 walk rides the shared par::Pool)
//   poke        drive an external input net
//   probe       read one net's last value
//   trace       stream the probe-row history since a cycle (delta reads)
//   checkpoint  snapshot the engine state under a name
//   fork        open a new session resuming from a named checkpoint
//
// `Service` multiplexes sessions behind a newline-delimited JSON protocol
// (`handle_line`): the `asicpp-serve` daemon speaks it over a Unix socket,
// and tests drive the Service in-process through the same entry point.
// Sessions opened from equal spec text with the same engine and options
// share compile artifacts through the content-addressed ArtifactStore (a
// second jit session of a design the store has seen pays no compiler
// run), and every session accumulates findings in its own DiagEngine, so
// concurrent sessions never interleave diagnostics.
//
// Protocol (one JSON object per line; responses always carry "ok"):
//
//   {"op":"open","engine":"jit","spec":"spec wl=...\n..."}
//   {"op":"open","engine":"compiled","design":"quickstart","watch":["y"]}
//       -> {"ok":true,"session":"s1","probes":[...],"store_hit":false,...}
//   {"op":"run","session":"s1","cycles":16,"threads":2}
//       -> {"ok":true,"cycle":16}
//   {"op":"poke","session":"s1","net":"x","value":1.5}  -> {"ok":true}
//   {"op":"probe","session":"s1","net":"y"}   -> {"ok":true,"value":0.5}
//   {"op":"trace","session":"s1","since":8}   -> {"ok":true,"from":8,"rows":[...]}
//   {"op":"checkpoint","session":"s1","name":"c1"}      -> {"ok":true,...}
//   {"op":"fork","session":"s1","from":"c1"}  -> {"ok":true,"session":"s2",...}
//   {"op":"diag","session":"s1"}   -> {"ok":true,"findings":[...]}
//   {"op":"close","session":"s1"}  -> {"ok":true}
//   {"op":"ping"}                  -> {"ok":true,"engines":[...],"designs":[...]}
//   {"op":"shutdown"}              -> {"ok":true,"shutdown":true}
//
// Errors come back as {"ok":false,"error":"one line"} — the service never
// throws out of handle_line, and a failed request never kills a session.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/cyclesched.h"
#include "service/json.h"

namespace asicpp::service {

/// A built-in interactive design the service can open by name (sessions
/// opened from spec text don't need one). The object owns the clock, the
/// scheduler and every component.
class Design {
 public:
  virtual ~Design() = default;
  virtual sched::CycleScheduler& scheduler() = 0;
  /// Nets worth watching by default (the session's probe rows).
  virtual std::vector<std::string> default_probes() const = 0;
};

/// Factory for the built-in designs: "quickstart" (the 2-tap moving
/// average of examples/quickstart.cpp; input "x", output "y") and "dect"
/// (the DECT burst-mode transceiver; pins "sample" / "hold_request").
/// nullptr for unknown names.
std::unique_ptr<Design> make_design(const std::string& name);
std::vector<std::string> design_names();

class Service {
 public:
  Service();
  ~Service();

  /// Handle one protocol line; always returns a one-line JSON response.
  /// Thread-safe: the daemon calls this from one thread per connection.
  std::string handle_line(const std::string& line);

  /// True once a shutdown request was handled.
  bool shutdown_requested() const { return shutdown_.load(); }

  std::size_t session_count() const;

 private:
  struct Session;

  Json handle(const Json& req);
  std::shared_ptr<Session> find_session(const Json& req, Json* err);

  Json op_open(const Json& req);
  Json op_run(const Json& req);
  Json op_poke(const Json& req);
  Json op_probe(const Json& req);
  Json op_trace(const Json& req);
  Json op_checkpoint(const Json& req);
  Json op_fork(const Json& req);
  Json op_close(const Json& req);
  Json op_diag(const Json& req);
  Json op_ping() const;

  mutable std::mutex mu_;  ///< guards sessions_ / next_id_
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
  std::atomic<bool> shutdown_{false};
};

}  // namespace asicpp::service
