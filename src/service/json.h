// Minimal JSON value for the simulation service's line protocol.
//
// The daemon speaks newline-delimited JSON over a Unix socket, so the
// service needs exactly: parse one request object, build one response
// object, dump it on one line. This is that — objects (insertion-ordered),
// arrays, strings (with the standard escapes incl. \uXXXX), doubles,
// bools, null. No external dependency, no DOM niceties.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace asicpp::service {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  ///< null
  static Json boolean(bool b);
  static Json number(double d);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  // --- scalars ---
  bool as_bool(bool dflt = false) const {
    return kind_ == Kind::kBool ? bool_ : dflt;
  }
  double as_number(double dflt = 0.0) const {
    return kind_ == Kind::kNumber ? num_ : dflt;
  }
  const std::string& as_string() const { return str_; }

  // --- arrays ---
  const std::vector<Json>& items() const { return arr_; }
  Json& push(Json v) {
    arr_.push_back(std::move(v));
    return arr_.back();
  }

  // --- objects ---
  /// Member lookup; nullptr when absent (or not an object).
  const Json* get(const std::string& key) const;
  /// Convenience accessors with defaults for absent/mistyped members.
  std::string get_string(const std::string& key,
                         const std::string& dflt = "") const;
  double get_number(const std::string& key, double dflt = 0.0) const;
  bool get_bool(const std::string& key, bool dflt = false) const;
  Json& set(std::string key, Json v);

  /// Compact single-line serialization (doubles via %.17g, so probe values
  /// round-trip bit-exactly).
  std::string dump() const;

  /// Parse a complete JSON document. Returns false with a one-line `err`
  /// (position + reason) on malformed input.
  static bool parse(const std::string& text, Json* out, std::string* err);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace asicpp::service
