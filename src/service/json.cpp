#include "service/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace asicpp::service {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double d) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = d;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

const Json* Json::get(const std::string& key) const {
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

std::string Json::get_string(const std::string& key,
                             const std::string& dflt) const {
  const Json* v = get(key);
  return v != nullptr && v->is_string() ? v->str_ : dflt;
}

double Json::get_number(const std::string& key, double dflt) const {
  const Json* v = get(key);
  return v != nullptr && v->is_number() ? v->num_ : dflt;
}

bool Json::get_bool(const std::string& key, bool dflt) const {
  const Json* v = get(key);
  return v != nullptr && v->is_bool() ? v->bool_ : dflt;
}

Json& Json::set(std::string key, Json v) {
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return old;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return obj_.back().second;
}

namespace {

void escape_to(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      if (std::isfinite(num_)) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", num_);
        out = buf;
      } else {
        out = "null";  // JSON has no NaN/Inf
      }
      break;
    }
    case Kind::kString:
      escape_to(str_, &out);
      break;
    case Kind::kArray: {
      out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out += ",";
        out += arr_[i].dump();
      }
      out += "]";
      break;
    }
    case Kind::kObject: {
      out = "{";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out += ",";
        escape_to(obj_[i].first, &out);
        out += ":";
        out += obj_[i].second.dump();
      }
      out += "}";
      break;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* err)
      : s_(text), err_(err) {}

  bool parse_document(Json* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing content");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (err_ != nullptr)
      *err_ = "json offset " + std::to_string(pos_) + ": " + why;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool parse_value(Json* out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      std::string str;
      if (!parse_string(&str)) return false;
      *out = Json::string(std::move(str));
      return true;
    }
    if (c == 't' || c == 'f') return parse_keyword(out);
    if (c == 'n') return parse_keyword(out);
    return parse_number(out);
  }

  bool parse_keyword(Json* out) {
    static const struct {
      const char* word;
      int len;
    } kw[] = {{"true", 4}, {"false", 5}, {"null", 4}};
    for (const auto& k : kw) {
      if (s_.compare(pos_, static_cast<std::size_t>(k.len), k.word) == 0) {
        pos_ += static_cast<std::size_t>(k.len);
        if (k.word[0] == 't') *out = Json::boolean(true);
        else if (k.word[0] == 'f') *out = Json::boolean(false);
        else *out = Json();
        return true;
      }
    }
    return fail("invalid literal");
  }

  bool parse_number(Json* out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) return fail("invalid number");
    pos_ += static_cast<std::size_t>(end - start);
    *out = Json::number(d);
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return fail("dangling escape");
        const char e = s_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_ + static_cast<std::size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("invalid \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode the basic-plane code point (surrogate pairs are
            // not needed by this protocol; lone surrogates encode as-is).
            if (cp < 0x80) {
              out->push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default:
            return fail("invalid escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_array(Json* out) {
    *out = Json::array();
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json v;
      skip_ws();
      if (!parse_value(&v)) return false;
      out->push(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Json* out) {
    *out = Json::object();
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      Json v;
      if (!parse_value(&v)) return false;
      out->set(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string* err_;
};

}  // namespace

bool Json::parse(const std::string& text, Json* out, std::string* err) {
  Parser p(text, err);
  return p.parse_document(out);
}

}  // namespace asicpp::service
