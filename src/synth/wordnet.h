// Word-level netlist construction: buses of gates with fixed-point formats.
//
// The bridge between signal-flow graphs and gates. A Bus is an ordered set
// of gate outputs (LSB first) carrying the two's-complement mantissa of a
// value in a given Format. The builder provides the word operators the
// datapath synthesizer bit-blasts SFGs with: ripple-carry add/sub, array
// multiply, muxes, comparators, and the quantize (round/saturate) logic
// whose semantics match fixpt::quantize bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fixpt/format.h"
#include "netlist/netlist.h"

namespace asicpp::synth {

struct Bus {
  std::vector<std::int32_t> bits;  ///< gate ids, LSB first
  fixpt::Format fmt;

  int width() const { return static_cast<int>(bits.size()); }
};

class WordBuilder {
 public:
  explicit WordBuilder(netlist::Netlist& nl) : nl_(&nl) {}

  netlist::Netlist& netlist() const { return *nl_; }

  std::int32_t zero();
  std::int32_t one();

  /// Primary-input bus named "name[i]".
  Bus input(const std::string& name, const fixpt::Format& f);
  /// Constant bus holding quantize(v, f)'s mantissa.
  Bus constant(double v, const fixpt::Format& f);
  /// Mark bus as output "name[i]".
  void output(const std::string& name, const Bus& b);

  /// Register bus: DFFs initialized to quantize(init, f). Connect the D
  /// inputs later with `set_next`.
  Bus reg(const fixpt::Format& f, double init);
  void set_next(const Bus& q, const Bus& d);

  /// Re-represent `b` in format `to` *without* quantization: shift the
  /// mantissa to align binary points and sign/zero-extend or truncate to
  /// to.wl bits. Safe when `to` can hold every value of b.fmt.
  Bus align(const Bus& b, const fixpt::Format& to);

  Bus add(const Bus& a, const Bus& b, const fixpt::Format& to);
  Bus sub(const Bus& a, const Bus& b, const fixpt::Format& to);
  Bus mul(const Bus& a, const Bus& b, const fixpt::Format& to);
  Bus neg(const Bus& a, const fixpt::Format& to);

  /// Bitwise logic on aligned integer mantissas.
  Bus logic(netlist::GateType g2, const Bus& a, const Bus& b, const fixpt::Format& to);

  /// 1-bit results (returned as single gate ids).
  std::int32_t nonzero(const Bus& a);
  std::int32_t equal(const Bus& a, const Bus& b);
  std::int32_t less(const Bus& a, const Bus& b);  ///< signed-aware a < b

  /// Word mux: sel ? a : b, both aligned into `to`.
  Bus mux(std::int32_t sel, const Bus& a, const Bus& b, const fixpt::Format& to);

  /// Bit-true image of fixpt::quantize(value(b), to): rounding (truncate /
  /// half-away-from-zero) and overflow (saturate / wrap).
  Bus quantize(const Bus& b, const fixpt::Format& to);

  /// Single-bit constant-select mux helper.
  std::int32_t bit_mux(std::int32_t sel, std::int32_t t, std::int32_t f);

 private:
  /// Sign bit (or constant 0 for unsigned buses).
  std::int32_t sign_of(const Bus& b);
  /// a + b + cin over equal-width bit vectors (ripple carry), result width n.
  std::vector<std::int32_t> ripple_add(const std::vector<std::int32_t>& a,
                                       const std::vector<std::int32_t>& b,
                                       std::int32_t cin);

  netlist::Netlist* nl_;
  std::int32_t zero_ = -1;
  std::int32_t one_ = -1;
};

}  // namespace asicpp::synth
