#include "synth/optimize.h"

#include <map>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace asicpp::synth {

using netlist::Gate;
using netlist::GateType;
using netlist::Netlist;

namespace {

/// Working view: every gate id maps to a representative (another gate).
class Rewriter {
 public:
  explicit Rewriter(const Netlist& nl) : nl_(&nl), repl_(static_cast<std::size_t>(nl.num_gates())) {
    for (std::int32_t i = 0; i < nl.num_gates(); ++i) repl_[static_cast<std::size_t>(i)] = i;
    for (std::int32_t i = 0; i < nl.num_gates(); ++i) {
      const GateType t = nl.gate(i).type;
      if (t == GateType::kConst0) const0_ = i;
      if (t == GateType::kConst1) const1_ = i;
    }
  }

  std::int32_t find(std::int32_t x) {
    while (x >= 0 && repl_[static_cast<std::size_t>(x)] != x) {
      const std::int32_t next = repl_[static_cast<std::size_t>(x)];
      if (next >= 0 && repl_[static_cast<std::size_t>(next)] >= 0)
        repl_[static_cast<std::size_t>(x)] = repl_[static_cast<std::size_t>(next)];
      x = next;
    }
    return x;
  }

  bool is0(std::int32_t x) {
    const std::int32_t r = find(x);
    return r == kPending0 || (const0_ >= 0 && r == const0_);
  }
  bool is1(std::int32_t x) {
    const std::int32_t r = find(x);
    return r == kPending1 || (const1_ >= 0 && r == const1_);
  }

  /// One simplification sweep; returns number of changes.
  int sweep(OptStats& st) {
    int changes = 0;
    std::map<std::tuple<int, std::int32_t, std::int32_t, std::int32_t>, std::int32_t> hash;
    for (std::int32_t id = 0; id < nl_->num_gates(); ++id) {
      if (find(id) != id) continue;
      const Gate& g = nl_->gate(id);
      if (g.type == GateType::kInput || g.type == GateType::kDff ||
          g.type == GateType::kConst0 || g.type == GateType::kConst1)
        continue;
      const std::int32_t a = g.in[0] >= 0 ? find(g.in[0]) : -1;
      const std::int32_t b = g.in[1] >= 0 ? find(g.in[1]) : -1;
      const std::int32_t c = g.in[2] >= 0 ? find(g.in[2]) : -1;
      std::int32_t to = -1;
      switch (g.type) {
        case GateType::kBuf:
          to = a;
          break;
        case GateType::kNot:
          if (is0(a)) to = need1();
          else if (is1(a)) to = need0();
          else if (a >= 0 && nl_->gate(a).type == GateType::kNot)
            to = find(nl_->gate(a).in[0]);
          break;
        case GateType::kAnd:
          if (is0(a) || is0(b)) to = need0();
          else if (is1(a)) to = b;
          else if (is1(b)) to = a;
          else if (a == b) to = a;
          break;
        case GateType::kOr:
          if (is1(a) || is1(b)) to = need1();
          else if (is0(a)) to = b;
          else if (is0(b)) to = a;
          else if (a == b) to = a;
          break;
        case GateType::kXor:
          if (is0(a)) to = b;
          else if (is0(b)) to = a;
          else if (a == b) to = need0();
          break;
        case GateType::kXnor:
          if (is1(a)) to = b;
          else if (is1(b)) to = a;
          else if (a == b) to = need1();
          break;
        case GateType::kNand:
          if (is0(a) || is0(b)) to = need1();
          break;
        case GateType::kNor:
          if (is1(a) || is1(b)) to = need0();
          break;
        case GateType::kMux:
          if (is1(a)) to = b;
          else if (is0(a)) to = c;
          else if (b == c) to = b;
          break;
        default:
          break;
      }
      if (to != -1 && to != id) {
        repl_[static_cast<std::size_t>(id)] = to;
        ++st.simplified;
        ++changes;
        continue;
      }
      // Structural hashing over canonicalized fanins.
      std::int32_t ha = a, hb = b;
      switch (g.type) {
        case GateType::kAnd:
        case GateType::kOr:
        case GateType::kXor:
        case GateType::kXnor:
        case GateType::kNand:
        case GateType::kNor:
          if (ha > hb) std::swap(ha, hb);
          break;
        default:
          break;
      }
      const auto key = std::make_tuple(static_cast<int>(g.type), ha, hb, c);
      const auto it = hash.find(key);
      if (it == hash.end()) {
        hash.emplace(key, id);
      } else if (it->second != id) {
        repl_[static_cast<std::size_t>(id)] = it->second;
        ++st.deduplicated;
        ++changes;
      }
    }
    return changes;
  }

  std::int32_t const0() const { return const0_; }
  std::int32_t const1() const { return const1_; }
  bool needs_const0() const { return need0_; }
  bool needs_const1() const { return need1_; }

 private:
  // Constants may not exist in the source netlist; note the need and let
  // the rebuild insert them.
  std::int32_t need0() {
    need0_ = true;
    return const0_ >= 0 ? const0_ : kPending0;
  }
  std::int32_t need1() {
    need1_ = true;
    return const1_ >= 0 ? const1_ : kPending1;
  }

 public:
  static constexpr std::int32_t kPending0 = -2;
  static constexpr std::int32_t kPending1 = -3;

  std::int32_t resolve(std::int32_t x) {
    if (x == kPending0 || x == kPending1) return x;
    return find(x);
  }

 private:
  const Netlist* nl_;
  std::vector<std::int32_t> repl_;
  std::int32_t const0_ = -1;
  std::int32_t const1_ = -1;
  bool need0_ = false;
  bool need1_ = false;
};

}  // namespace

Netlist optimize(const Netlist& in, OptStats* stats) {
  OptStats local;
  OptStats& st = stats != nullptr ? *stats : local;
  st = OptStats{};

  Rewriter rw(in);
  while (rw.sweep(st) > 0) {
    ++st.rounds;
    if (st.rounds > 64) break;
  }

  // Reachability from outputs and (transitively) DFF data cones.
  std::vector<bool> live(static_cast<std::size_t>(in.num_gates()), false);
  std::vector<std::int32_t> stack;
  const auto mark = [&](std::int32_t id) {
    if (id < 0) return;  // pending constants handled at rebuild
    id = rw.find(id);
    if (id < 0) return;
    if (!live[static_cast<std::size_t>(id)]) {
      live[static_cast<std::size_t>(id)] = true;
      stack.push_back(id);
    }
  };
  for (const auto& [_, id] : in.outputs()) mark(id);
  while (!stack.empty()) {
    const std::int32_t id = stack.back();
    stack.pop_back();
    const Gate& g = in.gate(id);
    for (int i = 0; i < netlist::gate_arity(g.type); ++i) mark(g.in[i]);
  }
  // Inputs are part of the interface; keep them live.
  for (const auto& [_, id] : in.inputs()) live[static_cast<std::size_t>(id)] = true;

  // Rebuild compacted.
  Netlist out;
  std::vector<std::int32_t> remap(static_cast<std::size_t>(in.num_gates()), -1);
  std::int32_t c0 = -1, c1 = -1;
  const auto new_const0 = [&]() {
    if (c0 < 0) c0 = out.add_gate(GateType::kConst0);
    return c0;
  };
  const auto new_const1 = [&]() {
    if (c1 < 0) c1 = out.add_gate(GateType::kConst1);
    return c1;
  };

  // Pass 1: inputs and DFF shells (ids needed for feedback).
  for (const auto& [name, id] : in.inputs()) {
    remap[static_cast<std::size_t>(id)] = out.add_input(name);
  }
  for (std::int32_t id = 0; id < in.num_gates(); ++id) {
    if (!live[static_cast<std::size_t>(id)] || rw.find(id) != id) continue;
    if (in.gate(id).type == GateType::kDff)
      remap[static_cast<std::size_t>(id)] = out.add_dff(in.gate(id).init);
  }
  // Pass 2: combinational gates in (old) topological id order; comb fanins
  // always have smaller representative-carrying ids than their consumers
  // except through placeholders, which the sweep collapses to their source.
  const auto lookup = [&](std::int32_t x) -> std::int32_t {
    x = rw.resolve(x);
    if (x == Rewriter::kPending0) return new_const0();
    if (x == Rewriter::kPending1) return new_const1();
    if (x < 0) throw std::logic_error("optimize: unconnected fanin");
    const std::int32_t nid = remap[static_cast<std::size_t>(x)];
    if (nid < 0) throw std::logic_error("optimize: fanin not yet rebuilt");
    return nid;
  };
  // Worklist rebuild: placeholders allow forward fanin references, so id
  // order is not topological — iterate until every live gate is rebuilt.
  std::vector<std::int32_t> pending;
  for (std::int32_t id = 0; id < in.num_gates(); ++id) {
    if (!live[static_cast<std::size_t>(id)] || rw.find(id) != id) continue;
    const Gate& g = in.gate(id);
    switch (g.type) {
      case GateType::kInput:
      case GateType::kDff:
        continue;
      case GateType::kConst0:
        remap[static_cast<std::size_t>(id)] = new_const0();
        continue;
      case GateType::kConst1:
        remap[static_cast<std::size_t>(id)] = new_const1();
        continue;
      default:
        pending.push_back(id);
    }
  }
  const auto resolved = [&](std::int32_t x) -> bool {
    x = rw.resolve(x);
    if (x == Rewriter::kPending0 || x == Rewriter::kPending1) return true;
    return x >= 0 && remap[static_cast<std::size_t>(x)] >= 0;
  };
  while (!pending.empty()) {
    std::vector<std::int32_t> next;
    bool progress = false;
    for (const std::int32_t id : pending) {
      const Gate& g = in.gate(id);
      const int ar = netlist::gate_arity(g.type);
      bool ready = true;
      for (int i = 0; i < ar; ++i) ready = ready && resolved(g.in[i]);
      if (!ready) {
        next.push_back(id);
        continue;
      }
      remap[static_cast<std::size_t>(id)] =
          out.add_gate(g.type, ar > 0 ? lookup(g.in[0]) : -1,
                       ar > 1 ? lookup(g.in[1]) : -1, ar > 2 ? lookup(g.in[2]) : -1);
      progress = true;
    }
    if (!progress)
      throw std::logic_error("optimize: combinational loop in netlist");
    pending.swap(next);
  }
  // Pass 3: DFF data inputs and outputs.
  for (std::int32_t id = 0; id < in.num_gates(); ++id) {
    if (!live[static_cast<std::size_t>(id)] || rw.find(id) != id) continue;
    const Gate& g = in.gate(id);
    if (g.type == GateType::kDff && g.in[0] >= 0)
      out.set_dff_input(remap[static_cast<std::size_t>(id)], lookup(g.in[0]));
  }
  for (const auto& [name, id] : in.outputs()) out.mark_output(name, lookup(id));

  st.dead_removed = in.num_gates() - out.num_gates();
  return out;
}

}  // namespace asicpp::synth
