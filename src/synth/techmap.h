// Technology mapping onto a primitive cell library.
//
// The last step of the divide-and-conquer synthesis flow (Fig 8): the
// optimized generic netlist is re-expressed with a small standard-cell
// set — NAND2, NOR2, INV plus DFFs — the way a 0.7 µm library of the
// paper's era would receive it. XOR/XNOR/MUX/AND/OR/BUF are decomposed;
// behaviour is preserved exactly (checked by the equivalence tests).
#pragma once

#include "netlist/netlist.h"

namespace asicpp::synth {

struct TechMapStats {
  int cells = 0;       ///< mapped cell instances (excl. inputs/constants)
  double area = 0.0;   ///< equivalent-gate area after mapping
  int depth = 0;       ///< logic depth in mapped cells
};

/// Map `in` onto {NAND2, NOR2, NOT, DFF, CONST}. The input netlist must
/// have no unconnected placeholders.
netlist::Netlist tech_map(const netlist::Netlist& in, TechMapStats* stats = nullptr);

}  // namespace asicpp::synth
