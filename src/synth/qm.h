// Two-level logic minimization (Quine-McCluskey).
//
// The controller synthesis path ("pure logic synthesis such as FSM
// synthesis", section 6) flattens next-state and output functions into
// truth tables and minimizes them into prime-implicant covers before gate
// mapping — our stand-in for the commercial logic synthesis the paper
// delegated to Synopsys DC.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asicpp::synth {

/// A product term over n variables: bit i of `care` set means variable i
/// is tested; `value` gives the tested polarity (bits outside care are 0).
struct Cube {
  std::uint32_t value = 0;
  std::uint32_t care = 0;

  bool covers(std::uint32_t minterm) const { return (minterm & care) == value; }
  int literals() const;
  bool operator==(const Cube&) const = default;
  /// e.g. "1-0" (MSB = highest variable index).
  std::string to_string(int nvars) const;
};

/// Minimize the single-output function over `nvars` inputs given its ON-set
/// minterms and optional don't-cares. Returns a prime-implicant cover
/// (essential primes plus a greedy cover of the rest). An empty ON-set
/// yields an empty cover (constant 0); a cover containing the universal
/// cube means constant 1.
std::vector<Cube> minimize(const std::vector<std::uint32_t>& on_set,
                           const std::vector<std::uint32_t>& dc_set, int nvars);

/// Total literal count of a cover (cost metric).
int cover_cost(const std::vector<Cube>& cover);

/// Evaluate a cover on an input assignment.
bool eval_cover(const std::vector<Cube>& cover, std::uint32_t input);

}  // namespace asicpp::synth
