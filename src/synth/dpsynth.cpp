#include "synth/dpsynth.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "synth/qm.h"
#include "synth/wordnet.h"

namespace asicpp::synth {

using fixpt::Format;
using hdl::CompModel;
using netlist::GateType;
using sfg::Node;
using sfg::NodePtr;
using sfg::Op;

namespace {

bool shareable(Op op) { return op == Op::kAdd || op == Op::kSub || op == Op::kMul; }

const Format kInstrFmt{16, 15, true, fixpt::Quant::kTruncate, fixpt::Overflow::kWrap};

Format merge_fmt(const Format& a, const Format& b) {
  Format r;
  r.is_signed = a.is_signed || b.is_signed;
  const int frac = std::max(a.frac_bits(), b.frac_bits());
  r.iwl = std::max(a.iwl, b.iwl);
  r.wl = r.iwl + frac + (r.is_signed ? 1 : 0);
  return r;
}

class CompSynth {
 public:
  CompSynth(CompModel model, netlist::Netlist& nl, const SynthOptions& opt,
            const std::map<std::string, Bus>* provided = nullptr,
            std::map<std::string, Bus>* captured = nullptr)
      : m_(std::move(model)), wb_(nl), opt_(opt), provided_(provided), captured_(captured) {}

  SynthReport run();

 private:
  struct Mode {
    std::int32_t sel = -1;           ///< select bit (gate id)
    std::vector<sfg::Sfg*> sfgs;     ///< SFGs active in this mode
    int to_state = -1;               ///< FSM destination state
  };

  struct Instance {
    const Node* node;
    int mode;
    int unit = -1;
  };

  struct Unit {
    Op op;
    std::vector<int> instances;
    bool built = false;
    Bus out;
  };

  const Format& fmt(const Node* n) const { return m_.fmts.at(n); }

  Bus leaf_bus(const NodePtr& n);
  Bus value_of(int mode, const NodePtr& n);
  std::int32_t bool_of(int mode, const NodePtr& n);

  void discover(int mode, const NodePtr& n,
                std::unordered_map<const Node*, bool>& seen);
  void collect_instance_deps(int inst, const NodePtr& n,
                             std::unordered_map<const Node*, bool>& seen);
  void bind_units();
  bool units_acyclic(std::vector<int>* cycle_unit);
  void build_unit(int u);

  void build_modes_and_selects();
  void build_fsm_selects();
  void build_outputs_and_regs();

  CompModel m_;
  WordBuilder wb_;
  SynthOptions opt_;
  const std::map<std::string, Bus>* provided_ = nullptr;
  std::map<std::string, Bus>* captured_ = nullptr;

  std::vector<Mode> modes_;
  std::vector<Instance> instances_;
  std::map<std::pair<const Node*, int>, int> inst_of_;  ///< (node, mode) -> instance
  std::vector<std::vector<int>> inst_deps_;             ///< instance -> instances
  std::vector<Unit> units_;

  std::unordered_map<const Node*, Bus> leaf_memo_;
  std::map<std::pair<const Node*, int>, Bus> memo_;

  // FSM state
  std::vector<std::int32_t> state_q_;   ///< state register bits
  std::vector<std::uint32_t> state_code_;  ///< encoding per state
  int state_bits_ = 0;
};

Bus CompSynth::leaf_bus(const NodePtr& n) {
  const auto it = leaf_memo_.find(n.get());
  if (it != leaf_memo_.end()) return it->second;
  Bus b;
  switch (n->op) {
    case Op::kInput:
      if (provided_ != nullptr && provided_->count(n->name)) {
        // Linked input: quantize the incoming bus into the declared
        // format, matching the interpreted token-load semantics.
        b = wb_.quantize(provided_->at(n->name), fmt(n.get()));
      } else {
        b = wb_.input(hdl::sanitize(n->name), fmt(n.get()));
      }
      break;
    case Op::kConst:
      b = wb_.constant(n->value.value(), fmt(n.get()));
      break;
    case Op::kReg:
      b = wb_.reg(n->has_fmt ? n->fmt : fmt(n.get()), n->init);
      break;
    default:
      throw std::logic_error("leaf_bus: not a leaf");
  }
  leaf_memo_.emplace(n.get(), b);
  return b;
}

std::int32_t CompSynth::bool_of(int mode, const NodePtr& n) {
  return wb_.nonzero(value_of(mode, n));
}

Bus CompSynth::value_of(int mode, const NodePtr& n) {
  switch (n->op) {
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
      return leaf_bus(n);
    default:
      break;
  }
  const auto key = std::make_pair(n.get(), mode);
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  Bus r;
  const Format& f = fmt(n.get());

  const auto inst_it = inst_of_.find(key);
  if (inst_it != inst_of_.end()) {
    // Shared operator: route through the physical unit.
    Unit& u = units_[static_cast<std::size_t>(
        instances_[static_cast<std::size_t>(inst_it->second)].unit)];
    if (!u.built) build_unit(instances_[static_cast<std::size_t>(inst_it->second)].unit);
    r = wb_.align(u.out, f);
  } else {
    switch (n->op) {
      case Op::kAdd: r = wb_.add(value_of(mode, n->args[0]), value_of(mode, n->args[1]), f); break;
      case Op::kSub: r = wb_.sub(value_of(mode, n->args[0]), value_of(mode, n->args[1]), f); break;
      case Op::kMul: r = wb_.mul(value_of(mode, n->args[0]), value_of(mode, n->args[1]), f); break;
      case Op::kNeg: r = wb_.neg(value_of(mode, n->args[0]), f); break;
      case Op::kAnd:
        r = wb_.logic(GateType::kAnd, value_of(mode, n->args[0]), value_of(mode, n->args[1]), f);
        break;
      case Op::kOr:
        r = wb_.logic(GateType::kOr, value_of(mode, n->args[0]), value_of(mode, n->args[1]), f);
        break;
      case Op::kXor:
        r = wb_.logic(GateType::kXor, value_of(mode, n->args[0]), value_of(mode, n->args[1]), f);
        break;
      case Op::kNot: {
        const auto nz = bool_of(mode, n->args[0]);
        r.fmt = f;
        r.bits.push_back(wb_.netlist().add_gate(GateType::kNot, nz));
        break;
      }
      case Op::kShl: {
        // v * 2^n at unchanged fractional precision: mantissa shifts left.
        const Bus a = value_of(mode, n->args[0]);
        const int sh = static_cast<int>(n->args[1]->value.value());
        r.fmt = f;
        const std::int32_t s = a.fmt.is_signed ? a.bits.back() : wb_.zero();
        for (int i = 0; i < f.wl; ++i) {
          const int src = i - sh;
          if (src < 0)
            r.bits.push_back(wb_.zero());
          else if (src < a.width())
            r.bits.push_back(a.bits[static_cast<std::size_t>(src)]);
          else
            r.bits.push_back(s);
        }
        break;
      }
      case Op::kShr: {
        // v / 2^n: the binary point moves; the mantissa bits are unchanged.
        const Bus a = value_of(mode, n->args[0]);
        r.fmt = f;
        const std::int32_t s = a.fmt.is_signed ? a.bits.back() : wb_.zero();
        for (int i = 0; i < f.wl; ++i)
          r.bits.push_back(i < a.width() ? a.bits[static_cast<std::size_t>(i)] : s);
        break;
      }
      case Op::kMux: {
        const auto sel = bool_of(mode, n->args[0]);
        r = wb_.mux(sel, value_of(mode, n->args[1]), value_of(mode, n->args[2]), f);
        break;
      }
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        const Bus a = value_of(mode, n->args[0]);
        const Bus b = value_of(mode, n->args[1]);
        std::int32_t bit;
        switch (n->op) {
          case Op::kEq: bit = wb_.equal(a, b); break;
          case Op::kNe: bit = wb_.netlist().add_gate(GateType::kNot, wb_.equal(a, b)); break;
          case Op::kLt: bit = wb_.less(a, b); break;
          case Op::kGe: bit = wb_.netlist().add_gate(GateType::kNot, wb_.less(a, b)); break;
          case Op::kGt: bit = wb_.less(b, a); break;
          default: bit = wb_.netlist().add_gate(GateType::kNot, wb_.less(b, a)); break;
        }
        r.fmt = f;
        r.bits.push_back(bit);
        break;
      }
      case Op::kCast:
        r = wb_.quantize(value_of(mode, n->args[0]), f);
        break;
      default:
        throw std::logic_error("value_of: unhandled op");
    }
  }
  memo_.emplace(key, r);
  return r;
}

// --- instance discovery & binding ---

void CompSynth::discover(int mode, const NodePtr& n,
                         std::unordered_map<const Node*, bool>& seen) {
  switch (n->op) {
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
      return;
    default:
      break;
  }
  if (seen.count(n.get())) return;
  seen.emplace(n.get(), true);
  // Post-order: operands first, so instance ordinals follow topo order.
  for (const auto& a : n->args) discover(mode, a, seen);
  if (shareable(n->op)) {
    const auto key = std::make_pair(n.get(), mode);
    if (!inst_of_.count(key)) {
      inst_of_.emplace(key, static_cast<int>(instances_.size()));
      instances_.push_back(Instance{n.get(), mode, -1});
    }
  }
}

void CompSynth::collect_instance_deps(int inst, const NodePtr& n,
                                      std::unordered_map<const Node*, bool>& seen) {
  switch (n->op) {
    case Op::kInput:
    case Op::kConst:
    case Op::kReg:
      return;
    default:
      break;
  }
  if (seen.count(n.get())) return;
  seen.emplace(n.get(), true);
  const int mode = instances_[static_cast<std::size_t>(inst)].mode;
  if (shareable(n->op)) {
    const auto it = inst_of_.find({n.get(), mode});
    if (it != inst_of_.end() && it->second != inst) {
      inst_deps_[static_cast<std::size_t>(inst)].push_back(it->second);
      return;  // stop at shared boundaries
    }
  }
  for (const auto& a : n->args) collect_instance_deps(inst, a, seen);
}

bool CompSynth::units_acyclic(std::vector<int>* cycle_units) {
  const int nu = static_cast<int>(units_.size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(nu));
  std::vector<int> indeg(static_cast<std::size_t>(nu), 0);
  std::vector<std::vector<bool>> has(static_cast<std::size_t>(nu),
                                     std::vector<bool>(static_cast<std::size_t>(nu), false));
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const int u = instances_[i].unit;
    for (const int d : inst_deps_[i]) {
      const int v = instances_[static_cast<std::size_t>(d)].unit;
      if (u == v) continue;  // same-unit dependency would itself be a cycle
      if (!has[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)]) {
        has[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] = true;
        adj[static_cast<std::size_t>(v)].push_back(u);
        ++indeg[static_cast<std::size_t>(u)];
      }
    }
  }
  // Same-unit instance dependencies are cycles, too.
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    for (const int d : inst_deps_[i]) {
      if (instances_[static_cast<std::size_t>(d)].unit == instances_[i].unit &&
          d != static_cast<int>(i)) {
        if (cycle_units != nullptr) *cycle_units = {instances_[i].unit};
        return false;
      }
    }
  }
  std::vector<int> q;
  for (int u = 0; u < nu; ++u)
    if (indeg[static_cast<std::size_t>(u)] == 0) q.push_back(u);
  int seen = 0;
  while (!q.empty()) {
    const int u = q.back();
    q.pop_back();
    ++seen;
    for (const int v : adj[static_cast<std::size_t>(u)])
      if (--indeg[static_cast<std::size_t>(v)] == 0) q.push_back(v);
  }
  if (seen == nu) return true;
  if (cycle_units != nullptr) {
    cycle_units->clear();
    for (int u = 0; u < nu; ++u)
      if (indeg[static_cast<std::size_t>(u)] > 0) cycle_units->push_back(u);
  }
  return false;
}

void CompSynth::bind_units() {
  // Greedy ordinal binding: j-th add of any mode shares the j-th adder.
  std::map<std::pair<int, int>, int> unit_key;  // (op, ordinal) -> unit
  std::map<std::pair<int, int>, int> counts;    // (op, mode) -> next ordinal
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    Instance& in = instances_[i];
    const int opi = static_cast<int>(in.node->op);
    const int ord = counts[{opi, in.mode}]++;
    const auto key = std::make_pair(opi, ord);
    auto it = unit_key.find(key);
    if (it == unit_key.end()) {
      it = unit_key.emplace(key, static_cast<int>(units_.size())).first;
      units_.push_back(Unit{in.node->op, {}, false, {}});
    }
    in.unit = it->second;
    units_[static_cast<std::size_t>(it->second)].instances.push_back(static_cast<int>(i));
  }

  // Repair combinational cycles by splitting instances off shared units.
  std::vector<int> cyc;
  int guard = 0;
  while (!units_acyclic(&cyc)) {
    if (++guard > static_cast<int>(instances_.size()) + 8)
      throw std::logic_error("bind_units: cycle repair did not converge");
    bool split = false;
    for (const int u : cyc) {
      Unit& unit = units_[static_cast<std::size_t>(u)];
      if (unit.instances.size() < 2) continue;
      const int moved = unit.instances.back();
      unit.instances.pop_back();
      const int nu = static_cast<int>(units_.size());
      units_.push_back(Unit{unit.op, {moved}, false, {}});
      instances_[static_cast<std::size_t>(moved)].unit = nu;
      split = true;
      break;
    }
    if (!split)
      throw std::logic_error("bind_units: irreducible combinational cycle");
  }
}

void CompSynth::build_unit(int ui) {
  Unit& u = units_[static_cast<std::size_t>(ui)];
  if (u.built) return;
  u.built = true;  // set first; acyclic binding guarantees no re-entry

  // Merge operand formats across instances.
  const Node* first = instances_[static_cast<std::size_t>(u.instances.at(0))].node;
  Format fa = fmt(first->args[0].get());
  Format fb = fmt(first->args[1].get());
  for (std::size_t k = 1; k < u.instances.size(); ++k) {
    const Node* n = instances_[static_cast<std::size_t>(u.instances[k])].node;
    fa = merge_fmt(fa, fmt(n->args[0].get()));
    fb = merge_fmt(fb, fmt(n->args[1].get()));
  }

  // Operand muxes: fold newest-first so instance 0 is the fallback.
  const auto operand = [&](int arg_idx, const Format& f) {
    const Instance& base = instances_[static_cast<std::size_t>(u.instances[0])];
    Bus acc = wb_.align(
        value_of(base.mode, base.node->args[static_cast<std::size_t>(arg_idx)]), f);
    for (std::size_t k = 1; k < u.instances.size(); ++k) {
      const Instance& in = instances_[static_cast<std::size_t>(u.instances[k])];
      const Bus v = value_of(in.mode, in.node->args[static_cast<std::size_t>(arg_idx)]);
      acc = wb_.mux(modes_[static_cast<std::size_t>(in.mode)].sel, wb_.align(v, f), acc, f);
    }
    return acc;
  };

  const Bus a = operand(0, fa);
  const Bus b = operand(1, fb);
  Format out;
  switch (u.op) {
    case Op::kAdd: out = fixpt::add_format(fa, fb); break;
    case Op::kSub:
      out = fixpt::add_format(fa, fb);
      if (!out.is_signed) {
        out.is_signed = true;
        out.wl += 1;
      }
      break;
    case Op::kMul: out = fixpt::mul_format(fa, fb); break;
    default: throw std::logic_error("build_unit: bad op");
  }
  switch (u.op) {
    case Op::kAdd: u.out = wb_.add(a, b, out); break;
    case Op::kSub: u.out = wb_.sub(a, b, out); break;
    default: u.out = wb_.mul(a, b, out); break;
  }
}

// --- control ---

void CompSynth::build_modes_and_selects() {
  switch (m_.kind) {
    case CompModel::Kind::kSfg: {
      Mode m;
      m.sel = wb_.one();
      m.sfgs = {m_.sfgs.front()};
      modes_.push_back(m);
      break;
    }
    case CompModel::Kind::kDispatch: {
      const Bus instr = (provided_ != nullptr && provided_->count("instr"))
                            ? wb_.quantize(provided_->at("instr"), kInstrFmt)
                            : wb_.input("instr", kInstrFmt);
      std::vector<std::int32_t> match_bits;
      for (const auto& [opcode, s] : m_.table) {
        Mode m;
        m.sel = wb_.equal(instr, wb_.constant(static_cast<double>(opcode), kInstrFmt));
        m.sfgs = {s};
        match_bits.push_back(m.sel);
        modes_.push_back(m);
      }
      if (m_.dflt != nullptr) {
        if (match_bits.empty())
          throw std::invalid_argument("synthesize_component: dispatch with no opcodes");
        std::int32_t any = match_bits.front();
        for (std::size_t i = 1; i < match_bits.size(); ++i)
          any = wb_.netlist().add_gate(GateType::kOr, any, match_bits[i]);
        Mode m;
        m.sel = wb_.netlist().add_gate(GateType::kNot, any);
        m.sfgs = {m_.dflt};
        modes_.push_back(m);
      }
      break;
    }
    case CompModel::Kind::kFsm:
      build_fsm_selects();
      break;
  }
}

void CompSynth::build_fsm_selects() {
  const fsm::Fsm& f = *m_.fsm;
  const int ns = f.num_states();

  // State encoding.
  state_code_.resize(static_cast<std::size_t>(ns));
  switch (opt_.encoding) {
    case StateEncoding::kBinary:
      state_bits_ = 1;
      while ((1 << state_bits_) < ns) ++state_bits_;
      for (int s = 0; s < ns; ++s) state_code_[static_cast<std::size_t>(s)] = static_cast<std::uint32_t>(s);
      break;
    case StateEncoding::kGray:
      state_bits_ = 1;
      while ((1 << state_bits_) < ns) ++state_bits_;
      for (int s = 0; s < ns; ++s)
        state_code_[static_cast<std::size_t>(s)] = static_cast<std::uint32_t>(s ^ (s >> 1));
      break;
    case StateEncoding::kOneHot:
      state_bits_ = ns;
      for (int s = 0; s < ns; ++s) state_code_[static_cast<std::size_t>(s)] = 1u << s;
      break;
  }

  const Format bitf{1, 1, false, fixpt::Quant::kTruncate, fixpt::Overflow::kWrap};
  const std::uint32_t init_code = state_code_[static_cast<std::size_t>(f.initial_state())];
  for (int b = 0; b < state_bits_; ++b) {
    const Bus q = wb_.reg(bitf, ((init_code >> b) & 1) ? 1.0 : 0.0);
    state_q_.push_back(q.bits[0]);
  }

  // Guard bits (synthesized in global mode -1; they read registers only).
  std::vector<std::int32_t> guard_bits;
  std::vector<int> guard_of_transition;
  for (const auto& t : f.transitions()) {
    if (t.guards.empty()) {
      guard_of_transition.push_back(-1);
    } else {
      guard_of_transition.push_back(static_cast<int>(guard_bits.size()));
      guard_bits.push_back(bool_of(-1, t.guards.front().expr().node()));
    }
  }

  const int ng = static_cast<int>(guard_bits.size());
  const int nt = static_cast<int>(f.transitions().size());

  // state_is(s): compare state register bits to the code.
  const auto state_is = [&](int s) {
    std::int32_t acc = -1;
    for (int b = 0; b < state_bits_; ++b) {
      const std::int32_t bit = ((state_code_[static_cast<std::size_t>(s)] >> b) & 1)
                                   ? state_q_[static_cast<std::size_t>(b)]
                                   : wb_.netlist().add_gate(GateType::kNot,
                                                            state_q_[static_cast<std::size_t>(b)]);
      acc = (acc < 0) ? bit : wb_.netlist().add_gate(GateType::kAnd, acc, bit);
    }
    return acc;
  };

  const bool use_qm = opt_.qm_controller && (state_bits_ + ng) <= 16;
  if (use_qm) {
    // Truth-table the priority selection over (guards, state bits).
    const int nin = state_bits_ + ng;
    std::vector<std::vector<std::uint32_t>> on(static_cast<std::size_t>(nt));
    std::vector<std::uint32_t> dc;
    for (std::uint32_t in = 0; in < (1u << nin); ++in) {
      const std::uint32_t scode = in & ((1u << state_bits_) - 1);
      int state = -1;
      for (int s = 0; s < ns; ++s)
        if (state_code_[static_cast<std::size_t>(s)] == scode) state = s;
      if (state < 0) {
        dc.push_back(in);
        continue;
      }
      for (int t = 0; t < nt; ++t) {
        const auto& tr = f.transitions()[static_cast<std::size_t>(t)];
        if (tr.from != state) continue;
        const int g = guard_of_transition[static_cast<std::size_t>(t)];
        const bool taken =
            (g < 0) || (((in >> (state_bits_ + g)) & 1) != 0);
        if (taken) {
          on[static_cast<std::size_t>(t)].push_back(in);
          break;  // priority: first matching transition wins
        }
      }
    }
    // Literal gates: inputs are state bits then guard bits.
    const auto input_bit = [&](int i) {
      return i < state_bits_ ? state_q_[static_cast<std::size_t>(i)]
                             : guard_bits[static_cast<std::size_t>(i - state_bits_)];
    };
    for (int t = 0; t < nt; ++t) {
      const auto cover = minimize(on[static_cast<std::size_t>(t)], dc, nin);
      std::int32_t sel;
      if (cover.empty()) {
        sel = wb_.zero();
      } else {
        sel = -1;
        for (const auto& cube : cover) {
          std::int32_t term = -1;
          for (int i = 0; i < nin; ++i) {
            if (!(cube.care & (1u << i))) continue;
            std::int32_t lit = input_bit(i);
            if (!(cube.value & (1u << i)))
              lit = wb_.netlist().add_gate(GateType::kNot, lit);
            term = (term < 0) ? lit : wb_.netlist().add_gate(GateType::kAnd, term, lit);
          }
          if (term < 0) term = wb_.one();  // universal cube
          sel = (sel < 0) ? term : wb_.netlist().add_gate(GateType::kOr, sel, term);
        }
      }
      Mode m;
      m.sel = sel;
      for (auto* s : f.transitions()[static_cast<std::size_t>(t)].actions)
        m.sfgs.push_back(&m_.optimized(*s));
      m.to_state = f.transitions()[static_cast<std::size_t>(t)].to;
      modes_.push_back(m);
    }
  } else {
    // Priority chain: sel_t = state_is(from) & guard & ~(earlier taken).
    std::vector<std::int32_t> taken_so_far(static_cast<std::size_t>(ns), -1);
    for (int t = 0; t < nt; ++t) {
      const auto& tr = f.transitions()[static_cast<std::size_t>(t)];
      std::int32_t sel = state_is(tr.from);
      const int g = guard_of_transition[static_cast<std::size_t>(t)];
      if (g >= 0)
        sel = wb_.netlist().add_gate(GateType::kAnd, sel, guard_bits[static_cast<std::size_t>(g)]);
      std::int32_t& prior = taken_so_far[static_cast<std::size_t>(tr.from)];
      if (prior >= 0) {
        sel = wb_.netlist().add_gate(
            GateType::kAnd, sel, wb_.netlist().add_gate(GateType::kNot, prior));
      }
      prior = (prior < 0) ? sel : wb_.netlist().add_gate(GateType::kOr, prior, sel);
      Mode m;
      m.sel = sel;
      for (auto* s : tr.actions) m.sfgs.push_back(&m_.optimized(*s));
      m.to_state = tr.to;
      modes_.push_back(m);
    }
  }

  // Next-state logic: mux chain, hold by default.
  for (int b = 0; b < state_bits_; ++b) {
    std::int32_t next = state_q_[static_cast<std::size_t>(b)];
    for (const auto& m : modes_) {
      const std::int32_t target =
          ((state_code_[static_cast<std::size_t>(m.to_state)] >> b) & 1) ? wb_.one() : wb_.zero();
      next = wb_.bit_mux(m.sel, target, next);
    }
    wb_.netlist().set_dff_input(state_q_[static_cast<std::size_t>(b)], next);
  }
}

void CompSynth::build_outputs_and_regs() {
  // Output ports: mux chain over producing modes, zero otherwise.
  for (const auto& port : m_.out_ports) {
    const Format& of = m_.out_fmt.at(port);
    Bus out = wb_.constant(0.0, of);
    for (std::size_t mi = 0; mi < modes_.size(); ++mi) {
      for (auto* s : modes_[mi].sfgs) {
        for (const auto& o : s->outputs()) {
          if (o.port != port) continue;
          const Bus v = value_of(static_cast<int>(mi), o.expr);
          out = wb_.mux(modes_[mi].sel, wb_.align(v, of), out, of);
        }
      }
    }
    if (captured_ != nullptr)
      (*captured_)[port] = out;
    else
      wb_.output(hdl::sanitize(port), out);
  }

  // Register next-values: quantize into the register format, hold default.
  for (const auto& rn : m_.regs) {
    const Bus q = leaf_bus(rn);
    Bus next = q;
    for (std::size_t mi = 0; mi < modes_.size(); ++mi) {
      for (auto* s : modes_[mi].sfgs) {
        for (const auto& a : s->reg_assigns()) {
          if (a.reg != rn) continue;
          const Bus v = value_of(static_cast<int>(mi), a.expr);
          const Bus qv = wb_.quantize(v, q.fmt);
          next = wb_.mux(modes_[mi].sel, qv, next, q.fmt);
        }
      }
    }
    wb_.set_next(q, next);
  }
}

SynthReport CompSynth::run() {
  SynthReport rep;
  const auto gates_before = wb_.netlist().num_gates();

  build_modes_and_selects();

  // Discover shareable instances per mode, in topological order (also done
  // without sharing, for the word-operator count in the report).
  for (std::size_t mi = 0; mi < modes_.size(); ++mi) {
    std::unordered_map<const Node*, bool> seen;
    for (auto* s : modes_[mi].sfgs) {
      for (const auto& o : s->outputs()) discover(static_cast<int>(mi), o.expr, seen);
      for (const auto& a : s->reg_assigns()) discover(static_cast<int>(mi), a.expr, seen);
    }
  }
  rep.word_ops = static_cast<int>(instances_.size());
  if (!opt_.share_operators) {
    instances_.clear();
    inst_of_.clear();
  }

  if (opt_.share_operators) {
    inst_deps_.resize(instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      std::unordered_map<const Node*, bool> seen;
      const Instance& in = instances_[i];
      for (const auto& a : in.node->args)
        collect_instance_deps(static_cast<int>(i), a, seen);
    }
    bind_units();
  }

  build_outputs_and_regs();

  rep.shared_units = opt_.share_operators ? static_cast<int>(units_.size()) : rep.word_ops;
  rep.gates = wb_.netlist().num_gates() - gates_before;
  if (provided_ == nullptr && captured_ == nullptr) {
    // Standalone synthesis owns the netlist; linked mode leaves the global
    // metrics to the system linker (placeholders may still be open here).
    rep.dffs = wb_.netlist().num_dff();
    rep.area = wb_.netlist().area();
    rep.depth = wb_.netlist().depth();
  }
  return rep;
}

}  // namespace

SynthReport synthesize_component(sched::Component& comp, netlist::Netlist& nl,
                                 const SynthOptions& opt) {
  return CompSynth(hdl::build_component_model(comp), nl, opt).run();
}

SynthReport synthesize_component_linked(sched::Component& comp, netlist::Netlist& nl,
                                        const SynthOptions& opt,
                                        const std::map<std::string, Bus>& provided,
                                        std::map<std::string, Bus>& outputs) {
  return CompSynth(hdl::build_component_model(comp), nl, opt, &provided, &outputs).run();
}

}  // namespace asicpp::synth
