// Gate-level post-optimization.
//
// "The combined netlists of datapath and controller are also post-
// optimized by Synopsys DC to perform gate-level netlist optimizations"
// (section 6). Our pass does the standard structural cleanups: constant
// propagation, identity/annihilator simplification, double-inverter
// removal, structural hashing (CSE), and dead-gate sweeping, iterated to a
// fixpoint. The result is a fresh netlist with identical I/O behaviour.
#pragma once

#include "netlist/netlist.h"

namespace asicpp::synth {

struct OptStats {
  int simplified = 0;   ///< gates replaced by constants/operands/inverses
  int deduplicated = 0; ///< structurally identical gates merged
  int dead_removed = 0; ///< gates unreachable from outputs/state swept
  int rounds = 0;
};

netlist::Netlist optimize(const netlist::Netlist& in, OptStats* stats = nullptr);

}  // namespace asicpp::synth
