#include "synth/wordnet.h"

#include <cmath>
#include <stdexcept>

namespace asicpp::synth {

using netlist::GateType;

namespace {

long long mantissa(double v, const fixpt::Format& f) {
  const double q = fixpt::quantize(v, f);
  return static_cast<long long>(std::llround(std::ldexp(q, f.frac_bits())));
}

}  // namespace

std::int32_t WordBuilder::zero() {
  if (zero_ < 0) zero_ = nl_->add_gate(GateType::kConst0);
  return zero_;
}

std::int32_t WordBuilder::one() {
  if (one_ < 0) one_ = nl_->add_gate(GateType::kConst1);
  return one_;
}

Bus WordBuilder::input(const std::string& name, const fixpt::Format& f) {
  Bus b;
  b.fmt = f;
  for (int i = 0; i < f.wl; ++i)
    b.bits.push_back(nl_->add_input(name + "[" + std::to_string(i) + "]"));
  return b;
}

Bus WordBuilder::constant(double v, const fixpt::Format& f) {
  if (f.wl > 62) throw std::invalid_argument("WordBuilder: constant wider than 62 bits");
  const long long m = mantissa(v, f);
  Bus b;
  b.fmt = f;
  for (int i = 0; i < f.wl; ++i) b.bits.push_back(((m >> i) & 1) ? one() : zero());
  return b;
}

void WordBuilder::output(const std::string& name, const Bus& b) {
  for (int i = 0; i < b.width(); ++i)
    nl_->mark_output(name + "[" + std::to_string(i) + "]",
                     b.bits[static_cast<std::size_t>(i)]);
}

Bus WordBuilder::reg(const fixpt::Format& f, double init) {
  if (f.wl > 62) throw std::invalid_argument("WordBuilder: register wider than 62 bits");
  const long long m = mantissa(init, f);
  Bus b;
  b.fmt = f;
  for (int i = 0; i < f.wl; ++i) b.bits.push_back(nl_->add_dff(((m >> i) & 1) != 0));
  return b;
}

void WordBuilder::set_next(const Bus& q, const Bus& d) {
  if (q.width() != d.width())
    throw std::invalid_argument("WordBuilder::set_next: width mismatch");
  for (int i = 0; i < q.width(); ++i)
    nl_->set_dff_input(q.bits[static_cast<std::size_t>(i)],
                       d.bits[static_cast<std::size_t>(i)]);
}

std::int32_t WordBuilder::sign_of(const Bus& b) {
  return b.fmt.is_signed ? b.bits.back() : zero();
}

Bus WordBuilder::align(const Bus& b, const fixpt::Format& to) {
  const int d = to.frac_bits() - b.fmt.frac_bits();
  Bus r;
  r.fmt = to;
  const std::int32_t s = sign_of(b);
  for (int i = 0; i < to.wl; ++i) {
    const int src = i - d;  // mantissa bit index in b
    if (src < 0)
      r.bits.push_back(zero());
    else if (src < b.width())
      r.bits.push_back(b.bits[static_cast<std::size_t>(src)]);
    else
      r.bits.push_back(s);
  }
  return r;
}

std::vector<std::int32_t> WordBuilder::ripple_add(const std::vector<std::int32_t>& a,
                                                  const std::vector<std::int32_t>& b,
                                                  std::int32_t cin) {
  if (a.size() != b.size()) throw std::invalid_argument("ripple_add: width mismatch");
  std::vector<std::int32_t> sum;
  std::int32_t carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto axb = nl_->add_gate(GateType::kXor, a[i], b[i]);
    sum.push_back(nl_->add_gate(GateType::kXor, axb, carry));
    const auto g = nl_->add_gate(GateType::kAnd, a[i], b[i]);
    const auto p = nl_->add_gate(GateType::kAnd, axb, carry);
    carry = nl_->add_gate(GateType::kOr, g, p);
  }
  return sum;
}

Bus WordBuilder::add(const Bus& a, const Bus& b, const fixpt::Format& to) {
  const Bus wa = align(a, to);
  const Bus wb = align(b, to);
  Bus r;
  r.fmt = to;
  r.bits = ripple_add(wa.bits, wb.bits, zero());
  return r;
}

Bus WordBuilder::sub(const Bus& a, const Bus& b, const fixpt::Format& to) {
  const Bus wa = align(a, to);
  const Bus wb = align(b, to);
  std::vector<std::int32_t> nb;
  for (const auto bit : wb.bits) nb.push_back(nl_->add_gate(GateType::kNot, bit));
  Bus r;
  r.fmt = to;
  r.bits = ripple_add(wa.bits, nb, one());
  return r;
}

Bus WordBuilder::neg(const Bus& a, const fixpt::Format& to) {
  const Bus wa = align(a, to);
  std::vector<std::int32_t> na;
  for (const auto bit : wa.bits) na.push_back(nl_->add_gate(GateType::kNot, bit));
  std::vector<std::int32_t> zeros(wa.bits.size(), zero());
  Bus r;
  r.fmt = to;
  r.bits = ripple_add(zeros, na, one());
  return r;
}

Bus WordBuilder::mul(const Bus& a, const Bus& b, const fixpt::Format& to) {
  // Product mantissa at frac_a + frac_b fractional bits; `to` holds the
  // full product by inference, so modulo-2^wl arithmetic is exact.
  const int w = to.wl;
  // Sign-extend both operands to w bits (as raw mantissas).
  auto extend_raw = [&](const Bus& x) {
    std::vector<std::int32_t> bits;
    const std::int32_t s = sign_of(x);
    for (int i = 0; i < w; ++i)
      bits.push_back(i < x.width() ? x.bits[static_cast<std::size_t>(i)] : s);
    return bits;
  };
  const auto xa = extend_raw(a);
  const auto xb = extend_raw(b);

  std::vector<std::int32_t> acc(static_cast<std::size_t>(w), zero());
  for (int j = 0; j < w; ++j) {
    // partial = (xa AND xb[j]) << j, truncated to w bits
    std::vector<std::int32_t> part(static_cast<std::size_t>(w), zero());
    for (int i = 0; i + j < w; ++i)
      part[static_cast<std::size_t>(i + j)] = nl_->add_gate(
          GateType::kAnd, xa[static_cast<std::size_t>(i)], xb[static_cast<std::size_t>(j)]);
    acc = ripple_add(acc, part, zero());
  }
  Bus prod;
  prod.fmt = to;
  prod.fmt.iwl = to.wl - (a.fmt.frac_bits() + b.fmt.frac_bits()) - (to.is_signed ? 1 : 0);
  prod.bits = acc;
  // Align binary point from frac_a+frac_b to to.frac (usually equal).
  return align(prod, to);
}

Bus WordBuilder::logic(GateType g2, const Bus& a, const Bus& b, const fixpt::Format& to) {
  const Bus wa = align(a, to);
  const Bus wb = align(b, to);
  Bus r;
  r.fmt = to;
  for (int i = 0; i < to.wl; ++i)
    r.bits.push_back(nl_->add_gate(g2, wa.bits[static_cast<std::size_t>(i)],
                                   wb.bits[static_cast<std::size_t>(i)]));
  return r;
}

std::int32_t WordBuilder::nonzero(const Bus& a) {
  std::int32_t acc = a.bits[0];
  for (int i = 1; i < a.width(); ++i)
    acc = nl_->add_gate(GateType::kOr, acc, a.bits[static_cast<std::size_t>(i)]);
  return acc;
}

namespace {
fixpt::Format compare_fmt(const fixpt::Format& a, const fixpt::Format& b) {
  fixpt::Format c;
  c.is_signed = true;
  const int frac = std::max(a.frac_bits(), b.frac_bits());
  c.iwl = std::max(a.iwl, b.iwl) + 1;
  c.wl = c.iwl + frac + 1;
  return c;
}
}  // namespace

std::int32_t WordBuilder::equal(const Bus& a, const Bus& b) {
  const auto cf = compare_fmt(a.fmt, b.fmt);
  const Bus wa = align(a, cf);
  const Bus wb = align(b, cf);
  std::int32_t acc = nl_->add_gate(GateType::kXnor, wa.bits[0], wb.bits[0]);
  for (int i = 1; i < cf.wl; ++i)
    acc = nl_->add_gate(GateType::kAnd, acc,
                        nl_->add_gate(GateType::kXnor, wa.bits[static_cast<std::size_t>(i)],
                                      wb.bits[static_cast<std::size_t>(i)]));
  return acc;
}

std::int32_t WordBuilder::less(const Bus& a, const Bus& b) {
  // Sign of (a - b) in a width where overflow is impossible.
  const auto cf = compare_fmt(a.fmt, b.fmt);
  const Bus d = sub(a, b, cf);
  return d.bits.back();
}

std::int32_t WordBuilder::bit_mux(std::int32_t sel, std::int32_t t, std::int32_t f) {
  return nl_->add_gate(GateType::kMux, sel, t, f);
}

Bus WordBuilder::mux(std::int32_t sel, const Bus& a, const Bus& b, const fixpt::Format& to) {
  const Bus wa = align(a, to);
  const Bus wb = align(b, to);
  Bus r;
  r.fmt = to;
  for (int i = 0; i < to.wl; ++i)
    r.bits.push_back(bit_mux(sel, wa.bits[static_cast<std::size_t>(i)],
                             wb.bits[static_cast<std::size_t>(i)]));
  return r;
}

Bus WordBuilder::quantize(const Bus& b, const fixpt::Format& to) {
  const int drop = b.fmt.frac_bits() - to.frac_bits();
  const std::int32_t s = sign_of(b);

  // --- Step 1: move the binary point; result mantissa has to.frac_bits().
  std::vector<std::int32_t> m;  // signed two's complement, variable width
  bool m_signed = b.fmt.is_signed;
  if (drop <= 0) {
    for (int i = 0; i < -drop; ++i) m.push_back(zero());
    for (const auto bit : b.bits) m.push_back(bit);
  } else if (to.quant == fixpt::Quant::kTruncate) {
    // floor: arithmetic shift right by `drop`.
    for (int i = drop; i < b.width(); ++i) m.push_back(b.bits[static_cast<std::size_t>(i)]);
    if (m.empty()) m.push_back(s);
  } else {
    // round half away from zero: ashr(mant + (h - 1) + !sign, drop),
    // h = 2^(drop-1).
    const int w1 = b.width() + 1;
    std::vector<std::int32_t> wide;
    for (const auto bit : b.bits) wide.push_back(bit);
    wide.push_back(s);  // sign extend one bit
    std::vector<std::int32_t> hm1(static_cast<std::size_t>(w1), zero());
    const long long h_minus_1 = (1LL << (drop - 1)) - 1;
    for (int i = 0; i < w1 && i < 62; ++i)
      if ((h_minus_1 >> i) & 1) hm1[static_cast<std::size_t>(i)] = one();
    const auto not_sign = nl_->add_gate(GateType::kNot, s);
    const auto sum = ripple_add(wide, hm1, not_sign);
    for (int i = drop; i < w1; ++i) m.push_back(sum[static_cast<std::size_t>(i)]);
    if (m.empty()) m.push_back(sum.back());
    m_signed = true;
  }
  const std::int32_t ms = m_signed ? m.back() : zero();

  // --- Step 2: fit into to.wl bits.
  Bus r;
  r.fmt = to;
  const int msize = static_cast<int>(m.size());
  const bool fits_always =
      to.is_signed ? (m_signed ? msize <= to.wl : msize < to.wl)
                   : (!m_signed && msize <= to.wl);
  if (to.ovf == fixpt::Overflow::kWrap || fits_always) {
    // Wrap = take the low wl bits (extending narrow mantissas with sign).
    for (int i = 0; i < to.wl; ++i)
      r.bits.push_back(i < msize ? m[static_cast<std::size_t>(i)] : ms);
    return r;
  }

  // Saturating fit: overflow when the high bits disagree with the value's
  // representable range in `to`.
  // For a signed target: all bits m[to.wl-1 .. top] must equal each other.
  // For an unsigned target: value must be >= 0 and bits m[to.wl .. top] zero.
  std::int32_t ovf = zero();
  const int top = static_cast<int>(m.size());
  if (to.is_signed) {
    const std::int32_t ref = (to.wl - 1 < top) ? m[static_cast<std::size_t>(to.wl - 1)] : ms;
    for (int i = to.wl; i <= top; ++i) {
      const std::int32_t bit = (i < top) ? m[static_cast<std::size_t>(i)] : ms;
      ovf = nl_->add_gate(GateType::kOr, ovf, nl_->add_gate(GateType::kXor, bit, ref));
    }
  } else {
    ovf = ms;  // negative
    for (int i = to.wl; i < top; ++i)
      ovf = nl_->add_gate(GateType::kOr, ovf, m[static_cast<std::size_t>(i)]);
  }

  const Bus maxb = constant(to.max_value(), to);
  const Bus minb = constant(to.min_value(), to);
  r.bits.clear();
  for (int i = 0; i < to.wl; ++i) {
    const std::int32_t plain =
        (i < top) ? m[static_cast<std::size_t>(i)] : ms;
    const std::int32_t satv =
        bit_mux(ms, minb.bits[static_cast<std::size_t>(i)], maxb.bits[static_cast<std::size_t>(i)]);
    r.bits.push_back(bit_mux(ovf, satv, plain));
  }
  return r;
}

}  // namespace asicpp::synth
