#include "synth/techmap.h"

#include <stdexcept>
#include <vector>

namespace asicpp::synth {

using netlist::Gate;
using netlist::GateType;
using netlist::Netlist;

Netlist tech_map(const Netlist& in, TechMapStats* stats) {
  Netlist out;
  std::vector<std::int32_t> remap(static_cast<std::size_t>(in.num_gates()), -1);

  // Interface and state first (DFF ids must exist for feedback).
  for (const auto& [name, id] : in.inputs())
    remap[static_cast<std::size_t>(id)] = out.add_input(name);
  for (std::int32_t id = 0; id < in.num_gates(); ++id) {
    if (in.gate(id).type == GateType::kDff)
      remap[static_cast<std::size_t>(id)] = out.add_dff(in.gate(id).init);
  }

  const auto inv = [&](std::int32_t x) { return out.add_gate(GateType::kNot, x); };
  const auto nand2 = [&](std::int32_t a, std::int32_t b) {
    return out.add_gate(GateType::kNand, a, b);
  };
  const auto nor2 = [&](std::int32_t a, std::int32_t b) {
    return out.add_gate(GateType::kNor, a, b);
  };

  // Worklist over combinational gates (DFF D-pins may point forward).
  std::vector<std::int32_t> pending;
  for (std::int32_t id = 0; id < in.num_gates(); ++id) {
    const GateType t = in.gate(id).type;
    if (t == GateType::kInput || t == GateType::kDff) continue;
    pending.push_back(id);
  }
  while (!pending.empty()) {
    std::vector<std::int32_t> next;
    bool progress = false;
    for (const std::int32_t id : pending) {
      const Gate& g = in.gate(id);
      const int ar = netlist::gate_arity(g.type);
      bool ready = true;
      for (int i = 0; i < ar; ++i) {
        if (g.in[i] < 0)
          throw std::invalid_argument("tech_map: unconnected fanin");
        ready = ready && remap[static_cast<std::size_t>(g.in[i])] >= 0;
      }
      if (!ready) {
        next.push_back(id);
        continue;
      }
      const auto a = ar > 0 ? remap[static_cast<std::size_t>(g.in[0])] : -1;
      const auto b = ar > 1 ? remap[static_cast<std::size_t>(g.in[1])] : -1;
      const auto c = ar > 2 ? remap[static_cast<std::size_t>(g.in[2])] : -1;
      std::int32_t m = -1;
      switch (g.type) {
        case GateType::kConst0: m = out.add_gate(GateType::kConst0); break;
        case GateType::kConst1: m = out.add_gate(GateType::kConst1); break;
        case GateType::kBuf: m = a; break;  // identity: alias through
        case GateType::kNot: m = inv(a); break;
        case GateType::kNand: m = nand2(a, b); break;
        case GateType::kNor: m = nor2(a, b); break;
        case GateType::kAnd: m = inv(nand2(a, b)); break;
        case GateType::kOr: m = inv(nor2(a, b)); break;
        case GateType::kXor: {
          const auto n1 = nand2(a, b);
          m = nand2(nand2(a, n1), nand2(b, n1));
          break;
        }
        case GateType::kXnor: {
          const auto n1 = nand2(a, b);
          m = inv(nand2(nand2(a, n1), nand2(b, n1)));
          break;
        }
        case GateType::kMux: {
          // sel ? a(b-input) : c : NAND(NAND(s, t), NAND(!s, f))
          m = nand2(nand2(a, b), nand2(inv(a), c));
          break;
        }
        case GateType::kInput:
        case GateType::kDff:
          break;
      }
      remap[static_cast<std::size_t>(id)] = m;
      progress = true;
    }
    if (!progress) throw std::logic_error("tech_map: combinational loop");
    pending.swap(next);
  }

  for (std::int32_t id = 0; id < in.num_gates(); ++id) {
    const Gate& g = in.gate(id);
    if (g.type == GateType::kDff && g.in[0] >= 0)
      out.set_dff_input(remap[static_cast<std::size_t>(id)],
                        remap[static_cast<std::size_t>(g.in[0])]);
  }
  for (const auto& [name, id] : in.outputs())
    out.mark_output(name, remap[static_cast<std::size_t>(id)]);

  if (stats != nullptr) {
    stats->cells = out.num_comb() + out.num_dff();
    stats->area = out.area();
    stats->depth = out.depth();
  }
  return out;
}

}  // namespace asicpp::synth
