#include "synth/system.h"

#include <stdexcept>

#include "diag/diag.h"
#include "hdl/model.h"
#include "sched/fsmcomp.h"
#include "sched/untimed.h"

namespace asicpp::synth {

using fixpt::Format;
using netlist::GateType;

namespace {

/// Elaboration failure during system synthesis: a structured ElabError
/// (which still derives std::invalid_argument for legacy catch sites).
[[noreturn]] void syn_fail(const std::string& code, const std::string& component,
                           const std::string& message) {
  diag::Diagnostic d;
  d.severity = diag::Severity::kError;
  d.code = code;
  d.component = component;
  d.message = message;
  throw ElabError(std::move(d));
}

Bus placeholder_bus(netlist::Netlist& nl, const Format& f) {
  Bus b;
  b.fmt = f;
  for (int i = 0; i < f.wl; ++i) b.bits.push_back(nl.add_placeholder());
  return b;
}

}  // namespace

SystemSynthReport synthesize_system(const sched::CycleScheduler& sys,
                                    netlist::Netlist& nl, const SystemSynthSpec& spec) {
  SystemSynthReport rep;
  WordBuilder wb(nl);

  // Classify components and learn each net's producing format.
  struct TimedInfo {
    sched::Component* comp;
    hdl::CompModel model;
  };
  std::vector<TimedInfo> timed;
  std::vector<sched::UntimedComponent*> untimed;
  std::map<const sched::Net*, Format> producer_fmt;
  std::map<const sched::Net*, std::string> producer_name;

  const auto claim = [&](const sched::Net* net, const Format& f, const std::string& who) {
    if (producer_name.count(net))
      syn_fail("SYN-001", "net '" + net->name() + "'",
               "synthesize_system: net '" + net->name() + "' driven by both '" +
                   producer_name.at(net) + "' and '" + who + "'");
    producer_fmt.emplace(net, f);
    producer_name.emplace(net, who);
  };

  for (sched::Component* c : sys.components()) {
    if (auto* u = dynamic_cast<sched::UntimedComponent*>(c)) {
      untimed.push_back(u);
      for (const sched::Net* n : u->output_nets()) {
        const auto it = spec.net_fmt.find(n->name());
        if (it == spec.net_fmt.end())
          syn_fail("SYN-002", "untimed '" + u->name() + "'",
                   "synthesize_system: net '" + n->name() +
                       "' (untimed output) needs a net_fmt entry");
        claim(n, it->second, c->name());
      }
      continue;
    }
    timed.push_back(TimedInfo{c, hdl::build_component_model(*c)});
    const auto& m = timed.back().model;
    for (const auto& [port, net] : m.out_binds) claim(net, m.out_fmt.at(port), c->name());
  }

  // Net buses: pins become primary inputs, produced nets placeholders.
  std::map<const sched::Net*, Bus> net_bus;
  for (const sched::Net* n : sys.all_nets()) {
    if (n->driven()) {
      if (producer_name.count(n))
        syn_fail("SYN-003", "net '" + n->name() + "'",
                 "synthesize_system: net '" + n->name() +
                     "' both produced and externally driven");
      const auto it = spec.net_fmt.find(n->name());
      if (it == spec.net_fmt.end())
        syn_fail("SYN-002", "net '" + n->name() + "'",
                 "synthesize_system: pin net '" + n->name() +
                     "' needs a net_fmt entry");
      net_bus.emplace(n, wb.input("net_" + hdl::sanitize(n->name()), it->second));
    } else if (producer_fmt.count(n)) {
      net_bus.emplace(n, placeholder_bus(nl, producer_fmt.at(n)));
    }
  }

  // Timed components.
  std::map<const sched::Net*, Bus> produced;
  for (auto& t : timed) {
    std::map<std::string, Bus> provided;
    for (const auto& [node, net] : t.model.in_binds) {
      const auto it = net_bus.find(net);
      if (it == net_bus.end())
        syn_fail("SYN-004", "component '" + t.comp->name() + "'",
                 "synthesize_system: input net '" + net->name() + "' of '" +
                     t.comp->name() + "' has no driver");
      provided.emplace(node->name, it->second);
    }
    if (t.model.kind == hdl::CompModel::Kind::kDispatch) {
      auto* d = dynamic_cast<sched::DispatchComponent*>(t.comp);
      const auto it = net_bus.find(&d->instruction_net());
      if (it == net_bus.end())
        syn_fail("SYN-004", "component '" + t.comp->name() + "'",
                 "synthesize_system: instruction net of '" + t.comp->name() +
                     "' has no driver");
      provided.emplace("instr", it->second);
    }
    std::map<std::string, Bus> outputs;
    rep.components[t.comp->name()] =
        synthesize_component_linked(*t.comp, nl, spec.options, provided, outputs);
    for (const auto& [port, net] : t.model.out_binds) {
      const auto ob = outputs.find(port);
      if (ob != outputs.end()) produced.emplace(net, ob->second);
    }
  }

  // Untimed components through their structural builders.
  for (auto* u : untimed) {
    const auto bit = spec.untimed.find(u->name());
    if (bit == spec.untimed.end())
      syn_fail("SYN-005", "untimed '" + u->name() + "'",
               "synthesize_system: untimed component '" + u->name() +
                   "' needs an UntimedBuilder");
    std::vector<Bus> ins;
    for (const sched::Net* n : u->input_nets()) {
      const auto it = net_bus.find(n);
      if (it == net_bus.end())
        syn_fail("SYN-004", "untimed '" + u->name() + "'",
                 "synthesize_system: input net '" + n->name() + "' of '" +
                     u->name() + "' has no driver");
      ins.push_back(it->second);
    }
    const auto outs = bit->second(wb, ins);
    if (outs.size() != u->output_nets().size())
      syn_fail("SYN-006", "untimed '" + u->name() + "'",
               "synthesize_system: builder arity mismatch for '" + u->name() + "'");
    for (std::size_t i = 0; i < outs.size(); ++i)
      produced.emplace(u->output_nets()[i], outs[i]);
  }

  // Close the placeholders.
  for (const auto& [net, bus] : net_bus) {
    if (net->driven()) continue;  // primary input
    const auto it = produced.find(net);
    if (it == produced.end())
      syn_fail("SYN-007", "net '" + net->name() + "'",
               "synthesize_system: net '" + net->name() + "' was never produced");
    const Bus src = wb.align(it->second, bus.fmt);
    for (int i = 0; i < bus.width(); ++i)
      nl.connect_placeholder(bus.bits[static_cast<std::size_t>(i)],
                             src.bits[static_cast<std::size_t>(i)]);
  }

  // Observed nets.
  for (const auto& name : spec.observe) {
    const sched::Net* found = nullptr;
    for (const auto& [net, _] : net_bus)
      if (net->name() == name) found = net;
    if (found == nullptr)
      syn_fail("SYN-008", "net '" + name + "'",
               "synthesize_system: observe net '" + name + "' does not exist");
    wb.output("net_" + hdl::sanitize(name), net_bus.at(found));
  }

  if (spec.optimize) {
    nl = optimize(nl);
  }
  rep.gates = nl.num_comb();
  rep.dffs = nl.num_dff();
  rep.area = nl.area();
  rep.depth = nl.depth();
  return rep;
}

UntimedBuilder make_ram_builder(int addr_bits, const Format& data_fmt) {
  return [addr_bits, data_fmt](WordBuilder& wb, const std::vector<Bus>& in) {
    if (in.size() != 3)
      syn_fail("SYN-006", "ram builder", "ram builder: expects (we, addr, wdata)");
    const std::int32_t we = wb.nonzero(in[0]);
    const Bus& addr = in[1];
    const Bus wdata = wb.quantize(in[2], data_fmt);
    netlist::Netlist& nl = wb.netlist();

    const int words = 1 << addr_bits;
    // Address decode (use the low addr_bits of the address bus).
    std::vector<std::int32_t> abit;
    for (int b = 0; b < addr_bits; ++b)
      abit.push_back(b < addr.width() ? addr.bits[static_cast<std::size_t>(b)] : wb.zero());

    std::vector<Bus> word(static_cast<std::size_t>(words));
    Bus rdata = wb.constant(0.0, data_fmt);
    for (int w = 0; w < words; ++w) {
      // One-hot select for word w.
      std::int32_t sel = -1;
      for (int b = 0; b < addr_bits; ++b) {
        std::int32_t bit = abit[static_cast<std::size_t>(b)];
        if (((w >> b) & 1) == 0) bit = nl.add_gate(GateType::kNot, bit);
        sel = (sel < 0) ? bit : nl.add_gate(GateType::kAnd, sel, bit);
      }
      if (sel < 0) sel = wb.one();
      Bus& q = word[static_cast<std::size_t>(w)];
      q = wb.reg(data_fmt, 0.0);
      const std::int32_t wr = nl.add_gate(GateType::kAnd, we, sel);
      wb.set_next(q, wb.mux(wr, wdata, q, data_fmt));
      // Read mux (read-before-write: reads the registered value).
      rdata = wb.mux(sel, q, rdata, data_fmt);
    }
    return std::vector<Bus>{rdata};
  };
}

}  // namespace asicpp::synth
