// Component synthesis: SFGs + control to gate-level netlists.
//
// The Cathedral-3 stand-in (section 6): each timed component becomes a
// synchronous netlist — registers and state bits as DFFs, every SFG
// expression bit-blasted through the word builder, a selection network
// (FSM priority logic or instruction decode) steering multiplexers on the
// outputs and register next-values.
//
// "These tools allow operator sharing at word level": with sharing
// enabled, add/sub/mul instances from mutually exclusive SFGs (different
// transitions of one FSM, different instructions of one datapath) are
// bound to shared physical units with select-controlled operand muxes; a
// dependency-cycle repair pass splits bindings that would create
// combinational loops.
#pragma once

#include <map>
#include <string>

#include "hdl/model.h"
#include "netlist/netlist.h"
#include "sched/component.h"
#include "synth/wordnet.h"

namespace asicpp::synth {

enum class StateEncoding { kBinary, kOneHot, kGray };

struct SynthOptions {
  bool share_operators = true;
  StateEncoding encoding = StateEncoding::kBinary;
  /// Controller next-state/select logic through Quine-McCluskey two-level
  /// minimization instead of the direct priority chain.
  bool qm_controller = true;
};

struct SynthReport {
  int word_ops = 0;        ///< shareable word operators before binding
  int shared_units = 0;    ///< physical units after binding
  std::int32_t gates = 0;
  std::int32_t dffs = 0;
  double area = 0.0;
  int depth = 0;
};

/// Synthesize `comp` into `nl`. Primary inputs: the component's declared
/// input signals as buses "name[i]" (mantissa bits of the declared
/// format), plus "instr[i]" (16 bits) for dispatch components. Primary
/// outputs: the SFG output ports as buses in the component's merged output
/// formats. Registers/state become DFFs clocked by the implicit clock.
SynthReport synthesize_component(sched::Component& comp, netlist::Netlist& nl,
                                 const SynthOptions& opt = {});

/// System-linker entry point: input signals named in `provided` use the
/// given buses (quantized into the declared input format, like the
/// interpreted token load) instead of becoming primary inputs; for
/// dispatch components the instruction bus is provided under the key
/// "instr". Output-port buses are stored into `outputs` instead of being
/// marked as netlist primary outputs.
SynthReport synthesize_component_linked(sched::Component& comp, netlist::Netlist& nl,
                                        const SynthOptions& opt,
                                        const std::map<std::string, Bus>& provided,
                                        std::map<std::string, Bus>& outputs);

}  // namespace asicpp::synth
