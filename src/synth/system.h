// Whole-system synthesis and linkage (Fig 8, "system linkage").
//
// Every timed component of a cycle-scheduler system is synthesized into a
// single netlist; interconnect nets become internal buses (through
// forward-reference placeholders, so component-level feedback loops link
// cleanly as long as the bit-level logic is acyclic — which the token-
// production rule guarantees). Untimed components need a structural image
// supplied by the caller; `make_ram_builder` provides the standard
// synchronous RAM used by the DECT design's storage cells.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sched/cyclesched.h"
#include "synth/dpsynth.h"
#include "synth/optimize.h"
#include "synth/wordnet.h"

namespace asicpp::synth {

/// Structural image of one untimed component: receives the input-net buses
/// in binding order and returns one bus per output net.
using UntimedBuilder =
    std::function<std::vector<Bus>(WordBuilder&, const std::vector<Bus>&)>;

struct SystemSynthReport {
  std::map<std::string, SynthReport> components;
  std::int32_t gates = 0;
  std::int32_t dffs = 0;
  double area = 0.0;
  int depth = 0;
};

struct SystemSynthSpec {
  SynthOptions options;
  /// Builders for untimed components, keyed by component name.
  std::map<std::string, UntimedBuilder> untimed;
  /// Formats of externally driven (pin) nets and untimed-component output
  /// nets — anything whose format cannot be derived from a timed producer.
  std::map<std::string, fixpt::Format> net_fmt;
  /// Nets to expose as primary outputs "net_<name>[i]".
  std::vector<std::string> observe;
  /// Run the gate-level optimizer on the linked result.
  bool optimize = true;
};

/// Synthesize all components of `sys` into one netlist. Externally driven
/// nets become primary inputs "net_<name>[i]".
SystemSynthReport synthesize_system(const sched::CycleScheduler& sys,
                                    netlist::Netlist& nl, const SystemSynthSpec& spec);

/// Standard synchronous RAM image matching the DECT untimed RAM protocol:
/// inputs (we, addr, wdata), output (rdata); read-before-write semantics.
UntimedBuilder make_ram_builder(int addr_bits, const fixpt::Format& data_fmt);

}  // namespace asicpp::synth
