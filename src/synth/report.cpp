#include "synth/report.h"

#include <map>
#include <sstream>

#include "flow/liberty.h"
#include "netlist/timing.h"

namespace asicpp::synth {

std::string format_report(const netlist::Netlist& nl, const std::string& design_name,
                          double clock_period) {
  std::map<netlist::GateType, int> census;
  for (const auto& g : nl.gates()) ++census[g.type];

  // One source of truth for area and delay: the asicpp_sc_hd Liberty
  // library, the same characterization the flow backend's STA uses. The
  // historical "equivalent gates" number stays as a parenthetical.
  const flow::LibertyLibrary& lib = flow::default_library();
  diag::DiagEngine de;
  const netlist::DelayModel model = flow::delay_model(lib, de);
  const double area_um2 = flow::liberty_area(nl, lib);

  std::ostringstream os;
  os << "==== synthesis report: " << design_name << " ====\n";
  os << "cells:\n";
  for (const auto& [t, n] : census) {
    if (t == netlist::GateType::kInput) continue;
    os << "  " << netlist::gate_name(t) << ": " << n << "\n";
  }
  os << "primary inputs:  " << nl.inputs().size() << "\n";
  os << "primary outputs: " << nl.outputs().size() << "\n";
  os << "combinational:   " << nl.num_comb() << " gates\n";
  os << "sequential:      " << nl.num_dff() << " flip-flops\n";
  os << "area:            " << area_um2 << " um^2 (" << lib.name << "; "
     << nl.area() << " equivalent gates)\n";
  os << "logic depth:     " << nl.depth() << " levels\n";

  const auto timing = netlist::analyze_timing(nl, model);
  os << "critical path:   " << timing.critical_delay << " ns ("
     << timing.start_point << " -> " << timing.end_point << ", "
     << timing.critical_path.size() << " gates)\n";
  if (timing.critical_delay > 0.0)
    os << "fmax:            " << timing.fmax() * 1e3 << " MHz\n";
  if (clock_period > 0.0) {
    const double slack = timing.slack(clock_period);
    os << "slack @ " << clock_period << ":      " << slack
       << (slack < 0.0 ? "  (VIOLATED)" : "") << "\n";
  }
  return os.str();
}

}  // namespace asicpp::synth
