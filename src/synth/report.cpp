#include "synth/report.h"

#include <map>
#include <sstream>

#include "netlist/timing.h"

namespace asicpp::synth {

std::string format_report(const netlist::Netlist& nl, const std::string& design_name,
                          double clock_period) {
  std::map<netlist::GateType, int> census;
  for (const auto& g : nl.gates()) ++census[g.type];

  std::ostringstream os;
  os << "==== synthesis report: " << design_name << " ====\n";
  os << "cells:\n";
  for (const auto& [t, n] : census) {
    if (t == netlist::GateType::kInput) continue;
    os << "  " << netlist::gate_name(t) << ": " << n << "\n";
  }
  os << "primary inputs:  " << nl.inputs().size() << "\n";
  os << "primary outputs: " << nl.outputs().size() << "\n";
  os << "combinational:   " << nl.num_comb() << " gates\n";
  os << "sequential:      " << nl.num_dff() << " flip-flops\n";
  os << "area:            " << nl.area() << " equivalent gates\n";
  os << "logic depth:     " << nl.depth() << " levels\n";

  const auto timing = netlist::analyze_timing(nl);
  os << "critical path:   " << timing.critical_delay << " delay units ("
     << timing.start_point << " -> " << timing.end_point << ", "
     << timing.critical_path.size() << " gates)\n";
  if (clock_period > 0.0) {
    const double slack = timing.slack(clock_period);
    os << "slack @ " << clock_period << ":      " << slack
       << (slack < 0.0 ? "  (VIOLATED)" : "") << "\n";
  }
  return os.str();
}

}  // namespace asicpp::synth
