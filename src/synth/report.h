// Synthesis report formatting: the classic post-synthesis summary —
// cell census, area, sequential elements, logic depth, critical path and
// slack — the text block every flow prints after Fig 8's last box.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace asicpp::synth {

/// Human-readable synthesis summary for `nl`. `clock_period` (delay
/// units) adds a slack line; pass 0 to omit it.
std::string format_report(const netlist::Netlist& nl, const std::string& design_name,
                          double clock_period = 0.0);

}  // namespace asicpp::synth
