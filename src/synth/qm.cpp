#include "synth/qm.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace asicpp::synth {

int Cube::literals() const { return __builtin_popcount(care); }

std::string Cube::to_string(int nvars) const {
  std::string s;
  for (int i = nvars - 1; i >= 0; --i) {
    const std::uint32_t m = 1u << i;
    s += (care & m) ? ((value & m) ? '1' : '0') : '-';
  }
  return s;
}

std::vector<Cube> minimize(const std::vector<std::uint32_t>& on_set,
                           const std::vector<std::uint32_t>& dc_set, int nvars) {
  if (nvars < 0 || nvars > 20)
    throw std::invalid_argument("qm::minimize: nvars out of range");
  if (on_set.empty()) return {};

  const std::uint32_t full = (nvars == 32) ? ~0u : ((1u << nvars) - 1);

  // Level 0: all ON and DC minterms as fully specified cubes.
  std::set<std::pair<std::uint32_t, std::uint32_t>> current;  // (value, care)
  for (const auto m : on_set) current.insert({m & full, full});
  for (const auto m : dc_set) current.insert({m & full, full});

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> next;
    std::set<std::pair<std::uint32_t, std::uint32_t>> combined;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> v(current.begin(), current.end());
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (std::size_t j = i + 1; j < v.size(); ++j) {
        if (v[i].second != v[j].second) continue;  // same care set required
        const std::uint32_t diff = v[i].first ^ v[j].first;
        if (__builtin_popcount(diff) != 1) continue;
        next.insert({v[i].first & ~diff, v[i].second & ~diff});
        combined.insert(v[i]);
        combined.insert(v[j]);
      }
    }
    for (const auto& c : v) {
      if (!combined.count(c)) primes.push_back(Cube{c.first, c.second});
    }
    current.swap(next);
  }

  // Prime-implicant chart: cover the ON-set (don't-cares need no cover).
  std::vector<std::uint32_t> uncovered = on_set;
  std::sort(uncovered.begin(), uncovered.end());
  uncovered.erase(std::unique(uncovered.begin(), uncovered.end()), uncovered.end());

  std::vector<Cube> cover;
  std::vector<bool> used(primes.size(), false);

  // Essential primes first.
  bool changed = true;
  while (changed && !uncovered.empty()) {
    changed = false;
    for (const auto m : uncovered) {
      int only = -1;
      int count = 0;
      for (std::size_t p = 0; p < primes.size(); ++p) {
        if (primes[p].covers(m)) {
          ++count;
          only = static_cast<int>(p);
        }
      }
      if (count == 1 && !used[static_cast<std::size_t>(only)]) {
        used[static_cast<std::size_t>(only)] = true;
        cover.push_back(primes[static_cast<std::size_t>(only)]);
        std::erase_if(uncovered, [&](std::uint32_t x) {
          return primes[static_cast<std::size_t>(only)].covers(x);
        });
        changed = true;
        break;
      }
    }
  }

  // Greedy cover for the remainder: pick the prime covering the most.
  while (!uncovered.empty()) {
    std::size_t best = primes.size();
    std::size_t best_count = 0;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (used[p]) continue;
      std::size_t c = 0;
      for (const auto m : uncovered)
        if (primes[p].covers(m)) ++c;
      if (c > best_count) {
        best_count = c;
        best = p;
      }
    }
    if (best == primes.size())
      throw std::logic_error("qm::minimize: uncoverable minterm");
    used[best] = true;
    cover.push_back(primes[best]);
    std::erase_if(uncovered, [&](std::uint32_t x) { return primes[best].covers(x); });
  }
  return cover;
}

int cover_cost(const std::vector<Cube>& cover) {
  int cost = 0;
  for (const auto& c : cover) cost += c.literals();
  return cost;
}

bool eval_cover(const std::vector<Cube>& cover, std::uint32_t input) {
  for (const auto& c : cover)
    if (c.covers(input)) return true;
  return false;
}

}  // namespace asicpp::synth
