#include "verify/gen.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>
#include <random>
#include <set>
#include <sstream>

#include "ckpt/snapshot.h"
#include "fixpt/fixed.h"

namespace asicpp::verify {

using fixpt::Fixed;
using fixpt::Format;
using sfg::Reg;
using sfg::Sfg;
using sfg::Sig;

namespace {

/// Format of the op-source phase register: 2 unsigned integer bits
/// wrapping at 4, so `phase + 1` is a modulo-4 counter.
const Format kPhaseFmt{2, 2, false, fixpt::Quant::kTruncate,
                       fixpt::Overflow::kWrap};

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

Sig apply_op(const ExprSpec& e, const std::vector<Sig>& pool, const Format& f) {
  const Sig& a = pool[static_cast<std::size_t>(e.a)];
  const Sig& b = pool[static_cast<std::size_t>(e.b)];
  switch (e.op) {
    case OpKind::kAdd: return a + b;
    case OpKind::kSub: return a - b;
    case OpKind::kMulCast: return (a * b).cast(f);
    case OpKind::kMux: return mux(a > b, a, b);
    case OpKind::kNeg: return -a;
    case OpKind::kCmpXor: return (a == b) ^ (a < b);
    case OpKind::kCast: return a.cast(f);
  }
  return a;
}

}  // namespace

const char* op_name(OpKind op) {
  switch (op) {
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMulCast: return "mul";
    case OpKind::kMux: return "mux";
    case OpKind::kNeg: return "neg";
    case OpKind::kCmpXor: return "cmpxor";
    case OpKind::kCast: return "cast";
  }
  return "?";
}

const char* comp_kind_name(CompKind k) {
  switch (k) {
    case CompKind::kSfg: return "sfg";
    case CompKind::kFsm: return "fsm";
    case CompKind::kOpSource: return "opsource";
    case CompKind::kDispatch: return "dispatch";
    case CompKind::kAdapter: return "adapter";
    case CompKind::kUntimed: return "untimed";
  }
  return "?";
}

int CompSpec::pool_size() const {
  // The dispatcher's single input is the instruction net; it carries the
  // opcode, not data, and is not part of the expression pool.
  const std::size_t data_inputs = kind == CompKind::kDispatch ? 0 : inputs.size();
  return static_cast<int>(regs.size() + data_inputs + 2 + exprs.size());
}

bool Spec::has(CompKind k) const {
  for (const CompSpec& c : comps)
    if (c.kind == k) return true;
  return false;
}

std::vector<std::string> Spec::probes() const {
  std::vector<std::string> out;
  out.reserve(comps.size());
  for (const CompSpec& c : comps) out.push_back(net_name(c.net));
  return out;
}

std::string validate(const Spec& s) {
  if (s.wl < s.iwl + 3 || s.iwl < 2)
    return "format too narrow: wl=" + std::to_string(s.wl) +
           " iwl=" + std::to_string(s.iwl) + " (need wl >= iwl+3, iwl >= 2)";
  if (s.cycles == 0) return "cycles must be >= 1";
  if (s.comps.empty()) return "no components";

  std::set<int> nets;
  std::set<int> op_sources;
  // Adapter outputs are register-like: the net carries no token on cycle 0
  // (and an untimed block fed from such a net inherits the gap). A
  // must-fire timed component reading one deadlocks immediately, so only
  // tolerant consumers (adapter, untimed) may read "lazy" nets.
  std::set<int> lazy;
  int prev_net = -1;
  for (std::size_t i = 0; i < s.comps.size(); ++i) {
    const CompSpec& c = s.comps[i];
    const std::string who = "comp " + std::to_string(i) + " (net w" +
                            std::to_string(c.net) + ")";
    if (c.net <= prev_net) return who + ": net ids must be strictly ascending";
    prev_net = c.net;
    for (const int in : c.inputs)
      if (!nets.count(in)) return who + ": input net w" + std::to_string(in) +
                                  " is not an earlier component's net";
    const int pool = c.pool_size();
    const std::size_t data_inputs =
        c.kind == CompKind::kDispatch ? 0 : c.inputs.size();
    const int base = static_cast<int>(c.regs.size() + data_inputs) + 2;
    for (std::size_t e = 0; e < c.exprs.size(); ++e) {
      const int avail = base + static_cast<int>(e);
      if (c.exprs[e].a < 0 || c.exprs[e].a >= avail || c.exprs[e].b < 0 ||
          c.exprs[e].b >= avail)
        return who + ": expr " + std::to_string(e) + " operand out of range";
    }
    if (c.out < 0 || c.out >= pool) return who + ": out index out of range";
    if (c.out_alt < 0 || c.out_alt >= pool)
      return who + ": out_alt index out of range";
    for (const RegSpec& r : c.regs)
      if (r.next < 0 || r.next >= pool)
        return who + ": register next-value index out of range";
    switch (c.kind) {
      case CompKind::kSfg:
      case CompKind::kFsm:
        if (c.kind == CompKind::kFsm && c.regs.empty())
          return who + ": fsm needs at least one register";
        for (const int in : c.inputs)
          if (lazy.count(in))
            return who + ": timed component reads adapter-delayed net w" +
                   std::to_string(in) + " (deadlocks on cycle 0)";
        break;
      case CompKind::kOpSource:
        if (!c.inputs.empty()) return who + ": op source takes no inputs";
        op_sources.insert(c.net);
        break;
      case CompKind::kDispatch:
        if (c.inputs.size() != 1 || !op_sources.count(c.inputs[0]))
          return who + ": dispatch needs exactly one op-source input net";
        if (c.regs.empty())
          return who + ": dispatch needs at least one register";
        break;
      case CompKind::kAdapter:
      case CompKind::kUntimed:
        if (c.inputs.size() != 1)
          return who + ": adapter/untimed needs exactly one input net";
        if (c.kind == CompKind::kAdapter ||
            lazy.count(c.inputs[0]))
          lazy.insert(c.net);
        break;
    }
    nets.insert(c.net);
  }
  return {};
}

Spec generate(const GenConfig& cfg, unsigned seed) {
  std::mt19937 rng(seed * 2654435761u + 0x9e3779b9u);
  const auto pick = [&rng](int lo, int hi) {  // inclusive
    return lo + static_cast<int>(rng() % static_cast<unsigned>(hi - lo + 1));
  };

  Spec s;
  s.seed = seed;
  s.wl = pick(cfg.min_wl, cfg.max_wl);
  s.iwl = pick(2, std::min(4, s.wl - 3));
  s.cycles = static_cast<std::uint64_t>(
      pick(static_cast<int>(cfg.min_cycles), static_cast<int>(cfg.max_cycles)));

  const int ncomps = pick(cfg.min_comps, cfg.max_comps);
  std::vector<int> nets;          // all existing net ids
  std::vector<int> opcode_nets;   // op-source nets (only dispatchers read them)
  std::vector<int> data_nets;     // readable by every component kind
  std::vector<int> lazy_nets;     // adapter-delayed; tolerant consumers only
  int next_net = 0;
  const auto is_lazy = [&lazy_nets](int n) {
    return std::find(lazy_nets.begin(), lazy_nets.end(), n) != lazy_nets.end();
  };
  const auto tolerant_input = [&]() {  // any data or lazy net
    const std::size_t total = data_nets.size() + lazy_nets.size();
    const std::size_t i = rng() % total;
    return i < data_nets.size() ? data_nets[i]
                                : lazy_nets[i - data_nets.size()];
  };

  const auto fill_exprs = [&](CompSpec& c, int max_exprs) {
    const int nregs = static_cast<int>(c.regs.size());
    const int nin = static_cast<int>(
        c.kind == CompKind::kDispatch ? 0 : c.inputs.size());
    int pool = nregs + nin + 2;  // + constants 0.75 and -1.5
    const int nexpr = pick(2, std::max(2, max_exprs));
    for (int e = 0; e < nexpr; ++e) {
      ExprSpec ex;
      ex.op = static_cast<OpKind>(rng() % 7);
      ex.a = pick(0, pool - 1);
      ex.b = pick(0, pool - 1);
      c.exprs.push_back(ex);
      ++pool;
    }
    // Prefer deep expressions for the outputs so shrinking has work to do.
    c.out = pool - 1 - pick(0, std::min(3, pool - 1));
    c.out_alt = pool - 1 - pick(0, std::min(3, pool - 1));
    for (RegSpec& r : c.regs) r.next = pool - 1 - pick(0, std::min(4, pool - 1));
  };
  const Format sysfmt = s.fmt();
  const auto rand_init = [&] {
    return fixpt::quantize((static_cast<double>(pick(0, 12)) - 6.0) * 0.75,
                           sysfmt);
  };

  while (static_cast<int>(s.comps.size()) < ncomps) {
    const bool first = s.comps.empty();
    CompSpec c;
    c.net = next_net++;
    // Kind choice: the first component is always a register source so
    // every later component has a data net to read.
    int roll = first ? 0 : pick(0, 99);
    const bool budget2 = static_cast<int>(s.comps.size()) + 2 <= ncomps;
    if (!first && cfg.allow_dispatch && budget2 && roll >= 85) {
      // Paired op source + dispatcher.
      CompSpec src;
      src.kind = CompKind::kOpSource;
      src.net = c.net;
      s.comps.push_back(src);
      nets.push_back(src.net);
      opcode_nets.push_back(src.net);

      CompSpec dp;
      dp.kind = CompKind::kDispatch;
      dp.net = next_net++;
      dp.inputs = {src.net};  // instruction net; not part of the expr pool
      const int nregs = pick(1, 2);
      for (int r = 0; r < nregs; ++r) dp.regs.push_back({rand_init(), 0});
      fill_exprs(dp, 5);
      s.comps.push_back(dp);
      nets.push_back(dp.net);
      data_nets.push_back(dp.net);
      continue;
    }
    if (!first && cfg.allow_fsm && roll >= 70 && roll < 85) {
      c.kind = CompKind::kFsm;
      const int nregs = pick(1, 2);
      for (int r = 0; r < nregs; ++r) c.regs.push_back({rand_init(), 0});
      const int nin = pick(0, std::min(2, static_cast<int>(data_nets.size())));
      for (int k = 0; k < nin; ++k)
        c.inputs.push_back(data_nets[rng() % data_nets.size()]);
      c.guard_thresh = (static_cast<double>(pick(0, 16)) - 8.0) * 0.25;
      fill_exprs(c, 6);
    } else if (!first && cfg.allow_adapter && !data_nets.empty() && roll >= 60 &&
               roll < 70) {
      c.kind = CompKind::kAdapter;
      c.inputs = {tolerant_input()};
      const double gains[] = {0.5, 1.5, 2.0, -1.0, 0.625};
      c.gain = gains[rng() % 5];
      c.out = 0;
      c.out_alt = 0;
    } else if (!first && cfg.allow_untimed && !data_nets.empty() && roll >= 50 &&
               roll < 60) {
      c.kind = CompKind::kUntimed;
      c.inputs = {tolerant_input()};
      const double gains[] = {0.5, 1.5, 2.0, -1.0, 0.625};
      c.gain = gains[rng() % 5];
      c.out = 0;
      c.out_alt = 0;
    } else {
      c.kind = CompKind::kSfg;
      const bool source = first || data_nets.empty() || pick(0, 4) == 0;
      if (source) {
        const int nregs = pick(1, 2);
        for (int r = 0; r < nregs; ++r) c.regs.push_back({rand_init(), 0});
      } else {
        const int nin = pick(1, std::min(3, static_cast<int>(data_nets.size())));
        for (int k = 0; k < nin; ++k)
          c.inputs.push_back(data_nets[rng() % data_nets.size()]);
        if (pick(0, 2) == 0) c.regs.push_back({rand_init(), 0});
      }
      fill_exprs(c, cfg.max_exprs);
    }
    s.comps.push_back(c);
    nets.push_back(c.net);
    if (c.kind == CompKind::kAdapter ||
        (c.kind == CompKind::kUntimed && is_lazy(c.inputs[0])))
      lazy_nets.push_back(c.net);
    else
      data_nets.push_back(c.net);
  }
  return s;
}

// --- System materialization ------------------------------------------------

System::System(const Spec& spec) : spec_(spec) {
  const std::string err = validate(spec_);
  if (!err.empty())
    throw std::invalid_argument("verify::System: invalid spec: " + err);
  clk_ = std::make_unique<sfg::Clk>();
  sched_ = std::make_unique<sched::CycleScheduler>(*clk_);
  // Salt snapshots with the full spec text: the scheduler's own state hash
  // covers names and formats, so two structurally different specs with
  // identical naming would otherwise accept each other's snapshots.
  sched_->set_state_salt(ckpt::hash_string(to_text(spec_)));
  for (const CompSpec& c : spec_.comps) build_comp(c);
  // Register in reverse spec order so the iterative scheduler has to pay
  // retry passes that the level walk avoids (deterministic stand-in for
  // the shuffled registration of the original random-equivalence tests).
  for (auto it = comps_.rbegin(); it != comps_.rend(); ++it)
    sched_->add(**it);
}

void System::build_comp(const CompSpec& c) {
  const Format fmt = spec_.fmt();
  const std::string nn = spec_.net_name(c.net);

  if (c.kind == CompKind::kOpSource) {
    regs_.push_back(std::make_unique<Reg>(nn + "_phase", *clk_, kPhaseFmt, 0.0));
    Reg& phase = *regs_.back();
    sfgs_.push_back(std::make_unique<Sfg>(nn + "_src"));
    Sfg& s = *sfgs_.back();
    s.out("o", mux(phase.sig() > 1.5, Sig(1.0), Sig(2.0)).cast(fmt));
    s.assign(phase, (phase.sig() + 1.0).cast(kPhaseFmt));
    auto comp = std::make_unique<sched::SfgComponent>(nn, s);
    comp->bind_output("o", sched_->net(nn));
    comps_.push_back(std::move(comp));
    return;
  }
  if (c.kind == CompKind::kAdapter) {
    const double gain = c.gain;
    procs_.push_back(std::make_unique<df::FnProcess>(
        nn + "_proc", [gain](const std::vector<df::Token>& i,
                             std::vector<df::Token>& o) {
          o.push_back(i[0] * df::Token(gain));
        }));
    auto ad = std::make_unique<sched::DataflowAdapter>(nn, *procs_.back());
    ad->bind_input(sched_->net(spec_.net_name(c.inputs[0])));
    ad->bind_output(sched_->net(nn));
    comps_.push_back(std::move(ad));
    return;
  }
  if (c.kind == CompKind::kUntimed) {
    const double gain = c.gain;
    auto u = std::make_unique<sched::UntimedComponent>(
        nn, [gain, fmt](const std::vector<Fixed>& i) {
          return std::vector<Fixed>{
              fixpt::quantize(i[0].value() * gain + 0.25, fmt)};
        });
    u->bind_input(sched_->net(spec_.net_name(c.inputs[0])));
    u->bind_output(sched_->net(nn));
    comps_.push_back(std::move(u));
    return;
  }

  // Expression-pool kinds: kSfg, kFsm, kDispatch.
  std::vector<Sig> pool;
  std::vector<Reg*> myregs;
  for (std::size_t k = 0; k < c.regs.size(); ++k) {
    regs_.push_back(std::make_unique<Reg>(
        nn + "_r" + std::to_string(k), *clk_, fmt,
        fixpt::quantize(c.regs[k].init, fmt)));
    myregs.push_back(regs_.back().get());
    pool.push_back(regs_.back()->sig());
  }
  std::vector<Sig*> myins;
  if (c.kind != CompKind::kDispatch) {
    for (std::size_t k = 0; k < c.inputs.size(); ++k) {
      sigs_.push_back(std::make_unique<Sig>(
          Sig::input(nn + "_i" + std::to_string(k), fmt)));
      myins.push_back(sigs_.back().get());
      pool.push_back(*sigs_.back());
    }
  }
  pool.push_back(Sig(0.75));
  pool.push_back(Sig(-1.5));
  for (const ExprSpec& e : c.exprs) pool.push_back(apply_op(e, pool, fmt));

  const Sig out_main = pool[static_cast<std::size_t>(c.out)].cast(fmt);
  const Sig out_alt = pool[static_cast<std::size_t>(c.out_alt)].cast(fmt);

  const auto declare_ins = [&](Sfg& s) {
    for (const Sig* in : myins) s.in(*in);
  };
  const auto assign_regs = [&](Sfg& s) {
    for (std::size_t k = 0; k < myregs.size(); ++k)
      s.assign(*myregs[k],
               pool[static_cast<std::size_t>(c.regs[k].next)].cast(fmt));
  };
  // The alternate behaviour (FSM state B / dispatch opcode 2): negate the
  // first register, emit the alternate output.
  const auto assign_alt = [&](Sfg& s) {
    if (!myregs.empty()) s.assign(*myregs[0], (-pool[0]).cast(fmt));
  };
  const auto bind_all = [&](sched::TimedBase& comp) {
    for (std::size_t k = 0; k < myins.size(); ++k)
      comp.bind_input(*myins[k], sched_->net(spec_.net_name(c.inputs[k])));
    comp.bind_output("o", sched_->net(nn));
  };

  if (c.kind == CompKind::kSfg) {
    sfgs_.push_back(std::make_unique<Sfg>(nn + "_s"));
    Sfg& s = *sfgs_.back();
    declare_ins(s);
    s.out("o", out_main);
    assign_regs(s);
    auto comp = std::make_unique<sched::SfgComponent>(nn, s);
    bind_all(*comp);
    comps_.push_back(std::move(comp));
    return;
  }
  if (c.kind == CompKind::kFsm) {
    sfgs_.push_back(std::make_unique<Sfg>(nn + "_a"));
    Sfg& sa = *sfgs_.back();
    declare_ins(sa);
    sa.out("o", out_main);
    assign_regs(sa);
    sfgs_.push_back(std::make_unique<Sfg>(nn + "_b"));
    Sfg& sb = *sfgs_.back();
    declare_ins(sb);
    sb.out("o", out_alt);
    assign_alt(sb);
    fsms_.push_back(std::make_unique<fsm::Fsm>(nn + "_fsm"));
    fsm::Fsm& f = *fsms_.back();
    fsm::State a = f.initial("A");
    fsm::State b = f.state("B");
    a << fsm::cnd(myregs[0]->sig() < c.guard_thresh) << sa << a;
    a << fsm::always << sb << b;
    b << fsm::always << sa << a;
    auto comp = std::make_unique<sched::FsmComponent>(nn, f);
    bind_all(*comp);
    comps_.push_back(std::move(comp));
    return;
  }
  // kDispatch
  sfgs_.push_back(std::make_unique<Sfg>(nn + "_i1"));
  Sfg& s1 = *sfgs_.back();
  s1.out("o", out_main);
  assign_regs(s1);
  sfgs_.push_back(std::make_unique<Sfg>(nn + "_i2"));
  Sfg& s2 = *sfgs_.back();
  s2.out("o", out_alt);
  assign_alt(s2);
  auto dp = std::make_unique<sched::DispatchComponent>(
      nn, sched_->net(spec_.net_name(c.inputs[0])));
  dp->add_instruction(1, s1);
  dp->add_instruction(2, s2);
  dp->bind_output("o", sched_->net(nn));
  comps_.push_back(std::move(dp));
}

// --- serialization ---------------------------------------------------------

std::string to_text(const Spec& s) {
  std::ostringstream os;
  os << "spec wl=" << s.wl << " iwl=" << s.iwl << " cycles=" << s.cycles
     << " seed=" << s.seed << "\n";
  for (const CompSpec& c : s.comps) {
    os << "comp net=" << c.net << " kind=" << comp_kind_name(c.kind)
       << " inputs=[";
    for (std::size_t i = 0; i < c.inputs.size(); ++i)
      os << (i ? "," : "") << c.inputs[i];
    os << "] regs=[";
    for (std::size_t i = 0; i < c.regs.size(); ++i)
      os << (i ? "," : "") << "(" << fmt_double(c.regs[i].init) << ","
         << c.regs[i].next << ")";
    os << "] exprs=[";
    for (std::size_t i = 0; i < c.exprs.size(); ++i)
      os << (i ? "," : "") << "(" << op_name(c.exprs[i].op) << ","
         << c.exprs[i].a << "," << c.exprs[i].b << ")";
    os << "] out=" << c.out << " alt=" << c.out_alt
       << " thresh=" << fmt_double(c.guard_thresh)
       << " gain=" << fmt_double(c.gain) << "\n";
  }
  return os.str();
}

namespace {

bool parse_op(const std::string& s, OpKind* op) {
  for (OpKind k : {OpKind::kAdd, OpKind::kSub, OpKind::kMulCast, OpKind::kMux,
                   OpKind::kNeg, OpKind::kCmpXor, OpKind::kCast}) {
    if (s == op_name(k)) {
      *op = k;
      return true;
    }
  }
  return false;
}

bool parse_comp_kind(const std::string& s, CompKind* kind) {
  for (CompKind k : {CompKind::kSfg, CompKind::kFsm, CompKind::kOpSource,
                     CompKind::kDispatch, CompKind::kAdapter,
                     CompKind::kUntimed}) {
    if (s == comp_kind_name(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

/// "key=value" tokens of a spec-text line, after the leading record word.
class FieldParser {
 public:
  FieldParser(const std::string& line, int lineno) : ls_(line), lineno_(lineno) {
    ls_ >> record_;
  }

  const std::string& record() const { return record_; }

  /// Next token, which must be `key=`; returns the value part.
  std::string expect(const std::string& key) {
    std::string tok;
    if (!(ls_ >> tok) || tok.rfind(key + "=", 0) != 0)
      throw fail("expected field '" + key + "='");
    return tok.substr(key.size() + 1);
  }

  long expect_int(const std::string& key) { return to_int(expect(key), key); }

  double expect_double(const std::string& key) {
    const std::string v = expect(key);
    char* end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (end == nullptr || *end != '\0')
      throw fail("field '" + key + "' has malformed number '" + v + "'");
    return d;
  }

  /// `key=[...]` — returns the bracket body.
  std::string expect_list(const std::string& key) {
    const std::string v = expect(key);
    if (v.size() < 2 || v.front() != '[' || v.back() != ']')
      throw fail("field '" + key + "' is not a [...] list");
    return v.substr(1, v.size() - 2);
  }

  long to_int(const std::string& v, const std::string& what) const {
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (v.empty() || end == nullptr || *end != '\0')
      throw fail("field '" + what + "' has malformed integer '" + v + "'");
    return n;
  }

  std::runtime_error fail(const std::string& why) const {
    return std::runtime_error("spec text line " + std::to_string(lineno_) +
                              ": " + why);
  }

 private:
  std::istringstream ls_;
  std::string record_;
  int lineno_;
};

/// "a,b,c" → {"a","b","c"}; empty body → {}.
std::vector<std::string> split_csv(const std::string& body) {
  std::vector<std::string> out;
  if (body.empty()) return out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= body.size(); ++i) {
    if (i == body.size() || body[i] == ',') {
      out.push_back(body.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// "(a,b),(c,d)" → {"a,b", "c,d"}; empty body → {}.
std::vector<std::string> split_groups(const std::string& body,
                                      const FieldParser& fp,
                                      const std::string& what) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < body.size()) {
    if (body[i] != '(') throw fp.fail("malformed " + what + " list");
    const std::size_t close = body.find(')', i);
    if (close == std::string::npos) throw fp.fail("malformed " + what + " list");
    out.push_back(body.substr(i + 1, close - i - 1));
    i = close + 1;
    if (i < body.size()) {
      if (body[i] != ',') throw fp.fail("malformed " + what + " list");
      ++i;
    }
  }
  return out;
}

}  // namespace

Spec from_text(const std::string& text) {
  Spec s;
  bool header = false;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    FieldParser fp(line, lineno);
    if (fp.record() == "spec") {
      if (header) throw fp.fail("duplicate 'spec' header");
      s.wl = static_cast<int>(fp.expect_int("wl"));
      s.iwl = static_cast<int>(fp.expect_int("iwl"));
      s.cycles = static_cast<std::uint64_t>(fp.expect_int("cycles"));
      s.seed = static_cast<unsigned>(fp.expect_int("seed"));
      header = true;
    } else if (fp.record() == "comp") {
      if (!header) throw fp.fail("'comp' before the 'spec' header");
      CompSpec c;
      c.net = static_cast<int>(fp.expect_int("net"));
      const std::string kind = fp.expect("kind");
      if (!parse_comp_kind(kind, &c.kind))
        throw fp.fail("unknown component kind '" + kind + "'");
      for (const std::string& tok : split_csv(fp.expect_list("inputs")))
        c.inputs.push_back(static_cast<int>(fp.to_int(tok, "inputs")));
      for (const std::string& g :
           split_groups(fp.expect_list("regs"), fp, "regs")) {
        const auto parts = split_csv(g);
        if (parts.size() != 2) throw fp.fail("malformed regs entry");
        RegSpec r;
        char* end = nullptr;
        r.init = std::strtod(parts[0].c_str(), &end);
        if (end == nullptr || *end != '\0')
          throw fp.fail("malformed regs init '" + parts[0] + "'");
        r.next = static_cast<int>(fp.to_int(parts[1], "regs"));
        c.regs.push_back(r);
      }
      for (const std::string& g :
           split_groups(fp.expect_list("exprs"), fp, "exprs")) {
        const auto parts = split_csv(g);
        if (parts.size() != 3) throw fp.fail("malformed exprs entry");
        ExprSpec e;
        if (!parse_op(parts[0], &e.op))
          throw fp.fail("unknown op '" + parts[0] + "'");
        e.a = static_cast<int>(fp.to_int(parts[1], "exprs"));
        e.b = static_cast<int>(fp.to_int(parts[2], "exprs"));
        c.exprs.push_back(e);
      }
      c.out = static_cast<int>(fp.expect_int("out"));
      c.out_alt = static_cast<int>(fp.expect_int("alt"));
      c.guard_thresh = fp.expect_double("thresh");
      c.gain = fp.expect_double("gain");
      s.comps.push_back(std::move(c));
    } else {
      throw fp.fail("unknown record '" + fp.record() + "'");
    }
  }
  if (!header)
    throw std::runtime_error("spec text: missing 'spec' header line");
  const std::string err = validate(s);
  if (!err.empty()) throw std::runtime_error("spec text: " + err);
  return s;
}

void emit_spec_cpp(const Spec& s, const std::string& var, std::ostream& os) {
  os << "  Spec " << var << ";\n"
     << "  " << var << ".wl = " << s.wl << ";\n"
     << "  " << var << ".iwl = " << s.iwl << ";\n"
     << "  " << var << ".cycles = " << s.cycles << ";\n"
     << "  " << var << ".seed = " << s.seed << "u;\n";
  const auto kind_token = [](CompKind k) {
    switch (k) {
      case CompKind::kSfg: return "CompKind::kSfg";
      case CompKind::kFsm: return "CompKind::kFsm";
      case CompKind::kOpSource: return "CompKind::kOpSource";
      case CompKind::kDispatch: return "CompKind::kDispatch";
      case CompKind::kAdapter: return "CompKind::kAdapter";
      case CompKind::kUntimed: return "CompKind::kUntimed";
    }
    return "CompKind::kSfg";
  };
  const auto op_token = [](OpKind op) {
    switch (op) {
      case OpKind::kAdd: return "OpKind::kAdd";
      case OpKind::kSub: return "OpKind::kSub";
      case OpKind::kMulCast: return "OpKind::kMulCast";
      case OpKind::kMux: return "OpKind::kMux";
      case OpKind::kNeg: return "OpKind::kNeg";
      case OpKind::kCmpXor: return "OpKind::kCmpXor";
      case OpKind::kCast: return "OpKind::kCast";
    }
    return "OpKind::kAdd";
  };
  for (const CompSpec& c : s.comps) {
    os << "  {\n    CompSpec c;\n"
       << "    c.kind = " << kind_token(c.kind) << ";\n"
       << "    c.net = " << c.net << ";\n";
    if (!c.inputs.empty()) {
      os << "    c.inputs = {";
      for (std::size_t i = 0; i < c.inputs.size(); ++i)
        os << (i ? ", " : "") << c.inputs[i];
      os << "};\n";
    }
    for (const RegSpec& r : c.regs)
      os << "    c.regs.push_back({" << fmt_double(r.init) << ", " << r.next
         << "});\n";
    for (const ExprSpec& e : c.exprs)
      os << "    c.exprs.push_back({" << op_token(e.op) << ", " << e.a << ", "
         << e.b << "});\n";
    os << "    c.out = " << c.out << ";\n"
       << "    c.out_alt = " << c.out_alt << ";\n";
    if (c.kind == CompKind::kFsm)
      os << "    c.guard_thresh = " << fmt_double(c.guard_thresh) << ";\n";
    if (c.kind == CompKind::kAdapter || c.kind == CompKind::kUntimed)
      os << "    c.gain = " << fmt_double(c.gain) << ";\n";
    os << "    " << var << ".comps.push_back(c);\n  }\n";
  }
}

}  // namespace asicpp::verify
