#include "verify/diffrun.h"

#include <cstdio>
#include <sstream>

#include "engine/engine.h"
#include "par/pool.h"
#include "pipeline/pipeline.h"

namespace asicpp::verify {

namespace {

std::string engine_pair(const std::string& a, const std::string& b) {
  return a + " vs " + b;
}

engine::TraceOptions trace_options(const DiffOptions& opts) {
  engine::TraceOptions t;
  t.passes = opts.passes;
  t.workdir = opts.workdir;
  t.cxx = opts.cxx;
  t.store_dir = opts.store_dir;
  t.lanes = opts.lanes;
  return t;
}

/// One engine's trace captured through the unified compile pipeline: the
/// spec goes through parse/elaborate/bind (sharing compiled artifacts with
/// every other pipeline consumer via the content-addressed store), and the
/// bound instance is stepped cycle by cycle. A domain limit (PIPE-004)
/// becomes a skip, any other pipeline failure or a mid-run exception a
/// fail; partial rows up to the failing cycle are kept, matching
/// Engine::trace.
EngineTrace trace_via_pipeline(const Spec& spec, const std::string& name,
                               const DiffOptions& opts,
                               const opt::PassOptions& passes) {
  EngineTrace t;
  t.engine = name;

  pipeline::CompileRequest req;
  req.spec = spec;
  req.has_spec = true;
  req.engine = name;
  req.passes = passes;
  req.workdir = opts.workdir;
  req.cxx = opts.cxx;
  req.store_dir = opts.store_dir;
  req.lanes = opts.lanes;
  pipeline::CompileResult c = pipeline::compile(req);
  if (!c.ok) {
    if (c.code == "PIPE-004")
      t.skip_reason = c.error;
    else
      t.fail_reason = c.error;
    return t;
  }

  const std::vector<std::string> probes = spec.probes();
  try {
    for (std::uint64_t cyc = 0; cyc < spec.cycles; ++cyc) {
      c.instance->cycle();
      std::vector<double> row;
      row.reserve(probes.size());
      for (const std::string& p : probes) row.push_back(c.instance->probe(p));
      t.values.push_back(std::move(row));
    }
    t.ran = true;
  } catch (const std::exception& ex) {
    t.fail_reason = ex.what();
  }
  return t;
}

}  // namespace

int DiffResult::engines_ran() const {
  int n = 0;
  for (const EngineTrace& t : traces) n += t.ran ? 1 : 0;
  return n;
}

bool DiffResult::engine_failed() const {
  for (const EngineTrace& t : traces)
    if (!t.fail_reason.empty()) return true;
  for (const EngineTrace& t : noopt_traces)
    if (!t.fail_reason.empty()) return true;
  for (const EngineTrace& t : ckpt_traces)
    if (!t.fail_reason.empty()) return true;
  return false;
}

const Divergence* DiffResult::first() const {
  const Divergence* best = nullptr;
  for (const Divergence& d : divergences)
    if (best == nullptr || d.cycle < best->cycle) best = &d;
  return best;
}

std::string DiffResult::summary() const {
  std::ostringstream os;
  for (const EngineTrace& t : traces) {
    os << t.engine << ": ";
    if (t.ran)
      os << "ran, " << t.values.size() << " cycles";
    else if (!t.skip_reason.empty())
      os << "skipped (" << t.skip_reason << ")";
    else
      os << "FAILED (" << t.fail_reason << ")";
    os << "\n";
  }
  for (const EngineTrace& t : noopt_traces) {
    os << t.engine << " (passes off): ";
    if (t.ran)
      os << "ran, " << t.values.size() << " cycles";
    else if (!t.skip_reason.empty())
      os << "skipped (" << t.skip_reason << ")";
    else
      os << "FAILED (" << t.fail_reason << ")";
    os << "\n";
  }
  for (const EngineTrace& t : ckpt_traces) {
    os << t.engine << " (checkpoint at cycle " << ckpt_cycle << "): ";
    if (t.ran)
      os << "ran, " << t.values.size() << " cycles";
    else if (!t.skip_reason.empty())
      os << "skipped (" << t.skip_reason << ")";
    else
      os << "FAILED (" << t.fail_reason << ")";
    os << "\n";
  }
  for (const Divergence& d : divergences)
    os << "divergence " << engine_pair(d.ref, d.other) << " at cycle "
       << d.cycle << " net '" << d.net << "': " << d.ref_value << " vs "
       << d.other_value << "\n";
  for (const Divergence& d : pass_divergences)
    os << "pass divergence " << engine_pair(d.ref, d.other)
       << " (passes off) at cycle " << d.cycle << " net '" << d.net
       << "': " << d.ref_value << " vs " << d.other_value << "\n";
  for (const Divergence& d : ckpt_divergences)
    os << "checkpoint divergence " << d.other << " (resumed from cycle "
       << ckpt_cycle << ") at cycle " << d.cycle << " net '" << d.net
       << "': " << d.ref_value << " vs " << d.other_value << "\n";
  if (ok()) os << "all engines agree\n";
  return os.str();
}

DiffResult diff_run(const Spec& spec, const DiffOptions& opts) {
  DiffResult r;
  r.probes = spec.probes();
  const engine::Registry& reg = engine::Registry::global();
  std::vector<const engine::Engine*> engines;
  if (opts.engines.empty()) {
    engines = reg.all();
  } else {
    engines.reserve(opts.engines.size());
    for (const std::string& name : opts.engines)
      engines.push_back(&reg.at(name));  // throws listing registered names
  }
  const engine::TraceOptions topts = trace_options(opts);

  const auto apply_mutant = [&](EngineTrace& t) {
    if (t.ran && opts.mutant.enabled && opts.mutant.engine == t.engine &&
        opts.mutant.cycle < t.values.size()) {
      for (std::size_t i = 0; i < r.probes.size(); ++i)
        if (r.probes[i] == opts.mutant.net)
          t.values[opts.mutant.cycle][i] += opts.mutant.delta;
    }
  };

  for (const engine::Engine* e : engines) {
    EngineTrace t = trace_via_pipeline(spec, e->name(), opts, opts.passes);
    apply_mutant(t);
    r.traces.push_back(std::move(t));
  }

  // The passes-off axis: every registered engine with the pass_axis
  // capability contributes one replay through its noopt pipeline — the
  // recursive interpreter (no lowering at all) and the raw, unoptimized
  // compiled tape.
  if (opts.pass_axis) {
    for (const engine::Engine* e : reg.all()) {
      if (!e->caps().pass_axis) continue;
      r.noopt_traces.push_back(
          trace_via_pipeline(spec, e->name(), opts, e->noopt_passes()));
    }
  }

  // The checkpoint axis (VERIFY-006): snapshot at cycle k, restore into a
  // fresh engine, continue. Needs at least one cycle on each side of the
  // snapshot, so specs shorter than two cycles skip the axis. Replays run
  // only for the checkpointable engines actually selected above.
  if (opts.ckpt_axis && spec.cycles >= 2) {
    r.ckpt_cycle = opts.ckpt_cycle != 0 && opts.ckpt_cycle < spec.cycles
                       ? opts.ckpt_cycle
                       : 1 + (spec.seed * 2654435761u) % (spec.cycles - 1);
    for (const engine::Engine* e : engines) {
      if (!e->caps().checkpointable) continue;
      EngineTrace t;
      try {
        t = e->trace_ckpt(spec, topts, r.ckpt_cycle);
      } catch (const std::exception& ex) {
        t = EngineTrace{};
        t.engine = e->name();
        t.fail_reason = ex.what();
      }
      // A mutant models an engine bug, which would survive a checkpoint:
      // apply it to the resumed trace too, so the mutated engine's replay
      // still matches its (mutated) straight-through trace.
      apply_mutant(t);
      r.ckpt_traces.push_back(std::move(t));
    }
  }

  // Compare every ran engine against the first one that ran.
  const EngineTrace* ref = nullptr;
  for (const EngineTrace& t : r.traces)
    if (t.ran) {
      ref = &t;
      break;
    }
  const auto first_divergence = [&](const EngineTrace& t,
                                    std::vector<Divergence>& out) {
    bool found = false;
    for (std::uint64_t c = 0; c < ref->values.size() && !found; ++c) {
      for (std::size_t i = 0; i < r.probes.size() && !found; ++i) {
        const double a = ref->values[c][i];
        const double b = t.values[c][i];
        if (a != b) {
          out.push_back(
              Divergence{ref->engine, t.engine, c, r.probes[i], a, b});
          found = true;
        }
      }
    }
  };
  if (ref != nullptr) {
    for (const EngineTrace& t : r.traces) {
      if (!t.ran || &t == ref) continue;
      first_divergence(t, r.divergences);
    }
    for (const EngineTrace& t : r.noopt_traces) {
      if (!t.ran) continue;
      first_divergence(t, r.pass_divergences);
    }
  }

  // Checkpoint replays diff against the *same engine's* straight-through
  // trace: a resumed run must be bit-identical to an uninterrupted one.
  for (const EngineTrace& t : r.ckpt_traces) {
    if (!t.ran) continue;
    const EngineTrace* straight = nullptr;
    for (const EngineTrace& s : r.traces)
      if (s.engine == t.engine && s.ran) straight = &s;
    if (straight == nullptr) continue;
    bool found = false;
    for (std::uint64_t c = 0; c < straight->values.size() && !found; ++c) {
      for (std::size_t i = 0; i < r.probes.size() && !found; ++i) {
        const double a = straight->values[c][i];
        const double b = t.values[c][i];
        if (a != b) {
          r.ckpt_divergences.push_back(
              Divergence{t.engine, t.engine, c, r.probes[i], a, b});
          found = true;
        }
      }
    }
  }

  if (opts.diagnostics != nullptr) {
    diag::DiagEngine& de = *opts.diagnostics;
    for (const EngineTrace& t : r.traces) {
      if (!t.skip_reason.empty())
        de.note("VERIFY-003", "engine '" + t.engine + "'",
                "skipped: " + t.skip_reason);
      if (!t.fail_reason.empty())
        de.error("VERIFY-002", "engine '" + t.engine + "'",
                 "engine failed on generated spec (seed " +
                     std::to_string(spec.seed) + "): " + t.fail_reason);
    }
    for (const EngineTrace& t : r.noopt_traces) {
      if (!t.fail_reason.empty())
        de.error("VERIFY-002", "engine '" + t.engine + "' (passes off)",
                 "engine failed on generated spec (seed " +
                     std::to_string(spec.seed) + "): " + t.fail_reason);
    }
    for (const EngineTrace& t : r.ckpt_traces) {
      if (!t.fail_reason.empty())
        de.error("VERIFY-002", "engine '" + t.engine + "' (checkpoint replay)",
                 "engine failed on generated spec (seed " +
                     std::to_string(spec.seed) + "): " + t.fail_reason);
    }
    for (const Divergence& d : r.divergences) {
      auto& rec = de.error(
          "VERIFY-001", engine_pair(d.ref, d.other),
          "cross-representation trace divergence on net '" + d.net + "'");
      rec.cycle = d.cycle;
      char buf[128];
      std::snprintf(buf, sizeof buf, "%s = %.17g, %s = %.17g", d.ref.c_str(),
                    d.ref_value, d.other.c_str(), d.other_value);
      rec.note(buf);
      rec.note("spec: seed " + std::to_string(spec.seed) + ", " +
               std::to_string(spec.comps.size()) + " components, " +
               std::to_string(spec.cycles) + " cycles");
    }
    for (const Divergence& d : r.pass_divergences) {
      auto& rec = de.error(
          "VERIFY-005", engine_pair(d.ref, d.other),
          "optimizer pass pipeline changed observable behaviour on net '" +
              d.net + "'");
      rec.cycle = d.cycle;
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "%s (passes on) = %.17g, %s (passes off) = %.17g",
                    d.ref.c_str(), d.ref_value, d.other.c_str(),
                    d.other_value);
      rec.note(buf);
      rec.note("spec: seed " + std::to_string(spec.seed) + ", " +
               std::to_string(spec.comps.size()) + " components, " +
               std::to_string(spec.cycles) + " cycles");
    }
    for (const Divergence& d : r.ckpt_divergences) {
      auto& rec = de.error(
          "VERIFY-006", "engine '" + d.other + "'",
          "checkpoint replay diverged from straight-through run on net '" +
              d.net + "'");
      rec.cycle = d.cycle;
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "straight-through = %.17g, resumed = %.17g", d.ref_value,
                    d.other_value);
      rec.note(buf);
      rec.note("snapshot taken at cycle " + std::to_string(r.ckpt_cycle));
      rec.note("spec: seed " + std::to_string(spec.seed) + ", " +
               std::to_string(spec.comps.size()) + " components, " +
               std::to_string(spec.cycles) + " cycles");
    }
  }
  return r;
}

std::vector<DiffResult> diff_run_batch(const std::vector<Spec>& specs,
                                       const DiffOptions& opts, unsigned jobs) {
  std::vector<DiffResult> results(specs.size());
  // Each lane reports into a private engine; the sinks are merged into the
  // caller's engine in spec order below, so the diagnostic stream cannot
  // depend on worker interleaving.
  std::vector<diag::DiagEngine> sinks(specs.size());
  par::Pool::shared().parallel_for(
      specs.size(),
      [&](std::size_t i) {
        DiffOptions local = opts;
        local.diagnostics = opts.diagnostics != nullptr ? &sinks[i] : nullptr;
        results[i] = diff_run(specs[i], local);
      },
      jobs == 0 ? par::Pool::hardware_lanes() : jobs);
  if (opts.diagnostics != nullptr) {
    for (const auto& s : sinks)
      for (const auto& d : s.all()) opts.diagnostics->report(d);
  }
  return results;
}

}  // namespace asicpp::verify
