#include "verify/diffrun.h"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "netlist/equiv.h"
#include "netlist/netsim.h"
#include "par/pool.h"
#include "sim/compiled.h"
#include "synth/system.h"

namespace asicpp::verify {

namespace {

std::string engine_pair(Engine a, Engine b) {
  return std::string(engine_name(a)) + " vs " + engine_name(b);
}

std::string scratch_dir(const DiffOptions& opts) {
  if (!opts.workdir.empty()) return opts.workdir;
  if (const char* t = std::getenv("TMPDIR")) return t;
  return "/tmp";
}

/// Run `cmd` through the shell, capturing stdout+stderr.
int run_command(const std::string& cmd, std::string* out) {
  FILE* p = popen((cmd + " 2>&1").c_str(), "r");
  if (p == nullptr) {
    *out = "popen failed";
    return -1;
  }
  char buf[512];
  while (std::fgets(buf, sizeof buf, p) != nullptr) *out += buf;
  return pclose(p);
}

EngineTrace run_interpreted(const Spec& spec, Engine which,
                            const opt::PassOptions& passes) {
  EngineTrace t;
  t.engine = which;
  System sys(spec);
  sys.scheduler().set_schedule_mode(which == Engine::kLevelized
                                        ? ScheduleMode::kLevelized
                                        : ScheduleMode::kIterative);
  sys.scheduler().set_pass_options(passes);
  const auto probes = spec.probes();
  for (std::uint64_t c = 0; c < spec.cycles; ++c) {
    sys.scheduler().cycle();
    std::vector<double> row;
    row.reserve(probes.size());
    for (const std::string& n : probes)
      row.push_back(sys.scheduler().net(n).last().value());
    t.values.push_back(std::move(row));
  }
  t.ran = true;
  return t;
}

EngineTrace run_compiled(const Spec& spec, const opt::PassOptions& passes) {
  EngineTrace t;
  t.engine = Engine::kCompiled;
  if (spec.has(CompKind::kAdapter)) {
    t.skip_reason = "dataflow adapters have no compiled-simulation image";
    return t;
  }
  System sys(spec);
  sim::CompiledSystem cs = sim::CompiledSystem::compile(sys.scheduler(), passes);
  const auto probes = spec.probes();
  for (std::uint64_t c = 0; c < spec.cycles; ++c) {
    cs.cycle();
    std::vector<double> row;
    row.reserve(probes.size());
    for (const std::string& n : probes) row.push_back(cs.net_value(n));
    t.values.push_back(std::move(row));
  }
  t.ran = true;
  return t;
}

// --- checkpoint-replay variants (the VERIFY-006 axis) ----------------------
//
// Each runs the first k cycles on a fresh engine, snapshots it through the
// ckpt stream, restores the snapshot into a *second* fresh engine, and runs
// the remaining cycles there. The stitched trace is returned for a
// bit-for-bit diff against the straight-through run.

EngineTrace run_interpreted_ckpt(const Spec& spec, Engine which,
                                 const opt::PassOptions& passes,
                                 std::uint64_t k) {
  EngineTrace t;
  t.engine = which;
  const auto mode = which == Engine::kLevelized ? ScheduleMode::kLevelized
                                                : ScheduleMode::kIterative;
  const auto probes = spec.probes();
  const auto capture = [&](System& sys) {
    std::vector<double> row;
    row.reserve(probes.size());
    for (const std::string& n : probes)
      row.push_back(sys.scheduler().net(n).last().value());
    t.values.push_back(std::move(row));
  };
  System a(spec);
  a.scheduler().set_schedule_mode(mode);
  a.scheduler().set_pass_options(passes);
  for (std::uint64_t c = 0; c < k; ++c) {
    a.scheduler().cycle();
    capture(a);
  }
  std::stringstream snap;
  a.scheduler().save_state(snap);
  System b(spec);
  b.scheduler().set_schedule_mode(mode);
  b.scheduler().set_pass_options(passes);
  b.scheduler().restore_state(snap);
  for (std::uint64_t c = k; c < spec.cycles; ++c) {
    b.scheduler().cycle();
    capture(b);
  }
  t.ran = true;
  return t;
}

EngineTrace run_compiled_ckpt(const Spec& spec, const opt::PassOptions& passes,
                              std::uint64_t k) {
  EngineTrace t;
  t.engine = Engine::kCompiled;
  if (spec.has(CompKind::kAdapter)) {
    t.skip_reason = "dataflow adapters have no compiled-simulation image";
    return t;
  }
  const auto probes = spec.probes();
  const auto capture = [&](sim::CompiledSystem& cs) {
    std::vector<double> row;
    row.reserve(probes.size());
    for (const std::string& n : probes) row.push_back(cs.net_value(n));
    t.values.push_back(std::move(row));
  };
  System sa(spec);
  sim::CompiledSystem a = sim::CompiledSystem::compile(sa.scheduler(), passes);
  for (std::uint64_t c = 0; c < k; ++c) {
    a.cycle();
    capture(a);
  }
  std::stringstream snap;
  a.save_state(snap);
  System sb(spec);
  sim::CompiledSystem b = sim::CompiledSystem::compile(sb.scheduler(), passes);
  b.restore_state(snap);
  for (std::uint64_t c = k; c < spec.cycles; ++c) {
    b.cycle();
    capture(b);
  }
  t.ran = true;
  return t;
}

EngineTrace run_cppgen(const Spec& spec, const DiffOptions& opts) {
  EngineTrace t;
  t.engine = Engine::kCppgen;
  if (spec.has(CompKind::kAdapter) || spec.has(CompKind::kUntimed)) {
    t.skip_reason = "untimed/adapter behaviour has no generated-code image";
    return t;
  }
  System sys(spec);
  sim::CompiledSystem cs =
      sim::CompiledSystem::compile(sys.scheduler(), opts.passes);
  const auto probes = spec.probes();

  // Atomic: concurrent diff_run_batch lanes each need a unique scratch stem.
  static std::atomic<int> counter{0};
  const std::string stem = scratch_dir(opts) + "/asicpp_fuzz_" +
                           std::to_string(getpid()) + "_" +
                           std::to_string(counter.fetch_add(1)) + "_s" +
                           std::to_string(spec.seed);
  const std::string src = stem + ".cpp", bin = stem + ".bin";
  {
    std::ofstream os(src);
    if (!os) {
      t.fail_reason = "cannot write " + src;
      return t;
    }
    cs.emit_cpp(os, probes, spec.cycles);
  }
  std::string text;
  if (run_command(opts.cxx + " -O2 -std=c++17 -o " + bin + " " + src, &text) !=
      0) {
    t.fail_reason = "generated simulator failed to compile: " + text;
    std::remove(src.c_str());
    return t;
  }
  text.clear();
  const int rc = run_command(bin, &text);
  std::remove(src.c_str());
  std::remove(bin.c_str());
  if (rc != 0) {
    t.fail_reason = "generated simulator exited with status " +
                    std::to_string(rc) + ": " + text;
    return t;
  }
  std::istringstream is(text);
  std::vector<double> flat;
  std::string line;
  while (std::getline(is, line))
    if (!line.empty()) flat.push_back(std::atof(line.c_str()));
  if (flat.size() != spec.cycles * probes.size()) {
    t.fail_reason = "generated simulator printed " +
                    std::to_string(flat.size()) + " values, expected " +
                    std::to_string(spec.cycles * probes.size());
    return t;
  }
  for (std::uint64_t c = 0; c < spec.cycles; ++c)
    t.values.emplace_back(flat.begin() + static_cast<long>(c * probes.size()),
                          flat.begin() +
                              static_cast<long>((c + 1) * probes.size()));
  t.ran = true;
  return t;
}

EngineTrace run_gates(const Spec& spec) {
  EngineTrace t;
  t.engine = Engine::kGates;
  if (spec.has(CompKind::kAdapter) || spec.has(CompKind::kUntimed)) {
    t.skip_reason = "untimed/adapter behaviour has no gate-level image";
    return t;
  }
  System sys(spec);
  const auto probes = spec.probes();
  synth::SystemSynthSpec sspec;
  sspec.observe = probes;
  netlist::Netlist nl;
  synth::synthesize_system(sys.scheduler(), nl, sspec);

  // Bus widths of the observed outputs, recovered from the port names.
  std::vector<int> widths(probes.size(), 0);
  for (const auto& [name, gate] : nl.outputs()) {
    (void)gate;
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const std::string prefix = "net_" + probes[i] + "[";
      if (name.rfind(prefix, 0) == 0)
        widths[i] = std::max(widths[i],
                             std::stoi(name.substr(prefix.size())) + 1);
    }
  }
  for (std::size_t i = 0; i < probes.size(); ++i)
    if (widths[i] <= 0)
      throw std::runtime_error("gates: observed net '" + probes[i] +
                               "' has no output bus");

  const fixpt::Format f = spec.fmt();
  netlist::LevelizedSim sim(nl);
  for (std::uint64_t c = 0; c < spec.cycles; ++c) {
    sim.settle();
    std::vector<double> row;
    row.reserve(probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const long long mant = netlist::read_bus(sim, "net_" + probes[i],
                                               widths[i], f.is_signed);
      row.push_back(std::ldexp(static_cast<double>(mant), -f.frac_bits()));
    }
    t.values.push_back(std::move(row));
    sim.cycle();
  }
  t.ran = true;
  return t;
}

}  // namespace

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::kIterative: return "iterative";
    case Engine::kLevelized: return "levelized";
    case Engine::kCompiled: return "compiled";
    case Engine::kCppgen: return "cppgen";
    case Engine::kGates: return "gates";
  }
  return "?";
}

bool parse_engine(const std::string& name, Engine* out) {
  for (const Engine e : all_engines()) {
    if (name == engine_name(e)) {
      *out = e;
      return true;
    }
  }
  return false;
}

std::vector<Engine> all_engines() {
  return {Engine::kIterative, Engine::kLevelized, Engine::kCompiled,
          Engine::kCppgen, Engine::kGates};
}

int DiffResult::engines_ran() const {
  int n = 0;
  for (const EngineTrace& t : traces) n += t.ran ? 1 : 0;
  return n;
}

bool DiffResult::engine_failed() const {
  for (const EngineTrace& t : traces)
    if (!t.fail_reason.empty()) return true;
  for (const EngineTrace& t : noopt_traces)
    if (!t.fail_reason.empty()) return true;
  for (const EngineTrace& t : ckpt_traces)
    if (!t.fail_reason.empty()) return true;
  return false;
}

const Divergence* DiffResult::first() const {
  const Divergence* best = nullptr;
  for (const Divergence& d : divergences)
    if (best == nullptr || d.cycle < best->cycle) best = &d;
  return best;
}

std::string DiffResult::summary() const {
  std::ostringstream os;
  for (const EngineTrace& t : traces) {
    os << engine_name(t.engine) << ": ";
    if (t.ran)
      os << "ran, " << t.values.size() << " cycles";
    else if (!t.skip_reason.empty())
      os << "skipped (" << t.skip_reason << ")";
    else
      os << "FAILED (" << t.fail_reason << ")";
    os << "\n";
  }
  for (const EngineTrace& t : noopt_traces) {
    os << engine_name(t.engine) << " (passes off): ";
    if (t.ran)
      os << "ran, " << t.values.size() << " cycles";
    else if (!t.skip_reason.empty())
      os << "skipped (" << t.skip_reason << ")";
    else
      os << "FAILED (" << t.fail_reason << ")";
    os << "\n";
  }
  for (const EngineTrace& t : ckpt_traces) {
    os << engine_name(t.engine) << " (checkpoint at cycle " << ckpt_cycle
       << "): ";
    if (t.ran)
      os << "ran, " << t.values.size() << " cycles";
    else if (!t.skip_reason.empty())
      os << "skipped (" << t.skip_reason << ")";
    else
      os << "FAILED (" << t.fail_reason << ")";
    os << "\n";
  }
  for (const Divergence& d : divergences)
    os << "divergence " << engine_pair(d.ref, d.other) << " at cycle "
       << d.cycle << " net '" << d.net << "': " << d.ref_value << " vs "
       << d.other_value << "\n";
  for (const Divergence& d : pass_divergences)
    os << "pass divergence " << engine_pair(d.ref, d.other)
       << " (passes off) at cycle " << d.cycle << " net '" << d.net
       << "': " << d.ref_value << " vs " << d.other_value << "\n";
  for (const Divergence& d : ckpt_divergences)
    os << "checkpoint divergence " << engine_name(d.other)
       << " (resumed from cycle " << ckpt_cycle << ") at cycle " << d.cycle
       << " net '" << d.net << "': " << d.ref_value << " vs " << d.other_value
       << "\n";
  if (ok()) os << "all engines agree\n";
  return os.str();
}

DiffResult diff_run(const Spec& spec, const DiffOptions& opts) {
  DiffResult r;
  r.probes = spec.probes();
  const std::vector<Engine> engines =
      opts.engines.empty() ? all_engines() : opts.engines;

  for (const Engine e : engines) {
    EngineTrace t;
    try {
      switch (e) {
        case Engine::kIterative:
        case Engine::kLevelized:
          t = run_interpreted(spec, e, opts.passes);
          break;
        case Engine::kCompiled: t = run_compiled(spec, opts.passes); break;
        case Engine::kCppgen: t = run_cppgen(spec, opts); break;
        case Engine::kGates: t = run_gates(spec); break;
      }
    } catch (const std::exception& ex) {
      t = EngineTrace{};
      t.engine = e;
      t.fail_reason = ex.what();
    }
    if (t.ran && opts.mutant.enabled && opts.mutant.engine == e &&
        opts.mutant.cycle < t.values.size()) {
      for (std::size_t i = 0; i < r.probes.size(); ++i)
        if (r.probes[i] == opts.mutant.net)
          t.values[opts.mutant.cycle][i] += opts.mutant.delta;
    }
    r.traces.push_back(std::move(t));
  }

  // The passes-off axis: replay through the recursive interpreter (no
  // lowering at all) and the raw, unoptimized compiled tape.
  if (opts.pass_axis) {
    const auto replay = [&](Engine e, const opt::PassOptions& p) {
      EngineTrace t;
      try {
        t = (e == Engine::kIterative) ? run_interpreted(spec, e, p)
                                      : run_compiled(spec, p);
      } catch (const std::exception& ex) {
        t = EngineTrace{};
        t.engine = e;
        t.fail_reason = ex.what();
      }
      r.noopt_traces.push_back(std::move(t));
    };
    replay(Engine::kIterative, opt::PassOptions::none());
    replay(Engine::kCompiled, opt::PassOptions::raw());
  }

  // The checkpoint axis (VERIFY-006): snapshot at cycle k, restore into a
  // fresh engine, continue. Needs at least one cycle on each side of the
  // snapshot, so specs shorter than two cycles skip the axis. Replays run
  // only for the in-process engines actually selected above.
  if (opts.ckpt_axis && spec.cycles >= 2) {
    r.ckpt_cycle = opts.ckpt_cycle != 0 && opts.ckpt_cycle < spec.cycles
                       ? opts.ckpt_cycle
                       : 1 + (spec.seed * 2654435761u) % (spec.cycles - 1);
    for (const Engine e : engines) {
      if (e != Engine::kIterative && e != Engine::kLevelized &&
          e != Engine::kCompiled)
        continue;  // cppgen/gates have no in-process snapshot surface
      EngineTrace t;
      try {
        t = (e == Engine::kCompiled)
                ? run_compiled_ckpt(spec, opts.passes, r.ckpt_cycle)
                : run_interpreted_ckpt(spec, e, opts.passes, r.ckpt_cycle);
      } catch (const std::exception& ex) {
        t = EngineTrace{};
        t.engine = e;
        t.fail_reason = ex.what();
      }
      // A mutant models an engine bug, which would survive a checkpoint:
      // apply it to the resumed trace too, so the mutated engine's replay
      // still matches its (mutated) straight-through trace.
      if (t.ran && opts.mutant.enabled && opts.mutant.engine == e &&
          opts.mutant.cycle < t.values.size()) {
        for (std::size_t i = 0; i < r.probes.size(); ++i)
          if (r.probes[i] == opts.mutant.net)
            t.values[opts.mutant.cycle][i] += opts.mutant.delta;
      }
      r.ckpt_traces.push_back(std::move(t));
    }
  }

  // Compare every ran engine against the first one that ran.
  const EngineTrace* ref = nullptr;
  for (const EngineTrace& t : r.traces)
    if (t.ran) {
      ref = &t;
      break;
    }
  const auto first_divergence = [&](const EngineTrace& t,
                                    std::vector<Divergence>& out) {
    bool found = false;
    for (std::uint64_t c = 0; c < ref->values.size() && !found; ++c) {
      for (std::size_t i = 0; i < r.probes.size() && !found; ++i) {
        const double a = ref->values[c][i];
        const double b = t.values[c][i];
        if (a != b) {
          out.push_back(
              Divergence{ref->engine, t.engine, c, r.probes[i], a, b});
          found = true;
        }
      }
    }
  };
  if (ref != nullptr) {
    for (const EngineTrace& t : r.traces) {
      if (!t.ran || &t == ref) continue;
      first_divergence(t, r.divergences);
    }
    for (const EngineTrace& t : r.noopt_traces) {
      if (!t.ran) continue;
      first_divergence(t, r.pass_divergences);
    }
  }

  // Checkpoint replays diff against the *same engine's* straight-through
  // trace: a resumed run must be bit-identical to an uninterrupted one.
  for (const EngineTrace& t : r.ckpt_traces) {
    if (!t.ran) continue;
    const EngineTrace* straight = nullptr;
    for (const EngineTrace& s : r.traces)
      if (s.engine == t.engine && s.ran) straight = &s;
    if (straight == nullptr) continue;
    bool found = false;
    for (std::uint64_t c = 0; c < straight->values.size() && !found; ++c) {
      for (std::size_t i = 0; i < r.probes.size() && !found; ++i) {
        const double a = straight->values[c][i];
        const double b = t.values[c][i];
        if (a != b) {
          r.ckpt_divergences.push_back(
              Divergence{t.engine, t.engine, c, r.probes[i], a, b});
          found = true;
        }
      }
    }
  }

  if (opts.diagnostics != nullptr) {
    diag::DiagEngine& de = *opts.diagnostics;
    for (const EngineTrace& t : r.traces) {
      if (!t.skip_reason.empty())
        de.note("VERIFY-003", std::string("engine '") + engine_name(t.engine) + "'",
                "skipped: " + t.skip_reason);
      if (!t.fail_reason.empty())
        de.error("VERIFY-002", std::string("engine '") + engine_name(t.engine) + "'",
                 "engine failed on generated spec (seed " +
                     std::to_string(spec.seed) + "): " + t.fail_reason);
    }
    for (const EngineTrace& t : r.noopt_traces) {
      if (!t.fail_reason.empty())
        de.error("VERIFY-002",
                 std::string("engine '") + engine_name(t.engine) +
                     "' (passes off)",
                 "engine failed on generated spec (seed " +
                     std::to_string(spec.seed) + "): " + t.fail_reason);
    }
    for (const EngineTrace& t : r.ckpt_traces) {
      if (!t.fail_reason.empty())
        de.error("VERIFY-002",
                 std::string("engine '") + engine_name(t.engine) +
                     "' (checkpoint replay)",
                 "engine failed on generated spec (seed " +
                     std::to_string(spec.seed) + "): " + t.fail_reason);
    }
    for (const Divergence& d : r.divergences) {
      auto& rec = de.error(
          "VERIFY-001", engine_pair(d.ref, d.other),
          "cross-representation trace divergence on net '" + d.net + "'");
      rec.cycle = d.cycle;
      char buf[128];
      std::snprintf(buf, sizeof buf, "%s = %.17g, %s = %.17g",
                    engine_name(d.ref), d.ref_value, engine_name(d.other),
                    d.other_value);
      rec.note(buf);
      rec.note("spec: seed " + std::to_string(spec.seed) + ", " +
               std::to_string(spec.comps.size()) + " components, " +
               std::to_string(spec.cycles) + " cycles");
    }
    for (const Divergence& d : r.pass_divergences) {
      auto& rec = de.error(
          "VERIFY-005", engine_pair(d.ref, d.other),
          "optimizer pass pipeline changed observable behaviour on net '" +
              d.net + "'");
      rec.cycle = d.cycle;
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "%s (passes on) = %.17g, %s (passes off) = %.17g",
                    engine_name(d.ref), d.ref_value, engine_name(d.other),
                    d.other_value);
      rec.note(buf);
      rec.note("spec: seed " + std::to_string(spec.seed) + ", " +
               std::to_string(spec.comps.size()) + " components, " +
               std::to_string(spec.cycles) + " cycles");
    }
    for (const Divergence& d : r.ckpt_divergences) {
      auto& rec = de.error(
          "VERIFY-006", std::string("engine '") + engine_name(d.other) + "'",
          "checkpoint replay diverged from straight-through run on net '" +
              d.net + "'");
      rec.cycle = d.cycle;
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "straight-through = %.17g, resumed = %.17g", d.ref_value,
                    d.other_value);
      rec.note(buf);
      rec.note("snapshot taken at cycle " + std::to_string(r.ckpt_cycle));
      rec.note("spec: seed " + std::to_string(spec.seed) + ", " +
               std::to_string(spec.comps.size()) + " components, " +
               std::to_string(spec.cycles) + " cycles");
    }
  }
  return r;
}

std::vector<DiffResult> diff_run_batch(const std::vector<Spec>& specs,
                                       const DiffOptions& opts, unsigned jobs) {
  std::vector<DiffResult> results(specs.size());
  // Each lane reports into a private engine; the sinks are merged into the
  // caller's engine in spec order below, so the diagnostic stream cannot
  // depend on worker interleaving.
  std::vector<diag::DiagEngine> sinks(specs.size());
  par::Pool::shared().parallel_for(
      specs.size(),
      [&](std::size_t i) {
        DiffOptions local = opts;
        local.diagnostics = opts.diagnostics != nullptr ? &sinks[i] : nullptr;
        results[i] = diff_run(specs[i], local);
      },
      jobs == 0 ? par::Pool::hardware_lanes() : jobs);
  if (opts.diagnostics != nullptr) {
    for (const auto& s : sinks)
      for (const auto& d : s.all()) opts.diagnostics->report(d);
  }
  return results;
}

}  // namespace asicpp::verify
