// Differential execution driver: one spec, every execution path.
//
// Elaborates a generated design once per engine and replays it through
// every representation the environment can translate the description into
// (section 4-6 of the paper). Engines are resolved by name through
// engine::Registry::global(); the built-in set, in canonical order:
//
//   iterative — interpreted CycleScheduler, iterative three-phase sweep
//   levelized — interpreted CycleScheduler, levelized static schedule
//               (falls back iteratively for unschedulable systems)
//   compiled  — CompiledSystem flat-tape simulation
//   cppgen    — the emitted standalone C++ simulator, compiled with the
//               host compiler, run, and its printed trace parsed back
//   gates     — whole-system synthesis to a gate netlist, simulated with
//               netlist::LevelizedSim, output buses read back as values
//   jit       — the in-process JIT (src/jit): the optimized tape emitted
//               as C++, compiled to a shared object and dlopen'd
//   batched   — the lane-batched SoA evaluator (src/batch): the spec runs
//               in every lane of an N-wide batch, the reported trace comes
//               from lane seed % N, and lane invariance is asserted every
//               cycle — so each fuzz seed also sweeps lane positions
//
// Every engine produces a cycle-by-cycle trace of all component output
// nets; traces are compared bit for bit against the first engine that ran
// and the first divergence per pair is reported as a structured VERIFY-001
// diagnostic. Engines that cannot represent a spec (dataflow adapters
// have no compiled/gate image, untimed closures have no generated-code
// image) are skipped with VERIFY-003; an engine that throws mid-run is a
// finding in itself (VERIFY-002). An unknown engine name throws
// std::invalid_argument listing the registered names — the same message
// every selection surface (diff_run, asicpp-fuzz --engines, benches)
// produces.
//
// In addition to the engine axis, every spec is replayed with the
// optimizer pass pipeline disabled (`pass_axis`): each registered engine
// with Capabilities::pass_axis contributes one replay using its
// noopt_passes() pipeline (the interpreted engine falls back to the
// original recursive graph walk, the compiled engine to the raw,
// unoptimized tape). A divergence between the optimized reference and a
// passes-off replay is a VERIFY-005 finding — an optimization pass
// changed observable behaviour.
//
// A third axis exercises checkpoint/restore (`ckpt_axis`): every selected
// engine with Capabilities::checkpointable (iterative, levelized,
// compiled, jit, batched) is run to a cycle k, snapshotted through its save_state()
// stream, the snapshot is restored into a *freshly built* engine, and the
// run continues there. The stitched prefix+resumed trace must be
// bit-identical to that engine's straight-through trace; a mismatch is a
// VERIFY-006 finding — snapshot state is incomplete or restore perturbed
// the simulation. The cppgen and gates engines have no in-process
// snapshot surface and are covered transitively (they are compiled from
// the same scheduler state).
//
// Stable code registry (documented in DESIGN.md section 7):
//   VERIFY-001 cross-representation trace divergence
//   VERIFY-002 engine failed to execute the spec
//   VERIFY-003 engine skipped (spec outside the engine's domain)
//   VERIFY-004 auto-shrink summary (see verify/shrink.h)
//   VERIFY-005 optimizer pass pipeline changed observable behaviour
//   VERIFY-006 checkpoint/restore replay diverged from straight-through run
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diag/diag.h"
#include "engine/engine.h"
#include "opt/options.h"
#include "verify/gen.h"

namespace asicpp::verify {

/// Test-only hook: perturb one engine's captured trace at (cycle, net) by
/// `delta`, faking a translation bug so the detection and shrinking
/// machinery can be exercised end to end. Addressed by net *name* so the
/// injected divergence survives structural shrinking.
struct TraceMutant {
  bool enabled = false;
  std::string engine = "iterative";  ///< registry name of the engine to mutate
  std::uint64_t cycle = 0;
  std::string net;
  double delta = 1.0;
};

struct DiffOptions {
  /// Registry names of the engines to run, in order; the first that runs
  /// is the reference trace. Empty = every registered engine in canonical
  /// order. Unknown names throw std::invalid_argument listing the
  /// registered set.
  std::vector<std::string> engines;
  /// Scratch directory for the generated-simulator engine (default:
  /// $TMPDIR or /tmp).
  std::string workdir;
  /// Host compiler for the generated simulator and the jit engine.
  std::string cxx = "c++";
  /// Artifact-store directory override for engines with cacheable compile
  /// products (jit). Empty = the $ASICPP_STORE_DIR / $ASICPP_JIT_CACHE
  /// resolution chain (see pipeline/artifact.h).
  std::string store_dir;
  /// Route VERIFY diagnostics into this engine (optional; the DiffResult
  /// carries the findings either way).
  diag::DiagEngine* diagnostics = nullptr;
  TraceMutant mutant;
  /// Optimizer pipeline applied to every engine's lowered graphs.
  opt::PassOptions passes{};
  /// Replay the spec with the optimizer disabled (recursive interpreter +
  /// raw compiled tape) and diff against the optimized reference;
  /// mismatches are VERIFY-005 findings.
  bool pass_axis = true;
  /// Snapshot each selected checkpointable engine at cycle k, restore into
  /// a fresh engine, and continue; mismatches against the straight-through
  /// trace are VERIFY-006 findings.
  bool ckpt_axis = true;
  /// Checkpoint cycle k for the ckpt axis. 0 (the default) derives a
  /// pseudo-random 1 <= k < cycles from the spec seed, so a fuzz campaign
  /// sweeps the checkpoint position across the trace.
  std::uint64_t ckpt_cycle = 0;
  /// Lane count for the batched engine's SoA replay (>= 1); forwarded as
  /// TraceOptions::lanes. The reported lane is seed % lanes.
  unsigned lanes = 4;
};

/// One engine's captured trace; `engine` is the registry name.
using EngineTrace = engine::Trace;

struct Divergence {
  std::string ref;    ///< reference engine (registry name)
  std::string other;  ///< diverging engine (registry name)
  std::uint64_t cycle = 0;
  std::string net;
  double ref_value = 0.0;
  double other_value = 0.0;
};

struct DiffResult {
  std::vector<std::string> probes;
  std::vector<EngineTrace> traces;
  /// First divergence of each non-reference engine against the reference.
  std::vector<Divergence> divergences;
  /// Passes-off replays (pass_axis) and their divergences against the
  /// optimized reference (VERIFY-005).
  std::vector<EngineTrace> noopt_traces;
  std::vector<Divergence> pass_divergences;
  /// Checkpoint-replay traces (ckpt_axis): prefix cycles run on a fresh
  /// engine, a snapshot handed to a second fresh engine, the rest run
  /// there. Divergences are against the same engine's straight-through
  /// trace (VERIFY-006).
  std::vector<EngineTrace> ckpt_traces;
  std::vector<Divergence> ckpt_divergences;
  /// Checkpoint cycle the ckpt axis actually used (0 when the axis was
  /// off or the spec was too short to snapshot mid-run).
  std::uint64_t ckpt_cycle = 0;

  int engines_ran() const;
  bool engine_failed() const;
  /// Clean: every selected engine either agreed cycle-for-cycle with the
  /// reference or was legitimately skipped, the passes-off replays agreed
  /// too, and every checkpoint replay resumed bit-identically.
  bool ok() const {
    return divergences.empty() && pass_divergences.empty() &&
           ckpt_divergences.empty() && !engine_failed();
  }
  /// The earliest divergence (by cycle), or nullptr.
  const Divergence* first() const;
  std::string summary() const;
};

/// Run `spec` through the selected engines and compare all traces.
DiffResult diff_run(const Spec& spec, const DiffOptions& opts = {});

/// Run many specs through diff_run across `jobs` worker lanes (1 = serial,
/// 0 = hardware). Deterministic by construction: results come back in spec
/// order, each spec gets a private DiagEngine sink, and those sinks are
/// merged into opts.diagnostics in spec order after every spec completes —
/// so results and diagnostics are byte-identical for any job count.
std::vector<DiffResult> diff_run_batch(const std::vector<Spec>& specs,
                                       const DiffOptions& opts = {},
                                       unsigned jobs = 1);

}  // namespace asicpp::verify
