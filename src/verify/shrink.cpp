#include "verify/shrink.h"

#include <chrono>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

#include "par/pool.h"

namespace asicpp::verify {

namespace {

/// Component-axis candidates evaluated per fan-out round. Constant — never
/// derived from ShrinkOptions::jobs — so the search trajectory (accepted
/// candidates, attempt tally, minimal spec) is identical for any job count.
constexpr std::size_t kShrinkFanout = 4;

bool is_pool_kind(CompKind k) {
  return k == CompKind::kSfg || k == CompKind::kFsm ||
         k == CompKind::kDispatch;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Search state: the "still fails" predicate with a run budget, keeping
/// the differential result of the last accepted (failing) candidate.
struct Ctx {
  const DiffOptions* dopts = nullptr;
  int attempts = 0;
  int max_attempts = 0;
  bool has_deadline = false;
  bool expired = false;  ///< the wall-clock budget ran out mid-search
  std::chrono::steady_clock::time_point deadline{};
  DiffResult last;

  /// Wall-clock budget check; latches `expired` the first time it trips.
  bool out_of_time() {
    if (expired) return true;
    if (has_deadline && std::chrono::steady_clock::now() >= deadline)
      expired = true;
    return expired;
  }

  bool still_fails(const Spec& cand) {
    if (attempts >= max_attempts || out_of_time()) return false;
    if (!validate(cand).empty()) return false;
    ++attempts;
    DiffOptions o = *dopts;
    o.diagnostics = nullptr;  // stay quiet during the search
    DiffResult r = diff_run(cand, o);
    if (r.ok()) return false;
    last = std::move(r);
    return true;
  }
};

/// Remove component `idx`, re-routing consumers of its net to the
/// component's own first input net so chains collapse. Sources (no
/// inputs) are only removable once nothing reads them.
bool remove_comp(const Spec& s, std::size_t idx, Spec* out) {
  const CompSpec& victim = s.comps[idx];
  const int bypass = victim.inputs.empty() ? -1 : victim.inputs[0];
  *out = s;
  out->comps.erase(out->comps.begin() + static_cast<long>(idx));
  for (CompSpec& c : out->comps)
    for (int& in : c.inputs)
      if (in == victim.net) {
        if (bypass < 0) return false;
        in = bypass;
      }
  return true;
}

/// After erasing pool slot `removed`, renumber all pool references.
/// Fails when anything still referenced the removed slot.
bool shift_refs(CompSpec& c, int removed) {
  const auto fix = [removed](int& v) {
    if (v == removed) return false;
    if (v > removed) --v;
    return true;
  };
  for (ExprSpec& e : c.exprs)
    if (!fix(e.a) || !fix(e.b)) return false;
  for (RegSpec& r : c.regs)
    if (!fix(r.next)) return false;
  return fix(c.out) && fix(c.out_alt);
}

bool op_uses_b(OpKind op) {
  return op != OpKind::kNeg && op != OpKind::kCast;
}

/// Drop expressions no output / register next-value (transitively)
/// reaches. Only the trailing dead run is removable without renumbering.
bool truncate_exprs(CompSpec& c) {
  if (c.exprs.empty()) return false;
  const std::size_t data_inputs =
      c.kind == CompKind::kDispatch ? 0 : c.inputs.size();
  const int base = static_cast<int>(c.regs.size() + data_inputs) + 2;
  std::vector<char> used(c.exprs.size(), 0);
  const auto mark = [&](int idx, const auto& self) -> void {
    if (idx < base) return;
    const std::size_t e = static_cast<std::size_t>(idx - base);
    if (used[e]) return;
    used[e] = 1;
    self(c.exprs[e].a, self);
    if (op_uses_b(c.exprs[e].op)) self(c.exprs[e].b, self);
  };
  mark(c.out, mark);
  if (c.kind == CompKind::kFsm || c.kind == CompKind::kDispatch)
    mark(c.out_alt, mark);
  for (const RegSpec& r : c.regs) mark(r.next, mark);
  bool changed = false;
  while (!c.exprs.empty() && !used.back()) {
    c.exprs.pop_back();
    used.pop_back();
    changed = true;
  }
  return changed;
}

}  // namespace

ShrinkResult shrink(const Spec& failing, const DiffOptions& dopts,
                    const ShrinkOptions& sopts) {
  Ctx ctx;
  ctx.dopts = &dopts;
  ctx.max_attempts = sopts.max_attempts;
  if (sopts.wall_clock_s > 0.0) {
    ctx.has_deadline = true;
    ctx.deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(sopts.wall_clock_s));
  }

  ShrinkResult res;
  res.minimal = failing;
  if (!ctx.still_fails(failing)) {
    // Not actually failing (or invalid), or the budget expired before the
    // failure could even be confirmed: nothing to reduce. Report the
    // differential result so callers can see why.
    DiffOptions o = dopts;
    o.diagnostics = nullptr;
    res.final_diff = diff_run(failing, o);
    res.attempts = ctx.attempts;
    res.wall_expired = ctx.expired;
    return res;
  }

  Spec cur = failing;
  bool progress = true;
  while (progress && ctx.attempts < ctx.max_attempts && !ctx.out_of_time()) {
    progress = false;

    // Cycles: cut to just past the first divergence; with engine
    // failures only (no divergence cycle to aim at), bisect downward.
    if (const Divergence* d = ctx.last.first()) {
      if (d->cycle + 1 < cur.cycles) {
        Spec cand = cur;
        cand.cycles = d->cycle + 1;
        if (ctx.still_fails(cand)) {
          cur = std::move(cand);
          ++res.reductions;
          progress = true;
        }
      }
    } else {
      while (cur.cycles > 1 && ctx.attempts < ctx.max_attempts) {
        Spec cand = cur;
        cand.cycles = cur.cycles / 2;
        if (!ctx.still_fails(cand)) break;
        cur = std::move(cand);
        ++res.reductions;
        progress = true;
      }
    }

    // Components, last to first, so consumers go before their sources.
    // Candidates are gathered into fixed-size chunks and evaluated across
    // sopts.jobs lanes; every chunk member is run (and billed against the
    // attempt budget) and the first failing candidate in index order is
    // accepted, so the trajectory matches jobs == 1 exactly. Inside an
    // outer parallel region (a fuzz worker shrinking its own seed) the
    // chunk runs serially — same candidates, same outcome.
    {
      std::size_t i = cur.comps.size();
      while (i > 0 && cur.comps.size() > 1 && ctx.attempts < ctx.max_attempts &&
             !ctx.out_of_time()) {
        std::vector<std::pair<std::size_t, Spec>> chunk;
        const std::size_t budget = std::min(
            kShrinkFanout,
            static_cast<std::size_t>(ctx.max_attempts - ctx.attempts));
        while (i > 0 && chunk.size() < budget) {
          --i;
          Spec cand;
          if (!remove_comp(cur, i, &cand)) continue;
          if (!validate(cand).empty()) continue;
          chunk.emplace_back(i, std::move(cand));
        }
        if (chunk.empty()) continue;

        DiffOptions quiet = dopts;
        quiet.diagnostics = nullptr;  // stay quiet during the search
        std::vector<DiffResult> rs(chunk.size());
        const bool threaded = sopts.jobs != 1 && chunk.size() > 1 &&
                              !par::Pool::in_parallel_region();
        if (threaded) {
          par::Pool::shared().parallel_for(
              chunk.size(),
              [&](std::size_t k) { rs[k] = diff_run(chunk[k].second, quiet); },
              sopts.jobs);
        } else {
          for (std::size_t k = 0; k < chunk.size(); ++k)
            rs[k] = diff_run(chunk[k].second, quiet);
        }
        ctx.attempts += static_cast<int>(chunk.size());

        for (std::size_t k = 0; k < chunk.size(); ++k) {
          if (rs[k].ok()) continue;
          cur = std::move(chunk[k].second);
          ctx.last = std::move(rs[k]);
          ++res.reductions;
          progress = true;
          // Later chunk members were built against the pre-acceptance
          // spec; rewind the scan so they are reconsidered against `cur`.
          i = chunk[k].first;
          break;
        }
      }
    }

    // Signals: re-point outputs and register next-values at the
    // shallowest pool entry that still fails, then drop dead registers
    // and unread inputs.
    for (std::size_t i = 0;
         i < cur.comps.size() && ctx.attempts < ctx.max_attempts; ++i) {
      if (!is_pool_kind(cur.comps[i].kind)) continue;
      const auto reduce_index = [&](int CompSpec::* field) {
        for (int v = 0; v < cur.comps[i].*field; ++v) {
          Spec cand = cur;
          cand.comps[i].*field = v;
          if (ctx.still_fails(cand)) {
            cur = std::move(cand);
            ++res.reductions;
            progress = true;
            return;
          }
        }
      };
      reduce_index(&CompSpec::out);
      if (cur.comps[i].kind != CompKind::kSfg) reduce_index(&CompSpec::out_alt);
      for (std::size_t k = 0; k < cur.comps[i].regs.size(); ++k) {
        for (int v = 0; v < cur.comps[i].regs[k].next; ++v) {
          Spec cand = cur;
          cand.comps[i].regs[k].next = v;
          if (ctx.still_fails(cand)) {
            cur = std::move(cand);
            ++res.reductions;
            progress = true;
            break;
          }
        }
      }
      for (std::size_t k = cur.comps[i].regs.size(); k-- > 0;) {
        Spec cand = cur;
        cand.comps[i].regs.erase(cand.comps[i].regs.begin() +
                                 static_cast<long>(k));
        if (!shift_refs(cand.comps[i], static_cast<int>(k))) continue;
        if (ctx.still_fails(cand)) {
          cur = std::move(cand);
          ++res.reductions;
          progress = true;
        }
      }
      if (cur.comps[i].kind != CompKind::kDispatch) {
        for (std::size_t j = cur.comps[i].inputs.size(); j-- > 0;) {
          Spec cand = cur;
          cand.comps[i].inputs.erase(cand.comps[i].inputs.begin() +
                                     static_cast<long>(j));
          if (!shift_refs(cand.comps[i],
                          static_cast<int>(cand.comps[i].regs.size() + j)))
            continue;
          if (ctx.still_fails(cand)) {
            cur = std::move(cand);
            ++res.reductions;
            progress = true;
          }
        }
      }
    }

    // Canonicalize: zero dead alternate outputs, truncate unreachable
    // expression tails. One candidate, one verification run.
    {
      Spec cand = cur;
      bool changed = false;
      for (CompSpec& c : cand.comps) {
        if (c.kind != CompKind::kFsm && c.kind != CompKind::kDispatch &&
            c.out_alt != 0) {
          c.out_alt = 0;
          changed = true;
        }
        if (is_pool_kind(c.kind) && truncate_exprs(c)) changed = true;
      }
      if (changed && ctx.still_fails(cand)) {
        cur = std::move(cand);
        ++res.reductions;
        progress = true;
      }
    }
  }

  res.minimal = cur;
  res.attempts = ctx.attempts;
  res.wall_expired = ctx.expired;
  res.final_diff = std::move(ctx.last);

  if (dopts.diagnostics != nullptr) {
    auto& rec = dopts.diagnostics->note(
        "VERIFY-004", "shrink",
        "minimized seed " + std::to_string(failing.seed) + " repro to " +
            std::to_string(res.minimal.comps.size()) + " component(s), " +
            std::to_string(res.minimal.cycles) + " cycle(s)");
    rec.note("was " + std::to_string(failing.comps.size()) +
             " component(s), " + std::to_string(failing.cycles) +
             " cycle(s); " + std::to_string(res.reductions) +
             " reductions in " + std::to_string(res.attempts) +
             " differential runs");
    if (res.wall_expired) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "wall-clock budget (%g s) expired; emitting the "
                    "best-so-far repro",
                    sopts.wall_clock_s);
      rec.note(buf);
    }
  }
  return res;
}

void emit_repro(const Spec& spec, const DiffOptions& opts, std::ostream& os) {
  os << "// Minimal differential repro emitted by asicpp-fuzz (seed "
     << spec.seed << ").\n"
     << "// Canonical spec:\n";
  {
    std::istringstream text(to_text(spec));
    std::string line;
    while (std::getline(text, line)) os << "//   " << line << "\n";
  }
  os << "//\n"
     << "// Build from the repository root after building the libraries:\n"
     << "//   c++ -O2 -std=c++20 -I src repro.cpp \\\n"
     << "//     build/src/verify/libasicpp_verify.a "
        "build/src/synth/libasicpp_synth.a \\\n"
     << "//     build/src/hdl/libasicpp_hdl.a build/src/sim/libasicpp_sim.a "
        "\\\n"
     << "//     build/src/netlist/libasicpp_netlist.a \\\n"
     << "//     build/src/sched/libasicpp_sched.a "
        "build/src/fsm/libasicpp_fsm.a \\\n"
     << "//     build/src/df/libasicpp_df.a build/src/sfg/libasicpp_sfg.a "
        "\\\n"
     << "//     build/src/fixpt/libasicpp_fixpt.a "
        "build/src/diag/libasicpp_diag.a -o repro\n"
     << "#include <cstdio>\n"
     << "\n"
     << "#include \"verify/diffrun.h\"\n"
     << "#include \"verify/gen.h\"\n"
     << "\n"
     << "int main() {\n"
     << "  using namespace asicpp::verify;\n";
  emit_spec_cpp(spec, "spec", os);
  os << "\n  DiffOptions opts;\n";
  for (const std::string& e : opts.engines)
    os << "  opts.engines.push_back(\"" << e << "\");\n";
  if (opts.mutant.enabled) {
    os << "  // Test-only trace mutant carried over from the fuzz run; the\n"
       << "  // divergence below is injected, not a real translation bug.\n"
       << "  opts.mutant.enabled = true;\n"
       << "  opts.mutant.engine = \"" << opts.mutant.engine << "\";\n"
       << "  opts.mutant.cycle = " << opts.mutant.cycle << ";\n"
       << "  opts.mutant.net = \"" << opts.mutant.net << "\";\n"
       << "  opts.mutant.delta = " << fmt_double(opts.mutant.delta) << ";\n";
  }
  os << "\n"
     << "  const DiffResult r = diff_run(spec, opts);\n"
     << "  std::fputs(r.summary().c_str(), stdout);\n"
     << "  return r.ok() ? 0 : 1;\n"
     << "}\n";
}

}  // namespace asicpp::verify
