// Auto-shrinking of failing differential specs.
//
// When diff_run finds a divergence, the raw generated system is rarely the
// story you want to debug: most of its components, expressions, and cycles
// are noise. The shrinker delta-debugs the *spec* — never the live system —
// against the "still fails" predicate, over three structural axes:
//
//   components — drop one component at a time (consumers of its net are
//                re-routed to the dropped component's own input net, so
//                chains collapse instead of pinning their whole depth);
//   signals    — re-point outputs / register next-values at earlier,
//                shallower pool entries and truncate the unreachable tail
//                of each expression forest;
//   cycles     — cut the trace to just past the first divergence.
//
// Reduction is greedy-to-fixpoint: passes repeat until a full round makes
// no progress or the run budget is exhausted. The minimized spec can be
// emitted as a standalone compilable C++ program (`emit_repro`) that
// rebuilds the system and reruns the differential comparison.
#pragma once

#include <iosfwd>

#include "verify/diffrun.h"
#include "verify/gen.h"

namespace asicpp::verify {

struct ShrinkOptions {
  /// Cap on diff_run invocations across the whole reduction.
  int max_attempts = 400;
  /// Worker lanes for candidate evaluation on the component axis
  /// (1 = serial, 0 = hardware). Candidates are evaluated in fixed-size
  /// chunks whose size never depends on the job count, so the minimal
  /// spec and the attempt tally are identical for any value.
  unsigned jobs = 1;
  /// Wall-clock budget in seconds for the whole reduction (0 = none).
  /// On expiry the search stops where it stands and the best-so-far spec
  /// is returned — still failing, just not fully minimized — with
  /// ShrinkResult::wall_expired set and a note on the VERIFY-004 record.
  double wall_clock_s = 0.0;
};

struct ShrinkResult {
  Spec minimal;
  int attempts = 0;    ///< diff_run invocations spent
  int reductions = 0;  ///< accepted reduction steps
  /// The wall-clock budget ran out before the search converged; `minimal`
  /// is the best spec accepted so far.
  bool wall_expired = false;
  /// Differential result of the minimized spec (still failing).
  DiffResult final_diff;
};

/// Reduce `failing` (a spec for which diff_run(spec, dopts) is not ok)
/// to a minimal still-failing spec. When `dopts.diagnostics` is set, a
/// VERIFY-004 note summarizing the reduction is reported.
ShrinkResult shrink(const Spec& failing, const DiffOptions& dopts,
                    const ShrinkOptions& sopts = {});

/// Emit a standalone C++ translation unit that rebuilds `spec`, reruns the
/// differential comparison with the same engine selection (and injected
/// mutant, when one was enabled), prints the trace summary, and exits
/// nonzero on divergence.
void emit_repro(const Spec& spec, const DiffOptions& opts, std::ostream& os);

}  // namespace asicpp::verify
