// Seeded random system generation for differential verification.
//
// The paper's claim (sections 4-6) is that one C++ description keeps the
// same clock-cycle/bit-true semantics across every representation it is
// translated into: interpreted simulation, compiled-code simulation, the
// generated standalone C++ simulator, and synthesized gates. The fuzzing
// harness checks that claim on *generated* designs. Central to it is a
// declarative `Spec` — a seed-free, structural description of a mixed
// FSM/SFG/dispatch/dataflow system — that can be
//
//   * generated deterministically from a seed (`generate`),
//   * materialized into a fresh live system per engine (`System`),
//   * structurally reduced by the auto-shrinker (verify/shrink.h),
//   * serialized for a fuzz corpus (`to_text`) and re-emitted as
//     compilable C++ builder code for standalone repros (`emit_spec_cpp`).
//
// Components are topologically ordered: component i drives net "w<net>"
// and may only read nets of earlier components, so every spec is a DAG by
// construction and the token-production rule breaks the apparent cycles.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "df/process.h"
#include "fixpt/format.h"
#include "fsm/fsm.h"
#include "sched/cyclesched.h"
#include "sched/dfadapter.h"
#include "sched/fsmcomp.h"
#include "sched/untimed.h"
#include "sfg/clk.h"
#include "sfg/sig.h"

namespace asicpp::verify {

/// Expression node over a component's value pool. Operands `a` and `b`
/// index the pool: registers first, then declared inputs, then the two
/// constants (0.75, -1.5), then previously built expressions.
enum class OpKind {
  kAdd,     ///< a + b
  kSub,     ///< a - b
  kMulCast, ///< (a * b).cast(fmt) — bounds bit growth
  kMux,     ///< mux(a > b, a, b)
  kNeg,     ///< -a
  kCmpXor,  ///< (a == b) ^ (a < b)
  kCast,    ///< a.cast(fmt)
};

const char* op_name(OpKind op);

struct ExprSpec {
  OpKind op = OpKind::kAdd;
  int a = 0;
  int b = 0;
};

enum class CompKind {
  kSfg,      ///< always-on datapath (a source when it has no inputs)
  kFsm,      ///< two-state Mealy FSM with a registered guard
  kOpSource, ///< phase register emitting opcodes 1/2 for a dispatcher
  kDispatch, ///< instruction-dispatched datapath (two instructions)
  kAdapter,  ///< dataflow process behind a DataflowAdapter (1:1 rates)
  kUntimed,  ///< stateless untimed block (native C++ behaviour)
};

const char* comp_kind_name(CompKind k);

struct RegSpec {
  double init = 0.0;
  int next = 0;  ///< pool index of the next-value expression
};

struct CompSpec {
  CompKind kind = CompKind::kSfg;
  int net = 0;                  ///< output net id; the net is named "w<net>"
  std::vector<int> inputs;      ///< net ids read (must be earlier comps' nets)
  std::vector<RegSpec> regs;    ///< local registers
  std::vector<ExprSpec> exprs;  ///< expression forest appended to the pool
  int out = 0;                  ///< pool index of the output expression
  /// kFsm: output of the alternate state's SFG; kDispatch: output of the
  /// second instruction's SFG. Ignored otherwise.
  int out_alt = 0;
  /// kFsm: the registered guard is `reg0 < guard_thresh`.
  double guard_thresh = 0.0;
  /// kAdapter: token gain; kUntimed: multiplier of the native behaviour.
  double gain = 2.0;

  int pool_size() const;  ///< regs + inputs + 2 constants + exprs
};

struct Spec {
  int wl = 10;   ///< total wordlength of the system format
  int iwl = 3;   ///< integer bits (excluding sign)
  std::uint64_t cycles = 48;  ///< differential trace length
  unsigned seed = 0;          ///< provenance only; the spec is seed-free
  std::vector<CompSpec> comps;

  fixpt::Format fmt() const {
    return fixpt::Format{wl, iwl, true, fixpt::Quant::kRound,
                         fixpt::Overflow::kSaturate};
  }
  std::string net_name(int net) const { return "w" + std::to_string(net); }
  bool has(CompKind k) const;
  /// Output nets of every component, in component order (the probe list).
  std::vector<std::string> probes() const;
};

/// Structural validity check: topological input references, pool index
/// bounds, dispatch/op-source pairing, format sanity. Returns an empty
/// string when valid, else a one-line description of the first problem.
std::string validate(const Spec& s);

struct GenConfig {
  int min_comps = 3;
  int max_comps = 8;
  int min_wl = 7;
  int max_wl = 14;
  std::uint64_t min_cycles = 24;
  std::uint64_t max_cycles = 64;
  int max_exprs = 8;  ///< expression-forest depth per component
  bool allow_fsm = true;
  bool allow_dispatch = true;
  bool allow_adapter = true;
  bool allow_untimed = true;
};

/// Deterministically generate a valid random spec for `seed`.
Spec generate(const GenConfig& cfg, unsigned seed);

/// A live materialization of a Spec: one clock, one cycle scheduler, and
/// all the owned design objects. Each engine of the differential driver
/// builds its own System from the same spec.
class System {
 public:
  explicit System(const Spec& spec);
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  sched::CycleScheduler& scheduler() { return *sched_; }
  sfg::Clk& clk() { return *clk_; }
  const Spec& spec() const { return spec_; }

 private:
  void build_comp(const CompSpec& c);

  Spec spec_;
  std::unique_ptr<sfg::Clk> clk_;
  std::unique_ptr<sched::CycleScheduler> sched_;
  std::vector<std::unique_ptr<sfg::Reg>> regs_;
  std::vector<std::unique_ptr<sfg::Sig>> sigs_;
  std::vector<std::unique_ptr<sfg::Sfg>> sfgs_;
  std::vector<std::unique_ptr<fsm::Fsm>> fsms_;
  std::vector<std::unique_ptr<df::Process>> procs_;
  std::vector<std::unique_ptr<sched::Component>> comps_;
};

/// Canonical single-line-per-component text form (corpus files, dedup,
/// determinism tests).
std::string to_text(const Spec& s);

/// Parse the to_text form back into a Spec — the exact inverse, including
/// the seed provenance field (doubles round-trip through %.17g). The
/// parsed spec is validate()d; malformed input or an invalid spec throws
/// std::runtime_error naming the offending line. This is how specs enter
/// the compile pipeline from corpus files and simulation-service requests.
Spec from_text(const std::string& text);

/// Emit C++ statements that rebuild `s` into a `Spec` variable named
/// `var` (used by the shrinker's standalone repro emitter).
void emit_spec_cpp(const Spec& s, const std::string& var, std::ostream& os);

}  // namespace asicpp::verify
