// HCOR — the DECT header correlator processor.
//
// The smaller of the paper's two Table 1 designs (6 Kgate). It watches the
// received bit stream for the DECT S-field synchronization word with a
// sliding 16-bit correlator, and tracks burst position once synchronized.
// Two full descriptions exist, exactly as the paper's methodology demands:
//
//  * `Hcor`   — the clock-cycle true, bit-true C++ description (FSM + SFG
//               objects) simulated by the cycle scheduler, compilable to a
//               tape, translatable to HDL and synthesizable to gates;
//  * `HcorRt` — the register-transfer description on the event-driven
//               kernel, written the way one writes RT VHDL (processes +
//               sensitivity lists). This is the Table 1 "VHDL (RT)" row.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "eventsim/kernel.h"
#include "fsm/fsm.h"
#include "sched/cyclesched.h"
#include "sched/fsmcomp.h"
#include "sfg/clk.h"

namespace asicpp::dect {

/// The 16-bit DECT S-field sync word (RFP transmissions), MSB first.
inline constexpr std::uint16_t kSyncWord = 0xE98A;
/// Correlation threshold: >= kThreshold matching bits declare sync.
inline constexpr int kDefaultThreshold = 15;
/// Payload symbols tracked after sync before rearming (B-field length).
inline constexpr int kBurstPayload = 388;

/// Cycle-true HCOR built from Sfg/Fsm objects on the cycle scheduler.
class Hcor {
 public:
  explicit Hcor(int threshold = kDefaultThreshold);
  ~Hcor();

  Hcor(const Hcor&) = delete;
  Hcor& operator=(const Hcor&) = delete;

  sched::CycleScheduler& scheduler() { return sched_; }
  sfg::Clk& clk() { return clk_; }
  sched::FsmComponent& component() { return *comp_; }

  /// Clock one received bit through the correlator.
  void step(int rx_bit);

  /// Correlation value after the last step.
  int correlation() const;
  /// True while the detect output was asserted in the last cycle.
  bool detected() const;
  /// Position inside the burst while locked (symbols since sync).
  int position() const;
  /// "locked" / "search" state.
  bool locked() const;

  /// Behavioral reference shared with the RT description and testbenches.
  /// Register semantics mirror the cycle-true design: the correlation
  /// register scores the window one cycle behind the shift.
  struct Golden {
    std::uint16_t window = 0;
    int corr_reg = 0;
    int threshold = kDefaultThreshold;
    bool locked = false;
    int position = 0;
    int correlation(std::uint16_t sync = kSyncWord) const;
    /// Returns detect for this cycle.
    bool step(int rx_bit, std::uint16_t sync = kSyncWord);
  };

 private:
  struct Impl;
  sfg::Clk clk_;
  sched::CycleScheduler sched_{clk_};
  std::unique_ptr<Impl> impl_;
  std::unique_ptr<sched::FsmComponent> comp_;
};

/// RT description of the same design on the event-driven kernel.
class HcorRt {
 public:
  explicit HcorRt(int threshold = kDefaultThreshold);

  eventsim::Kernel& kernel() { return k_; }

  void step(int rx_bit);
  int correlation() const { return static_cast<int>(corr_->read()); }
  /// The Mealy detect output *during* the last cycle (sampled before the
  /// clock edge, matching what the cycle scheduler's net carries).
  bool detected() const { return snap_detect_; }
  int position() const { return static_cast<int>(pos_->read()); }
  bool locked() const { return state_->read() != 0.0; }

 private:
  eventsim::Kernel k_;
  bool snap_detect_ = false;
  eventsim::Signal* clk_;
  eventsim::Signal* rx_;
  std::vector<eventsim::Signal*> taps_;
  eventsim::Signal* corr_;
  eventsim::Signal* detect_;
  eventsim::Signal* pos_;
  eventsim::Signal* state_;  // 0 = search, 1 = locked
};

}  // namespace asicpp::dect
