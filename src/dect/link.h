// The DECT base-station radiolink environment of Fig 1.
//
// The "Matlab level" of the design flow: high-level, untimed dataflow
// models of the burst source, the multipath radio channel, and the
// equalizer that removes the channel distortion, plus the wire-link framer
// towards the base station controller (DR). These are df:: processes —
// exactly the description style the paper assigns to not-yet-designed
// components — and they close the loop for the end-to-end experiment
// (burst error rates before/after equalization).
#pragma once

#include <cstdint>
#include <vector>

#include "df/process.h"
#include "df/queue.h"
#include "dect/hcor.h"

namespace asicpp::dect {

/// One DECT burst: S-field (16 preamble bits + 16-bit sync word) followed
/// by a payload of data bits. Symbols are +/-1.
struct Burst {
  static constexpr int kPreambleBits = 16;
  static constexpr int kSyncBits = 16;
  std::vector<int> bits;  ///< payload bits (0/1)

  /// Full symbol sequence including the S-field, as +/-1 doubles.
  std::vector<double> symbols() const;
  /// Number of symbols in a burst with `payload` data bits.
  static int length(int payload) { return kPreambleBits + kSyncBits + payload; }
};

/// Pseudo-random burst source (LFSR payload).
class BurstSource final : public df::Process {
 public:
  BurstSource(int payload_bits, unsigned seed);
  /// Produces one burst worth of symbol tokens per firing.
  void fire() override;
  const std::vector<Burst>& history() const { return sent_; }

 private:
  int payload_;
  std::uint32_t lfsr_;
  std::vector<Burst> sent_;
};

/// Two-ray multipath channel with additive noise:
///   y[n] = x[n] + echo * x[n - delay] + noise.
class MultipathChannel final : public df::Process {
 public:
  MultipathChannel(int burst_len, double echo, int delay, double noise_rms,
                   unsigned seed);
  void fire() override;

 private:
  int burst_len_;
  double echo_;
  int delay_;
  double noise_rms_;
  std::uint64_t rng_;
  double gauss();
};

/// LMS decision-feedback-free linear equalizer: trains its FIR taps on the
/// known S-field, then slices the payload.
class LmsEqualizer final : public df::Process {
 public:
  LmsEqualizer(int burst_len, int taps, double mu);
  void fire() override;

  const std::vector<double>& taps() const { return w_; }
  std::uint64_t bursts_equalized() const { return bursts_; }

 private:
  int burst_len_;
  double mu_;
  std::vector<double> w_;
  std::uint64_t bursts_ = 0;
};

/// Hard slicer without equalization (the baseline the equalizer beats).
class HardSlicer final : public df::Process {
 public:
  explicit HardSlicer(int burst_len);
  void fire() override;

 private:
  int burst_len_;
};

/// Wire-link driver (DR): frames decided payload bits and counts errors
/// against the reference bursts.
class WireLinkDriver final : public df::Process {
 public:
  WireLinkDriver(int payload_bits, const std::vector<Burst>* reference);
  void fire() override;

  std::uint64_t bit_errors() const { return errors_; }
  std::uint64_t bits_checked() const { return checked_; }
  double ber() const {
    return checked_ == 0 ? 0.0 : static_cast<double>(errors_) / static_cast<double>(checked_);
  }

 private:
  int payload_;
  const std::vector<Burst>* ref_;
  std::uint64_t frame_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t checked_ = 0;
};

/// End-to-end Fig 1 pipeline: source -> channel -> (equalizer|slicer) -> DR.
struct LinkSimulation {
  LinkSimulation(int payload_bits, int bursts, double echo, int delay,
                 double noise_rms, bool equalize, unsigned seed = 7);

  /// Run all bursts through the pipeline; returns the payload BER.
  double run();

  int payload_bits;
  int bursts;
  df::Queue q_tx{"tx"};
  df::Queue q_rx{"rx"};
  df::Queue q_bits{"bits"};
  BurstSource source;
  MultipathChannel channel;
  LmsEqualizer equalizer;
  HardSlicer slicer;
  WireLinkDriver driver;
  bool use_equalizer;
};

}  // namespace asicpp::dect
