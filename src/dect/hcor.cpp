#include "dect/hcor.h"

#include "fixpt/fixed.h"
#include "sfg/sfg.h"
#include "sfg/sig.h"

namespace asicpp::dect {

using fixpt::Fixed;
using fixpt::Format;
using fsm::Fsm;
using fsm::State;
using fsm::always;
using fsm::cnd;
using sfg::Reg;
using sfg::Sfg;
using sfg::Sig;

namespace {
const Format kBit{1, 1, false, fixpt::Quant::kTruncate, fixpt::Overflow::kWrap};
const Format kCorr{6, 6, false, fixpt::Quant::kTruncate, fixpt::Overflow::kWrap};
const Format kPos{10, 10, false, fixpt::Quant::kTruncate, fixpt::Overflow::kWrap};
}  // namespace

// --- golden reference ---

int Hcor::Golden::correlation(std::uint16_t sync) const {
  return 16 - __builtin_popcount(static_cast<std::uint16_t>(window ^ sync));
}

bool Hcor::Golden::step(int rx_bit, std::uint16_t sync) {
  const bool detect = !locked && corr_reg >= threshold;
  if (!locked) {
    if (detect) {
      locked = true;
      position = 0;
    }
  } else {
    if (position >= kBurstPayload - 1) {
      locked = false;
      position = 0;
    } else {
      ++position;
    }
  }
  // Register updates: score the pre-shift window, then shift the bit in.
  corr_reg = correlation(sync);
  window = static_cast<std::uint16_t>((window << 1) | (rx_bit & 1));
  return detect;
}

// --- cycle-true description ---

struct Hcor::Impl {
  explicit Impl(sfg::Clk& clk, int threshold)
      : rx(Sig::input("rx", kBit)),
        corr("corr", clk, kCorr, 0.0),
        pos("pos", clk, kPos, 0.0),
        shift("shift"),
        track("track"),
        rearm("rearm"),
        machine("hcor") {
    taps.reserve(16);
    for (int i = 0; i < 16; ++i)
      taps.emplace_back("b" + std::to_string(i), clk, kBit, 0.0);

    // The sliding window: b0 <- rx, b[i] <- b[i-1]; correlation = number of
    // taps matching the sync word (MSB of the word is the oldest bit b15).
    Sig score = Sig(0.0) + 0.0;
    for (int i = 0; i < 16; ++i) {
      const int sync_bit = (kSyncWord >> i) & 1;
      score = score + (taps[static_cast<std::size_t>(i)].sig() ==
                       Sig(static_cast<double>(sync_bit)));
    }
    const auto wire_shift = [&](Sfg& s) {
      s.in(rx);
      s.assign(taps[0], rx);
      for (int i = 1; i < 16; ++i)
        s.assign(taps[static_cast<std::size_t>(i)], taps[static_cast<std::size_t>(i - 1)]);
      s.assign(corr, score);
    };

    // search: shift and watch the threshold.
    wire_shift(shift);
    shift.out("detect", corr.sig() >= static_cast<double>(threshold))
        .out("corr_out", corr.sig())
        .out("pos_out", pos.sig());

    // locked: keep shifting (the stream continues) and count position.
    wire_shift(track);
    track.assign(pos, pos + 1.0)
        .out("detect", Sig(0.0) + 0.0)
        .out("corr_out", corr.sig())
        .out("pos_out", pos.sig());

    // burst complete: reset position, back to search.
    wire_shift(rearm);
    rearm.assign(pos, Sig(0.0) + 0.0)
        .out("detect", Sig(0.0) + 0.0)
        .out("corr_out", corr.sig())
        .out("pos_out", pos.sig());

    State search = machine.initial("search");
    State locked = machine.state("locked");
    search << cnd(corr.sig() >= static_cast<double>(threshold)) << shift << locked;
    search << always << shift << search;
    locked << cnd(pos.sig() >= static_cast<double>(kBurstPayload - 1)) << rearm << search;
    locked << always << track << locked;
  }

  Sig rx;
  std::vector<Reg> taps;
  Reg corr;
  Reg pos;
  Sfg shift;
  Sfg track;
  Sfg rearm;
  Fsm machine;
};

Hcor::Hcor(int threshold) : impl_(std::make_unique<Impl>(clk_, threshold)) {
  comp_ = std::make_unique<sched::FsmComponent>("hcor", impl_->machine);
  comp_->bind_input(impl_->rx, sched_.net("rx"));
  comp_->bind_output("detect", sched_.net("detect"));
  comp_->bind_output("corr_out", sched_.net("corr_out"));
  comp_->bind_output("pos_out", sched_.net("pos_out"));
  sched_.add(*comp_);
}

Hcor::~Hcor() = default;

void Hcor::step(int rx_bit) {
  sched_.net("rx").drive(Fixed(rx_bit ? 1.0 : 0.0));
  sched_.cycle();
}

int Hcor::correlation() const { return static_cast<int>(impl_->corr.read().value()); }

bool Hcor::detected() const {
  return const_cast<sched::CycleScheduler&>(sched_).net("detect").last().value() != 0.0;
}

int Hcor::position() const { return static_cast<int>(impl_->pos.read().value()); }

bool Hcor::locked() const { return impl_->machine.current_name() == "locked"; }

// --- RT description (event-driven kernel, VHDL style) ---

HcorRt::HcorRt(int threshold) {
  clk_ = &k_.signal("clk", 0.0);
  rx_ = &k_.signal("rx", 0.0);
  for (int i = 0; i < 16; ++i) taps_.push_back(&k_.signal("b" + std::to_string(i), 0.0));
  corr_ = &k_.signal("corr", 0.0);
  detect_ = &k_.signal("detect", 0.0);
  pos_ = &k_.signal("pos", 0.0);
  state_ = &k_.signal("state", 0.0);
  auto* score = &k_.signal("score", 0.0);

  // Combinational process: correlation score of the current window.
  auto& comb = k_.process("score_comb", [this, score] {
    double s = 0.0;
    for (int i = 0; i < 16; ++i) {
      const int sync_bit = (kSyncWord >> i) & 1;
      if ((taps_[static_cast<std::size_t>(i)]->read() != 0.0) == (sync_bit != 0)) s += 1.0;
    }
    score->write(s);
  });
  for (auto* t : taps_) k_.sensitize(comb, *t);

  // Combinational process: detect decode from the registered score.
  auto& dec = k_.process("detect_comb", [this, threshold] {
    detect_->write((state_->read() == 0.0 && corr_->read() >= threshold) ? 1.0 : 0.0);
  });
  k_.sensitize(dec, *corr_);
  k_.sensitize(dec, *state_);

  // Sequential process: shift register, correlation register, FSM.
  auto& seq = k_.process("seq", [this, score, threshold] {
    if (!clk_->posedge()) return;
    for (int i = 15; i >= 1; --i)
      taps_[static_cast<std::size_t>(i)]->write(taps_[static_cast<std::size_t>(i - 1)]->read());
    taps_[0]->write(rx_->read());
    corr_->write(score->read());
    if (state_->read() == 0.0) {
      if (corr_->read() >= threshold) {
        state_->write(1.0);
        pos_->write(0.0);
      }
    } else {
      if (pos_->read() >= kBurstPayload - 1) {
        state_->write(0.0);
        pos_->write(0.0);
      } else {
        pos_->write(pos_->read() + 1.0);
      }
    }
  });
  k_.sensitize(seq, *clk_);
  k_.settle();
}

void HcorRt::step(int rx_bit) {
  rx_->write(rx_bit ? 1.0 : 0.0);
  k_.settle();
  snap_detect_ = detect_->read() != 0.0;
  k_.tick(*clk_);
}

}  // namespace asicpp::dect
