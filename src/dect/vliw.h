// The DECT digital radiolink transceiver ASIC model (Figs 1, 2, 5).
//
// A central (VLIW) controller with the execute/hold protocol of Fig 2, an
// instruction ROM (lookup table, an untimed block), and a ring of
// instruction-dispatched datapaths (22 in the paper, decoding between 2
// and 57 instructions) of which the first few have RAM cells attached as
// untimed high-level blocks. Global exceptions — the reason the target
// architecture changed from data-driven to central control (section 3.3) —
// appear as a condition-triggered jump in the instruction ROM.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/cyclesched.h"
#include "sfg/clk.h"

namespace asicpp::dect {

/// Word-level formats of the transceiver, exported for the system
/// synthesis flow (net format declarations) and the benches.
inline constexpr fixpt::Format kVliwBit{1, 1, false, fixpt::Quant::kTruncate,
                                        fixpt::Overflow::kWrap};
inline constexpr fixpt::Format kVliwAddr{8, 8, false, fixpt::Quant::kTruncate,
                                         fixpt::Overflow::kWrap};
inline constexpr fixpt::Format kVliwData{12, 4, true, fixpt::Quant::kRound,
                                         fixpt::Overflow::kSaturate};

struct VliwParams {
  int num_datapaths = 22;
  int num_rams = 7;        ///< datapaths 0..num_rams-1 get a RAM cell
  int ram_addr_bits = 4;   ///< 16-word coefficient/sample stores
  int rom_length = 48;     ///< instruction ROM depth
  unsigned seed = 1;       ///< program & coefficient generation
  /// false (the paper's style): the instruction ROM and RAM cells are
  /// untimed high-level C++ blocks (section 4). true: they are built
  /// cycle-true out of SFG mux trees and register files, so the *entire*
  /// design is timed — compilable to standalone C++, RT-elaborable, and
  /// synthesizable with no hand-supplied structural images.
  bool structural_tables = false;
};

class DectTransceiver {
 public:
  explicit DectTransceiver(const VliwParams& p = {});
  ~DectTransceiver();

  DectTransceiver(const DectTransceiver&) = delete;
  DectTransceiver& operator=(const DectTransceiver&) = delete;

  sched::CycleScheduler& scheduler() { return sched_; }
  sfg::Clk& clk() { return clk_; }
  const VliwParams& params() const { return params_; }

  /// The hold_request chip pin (Fig 2).
  void set_hold_request(bool hold);
  /// Drive the equalizer input sample pin.
  void drive_sample(double v);

  RunResult run(std::uint64_t cycles) {
    return sched_.run(RunOptions{}.for_cycles(cycles));
  }
  RunResult run(const RunOptions& opts) { return sched_.run(opts); }

  // --- observability ---
  long pc() const;
  long hold_pc() const;
  bool holding() const;                 ///< controller in the hold state
  double datapath_out(int d) const;     ///< last value on net data_<d>
  double datapath_acc(int d) const;     ///< accumulator register of dp d
  int instruction_count(int d) const;   ///< opcodes decoded by dp d
  const std::vector<std::vector<long>>& program() const;
  std::uint64_t ram_accesses(int ram) const;

 private:
  struct Impl;
  VliwParams params_;
  sfg::Clk clk_;
  sched::CycleScheduler sched_{clk_};
  std::unique_ptr<Impl> impl_;
};

/// Instruction counts used for the paper's architecture: dp0 decodes 57,
/// the rest spread over 2..43.
int vliw_instruction_count(int dp_index);

}  // namespace asicpp::dect
