#include "dect/vliw.h"

#include <random>
#include <stdexcept>

#include "fsm/fsm.h"
#include "sched/fsmcomp.h"
#include "sched/untimed.h"
#include "sfg/sfg.h"
#include "sfg/sig.h"

namespace asicpp::dect {

using fixpt::Fixed;
using fixpt::Format;
using fsm::Fsm;
using fsm::State;
using fsm::always;
using fsm::cnd;
using sched::DispatchComponent;
using sched::FsmComponent;
using sched::UntimedComponent;
using sfg::Reg;
using sfg::Sfg;
using sfg::Sig;

namespace {

const Format& kBit = kVliwBit;
const Format& kAddr = kVliwAddr;
const Format& kData = kVliwData;
const Format kCoef{10, 1, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};

}  // namespace

int vliw_instruction_count(int dp_index) {
  if (dp_index == 0) return 57;
  return 2 + (dp_index * 13) % 42;  // 2..43
}

struct DectTransceiver::Impl {
  // One datapath: registers, instruction SFGs, dispatch component, and the
  // optional RAM bookkeeping.
  struct Datapath {
    std::unique_ptr<Reg> acc;
    std::unique_ptr<Reg> ram_ptr;  // only with RAM
    sfg::Sig x;
    sfg::Sig rdata;
    std::vector<std::unique_ptr<Sfg>> sfgs;
    std::unique_ptr<DispatchComponent> comp;
  };

  // Controller registers and SFGs.
  std::unique_ptr<Reg> pc, hold_pc, hr_reg, cond_reg;
  sfg::Sig hr_in, cond_in;
  std::unique_ptr<Sfg> lookup, hold_on, wait, hold_lookup;
  std::unique_ptr<Fsm> ctl;
  std::unique_ptr<FsmComponent> ctl_comp;

  std::vector<Datapath> dps;
  std::vector<std::unique_ptr<UntimedComponent>> roms_and_rams;
  // Structural-table mode: cycle-true ROM / RAM building blocks.
  std::vector<std::unique_ptr<Sfg>> table_sfgs;
  std::vector<std::unique_ptr<sched::SfgComponent>> table_comps;
  std::vector<std::unique_ptr<Reg>> table_regs;
  std::vector<std::vector<double>> ram_storage;
  std::vector<std::uint64_t> ram_hits;
  std::vector<std::vector<long>> program;  // [addr][dp] -> opcode
};

DectTransceiver::DectTransceiver(const VliwParams& p)
    : params_(p), impl_(std::make_unique<Impl>()) {
  if (p.num_datapaths < 1 || p.num_rams > p.num_datapaths || p.rom_length < 2)
    throw std::invalid_argument("DectTransceiver: bad parameters");
  Impl& im = *impl_;
  std::mt19937 rng(p.seed);

  // ---- program generation ----
  im.program.assign(static_cast<std::size_t>(p.rom_length), {});
  for (int a = 0; a < p.rom_length; ++a) {
    auto& word = im.program[static_cast<std::size_t>(a)];
    for (int d = 0; d < p.num_datapaths; ++d) {
      const int n = vliw_instruction_count(d);
      // Mostly arithmetic, some structure; opcode 0 = nop.
      const unsigned roll = rng() % 8;
      long op;
      if (roll == 0) {
        op = 0;  // explicit nop slot
      } else if (roll == 1) {
        op = 1;  // clear
      } else {
        op = 2 + static_cast<long>(rng() % static_cast<unsigned>(n - 1));
      }
      word.push_back(op);
    }
  }

  // ---- central controller (Fig 2) ----
  im.pc = std::make_unique<Reg>("pc", clk_, kAddr, 0.0);
  im.hold_pc = std::make_unique<Reg>("hold_pc", clk_, kAddr, 0.0);
  im.hr_reg = std::make_unique<Reg>("hr_reg", clk_, kBit, 0.0);
  im.cond_reg = std::make_unique<Reg>("cond_reg", clk_, kBit, 0.0);
  im.hr_in = Sig::input("hold_request", kBit);
  im.cond_in = Sig::input("cond", kBit);

  const double last = static_cast<double>(p.rom_length - 1);
  const auto sample_pins = [&](Sfg& s) {
    s.in(im.hr_in).in(im.cond_in);
    s.assign(*im.hr_reg, im.hr_in);
    s.assign(*im.cond_reg, im.cond_in);
  };

  im.lookup = std::make_unique<Sfg>("lookup");
  sample_pins(*im.lookup);
  im.lookup->out("addr", im.pc->sig())
      .out("nop", Sig(0.0) + 0.0)
      .assign(*im.pc, mux(*im.cond_reg, Sig(0.0) + 0.0,
                          mux(im.pc->sig() >= last, Sig(0.0) + 0.0, *im.pc + 1.0)));

  im.hold_on = std::make_unique<Sfg>("hold_on");
  sample_pins(*im.hold_on);
  im.hold_on->out("addr", im.pc->sig())
      .out("nop", Sig(1.0) + 0.0)
      .assign(*im.hold_pc, im.pc->sig());

  im.wait = std::make_unique<Sfg>("wait");
  sample_pins(*im.wait);
  im.wait->out("addr", im.pc->sig()).out("nop", Sig(1.0) + 0.0);

  im.hold_lookup = std::make_unique<Sfg>("hold_lookup");
  sample_pins(*im.hold_lookup);
  im.hold_lookup->out("addr", im.hold_pc->sig())
      .out("nop", Sig(0.0) + 0.0)
      .assign(*im.pc, mux(im.hold_pc->sig() >= last, Sig(0.0) + 0.0, *im.hold_pc + 1.0));

  im.ctl = std::make_unique<Fsm>("ctl");
  State execute = im.ctl->initial("execute");
  State hold = im.ctl->state("hold");
  execute << cnd(*im.hr_reg) << *im.hold_on << hold;
  execute << always << *im.lookup << execute;
  hold << !cnd(*im.hr_reg) << *im.hold_lookup << execute;
  hold << always << *im.wait << hold;

  im.ctl_comp = std::make_unique<FsmComponent>("ctl", *im.ctl);
  im.ctl_comp->bind_input(im.hr_in, sched_.net("hold_request"));
  im.ctl_comp->bind_input(im.cond_in, sched_.net("cond"));
  im.ctl_comp->bind_output("addr", sched_.net("rom_addr"));
  im.ctl_comp->bind_output("nop", sched_.net("rom_nop"));
  sched_.add(*im.ctl_comp);
  sched_.net("hold_request").drive(Fixed(0.0));

  // ---- instruction ROM (lookup table) ----
  if (p.structural_tables) {
    // Cycle-true ROM: per-datapath constant mux chains over shared
    // address-match subexpressions, gated by the nop line.
    Sig addr_in = Sig::input("rom_addr_in", kAddr);
    Sig nop_in = Sig::input("rom_nop_in", kBit);
    auto rs = std::make_unique<Sfg>("irom_s");
    rs->in(addr_in).in(nop_in);
    std::vector<Sig> match;
    for (int a = 0; a < p.rom_length; ++a)
      match.push_back(addr_in == static_cast<double>(a));
    for (int d = 0; d < p.num_datapaths; ++d) {
      Sig v = Sig(0.0) + 0.0;
      for (int a = 0; a < p.rom_length; ++a) {
        const double op =
            static_cast<double>(im.program[static_cast<std::size_t>(a)]
                                          [static_cast<std::size_t>(d)]);
        v = mux(match[static_cast<std::size_t>(a)], Sig(op), v);
      }
      rs->out("instr_" + std::to_string(d), mux(nop_in, Sig(0.0), v));
    }
    auto rc = std::make_unique<sched::SfgComponent>("irom", *rs);
    rc->bind_input(addr_in, sched_.net("rom_addr"));
    rc->bind_input(nop_in, sched_.net("rom_nop"));
    for (int d = 0; d < p.num_datapaths; ++d)
      rc->bind_output("instr_" + std::to_string(d), sched_.net("instr_" + std::to_string(d)));
    sched_.add(*rc);
    im.table_sfgs.push_back(std::move(rs));
    im.table_comps.push_back(std::move(rc));
  } else {
    auto rom = std::make_unique<UntimedComponent>(
        "irom", [this](const std::vector<Fixed>& in) {
          const auto a = static_cast<std::size_t>(in[0].value()) %
                         impl_->program.size();
          const bool nop = in[1].value() != 0.0;
          std::vector<Fixed> out;
          for (int d = 0; d < params_.num_datapaths; ++d)
            out.emplace_back(nop ? 0.0
                                 : static_cast<double>(
                                       impl_->program[a][static_cast<std::size_t>(d)]));
          return out;
        });
    rom->bind_input(sched_.net("rom_addr"));
    rom->bind_input(sched_.net("rom_nop"));
    for (int d = 0; d < p.num_datapaths; ++d)
      rom->bind_output(sched_.net("instr_" + std::to_string(d)));
    sched_.add(*rom);
    im.roms_and_rams.push_back(std::move(rom));
  }

  // ---- datapaths (ring) ----
  im.ram_storage.assign(static_cast<std::size_t>(p.num_rams),
                        std::vector<double>(1u << p.ram_addr_bits, 0.0));
  im.ram_hits.assign(static_cast<std::size_t>(p.num_rams), 0);
  std::uniform_real_distribution<double> coef_dist(-0.9, 0.9);

  im.dps.resize(static_cast<std::size_t>(p.num_datapaths));
  for (int d = 0; d < p.num_datapaths; ++d) {
    Impl::Datapath& dp = im.dps[static_cast<std::size_t>(d)];
    const bool has_ram = d < p.num_rams;
    const std::string dname = "dp" + std::to_string(d);
    dp.acc = std::make_unique<Reg>(dname + "_acc", clk_, kData, 0.0);
    dp.x = Sig::input(dname + "_x", kData);
    if (has_ram) {
      dp.ram_ptr = std::make_unique<Reg>(dname + "_ptr", clk_,
                                         Format{p.ram_addr_bits, p.ram_addr_bits, false,
                                                fixpt::Quant::kTruncate,
                                                fixpt::Overflow::kWrap},
                                         0.0);
      dp.rdata = Sig::input(dname + "_rdata", kData);
    }

    dp.comp = std::make_unique<DispatchComponent>(
        dname, sched_.net("instr_" + std::to_string(d)));

    const auto common_outs = [&](Sfg& s, bool has_ram_port) {
      s.out("data", dp.acc->sig());
      if (d == 0) s.out("cond", dp.acc->sig() > 6.0);
      // With a cycle-true RAM, the memory interface must carry a value on
      // every cycle (the RAM component is timed and always fires); idle
      // instructions drive an inert read.
      if (p.structural_tables && has_ram_port) {
        s.out("we", Sig(0.0) + 0.0)
            .out("ram_addr", dp.ram_ptr->sig())
            .out("wdata", Sig(0.0) + 0.0);
      }
    };

    // opcode 0 handled by the default nop (state frozen, Fig 2).
    auto nop = std::make_unique<Sfg>(dname + "_nop");
    common_outs(*nop, has_ram);
    dp.comp->set_default(*nop);
    dp.sfgs.push_back(std::move(nop));

    const int n = vliw_instruction_count(d);
    for (long op = 1; op <= n; ++op) {
      auto s = std::make_unique<Sfg>(dname + "_i" + std::to_string(op));
      const bool defines_ram_port = has_ram && (op == 3 || op == 4);
      common_outs(*s, has_ram && !defines_ram_port);
      if (op == 1) {  // clear
        s->assign(*dp.acc, Sig(0.0) + 0.0);
      } else if (op == 2) {  // pass
        s->in(dp.x).assign(*dp.acc, dp.x);
      } else if (has_ram && op == 3) {  // store acc, advance pointer
        s->out("we", Sig(1.0) + 0.0)
            .out("ram_addr", dp.ram_ptr->sig())
            .out("wdata", dp.acc->sig())
            .assign(*dp.ram_ptr, *dp.ram_ptr + 1.0);
      } else if (has_ram && op == 4) {  // load & accumulate
        s->in(dp.rdata)
            .out("we", Sig(0.0) + 0.0)
            .out("ram_addr", dp.ram_ptr->sig())
            .out("wdata", Sig(0.0) + 0.0)
            .assign(*dp.acc, (*dp.acc + dp.rdata).cast(kData));
      } else {
        // mac with a per-instruction coefficient (this is where the 152
        // multiplies per DECT symbol come from).
        const double c = fixpt::quantize(coef_dist(rng), kCoef);
        s->in(dp.x).assign(*dp.acc, (*dp.acc + dp.x * c).cast(kData));
      }
      dp.comp->add_instruction(op, *s);
      dp.sfgs.push_back(std::move(s));
    }

    // Ring connectivity: dp0 eats the external sample, dp_d the previous
    // datapath's data output.
    if (d == 0) {
      dp.comp->bind_input(dp.x, sched_.net("sample"));
    } else {
      dp.comp->bind_input(dp.x, sched_.net("data_" + std::to_string(d - 1)));
    }
    dp.comp->bind_output("data", sched_.net("data_" + std::to_string(d)));
    if (d == 0) dp.comp->bind_output("cond", sched_.net("cond"));
    if (has_ram) {
      dp.comp->bind_input(dp.rdata, sched_.net(dname + "_rdata"));
      dp.comp->bind_output("we", sched_.net(dname + "_we"));
      dp.comp->bind_output("ram_addr", sched_.net(dname + "_addr"));
      dp.comp->bind_output("wdata", sched_.net(dname + "_wdata"));
    }
    sched_.add(*dp.comp);
  }

  // Fig 2's condition is a registered pin; cond comes from dp0 but can be
  // absent in hold cycles (dp0 nops still emit it: reg-only output). The
  // sample pin idles at zero until driven.
  sched_.net("sample").drive(Fixed(0.0));

  // ---- RAM cells ----
  for (int r = 0; p.structural_tables && r < p.num_rams; ++r) {
    // Cycle-true RAM: a register file with a decoded write and a read mux,
    // read-before-write like the high-level model.
    const std::string dname = "dp" + std::to_string(r);
    const int words = 1 << p.ram_addr_bits;
    Sig we_in = Sig::input(dname + "_ram_we", kBit);
    Sig addr_in = Sig::input(dname + "_ram_addr", kAddr);
    Sig wd_in = Sig::input(dname + "_ram_wd", kData);
    auto rs = std::make_unique<Sfg>(dname + "_ram_s");
    rs->in(we_in).in(addr_in).in(wd_in);
    Sig rdata = Sig(0.0) + 0.0;
    for (int w = 0; w < words; ++w) {
      auto word = std::make_unique<Reg>(dname + "_m" + std::to_string(w), clk_, kData, 0.0);
      Sig sel = addr_in == static_cast<double>(w);
      rdata = mux(sel, word->sig(), rdata);
      rs->assign(*word, mux(we_in & sel, wd_in, word->sig()));
      im.table_regs.push_back(std::move(word));
    }
    rs->out("rdata", rdata);
    auto rc = std::make_unique<sched::SfgComponent>(dname + "_ram", *rs);
    rc->bind_input(we_in, sched_.net(dname + "_we"));
    rc->bind_input(addr_in, sched_.net(dname + "_addr"));
    rc->bind_input(wd_in, sched_.net(dname + "_wdata"));
    rc->bind_output("rdata", sched_.net(dname + "_rdata"));
    sched_.add(*rc);
    im.table_sfgs.push_back(std::move(rs));
    im.table_comps.push_back(std::move(rc));
  }
  for (int r = 0; !p.structural_tables && r < p.num_rams; ++r) {
    const std::string dname = "dp" + std::to_string(r);
    auto ram = std::make_unique<UntimedComponent>(
        dname + "_ram", [this, r](const std::vector<Fixed>& in) {
          auto& mem = impl_->ram_storage[static_cast<std::size_t>(r)];
          const bool we = in[0].value() != 0.0;
          const auto a = static_cast<std::size_t>(in[1].value()) % mem.size();
          std::vector<Fixed> out{Fixed(mem[a])};
          if (we) mem[a] = fixpt::quantize(in[2].value(), kData);
          ++impl_->ram_hits[static_cast<std::size_t>(r)];
          return out;
        });
    ram->bind_input(sched_.net(dname + "_we"));
    ram->bind_input(sched_.net(dname + "_addr"));
    ram->bind_input(sched_.net(dname + "_wdata"));
    ram->bind_output(sched_.net(dname + "_rdata"));
    sched_.add(*ram);
    im.roms_and_rams.push_back(std::move(ram));
  }
}

DectTransceiver::~DectTransceiver() = default;

void DectTransceiver::set_hold_request(bool hold) {
  sched_.net("hold_request").drive(Fixed(hold ? 1.0 : 0.0));
}

void DectTransceiver::drive_sample(double v) {
  sched_.net("sample").drive(Fixed(fixpt::quantize(v, kData)));
}

long DectTransceiver::pc() const { return static_cast<long>(impl_->pc->read().value()); }

long DectTransceiver::hold_pc() const {
  return static_cast<long>(impl_->hold_pc->read().value());
}

bool DectTransceiver::holding() const { return impl_->ctl->current_name() == "hold"; }

double DectTransceiver::datapath_out(int d) const {
  return const_cast<sched::CycleScheduler&>(sched_)
      .net("data_" + std::to_string(d))
      .last()
      .value();
}

double DectTransceiver::datapath_acc(int d) const {
  return impl_->dps.at(static_cast<std::size_t>(d)).acc->read().value();
}

int DectTransceiver::instruction_count(int d) const {
  return static_cast<int>(
      impl_->dps.at(static_cast<std::size_t>(d)).comp->num_instructions());
}

const std::vector<std::vector<long>>& DectTransceiver::program() const {
  return impl_->program;
}

std::uint64_t DectTransceiver::ram_accesses(int ram) const {
  return impl_->ram_hits.at(static_cast<std::size_t>(ram));
}

}  // namespace asicpp::dect
