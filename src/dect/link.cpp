#include "dect/link.h"

#include <cmath>

namespace asicpp::dect {

using df::Token;
using fixpt::Fixed;

std::vector<double> Burst::symbols() const {
  std::vector<double> s;
  s.reserve(static_cast<std::size_t>(length(static_cast<int>(bits.size()))));
  for (int i = 0; i < kPreambleBits; ++i) s.push_back(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = kSyncBits - 1; i >= 0; --i)
    s.push_back(((kSyncWord >> i) & 1) ? 1.0 : -1.0);
  for (const int b : bits) s.push_back(b ? 1.0 : -1.0);
  return s;
}

BurstSource::BurstSource(int payload_bits, unsigned seed)
    : Process("burst_source"), payload_(payload_bits), lfsr_(seed | 1u) {}

void BurstSource::fire() {
  Burst b;
  for (int i = 0; i < payload_; ++i) {
    // 32-bit maximal LFSR (taps 32,22,2,1).
    const std::uint32_t bit =
        ((lfsr_ >> 0) ^ (lfsr_ >> 10) ^ (lfsr_ >> 30) ^ (lfsr_ >> 31)) & 1u;
    lfsr_ = (lfsr_ >> 1) | (bit << 31);
    b.bits.push_back(static_cast<int>(lfsr_ & 1u));
  }
  for (const double s : b.symbols()) out(0).push(Token(s));
  sent_.push_back(std::move(b));
}

MultipathChannel::MultipathChannel(int burst_len, double echo, int delay,
                                   double noise_rms, unsigned seed)
    : Process("channel"),
      burst_len_(burst_len),
      echo_(echo),
      delay_(delay),
      noise_rms_(noise_rms),
      rng_(seed * 6364136223846793005ULL + 1442695040888963407ULL) {}

double MultipathChannel::gauss() {
  // Sum of 8 uniforms, shifted: adequate AWGN stand-in for BER shapes.
  double s = 0.0;
  for (int i = 0; i < 8; ++i) {
    rng_ = rng_ * 6364136223846793005ULL + 1442695040888963407ULL;
    s += static_cast<double>((rng_ >> 16) & 0xFFFF) / 65536.0;
  }
  return (s - 4.0) * std::sqrt(12.0 / 8.0);
}

void MultipathChannel::fire() {
  std::vector<double> x;
  x.reserve(static_cast<std::size_t>(burst_len_));
  for (int i = 0; i < burst_len_; ++i) x.push_back(in(0).pop().value());
  for (int i = 0; i < burst_len_; ++i) {
    double y = x[static_cast<std::size_t>(i)];
    if (i >= delay_) y += echo_ * x[static_cast<std::size_t>(i - delay_)];
    y += noise_rms_ * gauss();
    out(0).push(Token(y));
  }
}

LmsEqualizer::LmsEqualizer(int burst_len, int taps, double mu)
    : Process("equalizer"), burst_len_(burst_len), mu_(mu), w_(static_cast<std::size_t>(taps), 0.0) {
  w_[0] = 1.0;  // start from the identity filter
}

void LmsEqualizer::fire() {
  std::vector<double> y;
  y.reserve(static_cast<std::size_t>(burst_len_));
  for (int i = 0; i < burst_len_; ++i) y.push_back(in(0).pop().value());

  const int train = Burst::kPreambleBits + Burst::kSyncBits;
  std::vector<double> ref;
  {
    Burst empty;
    ref = empty.symbols();  // S-field only (no payload)
  }

  const auto filt = [&](int n) {
    double acc = 0.0;
    for (std::size_t k = 0; k < w_.size(); ++k) {
      const int idx = n - static_cast<int>(k);
      if (idx >= 0) acc += w_[k] * y[static_cast<std::size_t>(idx)];
    }
    return acc;
  };

  // Train on the known S-field (several passes sharpen convergence).
  for (int pass = 0; pass < 3; ++pass) {
    for (int n = 0; n < train; ++n) {
      const double e = ref[static_cast<std::size_t>(n)] - filt(n);
      for (std::size_t k = 0; k < w_.size(); ++k) {
        const int idx = n - static_cast<int>(k);
        if (idx >= 0) w_[k] += mu_ * e * y[static_cast<std::size_t>(idx)];
      }
    }
  }

  // Slice the payload.
  for (int n = train; n < burst_len_; ++n)
    out(0).push(Token(filt(n) >= 0.0 ? 1.0 : 0.0));
  ++bursts_;
}

HardSlicer::HardSlicer(int burst_len) : Process("slicer"), burst_len_(burst_len) {}

void HardSlicer::fire() {
  const int train = Burst::kPreambleBits + Burst::kSyncBits;
  for (int i = 0; i < burst_len_; ++i) {
    const double y = in(0).pop().value();
    if (i >= train) out(0).push(Token(y >= 0.0 ? 1.0 : 0.0));
  }
}

WireLinkDriver::WireLinkDriver(int payload_bits, const std::vector<Burst>* reference)
    : Process("wire_link"), payload_(payload_bits), ref_(reference) {}

void WireLinkDriver::fire() {
  const Burst& b = ref_->at(frame_);
  for (int i = 0; i < payload_; ++i) {
    const int decided = in(0).pop().value() != 0.0 ? 1 : 0;
    if (decided != b.bits[static_cast<std::size_t>(i)]) ++errors_;
    ++checked_;
  }
  ++frame_;
}

LinkSimulation::LinkSimulation(int payload_bits_in, int bursts_in, double echo,
                               int delay, double noise_rms, bool equalize,
                               unsigned seed)
    : payload_bits(payload_bits_in),
      bursts(bursts_in),
      source(payload_bits_in, seed),
      channel(Burst::length(payload_bits_in), echo, delay, noise_rms, seed + 1),
      equalizer(Burst::length(payload_bits_in), 5, 0.02),
      slicer(Burst::length(payload_bits_in)),
      driver(payload_bits_in, &source.history()),
      use_equalizer(equalize) {
  const auto blen = static_cast<std::size_t>(Burst::length(payload_bits));
  source.connect_out(q_tx, blen);
  channel.connect_in(q_tx, blen);
  channel.connect_out(q_rx, blen);
  if (use_equalizer) {
    equalizer.connect_in(q_rx, blen);
    equalizer.connect_out(q_bits, static_cast<std::size_t>(payload_bits));
  } else {
    slicer.connect_in(q_rx, blen);
    slicer.connect_out(q_bits, static_cast<std::size_t>(payload_bits));
  }
  driver.connect_in(q_bits, static_cast<std::size_t>(payload_bits));
}

double LinkSimulation::run() {
  // The source has no inputs (it would free-run under the dynamic
  // scheduler); fire it once per burst and let the rest of the pipeline
  // drain data-driven, exactly one firing rule check at a time.
  for (int b = 0; b < bursts; ++b) {
    source.run_once();
    while (true) {
      bool fired = false;
      if (channel.can_fire()) {
        channel.run_once();
        fired = true;
      }
      if (use_equalizer ? equalizer.can_fire() : slicer.can_fire()) {
        (use_equalizer ? static_cast<df::Process&>(equalizer)
                       : static_cast<df::Process&>(slicer))
            .run_once();
        fired = true;
      }
      if (driver.can_fire()) {
        driver.run_once();
        fired = true;
      }
      if (!fired) break;
    }
  }
  return driver.ber();
}

}  // namespace asicpp::dect
