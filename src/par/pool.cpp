#include "par/pool.h"

#include <algorithm>

#include "diag/diag.h"

namespace asicpp::par {

namespace {

/// Depth of parallel regions on this thread (0 outside, 1 inside; never 2 —
/// that is PAR-001).
thread_local int tl_region_depth = 0;

struct RegionGuard {
  RegionGuard() { ++tl_region_depth; }
  ~RegionGuard() { --tl_region_depth; }
};

}  // namespace

unsigned Pool::hardware_lanes() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool Pool::in_parallel_region() { return tl_region_depth > 0; }

Pool& Pool::shared() {
  static Pool pool(std::max(hardware_lanes(), 8u));
  return pool;
}

Pool::Pool(unsigned lanes) : lanes_(lanes == 0 ? hardware_lanes() : lanes) {
  workers_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane)
    workers_.emplace_back([this, lane] { worker_main(lane); });
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Pool::worker_main(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    // A lane that wakes after the job drained just finds empty deques; the
    // shared_ptr keeps the job alive until every late riser has looked.
    if (job != nullptr && lane < job->width) participate(*job, lane);
  }
}

void Pool::participate(Job& job, unsigned lane) {
  RegionGuard region;
  const unsigned width = job.width;
  for (;;) {
    Job::Chunk chunk{0, 0};
    // Own deque first (front), then steal from the back of the others.
    for (unsigned k = 0; k < width; ++k) {
      const unsigned victim = (lane + k) % width;
      std::lock_guard<std::mutex> lk(*job.queue_mu[victim]);
      auto& q = job.queues[victim];
      if (q.empty()) continue;
      if (k == 0) {
        chunk = q.front();
        q.pop_front();
      } else {
        chunk = q.back();
        q.pop_back();
      }
      break;
    }
    if (chunk.begin == chunk.end) return;  // every deque empty: done here
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      try {
        (*job.body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job.err_mu);
        if (!job.err || i < job.err_index) {
          job.err = std::current_exception();
          job.err_index = i;
        }
      }
    }
    const std::size_t ran = chunk.end - chunk.begin;
    if (job.left.fetch_sub(ran, std::memory_order_acq_rel) == ran) {
      std::lock_guard<std::mutex> lk(job.done_mu);
      job.done_cv.notify_all();
    }
  }
}

void Pool::parallel_for(std::size_t n,
                        const std::function<void(std::size_t)>& body,
                        unsigned width) {
  if (in_parallel_region()) {
    throw Error(diag::Diagnostic{
        diag::Severity::kFatal, "PAR-001", "thread pool", diag::kNoCycle,
        "nested parallel region: parallel_for called from inside a "
        "parallel_for task; run the inner loop serially "
        "(Pool::in_parallel_region())",
        {}});
  }
  if (n == 0) return;
  width = std::min(width == 0 ? lanes_ : width, lanes_);
  if (width <= 1 || n == 1) {
    // Same contract as the threaded path: every task runs, and the lowest
    // task index's exception is the one that escapes.
    RegionGuard region;
    std::exception_ptr err;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->width = width;
  job->left.store(n, std::memory_order_relaxed);
  job->queues.resize(width);
  job->queue_mu.reserve(width);
  for (unsigned lane = 0; lane < width; ++lane)
    job->queue_mu.push_back(std::make_unique<std::mutex>());

  // Four chunks per lane keeps stealing meaningful without shredding the
  // iteration space; chunks are dealt round-robin so lane 0's own work is
  // spread across the whole range.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(width) * 4));
  std::size_t begin = 0;
  unsigned lane = 0;
  while (begin < n) {
    const std::size_t end = std::min(n, begin + chunk);
    job->queues[lane].push_back(Job::Chunk{begin, end});
    begin = end;
    lane = (lane + 1) % width;
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    ++generation_;
  }
  cv_.notify_all();

  participate(*job, 0);
  {
    std::unique_lock<std::mutex> lk(job->done_mu);
    job->done_cv.wait(
        lk, [&] { return job->left.load(std::memory_order_acquire) == 0; });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (job_ == job) job_ = nullptr;
  }
  if (job->err) std::rethrow_exception(job->err);
}

}  // namespace asicpp::par
