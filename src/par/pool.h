// Host-parallel execution substrate.
//
// The compiled simulator exists to make cycle-true simulation "fast enough
// to explore the design space" (paper, section 4); on a modern host that
// also means using every core. This module is the one place threads are
// created: a small work-stealing pool shared by the level-parallel cycle
// engines (sched/cyclesched, sim/compiled), the batched differential
// driver (verify/diffrun), and the fuzzer front end (tools/asicpp-fuzz).
//
// Design rules, in priority order:
//
//   1. Determinism. Parallel results must be bit-identical to serial ones
//      regardless of lane count. parallel_for only expresses *independent*
//      work (distinct slots/nets/specs); ordered_map / ordered_reduce fold
//      results in index order on the calling thread; when several tasks
//      throw, the lowest-index exception is the one rethrown.
//   2. No nesting. A parallel region cannot open another one — PAR-001 is
//      thrown instead of deadlocking or silently serializing. Callers that
//      may run on a worker lane (the shrinker inside a fuzz worker) check
//      Pool::in_parallel_region() and take their serial path, which is
//      required to be behaviourally identical.
//   3. Explicit sharing. Anything mutated inside a region is either
//      per-task (slots, per-worker DiagEngine sinks) or a RelaxedCounter.
//      Cross-thread misuse of single-owner objects trips PAR-002 (see
//      diag::DiagEngine, sim::Recorder).
//
// Stable code registry (documented in DESIGN.md section 9):
//   PAR-001 nested parallel region
//   PAR-002 cross-thread use of a single-owner object
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace asicpp::par {

/// Monotonic counter safe to bump from inside a parallel region without
/// ordering cost, and copyable so owners (e.g. sim::CompiledSystem) keep
/// their value semantics. Reads are relaxed: callers synchronize via the
/// region join, which happens-before any get() after parallel_for returns.
class RelaxedCounter {
 public:
  RelaxedCounter(std::uint64_t v = 0) : v_(v) {}
  RelaxedCounter(const RelaxedCounter& o)
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.v_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_;
};

/// A fixed set of execution lanes: the calling thread plus lanes()-1
/// persistent helper threads. Work is distributed as index chunks over
/// per-lane deques; a lane that drains its own deque steals from the back
/// of the others (classic work stealing, coarse chunks, mutex-per-deque —
/// the regions this pool serves are microseconds to seconds long, not
/// nanoseconds).
class Pool {
 public:
  /// Execution lanes to create (including the caller's). 0 = one lane per
  /// hardware thread.
  explicit Pool(unsigned lanes = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  unsigned lanes() const { return lanes_; }

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned hardware_lanes();

  /// True on a thread currently executing parallel_for tasks (including
  /// the calling thread inside its own region). Serial fallbacks key off
  /// this instead of attempting a nested region.
  static bool in_parallel_region();

  /// Process-wide pool, sized to every hardware thread (at least 8 lanes,
  /// so parallel paths stay genuinely multi-threaded — and testable — on
  /// small machines; idle lanes cost one blocked thread each).
  static Pool& shared();

  /// Run body(i) for every i in [0, n). The caller participates; at most
  /// min(width, lanes()) lanes execute (width 0 = all lanes). Blocks until
  /// every task finished. When tasks throw, all tasks still run and the
  /// exception of the lowest task index is rethrown (deterministic under
  /// any schedule). Throws Error{PAR-001} when called from inside a
  /// parallel region.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    unsigned width = 0);

  /// Deterministic parallel map: out[i] = fn(i), computed on the pool,
  /// returned in index order. R must be default-constructible.
  template <typename R>
  std::vector<R> ordered_map(std::size_t n,
                             const std::function<R(std::size_t)>& fn,
                             unsigned width = 0) {
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); }, width);
    return out;
  }

  /// Deterministic ordered reduce: results of fn are folded strictly in
  /// ascending index order on the calling thread, so non-commutative folds
  /// (string concatenation, diagnostics merging) are schedule-independent.
  template <typename R, typename Fold>
  R ordered_reduce(std::size_t n, R init, const std::function<R(std::size_t)>& fn,
                   Fold fold, unsigned width = 0) {
    std::vector<R> parts = ordered_map<R>(n, fn, width);
    for (std::size_t i = 0; i < n; ++i) init = fold(std::move(init), std::move(parts[i]));
    return init;
  }

 private:
  struct Job {
    /// Per-lane chunk deques; a chunk is a [begin, end) index range.
    struct Chunk {
      std::size_t begin;
      std::size_t end;
    };
    std::vector<std::deque<Chunk>> queues;
    std::vector<std::unique_ptr<std::mutex>> queue_mu;
    const std::function<void(std::size_t)>* body = nullptr;
    unsigned width = 1;
    std::atomic<std::size_t> left{0};  ///< tasks not yet finished
    std::mutex err_mu;
    std::exception_ptr err;
    std::size_t err_index = 0;
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  void worker_main(unsigned lane);
  static void participate(Job& job, unsigned lane);

  unsigned lanes_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Job> job_;       ///< current job, null when idle
  std::uint64_t generation_ = 0;   ///< bumped per job so lanes run each once
  bool stop_ = false;
};

}  // namespace asicpp::par
