#include "batch/batch.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "ckpt/snapshot.h"
#include "opt/semantics.h"

namespace asicpp::batch {

using Img = sim::CompiledSystem;

namespace {

// fixpt::quantize with the Format-derived constants hoisted out of the lane
// loop. fixpt::quantize recomputes its scale and clamp bounds from the Format
// on every call, which dominates cast/commit-heavy tapes; here they are
// computed once per instruction. Scaling by an exact power of two and the
// identical round/floor + clamp sequence keeps every lane bit-identical to
// the scalar path (clamping an in-range mantissa is a no-op, and min/max
// propagate NaN exactly like the original range test). The two's-complement
// wrap case keeps the library call — it needs fmod and is rare in practice.
struct QuantSpec {
  double scale, inv_scale, hi, lo;
  bool round, saturate;
  explicit QuantSpec(const fixpt::Format& f)
      : scale(std::ldexp(1.0, f.frac_bits())),
        inv_scale(std::ldexp(1.0, -f.frac_bits())),
        hi(std::ldexp(f.max_value(), f.frac_bits())),
        lo(std::ldexp(f.min_value(), f.frac_bits())),
        round(f.quant == fixpt::Quant::kRound),
        saturate(f.ovf == fixpt::Overflow::kSaturate) {}
};

inline double quantize_one(double v, const QuantSpec& q,
                           const fixpt::Format& fmt) {
  if (!q.saturate) return fixpt::quantize(v, fmt);
  double m = q.round ? std::round(v * q.scale) : std::floor(v * q.scale);
  m = std::min(std::max(m, q.lo), q.hi);
  return m * q.inv_scale;
}

void quantize_lanes(double* d, const double* a, unsigned L,
                    const fixpt::Format& fmt) {
  const QuantSpec q(fmt);
  if (!q.saturate) {
    for (unsigned l = 0; l < L; ++l) d[l] = fixpt::quantize(a[l], fmt);
    return;
  }
  if (q.round) {
    for (unsigned l = 0; l < L; ++l) {
      double m = std::round(a[l] * q.scale);
      m = std::min(std::max(m, q.lo), q.hi);
      d[l] = m * q.inv_scale;
    }
  } else {
    for (unsigned l = 0; l < L; ++l) {
      double m = std::floor(a[l] * q.scale);
      m = std::min(std::max(m, q.lo), q.hi);
      d[l] = m * q.inv_scale;
    }
  }
}

}  // namespace

BatchedSystem BatchedSystem::compile(const sched::CycleScheduler& sched,
                                     unsigned lanes,
                                     const opt::PassOptions& passes) {
  return BatchedSystem(Img::compile(sched, passes), lanes);
}

BatchedSystem::BatchedSystem(Img img, unsigned lanes)
    : img_(std::move(img)), lanes_(lanes) {
  if (lanes_ == 0)
    throw std::invalid_argument("BatchedSystem: lane count must be >= 1");
  const unsigned L = lanes_;
  // Broadcast the image's compile-time state into every lane: compilation
  // snapshots the current register/FSM state, and all lanes start there.
  slots_.resize(img_.slots_.size() * L);
  for (std::size_t s = 0; s < img_.slots_.size(); ++s) {
    for (unsigned l = 0; l < L; ++l) slots_[s * L + l] = img_.slots_[s];
  }
  net_token_.assign(img_.net_token_.size() * L, 0);
  fired_.assign(img_.comps_.size() * L, 0);
  pending_.assign(img_.comps_.size() * L, -1);
  selected_.assign(img_.comps_.size() * L, -1);
  state_.resize(img_.comps_.size() * L);
  for (std::size_t c = 0; c < img_.comps_.size(); ++c) {
    for (unsigned l = 0; l < L; ++l) state_[c * L + l] = img_.comps_[c].state;
  }
  refresh_vals_.resize(img_.refresh_.size() * L);
  for (std::size_t r = 0; r < img_.refresh_.size(); ++r) {
    const double v = img_.refresh_[r].node->value.value();
    for (unsigned l = 0; l < L; ++l) refresh_vals_[r * L + l] = v;
  }
  all_lanes_.resize(L);
  for (unsigned l = 0; l < L; ++l) all_lanes_[l] = l;
  group_.reserve(L);
  ready_.reserve(L);
  grouped_.assign(L, 0);
}

// ---------------------------------------------------------------------------
// Tape execution: the SoA kernel. Each instruction runs over the full lane
// vector — contiguous loads/stores, no per-lane branching — which is what
// makes the batch auto-vectorizable. The hot operators get dedicated loops;
// the rest share the one semantics definition in opt/apply_op_value.

void BatchedSystem::exec_lanes(const sim::Tape& tape) {
  const unsigned L = lanes_;
  for (const sim::Instr& i : tape) {
    double* d = lane_base(i.dst);
    const double* a = lane_base(i.a);
    if (i.op == sfg::Op::kCount) {  // plain / quantized copy
      if (i.quant) {
        quantize_lanes(d, a, L, i.fmt);
      } else {
        for (unsigned l = 0; l < L; ++l) d[l] = a[l];
      }
      continue;
    }
    const double* b = i.b >= 0 ? lane_base(i.b) : nullptr;
    const double* c = i.c >= 0 ? lane_base(i.c) : nullptr;
    switch (i.op) {
      case sfg::Op::kAdd:
        for (unsigned l = 0; l < L; ++l) d[l] = a[l] + b[l];
        break;
      case sfg::Op::kSub:
        for (unsigned l = 0; l < L; ++l) d[l] = a[l] - b[l];
        break;
      case sfg::Op::kMul:
        for (unsigned l = 0; l < L; ++l) d[l] = a[l] * b[l];
        break;
      case sfg::Op::kNeg:
        for (unsigned l = 0; l < L; ++l) d[l] = -a[l];
        break;
      case sfg::Op::kMux:
        for (unsigned l = 0; l < L; ++l) d[l] = a[l] != 0.0 ? b[l] : c[l];
        break;
      case sfg::Op::kCast:
        quantize_lanes(d, a, L, i.fmt);
        break;
      default:
        for (unsigned l = 0; l < L; ++l) {
          d[l] = opt::apply_op_value(i.op, a[l], b != nullptr ? b[l] : 0.0,
                                     c != nullptr ? c[l] : 0.0, i.fmt);
        }
        break;
    }
  }
  ops_ += tape.size() * L;
}

bool BatchedSystem::lane_has_tokens(const Img::SfgCode& s, unsigned lane) const {
  for (const auto n : s.required_nets) {
    if (!tok_base(n)[lane]) return false;
  }
  return true;
}

void BatchedSystem::push_masked(const std::vector<Img::SfgCode::Push>& pushes,
                                const std::vector<unsigned>& group) {
  const unsigned L = lanes_;
  for (const auto& p : pushes) {
    double* net = net_base(p.net);
    const double* src = lane_base(p.src);
    std::uint8_t* tok = tok_base(p.net);
    if (group.size() == L) {
      for (unsigned l = 0; l < L; ++l) {
        net[l] = src[l];
        tok[l] = 1;
      }
    } else {
      for (const unsigned l : group) {
        net[l] = src[l];
        tok[l] = 1;
      }
    }
  }
}

void BatchedSystem::run_sfg_pre_lanes(std::int32_t id,
                                      const std::vector<unsigned>& group) {
  const Img::SfgCode& s = img_.sfgs_[static_cast<std::size_t>(id)];
  // The pre tape writes only this SFG's private scratch, so it can run
  // full-lane; only the net pushes carry the group mask.
  exec_lanes(s.pre);
  push_masked(s.pre_pushes, group);
}

void BatchedSystem::run_sfg_main_lanes(std::int32_t id,
                                       const std::vector<unsigned>& group) {
  const Img::SfgCode& s = img_.sfgs_[static_cast<std::size_t>(id)];
  exec_lanes(s.load_inputs);
  exec_lanes(s.main);
  push_masked(s.main_pushes, group);
}

void BatchedSystem::commit_lanes(std::int32_t id,
                                 const std::vector<unsigned>& group) {
  const unsigned L = lanes_;
  for (const auto& cm : img_.sfgs_[static_cast<std::size_t>(id)].commits) {
    double* dst = lane_base(cm.dst);
    const double* src = lane_base(cm.src);
    if (group.size() == L) {
      if (cm.has_fmt) {
        quantize_lanes(dst, src, L, cm.fmt);
      } else {
        for (unsigned l = 0; l < L; ++l) dst[l] = src[l];
      }
    } else if (cm.has_fmt) {
      const QuantSpec q(cm.fmt);
      for (const unsigned l : group) dst[l] = quantize_one(src[l], q, cm.fmt);
    } else {
      for (const unsigned l : group) dst[l] = src[l];
    }
  }
}

// ---------------------------------------------------------------------------
// Per-lane firing state

bool BatchedSystem::lane_done(std::int32_t ci, unsigned lane) const {
  const std::size_t base = static_cast<std::size_t>(ci) * lanes_ + lane;
  if (img_.comps_[static_cast<std::size_t>(ci)].kind == Kind::kFsm)
    return fired_[base] != 0 || pending_[base] < 0;
  return fired_[base] != 0;
}

bool BatchedSystem::lane_blocked(std::int32_t ci, unsigned lane) const {
  const std::size_t base = static_cast<std::size_t>(ci) * lanes_ + lane;
  switch (img_.comps_[static_cast<std::size_t>(ci)].kind) {
    case Kind::kFsm: return pending_[base] >= 0 && fired_[base] == 0;
    case Kind::kUntimed: return false;  // opportunistic
    default: return fired_[base] == 0;
  }
}

bool BatchedSystem::comp_done(std::int32_t ci) const {
  for (unsigned l = 0; l < lanes_; ++l) {
    if (!lane_done(ci, l)) return false;
  }
  return true;
}

bool BatchedSystem::any_blocked() const {
  for (std::size_t ci = 0; ci < img_.comps_.size(); ++ci) {
    for (unsigned l = 0; l < lanes_; ++l) {
      if (lane_blocked(static_cast<std::int32_t>(ci), l)) return true;
    }
  }
  return false;
}

// Attempt to fire component `ci` in every lane that is ready. Lanes are
// grouped by their selection (FSM transition / dispatch opcode) so each
// distinct tape set executes once, with the group as the push/commit mask.
bool BatchedSystem::fire_lanes(std::int32_t ci) {
  const Img::Comp& c = img_.comps_[static_cast<std::size_t>(ci)];
  const unsigned L = lanes_;
  const std::size_t base = static_cast<std::size_t>(ci) * L;
  std::uint8_t* fired = fired_.data() + base;
  bool progress = false;

  switch (c.kind) {
    case Kind::kFsm: {
      ready_.clear();
      for (unsigned l = 0; l < L; ++l) {
        if (fired[l] != 0 || pending_[base + l] < 0) continue;
        const auto& gt = c.by_state[static_cast<std::size_t>(state_[base + l])]
                             [static_cast<std::size_t>(pending_[base + l])];
        bool ok = true;
        for (const auto id : gt.sfgs) {
          if (!lane_has_tokens(img_.sfgs_[static_cast<std::size_t>(id)], l)) {
            ok = false;
            break;
          }
        }
        if (ok) ready_.push_back(l);
      }
      // Group the ready lanes by (state, transition): each group shares one
      // tape set.
      std::fill(grouped_.begin(), grouped_.end(), 0);
      for (std::size_t i = 0; i < ready_.size(); ++i) {
        const unsigned l0 = ready_[i];
        if (grouped_[l0] != 0) continue;
        group_.clear();
        for (std::size_t j = i; j < ready_.size(); ++j) {
          const unsigned l = ready_[j];
          if (state_[base + l] == state_[base + l0] &&
              pending_[base + l] == pending_[base + l0]) {
            group_.push_back(l);
            grouped_[l] = 1;
          }
        }
        const auto& gt = c.by_state[static_cast<std::size_t>(state_[base + l0])]
                             [static_cast<std::size_t>(pending_[base + l0])];
        for (const auto id : gt.sfgs) run_sfg_main_lanes(id, group_);
        for (const unsigned l : group_) fired[l] = 1;
        fired_lanes_total_ += group_.size();
        progress = true;
      }
      return progress;
    }
    case Kind::kSfg: {
      ready_.clear();
      const Img::SfgCode& s = img_.sfgs_[static_cast<std::size_t>(c.solo_sfg)];
      for (unsigned l = 0; l < L; ++l) {
        if (fired[l] == 0 && lane_has_tokens(s, l)) ready_.push_back(l);
      }
      if (ready_.empty()) return false;
      run_sfg_main_lanes(c.solo_sfg, ready_);
      for (const unsigned l : ready_) fired[l] = 1;
      fired_lanes_total_ += ready_.size();
      return true;
    }
    case Kind::kDispatch: {
      // Decode: lanes whose instruction token arrived pick their SFG (per
      // lane — different lanes may run different opcodes) and the freshly
      // decoded lanes, grouped by selection, produce their pre tokens.
      ready_.clear();  // freshly decoded lanes
      const std::uint8_t* itok = tok_base(c.instr_net);
      const double* ival = net_base(c.instr_net);
      for (unsigned l = 0; l < L; ++l) {
        if (fired[l] != 0 || selected_[base + l] >= 0 || itok[l] == 0) continue;
        const long opcode = std::lround(ival[l]);
        const auto it = c.table.find(opcode);
        const std::int32_t sel =
            (it != c.table.end()) ? it->second : c.default_sfg;
        if (sel < 0) {
          throw std::logic_error("BatchedSystem '" + c.name +
                                 "': unknown opcode " + std::to_string(opcode) +
                                 " and no default (lane " + std::to_string(l) +
                                 ")");
        }
        selected_[base + l] = sel;
        ready_.push_back(l);
        progress = true;
      }
      std::fill(grouped_.begin(), grouped_.end(), 0);
      for (std::size_t i = 0; i < ready_.size(); ++i) {
        const unsigned l0 = ready_[i];
        if (grouped_[l0] != 0) continue;
        group_.clear();
        for (std::size_t j = i; j < ready_.size(); ++j) {
          const unsigned l = ready_[j];
          if (selected_[base + l] == selected_[base + l0]) {
            group_.push_back(l);
            grouped_[l] = 1;
          }
        }
        run_sfg_pre_lanes(selected_[base + l0], group_);
      }
      // Fire: decoded lanes whose selected SFG has all inputs.
      ready_.clear();
      for (unsigned l = 0; l < L; ++l) {
        if (fired[l] != 0 || selected_[base + l] < 0) continue;
        if (lane_has_tokens(
                img_.sfgs_[static_cast<std::size_t>(selected_[base + l])], l))
          ready_.push_back(l);
      }
      std::fill(grouped_.begin(), grouped_.end(), 0);
      for (std::size_t i = 0; i < ready_.size(); ++i) {
        const unsigned l0 = ready_[i];
        if (grouped_[l0] != 0) continue;
        group_.clear();
        for (std::size_t j = i; j < ready_.size(); ++j) {
          const unsigned l = ready_[j];
          if (selected_[base + l] == selected_[base + l0]) {
            group_.push_back(l);
            grouped_[l] = 1;
          }
        }
        run_sfg_main_lanes(selected_[base + l0], group_);
        for (const unsigned l : group_) fired[l] = 1;
        fired_lanes_total_ += group_.size();
        progress = true;
      }
      return progress;
    }
    case Kind::kUntimed: {
      // The closure is shared across lanes, so it runs once per ready lane
      // with that lane's inputs. Stateless closures only — see batch.h.
      bool any = false;
      for (unsigned l = 0; l < L; ++l) {
        if (fired[l] != 0) continue;
        bool ok = true;
        for (const auto n : c.in_nets) {
          if (!tok_base(n)[l]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        std::vector<fixpt::Fixed> in;
        in.reserve(c.in_nets.size());
        for (const auto n : c.in_nets) in.emplace_back(net_base(n)[l]);
        const auto out = c.untimed->invoke(in);
        if (out.size() != c.out_nets.size()) {
          throw std::logic_error("BatchedSystem '" + c.name +
                                 "': untimed arity mismatch");
        }
        for (std::size_t i = 0; i < out.size(); ++i) {
          net_base(c.out_nets[i])[l] = out[i].value();
          tok_base(c.out_nets[i])[l] = 1;
        }
        fired[l] = 1;
        ++fired_lanes_total_;
        any = true;
      }
      return any;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// The four-phase cycle, lane-vectorized. Phase structure and semantics
// mirror sim::CompiledSystem::cycle exactly; see that function for the
// scalar reference.

void BatchedSystem::cycle() {
  const unsigned L = lanes_;

  // Net reset + external drives. External pins live on shared sched::Net
  // objects, so a pin drive broadcasts to every lane; per-lane stimulus
  // goes through poke(lane, ...).
  std::fill(net_token_.begin(), net_token_.end(), 0);
  for (std::size_t i = 0; i < img_.ext_nets_.size(); ++i) {
    auto* n = const_cast<sched::Net*>(img_.ext_nets_[i]);
    n->begin_cycle();
    if (n->has_token()) {
      const double v = n->token().value();
      double* s = lane_base(img_.ext_net_slots_[i]);
      std::uint8_t* t = net_token_.data() + i * L;
      for (unsigned l = 0; l < L; ++l) {
        s[l] = v;
        t[l] = 1;
      }
    }
  }
  for (std::size_t r = 0; r < img_.refresh_.size(); ++r) {
    double* s = lane_base(img_.refresh_[r].slot);
    const double* v = refresh_vals_.data() + r * L;
    for (unsigned l = 0; l < L; ++l) s[l] = v[l];
  }

  // Phase 0: transition selection. Guard tapes write only private scratch,
  // so every guard of every state occupied by some lane runs full-lane;
  // the per-lane selection then reads each lane's own guard slot.
  std::fill(fired_.begin(), fired_.end(), 0);
  std::fill(pending_.begin(), pending_.end(), -1);
  std::fill(selected_.begin(), selected_.end(), -1);
  for (std::size_t ci = 0; ci < img_.comps_.size(); ++ci) {
    const Img::Comp& c = img_.comps_[ci];
    if (c.kind != Kind::kFsm) continue;
    const std::size_t base = ci * L;
    std::fill(grouped_.begin(), grouped_.end(), 0);
    for (unsigned l = 0; l < L; ++l) {
      const auto st = static_cast<std::size_t>(state_[base + l]);
      if (grouped_[l] != 0) continue;
      for (unsigned m = l; m < L; ++m) {
        if (static_cast<std::size_t>(state_[base + m]) == st) grouped_[m] = 1;
      }
      for (const auto& gt : c.by_state[st]) {
        if (!gt.always) exec_lanes(gt.guard);
      }
    }
    for (unsigned l = 0; l < L; ++l) {
      const auto& ts = c.by_state[static_cast<std::size_t>(state_[base + l])];
      for (std::size_t ti = 0; ti < ts.size(); ++ti) {
        if (ts[ti].always || lane_base(ts[ti].guard_slot)[l] != 0.0) {
          pending_[base + l] = static_cast<std::int32_t>(ti);
          break;
        }
      }
    }
  }

  // Phase 1: token production, grouped by each lane's pending transition.
  for (std::size_t ci = 0; ci < img_.comps_.size(); ++ci) {
    const Img::Comp& c = img_.comps_[ci];
    const std::size_t base = ci * L;
    if (c.kind == Kind::kFsm) {
      std::fill(grouped_.begin(), grouped_.end(), 0);
      for (unsigned l = 0; l < L; ++l) {
        if (grouped_[l] != 0 || pending_[base + l] < 0) continue;
        group_.clear();
        for (unsigned m = l; m < L; ++m) {
          if (state_[base + m] == state_[base + l] &&
              pending_[base + m] == pending_[base + l]) {
            group_.push_back(m);
            grouped_[m] = 1;
          }
        }
        const auto& gt = c.by_state[static_cast<std::size_t>(state_[base + l])]
                             [static_cast<std::size_t>(pending_[base + l])];
        for (const auto id : gt.sfgs) run_sfg_pre_lanes(id, group_);
      }
    } else if (c.kind == Kind::kSfg) {
      run_sfg_pre_lanes(c.solo_sfg, all_lanes_);
    }
  }

  // Phase 2, levelized: one pass over the image's precomputed level order.
  bool need_iterative = true;
  bool walk_missed = false;
  if (mode_ != ScheduleMode::kIterative && img_.levelizable_) {
    for (const auto& s : img_.level_order_) {
      if (!comp_done(s.comp)) fire_lanes(s.comp);
    }
    need_iterative = any_blocked();
    walk_missed = need_iterative;
    if (!need_iterative) ++levelized_cycles_total_;
  }

  // Phase 2, iterative relaxation (also the fallback after a missed walk).
  if (need_iterative) {
    int iters = walk_missed ? 1 : 0;
    for (;;) {
      bool progress = false;
      bool all_done = true;
      for (std::size_t ci = 0; ci < img_.comps_.size(); ++ci) {
        const auto i = static_cast<std::int32_t>(ci);
        if (comp_done(i)) continue;
        if (fire_lanes(i)) progress = true;
        if (!comp_done(i)) all_done = false;
      }
      ++iters;
      if (iters > 1) ++retry_passes_total_;
      if (all_done) break;
      if (!progress || iters >= img_.max_iters_) {
        if (any_blocked()) {
          diag::Diagnostic d = deadlock_postmortem();
          diagnostics().report(d);
          throw sched::DeadlockError(std::move(d));
        }
        break;
      }
    }
  }

  // Phase 3: register update + state commit, masked to the fired lanes and
  // grouped by each lane's selection.
  for (std::size_t ci = 0; ci < img_.comps_.size(); ++ci) {
    const Img::Comp& c = img_.comps_[ci];
    const std::size_t base = ci * L;
    switch (c.kind) {
      case Kind::kFsm: {
        std::fill(grouped_.begin(), grouped_.end(), 0);
        for (unsigned l = 0; l < L; ++l) {
          if (grouped_[l] != 0 || fired_[base + l] == 0) continue;
          group_.clear();
          for (unsigned m = l; m < L; ++m) {
            if (fired_[base + m] != 0 && state_[base + m] == state_[base + l] &&
                pending_[base + m] == pending_[base + l]) {
              group_.push_back(m);
              grouped_[m] = 1;
            }
          }
          const auto& gt =
              c.by_state[static_cast<std::size_t>(state_[base + l])]
                        [static_cast<std::size_t>(pending_[base + l])];
          for (const auto id : gt.sfgs) commit_lanes(id, group_);
          for (const unsigned m : group_) state_[base + m] = gt.to;
        }
        break;
      }
      case Kind::kSfg: {
        group_.clear();
        for (unsigned l = 0; l < L; ++l) {
          if (fired_[base + l] != 0) group_.push_back(l);
        }
        if (!group_.empty()) commit_lanes(c.solo_sfg, group_);
        break;
      }
      case Kind::kDispatch: {
        std::fill(grouped_.begin(), grouped_.end(), 0);
        for (unsigned l = 0; l < L; ++l) {
          if (grouped_[l] != 0 || fired_[base + l] == 0) continue;
          group_.clear();
          for (unsigned m = l; m < L; ++m) {
            if (fired_[base + m] != 0 &&
                selected_[base + m] == selected_[base + l]) {
              group_.push_back(m);
              grouped_[m] = 1;
            }
          }
          commit_lanes(selected_[base + l], group_);
        }
        break;
      }
      case Kind::kUntimed:
        break;
    }
  }
  ++cycles_;
}

diag::Diagnostic BatchedSystem::deadlock_postmortem() const {
  diag::Diagnostic d;
  d.severity = diag::Severity::kFatal;
  d.code = "SCHED-001";
  d.component = "batched simulator";
  d.cycle = cycles_;

  std::string names;
  for (std::size_t ci = 0; ci < img_.comps_.size(); ++ci) {
    for (unsigned l = 0; l < lanes_; ++l) {
      if (!lane_blocked(static_cast<std::int32_t>(ci), l)) continue;
      const Img::Comp& c = img_.comps_[ci];
      names += (names.empty() ? "" : ", ") + c.name;
      std::string waits;
      const auto missing_of = [&](std::int32_t sfg_id) {
        for (const auto n :
             img_.sfgs_[static_cast<std::size_t>(sfg_id)].required_nets) {
          if (tok_base(n)[l] == 0)
            waits += (waits.empty() ? "" : ", ") + std::string("'") +
                     img_.net_names_[static_cast<std::size_t>(n)] + "'";
        }
      };
      const std::size_t base = ci * lanes_ + l;
      switch (c.kind) {
        case Kind::kFsm: {
          const auto& gt =
              c.by_state[static_cast<std::size_t>(state_[base])]
                        [static_cast<std::size_t>(pending_[base])];
          for (const auto id : gt.sfgs) missing_of(id);
          break;
        }
        case Kind::kSfg: missing_of(c.solo_sfg); break;
        case Kind::kDispatch:
          if (selected_[base] < 0) {
            if (tok_base(c.instr_net)[l] == 0)
              waits = "'" +
                      img_.net_names_[static_cast<std::size_t>(c.instr_net)] +
                      "'";
          } else {
            missing_of(selected_[base]);
          }
          break;
        case Kind::kUntimed: break;
      }
      d.note("component '" + c.name + "' (lane " + std::to_string(l) +
             ") waits on net" +
             (waits.empty() ? "s: (none — iteration bound too low?)"
                            : "(s): " + waits));
      break;  // one representative lane per component
    }
  }
  d.message = "combinational deadlock, unfired components: " + names;
  return d;
}

RunResult BatchedSystem::run(const RunOptions& opts) {
  struct Restore {
    BatchedSystem* s;
    diag::DiagEngine* diag;
    ScheduleMode mode;
    ~Restore() {
      s->diag_ = diag;
      s->mode_ = mode;
    }
  } restore{this, diag_, mode_};
  if (opts.diagnostics != nullptr) diag_ = opts.diagnostics;
  mode_ = opts.schedule;

  const std::uint64_t budget = opts.cycle_budget;
  const double wall = opts.wall_clock_s;

  RunResult r;
  const std::uint64_t retry0 = retry_passes_total_;
  const std::uint64_t level0 = levelized_cycles_total_;
  const std::uint64_t fired0 = fired_lanes_total_;
  watchdog_tripped_ = false;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < opts.cycles; ++i) {
    if (budget != 0 && cycles_ >= budget) {
      auto& d = diagnostics().fatal(
          "WATCHDOG-001", "batched simulator",
          "cycle budget (" + std::to_string(budget) + ") exhausted after " +
              std::to_string(i) + " of " + std::to_string(opts.cycles) +
              " requested cycles; stopping run");
      d.cycle = cycles_;
      watchdog_tripped_ = true;
      r.stop = StopReason::kCycleBudget;
      break;
    }
    if (wall > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= wall) {
        auto& d = diagnostics().fatal(
            "WATCHDOG-002", "batched simulator",
            "wall-clock limit (" + std::to_string(wall) +
                " s) exceeded after " + std::to_string(i) + " of " +
                std::to_string(opts.cycles) +
                " requested cycles; stopping run");
        d.cycle = cycles_;
        watchdog_tripped_ = true;
        r.stop = StopReason::kWallClock;
        break;
      }
    }
    cycle();
    ++r.cycles;
    if (opts.on_cycle_end) opts.on_cycle_end(cycles_);
    if (opts.checkpoint_every != 0 && opts.on_checkpoint &&
        (i + 1) % opts.checkpoint_every == 0) {
      opts.on_checkpoint(cycles_);
      ++r.checkpoints;
    }
  }
  r.retry_passes = retry_passes_total_ - retry0;
  r.levelized_cycles = levelized_cycles_total_ - level0;
  r.firings = fired_lanes_total_ - fired0;
  r.schedule = (r.levelized_cycles > 0 && r.levelized_cycles * 2 >= r.cycles)
                   ? ScheduleMode::kLevelized
                   : ScheduleMode::kIterative;
  return r;
}

void BatchedSystem::reset() {
  const unsigned L = lanes_;
  for (const auto& ri : img_.reg_inits_) {
    double* s = lane_base(ri.slot);
    for (unsigned l = 0; l < L; ++l) s[l] = ri.init;
  }
  for (std::size_t ci = 0; ci < img_.comps_.size(); ++ci) {
    if (img_.comps_[ci].kind != Kind::kFsm) continue;
    for (unsigned l = 0; l < L; ++l) state_[ci * L + l] = img_.comps_[ci].initial;
  }
  cycles_ = 0;
}

double BatchedSystem::net_value(unsigned lane, const std::string& name) const {
  if (lane >= lanes_)
    throw std::out_of_range("BatchedSystem::net_value: lane out of range");
  const auto it = img_.net_ids_.find(name);
  if (it == img_.net_ids_.end())
    throw std::out_of_range("BatchedSystem::net_value: no net '" + name + "'");
  return lane_base(img_.net_slots_[static_cast<std::size_t>(it->second)])[lane];
}

double BatchedSystem::reg_value(unsigned lane, const std::string& name) const {
  if (lane >= lanes_)
    throw std::out_of_range("BatchedSystem::reg_value: lane out of range");
  const auto it = img_.reg_slots_.find(name);
  if (it == img_.reg_slots_.end())
    throw std::out_of_range("BatchedSystem::reg_value: no register '" + name +
                            "'");
  return lane_base(it->second)[lane];
}

void BatchedSystem::poke(unsigned lane, const std::string& input_name,
                         double v) {
  if (lane >= lanes_)
    throw std::out_of_range("BatchedSystem::poke: lane out of range");
  const auto it = img_.input_slots_.find(input_name);
  if (it == img_.input_slots_.end())
    throw std::out_of_range("BatchedSystem::poke: no input '" + input_name +
                            "'");
  lane_base(it->second)[lane] = v;
  // Update the per-lane refresh source so the poke persists across cycles
  // without touching the (shared) live node.
  for (std::size_t r = 0; r < img_.refresh_.size(); ++r) {
    if (img_.refresh_[r].slot == it->second) refresh_vals_[r * lanes_ + lane] = v;
  }
}

void BatchedSystem::poke_all(const std::string& input_name, double v) {
  for (unsigned l = 0; l < lanes_; ++l) poke(l, input_name, v);
}

// ---------------------------------------------------------------------------
// Per-lane checkpoint/restore

void BatchedSystem::save_lane(unsigned lane, std::ostream& os) const {
  if (lane >= lanes_)
    throw std::out_of_range("BatchedSystem::save_lane: lane out of range");
  const unsigned L = lanes_;
  ckpt::Writer w(os);
  w.header(ckpt::EngineKind::kBatched, img_.ir_hash_, cycles_);
  w.u32(lane);
  w.u32(static_cast<std::uint32_t>(img_.slots_.size()));
  for (std::size_t s = 0; s < img_.slots_.size(); ++s) w.f64(slots_[s * L + lane]);
  w.u32(static_cast<std::uint32_t>(img_.net_token_.size()));
  for (std::size_t n = 0; n < img_.net_token_.size(); ++n)
    w.u8(net_token_[n * L + lane]);
  w.u32(static_cast<std::uint32_t>(img_.comps_.size()));
  for (std::size_t ci = 0; ci < img_.comps_.size(); ++ci) {
    const Img::Comp& c = img_.comps_[ci];
    w.i32(c.kind == Kind::kFsm ? state_[ci * L + lane] : 0);
    w.u64(c.kind == Kind::kUntimed ? c.untimed->firings() : 0);
  }
  w.u32(static_cast<std::uint32_t>(img_.refresh_.size()));
  for (std::size_t r = 0; r < img_.refresh_.size(); ++r)
    w.f64(refresh_vals_[r * L + lane]);
  w.end();
}

void BatchedSystem::restore_lane_impl(unsigned lane, std::istream& is) {
  const unsigned L = lanes_;
  ckpt::Reader r(is, "batched simulator");
  const std::uint64_t cyc = r.header(ckpt::EngineKind::kBatched, img_.ir_hash_);
  const std::uint32_t snap_lane = r.u32();
  if (snap_lane != lane) {
    r.fail("CKPT-005", "lane binding mismatch",
           {"snapshot was saved from lane " + std::to_string(snap_lane) +
                ", restore targets lane " + std::to_string(lane),
            "a per-lane snapshot must restore into the same lane index"});
  }
  const std::size_t nslots = r.count(1u << 26);
  if (nslots != img_.slots_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(nslots) +
            " slot(s), this image has " + std::to_string(img_.slots_.size())});
  }
  for (std::size_t s = 0; s < nslots; ++s) slots_[s * L + lane] = r.f64();
  const std::size_t ntok = r.count(1u << 26);
  if (ntok != img_.net_token_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(ntok) +
            " net token flag(s), this image has " +
            std::to_string(img_.net_token_.size())});
  }
  for (std::size_t n = 0; n < ntok; ++n) net_token_[n * L + lane] = r.u8();
  const std::size_t ncomps = r.count(1u << 24);
  if (ncomps != img_.comps_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(ncomps) +
            " component(s), this image has " +
            std::to_string(img_.comps_.size())});
  }
  for (std::size_t ci = 0; ci < ncomps; ++ci) {
    const Img::Comp& c = img_.comps_[ci];
    const std::int32_t st = r.i32();
    const std::uint64_t firings = r.u64();
    if (c.kind == Kind::kFsm) {
      if (st < 0 || static_cast<std::size_t>(st) >= c.by_state.size()) {
        r.fail("CKPT-004", "truncated or corrupt snapshot stream",
               {"component '" + c.name + "': FSM state index " +
                std::to_string(st) + " out of range"});
      }
      state_[ci * L + lane] = st;
    } else if (c.kind == Kind::kUntimed) {
      // The firing counter lives on the shared UntimedComponent (see
      // sched/untimed.h); per-lane restore re-seeds the shared count.
      c.untimed->set_firings(static_cast<std::size_t>(firings));
    }
  }
  const std::size_t nref = r.count(1u << 24);
  if (nref != img_.refresh_.size()) {
    r.fail("CKPT-004", "truncated or corrupt snapshot stream",
           {"snapshot carries " + std::to_string(nref) +
            " refresh value(s), this image has " +
            std::to_string(img_.refresh_.size())});
  }
  for (std::size_t i = 0; i < nref; ++i) refresh_vals_[i * L + lane] = r.f64();
  r.end();
  cycles_ = cyc;
}

void BatchedSystem::restore_lane(unsigned lane, std::istream& is) {
  if (lane >= lanes_)
    throw std::out_of_range("BatchedSystem::restore_lane: lane out of range");
  // Transactional: roll back to a pre-restore snapshot on any failure so a
  // bad stream leaves the lane untouched.
  std::ostringstream backup;
  save_lane(lane, backup);
  const std::uint64_t cyc = cycles_;
  try {
    restore_lane_impl(lane, is);
  } catch (...) {
    std::istringstream b(backup.str());
    restore_lane_impl(lane, b);
    cycles_ = cyc;
    throw;
  }
}

std::size_t BatchedSystem::footprint_bytes() const {
  return img_.footprint_bytes() + slots_.capacity() * sizeof(double) +
         net_token_.capacity() + fired_.capacity() +
         (pending_.capacity() + selected_.capacity() + state_.capacity()) *
             sizeof(std::int32_t) +
         refresh_vals_.capacity() * sizeof(double);
}

}  // namespace asicpp::batch
