// Batched structure-of-arrays multi-instance simulation.
//
// One compiled design, N independent instances in lock-step. The batched
// evaluator replays a sim::CompiledSystem's straight-line tapes over an
// instance-major structure-of-arrays slot store — slot s of lane l lives at
// `slots_[s * lanes + lane]`, so every tape instruction processes a
// contiguous vector of N lanes in one auto-vectorizable loop instead of N
// scheduler walks. This is the fleet-scale execution shape: parameter
// sweeps, Monte-Carlo stimulus, and fuzz batches become one cache-friendly
// kernel call.
//
// Semantics are cycle-exact per lane, bit-identical to running N separate
// CompiledSystem instances with the same stimulus. Lanes may diverge:
// per-lane pokes can put the lanes into different FSM states, dispatch
// opcodes, or data values, and the evaluator masks per-lane where the
// architecture demands it. The masking discipline is narrow by design:
//
//   * Tapes (guard / pre / main / input loads) always execute FULL-LANE,
//     unmasked. Every tape writes only its own private scratch slots and
//     its SFG's input slots, and within one cycle a lane's net values are
//     stable (each net is pushed at most once per lane per cycle), so
//     recomputing a not-yet-ready lane's scratch is harmless — it is
//     recomputed identically when that lane finally fires.
//   * Only net pushes, register commits, FSM state updates, and untimed
//     invocations are masked to the lanes that actually fire.
//
// Determinism contract (tested by tests/test_batch.cpp, fuzzed on every
// seed by the `batched` engine): lane count and lane position never change
// any instance's trace. Lane l of an L-lane batch produces exactly the
// trace a solo CompiledSystem produces.
//
// Untimed components' native closures are shared across lanes (there is
// one sched::UntimedComponent object), so batched execution requires
// stateless closures. Stateful closures (e.g. a RAM model) would leak one
// lane's history into another — use the structural/timed form of such
// designs for batched runs.
//
// Per-lane checkpointing: save_lane/restore_lane serialize ONE lane's
// architectural state in the versioned ckpt format (EngineKind::kBatched).
// A lane snapshot is bound to its lane index; restoring it into a
// different lane rejects with CKPT-005 (lane binding mismatch), so a
// checkpoint stream can never silently migrate an instance.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "opt/options.h"
#include "sched/run.h"
#include "sim/compiled.h"

namespace asicpp::batch {

class BatchedSystem {
 public:
  /// Compile `sched` once (via sim::CompiledSystem::compile, running the
  /// pass pipeline) and replicate its runtime state across `lanes`
  /// identical instances. Throws std::invalid_argument when lanes == 0.
  static BatchedSystem compile(const sched::CycleScheduler& sched,
                               unsigned lanes,
                               const opt::PassOptions& passes = {});

  /// Simulate one clock cycle for every lane. Throws sched::DeadlockError
  /// (SCHED-001 post-mortem naming the blocked components and lane) when
  /// any lane deadlocks combinationally.
  void cycle();

  /// Simulate per `opts`: cycle count, watchdogs, schedule mode, hooks —
  /// the unified entry point shared with the other engines. `nthreads`
  /// and `profile` are accepted but inert (the lane loop IS the
  /// parallelism). RunResult::firings counts per-lane component firings.
  RunResult run(const RunOptions& opts);

  unsigned lanes() const { return lanes_; }
  std::uint64_t cycles() const { return cycles_; }

  /// The underlying compiled image's optimizer statistics.
  const opt::PassStats& pass_stats() const { return img_.pass_stats(); }

  void set_schedule_mode(ScheduleMode m) { mode_ = m; }
  ScheduleMode schedule_mode() const { return mode_; }
  bool levelizable() const { return img_.levelizable(); }

  void attach_diagnostics(diag::DiagEngine& de) { diag_ = &de; }
  diag::DiagEngine& diagnostics() {
    return diag_ != nullptr ? *diag_ : own_diag_;
  }
  bool watchdog_tripped() const { return watchdog_tripped_; }

  /// Restore every lane's registers and FSM states to reset values.
  void reset();

  /// Last token value seen on net `name` in lane `lane`.
  double net_value(unsigned lane, const std::string& name) const;
  /// Current value of register `name` in lane `lane`.
  double reg_value(unsigned lane, const std::string& name) const;
  /// Override an unbound input signal in ONE lane (persists across
  /// cycles). This is how lanes diverge: per-lane stimulus.
  void poke(unsigned lane, const std::string& input_name, double v);
  /// Override an unbound input signal in every lane.
  void poke_all(const std::string& input_name, double v);

  // --- per-lane serialized checkpoint/restore (see ckpt/snapshot.h) ---

  /// IR content hash of the compiled image (shared by every lane).
  std::uint64_t state_hash() const { return img_.state_hash(); }

  /// Serialize lane `lane`'s architectural state (slots, net tokens, FSM
  /// states, untimed firing counters, per-lane stimulus) in the versioned
  /// ckpt format, bound to the lane index.
  void save_lane(unsigned lane, std::ostream& os) const;

  /// Restore a save_lane() snapshot into the SAME lane index. Throws
  /// ckpt::SnapshotError: CKPT-001 (wrong engine kind), CKPT-003 (other
  /// design), CKPT-004 (corrupt), CKPT-005 (snapshot bound to a different
  /// lane). On failure the lane is left exactly as it was. The global
  /// cycle counter adopts the snapshot position, so restore at matching
  /// positions (the diff_run ckpt-axis shape).
  void restore_lane(unsigned lane, std::istream& is);

  /// Bytes of live simulation data (image + all lane arrays).
  std::size_t footprint_bytes() const;

  /// Tape instructions retired, aggregated across lanes.
  std::uint64_t ops_retired() const { return ops_; }

 private:
  using Img = sim::CompiledSystem;
  using Kind = Img::Kind;

  BatchedSystem(Img img, unsigned lanes);

  double* lane_base(std::int32_t slot) {
    return slots_.data() + static_cast<std::size_t>(slot) * lanes_;
  }
  const double* lane_base(std::int32_t slot) const {
    return slots_.data() + static_cast<std::size_t>(slot) * lanes_;
  }
  double* net_base(std::int32_t net) {
    return lane_base(img_.net_slots_[static_cast<std::size_t>(net)]);
  }
  std::uint8_t* tok_base(std::int32_t net) {
    return net_token_.data() + static_cast<std::size_t>(net) * lanes_;
  }
  const std::uint8_t* tok_base(std::int32_t net) const {
    return net_token_.data() + static_cast<std::size_t>(net) * lanes_;
  }

  void exec_lanes(const sim::Tape& tape);
  bool lane_has_tokens(const Img::SfgCode& s, unsigned lane) const;
  void push_masked(const std::vector<Img::SfgCode::Push>& pushes,
                   const std::vector<unsigned>& group);
  void run_sfg_pre_lanes(std::int32_t sfg, const std::vector<unsigned>& group);
  void run_sfg_main_lanes(std::int32_t sfg, const std::vector<unsigned>& group);
  void commit_lanes(std::int32_t sfg, const std::vector<unsigned>& group);
  bool fire_lanes(std::int32_t ci);
  bool lane_done(std::int32_t ci, unsigned lane) const;
  bool lane_blocked(std::int32_t ci, unsigned lane) const;
  bool comp_done(std::int32_t ci) const;
  bool any_blocked() const;
  diag::Diagnostic deadlock_postmortem() const;
  void restore_lane_impl(unsigned lane, std::istream& is);

  Img img_;
  unsigned lanes_ = 1;

  // SoA runtime state: outer index is the image's slot/net/comp index,
  // lanes contiguous and innermost.
  std::vector<double> slots_;
  std::vector<std::uint8_t> net_token_;
  std::vector<std::uint8_t> fired_;     ///< comps x lanes
  std::vector<std::int32_t> pending_;   ///< comps x lanes, transition idx
  std::vector<std::int32_t> selected_;  ///< comps x lanes, sfg id
  std::vector<std::int32_t> state_;     ///< comps x lanes, FSM state
  std::vector<double> refresh_vals_;    ///< refresh x lanes, per-lane pokes

  std::vector<unsigned> all_lanes_;
  // Reusable grouping scratch, so steady-state cycles allocate nothing.
  std::vector<unsigned> group_;
  std::vector<unsigned> ready_;
  std::vector<std::uint8_t> grouped_;

  std::uint64_t cycles_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t fired_lanes_total_ = 0;
  std::uint64_t retry_passes_total_ = 0;
  std::uint64_t levelized_cycles_total_ = 0;
  ScheduleMode mode_ = ScheduleMode::kAuto;
  diag::DiagEngine* diag_ = nullptr;
  diag::DiagEngine own_diag_;
  bool watchdog_tripped_ = false;
};

}  // namespace asicpp::batch
