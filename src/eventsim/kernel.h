// Event-driven RT simulation kernel.
//
// Table 1 of the paper compares the C++ simulation modes against RT-VHDL
// running on a commercial event-driven simulator. This kernel is our
// stand-in for that simulator: signals with current/next values, processes
// with sensitivity lists, and delta-cycle semantics. The same designs are
// described a second time in this style (as one would write RT VHDL) so
// both the code-size and the simulation-speed comparison are made against
// a real event-driven implementation, not a strawman.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace asicpp::eventsim {

class Kernel;
class RtProcess;

/// A resolved scalar signal carrying a word-level value.
class Signal {
 public:
  Signal(std::string name, double init) : name_(std::move(name)), cur_(init), next_(init) {}

  const std::string& name() const { return name_; }

  double read() const { return cur_; }

  /// Schedule `v` as the value after the next delta cycle.
  void write(double v);

  /// True when the last commit changed this signal's value.
  bool event() const { return changed_; }
  /// Rising edge through zero (for clock signals).
  bool posedge() const { return changed_ && prev_ == 0.0 && cur_ != 0.0; }
  bool negedge() const { return changed_ && prev_ != 0.0 && cur_ == 0.0; }

 private:
  friend class Kernel;
  std::string name_;
  double cur_;
  double next_;
  double prev_ = 0.0;
  bool scheduled_ = false;
  bool changed_ = false;
  Kernel* kernel_ = nullptr;
  std::vector<RtProcess*> sensitive_;
};

/// A VHDL-style process: a body re-run whenever a signal on its
/// sensitivity list has an event.
class RtProcess {
 public:
  RtProcess(std::string name, std::function<void()> body)
      : name_(std::move(name)), body_(std::move(body)) {}

  const std::string& name() const { return name_; }

 private:
  friend class Kernel;
  std::string name_;
  std::function<void()> body_;
  bool runnable_ = true;  // initial activation, like VHDL elaboration
  std::uint64_t activations_ = 0;
};

class Kernel {
 public:
  Signal& signal(const std::string& name, double init = 0.0);
  RtProcess& process(const std::string& name, std::function<void()> body);
  void sensitize(RtProcess& p, Signal& s);

  /// Run delta cycles until no events remain. Throws std::runtime_error
  /// after `max_deltas` (combinational oscillation).
  void settle(int max_deltas = 1000);

  /// One full clock period: clk rises, settles, falls, settles.
  void tick(Signal& clk);

  std::uint64_t deltas() const { return deltas_; }
  std::uint64_t activations() const { return activations_; }
  std::uint64_t cycles() const { return cycles_; }

  /// Live data-structure footprint (process-size comparison).
  std::size_t footprint_bytes() const;

 private:
  friend class Signal;
  void schedule_update(Signal* s);

  std::vector<std::unique_ptr<Signal>> signals_;
  std::vector<std::unique_ptr<RtProcess>> procs_;
  std::vector<Signal*> update_q_;
  std::vector<Signal*> changed_last_;
  std::uint64_t deltas_ = 0;
  std::uint64_t activations_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace asicpp::eventsim
