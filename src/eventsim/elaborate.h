// Automatic RT elaboration onto the event-driven kernel.
//
// Takes a system captured for the cycle scheduler and builds the
// corresponding register-transfer model on the event kernel — one
// combinational process (Mealy outputs) and one clocked process (register
// and state commit) per timed component, interconnect nets as signals.
// This is what "simulate the generated RT VHDL" means without leaving the
// process: the paper's Table 1 RT rows for any design, not just ones with
// a hand-written RT description.
//
// Ownership caveat: elaboration drives the *same* SFG/FSM objects the
// cycle scheduler uses (node values, register state, FSM current state).
// Do not simulate the same design instance with both engines at once.
//
// Untimed components are invoked combinationally on every input change;
// that is only sound for *pure* (stateless) behaviours, which the caller
// lists explicitly. Stateful untimed blocks (RAMs) are rejected.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "eventsim/kernel.h"
#include "sched/cyclesched.h"

namespace asicpp::eventsim {

class RtModel {
 public:
  /// Elaborate `sys` into `k`. `pure_untimed` names the untimed components
  /// whose behaviours are pure functions (safe to re-invoke per delta);
  /// any other untimed component causes std::invalid_argument.
  RtModel(Kernel& k, const sched::CycleScheduler& sys,
          const std::set<std::string>& pure_untimed = {});

  Signal& clk() { return *clk_; }
  Signal& net(const std::string& name);

  /// Combinational phase: refresh externally driven pins from their
  /// sched::Net drives and settle. Mealy outputs are valid afterwards.
  void eval();
  /// Clock edge: rise (registers/state commit), fall, settle.
  void commit();
  /// One clock period: eval() then commit().
  void tick();

  std::uint64_t cycles() const { return cycles_; }

 private:
  struct Impl;
  Kernel* k_;
  Signal* clk_;
  std::map<std::string, Signal*> nets_;
  std::shared_ptr<Impl> impl_;
  std::uint64_t cycles_ = 0;
};

}  // namespace asicpp::eventsim
