#include "eventsim/elaborate.h"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "diag/diag.h"

#include "hdl/model.h"
#include "sched/fsmcomp.h"
#include "sched/untimed.h"
#include "sfg/eval.h"

namespace asicpp::eventsim {

using hdl::CompModel;

struct RtModel::Impl {
  // deque: references to elements stay valid as elaboration appends more
  // (the process closures capture CompModel pointers).
  std::deque<CompModel> models;
  std::vector<sched::Component*> comps;
  std::vector<const sched::Net*> driven_nets;
  std::vector<Signal*> driven_signals;
};

namespace {

/// The SFGs active this cycle for a component, given pre-commit state.
std::vector<sfg::Sfg*> select_actions(const CompModel& m, Signal* instr_sig,
                                      std::uint64_t stamp,
                                      const fsm::Fsm::Transition** taken) {
  if (taken != nullptr) *taken = nullptr;
  switch (m.kind) {
    case CompModel::Kind::kSfg:
      return {m.sfgs.front()};
    case CompModel::Kind::kFsm: {
      const auto* t = m.fsm->select(stamp);
      if (taken != nullptr) *taken = t;
      if (t == nullptr) return {};
      std::vector<sfg::Sfg*> acts;
      for (auto* s : t->actions) acts.push_back(&m.optimized(*s));
      return acts;
    }
    case CompModel::Kind::kDispatch: {
      const long opcode = std::lround(instr_sig->read());
      const auto it = m.table.find(opcode);
      sfg::Sfg* s = (it != m.table.end()) ? it->second : m.dflt;
      if (s == nullptr) return {};
      return {s};
    }
  }
  return {};
}

}  // namespace

RtModel::RtModel(Kernel& k, const sched::CycleScheduler& sys,
                 const std::set<std::string>& pure_untimed)
    : k_(&k), impl_(std::make_shared<Impl>()) {
  clk_ = &k.signal("clk", 0.0);

  for (sched::Net* n : sys.all_nets()) {
    Signal& s = k.signal("net_" + n->name(), n->driven() ? n->drive_value().value() : 0.0);
    nets_.emplace(n->name(), &s);
    // Track every net: a pin can start being driven after elaboration.
    impl_->driven_nets.push_back(n);
    impl_->driven_signals.push_back(&s);
  }

  for (sched::Component* c : sys.components()) {
    if (auto* u = dynamic_cast<sched::UntimedComponent*>(c)) {
      if (!pure_untimed.count(u->name())) {
        diag::Diagnostic d;
        d.severity = diag::Severity::kError;
        d.code = "ELAB-001";
        d.component = "untimed '" + u->name() + "'";
        d.message = "RtModel: untimed component '" + u->name() +
                    "' is not declared pure";
        d.note("only side-effect-free untimed blocks can elaborate to "
               "combinational processes; pass its name in `pure_untimed`");
        throw ElabError(std::move(d));
      }
      std::vector<Signal*> ins, outs;
      for (const sched::Net* n : u->input_nets()) ins.push_back(nets_.at(n->name()));
      for (const sched::Net* n : u->output_nets()) outs.push_back(nets_.at(n->name()));
      auto& p = k.process(u->name() + "_comb", [u, ins, outs] {
        std::vector<fixpt::Fixed> iv;
        iv.reserve(ins.size());
        for (auto* s : ins) iv.emplace_back(s->read());
        const auto ov = u->invoke(iv);
        for (std::size_t i = 0; i < outs.size(); ++i) outs[i]->write(ov[i].value());
      });
      for (auto* s : ins) k.sensitize(p, *s);
      continue;
    }

    impl_->models.push_back(hdl::build_component_model(*c));
    impl_->comps.push_back(c);
    const CompModel& m = impl_->models.back();
    const CompModel* mp = &impl_->models.back();

    Signal* instr_sig = nullptr;
    if (m.kind == CompModel::Kind::kDispatch) {
      auto* d = dynamic_cast<sched::DispatchComponent*>(c);
      instr_sig = nets_.at(d->instruction_net().name());
    }

    // Shared plumbing between the two processes.
    std::vector<std::pair<sfg::NodePtr, Signal*>> in_map;
    for (const auto& [node, net] : m.in_binds)
      in_map.emplace_back(node, nets_.at(net->name()));
    std::map<std::string, Signal*> out_map;
    for (const auto& [port, net] : m.out_binds) out_map.emplace(port, nets_.at(net->name()));

    const auto load_inputs = [in_map](sfg::Sfg* s) {
      for (const auto& in : s->inputs()) {
        for (const auto& [node, sig] : in_map) {
          if (node == in)
            in->value = in->has_fmt ? fixpt::Fixed(sig->read(), in->fmt)
                                    : fixpt::Fixed(sig->read());
        }
      }
    };

    // Combinational (Mealy output) process.
    auto& comb = k.process(m.name + "_comb", [mp, instr_sig, load_inputs, out_map] {
      const auto stamp = sfg::new_eval_stamp();
      const auto actions = select_actions(*mp, instr_sig, stamp, nullptr);
      for (auto* s : actions) {
        load_inputs(s);
        s->eval(stamp);
        for (const auto& o : s->outputs()) {
          const auto it = out_map.find(o.port);
          if (it != out_map.end()) it->second->write(o.expr->value.value());
        }
      }
    });
    for (const auto& [node, sig] : in_map) k.sensitize(comb, *sig);
    if (instr_sig != nullptr) k.sensitize(comb, *instr_sig);
    k.sensitize(comb, *clk_);  // re-evaluate Mealy outputs after commits

    // Clocked (register/state commit) process.
    Signal* clk_sig = clk_;
    auto& seq = k.process(m.name + "_seq", [mp, instr_sig, load_inputs, clk_sig] {
      if (!clk_sig->posedge()) return;
      const auto stamp = sfg::new_eval_stamp();
      const fsm::Fsm::Transition* taken = nullptr;
      const auto actions = select_actions(*mp, instr_sig, stamp, &taken);
      for (auto* s : actions) {
        load_inputs(s);
        s->eval(stamp);
      }
      for (auto* s : actions) s->update_registers();
      if (mp->kind == CompModel::Kind::kFsm && taken != nullptr) mp->fsm->commit(*taken);
    });
    k.sensitize(seq, *clk_);
  }
  k.settle();
}

Signal& RtModel::net(const std::string& name) {
  const auto it = nets_.find(name);
  if (it == nets_.end())
    throw std::out_of_range("RtModel::net: no net '" + name + "'");
  return *it->second;
}

void RtModel::eval() {
  // Refresh externally driven pins from their sched::Net drives, so tests
  // keep using the same pin API for both engines.
  for (std::size_t i = 0; i < impl_->driven_nets.size(); ++i) {
    if (impl_->driven_nets[i]->driven())
      impl_->driven_signals[i]->write(impl_->driven_nets[i]->drive_value().value());
  }
  k_->settle();
}

void RtModel::commit() {
  k_->tick(*clk_);
  ++cycles_;
}

void RtModel::tick() {
  eval();
  commit();
}

}  // namespace asicpp::eventsim
