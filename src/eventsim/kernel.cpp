#include "eventsim/kernel.h"

#include <stdexcept>

namespace asicpp::eventsim {

void Signal::write(double v) {
  next_ = v;
  if (!scheduled_) {
    scheduled_ = true;
    kernel_->schedule_update(this);
  }
}

Signal& Kernel::signal(const std::string& name, double init) {
  signals_.push_back(std::make_unique<Signal>(name, init));
  signals_.back()->kernel_ = this;
  return *signals_.back();
}

RtProcess& Kernel::process(const std::string& name, std::function<void()> body) {
  procs_.push_back(std::make_unique<RtProcess>(name, std::move(body)));
  return *procs_.back();
}

void Kernel::sensitize(RtProcess& p, Signal& s) { s.sensitive_.push_back(&p); }

void Kernel::schedule_update(Signal* s) { update_q_.push_back(s); }

void Kernel::settle(int max_deltas) {
  for (int d = 0; d < max_deltas; ++d) {
    // Collect runnable processes: initial activations plus those woken by
    // the previous commit.
    std::vector<RtProcess*> runnable;
    for (auto& p : procs_) {
      if (p->runnable_) {
        p->runnable_ = false;
        runnable.push_back(p.get());
      }
    }

    if (runnable.empty() && update_q_.empty()) {
      // Quiescent: clear edge flags so stale events don't leak into the
      // next stimulus.
      for (auto* s : changed_last_) s->changed_ = false;
      changed_last_.clear();
      return;
    }

    // Execute phase.
    for (auto* p : runnable) {
      p->body_();
      ++p->activations_;
      ++activations_;
    }

    // Old events expire once every sensitive process has seen them.
    for (auto* s : changed_last_) s->changed_ = false;
    changed_last_.clear();

    // Update phase: commit scheduled values; signals that change wake
    // their sensitivity lists for the next delta.
    std::vector<Signal*> updates;
    updates.swap(update_q_);
    for (auto* s : updates) {
      s->scheduled_ = false;
      if (s->next_ != s->cur_) {
        s->prev_ = s->cur_;
        s->cur_ = s->next_;
        s->changed_ = true;
        changed_last_.push_back(s);
        for (auto* p : s->sensitive_) p->runnable_ = true;
      }
    }
    ++deltas_;
  }
  throw std::runtime_error("eventsim: no convergence after " +
                           std::to_string(max_deltas) + " delta cycles");
}

void Kernel::tick(Signal& clk) {
  clk.write(1.0);
  settle();
  clk.write(0.0);
  settle();
  ++cycles_;
}

std::size_t Kernel::footprint_bytes() const {
  std::size_t bytes = 0;
  for (const auto& s : signals_)
    bytes += sizeof(Signal) + s->sensitive_.capacity() * sizeof(RtProcess*);
  bytes += procs_.size() * (sizeof(RtProcess) + 64);  // closure estimate
  bytes += update_q_.capacity() * sizeof(Signal*);
  return bytes;
}

}  // namespace asicpp::eventsim
