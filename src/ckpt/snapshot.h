// Checkpoint/restore state snapshots.
//
// The paper's design flow leans on long compiled-simulation runs (section
// 5); losing a multi-hour run to a crash, a hang, or a machine reboot is
// exactly the kind of tooling failure a *programming* environment is
// supposed to prevent. This module is the serialization substrate every
// engine's `save_state` / `restore_state` builds on: a versioned binary
// snapshot format carrying
//
//   magic        — "ACKP", so a snapshot is recognizable (and anything
//                  else is rejected up front instead of misparsed);
//   version      — the format revision; readers reject snapshots written
//                  by an incompatible library;
//   engine kind  — which engine wrote the state (a compiled-tape snapshot
//                  must not restore into the interpreted scheduler);
//   content hash — a structural hash of the spec/IR the state belongs to
//                  (net names, register formats, tape instructions), so a
//                  snapshot of design A cannot silently corrupt design B;
//   position     — the cycle count (cycle engines), firing count
//                  (dataflow) or recorded-cycle count (recorder);
//   payload      — engine-specific state, closed by an end sentinel that
//                  catches truncated or over-read streams.
//
// All integers are little-endian fixed width; doubles are IEEE-754 bit
// patterns. A bad snapshot degrades gracefully: restore_state stages the
// whole payload before touching engine state and throws a structured
// SnapshotError, leaving the engine exactly as it was.
//
// Stable code registry (documented in DESIGN.md section 10):
//   CKPT-001 not a snapshot (bad magic) / wrong engine kind
//   CKPT-002 snapshot format version skew
//   CKPT-003 content hash mismatch (snapshot of a different design)
//   CKPT-004 truncated or corrupt snapshot stream
//   CKPT-005 lane binding mismatch (per-lane batched snapshot restored
//            into a different lane index)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "diag/diag.h"
#include "fixpt/fixed.h"

namespace asicpp::ckpt {

/// Snapshot format revision. Bump on any layout change; readers reject
/// other versions with CKPT-002.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Which engine wrote the snapshot. Part of the header: restoring a
/// snapshot into a different engine kind is a CKPT-001 error.
enum class EngineKind : std::uint8_t {
  kCycleScheduler = 1,  ///< interpreted sched::CycleScheduler
  kCompiledSystem = 2,  ///< sim::CompiledSystem flat-tape simulator
  kDataflow = 3,        ///< df::DynamicScheduler
  kRecorder = 4,        ///< sim::Recorder trace position
  kBatched = 5,         ///< batch::BatchedSystem, one lane per snapshot
};

const char* engine_kind_name(EngineKind k);

/// Exception carrying the structured CKPT diagnostic of a failed restore.
struct SnapshotError : asicpp::Error {
  explicit SnapshotError(diag::Diagnostic d) : asicpp::Error(std::move(d)) {}
};

/// FNV-1a 64-bit running hash — the content-hash primitive. Deterministic
/// across platforms; engines feed it their structural identity (net names,
/// register formats, tape instructions) so a snapshot binds to one design.
class Hasher {
 public:
  Hasher& u8(std::uint8_t v);
  Hasher& u32(std::uint32_t v);
  Hasher& u64(std::uint64_t v);
  Hasher& i32(std::int32_t v) { return u32(static_cast<std::uint32_t>(v)); }
  Hasher& f64(double v);
  Hasher& str(const std::string& s);
  Hasher& fmt(const fixpt::Format& f);

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;  // FNV offset basis
};

/// Convenience: hash one string (e.g. a canonical spec text) to a salt.
std::uint64_t hash_string(const std::string& s);

/// Little-endian binary writer over a std::ostream.
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(&os) {}

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void str(const std::string& s);  ///< u32 length + bytes
  void fmt(const fixpt::Format& f);
  void fixed(const fixpt::Fixed& v);  ///< value + bound flag + format

  /// Snapshot header: magic, version, engine kind, content hash, position.
  void header(EngineKind kind, std::uint64_t content_hash,
              std::uint64_t position);
  /// Closing sentinel; Reader::end() verifies it.
  void end();

 private:
  std::ostream* os_;
};

/// Little-endian binary reader over a std::istream. Every read throws
/// SnapshotError CKPT-004 on a short or failed stream, so callers never
/// consume garbage.
class Reader {
 public:
  /// `subject` names the restoring engine in diagnostics, e.g.
  /// "cycle scheduler".
  Reader(std::istream& is, std::string subject);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  std::string str();
  fixpt::Format fmt();
  fixpt::Fixed fixed();

  /// Read and validate the header against the restoring engine's identity.
  /// Throws SnapshotError: CKPT-001 (magic / engine kind), CKPT-002
  /// (version), CKPT-003 (content hash). Returns the stored position.
  std::uint64_t header(EngineKind expect_kind, std::uint64_t expect_hash);

  /// Verify the closing sentinel (CKPT-004 when absent or wrong).
  void end();

  /// Read `n` as a count and verify it is at most `limit` (a corrupt
  /// length prefix must not drive a multi-gigabyte allocation).
  std::size_t count(std::size_t limit);

  [[noreturn]] void fail(const std::string& code, const std::string& message,
                         const std::vector<std::string>& notes = {}) const;

 private:
  void bytes(void* dst, std::size_t n);

  std::istream* is_;
  std::string subject_;
};

}  // namespace asicpp::ckpt
