#include "ckpt/snapshot.h"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

namespace asicpp::ckpt {

namespace {

constexpr std::uint32_t kMagic = 0x504b4341;  // "ACKP" little-endian
constexpr std::uint32_t kEndSentinel = 0x444e4545;  // "EEND"
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

}  // namespace

const char* engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kCycleScheduler: return "cycle scheduler";
    case EngineKind::kCompiledSystem: return "compiled simulator";
    case EngineKind::kDataflow: return "dataflow scheduler";
    case EngineKind::kRecorder: return "recorder";
    case EngineKind::kBatched: return "batched simulator";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Hasher

Hasher& Hasher::u8(std::uint8_t v) {
  h_ = (h_ ^ v) * kFnvPrime;
  return *this;
}

Hasher& Hasher::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  return *this;
}

Hasher& Hasher::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  return *this;
}

Hasher& Hasher::f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

Hasher& Hasher::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  for (char c : s) u8(static_cast<std::uint8_t>(c));
  return *this;
}

Hasher& Hasher::fmt(const fixpt::Format& f) {
  return i32(f.wl)
      .i32(f.iwl)
      .u8(f.is_signed ? 1 : 0)
      .u8(static_cast<std::uint8_t>(f.quant))
      .u8(static_cast<std::uint8_t>(f.ovf));
}

std::uint64_t hash_string(const std::string& s) {
  return Hasher{}.str(s).digest();
}

// ---------------------------------------------------------------------------
// Writer

void Writer::u8(std::uint8_t v) {
  os_->write(reinterpret_cast<const char*>(&v), 1);
}

void Writer::u32(std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  os_->write(b, 4);
}

void Writer::u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  os_->write(b, 8);
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  os_->write(s.data(), static_cast<std::streamsize>(s.size()));
}

void Writer::fmt(const fixpt::Format& f) {
  i32(f.wl);
  i32(f.iwl);
  u8(f.is_signed ? 1 : 0);
  u8(static_cast<std::uint8_t>(f.quant));
  u8(static_cast<std::uint8_t>(f.ovf));
}

void Writer::fixed(const fixpt::Fixed& v) {
  f64(v.value());
  u8(v.bound() ? 1 : 0);
  fmt(v.format());
}

void Writer::header(EngineKind kind, std::uint64_t content_hash,
                    std::uint64_t position) {
  u32(kMagic);
  u32(kFormatVersion);
  u8(static_cast<std::uint8_t>(kind));
  u64(content_hash);
  u64(position);
}

void Writer::end() { u32(kEndSentinel); }

// ---------------------------------------------------------------------------
// Reader

Reader::Reader(std::istream& is, std::string subject)
    : is_(&is), subject_(std::move(subject)) {}

void Reader::fail(const std::string& code, const std::string& message,
                  const std::vector<std::string>& notes) const {
  diag::Diagnostic d;
  d.severity = diag::Severity::kError;
  d.code = code;
  d.component = subject_;
  d.message = message;
  d.notes = notes;
  throw SnapshotError(std::move(d));
}

void Reader::bytes(void* dst, std::size_t n) {
  is_->read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_->gcount()) != n || !*is_) {
    fail("CKPT-004", "truncated or corrupt snapshot stream",
         {"expected " + std::to_string(n) + " more byte(s); the stream ended " +
          "or failed mid-record"});
  }
}

std::uint8_t Reader::u8() {
  std::uint8_t v;
  bytes(&v, 1);
  return v;
}

std::uint32_t Reader::u32() {
  unsigned char b[4];
  bytes(b, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[i]} << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  unsigned char b[8];
  bytes(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  std::size_t n = count(1u << 20);
  std::string s(n, '\0');
  if (n != 0) bytes(s.data(), n);
  return s;
}

fixpt::Format Reader::fmt() {
  fixpt::Format f;
  f.wl = i32();
  f.iwl = i32();
  f.is_signed = u8() != 0;
  std::uint8_t q = u8();
  std::uint8_t o = u8();
  if (q > 1 || o > 1) {
    fail("CKPT-004", "truncated or corrupt snapshot stream",
         {"fixed-point format carries an out-of-range quantization or "
          "overflow discipline"});
  }
  f.quant = static_cast<fixpt::Quant>(q);
  f.ovf = static_cast<fixpt::Overflow>(o);
  return f;
}

fixpt::Fixed Reader::fixed() {
  double v = f64();
  bool bound = u8() != 0;
  fixpt::Format f = fmt();
  // A bound value was quantized into `f` when it was stored, so
  // re-quantizing on the way back in is the identity — the restored bit
  // pattern matches the saved one exactly.
  return bound ? fixpt::Fixed(v, f) : fixpt::Fixed(v);
}

std::uint64_t Reader::header(EngineKind expect_kind,
                             std::uint64_t expect_hash) {
  std::uint32_t magic = u32();
  if (magic != kMagic) {
    fail("CKPT-001", "stream is not an asicpp snapshot (bad magic)",
         {"expected magic 0x" + std::to_string(kMagic) + ", found 0x" +
          std::to_string(magic)});
  }
  std::uint32_t version = u32();
  if (version != kFormatVersion) {
    fail("CKPT-002",
         "snapshot format version skew: snapshot is v" +
             std::to_string(version) + ", this library reads v" +
             std::to_string(kFormatVersion),
         {"re-save the snapshot with a matching library build"});
  }
  std::uint8_t kind = u8();
  if (kind != static_cast<std::uint8_t>(expect_kind)) {
    std::string found =
        (kind >= 1 && kind <= 5)
            ? engine_kind_name(static_cast<EngineKind>(kind))
            : ("unknown kind " + std::to_string(kind));
    fail("CKPT-001",
         std::string("snapshot was written by a different engine kind: "
                     "expected ") +
             engine_kind_name(expect_kind) + ", found " + found);
  }
  std::uint64_t hash = u64();
  if (hash != expect_hash) {
    fail("CKPT-003",
         "snapshot content hash mismatch: the snapshot belongs to a "
         "different design or IR",
         {"snapshot hash " + std::to_string(hash) + ", this engine's hash " +
              std::to_string(expect_hash),
          "restoring it would silently corrupt simulation state"});
  }
  return u64();
}

void Reader::end() {
  std::uint32_t s = u32();
  if (s != kEndSentinel) {
    fail("CKPT-004", "truncated or corrupt snapshot stream",
         {"end sentinel missing: payload length does not match the format"});
  }
}

std::size_t Reader::count(std::size_t limit) {
  std::uint32_t n = u32();
  if (n > limit) {
    fail("CKPT-004", "truncated or corrupt snapshot stream",
         {"length prefix " + std::to_string(n) + " exceeds the plausible "
          "limit " + std::to_string(limit)});
  }
  return n;
}

}  // namespace asicpp::ckpt
