// Thread-parallel substrate: pool semantics, determinism harness, and the
// single-owner (PAR-002) assertions on diagnostics and recording.
//
// The determinism suites are the contract the whole subsystem rests on:
// level-parallel engine runs and multi-lane differential batches must be
// *bit-identical* to their serial counterparts, for any lane count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "diag/diag.h"
#include "par/pool.h"
#include "sim/compiled.h"
#include "sim/recorder.h"
#include "verify/diffrun.h"
#include "verify/gen.h"
#include "verify/shrink.h"

namespace asicpp {
namespace {

using namespace asicpp::verify;

// --- pool unit tests -------------------------------------------------------

TEST(ParPool, RunsEveryIndexExactlyOnce) {
  par::Pool pool(8);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParPool, WidthOneIsSerialOnCaller) {
  par::Pool pool(8);
  const auto caller = std::this_thread::get_id();
  bool all_on_caller = true;
  pool.parallel_for(
      64,
      [&](std::size_t) {
        if (std::this_thread::get_id() != caller) all_on_caller = false;
      },
      1);
  EXPECT_TRUE(all_on_caller);
}

TEST(ParPool, InParallelRegionFlag) {
  par::Pool pool(4);
  EXPECT_FALSE(par::Pool::in_parallel_region());
  std::atomic<int> inside{0};
  pool.parallel_for(32, [&](std::size_t) {
    if (par::Pool::in_parallel_region()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 32);
  EXPECT_FALSE(par::Pool::in_parallel_region());
}

TEST(ParPool, NestedParallelForThrowsPar001) {
  par::Pool pool(4);
  try {
    pool.parallel_for(8, [&](std::size_t) {
      pool.parallel_for(4, [](std::size_t) {});
    });
    FAIL() << "nested parallel_for did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), "PAR-001");
  }
  // The pool survives the failed region and runs new work.
  std::atomic<int> ran{0};
  pool.parallel_for(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParPool, LowestIndexExceptionWinsAtEveryWidth) {
  par::Pool pool(8);
  for (const unsigned width : {1u, 2u, 8u}) {
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(
          200,
          [&](std::size_t i) {
            ran.fetch_add(1);
            if (i >= 17 && i % 3 == 2) throw std::runtime_error(
                "task " + std::to_string(i));
          },
          width);
      FAIL() << "width " << width << " did not throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 17") << "width " << width;
    }
    // Every task still ran (no early abort) — so counters and side effects
    // are schedule-independent even on throwing regions.
    EXPECT_EQ(ran.load(), 200) << "width " << width;
  }
}

TEST(ParPool, OrderedMapMatchesSerialAtEveryWidth) {
  par::Pool pool(8);
  constexpr std::size_t kN = 1000;
  const std::function<double(std::size_t)> fn = [](std::size_t i) {
    return std::ldexp(1.0, -static_cast<int>(i % 40)) + static_cast<double>(i);
  };
  std::vector<double> ref(kN);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = fn(i);
  for (const unsigned width : {1u, 3u, 8u})
    EXPECT_EQ(pool.ordered_map<double>(kN, fn, width), ref)
        << "width " << width;
}

TEST(ParPool, OrderedReduceIsBitIdenticalAcrossWidths) {
  par::Pool pool(8);
  constexpr std::size_t kN = 500;
  // Magnitudes spanning ~30 orders: the fold is only reproducible when the
  // summation order is fixed, which is exactly what ordered_reduce pins.
  const std::function<double(std::size_t)> fn = [](std::size_t i) {
    return std::ldexp(1.0 + static_cast<double>(i % 7),
                      static_cast<int>(i % 100) - 50);
  };
  const auto fold = [](double a, double b) { return a + b; };
  const double ref = pool.ordered_reduce<double>(kN, 0.0, fn, fold, 1);
  for (const unsigned width : {2u, 5u, 8u})
    EXPECT_EQ(pool.ordered_reduce<double>(kN, 0.0, fn, fold, width), ref)
        << "width " << width;

  // Non-commutative fold: concatenation order must be index order.
  const std::function<std::string(std::size_t)> name = [](std::size_t i) {
    return "#" + std::to_string(i);
  };
  const auto cat = [](std::string a, std::string b) { return a + b; };
  const std::string sref = pool.ordered_reduce<std::string>(60, std::string(), name, cat, 1);
  EXPECT_EQ(pool.ordered_reduce<std::string>(60, std::string(), name, cat, 8), sref);
}

TEST(ParPool, RelaxedCounterCountsAndCopies) {
  par::Pool pool(8);
  par::RelaxedCounter c;
  pool.parallel_for(5000, [&](std::size_t) { c.add(); });
  EXPECT_EQ(c.get(), 5000u);
  c.add(10);
  const par::RelaxedCounter d = c;  // copy keeps value semantics
  EXPECT_EQ(d.get(), 5010u);
}

TEST(ParPool, SharedPoolHasTestableWidth) {
  // The shared pool is sized to at least 8 lanes so parallel paths stay
  // genuinely multi-threaded even on small CI machines.
  EXPECT_GE(par::Pool::shared().lanes(), 8u);
}

// --- single-owner assertions (PAR-002) -------------------------------------

TEST(ParDiag, SecondThreadReportTripsPar002) {
  diag::DiagEngine de;
  de.note("TEST-000", "owner", "claimed on the main thread");
  std::string code;
  std::thread t([&] {
    try {
      de.note("TEST-000", "intruder", "cross-thread report");
    } catch (const Error& e) {
      code = e.code();
    }
  });
  t.join();
  EXPECT_EQ(code, "PAR-002");
  EXPECT_EQ(de.size(), 1u);  // the intruding record was rejected

  // clear() releases the claim: a fresh thread may own it afterwards.
  de.clear();
  std::thread t2([&] { de.note("TEST-000", "new owner", "ok"); });
  t2.join();
  EXPECT_EQ(de.size(), 1u);
}

TEST(ParDiag, MakeThreadSafeAllowsConcurrentReports) {
  diag::DiagEngine de;
  de.make_thread_safe();
  EXPECT_TRUE(de.thread_safe());
  par::Pool pool(8);
  pool.parallel_for(64, [&](std::size_t i) {
    de.note("TEST-001", "lane", "report " + std::to_string(i));
  });
  EXPECT_EQ(de.size(), 64u);
}

TEST(ParRecorder, SecondThreadDriverTripsPar002) {
  sfg::Clk clk;
  sched::CycleScheduler sched(clk);
  sim::Recorder rec(sched);
  sched.cycle();  // main thread claims the recorder
  EXPECT_EQ(rec.cycles_recorded(), 1u);
  std::string code;
  std::thread t([&] {
    try {
      sched.cycle();
    } catch (const Error& e) {
      code = e.code();
    }
  });
  t.join();
  EXPECT_EQ(code, "PAR-002");
}

// --- determinism: level-parallel engines vs serial -------------------------

GenConfig wide_config() {
  GenConfig cfg;
  cfg.min_comps = 24;
  cfg.max_comps = 32;
  // Keep every spec on the compiled engine's turf.
  cfg.allow_adapter = false;
  return cfg;
}

std::vector<std::vector<double>> interpreted_trace(const Spec& spec,
                                                   unsigned threads) {
  System sys(spec);
  sys.scheduler().set_schedule_mode(ScheduleMode::kLevelized);
  sys.scheduler().set_threads(threads);
  const auto probes = spec.probes();
  std::vector<std::vector<double>> tr;
  for (std::uint64_t c = 0; c < spec.cycles; ++c) {
    sys.scheduler().cycle();
    std::vector<double> row;
    for (const std::string& n : probes)
      row.push_back(sys.scheduler().net(n).last().value());
    tr.push_back(std::move(row));
  }
  return tr;
}

std::vector<std::vector<double>> compiled_trace(const Spec& spec,
                                                unsigned threads) {
  System sys(spec);
  sim::CompiledSystem cs = sim::CompiledSystem::compile(sys.scheduler());
  cs.set_schedule_mode(ScheduleMode::kLevelized);
  cs.set_threads(threads);
  const auto probes = spec.probes();
  std::vector<std::vector<double>> tr;
  for (std::uint64_t c = 0; c < spec.cycles; ++c) {
    cs.cycle();
    std::vector<double> row;
    for (const std::string& n : probes) row.push_back(cs.net_value(n));
    tr.push_back(std::move(row));
  }
  return tr;
}

TEST(ParDeterminism, InterpretedLevelParallelMatchesSerial) {
  const GenConfig cfg = wide_config();
  for (unsigned seed = 0; seed < 20; ++seed) {
    const Spec spec = generate(cfg, seed);
    const auto serial = interpreted_trace(spec, 1);
    for (const unsigned threads : {2u, 4u, 8u})
      ASSERT_EQ(interpreted_trace(spec, threads), serial)
          << "seed " << seed << " threads " << threads;
  }
}

TEST(ParDeterminism, CompiledLevelParallelMatchesSerial) {
  const GenConfig cfg = wide_config();
  for (unsigned seed = 0; seed < 20; ++seed) {
    const Spec spec = generate(cfg, seed);
    const auto serial = compiled_trace(spec, 1);
    for (const unsigned threads : {2u, 4u, 8u})
      ASSERT_EQ(compiled_trace(spec, threads), serial)
          << "seed " << seed << " threads " << threads;
  }
}

TEST(ParDeterminism, RunOptionsThreadsMatchesSerialCounters) {
  const Spec spec = generate(wide_config(), 3);
  const auto run_with = [&](unsigned threads) {
    System sys(spec);
    return sys.scheduler().run(RunOptions{}
                                   .for_cycles(spec.cycles)
                                   .mode(ScheduleMode::kLevelized)
                                   .threads(threads));
  };
  const RunResult a = run_with(1);
  const RunResult b = run_with(8);
  EXPECT_EQ(a.firings, b.firings);
  EXPECT_EQ(a.levelized_cycles, b.levelized_cycles);
  EXPECT_EQ(a.retry_passes, b.retry_passes);

  const auto compiled_with = [&](unsigned threads) {
    System sys(spec);
    sim::CompiledSystem cs = sim::CompiledSystem::compile(sys.scheduler());
    return cs.run(RunOptions{}
                      .for_cycles(spec.cycles)
                      .mode(ScheduleMode::kLevelized)
                      .threads(threads));
  };
  const RunResult ca = compiled_with(1);
  const RunResult cb = compiled_with(8);
  EXPECT_EQ(ca.firings, cb.firings);
  EXPECT_EQ(ca.levelized_cycles, cb.levelized_cycles);
}

// --- determinism: batched differential runs --------------------------------

std::string batch_fingerprint(const std::vector<Spec>& specs,
                              const DiffOptions& base, unsigned jobs) {
  diag::DiagEngine de;
  DiffOptions opts = base;
  opts.diagnostics = &de;
  const std::vector<DiffResult> rs = diff_run_batch(specs, opts, jobs);
  std::ostringstream os;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    os << "spec " << i << "\n" << rs[i].summary();
    for (const EngineTrace& t : rs[i].traces)
      for (const auto& row : t.values)
        for (const double v : row) os << " " << v;
    os << "\n";
  }
  os << de.str();
  return os.str();
}

TEST(ParDeterminism, DiffRunBatchIsByteIdenticalAcrossJobCounts) {
  const GenConfig cfg;
  std::vector<Spec> specs;
  for (unsigned seed = 0; seed < 100; ++seed)
    specs.push_back(generate(cfg, seed));

  DiffOptions opts;
  opts.engines = {"iterative", "levelized", "compiled"};
  const std::string serial = batch_fingerprint(specs, opts, 1);
  EXPECT_EQ(batch_fingerprint(specs, opts, 8), serial);

  // And with failures in the mix: a mutant makes some specs diverge, so the
  // merged diagnostic stream must still come back in spec order.
  DiffOptions bad = opts;
  bad.mutant.enabled = true;
  bad.mutant.engine = "levelized";
  bad.mutant.cycle = 1;
  bad.mutant.net = "w2";
  bad.mutant.delta = 0.5;
  const std::string bad_serial = batch_fingerprint(specs, bad, 1);
  EXPECT_EQ(batch_fingerprint(specs, bad, 8), bad_serial);
}

TEST(ParDeterminism, ShrinkJobsDoNotChangeTheMinimalSpec) {
  const GenConfig cfg;
  const Spec spec = generate(cfg, 0);
  DiffOptions opts;
  opts.engines = {"iterative", "levelized"};
  opts.mutant.enabled = true;
  opts.mutant.engine = "levelized";
  opts.mutant.cycle = 5;
  opts.mutant.net = spec.probes().front();
  opts.mutant.delta = 0.25;

  ShrinkOptions serial;
  serial.jobs = 1;
  const ShrinkResult a = shrink(spec, opts, serial);
  ASSERT_FALSE(a.final_diff.ok());

  ShrinkOptions threaded;
  threaded.jobs = 8;
  const ShrinkResult b = shrink(spec, opts, threaded);
  EXPECT_EQ(to_text(a.minimal), to_text(b.minimal));
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.reductions, b.reductions);
}

// --- determinism: the fuzz CLI end to end ----------------------------------

int run_cmd(const std::string& cmd, std::string* out = nullptr) {
  FILE* p = popen((cmd + " 2>&1").c_str(), "r");
  if (p == nullptr) return -1;
  char buf[512];
  std::string text;
  while (std::fgets(buf, sizeof buf, p) != nullptr) text += buf;
  if (out != nullptr) *out = text;
  const int st = pclose(p);
  return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
}

std::string scratch_path(const std::string& leaf) {
  const char* t = std::getenv("TMPDIR");
  return std::string(t != nullptr ? t : "/tmp") + "/" + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(ParFuzzCli, JobsOneAndEightAreByteIdentical) {
  const Spec s = generate(GenConfig{}, 0);
  const std::string net = s.probes().front();
  const std::string dir = scratch_path("asicpp_par_cli_corpus");
  const std::string base =
      std::string(ASICPP_FUZZ_BIN) +
      " --seeds 12 --engines iterative,levelized,compiled" +
      " --mutant levelized:5:" + net + ":0.25 --corpus-dir " + dir;

  std::string out1;
  const std::string json1 = scratch_path("asicpp_par_cli_1.json");
  const int rc1 = run_cmd(base + " --jobs 1 --json " + json1, &out1);
  std::string out8;
  const std::string json8 = scratch_path("asicpp_par_cli_8.json");
  const int rc8 = run_cmd(base + " --jobs 8 --json " + json8, &out8);

  EXPECT_EQ(rc1, 1);
  EXPECT_EQ(rc8, rc1);
  EXPECT_EQ(out8, out1);
  // JSON differs only in the path of the json file itself — which is not
  // part of the content — so compare the files directly.
  const std::string j1 = slurp(json1);
  EXPECT_FALSE(j1.empty());
  EXPECT_EQ(slurp(json8), j1);

  std::string spec0;
  for (int seed = 0; seed < 12; ++seed) {
    const std::string stem = dir + "/seed" + std::to_string(seed);
    // Corpus writes are temp+rename: no .tmp residue may survive.
    std::ifstream tmp(stem + ".spec.tmp");
    EXPECT_FALSE(tmp.good()) << stem;
    std::remove((stem + ".spec").c_str());
    std::remove((stem + "_repro.cpp").c_str());
  }
  std::remove(json1.c_str());
  std::remove(json8.c_str());
}

TEST(ParFuzzCli, CleanSweepWithJobsIsClean) {
  std::string out;
  const int rc = run_cmd(std::string(ASICPP_FUZZ_BIN) +
                             " --seeds 8 --jobs 4"
                             " --engines iterative,levelized,compiled",
                         &out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("8/8 seeds clean"), std::string::npos) << out;
}

}  // namespace
}  // namespace asicpp
