// Cross-cutting integration tests: properties that tie several subsystems
// together end to end.
#include <random>

#include <gtest/gtest.h>

#include "dect/vliw.h"
#include "fsm/fsm.h"
#include "netlist/equiv.h"
#include "netlist/netsim.h"
#include "sched/cyclesched.h"
#include "sched/fsmcomp.h"
#include "sim/compiled.h"
#include "sfg/clk.h"
#include "synth/dpsynth.h"
#include "synth/optimize.h"
#include "synth/system.h"

namespace asicpp {
namespace {

using fixpt::Fixed;
using fixpt::Format;
using fsm::Fsm;
using fsm::State;
using fsm::always;
using fsm::cnd;
using sfg::Clk;
using sfg::Reg;
using sfg::Sfg;
using sfg::Sig;

const Format kF{10, 4, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};
const Format kBitF{1, 1, false, fixpt::Quant::kTruncate, fixpt::Overflow::kWrap};

// Build a random Mealy machine over a handful of registered flags; used to
// compare the two controller synthesis styles gate for gate.
struct RandomFsm {
  Clk clk;
  std::vector<std::unique_ptr<Reg>> flags;
  std::vector<std::unique_ptr<Sfg>> actions;
  std::unique_ptr<Fsm> f;
  std::unique_ptr<sched::FsmComponent> comp;
  std::unique_ptr<sched::CycleScheduler> sched;

  explicit RandomFsm(unsigned seed) {
    std::mt19937 rng(seed);
    sched = std::make_unique<sched::CycleScheduler>(clk);
    const int nflags = 2 + static_cast<int>(rng() % 2);
    for (int i = 0; i < nflags; ++i)
      flags.push_back(std::make_unique<Reg>("fl" + std::to_string(i), clk, kBitF, rng() % 2));
    Sig x = Sig::input("x", kF);
    f = std::make_unique<Fsm>("rand");
    const int nstates = 2 + static_cast<int>(rng() % 3);
    std::vector<State> st;
    st.push_back(f->initial("q0"));
    for (int i = 1; i < nstates; ++i) st.push_back(f->state("q" + std::to_string(i)));
    int action_id = 0;
    for (int s = 0; s < nstates; ++s) {
      const int ntrans = 1 + static_cast<int>(rng() % 3);
      for (int t = 0; t < ntrans; ++t) {
        auto a = std::make_unique<Sfg>("a" + std::to_string(action_id++));
        a->in(x).out("o", x + static_cast<double>(s + t));
        // Each action flips one flag so the machine keeps moving.
        auto& fl = *flags[rng() % flags.size()];
        a->assign(fl, ~cnd(fl).expr());
        const bool is_last = t == ntrans - 1;
        const State to = st[rng() % st.size()];
        if (is_last) {
          st[static_cast<std::size_t>(s)] << always << *a << to;
        } else {
          auto& g = *flags[rng() % flags.size()];
          if (rng() % 2)
            st[static_cast<std::size_t>(s)] << cnd(g) << *a << to;
          else
            st[static_cast<std::size_t>(s)] << !cnd(g) << *a << to;
        }
        actions.push_back(std::move(a));
      }
    }
    comp = std::make_unique<sched::FsmComponent>("rand", *f);
    sched->add(*comp);
  }
};

// Property: QM-minimized and priority-chain controllers are sequentially
// equivalent at the gate level, for every state encoding.
class ControllerStylesEquiv : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ControllerStylesEquiv, QmEqualsPriorityChain) {
  const auto [seed, enc] = GetParam();
  RandomFsm design(static_cast<unsigned>(seed) * 77 + 5);

  synth::SynthOptions a;
  a.qm_controller = true;
  a.encoding = static_cast<synth::StateEncoding>(enc);
  synth::SynthOptions b = a;
  b.qm_controller = false;

  netlist::Netlist na, nb;
  synth::synthesize_component(*design.comp, na, a);
  synth::synthesize_component(*design.comp, nb, b);
  const auto r = netlist::check_equiv(na, nb, 128, static_cast<std::uint32_t>(seed));
  EXPECT_TRUE(r.equal) << r.mismatch << " seed=" << seed << " enc=" << enc;

  // And the optimizer must preserve both.
  const auto ra = netlist::check_equiv(na, synth::optimize(na), 64, 3);
  EXPECT_TRUE(ra.equal) << ra.mismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerStylesEquiv,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(0, 1, 2)));

// Property: every state encoding produces gate-level behaviour identical
// to the compiled simulation of the same machine.
class EncodingVsCompiled : public ::testing::TestWithParam<int> {};

TEST_P(EncodingVsCompiled, NetlistTracksCompiledSim) {
  const int seed = GetParam();
  RandomFsm design(static_cast<unsigned>(seed) * 131 + 29);
  design.comp->bind_output("o", design.sched->net("o"));

  synth::SynthOptions opt;
  opt.encoding = static_cast<synth::StateEncoding>(seed % 3);
  netlist::Netlist nl;
  synth::synthesize_component(*design.comp, nl, opt);
  netlist::LevelizedSim sim(nl);

  sim::CompiledSystem cs = sim::CompiledSystem::compile(*design.sched);

  std::mt19937 rng(static_cast<unsigned>(seed));
  std::uniform_real_distribution<double> dist(kF.min_value(), kF.max_value());
  // Find the output bus width.
  int out_w = 0;
  for (const auto& [name, _] : nl.outputs())
    if (name.rfind("o[", 0) == 0) out_w = std::max(out_w, std::stoi(name.substr(2)) + 1);
  ASSERT_GT(out_w, 0);

  for (int c = 0; c < 40; ++c) {
    const double v = fixpt::quantize(dist(rng), kF);
    netlist::set_bus(sim, "x", kF.wl,
                     static_cast<long long>(std::llround(std::ldexp(v, kF.frac_bits()))));
    cs.poke("x", v);
    sim.settle();
    cs.cycle();
    // Output format merged across actions; frac bits follow kF.
    const long long got = netlist::read_bus(sim, "o", out_w, true);
    const long long expect = static_cast<long long>(
        std::llround(std::ldexp(cs.net_value("o"), kF.frac_bits())));
    ASSERT_EQ(got, expect) << "seed " << seed << " cycle " << c;
    sim.cycle();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingVsCompiled, ::testing::Range(0, 9));

// The heavyweight one: the whole DECT transceiver synthesized to gates,
// then driven through the Fig 2 hold protocol — the netlist must track
// the compiled simulation cycle for cycle, including freeze and resume.
TEST(DectNetlist, HoldProtocolHoldsAtGateLevel) {
  dect::VliwParams p;
  p.num_datapaths = 4;
  p.num_rams = 1;
  p.rom_length = 12;
  dect::DectTransceiver t(p);
  t.drive_sample(0.5);

  synth::SystemSynthSpec spec;
  spec.net_fmt["sample"] = dect::kVliwData;
  spec.net_fmt["hold_request"] = dect::kVliwBit;
  for (int d = 0; d < p.num_datapaths; ++d)
    spec.net_fmt["instr_" + std::to_string(d)] = dect::kVliwAddr;
  spec.untimed["dp0_ram"] = synth::make_ram_builder(p.ram_addr_bits, dect::kVliwData);
  spec.net_fmt["dp0_rdata"] = dect::kVliwData;
  const auto* program = &t.program();
  spec.untimed["irom"] = [program, &p](synth::WordBuilder& wb,
                                       const std::vector<synth::Bus>& in) {
    const auto& rom = *program;
    const std::int32_t nop = wb.nonzero(in[1]);
    std::vector<synth::Bus> out;
    for (int d = 0; d < p.num_datapaths; ++d) {
      synth::Bus v = wb.constant(0.0, dect::kVliwAddr);
      for (std::size_t a = 0; a < rom.size(); ++a) {
        const auto m = wb.equal(in[0], wb.constant(static_cast<double>(a), dect::kVliwAddr));
        v = wb.mux(m, wb.constant(static_cast<double>(rom[a][static_cast<std::size_t>(d)]),
                                  dect::kVliwAddr),
                   v, dect::kVliwAddr);
      }
      out.push_back(wb.mux(nop, wb.constant(0.0, dect::kVliwAddr), v, dect::kVliwAddr));
    }
    return out;
  };
  for (int d = 0; d < p.num_datapaths; ++d) spec.observe.push_back("data_" + std::to_string(d));
  netlist::Netlist nl;
  synth::synthesize_system(t.scheduler(), nl, spec);

  sim::CompiledSystem cs = sim::CompiledSystem::compile(t.scheduler());
  netlist::LevelizedSim sim(nl);

  const auto sample_mant = static_cast<long long>(
      std::llround(std::ldexp(0.5, dect::kVliwData.frac_bits())));
  const auto drive = [&](bool hold) {
    t.set_hold_request(hold);  // the compiled sim reads the pin net
    netlist::set_bus(sim, "net_sample", dect::kVliwData.wl, sample_mant);
    netlist::set_bus(sim, "net_hold_request", dect::kVliwBit.wl, hold ? 1 : 0);
  };

  int cycle = 0;
  const auto step_both = [&](bool hold, int n) {
    for (int i = 0; i < n; ++i, ++cycle) {
      drive(hold);
      sim.settle();
      cs.cycle();
      for (int d = 0; d < p.num_datapaths; ++d) {
        const std::string net = "net_data_" + std::to_string(d);
        const long long got = netlist::read_bus(sim, net, dect::kVliwData.wl, true);
        const long long expect = static_cast<long long>(std::llround(
            std::ldexp(cs.net_value("data_" + std::to_string(d)),
                       dect::kVliwData.frac_bits())));
        ASSERT_EQ(got, expect) << "cycle " << cycle << " dp " << d << " hold " << hold;
      }
      sim.cycle();
    }
  };

  step_both(false, 8);   // execute
  step_both(true, 6);    // hold (freeze)
  step_both(false, 10);  // resume
}

}  // namespace
}  // namespace asicpp
