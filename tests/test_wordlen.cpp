#include <random>

#include <gtest/gtest.h>

#include "sfg/clk.h"
#include "sfg/eval.h"
#include "sfg/wordlen.h"

namespace asicpp::sfg {
namespace {

using fixpt::Format;

Format fmt(int wl, int iwl, bool s = true) {
  return Format{wl, iwl, s, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};
}

TEST(ConstantFormat, IntegersAndFractions) {
  const Format f1 = format_for_constant(5.0);
  EXPECT_FALSE(f1.is_signed);
  EXPECT_EQ(f1.frac_bits(), 0);
  EXPECT_TRUE(fixpt::representable(5.0, f1));

  const Format f2 = format_for_constant(-3.25);
  EXPECT_TRUE(f2.is_signed);
  EXPECT_EQ(f2.frac_bits(), 2);
  EXPECT_TRUE(fixpt::representable(-3.25, f2));

  const Format f0 = format_for_constant(0.0);
  EXPECT_GE(f0.wl, 1);
  EXPECT_TRUE(fixpt::representable(0.0, f0));
}

TEST(ConstantFormat, IrrationalThrows) {
  EXPECT_THROW(format_for_constant(1.0 / 3.0), FormatError);
}

TEST(InferFormat, AddGrowsOneBit) {
  Sig a = Sig::input("a", fmt(8, 3));
  Sig b = Sig::input("b", fmt(8, 3));
  FormatMap m;
  const Format& f = infer_format((a + b).node(), m);
  EXPECT_EQ(f.iwl, 4);
  EXPECT_EQ(f.frac_bits(), 4);
  EXPECT_TRUE(f.is_signed);
}

TEST(InferFormat, SubOfUnsignedIsSigned) {
  Sig a = Sig::input("a", fmt(8, 8, false));
  Sig b = Sig::input("b", fmt(8, 8, false));
  FormatMap m;
  const Format& f = infer_format((a - b).node(), m);
  EXPECT_TRUE(f.is_signed);
}

TEST(InferFormat, MulAddsWidths) {
  Sig a = Sig::input("a", fmt(8, 3));
  Sig b = Sig::input("b", fmt(6, 2));
  FormatMap m;
  const Format& f = infer_format((a * b).node(), m);
  EXPECT_TRUE(fixpt::representable(fmt(8, 3).max_value() * fmt(6, 2).max_value(), f));
  EXPECT_TRUE(fixpt::representable(fmt(8, 3).min_value() * fmt(6, 2).min_value(), f));
}

TEST(InferFormat, CompareIsOneBit) {
  Sig a = Sig::input("a", fmt(8, 3));
  FormatMap m;
  const Format& f = infer_format((a > 1.0).node(), m);
  EXPECT_EQ(f.wl, 1);
  EXPECT_FALSE(f.is_signed);
}

TEST(InferFormat, ShiftsMoveBinaryPoint) {
  // The expressions must outlive the FormatMap (raw-pointer keys), so keep
  // named Sig handles rather than temporaries.
  Sig a = Sig::input("a", fmt(8, 3));
  Sig shl = a << 2;
  Sig shr = a >> 2;
  FormatMap m;
  const Format& fl = infer_format(shl.node(), m);
  EXPECT_EQ(fl.iwl, 5);
  EXPECT_EQ(fl.frac_bits(), fmt(8, 3).frac_bits());
  const Format& fr = infer_format(shr.node(), m);
  EXPECT_EQ(fr.iwl, 1);
  EXPECT_EQ(fr.wl, 8);
}

TEST(InferFormat, MuxMerges) {
  Sig s = Sig::input("s", fmt(1, 1, false));
  Sig a = Sig::input("a", fmt(8, 3));
  Sig b = Sig::input("b", fmt(12, 2));
  FormatMap m;
  const Format& f = infer_format(mux(s, a, b).node(), m);
  EXPECT_TRUE(fixpt::representable(fmt(8, 3).max_value(), f));
  EXPECT_TRUE(fixpt::representable(fmt(12, 2).min_value(), f));
}

TEST(InferFormat, CastUsesDeclared) {
  Sig a = Sig::input("a", fmt(16, 7));
  FormatMap m;
  const Format& f = infer_format(a.cast(fmt(6, 2)).node(), m);
  EXPECT_EQ(f.wl, 6);
}

TEST(InferFormat, MissingLeafFormatThrows) {
  Sig a = Sig::input("a");  // no format
  FormatMap m;
  EXPECT_THROW(infer_format((a + 1.0).node(), m), FormatError);
}

TEST(InferFormat, VariableShiftThrows) {
  Sig a = Sig::input("a", fmt(8, 3));
  // Build shl with a non-const amount by hand.
  auto n = std::make_shared<Node>(Op::kShl);
  n->args = {a.node(), Sig::input("amt", fmt(4, 4, false)).node()};
  FormatMap m;
  EXPECT_THROW(infer_format(n, m), FormatError);
}

// Property: for random expressions over formatted leaves, every runtime
// value stays representable in the inferred format (bit growth is safe).
class InferenceSafety : public ::testing::TestWithParam<int> {};

TEST_P(InferenceSafety, ValuesAlwaysRepresentable) {
  const int seed = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed) * 31 + 5);
  Sig a = Sig::input("a", fmt(8, 3));
  Sig b = Sig::input("b", fmt(10, 4, false));
  std::vector<Sig> pool{a, b, Sig(1.5), Sig(-2.0)};
  for (int i = 0; i < 10; ++i) {
    Sig x = pool[rng() % pool.size()];
    Sig y = pool[rng() % pool.size()];
    switch (rng() % 6) {
      case 0: pool.push_back(x + y); break;
      case 1: pool.push_back(x - y); break;
      case 2: pool.push_back(x * y); break;
      case 3: pool.push_back(mux(x > y, x, y)); break;
      case 4: pool.push_back(x << static_cast<int>(rng() % 3)); break;
      default: pool.push_back(-x); break;
    }
  }
  FormatMap m;
  for (const auto& s : pool) infer_format(s.node(), m);

  std::uniform_real_distribution<double> da(fmt(8, 3).min_value(), fmt(8, 3).max_value());
  std::uniform_real_distribution<double> db(0.0, fmt(10, 4, false).max_value());
  for (int trial = 0; trial < 50; ++trial) {
    a.node()->value = fixpt::Fixed(fixpt::quantize(da(rng), fmt(8, 3)));
    b.node()->value = fixpt::Fixed(fixpt::quantize(db(rng), fmt(10, 4, false)));
    const auto stamp = new_eval_stamp();
    for (const auto& s : pool) {
      const double v = eval(s.node(), stamp).value();
      const Format& f = m.at(s.node().get());
      EXPECT_TRUE(fixpt::representable(v, f))
          << "seed " << seed << ": value " << v << " not in " << f.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferenceSafety, ::testing::Range(0, 10));

}  // namespace
}  // namespace asicpp::sfg
