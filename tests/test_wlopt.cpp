#include <gtest/gtest.h>

#include "sfg/clk.h"
#include "sfg/wlopt.h"

namespace asicpp::sfg {
namespace {

using fixpt::Format;

Format in_fmt() {
  return Format{10, 1, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};
}

// A leaky integrator with an output cast: y = cast(acc); acc' = cast2(0.5*acc + x).
struct Integrator {
  Clk clk;
  Reg acc;
  Sig x = Sig::input("x", in_fmt());
  Sfg s{"integ"};

  Integrator()
      : acc("acc", clk, Format{20, 3, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate},
            0.0) {
    s.in(x)
        .assign(acc, (acc * 0.5 + x).cast(acc.node()->fmt))
        .out("y", acc.sig() * 0.25);
  }
};

TEST(WlOpt, MeetsErrorBudget) {
  Integrator d;
  WlOptSpec spec;
  spec.error_budget = 1e-2;
  spec.max_frac = 12;
  spec.vectors = 128;
  const auto r = optimize_wordlengths(d.s, d.clk, spec);
  EXPECT_GT(r.knobs, 0);
  EXPECT_LE(r.rms_error, spec.error_budget);
  EXPECT_GT(r.bits_saved, 0);  // 12 fractional bits are overkill for 1e-2
  // Every knob got an assignment within bounds.
  for (const auto& [name, frac] : r.frac_bits) {
    EXPECT_GE(frac, spec.min_frac) << name;
    EXPECT_LE(frac, spec.max_frac) << name;
  }
}

TEST(WlOpt, TighterBudgetKeepsMoreBits) {
  int saved_loose, saved_tight;
  {
    Integrator d;
    WlOptSpec spec;
    spec.error_budget = 5e-2;
    spec.max_frac = 12;
    spec.vectors = 128;
    saved_loose = optimize_wordlengths(d.s, d.clk, spec).bits_saved;
  }
  {
    Integrator d;
    WlOptSpec spec;
    spec.error_budget = 1e-4;
    spec.max_frac = 12;
    spec.vectors = 128;
    saved_tight = optimize_wordlengths(d.s, d.clk, spec).bits_saved;
  }
  EXPECT_GE(saved_loose, saved_tight);
}

TEST(WlOpt, InfeasibleBudgetLeavesGraphUntouched) {
  Integrator d;
  const Format before = d.acc.node()->fmt;
  WlOptSpec spec;
  spec.error_budget = 0.0;  // impossible: quantization always errs
  spec.max_frac = 4;
  spec.vectors = 64;
  const auto r = optimize_wordlengths(d.s, d.clk, spec);
  EXPECT_TRUE(r.frac_bits.empty());
  EXPECT_GT(r.rms_error, 0.0);
  EXPECT_EQ(d.acc.node()->fmt, before);
}

TEST(WlOpt, OptimizedGraphStillSimulates) {
  Integrator d;
  WlOptSpec spec;
  spec.error_budget = 1e-2;
  spec.vectors = 64;
  optimize_wordlengths(d.s, d.clk, spec);
  d.clk.reset();
  d.s.set_input("x", fixpt::Fixed(1.0));
  for (int c = 0; c < 16; ++c) {
    d.s.eval();
    d.s.update_registers();
  }
  // The integrator converges toward x / (1 - 0.5) * 0.25 = 0.5.
  EXPECT_NEAR(d.s.output_value("y").value(), 0.5, 0.05);
}

TEST(WlOpt, RequiresOutputsAndInputFormats) {
  Clk clk;
  Sfg empty("empty");
  EXPECT_THROW(optimize_wordlengths(empty, clk), std::invalid_argument);

  Sig raw = Sig::input("raw");  // no format
  Sfg s("s");
  s.in(raw).out("o", raw + 1.0);
  EXPECT_THROW(optimize_wordlengths(s, clk), std::invalid_argument);
}

}  // namespace
}  // namespace asicpp::sfg
