// The optimizer pass pipeline: golden-form unit tests for each pass over
// the lowered IR, pipeline toggles, the rebuild round-trip, and the
// randomized optimized-vs-unoptimized equivalence suite (every engine,
// every seed, passes on must equal passes off bit for bit).
#include <gtest/gtest.h>

#include "opt/ir.h"
#include "opt/passes.h"
#include "opt/semantics.h"
#include "sfg/clk.h"
#include "sfg/sfg.h"
#include "sfg/sig.h"
#include "sim/compiled.h"
#include "verify/diffrun.h"
#include "verify/gen.h"

namespace asicpp {
namespace {

using fixpt::Fixed;
using fixpt::Format;
using sfg::Op;
using sfg::Reg;
using sfg::Sfg;
using sfg::Sig;

// --- lowering ---

TEST(Lower, TopologicalSlotsAndSharing) {
  Sig a = Sig::input("a");
  Sig b = Sig::input("b");
  Sig sum = a + b;
  Sfg s("t");
  s.in(a).in(b).out("o", sum * sum);
  const opt::LoweredSfg l = opt::lower(s);
  // a, b, a+b, (a+b)*(a+b): the shared subexpression gets exactly one slot.
  ASSERT_EQ(l.ins.size(), 4u);
  for (const auto& i : l.ins) {
    for (const std::int32_t arg : {i.a, i.b, i.c}) {
      if (arg >= 0) {
        EXPECT_LT(arg, &i - l.ins.data());
      }
    }
  }
  const auto& mul = l.ins[static_cast<std::size_t>(l.outputs[0].slot)];
  EXPECT_EQ(mul.op, Op::kMul);
  EXPECT_EQ(mul.a, mul.b);
}

TEST(Lower, ExecMatchesRecursiveEval) {
  Sig a = Sig::input("a");
  Sig b = Sig::input("b");
  a.node()->value = Fixed(5.0);
  b.node()->value = Fixed(3.0);
  Sfg s("t");
  s.in(a).in(b).out("o", mux(a > b, a - b, b - a) * 2.0);
  const opt::LoweredSfg l = opt::lower(s);
  std::vector<double> slots(l.ins.size());
  opt::exec_lowered(l, slots.data());
  EXPECT_DOUBLE_EQ(slots[static_cast<std::size_t>(l.outputs[0].slot)], 4.0);
}

// --- constant folding ---

TEST(Fold, AllConstOperatorBecomesConst) {
  Sfg s("t");
  s.out("o", Sig(2.0) + 3.0);
  opt::LoweredSfg l = opt::lower(s);
  EXPECT_EQ(opt::fold_constants(l), 1);
  const auto& o = l.ins[static_cast<std::size_t>(l.outputs[0].slot)];
  EXPECT_EQ(o.op, Op::kConst);
  EXPECT_DOUBLE_EQ(o.cval, 5.0);
}

TEST(Fold, MuxConstantSelectorRedirectsToArm) {
  Sig a = Sig::input("a");
  Sfg s("t");
  s.in(a).out("o", mux(Sig(1.0), a + 2.0, a - 2.0));
  opt::LoweredSfg l = opt::lower(s);
  EXPECT_EQ(opt::fold_constants(l), 1);
  const auto& o = l.ins[static_cast<std::size_t>(l.outputs[0].slot)];
  EXPECT_EQ(o.op, Op::kAdd);  // the taken arm, not the mux
}

TEST(Fold, CascadesToFixpoint) {
  // (2+3)*(4-1) folds completely across rounds of run_passes.
  Sfg s("t");
  s.out("o", (Sig(2.0) + 3.0) * (Sig(4.0) - 1.0));
  opt::LoweredSfg l = opt::lower(s);
  const opt::PassStats st = opt::run_passes(l, opt::PassOptions{});
  EXPECT_EQ(st.folded, 3);
  ASSERT_EQ(l.ins.size(), 1u);  // DCE leaves just the folded constant
  EXPECT_EQ(l.ins[0].op, Op::kConst);
  EXPECT_DOUBLE_EQ(l.ins[0].cval, 15.0);
}

TEST(Fold, FoldedCastKeepsFormat) {
  const Format f{8, 3, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};
  Sfg s("t");
  s.out("o", Sig(1.26).cast(f));
  opt::LoweredSfg l = opt::lower(s);
  EXPECT_EQ(opt::fold_constants(l), 1);
  const auto& o = l.ins[static_cast<std::size_t>(l.outputs[0].slot)];
  EXPECT_EQ(o.op, Op::kConst);
  EXPECT_TRUE(o.has_fmt);  // quantization boundary survives for wordlen
  EXPECT_DOUBLE_EQ(o.cval, fixpt::quantize(1.26, f));
}

// --- algebraic identities ---

TEST(Identities, AddZeroRedirectsToOperand) {
  Sig a = Sig::input("a");
  Sfg s("t");
  s.in(a).out("o", a + 0.0);
  opt::LoweredSfg l = opt::lower(s);
  EXPECT_EQ(opt::simplify_identities(l), 1);
  EXPECT_TRUE(l.ins[static_cast<std::size_t>(l.outputs[0].slot)].is_leaf());
}

TEST(Identities, MulOneAndMulZero) {
  Sig a = Sig::input("a");
  Sfg s("t");
  s.in(a).out("one", a * 1.0).out("zero", a * 0.0);
  opt::LoweredSfg l = opt::lower(s);
  EXPECT_EQ(opt::simplify_identities(l), 2);
  EXPECT_TRUE(l.ins[static_cast<std::size_t>(l.outputs[0].slot)].is_leaf());
  const auto& z = l.ins[static_cast<std::size_t>(l.outputs[1].slot)];
  EXPECT_EQ(z.op, Op::kConst);
  EXPECT_DOUBLE_EQ(z.cval, 0.0);
}

TEST(Identities, ShiftByZeroAndDoubleNegation) {
  Sig a = Sig::input("a");
  Sfg s("t");
  s.in(a).out("sh", a << 0).out("nn", -(-a));
  opt::LoweredSfg l = opt::lower(s);
  EXPECT_EQ(opt::simplify_identities(l), 2);
  EXPECT_TRUE(l.ins[static_cast<std::size_t>(l.outputs[0].slot)].is_leaf());
  EXPECT_TRUE(l.ins[static_cast<std::size_t>(l.outputs[1].slot)].is_leaf());
}

TEST(Identities, MuxWithIdenticalArms) {
  Sig a = Sig::input("a");
  Sig b = Sig::input("b");
  Sig arm = a + 1.0;
  Sfg s("t");
  s.in(a).in(b).out("o", mux(b, arm, arm));
  opt::LoweredSfg l = opt::lower(s);
  EXPECT_EQ(opt::simplify_identities(l), 1);
  EXPECT_EQ(l.ins[static_cast<std::size_t>(l.outputs[0].slot)].op, Op::kAdd);
}

TEST(Identities, BitwiseAndNotAreDeliberatelyExcluded) {
  // On the double domain `x | 0` rounds through the integer mantissa and
  // NOT is a logical complement, so neither may be rewritten.
  Sig a = Sig::input("a");
  Sfg s("t");
  s.in(a).out("or0", a | 0.0).out("nn", ~~a);
  opt::LoweredSfg l = opt::lower(s);
  EXPECT_EQ(opt::simplify_identities(l), 0);
}

// --- CSE ---

TEST(Cse, MergesStructuralDuplicates) {
  Sig a = Sig::input("a");
  Sig b = Sig::input("b");
  // Two distinct kAdd nodes with identical operands.
  Sfg s("t");
  s.in(a).in(b).out("o", (a + b) * (a + b));
  opt::LoweredSfg l = opt::lower(s);
  ASSERT_EQ(l.ins.size(), 5u);  // a, b, add, add, mul
  EXPECT_EQ(opt::cse(l), 1);
  const auto& m = l.ins[static_cast<std::size_t>(l.outputs[0].slot)];
  EXPECT_EQ(m.a, m.b);
}

TEST(Cse, CanonicalizationEnablesCommutedMerge) {
  Sig a = Sig::input("a");
  Sig b = Sig::input("b");
  Sfg s("t");
  s.in(a).in(b).out("o", (a + b) * (b + a));
  opt::LoweredSfg l = opt::lower(s);
  EXPECT_EQ(opt::cse(l), 0);  // operand order differs before canonicalize
  EXPECT_GE(opt::canonicalize(l), 1);
  EXPECT_EQ(opt::cse(l), 1);
}

TEST(Cse, DifferentCastFormatsStayDistinct) {
  const Format f1{8, 3, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};
  const Format f2{10, 4, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};
  Sig a = Sig::input("a");
  Sfg s("t");
  s.in(a).out("x", a.cast(f1)).out("y", a.cast(f2));
  opt::LoweredSfg l = opt::lower(s);
  EXPECT_EQ(opt::cse(l), 0);
}

// --- DCE ---

TEST(Dce, RemovesUnreachableAndRenumbers) {
  Sig a = Sig::input("a");
  Sig b = Sig::input("b");
  Sfg s("t");
  s.in(a).in(b).out("o", mux(Sig(0.0), a * b, a - b));
  opt::LoweredSfg l = opt::lower(s);
  const std::size_t before = l.ins.size();
  EXPECT_EQ(opt::fold_constants(l), 1);  // mux redirected to a - b
  EXPECT_GT(opt::dce(l), 0);             // the mux, a*b, and const die
  EXPECT_LT(l.ins.size(), before);
  const auto& o = l.ins[static_cast<std::size_t>(l.outputs[0].slot)];
  EXPECT_EQ(o.op, Op::kSub);
  for (const auto& i : l.ins) {
    for (const std::int32_t arg : {i.a, i.b, i.c}) {
      if (arg >= 0) {
        EXPECT_LT(static_cast<std::size_t>(arg), l.ins.size());
      }
    }
  }
}

// --- pipeline toggles ---

TEST(Pipeline, TogglesDisableIndividualPasses) {
  Sfg s("t");
  s.out("o", Sig(2.0) + 3.0);
  {
    opt::LoweredSfg l = opt::lower(s);
    opt::PassOptions p;
    p.fold = false;
    opt::run_passes(l, p);
    EXPECT_EQ(l.stats.folded, 0);
    EXPECT_EQ(l.ins[static_cast<std::size_t>(l.outputs[0].slot)].op, Op::kAdd);
  }
  {
    opt::LoweredSfg l = opt::lower(s);
    opt::run_passes(l, opt::PassOptions::raw());
    EXPECT_EQ(l.stats.instrs_before, l.stats.instrs_after);
  }
}

TEST(Pipeline, StatsReportInstructionReduction) {
  Sig a = Sig::input("a");
  Sfg s("t");
  s.in(a).out("o", (a + 0.0) * 1.0 + (Sig(2.0) + 3.0));
  opt::LoweredSfg l = opt::lower(s);
  const opt::PassStats st = opt::run_passes(l, opt::PassOptions{});
  EXPECT_GT(st.instrs_before, st.instrs_after);
  EXPECT_GT(st.simplified, 0);
  EXPECT_GT(st.folded, 0);
  EXPECT_GT(st.dead, 0);
}

// --- rebuild round-trip ---

TEST(Rebuild, IdentityRoundTripReturnsOriginalNodes) {
  Sig a = Sig::input("a");
  Sig b = Sig::input("b");
  Sig e = (a + b) * (a - b);
  Sfg s("t");
  s.in(a).in(b).out("o", e);
  opt::LoweredSfg l = opt::lower(s);
  const auto nodes = opt::rebuild(l, "t");
  EXPECT_EQ(nodes[static_cast<std::size_t>(l.outputs[0].slot)], e.node());
}

TEST(Rebuild, OptimizedGraphSharesUntouchedLeaves) {
  Sig a = Sig::input("a");
  Sfg s("t");
  s.in(a).out("o", a + 0.0);
  opt::LoweredSfg l = opt::lower(s);
  opt::run_passes(l, opt::PassOptions{});
  const auto nodes = opt::rebuild(l, "t");
  EXPECT_EQ(nodes[static_cast<std::size_t>(l.outputs[0].slot)], a.node());
}

// --- interpreted engine: passes on vs off ---

TEST(SfgEval, OptimizedMatchesLegacyRecursiveEval) {
  sfg::Clk clk("clk");
  const Format f{16, 7, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};
  Sig x = Sig::input("x", f);
  Reg acc("acc", clk, f);
  Sfg on("on"), off("off");
  const auto build = [&](Sfg& s) {
    s.in(x);
    s.out("y", (acc.sig() + x * 1.0 + 0.0).cast(f));
    s.assign(acc, (acc.sig() * 0.5 + x).cast(f));
  };
  build(on);
  build(off);
  off.set_pass_options(opt::PassOptions::none());

  for (int c = 0; c < 32; ++c) {
    x.node()->value = Fixed(0.37 * c - 4.0, f);
    on.eval();
    const double yo = on.outputs()[0].expr->value.value();
    off.eval();
    const double yf = off.outputs()[0].expr->value.value();
    EXPECT_EQ(yo, yf) << "cycle " << c;
    on.update_registers();
    off.update_registers();
  }
}

// --- compiled engine: pass stats surface ---

TEST(Compiled, PassStatsAggregateAcrossSfgs) {
  sfg::Clk clk("clk");
  sched::CycleScheduler sched(clk);
  Sig a = Sig::input("a");
  Sfg s("dp");
  s.in(a).out("o", (a + 0.0) * 1.0);
  sched::SfgComponent comp("dp", s);
  comp.bind_output("o", sched.net("o"));
  sched.add(comp);

  sim::CompiledSystem cs = sim::CompiledSystem::compile(sched);
  EXPECT_GT(cs.pass_stats().simplified, 0);
  EXPECT_GT(cs.pass_stats().instrs_before, cs.pass_stats().instrs_after);

  sim::CompiledSystem raw =
      sim::CompiledSystem::compile(sched, opt::PassOptions::raw());
  EXPECT_EQ(raw.pass_stats().simplified, 0);
}

// --- randomized equivalence: optimized vs unoptimized, all engines ---

// Every generated spec must produce identical traces with the optimizer on
// and off, across the interpreted (iterative + levelized) and compiled
// engines; diff_run's pass axis replays through the recursive interpreter
// and the raw tape and reports VERIFY-005 on any mismatch.
class PassAxisEquiv : public ::testing::TestWithParam<int> {};

TEST_P(PassAxisEquiv, OptimizedTraceEqualsUnoptimized) {
  const int base = GetParam();
  verify::GenConfig cfg;
  verify::DiffOptions opts;
  opts.engines = {"iterative", "levelized",
                  "compiled"};
  opts.pass_axis = true;
  for (int k = 0; k < 25; ++k) {
    const unsigned seed = static_cast<unsigned>(base * 25 + k);
    const verify::Spec spec = verify::generate(cfg, seed);
    const verify::DiffResult r = verify::diff_run(spec, opts);
    EXPECT_TRUE(r.ok()) << "seed " << seed << "\n"
                        << verify::to_text(spec) << r.summary();
    ASSERT_FALSE(r.noopt_traces.empty());
  }
}

// 8 shards x 25 seeds = 200 seeds.
INSTANTIATE_TEST_SUITE_P(Seeds, PassAxisEquiv, ::testing::Range(0, 8));

}  // namespace
}  // namespace asicpp
