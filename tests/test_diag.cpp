// Structured diagnostics: DiagEngine accumulation, accumulating lint over a
// deliberately broken design, combinational-deadlock post-mortems in both
// simulation engines (including the generated standalone simulator), and
// the cycle/firing-budget run watchdogs.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "df/dynsched.h"
#include "df/process.h"
#include "diag/diag.h"
#include "sched/cyclesched.h"
#include "sched/fsmcomp.h"
#include "sim/compiled.h"
#include "sfg/clk.h"
#include "sfg/sfg.h"

namespace asicpp {
namespace {

using fixpt::Fixed;
using fixpt::Format;
using sched::CycleScheduler;
using sched::SfgComponent;
using sfg::Clk;
using sfg::Reg;
using sfg::Sfg;
using sfg::Sig;

const Format kFmt{16, 7, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};
const Format kNarrow{8, 4, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};

TEST(DiagEngine, AccumulatesCountsAndFinds) {
  diag::DiagEngine de;
  EXPECT_TRUE(de.empty());
  EXPECT_TRUE(de.ok());

  de.warning("SFG-002", "sfg 's'", "dead code");
  de.error("SFG-001", "sfg 's'", "dangling input").note("declared nowhere");
  de.fatal("SCHED-001", "cycle scheduler", "deadlock");

  EXPECT_EQ(de.size(), 3u);
  EXPECT_EQ(de.warnings(), 1u);
  EXPECT_EQ(de.errors(), 2u);  // kError + kFatal
  EXPECT_FALSE(de.ok());

  ASSERT_TRUE(de.has("SFG-001"));
  EXPECT_FALSE(de.has("FSM-001"));
  const diag::Diagnostic* d = de.find("SFG-001");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->notes.size(), 1u);
  EXPECT_EQ(d->notes[0], "declared nowhere");

  // Pretty-printing carries severity, code, and the summary line.
  const std::string rep = de.str();
  EXPECT_NE(rep.find("error [SFG-001]"), std::string::npos);
  EXPECT_NE(rep.find("warning [SFG-002]"), std::string::npos);
  EXPECT_NE(rep.find("fatal [SCHED-001]"), std::string::npos);
  EXPECT_NE(rep.find("2 error(s)"), std::string::npos);

  EXPECT_THROW(de.throw_if_errors(), asicpp::Error);
  de.clear();
  EXPECT_TRUE(de.ok());
  EXPECT_NO_THROW(de.throw_if_errors());
}

TEST(DiagEngine, ErrorLimitAbortsCascades) {
  diag::DiagEngine de;
  de.set_error_limit(2);
  de.error("SYN-001", "a", "one");
  de.error("SYN-001", "b", "two");
  EXPECT_THROW(de.error("SYN-001", "c", "three"), asicpp::Error);
}

TEST(DiagEngine, FindCycleOnSmallGraphs) {
  // 0 -> 1 -> 2 -> 0 plus a dangling 3.
  const auto cyc = diag::find_cycle({{1}, {2}, {0}, {}});
  ASSERT_GE(cyc.size(), 4u);
  EXPECT_EQ(cyc.front(), cyc.back());
  // Acyclic diamond.
  EXPECT_TRUE(diag::find_cycle({{1, 2}, {3}, {3}, {}}).empty());
  // Self loop.
  const auto self = diag::find_cycle({{0}});
  ASSERT_EQ(self.size(), 2u);
  EXPECT_EQ(self.front(), self.back());
}

// The issue's acceptance test: one check() pass over a deliberately broken
// design reports ALL violations — a dangling input, a width mismatch, and
// dead code — as one report with stable codes, instead of stopping at the
// first fault.
TEST(DiagLint, BrokenDesignReportsAllViolationsInOneRun) {
  Clk clk;
  Reg r("r", clk, kNarrow, 0.0);
  Sig x = Sig::input("x", kFmt);
  Sig y = Sig::input("y", kFmt);  // read but never declared -> SFG-001
  Sig z = Sig::input("z", kFmt);  // declared but never read -> SFG-002
  Sfg s("broken");
  s.in(x).in(z);
  s.out("o", x + y);
  s.assign(r, (x + 1.0).cast(kFmt));  // 16 bits into an 8-bit reg -> SFG-005

  diag::DiagEngine de;
  s.check(de);

  EXPECT_EQ(de.size(), 3u) << de.str();
  ASSERT_TRUE(de.has("SFG-001")) << de.str();
  ASSERT_TRUE(de.has("SFG-002")) << de.str();
  ASSERT_TRUE(de.has("SFG-005")) << de.str();
  EXPECT_NE(de.find("SFG-001")->message.find("'y'"), std::string::npos);
  EXPECT_NE(de.find("SFG-002")->message.find("'z'"), std::string::npos);
  EXPECT_NE(de.find("SFG-005")->message.find("narrows"), std::string::npos);
  EXPECT_EQ(de.find("SFG-001")->component, "sfg 'broken'");
  EXPECT_EQ(de.errors(), 1u);
  EXPECT_EQ(de.warnings(), 2u);
}

TEST(DiagLint, MultiClockRegistersFlagged) {
  Clk clk_a, clk_b;
  Reg ra("ra", clk_a, kFmt, 0.0);
  Reg rb("rb", clk_b, kFmt, 0.0);
  Sfg s("twoclk");
  s.assign(ra, ra + 1.0).assign(rb, rb + 1.0).out("o", ra + rb);
  diag::DiagEngine de;
  s.check(de);
  ASSERT_TRUE(de.has("SFG-006")) << de.str();
  EXPECT_NE(de.find("SFG-006")->message.find("different clock"), std::string::npos);
}

/// Two combinational components feeding each other: the canonical deadlock.
struct CombLoop {
  Clk clk;
  Sig a = Sig::input("a", kFmt);
  Sfg sa{"sa"};
  SfgComponent ca{"ca", sa};
  Sig b = Sig::input("b", kFmt);
  Sfg sb{"sb"};
  SfgComponent cb{"cb", sb};
  CycleScheduler sched{clk};

  CombLoop() {
    sa.in(a).out("oa", a + 1.0);
    sb.in(b).out("ob", b + 1.0);
    ca.bind_input(a, sched.net("b2a"));
    ca.bind_output("oa", sched.net("a2b"));
    cb.bind_input(b, sched.net("a2b"));
    cb.bind_output("ob", sched.net("b2a"));
    sched.add(ca);
    sched.add(cb);
  }
};

// The issue's acceptance test: the deadlock post-mortem names the unfired
// components and the blocking net dependency cycle.
TEST(DeadlockPostmortem, SchedulerNamesUnfiredComponentsAndCycle) {
  CombLoop sys;
  diag::DiagEngine de;
  sys.sched.attach_diagnostics(de);

  try {
    sys.sched.cycle();
    FAIL() << "expected DeadlockError";
  } catch (const sched::DeadlockError& e) {
    const diag::Diagnostic& d = e.diagnostic();
    EXPECT_EQ(d.code, "SCHED-001");
    EXPECT_EQ(d.severity, diag::Severity::kFatal);
    EXPECT_NE(d.message.find("unfired components"), std::string::npos);
    EXPECT_NE(d.message.find("ca"), std::string::npos);
    EXPECT_NE(d.message.find("cb"), std::string::npos);

    // Notes carry the per-component waits and the reconstructed cycle.
    bool saw_wait = false, saw_cycle = false;
    for (const auto& n : d.notes) {
      if (n.find("waits on net") != std::string::npos &&
          n.find("'ca'") != std::string::npos &&
          n.find("b2a") != std::string::npos)
        saw_wait = true;
      if (n.find("dependency cycle") != std::string::npos &&
          n.find("ca") != std::string::npos && n.find("cb") != std::string::npos)
        saw_cycle = true;
    }
    EXPECT_TRUE(saw_wait) << diag::Diagnostic(d).str();
    EXPECT_TRUE(saw_cycle) << diag::Diagnostic(d).str();
  }
  // The same post-mortem landed in the attached engine.
  ASSERT_TRUE(de.has("SCHED-001"));
  EXPECT_FALSE(de.ok());
}

TEST(DeadlockPostmortem, CompiledSimulatorMatchesScheduler) {
  CombLoop sys;
  sim::CompiledSystem cs = sim::CompiledSystem::compile(sys.sched);
  try {
    cs.cycle();
    FAIL() << "expected DeadlockError";
  } catch (const sched::DeadlockError& e) {
    const diag::Diagnostic& d = e.diagnostic();
    EXPECT_EQ(d.code, "SCHED-001");
    EXPECT_NE(d.message.find("ca"), std::string::npos);
    EXPECT_NE(d.message.find("cb"), std::string::npos);
    bool saw_cycle = false;
    for (const auto& n : d.notes)
      if (n.find("dependency cycle") != std::string::npos) saw_cycle = true;
    EXPECT_TRUE(saw_cycle);
  }
  EXPECT_TRUE(cs.diagnostics().has("SCHED-001"));
}

// The generated standalone simulator must explain a deadlock the same way:
// exit code 3 and the unfired component names on the diagnostic line.
TEST(DeadlockPostmortem, GeneratedSimulatorNamesUnfiredComponents) {
  CombLoop sys;
  sim::CompiledSystem cs = sim::CompiledSystem::compile(sys.sched);

  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "/gen_deadlock.cpp";
  const std::string bin = dir + "/gen_deadlock";
  {
    std::ofstream os(src);
    cs.emit_cpp(os, {}, 1);
  }
  const std::string compile = "c++ -O2 -std=c++17 -o " + bin + " " + src + " 2>&1";
  FILE* cp = popen(compile.c_str(), "r");
  ASSERT_NE(cp, nullptr);
  std::string text;
  char buf[256];
  while (fgets(buf, sizeof buf, cp) != nullptr) text += buf;
  ASSERT_EQ(pclose(cp), 0) << "compile failed:\n" << text;

  FILE* rp = popen((bin + " 2>&1").c_str(), "r");
  ASSERT_NE(rp, nullptr);
  text.clear();
  while (fgets(buf, sizeof buf, rp) != nullptr) text += buf;
  const int rc = pclose(rp);
  EXPECT_EQ(WEXITSTATUS(rc), 3);
  EXPECT_NE(text.find("DEADLOCK at cycle 0"), std::string::npos) << text;
  EXPECT_NE(text.find("unfired components"), std::string::npos) << text;
  EXPECT_NE(text.find("ca"), std::string::npos) << text;
  EXPECT_NE(text.find("cb"), std::string::npos) << text;
}

/// A free-running counter for watchdog tests.
struct Counter {
  Clk clk;
  Reg count{"count", clk, kFmt, 0.0};
  Sfg s{"count_s"};
  CycleScheduler sched{clk};
  SfgComponent comp{"counter", s};

  Counter() {
    s.out("o", count.sig()).assign(count, (count + 1.0).cast(kFmt));
    comp.bind_output("o", sched.net("o"));
    sched.add(comp);
  }
};

TEST(Watchdog, CycleSchedulerBudgetStopsGracefully) {
  Counter c;
  const RunResult r = c.sched.run(RunOptions{}.for_cycles(100).budget(5));
  EXPECT_EQ(r.cycles, 5u);
  EXPECT_EQ(r.stop, StopReason::kCycleBudget);
  EXPECT_TRUE(r.watchdog_tripped());
  EXPECT_EQ(c.sched.cycles(), 5u);
  EXPECT_TRUE(c.sched.watchdog_tripped());
  ASSERT_TRUE(c.sched.diagnostics().has("WATCHDOG-001"));
  const auto* d = c.sched.diagnostics().find("WATCHDOG-001");
  EXPECT_EQ(d->severity, diag::Severity::kFatal);
  EXPECT_EQ(d->cycle, 5u);

  // Raising the budget lets the run continue; the flag resets.
  const RunResult r2 = c.sched.run(RunOptions{}.for_cycles(2).budget(8));
  EXPECT_EQ(r2.cycles, 2u);
  EXPECT_EQ(r2.stop, StopReason::kCompleted);
  EXPECT_FALSE(c.sched.watchdog_tripped());
}

TEST(Watchdog, CompiledSystemBudgetStopsGracefully) {
  Counter c;
  sim::CompiledSystem cs = sim::CompiledSystem::compile(c.sched);
  diag::DiagEngine de;
  cs.attach_diagnostics(de);
  const RunResult r = cs.run(RunOptions{}.for_cycles(50).budget(7));
  EXPECT_EQ(r.cycles, 7u);
  EXPECT_EQ(r.stop, StopReason::kCycleBudget);
  EXPECT_EQ(cs.cycles(), 7u);
  EXPECT_TRUE(cs.watchdog_tripped());
  EXPECT_TRUE(de.has("WATCHDOG-001"));
  EXPECT_DOUBLE_EQ(cs.reg_value("count"), 7.0);  // state is consistent
}

TEST(Watchdog, WallClockLimitStopsRun) {
  Counter c;
  // 1e-9 s trips on the first check.
  const RunResult r = c.sched.run(RunOptions{}.for_cycles(1'000'000).within(1e-9));
  EXPECT_LT(r.cycles, 1'000'000u);
  EXPECT_EQ(r.stop, StopReason::kWallClock);
  EXPECT_TRUE(c.sched.watchdog_tripped());
  EXPECT_TRUE(c.sched.diagnostics().has("WATCHDOG-002"));
}

// The issue's acceptance test: a non-terminating dataflow graph stops at
// the firing budget with a WATCHDOG diagnostic and a queue snapshot.
TEST(Watchdog, DataflowFiringBudgetStopsNonTerminatingGraph) {
  df::Queue out("out");
  df::FnProcess src("src", [](const std::vector<df::Token>&,
                              std::vector<df::Token>& o) {
    o.push_back(df::Token(1.0));
  });
  src.connect_out(out);

  df::DynamicScheduler ds;
  ds.add(src);
  ds.watch(out);
  const RunResult rr = ds.run(RunOptions{}.for_firings(25));
  const auto& r = ds.last_result();

  EXPECT_EQ(rr.firings, 25u);
  EXPECT_EQ(rr.stop, StopReason::kFiringBudget);
  EXPECT_EQ(r.firings, 25u);
  EXPECT_TRUE(r.watchdog_tripped);
  ASSERT_TRUE(ds.diagnostics().has("WATCHDOG-001")) << ds.diagnostics().str();
  const auto* d = ds.diagnostics().find("WATCHDOG-001");
  bool saw_queue = false;
  for (const auto& n : d->notes)
    if (n.find("'out'") != std::string::npos &&
        n.find("25") != std::string::npos)
      saw_queue = true;
  EXPECT_TRUE(saw_queue) << ds.diagnostics().str();
  ASSERT_EQ(r.queues.size(), 1u);
  EXPECT_EQ(r.queues[0].tokens, 25u);
  EXPECT_EQ(r.queues[0].total_pushed, 25u);
}

TEST(DeadlockPostmortem, DataflowReportsBlockedFiringRules) {
  // Consumer needs 2 tokens per firing but only ever sees 1: stranded
  // token, no progress -> DF-001 with the firing rule it waits on.
  df::Queue a2b("a2b");
  df::FnProcess cons("cons", [](const std::vector<df::Token>&,
                                std::vector<df::Token>&) {});
  cons.connect_in(a2b, 2);
  a2b.push(df::Token(1.0));

  df::DynamicScheduler ds;
  ds.add(cons);
  ds.watch(a2b);
  const RunResult rr = ds.run(RunOptions{});
  const auto& r = ds.last_result();

  EXPECT_EQ(rr.stop, StopReason::kDeadlock);
  EXPECT_EQ(r.firings, 0u);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.watchdog_tripped);
  ASSERT_EQ(r.blocked.size(), 1u);
  EXPECT_EQ(r.blocked[0].process, "cons");
  EXPECT_EQ(r.blocked[0].waiting_on, "needs 2 token(s) on 'a2b' (has 1)");
  ASSERT_TRUE(ds.diagnostics().has("DF-001")) << ds.diagnostics().str();
  const auto* d = ds.diagnostics().find("DF-001");
  bool saw_rule = false;
  for (const auto& n : d->notes)
    if (n.find("needs 2 token(s) on 'a2b'") != std::string::npos) saw_rule = true;
  EXPECT_TRUE(saw_rule) << ds.diagnostics().str();
}

TEST(DiagErrors, ElabErrorCarriesCodeAndStaysInvalidArgument) {
  diag::Diagnostic d;
  d.code = "ELAB-001";
  d.component = "untimed 'ram'";
  d.message = "not declared pure";
  const ElabError e(std::move(d));
  EXPECT_EQ(e.code(), "ELAB-001");
  EXPECT_NE(std::string(e.what()).find("ELAB-001"), std::string::npos);
  const std::invalid_argument& base = e;  // legacy catch sites still work
  EXPECT_NE(std::string(base.what()).find("not declared pure"), std::string::npos);
}

}  // namespace
}  // namespace asicpp
