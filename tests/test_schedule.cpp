// The levelized static schedule (src/sched/schedule.*) and the unified
// RunOptions/RunResult engine API shared by CycleScheduler, CompiledSystem
// and DynamicScheduler.
#include <gtest/gtest.h>

#include "df/dynsched.h"
#include "df/process.h"
#include "sched/cyclesched.h"
#include "sched/dfadapter.h"
#include "sched/fsmcomp.h"
#include "sched/schedule.h"
#include "sched/untimed.h"
#include "sfg/clk.h"
#include "sim/compiled.h"

namespace asicpp::sched {
namespace {

using fixpt::Fixed;
using fixpt::Format;
using sfg::Clk;
using sfg::Reg;
using sfg::Sfg;
using sfg::Sig;

const Format kF{16, 7, true, fixpt::Quant::kRound, fixpt::Overflow::kSaturate};

// --- levelize_actions: the graph kernel ---

TEST(Levelize, ChainGetsIncreasingLevels) {
  // Action 0 produces net 0; action 1 consumes it and produces net 1;
  // action 2 consumes net 1.
  const std::vector<std::vector<std::int32_t>> needs{{}, {0}, {1}};
  const std::vector<std::vector<std::int32_t>> produces{{0}, {1}, {}};
  const std::vector<int> after{-1, -1, -1};
  const auto lv = levelize_actions(needs, produces, after);
  ASSERT_EQ(lv.size(), 3u);
  EXPECT_EQ(lv[0], 0);
  EXPECT_EQ(lv[1], 1);
  EXPECT_EQ(lv[2], 2);
}

TEST(Levelize, IndependentActionsShareLevelZero) {
  const std::vector<std::vector<std::int32_t>> needs{{}, {}, {}};
  const std::vector<std::vector<std::int32_t>> produces{{0}, {1}, {}};
  const auto lv = levelize_actions(needs, produces, {-1, -1, -1});
  ASSERT_EQ(lv.size(), 3u);
  EXPECT_EQ(lv[0], 0);
  EXPECT_EQ(lv[1], 0);
  EXPECT_EQ(lv[2], 0);
}

TEST(Levelize, CycleIsDetectedAndExtracted) {
  // 0 needs net 1 and produces net 0; 1 needs net 0 and produces net 1.
  const std::vector<std::vector<std::int32_t>> needs{{1}, {0}};
  const std::vector<std::vector<std::int32_t>> produces{{0}, {1}};
  std::vector<int> cyc;
  const auto lv = levelize_actions(needs, produces, {-1, -1}, &cyc);
  EXPECT_TRUE(lv.empty());
  EXPECT_GE(cyc.size(), 2u);
}

TEST(Levelize, AfterEdgeOrdersDecodeBeforeFire) {
  // Action 1 must run after action 0 even with no net dependency
  // (a dispatch component's decode -> fire pair).
  const std::vector<std::vector<std::int32_t>> needs{{}, {}};
  const std::vector<std::vector<std::int32_t>> produces{{}, {}};
  const auto lv = levelize_actions(needs, produces, {-1, 0});
  ASSERT_EQ(lv.size(), 2u);
  EXPECT_GT(lv[1], lv[0]);
}

// --- Schedule::build over real components ---

// A three-stage pipeline deliberately added in reverse dependency order:
// the iterative scheduler needs one sweep per stage, the level walk one
// pass total.
struct ReversePipe {
  Clk clk;
  CycleScheduler sched{clk};
  Reg seed{"seed", clk, kF, 1.0};
  Sig xa = Sig::input("xa", kF);
  Sig xb = Sig::input("xb", kF);
  Sfg ssrc{"ssrc"}, sa{"sa"}, sb{"sb"};
  SfgComponent csrc{"src", ssrc}, ca{"a", sa}, cb{"b", sb};

  ReversePipe() {
    ssrc.out("o", seed.sig()).assign(seed, seed + 1.0);
    sa.in(xa).out("o", xa + 1.0);
    sb.in(xb).out("o", xb * 2.0);
    csrc.bind_output("o", sched.net("n0"));
    ca.bind_input(xa, sched.net("n0"));
    ca.bind_output("o", sched.net("n1"));
    cb.bind_input(xb, sched.net("n1"));
    cb.bind_output("o", sched.net("n2"));
    sched.add(cb);
    sched.add(ca);
    sched.add(csrc);
  }
};

TEST(Schedule, BuildOrdersProducersBeforeConsumers) {
  ReversePipe p;
  const Schedule& s = p.sched.schedule();
  ASSERT_TRUE(s.valid()) << s.reason();
  EXPECT_EQ(s.component_count(), 3u);
  int pos_a = -1, pos_b = -1;
  for (std::size_t i = 0; i < s.order().size(); ++i) {
    if (s.order()[i].comp == &p.ca) pos_a = static_cast<int>(i);
    if (s.order()[i].comp == &p.cb) pos_b = static_cast<int>(i);
  }
  ASSERT_GE(pos_a, 0);
  ASSERT_GE(pos_b, 0);
  EXPECT_LT(pos_a, pos_b);  // a produces what b consumes
  EXPECT_GE(s.levels(), 2);
}

TEST(Schedule, LevelWalkFiresPipelineInOnePass) {
  ReversePipe p;
  const auto st = p.sched.cycle();
  EXPECT_TRUE(st.levelized);
  EXPECT_EQ(st.eval_iterations, 1);
  EXPECT_EQ(st.fired_components, 3);

  // The same cycle iteratively: the reverse add order costs one extra
  // sweep per pipeline stage.
  p.sched.set_schedule_mode(ScheduleMode::kIterative);
  const auto st2 = p.sched.cycle();
  EXPECT_FALSE(st2.levelized);
  EXPECT_GT(st2.eval_iterations, 1);
  EXPECT_EQ(st2.fired_components, 3);
}

TEST(Schedule, LevelizedAndIterativeTracesAgree) {
  ReversePipe lev, it;
  lev.sched.set_schedule_mode(ScheduleMode::kLevelized);
  it.sched.set_schedule_mode(ScheduleMode::kIterative);
  for (int c = 0; c < 16; ++c) {
    lev.sched.cycle();
    it.sched.cycle();
    for (const char* n : {"n0", "n1", "n2"}) {
      ASSERT_EQ(lev.sched.net(n).has_token(), it.sched.net(n).has_token())
          << "net " << n << " cycle " << c;
      ASSERT_DOUBLE_EQ(lev.sched.net(n).last().value(), it.sched.net(n).last().value())
          << "net " << n << " cycle " << c;
    }
  }
}

TEST(Schedule, AddComponentInvalidatesSchedule) {
  ReversePipe p;
  ASSERT_TRUE(p.sched.schedule().valid());
  EXPECT_TRUE(p.sched.cycle().levelized);

  // A new consumer on the end of the pipe: add() must invalidate and the
  // next cycle re-levelize with the longer chain.
  Sig xc = Sig::input("xc", kF);
  Sfg sc{"sc"};
  sc.in(xc).out("o", xc - 1.0);
  SfgComponent cc{"c", sc};
  cc.bind_input(xc, p.sched.net("n2"));
  cc.bind_output("o", p.sched.net("n3"));
  p.sched.add(cc);

  const auto st = p.sched.cycle();
  EXPECT_TRUE(st.levelized);
  EXPECT_EQ(st.fired_components, 4);
  EXPECT_GE(p.sched.schedule().levels(), 3);
  EXPECT_FALSE(p.sched.diagnostics().has("SCHED-002"));
}

// Re-binding a component after levelization without telling the scheduler:
// the stale walk misses, the cycle recovers iteratively with a SCHED-002
// warning, and the next cycle runs on a fresh level order.
TEST(Schedule, StaleWalkMissReportsSched002AndRelevelizes) {
  Clk clk;
  CycleScheduler sched(clk);
  Reg seed("seed", clk, kF, 1.0);

  Sfg sa{"sa"};
  sa.out("m1", seed.sig())
      .out("m2", seed.sig() + 0.5)
      .assign(seed, seed + 1.0);
  SfgComponent ca{"a", sa};
  ca.bind_output("m1", sched.net("m1"));
  ca.bind_output("m2", sched.net("m2"));

  Sig xb1 = Sig::input("xb1", kF);
  Sig xb2 = Sig::input("xb2", kF);
  Sfg sb{"sb"};
  sb.in(xb1).in(xb2).out("o", xb1 + xb2);
  SfgComponent cb{"b", sb};
  cb.bind_input(xb1, sched.net("m1"));
  cb.bind_output("o", sched.net("n2"));
  sched.net("xb2_ext").drive(Fixed(0.25));
  cb.bind_input(xb2, sched.net("xb2_ext"));

  Sig xc = Sig::input("xc", kF);
  Sfg scg{"sc"};
  scg.in(xc).out("late", xc * 2.0);
  SfgComponent cc{"c", scg};
  cc.bind_input(xc, sched.net("m2"));
  cc.bind_output("late", sched.net("late"));

  sched.add(ca);
  sched.add(cb);
  sched.add(cc);

  // First cycle levelizes cleanly: b and c both sit at level 0 (all their
  // inputs are register-only or external), b walks before c.
  EXPECT_TRUE(sched.cycle().levelized);
  EXPECT_FALSE(sched.diagnostics().has("SCHED-002"));

  // Now point b's second input at c's output. The cached order still walks
  // b before c, so the walk leaves b unfired; the iterative sweep recovers
  // the cycle and the schedule is marked stale.
  cb.bind_input(xb2, sched.net("late"));
  const auto miss = sched.cycle();
  EXPECT_FALSE(miss.levelized);
  EXPECT_EQ(miss.fired_components, 3);  // recovered, nothing lost
  ASSERT_TRUE(sched.diagnostics().has("SCHED-002"));
  EXPECT_EQ(sched.diagnostics().find("SCHED-002")->severity, diag::Severity::kWarning);

  // The rebuilt order puts c before b and the walk is clean again.
  const auto fixed = sched.cycle();
  EXPECT_TRUE(fixed.levelized);
  EXPECT_EQ(fixed.fired_components, 3);
}

// --- fallback: dataflow adapters have no static firing order ---

TEST(Schedule, DataflowAdapterForcesIterativeFallback) {
  Clk clk;
  CycleScheduler sched(clk);
  Reg n("n", clk, kF, 0.0);
  Sfg s{"src"};
  s.out("o", n.sig()).assign(n, n + 1.0);
  SfgComponent src{"src", s};
  src.bind_output("o", sched.net("samples"));
  sched.add(src);

  df::FnProcess dbl("dbl", [](const std::vector<df::Token>& in,
                              std::vector<df::Token>& out) {
    out.push_back(in[0] * Fixed(2.0));
  });
  DataflowAdapter ad("dbl", dbl);
  ad.bind_input(sched.net("samples"));
  ad.bind_output(sched.net("doubled"));
  sched.add(ad);

  EXPECT_FALSE(sched.schedule().valid());
  EXPECT_NE(sched.schedule().reason().find("no static firing order"), std::string::npos);

  // kAuto quietly runs iteratively — no diagnostic noise.
  RunResult r = sched.run(RunOptions{}.for_cycles(6));
  EXPECT_EQ(r.cycles, 6u);
  EXPECT_EQ(r.levelized_cycles, 0u);
  EXPECT_EQ(r.schedule, ScheduleMode::kIterative);
  EXPECT_FALSE(sched.diagnostics().has("SCHED-002"));

  // Explicitly requesting kLevelized reports SCHED-002 once and falls back.
  r = sched.run(RunOptions{}.for_cycles(6).mode(ScheduleMode::kLevelized));
  EXPECT_EQ(r.cycles, 6u);
  EXPECT_EQ(r.levelized_cycles, 0u);
  ASSERT_TRUE(sched.diagnostics().has("SCHED-002"));
  std::size_t sched002 = 0;
  for (const auto& d : sched.diagnostics().all())
    if (d.code == "SCHED-002") ++sched002;
  EXPECT_EQ(sched002, 1u);
  EXPECT_EQ(ad.firings(), 12u);
}

// --- the unified run API across all three engines ---

TEST(RunApi, CycleSchedulerRunResultAndHooks) {
  ReversePipe p;
  std::uint64_t hook_calls = 0;
  const RunResult r = p.sched.run(RunOptions{}
                                      .for_cycles(10)
                                      .profiled()
                                      .on_cycle([&](std::uint64_t) { ++hook_calls; }));
  EXPECT_EQ(r.cycles, 10u);
  EXPECT_EQ(r.firings, 30u);
  EXPECT_EQ(r.retry_passes, 0u);
  EXPECT_EQ(r.levelized_cycles, 10u);
  EXPECT_EQ(r.schedule, ScheduleMode::kLevelized);
  EXPECT_EQ(r.stop, StopReason::kCompleted);
  EXPECT_FALSE(r.watchdog_tripped());
  EXPECT_EQ(hook_calls, 10u);

  ASSERT_EQ(r.timing.size(), 3u);
  for (const auto& t : r.timing) {
    EXPECT_EQ(t.firings, 10u);
    EXPECT_GE(t.seconds, 0.0);
  }

  // Iterative mode pays retry passes on the reverse add order.
  const RunResult it = p.sched.run(
      RunOptions{}.for_cycles(10).mode(ScheduleMode::kIterative));
  EXPECT_EQ(it.levelized_cycles, 0u);
  EXPECT_GT(it.retry_passes, 0u);
  EXPECT_EQ(it.schedule, ScheduleMode::kIterative);
}

TEST(RunApi, CompiledSystemMatchesInterpretedInBothModes) {
  ReversePipe a, b;
  sim::CompiledSystem lev = sim::CompiledSystem::compile(a.sched);
  sim::CompiledSystem it = sim::CompiledSystem::compile(b.sched);
  ASSERT_TRUE(lev.levelizable()) << lev.schedule_reason();
  EXPECT_GE(lev.schedule_levels(), 2);

  const RunResult rl = lev.run(RunOptions{}.for_cycles(12));
  const RunResult ri = it.run(RunOptions{}.for_cycles(12).mode(ScheduleMode::kIterative));
  EXPECT_EQ(rl.cycles, 12u);
  EXPECT_EQ(rl.levelized_cycles, 12u);
  EXPECT_EQ(rl.retry_passes, 0u);
  EXPECT_EQ(rl.schedule, ScheduleMode::kLevelized);
  EXPECT_EQ(ri.levelized_cycles, 0u);
  EXPECT_GT(ri.retry_passes, 0u);
  for (const char* n : {"n0", "n1", "n2"})
    EXPECT_DOUBLE_EQ(lev.net_value(n), it.net_value(n)) << "net " << n;
}

TEST(RunApi, DynamicSchedulerQuiescesWithRunResult) {
  df::Queue in("in"), out("out");
  df::FnProcess dbl("dbl", [](const std::vector<df::Token>& i,
                              std::vector<df::Token>& o) {
    o.push_back(i[0] * Fixed(2.0));
  });
  dbl.connect_in(in);
  dbl.connect_out(out);
  for (int i = 0; i < 3; ++i) in.push(Fixed(static_cast<double>(i)));

  df::DynamicScheduler ds;
  ds.add(dbl);
  const RunResult r = ds.run(RunOptions{}.profiled());
  EXPECT_EQ(r.firings, 3u);
  EXPECT_EQ(r.stop, StopReason::kQuiescent);
  EXPECT_EQ(r.schedule, ScheduleMode::kIterative);
  EXPECT_FALSE(ds.last_result().deadlocked);
  ASSERT_EQ(r.timing.size(), 1u);
  EXPECT_EQ(r.timing[0].firings, 3u);
  EXPECT_EQ(out.size(), 3u);
}

}  // namespace
}  // namespace asicpp::sched
